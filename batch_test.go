package lynceus

import (
	"testing"

	"repro/internal/bagging"
	"repro/internal/numeric"
)

// spaceSweepFixture fits a bagging ensemble on a spread-out subset of a
// profiled job's measurements, mirroring what every planning decision does.
func spaceSweepFixture(t *testing.T, job *Job, trees int, seed int64) *bagging.Ensemble {
	t.Helper()
	space := job.Space()
	features := make([][]float64, 0, 40)
	costs := make([]float64, 0, 40)
	for i := 0; i < 40; i++ {
		cfg, err := space.Config(i * 7 % space.Size())
		if err != nil {
			t.Fatalf("Config: %v", err)
		}
		m, err := job.Measurement(cfg.ID)
		if err != nil {
			t.Fatalf("Measurement: %v", err)
		}
		features = append(features, cfg.Features)
		costs = append(costs, m.Cost)
	}
	ensemble := bagging.New(bagging.Params{NumTrees: trees}, seed)
	if err := ensemble.Fit(features, costs); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return ensemble
}

// TestFullSpaceSweepBatchScalarEquivalence checks the batch determinism
// contract on the paper's real configuration spaces: sweeping the 384-point
// Tensorflow space and a 72-point Scout space through PredictBatch over the
// space's cached column-major feature matrix must produce Gaussians bitwise
// identical to one scalar Predict call per configuration, across seeds and
// ensemble sizes.
func TestFullSpaceSweepBatchScalarEquivalence(t *testing.T) {
	tfJob, err := SyntheticTensorflowJob("cnn", 42)
	if err != nil {
		t.Fatalf("SyntheticTensorflowJob: %v", err)
	}
	scoutJobs, err := SyntheticScoutJobs(42)
	if err != nil {
		t.Fatalf("SyntheticScoutJobs: %v", err)
	}
	jobs := []*Job{tfJob, scoutJobs[0]}

	for _, job := range jobs {
		space := job.Space()
		cols := space.FeatureColumns()
		for _, trees := range []int{5, 10, 20} {
			for seed := int64(1); seed <= 3; seed++ {
				ensemble := spaceSweepFixture(t, job, trees, seed)
				out := make([]numeric.Gaussian, space.Size())
				if err := ensemble.PredictBatch(cols, out); err != nil {
					t.Fatalf("%s trees=%d seed=%d: PredictBatch: %v", job.Name(), trees, seed, err)
				}
				for _, cfg := range space.Configs() {
					want, err := ensemble.Predict(cfg.Features)
					if err != nil {
						t.Fatalf("%s trees=%d seed=%d: Predict: %v", job.Name(), trees, seed, err)
					}
					if out[cfg.ID] != want {
						t.Fatalf("%s trees=%d seed=%d config %d: batch %+v != scalar %+v",
							job.Name(), trees, seed, cfg.ID, out[cfg.ID], want)
					}
				}
			}
		}
	}
}

// TestTunerBatchScalarEquivalenceOnScout runs whole campaigns on a real
// 72-point Scout job through the public API: the batched planner (default)
// and the scalar reference planner must profile the same trial sequence and
// recommend the same configuration at LA=1 and at the pruned LA=2 search.
func TestTunerBatchScalarEquivalenceOnScout(t *testing.T) {
	jobs, err := SyntheticScoutJobs(42)
	if err != nil {
		t.Fatalf("SyntheticScoutJobs: %v", err)
	}
	job := jobs[0]
	env, err := NewJobEnvironment(job)
	if err != nil {
		t.Fatalf("NewJobEnvironment: %v", err)
	}
	tmax, err := job.RuntimeForFeasibleFraction(0.5)
	if err != nil {
		t.Fatalf("RuntimeForFeasibleFraction: %v", err)
	}
	opts := Options{
		Budget:            8 * job.MeanCost(),
		MaxRuntimeSeconds: tmax,
		Seed:              5,
	}
	for _, lookahead := range []int{1, 2} {
		batched, err := NewTuner(TunerConfig{Lookahead: lookahead, EnsembleTrees: 5, Workers: 2})
		if err != nil {
			t.Fatalf("NewTuner: %v", err)
		}
		scalar, err := NewTuner(TunerConfig{Lookahead: lookahead, EnsembleTrees: 5, Workers: 2, DisableBatchPredict: true})
		if err != nil {
			t.Fatalf("NewTuner: %v", err)
		}
		a, err := batched.Optimize(env, opts)
		if err != nil {
			t.Fatalf("LA=%d: batched Optimize: %v", lookahead, err)
		}
		b, err := scalar.Optimize(env, opts)
		if err != nil {
			t.Fatalf("LA=%d: scalar Optimize: %v", lookahead, err)
		}
		if len(a.Trials) != len(b.Trials) {
			t.Fatalf("LA=%d: trial counts differ: %d vs %d", lookahead, len(a.Trials), len(b.Trials))
		}
		for i := range a.Trials {
			if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
				t.Fatalf("LA=%d: trial %d differs between batch and scalar: %d vs %d",
					lookahead, i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
			}
		}
		if a.Recommended.Config.ID != b.Recommended.Config.ID {
			t.Errorf("LA=%d: recommendations differ: %d vs %d",
				lookahead, a.Recommended.Config.ID, b.Recommended.Config.ID)
		}
	}
}
