package lynceus

import (
	"os"
	"testing"

	"repro/internal/bagging"
	"repro/internal/numeric"
)

// spaceSweepFixture fits a bagging ensemble on a spread-out subset of a
// profiled job's measurements, mirroring what every planning decision does.
func spaceSweepFixture(t *testing.T, job *Job, trees int, seed int64) *bagging.Ensemble {
	t.Helper()
	space := job.Space()
	features := make([][]float64, 0, 40)
	costs := make([]float64, 0, 40)
	for i := 0; i < 40; i++ {
		cfg, err := space.Config(i * 7 % space.Size())
		if err != nil {
			t.Fatalf("Config: %v", err)
		}
		m, err := job.Measurement(cfg.ID)
		if err != nil {
			t.Fatalf("Measurement: %v", err)
		}
		features = append(features, cfg.Features)
		costs = append(costs, m.Cost)
	}
	ensemble := bagging.New(bagging.Params{NumTrees: trees}, seed)
	if err := ensemble.Fit(features, costs); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return ensemble
}

// TestFullSpaceSweepBatchScalarEquivalence checks the batch determinism
// contract on the paper's real configuration spaces: sweeping the 384-point
// Tensorflow space and a 72-point Scout space through PredictBatch over the
// space's cached column-major feature matrix must produce Gaussians bitwise
// identical to one scalar Predict call per configuration, across seeds and
// ensemble sizes.
func TestFullSpaceSweepBatchScalarEquivalence(t *testing.T) {
	tfJob, err := SyntheticTensorflowJob("cnn", 42)
	if err != nil {
		t.Fatalf("SyntheticTensorflowJob: %v", err)
	}
	scoutJobs, err := SyntheticScoutJobs(42)
	if err != nil {
		t.Fatalf("SyntheticScoutJobs: %v", err)
	}
	jobs := []*Job{tfJob, scoutJobs[0]}

	for _, job := range jobs {
		space := job.Space()
		cols := space.FeatureColumns()
		for _, trees := range []int{5, 10, 20} {
			for seed := int64(1); seed <= 3; seed++ {
				ensemble := spaceSweepFixture(t, job, trees, seed)
				out := make([]numeric.Gaussian, space.Size())
				if err := ensemble.PredictBatch(cols, out); err != nil {
					t.Fatalf("%s trees=%d seed=%d: PredictBatch: %v", job.Name(), trees, seed, err)
				}
				for _, cfg := range space.Configs() {
					want, err := ensemble.Predict(cfg.Features)
					if err != nil {
						t.Fatalf("%s trees=%d seed=%d: Predict: %v", job.Name(), trees, seed, err)
					}
					if out[cfg.ID] != want {
						t.Fatalf("%s trees=%d seed=%d config %d: batch %+v != scalar %+v",
							job.Name(), trees, seed, cfg.ID, out[cfg.ID], want)
					}
				}
			}
		}
	}
}

// TestFullSpaceSweepBatchCompetitive is the assertion form of the
// BenchmarkFullSpaceSweep batch-vs-scalar comparison: it measures both sweep
// paths over the 384-point Tensorflow space and fails if the batch path falls
// behind the scalar path by more than a generous regression margin.
//
// The two paths are physically near-identical since the packed-node rewrite:
// both run the same per-row traversal (accumRow), and the only work the batch
// path adds is gathering each point from the space's column-major matrix into
// a row — while the scalar loop reads the space's pre-materialized row
// storage for free. Parity (ratio ~1.0-1.15 on one core) is therefore the
// expected steady state, and the assertion exists to catch the failure mode
// this PR fixed — a batch kernel whose layout or codegen regresses it well
// past scalar (the seed had batch at 1.25x scalar and both paths ~30%
// slower in absolute terms). The 1.6x threshold leaves room for timer noise
// on loaded single-core CI boxes; the tracked BENCH.json medians are the
// precise record.
//
// Timing assertions are inherently machine-sensitive, so the test only runs
// when LYNCEUS_ASSERT_BENCH=1 is set (CI sets it on the bench runner, not on
// the -race runner).
func TestFullSpaceSweepBatchCompetitive(t *testing.T) {
	if os.Getenv("LYNCEUS_ASSERT_BENCH") != "1" {
		t.Skip("timing assertion; set LYNCEUS_ASSERT_BENCH=1 to run")
	}
	job, err := SyntheticTensorflowJob("cnn", 42)
	if err != nil {
		t.Fatalf("SyntheticTensorflowJob: %v", err)
	}
	ensemble := spaceSweepFixture(t, job, 10, 1)
	space := job.Space()
	cols := space.FeatureColumns()
	all := space.Configs()
	out := make([]numeric.Gaussian, space.Size())

	// Interleave several measurements of each path and take the per-path
	// minimum: on a busy box the minimum is the least noisy estimator of the
	// actual cost, and interleaving keeps frequency drift from biasing one
	// side.
	const rounds = 5
	batchNs, scalarNs := int64(1<<62), int64(1<<62)
	for r := 0; r < rounds; r++ {
		rb := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := ensemble.PredictBatch(cols, out); err != nil {
					b.Fatalf("PredictBatch: %v", err)
				}
			}
		})
		rs := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, cfg := range all {
					if _, err := ensemble.Predict(cfg.Features); err != nil {
						b.Fatalf("Predict: %v", err)
					}
				}
			}
		})
		if ns := rb.NsPerOp(); ns < batchNs {
			batchNs = ns
		}
		if ns := rs.NsPerOp(); ns < scalarNs {
			scalarNs = ns
		}
	}
	t.Logf("full-space sweep: batch %d ns/op, scalar %d ns/op (ratio %.2f)",
		batchNs, scalarNs, float64(batchNs)/float64(scalarNs))
	if float64(batchNs) > 1.6*float64(scalarNs) {
		t.Errorf("batch sweep (%d ns/op) regressed past 1.6x scalar (%d ns/op)", batchNs, scalarNs)
	}
}

// TestTunerBatchScalarEquivalenceOnScout runs whole campaigns on a real
// 72-point Scout job through the public API: the batched planner (default)
// and the scalar reference planner must profile the same trial sequence and
// recommend the same configuration at LA=1 and at the pruned LA=2 search.
func TestTunerBatchScalarEquivalenceOnScout(t *testing.T) {
	jobs, err := SyntheticScoutJobs(42)
	if err != nil {
		t.Fatalf("SyntheticScoutJobs: %v", err)
	}
	job := jobs[0]
	env, err := NewJobEnvironment(job)
	if err != nil {
		t.Fatalf("NewJobEnvironment: %v", err)
	}
	tmax, err := job.RuntimeForFeasibleFraction(0.5)
	if err != nil {
		t.Fatalf("RuntimeForFeasibleFraction: %v", err)
	}
	opts := Options{
		Budget:            8 * job.MeanCost(),
		MaxRuntimeSeconds: tmax,
		Seed:              5,
	}
	for _, lookahead := range []int{1, 2} {
		batched, err := NewTuner(TunerConfig{Lookahead: lookahead, EnsembleTrees: 5, Workers: 2})
		if err != nil {
			t.Fatalf("NewTuner: %v", err)
		}
		scalar, err := NewTuner(TunerConfig{Lookahead: lookahead, EnsembleTrees: 5, Workers: 2, DisableBatchPredict: true})
		if err != nil {
			t.Fatalf("NewTuner: %v", err)
		}
		a, err := batched.Optimize(env, opts)
		if err != nil {
			t.Fatalf("LA=%d: batched Optimize: %v", lookahead, err)
		}
		b, err := scalar.Optimize(env, opts)
		if err != nil {
			t.Fatalf("LA=%d: scalar Optimize: %v", lookahead, err)
		}
		if len(a.Trials) != len(b.Trials) {
			t.Fatalf("LA=%d: trial counts differ: %d vs %d", lookahead, len(a.Trials), len(b.Trials))
		}
		for i := range a.Trials {
			if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
				t.Fatalf("LA=%d: trial %d differs between batch and scalar: %d vs %d",
					lookahead, i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
			}
		}
		if a.Recommended.Config.ID != b.Recommended.Config.ID {
			t.Errorf("LA=%d: recommendations differ: %d vs %d",
				lookahead, a.Recommended.Config.ID, b.Recommended.Config.ID)
		}
	}
}
