// Package lynceus is the public API of the Lynceus reproduction: a
// budget-aware, long-sighted Bayesian-optimization tuner that jointly selects
// the cloud configuration (VM type, cluster size) and the job parameters
// (e.g. hyper-parameters) minimizing the monetary cost of a recurrent data
// analytic job under a maximum-runtime constraint and a profiling budget
// (Casimiro et al., "Lynceus: Cost-efficient Tuning and Provisioning of Data
// Analytic Jobs", ICDCS 2020).
//
// The typical flow is:
//
//  1. describe the configuration space (NewSpace) or load a profiled lookup
//     table (ReadJobCSV / synthetic generators);
//  2. wrap it in an Environment (NewJobEnvironment), or implement Environment
//     against a real cloud;
//  3. create a tuner (NewTuner) and call Optimize with a budget and a
//     runtime constraint;
//  4. deploy the recommended configuration from the returned Result.
//
// The package also exposes the BO and random baselines and the evaluation
// harness used to reproduce the paper's figures.
package lynceus

import (
	"fmt"
	"io"

	"repro/internal/bagging"
	"repro/internal/baselines"
	"repro/internal/configspace"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/servesim"
	"repro/internal/simulator"
	"repro/internal/synth"
)

// Core domain types, re-exported from the internal packages so that library
// users never import repro/internal/... directly.
type (
	// Dimension is one axis of a configuration space.
	Dimension = configspace.Dimension
	// Space is a finite configuration space.
	Space = configspace.Space
	// Config is one configuration of a space.
	Config = configspace.Config
	// Job is a profiled job: a space plus one measurement per configuration.
	Job = dataset.Job
	// Measurement is the profiling outcome of one configuration.
	Measurement = dataset.Measurement
	// Environment abstracts "deploy configuration x, run the job, observe
	// runtime and cost".
	Environment = optimizer.Environment
	// Trial is the outcome of profiling one configuration during tuning.
	Trial = optimizer.TrialResult
	// Constraint is one "metric <= threshold" requirement.
	Constraint = optimizer.Constraint
	// SetupCostFunc estimates the cost of switching between deployments.
	SetupCostFunc = optimizer.SetupCostFunc
	// Options configures a tuning run (budget, runtime constraint, seed, ...).
	Options = optimizer.Options
	// Result is the outcome of a tuning run.
	Result = optimizer.Result
	// Optimizer is implemented by Lynceus and by the baselines.
	Optimizer = optimizer.Optimizer
	// EvaluationConfig configures a repeated-runs evaluation campaign.
	EvaluationConfig = simulator.Config
	// Evaluation aggregates the metrics of an evaluation campaign.
	Evaluation = simulator.JobResult
)

// NewSpace builds a materialized configuration space from the Cartesian
// product of dims, optionally restricted by filter (nil keeps every
// combination). Right for paper-scale spaces (up to a few thousand points);
// larger spaces should use NewStreamingSpace.
func NewSpace(dims []Dimension, filter func(indices []int) bool) (*Space, error) {
	return configspace.New(dims, filter)
}

// NewStreamingSpace builds a streaming configuration space: configurations
// are decoded on demand from the dimension cross-product and full-space
// consumers iterate block-wise feature views, so a 10^5+-point space never
// materializes in memory. All optimizers run unchanged on streaming spaces;
// combine with TunerConfig.Search "sampled" (or the automatic default) to
// keep per-decision planning cost bounded.
func NewStreamingSpace(dims []Dimension, filter func(indices []int) bool) (*Space, error) {
	return configspace.NewStreaming(dims, filter)
}

// NewJob builds a profiled job from a space and one measurement per
// configuration. timeoutSeconds is the forceful-termination limit used during
// profiling (0 when none).
func NewJob(name string, space *Space, measurements []Measurement, timeoutSeconds float64) (*Job, error) {
	return dataset.NewJob(name, space, measurements, timeoutSeconds)
}

// ReadJobCSV parses a profiled job from CSV (see WriteJobCSV for the format).
func ReadJobCSV(r io.Reader) (*Job, error) { return dataset.ReadCSV(r) }

// WriteJobCSV serializes a profiled job as CSV: one column per dimension
// followed by runtime_seconds, unit_price_per_hour, cost, timed_out and
// extra_<metric> columns.
func WriteJobCSV(w io.Writer, job *Job) error { return dataset.WriteCSV(w, job) }

// NewJobEnvironment wraps a profiled job as an Environment that replays its
// measurements, which is how the paper evaluates optimizers.
func NewJobEnvironment(job *Job) (Environment, error) { return optimizer.NewJobEnvironment(job) }

// TunerConfig tunes the Lynceus optimizer itself. The zero value reproduces
// the paper's defaults (lookahead 2, discount 0.9, 3-point Gauss-Hermite
// quadrature, 10-tree bagging ensemble).
type TunerConfig struct {
	// Lookahead is the LA window; negative values are invalid. The special
	// value 0 means "use the paper default (2)"; use Myopic to request LA=0.
	Lookahead int
	// Myopic requests the LA=0 variant (cost-normalized greedy selection).
	Myopic bool
	// Discount is the discount factor γ applied to future rewards (0 = paper
	// default 0.9).
	Discount float64
	// GHOrder is the Gauss-Hermite order K (0 = paper default 3).
	GHOrder int
	// EnsembleTrees is the bagging ensemble size (0 = paper default 10).
	EnsembleTrees int
	// CostModel selects the regression model family: "bagging" (default, the
	// paper's ensemble of regression trees) or "gp" (Gaussian Process, the
	// paper's footnote-1 alternative).
	CostModel string
	// Workers bounds path-evaluation parallelism (0 = GOMAXPROCS). The
	// recommendation never depends on the worker count.
	Workers int
	// DisablePruning turns off the optimistic-bound candidate pruning of the
	// lookahead >= 2 path search and restores the exhaustive search (for
	// ablations; pruning is on by default and deterministic).
	DisablePruning bool
	// DisableBatchPredict routes every full-space model sweep through scalar
	// per-configuration predictions instead of the batch prediction path. The
	// two paths produce bitwise-identical recommendations (enforced by
	// tests); the knob exists for that proof and for ablations.
	DisableBatchPredict bool
	// Search selects the candidate search strategy; the zero value picks
	// automatically based on the space size.
	Search SearchConfig
	// SpeculativeRefit selects how the planner retrains its models along
	// speculative lookahead paths:
	//
	//   - "" or "auto": "full" for paper-scale searches, "incremental" once
	//     lookahead × per-decision candidates make full refits dominant
	//     (lookahead ≥ 3, or the product reaching 2048);
	//   - "full": every speculated outcome refits the whole model ensemble
	//     from the extended training set — the paper's exact behavior,
	//     bitwise-pinned by the golden campaign tests;
	//   - "incremental": every speculated outcome clones the parent models
	//     and folds the one speculated sample in (online leaf updates on the
	//     regression trees), an order of magnitude cheaper per speculation.
	//     Recommendation quality matches "full" statistically (enforced by
	//     parity tests), not bitwise. Requires the bagging cost model.
	SpeculativeRefit string
}

// SearchConfig selects which untested configurations the planner considers at
// each decision (TunerConfig.Search).
type SearchConfig struct {
	// Strategy names the strategy:
	//
	//   - "" (auto): "exhaustive" for spaces up to 4096 configurations,
	//     "sampled" above — small spaces keep the paper's behavior, large
	//     ones stay tractable without further configuration;
	//   - "exhaustive": every untested configuration is scored at every
	//     decision (the paper's behavior; recommendations are
	//     bitwise-identical to pre-strategy versions of this library);
	//   - "sampled": a deterministic, seeded subsample of at most SampleSize
	//     untested configurations per decision, keeping per-decision planning
	//     cost roughly constant as the space grows; the subsample depends
	//     only on (seed, decision index), never on worker count.
	Strategy string
	// SampleSize bounds the per-decision candidate set of the "sampled"
	// strategy (0 = default 1024). Ignored by the other strategies.
	SampleSize int
}

// searchStrategy maps the public config to a core strategy (nil = auto).
func (c SearchConfig) searchStrategy() (core.SearchStrategy, error) {
	switch c.Strategy {
	case "":
		if c.SampleSize != 0 {
			return core.Sampled{Size: c.SampleSize}, nil
		}
		return nil, nil
	case "exhaustive":
		return core.Exhaustive{}, nil
	case "sampled":
		return core.Sampled{Size: c.SampleSize}, nil
	default:
		return nil, fmt.Errorf("lynceus: unknown search strategy %q (want \"\", %q or %q)",
			c.Strategy, "exhaustive", "sampled")
	}
}

// NewTuner creates a Lynceus tuner.
func NewTuner(cfg TunerConfig) (Optimizer, error) {
	return newCoreTuner(cfg)
}

// newCoreTuner builds the concrete core optimizer behind NewTuner; the
// campaign API (StartTuner / ResumeTuner) needs the concrete type.
func newCoreTuner(cfg TunerConfig) (*core.Lynceus, error) {
	lookahead := cfg.Lookahead
	if lookahead == 0 && !cfg.Myopic {
		lookahead = core.DefaultLookahead
	}
	if cfg.Myopic {
		lookahead = 0
	}
	if cfg.Lookahead < 0 {
		return nil, fmt.Errorf("lynceus: negative lookahead %d", cfg.Lookahead)
	}
	search, err := cfg.Search.searchStrategy()
	if err != nil {
		return nil, err
	}
	var refit core.SpeculativeRefit
	switch cfg.SpeculativeRefit {
	case "", "auto":
		refit = core.SpecRefitAuto
	case "full":
		refit = core.SpecRefitFull
	case "incremental":
		refit = core.SpecRefitIncremental
	default:
		return nil, fmt.Errorf("lynceus: unknown speculative-refit mode %q (want \"\", %q, %q or %q)",
			cfg.SpeculativeRefit, "auto", "full", "incremental")
	}
	params := core.Params{
		Lookahead:           lookahead,
		Discount:            cfg.Discount,
		GHOrder:             cfg.GHOrder,
		Model:               bagging.Params{NumTrees: cfg.EnsembleTrees},
		Workers:             cfg.Workers,
		DisablePruning:      cfg.DisablePruning,
		DisableBatchPredict: cfg.DisableBatchPredict,
		Search:              search,
		SpeculativeRefit:    refit,
	}
	switch cfg.CostModel {
	case "", string(model.KindBagging):
		// Default bagging factory is created per optimization run so it can
		// be seeded from Options.Seed.
	case string(model.KindGP):
		params.ModelFactory = model.NewGPFactory(gp.Params{})
	default:
		return nil, fmt.Errorf("lynceus: unknown cost model %q (want %q or %q)",
			cfg.CostModel, model.KindBagging, model.KindGP)
	}
	return core.New(params)
}

// NewBOBaseline creates the CherryPick/Arrow-style greedy constrained-EI
// Bayesian optimizer used as the main baseline in the paper.
func NewBOBaseline() (Optimizer, error) {
	return baselines.NewBO(baselines.BOParams{})
}

// NewRandomBaseline creates the RND baseline, which profiles random
// configurations until the budget is exhausted.
func NewRandomBaseline() Optimizer { return baselines.NewRandom() }

// Tune is a convenience one-shot helper: it runs the default Lynceus tuner
// (LA=2) against the environment with the given options.
func Tune(env Environment, opts Options) (Result, error) {
	tuner, err := NewTuner(TunerConfig{})
	if err != nil {
		return Result{}, err
	}
	return tuner.Optimize(env, opts)
}

// Evaluate runs an optimizer repeatedly against a profiled job, replaying the
// stored measurements and aggregating CNO/NEX metrics as in the paper's
// evaluation methodology.
func Evaluate(opt Optimizer, cfg EvaluationConfig) (Evaluation, error) {
	return simulator.Evaluate(opt, cfg)
}

// Synthetic datasets ---------------------------------------------------------

// SyntheticTensorflowJobs generates the three Tensorflow-style jobs (cnn,
// rnn, multilayer) with the 384-point, 5-dimensional configuration space of
// the paper's §5.1.1.
func SyntheticTensorflowJobs(seed int64) ([]*Job, error) { return synth.TensorflowJobs(seed) }

// SyntheticTensorflowJob generates one Tensorflow-style job by name ("cnn",
// "rnn" or "multilayer").
func SyntheticTensorflowJob(name string, seed int64) (*Job, error) {
	for _, kind := range synth.TensorflowKinds() {
		if kind.String() == name {
			return synth.TensorflowJob(kind, seed)
		}
	}
	return nil, fmt.Errorf("lynceus: unknown tensorflow job %q (want cnn, rnn or multilayer)", name)
}

// SyntheticScoutJobs generates the 18 Scout-style Hadoop/Spark jobs of §5.1.2.
func SyntheticScoutJobs(seed int64) ([]*Job, error) { return synth.ScoutJobs(seed) }

// SyntheticCherryPickJobs generates the 5 CherryPick-style jobs of §5.1.2.
func SyntheticCherryPickJobs(seed int64) ([]*Job, error) { return synth.CherryPickJobs(seed) }

// LargeGridJob is a production-scale analytic workload: an Environment over
// a streaming configuration space whose runtime and cost are computed on
// demand from a closed-form performance model — nothing is materialized, so
// 10^5+-point spaces cost no memory beyond their dimensions. Its ApproxStats
// method estimates a runtime quantile and the mean cost from a deterministic
// sample, which is how campaigns pick a budget and runtime constraint
// without sweeping the space.
type LargeGridJob = synth.LargeGridEnv

// SyntheticLargeGridJobs returns the three production-scale large-grid
// workloads ("large-etl", "large-training", "large-analytics") over
// 61,440-configuration streaming spaces. Use them to exercise the "sampled"
// search strategy and the block-wise sweeps at 10^4-10^5+ points.
func SyntheticLargeGridJobs(seed int64) ([]*LargeGridJob, error) {
	return synth.LargeGridJobs(seed)
}

// SyntheticLargeGridJob returns one large-grid workload by name with
// clusterSizes node-count values (<= 0 selects the default 128, i.e. a
// 61,440-configuration space; 512 yields ~246k, 1024 ~492k). The space size
// is 480 x clusterSizes.
func SyntheticLargeGridJob(name string, clusterSizes int, seed int64) (*LargeGridJob, error) {
	for _, kind := range synth.LargeGridKinds() {
		if kind.String() == name {
			return synth.NewLargeGridEnv(kind, clusterSizes, seed)
		}
	}
	return nil, fmt.Errorf("lynceus: unknown large-grid job %q (want large-etl, large-training or large-analytics)", name)
}

// EnergyMetric is the name of the synthetic energy metric attached to the
// Tensorflow jobs; use it with Constraint to exercise the multi-constraint
// extension.
const EnergyMetric = synth.EnergyMetric

// Simulated serving environment ----------------------------------------------

// ServingEnvironment is a seeded discrete-event simulation of an LLM
// inference cluster wrapped as an Environment: the tuner selects replica
// count, instance type, max-batch and scheduler policy to minimize the dollar
// cost of serving a fixed request volume under a makespan constraint and an
// SLO-attainment constraint (pass its Constraint method via
// Options.ExtraConstraints). Unlike the lookup-table workloads, every Run is
// stochastic — repeated runs of one configuration observe different costs —
// while any fixed trial sequence stays bitwise reproducible for a given seed.
// Its True and Optimum methods compute seed-averaged analytic ground truth,
// and ApproxStats estimates a makespan quantile and mean run cost for picking
// the constraint and budget.
type ServingEnvironment = servesim.Env

// ServingProfiles lists the built-in serving scenarios: "chat"
// (latency-dominated interactive mix), "code" (long prompts, KV-pressure
// dominated) and "batch" (throughput-dominated, loose SLOs).
func ServingProfiles() []string { return servesim.Profiles() }

// NewServingEnvironment creates the simulated serving environment of a named
// profile over its default 384-point configuration space. The seed drives the
// per-run observation noise.
func NewServingEnvironment(profile string, seed int64) (*ServingEnvironment, error) {
	return servesim.NewProfileEnv(profile, seed)
}

// SLOViolationMetric is the extra-metric name under which a
// ServingEnvironment reports the fraction of requests that missed their
// latency SLO.
const SLOViolationMetric = servesim.SLOViolationMetric
