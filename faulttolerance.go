package lynceus

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/optimizer"
)

// Campaign-control sentinels and failure types, re-exported so users can
// branch with errors.Is / errors.As without importing internal packages.
var (
	// ErrBudgetExhausted is the finish reason of a campaign that spent its
	// profiling budget (the normal way a tuning run ends).
	ErrBudgetExhausted = optimizer.ErrBudgetExhausted
	// ErrSpaceExhausted is the finish reason of a campaign that ran out of
	// profilable configurations before running out of budget.
	ErrSpaceExhausted = optimizer.ErrSpaceExhausted
	// ErrRunFailed wraps terminal profiling failures: a configuration
	// exhausted its retry attempts and the policy did not quarantine it.
	ErrRunFailed = optimizer.ErrRunFailed
	// ErrTrialTimeout marks attempts killed by RetryPolicy.Timeout.
	ErrTrialTimeout = optimizer.ErrTrialTimeout
	// ErrEnvironmentFatal marks environment failures that no retry policy
	// retries (e.g. an injected crash); the campaign aborts and should be
	// resumed from its last snapshot.
	ErrEnvironmentFatal = optimizer.ErrEnvironmentFatal
	// ErrCampaignCancelled marks campaign steps stopped by their context
	// (Tuner.StepContext / MultiRunner.RunContext): the error also wraps the
	// context's own cause, so errors.Is matches context.Canceled and
	// context.DeadlineExceeded too. Cancellation records no partial trial;
	// resume the campaign from its last snapshot.
	ErrCampaignCancelled = optimizer.ErrCampaignCancelled
)

type (
	// RetryPolicy governs per-trial timeouts, retries with deterministic
	// backoff, and quarantine-based graceful degradation (Options.Retry).
	RetryPolicy = optimizer.RetryPolicy
	// RunError is the structured failure environments return for one
	// profiling attempt: the money it burned and whether retrying can help.
	RunError = optimizer.RunError
	// StatefulEnvironment is an Environment whose internal state travels
	// inside campaign snapshots (EnvState / RestoreEnvState).
	StatefulEnvironment = optimizer.StatefulEnvironment

	// Tuner is a stepwise Lynceus tuning campaign: Step runs one trial,
	// Snapshot serializes the full campaign state between steps, and Result
	// assembles the recommendation. StartTuner begins one, ResumeTuner
	// continues one from a snapshot with the bitwise-identical remaining
	// trial sequence.
	Tuner = core.Campaign
	// ResumeFuncs re-supplies the process-local functions a snapshot cannot
	// carry (setup-cost model, retry sleep hook) to ResumeTunerWith.
	ResumeFuncs = core.ResumeFuncs

	// FaultParams configures deterministic fault injection
	// (NewFaultyEnvironment).
	FaultParams = faults.Params
	// FaultyEnvironment wraps an Environment with a deterministic fault
	// stream: transient failures, stragglers, permanently broken
	// configurations and repeatable crash points, all pure functions of
	// (seed, configID, attempt).
	FaultyEnvironment = faults.Env
)

// Injected-fault sentinels, matched with errors.Is against campaign errors.
var (
	// ErrInjectedCrash is the fatal failure NewFaultyEnvironment injects at
	// FaultParams.CrashAtRun; it wraps ErrEnvironmentFatal.
	ErrInjectedCrash = faults.ErrInjectedCrash
	// ErrInjectedTransient marks injected retryable failures.
	ErrInjectedTransient = faults.ErrInjectedTransient
	// ErrInjectedPermanent marks injected non-retryable failures.
	ErrInjectedPermanent = faults.ErrInjectedPermanent
)

// NewFaultyEnvironment wraps an environment with deterministic fault
// injection for robustness testing: the same (seed, configID, attempt) always
// yields the same fault, so failure scenarios replay bitwise across reruns,
// worker counts, and snapshot/resume cycles.
func NewFaultyEnvironment(inner Environment, params FaultParams) (*FaultyEnvironment, error) {
	return faults.New(inner, params)
}

// StartTuner begins a stepwise Lynceus campaign against the environment.
// Unlike Optimize — which is exactly a Step loop over this campaign — the
// caller controls the pace: run Step until done, and call Snapshot between
// any two steps to capture a durable checkpoint.
func StartTuner(cfg TunerConfig, env Environment, opts Options) (*Tuner, error) {
	l, err := newCoreTuner(cfg)
	if err != nil {
		return nil, err
	}
	return l.NewCampaign(env, opts)
}

// ResumeTuner reconstructs a campaign from a Tuner.Snapshot and continues it.
// cfg must describe the same tuner that took the snapshot (the snapshot
// carries a parameter fingerprint and fails loudly on mismatch); the resumed
// campaign reproduces the bitwise-identical remaining trial sequence and
// recommendation of the uninterrupted run.
func ResumeTuner(cfg TunerConfig, env Environment, snapshot []byte) (*Tuner, error) {
	return ResumeTunerWith(cfg, env, snapshot, ResumeFuncs{})
}

// ResumeTunerWith is ResumeTuner with re-supplied process-local functions:
// required when the snapshotted campaign used Options.SetupCost, optional to
// re-install a RetryPolicy.Sleep hook.
func ResumeTunerWith(cfg TunerConfig, env Environment, snapshot []byte, fns ResumeFuncs) (*Tuner, error) {
	l, err := newCoreTuner(cfg)
	if err != nil {
		return nil, err
	}
	return l.ResumeCampaignWith(env, snapshot, fns)
}
