package lynceus

import (
	"testing"
)

// largeGridFixture builds a large-grid campaign setup: job, options sized
// from a deterministic sample of the space, and the requested tuner.
func largeGridFixture(t *testing.T, clusterSizes int, budgetRuns float64, seed int64) (*LargeGridJob, Options) {
	t.Helper()
	job, err := SyntheticLargeGridJob("large-etl", clusterSizes, 42)
	if err != nil {
		t.Fatalf("SyntheticLargeGridJob: %v", err)
	}
	tmax, meanCost, err := job.ApproxStats(0.5, 1024)
	if err != nil {
		t.Fatalf("ApproxStats: %v", err)
	}
	return job, Options{
		Budget:            budgetRuns * meanCost,
		MaxRuntimeSeconds: tmax,
		BootstrapSize:     16,
		Seed:              seed,
	}
}

// TestLargeGridCampaignWithSampledStrategy is the headline acceptance test of
// the candidate-provider refactor: a >= 50k-configuration streaming space
// completes a full tuning campaign with the sampled search strategy — the
// space is never materialized, every sweep is block- or sample-bounded.
func TestLargeGridCampaignWithSampledStrategy(t *testing.T) {
	job, opts := largeGridFixture(t, 128, 30, 3) // 61,440 configurations
	if job.Space().Size() < 50_000 {
		t.Fatalf("space has %d configurations, want >= 50k", job.Space().Size())
	}
	if !job.Space().Streaming() {
		t.Fatal("large-grid space is not streaming")
	}
	tuner, err := NewTuner(TunerConfig{
		Lookahead: 1,
		Search:    SearchConfig{Strategy: "sampled", SampleSize: 128},
	})
	if err != nil {
		t.Fatalf("NewTuner: %v", err)
	}
	res, err := tuner.Optimize(job, opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Explorations <= 16 {
		t.Fatalf("explorations = %d, want more than the bootstrap", res.Explorations)
	}
	if !res.RecommendedFeasible {
		t.Errorf("recommendation infeasible: runtime %.0fs against Tmax %.0fs",
			res.Recommended.RuntimeSeconds, opts.MaxRuntimeSeconds)
	}
	if res.SpentBudget > opts.Budget+res.Recommended.Cost*20 {
		t.Errorf("spent budget %v wildly exceeds %v", res.SpentBudget, opts.Budget)
	}
}

// TestSampledStrategyIndependentOfWorkerCount pins the determinism guarantee
// of the sampled strategy: for a fixed seed, runs with 1 and 8 workers must
// profile the identical configuration sequence and agree on the
// recommendation — the subsample depends only on (seed, decision index).
func TestSampledStrategyIndependentOfWorkerCount(t *testing.T) {
	results := make([]Result, 0, 2)
	for _, workers := range []int{1, 8} {
		job, opts := largeGridFixture(t, 32, 26, 11) // 15,360 configurations
		tuner, err := NewTuner(TunerConfig{
			Lookahead: 1,
			Workers:   workers,
			Search:    SearchConfig{Strategy: "sampled", SampleSize: 96},
		})
		if err != nil {
			t.Fatalf("NewTuner: %v", err)
		}
		res, err := tuner.Optimize(job, opts)
		if err != nil {
			t.Fatalf("Optimize(workers=%d): %v", workers, err)
		}
		results = append(results, res)
	}
	a, b := results[0], results[1]
	if len(a.Trials) <= 16 {
		t.Fatalf("campaign made no post-bootstrap decisions (%d trials); the comparison is vacuous", len(a.Trials))
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ across worker counts: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs across worker counts: %d vs %d",
				i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
		}
	}
	if a.Recommended.Config.ID != b.Recommended.Config.ID {
		t.Errorf("recommendations differ across worker counts: %d vs %d",
			a.Recommended.Config.ID, b.Recommended.Config.ID)
	}
}

// TestSampledStrategyLookahead2WorkerDeterminism pins worker-count
// independence for the sampled search strategy under long-sighted planning
// with incremental speculative refits — the combination that routes every
// decision through the speculation scheduler's forked subtrees on a
// streaming space. Until this test, only LA=1 sampled campaigns and LA=2
// exhaustive campaigns were pinned.
func TestSampledStrategyLookahead2WorkerDeterminism(t *testing.T) {
	results := make([]Result, 0, 2)
	for _, workers := range []int{1, 8} {
		job, opts := largeGridFixture(t, 32, 22, 11) // 15,360 configurations
		tuner, err := NewTuner(TunerConfig{
			Lookahead:        2,
			Workers:          workers,
			SpeculativeRefit: "incremental",
			Search:           SearchConfig{Strategy: "sampled", SampleSize: 96},
		})
		if err != nil {
			t.Fatalf("NewTuner: %v", err)
		}
		res, err := tuner.Optimize(job, opts)
		if err != nil {
			t.Fatalf("Optimize(workers=%d): %v", workers, err)
		}
		results = append(results, res)
	}
	a, b := results[0], results[1]
	if len(a.Trials) <= 16 {
		t.Fatalf("campaign made no post-bootstrap decisions (%d trials); the comparison is vacuous", len(a.Trials))
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ across worker counts: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs across worker counts: %d vs %d",
				i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
		}
	}
	if a.Recommended.Config.ID != b.Recommended.Config.ID {
		t.Errorf("recommendations differ across worker counts: %d vs %d",
			a.Recommended.Config.ID, b.Recommended.Config.ID)
	}
}

// TestAutoSearchOnLargeStreamingSpace checks the zero-value TunerConfig path:
// with no explicit strategy the planner must pick sampled search on a large
// streaming space and still complete the campaign.
func TestAutoSearchOnLargeStreamingSpace(t *testing.T) {
	job, opts := largeGridFixture(t, 16, 18, 17)
	opts.BootstrapSize = 12
	tuner, err := NewTuner(TunerConfig{Lookahead: 1})
	if err != nil {
		t.Fatalf("NewTuner: %v", err)
	}
	res, err := tuner.Optimize(job, opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Explorations <= 12 {
		t.Fatalf("explorations = %d, want more than the bootstrap", res.Explorations)
	}
}

// TestBOBaselineOnStreamingSpace checks that the block-sweep BO baseline runs
// a campaign on a streaming space without materializing it.
func TestBOBaselineOnStreamingSpace(t *testing.T) {
	job, opts := largeGridFixture(t, 8, 16, 23) // 3,840 configurations
	opts.BootstrapSize = 10
	bo, err := NewBOBaseline()
	if err != nil {
		t.Fatalf("NewBOBaseline: %v", err)
	}
	res, err := bo.Optimize(job, opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Explorations <= 10 {
		t.Fatalf("explorations = %d, want more than the bootstrap", res.Explorations)
	}
}

// TestRandomBaselineOnStreamingSpace checks the RND baseline's ID-based
// untested iteration on a streaming space.
func TestRandomBaselineOnStreamingSpace(t *testing.T) {
	job, opts := largeGridFixture(t, 8, 14, 29)
	opts.BootstrapSize = 8
	res, err := NewRandomBaseline().Optimize(job, opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Explorations <= 8 {
		t.Fatalf("explorations = %d, want more than the bootstrap", res.Explorations)
	}
	seen := map[int]bool{}
	for _, tr := range res.Trials {
		if seen[tr.Config.ID] {
			t.Fatalf("config %d profiled twice", tr.Config.ID)
		}
		seen[tr.Config.ID] = true
	}
}

// TestSearchConfigValidation pins the public strategy names.
func TestSearchConfigValidation(t *testing.T) {
	if _, err := NewTuner(TunerConfig{Search: SearchConfig{Strategy: "annealed"}}); err == nil {
		t.Error("unknown strategy accepted")
	}
	for _, strategy := range []string{"", "exhaustive", "sampled"} {
		if _, err := NewTuner(TunerConfig{Search: SearchConfig{Strategy: strategy}}); err != nil {
			t.Errorf("strategy %q rejected: %v", strategy, err)
		}
	}
}
