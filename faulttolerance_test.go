package lynceus

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/optimizer"
)

// campaignCase builds a deterministic (env, opts, cfg) triple for the
// fault-tolerance tests, mirroring the golden campaign setups.
func campaignCase(t *testing.T, jobName string, cfg TunerConfig, budgetMultiplier float64, seed int64) (*Job, Environment, Options) {
	t.Helper()
	var job *Job
	var err error
	if jobName == "tensorflow-cnn" {
		job, err = SyntheticTensorflowJob("cnn", 42)
	} else {
		var jobs []*Job
		jobs, err = SyntheticScoutJobs(42)
		if err == nil {
			job = jobs[0]
		}
	}
	if err != nil {
		t.Fatalf("building job %s: %v", jobName, err)
	}
	env, err := NewJobEnvironment(job)
	if err != nil {
		t.Fatalf("NewJobEnvironment: %v", err)
	}
	tmax, err := job.RuntimeForFeasibleFraction(0.5)
	if err != nil {
		t.Fatalf("RuntimeForFeasibleFraction: %v", err)
	}
	bootstrap, err := optimizer.ResolveBootstrapSize(job.Space(), Options{Budget: 1, MaxRuntimeSeconds: 1})
	if err != nil {
		t.Fatalf("ResolveBootstrapSize: %v", err)
	}
	opts := Options{
		Budget:            float64(bootstrap) * job.MeanCost() * budgetMultiplier,
		MaxRuntimeSeconds: tmax,
		Seed:              seed,
	}
	return job, env, opts
}

// campaignTrace flattens a finished campaign for bitwise comparison.
type campaignTrace struct {
	trials      []int
	quarantined []int
	recommended int
	feasible    bool
	spent       float64
}

func traceOf(t *testing.T, tuner *Tuner) campaignTrace {
	t.Helper()
	res, err := tuner.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	tr := campaignTrace{
		quarantined: tuner.QuarantinedIDs(),
		recommended: res.Recommended.Config.ID,
		feasible:    res.RecommendedFeasible,
		spent:       res.SpentBudget,
	}
	for _, trial := range res.Trials {
		tr.trials = append(tr.trials, trial.Config.ID)
	}
	return tr
}

func (a campaignTrace) equal(b campaignTrace) bool {
	return fmt.Sprint(a.trials) == fmt.Sprint(b.trials) &&
		fmt.Sprint(a.quarantined) == fmt.Sprint(b.quarantined) &&
		a.recommended == b.recommended && a.feasible == b.feasible && a.spent == b.spent
}

func runToCompletion(t *testing.T, tuner *Tuner) campaignTrace {
	t.Helper()
	for {
		done, err := tuner.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			return traceOf(t, tuner)
		}
	}
}

// TestCrashRecoveryAtEveryBoundary kills a campaign at every decision
// boundary — after each bootstrap probe and each planning decision — and
// requires that resuming from the snapshot taken at that boundary reproduces
// the bitwise-identical remaining trial sequence, quarantine set, spent
// budget and recommendation of the uninterrupted run. Both speculative-refit
// modes are covered: the incremental mode on the Tensorflow-384 space and
// the golden-pinned full mode on the Scout-72 space.
func TestCrashRecoveryAtEveryBoundary(t *testing.T) {
	cases := []struct {
		name       string
		job        string
		cfg        TunerConfig
		multiplier float64
	}{
		{"tensorflow384-la2-incremental", "tensorflow-cnn", TunerConfig{Lookahead: 2, SpeculativeRefit: "incremental"}, 1.3},
		{"scout72-la2-full", "scout-0", TunerConfig{Lookahead: 2, SpeculativeRefit: "full"}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, env, opts := campaignCase(t, tc.job, tc.cfg, tc.multiplier, 7)

			// Uninterrupted run, snapshotting at every boundary along the way.
			tuner, err := StartTuner(tc.cfg, env, opts)
			if err != nil {
				t.Fatalf("StartTuner: %v", err)
			}
			var snapshots [][]byte
			for {
				snap, err := tuner.Snapshot()
				if err != nil {
					t.Fatalf("Snapshot at boundary %d: %v", len(snapshots), err)
				}
				snapshots = append(snapshots, snap)
				done, err := tuner.Step()
				if err != nil {
					t.Fatalf("Step: %v", err)
				}
				if done {
					break
				}
			}
			want := traceOf(t, tuner)
			if len(want.trials) == 0 {
				t.Fatal("campaign recorded no trials")
			}
			t.Logf("%d trials, %d boundaries", len(want.trials), len(snapshots))

			for k, snap := range snapshots {
				resumed, err := ResumeTuner(tc.cfg, env, snap)
				if err != nil {
					t.Fatalf("ResumeTuner at boundary %d: %v", k, err)
				}
				got := runToCompletion(t, resumed)
				if !got.equal(want) {
					t.Fatalf("resume from boundary %d diverged:\n got %+v\nwant %+v", k, got, want)
				}
			}
		})
	}
}

// TestCrashKillAndResumeUnderFaults injects a fatal crash mid-campaign (as a
// process kill would), resumes from the last checkpoint — including the fault
// stream's own counters via the embedded environment state — and requires the
// result to match an identical campaign that never crashed.
func TestCrashKillAndResumeUnderFaults(t *testing.T) {
	cfg := TunerConfig{Lookahead: 1}
	// A small failed-cost fraction keeps the tight 1.3x budget from being
	// wiped out by the failed attempts, so the campaign retains a decision
	// phase for the crash to land in.
	faultParams := FaultParams{Seed: 3, TransientRate: 0.1, FailedCostFraction: 0.05}
	retry := RetryPolicy{MaxAttempts: 3, Quarantine: true}

	// Reference: same faults, no crash.
	_, env, opts := campaignCase(t, "tensorflow-cnn", cfg, 1.3, 7)
	opts.Retry = retry
	refEnv, err := NewFaultyEnvironment(env, faultParams)
	if err != nil {
		t.Fatalf("NewFaultyEnvironment: %v", err)
	}
	refTuner, err := StartTuner(cfg, refEnv, opts)
	if err != nil {
		t.Fatalf("StartTuner: %v", err)
	}
	want := runToCompletion(t, refTuner)
	bootstrap, err := optimizer.ResolveBootstrapSize(env.Space(), opts)
	if err != nil {
		t.Fatalf("ResolveBootstrapSize: %v", err)
	}
	if len(want.trials) <= bootstrap {
		t.Fatalf("reference campaign has no decision phase (%d trials); the crash scenario needs one", len(want.trials))
	}

	// Crashing run: the penultimate cloud run of the reference sequence dies
	// fatally — deep in the decision phase, as a process kill would.
	crashParams := faultParams
	crashParams.CrashAtRun = refEnv.Runs() - 1
	_, env2, _ := campaignCase(t, "tensorflow-cnn", cfg, 1.3, 7)
	crashEnv, err := NewFaultyEnvironment(env2, crashParams)
	if err != nil {
		t.Fatalf("NewFaultyEnvironment: %v", err)
	}
	tuner, err := StartTuner(cfg, crashEnv, opts)
	if err != nil {
		t.Fatalf("StartTuner: %v", err)
	}
	var lastSnap []byte
	crashed := false
	for {
		snap, serr := tuner.Snapshot()
		if serr != nil {
			t.Fatalf("Snapshot: %v", serr)
		}
		lastSnap = snap
		done, err := tuner.Step()
		if err != nil {
			if !errors.Is(err, ErrInjectedCrash) || !errors.Is(err, ErrEnvironmentFatal) || !errors.Is(err, ErrRunFailed) {
				t.Fatalf("crash surfaced as %v, want ErrRunFailed wrapping ErrInjectedCrash/ErrEnvironmentFatal", err)
			}
			crashed = true
			break
		}
		if done {
			break
		}
	}
	if !crashed {
		t.Fatal("campaign completed without hitting the injected crash; raise CrashAtRun coverage")
	}

	// "Restart the process": a fresh environment with the kill switch removed;
	// ResumeTuner restores the fault stream's counters from the snapshot.
	_, env3, _ := campaignCase(t, "tensorflow-cnn", cfg, 1.3, 7)
	resumeEnv, err := NewFaultyEnvironment(env3, faultParams)
	if err != nil {
		t.Fatalf("NewFaultyEnvironment: %v", err)
	}
	resumed, err := ResumeTuner(cfg, resumeEnv, lastSnap)
	if err != nil {
		t.Fatalf("ResumeTuner: %v", err)
	}
	got := runToCompletion(t, resumed)
	if !got.equal(want) {
		t.Fatalf("kill+resume diverged from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}

// TestFaultedCampaignsStayNearFaultFreeQuality runs the Scout-72 LA=2
// campaign under a 10% transient fault rate across five seeds and requires
// the recommendation's cost (normalized to the true optimum) to stay within
// 10% of the fault-free campaign's on at least four of them.
func TestFaultedCampaignsStayNearFaultFreeQuality(t *testing.T) {
	cfg := TunerConfig{Lookahead: 2}
	seeds := []int64{1, 2, 3, 4, 5}
	ok, failedAttempts := 0, 0
	for _, seed := range seeds {
		job, env, opts := campaignCase(t, "scout-0", cfg, 4, seed)
		opts.Retry = RetryPolicy{MaxAttempts: 3, Quarantine: true}
		best, err := job.Optimum(opts.MaxRuntimeSeconds)
		if err != nil {
			t.Fatalf("Optimum: %v", err)
		}

		freeTuner, err := StartTuner(cfg, env, opts)
		if err != nil {
			t.Fatalf("StartTuner: %v", err)
		}
		free := runToCompletion(t, freeTuner)

		_, env2, _ := campaignCase(t, "scout-0", cfg, 4, seed)
		faulty, err := NewFaultyEnvironment(env2, FaultParams{Seed: seed, TransientRate: 0.1, FailedCostFraction: 0.25})
		if err != nil {
			t.Fatalf("NewFaultyEnvironment: %v", err)
		}
		faultTuner, err := StartTuner(cfg, faulty, opts)
		if err != nil {
			t.Fatalf("StartTuner: %v", err)
		}
		faulted := runToCompletion(t, faultTuner)
		failedAttempts += faulty.Runs() - len(faulted.trials)

		freeCost, err := job.Measurement(free.recommended)
		if err != nil {
			t.Fatalf("Measurement: %v", err)
		}
		faultCost, err := job.Measurement(faulted.recommended)
		if err != nil {
			t.Fatalf("Measurement: %v", err)
		}
		cnoFree := freeCost.Cost / best.Cost
		cnoFault := faultCost.Cost / best.Cost
		t.Logf("seed %d: CNO fault-free %.3f, faulted %.3f (%d trials, %d quarantined)",
			seed, cnoFree, cnoFault, len(faulted.trials), len(faulted.quarantined))
		if cnoFault <= 1.1*cnoFree {
			ok++
		}
	}
	if ok < 4 {
		t.Fatalf("faulted campaigns stayed within 10%% of fault-free CNO on %d/%d seeds, want >= 4", ok, len(seeds))
	}
	if failedAttempts == 0 {
		t.Fatal("no injected failure fired across any seed; the comparison is vacuous")
	}
}

// TestFaultedCampaignDeterminismAndWorkerIndependence replays one faulted
// campaign and requires identical trial sequences across reruns and across
// planner worker counts.
func TestFaultedCampaignDeterminismAndWorkerIndependence(t *testing.T) {
	run := func(workers int) campaignTrace {
		t.Helper()
		cfg := TunerConfig{Lookahead: 2, Workers: workers}
		_, env, opts := campaignCase(t, "scout-0", cfg, 4, 7)
		opts.Retry = RetryPolicy{MaxAttempts: 3, Quarantine: true}
		faulty, err := NewFaultyEnvironment(env, FaultParams{Seed: 7, TransientRate: 0.15, FailedCostFraction: 0.25})
		if err != nil {
			t.Fatalf("NewFaultyEnvironment: %v", err)
		}
		tuner, err := StartTuner(cfg, faulty, opts)
		if err != nil {
			t.Fatalf("StartTuner: %v", err)
		}
		return runToCompletion(t, tuner)
	}
	first := run(1)
	if again := run(1); !first.equal(again) {
		t.Fatalf("faulted campaign not deterministic:\n  %+v\nvs %+v", first, again)
	}
	if wide := run(4); !first.equal(wide) {
		t.Fatalf("faulted campaign depends on worker count:\n 1: %+v\n 4: %+v", first, wide)
	}
}

// TestCampaignAbortsWithoutQuarantine pins the sentinel-based campaign
// control surface of the public API: without quarantine, a permanently
// failing configuration aborts the campaign with typed errors.
func TestCampaignAbortsWithoutQuarantine(t *testing.T) {
	cfg := TunerConfig{Lookahead: 1}
	_, env, opts := campaignCase(t, "scout-0", cfg, 4, 7)
	opts.Retry = RetryPolicy{MaxAttempts: 2} // no quarantine
	// Every configuration fails permanently: the first bootstrap probe aborts.
	var ids []int
	for id := 0; id < env.Space().Size(); id++ {
		ids = append(ids, id)
	}
	faulty, err := NewFaultyEnvironment(env, FaultParams{Seed: 1, PermanentIDs: ids, FailedCostFraction: 0.1})
	if err != nil {
		t.Fatalf("NewFaultyEnvironment: %v", err)
	}
	tuner, err := StartTuner(cfg, faulty, opts)
	if err != nil {
		t.Fatalf("StartTuner: %v", err)
	}
	_, serr := tuner.Run()
	if serr == nil {
		t.Fatal("campaign with all-failing bootstrap succeeded")
	}
	// Bootstrap probes always quarantine-and-resample, so the campaign ends
	// with the space exhausted rather than a single run failure.
	if !errors.Is(serr, ErrSpaceExhausted) {
		t.Fatalf("abort error = %v, want ErrSpaceExhausted", serr)
	}

	// A permanent decision-phase failure without quarantine aborts with
	// ErrRunFailed wrapping the injected sentinel.
	_, env2, opts2 := campaignCase(t, "scout-0", cfg, 4, 7)
	opts2.Retry = RetryPolicy{MaxAttempts: 2}
	free, err := StartTuner(cfg, env2, opts2)
	if err != nil {
		t.Fatalf("StartTuner: %v", err)
	}
	clean := runToCompletion(t, free)
	if free.FinishReason() == nil || !errors.Is(free.FinishReason(), ErrBudgetExhausted) {
		t.Fatalf("finish reason = %v, want ErrBudgetExhausted", free.FinishReason())
	}
	// Fail the first decision-phase pick (the first trial beyond bootstrap).
	bootstrap, err := optimizer.ResolveBootstrapSize(env2.Space(), opts2)
	if err != nil {
		t.Fatalf("ResolveBootstrapSize: %v", err)
	}
	if len(clean.trials) <= bootstrap {
		t.Fatalf("campaign never left the bootstrap (%d trials)", len(clean.trials))
	}
	firstPick := clean.trials[bootstrap]
	_, env3, _ := campaignCase(t, "scout-0", cfg, 4, 7)
	faulty3, err := NewFaultyEnvironment(env3, FaultParams{Seed: 1, PermanentIDs: []int{firstPick}, FailedCostFraction: 0.1})
	if err != nil {
		t.Fatalf("NewFaultyEnvironment: %v", err)
	}
	tuner3, err := StartTuner(cfg, faulty3, opts2)
	if err != nil {
		t.Fatalf("StartTuner: %v", err)
	}
	_, aerr := tuner3.Run()
	if !errors.Is(aerr, ErrRunFailed) || !errors.Is(aerr, ErrInjectedPermanent) {
		t.Fatalf("decision-phase abort = %v, want ErrRunFailed wrapping ErrInjectedPermanent", aerr)
	}
}

// TestResumeValidation exercises the snapshot compatibility checks.
func TestResumeValidation(t *testing.T) {
	cfg := TunerConfig{Lookahead: 1}
	_, env, opts := campaignCase(t, "scout-0", cfg, 4, 7)
	tuner, err := StartTuner(cfg, env, opts)
	if err != nil {
		t.Fatalf("StartTuner: %v", err)
	}
	// A few steps in, snapshot.
	for i := 0; i < 3; i++ {
		if _, err := tuner.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	snap, err := tuner.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	if _, err := ResumeTuner(cfg, env, []byte("not json")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := ResumeTuner(TunerConfig{Lookahead: 2}, env, snap); err == nil {
		t.Error("snapshot accepted under mismatched tuner parameters")
	}
	otherJob, err := SyntheticTensorflowJob("cnn", 42)
	if err != nil {
		t.Fatalf("SyntheticTensorflowJob: %v", err)
	}
	otherEnv, err := NewJobEnvironment(otherJob)
	if err != nil {
		t.Fatalf("NewJobEnvironment: %v", err)
	}
	if _, err := ResumeTuner(cfg, otherEnv, snap); err == nil {
		t.Error("snapshot accepted against a different configuration space")
	}

	// Setup-cost campaigns must re-supply the function on resume.
	_, env2, opts2 := campaignCase(t, "scout-0", cfg, 4, 7)
	setup := func(from *Config, to Config) float64 { return 0.001 }
	opts2.SetupCost = setup
	tuner2, err := StartTuner(cfg, env2, opts2)
	if err != nil {
		t.Fatalf("StartTuner: %v", err)
	}
	if _, err := tuner2.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	snap2, err := tuner2.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := ResumeTuner(cfg, env2, snap2); err == nil {
		t.Error("setup-cost snapshot resumed without the function")
	}
	if _, err := ResumeTunerWith(cfg, env2, snap2, ResumeFuncs{SetupCost: setup}); err != nil {
		t.Errorf("ResumeTunerWith with setup cost: %v", err)
	}
}
