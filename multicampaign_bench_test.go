package lynceus

import (
	"fmt"
	"testing"

	"repro/internal/optimizer"
)

// BenchmarkMultiCampaignThroughput measures batch campaign throughput: one
// op runs 8 identical Tensorflow-384 LA=2 incremental campaigns to
// completion through the MultiRunner, shared versus share-nothing. The
// campaigns are replicas (same environment instance, seed and budget) — the
// multi-tenant tuning regime the sharing tier targets, where one campaign
// leads every planning decision and the others adopt it from the group
// caches. Results are bitwise identical across the two modes (pinned by
// TestMultiRunnerDisableSharing); only the work to produce them differs.
//
// ns/campaign (total time over campaigns completed) is the gated metric;
// campaigns/sec is reported for readability. The acceptance bar of the
// sharing tier is shared >= 1.5x the share-nothing campaigns/sec on the
// single-core bench box.
func BenchmarkMultiCampaignThroughput(b *testing.B) {
	const campaigns = 8
	job, err := SyntheticTensorflowJob("cnn", 42)
	if err != nil {
		b.Fatalf("SyntheticTensorflowJob: %v", err)
	}
	env, err := NewJobEnvironment(job)
	if err != nil {
		b.Fatalf("NewJobEnvironment: %v", err)
	}
	tmax, err := job.RuntimeForFeasibleFraction(0.5)
	if err != nil {
		b.Fatalf("RuntimeForFeasibleFraction: %v", err)
	}
	bootstrap, err := optimizer.ResolveBootstrapSize(job.Space(), Options{Budget: 1, MaxRuntimeSeconds: 1})
	if err != nil {
		b.Fatalf("ResolveBootstrapSize: %v", err)
	}
	opts := Options{
		Budget:            float64(bootstrap) * job.MeanCost() * 1.35,
		MaxRuntimeSeconds: tmax,
		Seed:              1,
	}
	cfg := TunerConfig{Lookahead: 2, SpeculativeRefit: "incremental"}

	for _, mode := range []struct {
		name           string
		disableSharing bool
	}{
		{name: "shared", disableSharing: false},
		{name: "isolated", disableSharing: true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runner := NewMultiRunner(MultiRunnerConfig{DisableSharing: mode.disableSharing})
				for c := 0; c < campaigns; c++ {
					if err := runner.Add(fmt.Sprintf("c%d", c), cfg, env, opts); err != nil {
						b.Fatalf("Add: %v", err)
					}
				}
				summary, err := runner.Run()
				if err != nil {
					b.Fatalf("Run: %v", err)
				}
				for _, r := range summary.Results {
					if r.Err != nil {
						b.Fatalf("campaign %s: %v", r.Name, r.Err)
					}
				}
			}
			total := float64(b.N * campaigns)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/campaign")
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(total/s, "campaigns/sec")
			}
		})
	}
}
