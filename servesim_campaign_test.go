package lynceus

import (
	"testing"

	"repro/internal/optimizer"
	"repro/internal/servesim"
)

// servesimSpace is the campaign-test configuration space: the batch profile
// over a 144-point reduction of the default space (4 replica counts x 4
// instance types x 3 max-batches x 3 policies), which keeps the LA=2
// campaigns fast enough for the regular test run.
var servesimSpace = servesim.SpaceParams{
	Replicas:   []int{1, 2, 3, 4},
	MaxBatches: []int{4, 8, 16},
}

// servesimCampaign runs one LA=2 incremental-refit campaign on the batch
// serving profile with a fresh environment, returning the result together
// with the environment (for ground-truth queries) and the makespan
// constraint used.
func servesimCampaign(t *testing.T, seed int64, workers int) (Result, *servesim.Env, float64) {
	t.Helper()
	scenario, err := servesim.ProfileScenario("batch")
	if err != nil {
		t.Fatalf("ProfileScenario: %v", err)
	}
	env, err := servesim.NewEnv(scenario, servesimSpace, seed)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	tmax, meanCost, err := env.ApproxStats(0.7, 96)
	if err != nil {
		t.Fatalf("ApproxStats: %v", err)
	}
	bootstrap, err := optimizer.ResolveBootstrapSize(env.Space(), Options{Budget: 1, MaxRuntimeSeconds: 1})
	if err != nil {
		t.Fatalf("ResolveBootstrapSize: %v", err)
	}
	opts := Options{
		Budget:            float64(bootstrap) * meanCost * 4,
		MaxRuntimeSeconds: tmax,
		Seed:              seed,
		ExtraConstraints:  []Constraint{env.Constraint()},
	}
	tuner, err := NewTuner(TunerConfig{
		Lookahead:        2,
		SpeculativeRefit: "incremental",
		Workers:          workers,
	})
	if err != nil {
		t.Fatalf("NewTuner: %v", err)
	}
	res, err := tuner.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	return res, env, tmax
}

// TestServesimCampaignWorkerIndependence runs the same stochastic-environment
// campaign with 1 and 8 workers (fresh same-seed environments, so both see
// identical observation noise for identical trial sequences) and requires the
// trial sequences and recommendation to match exactly: planner decisions on a
// noisy environment must not depend on scheduling.
func TestServesimCampaignWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	a, _, _ := servesimCampaign(t, 1, 1)
	b, _, _ := servesimCampaign(t, 1, 8)
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ across worker counts: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs across worker counts: config %d vs %d",
				i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
		}
		if a.Trials[i].Cost != b.Trials[i].Cost {
			t.Fatalf("trial %d observed different costs across worker counts: %v vs %v",
				i, a.Trials[i].Cost, b.Trials[i].Cost)
		}
	}
	if a.Recommended.Config.ID != b.Recommended.Config.ID {
		t.Fatalf("recommendation differs across worker counts: %d vs %d",
			a.Recommended.Config.ID, b.Recommended.Config.ID)
	}
	if a.SpentBudget != b.SpentBudget {
		t.Fatalf("spent budget differs across worker counts: %v vs %v", a.SpentBudget, b.SpentBudget)
	}
}

// TestServesimCampaignQuality is the noise-robustness test of the tuner: on
// the stochastic serving environment, across 5 campaign seeds, the
// recommendation's ground-truth cost (seed-averaged analytic replications)
// must land within 10% of the space optimum on at least 4 seeds.
func TestServesimCampaignQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	const (
		seeds     = 5
		reps      = 5
		tolerance = 1.10
	)
	hits := 0
	var best servesim.TrueStats
	for seed := int64(0); seed < seeds; seed++ {
		res, env, tmax := servesimCampaign(t, seed, 0)
		if seed == 0 {
			// Ground truth and the makespan constraint derive from
			// env-seed-independent streams, so the optimum is shared by every
			// campaign seed and only needs one scan.
			var err error
			best, err = env.Optimum(tmax, reps)
			if err != nil {
				t.Fatalf("Optimum: %v", err)
			}
		}
		got, err := env.True(res.Recommended.Config.ID, reps)
		if err != nil {
			t.Fatalf("seed %d: True: %v", seed, err)
		}
		ratio := got.MeanCost / best.MeanCost
		t.Logf("seed %d: recommended config %d (true cost %.5f), optimum %d (%.5f), ratio %.3f, %d trials",
			seed, res.Recommended.Config.ID, got.MeanCost, best.ConfigID, best.MeanCost, ratio, len(res.Trials))
		if ratio <= tolerance {
			hits++
		}
	}
	if hits < seeds-1 {
		t.Errorf("recommendation within 10%% of the optimum on %d/%d seeds, want >= %d", hits, seeds, seeds-1)
	}
}
