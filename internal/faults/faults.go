// Package faults wraps an optimizer.Environment with deterministic fault
// injection: transient failures, stragglers, permanently broken
// configurations, and repeatable crash points. Every fault is a pure function
// of (seed, configID, attempt), so a failure scenario replays bitwise — the
// same probes fail on the same attempts regardless of wall-clock, worker
// count, or how often the campaign is snapshotted and resumed.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/configspace"
	"repro/internal/optimizer"
)

// Sentinel failures produced by the wrapper. ErrInjectedCrash wraps
// optimizer.ErrEnvironmentFatal, so the retry loop aborts the campaign
// instead of retrying — exactly what a process kill does.
var (
	ErrInjectedCrash     = fmt.Errorf("faults: injected crash: %w", optimizer.ErrEnvironmentFatal)
	ErrInjectedTransient = errors.New("faults: injected transient failure")
	ErrInjectedPermanent = errors.New("faults: injected permanent failure")
)

// DefaultStragglerFactor is the runtime inflation applied to straggler runs
// when Params.StragglerFactor is unset.
const DefaultStragglerFactor = 4.0

// Params configures the injected fault distribution.
type Params struct {
	// Seed keys every fault draw; two wrappers with the same seed inject the
	// identical fault sequence.
	Seed int64 `json:"seed"`
	// TransientRate is the per-attempt probability of a transient failure
	// (spot preemption, network partition). Transient failures are retryable.
	TransientRate float64 `json:"transient_rate"`
	// StragglerRate is the per-attempt probability that a run straggles: its
	// runtime and cost are inflated by StragglerFactor and the measurement is
	// marked TimedOut, as if a timeout-based straggler kill had fired.
	StragglerRate float64 `json:"straggler_rate"`
	// StragglerFactor inflates straggler runtimes; 0 means
	// DefaultStragglerFactor. Must be >= 1 otherwise.
	StragglerFactor float64 `json:"straggler_factor"`
	// FailedCostFraction is the fraction of the real run cost a failed
	// attempt still bills for (failed cloud runs bill for the instance-hours
	// they consumed before dying). In [0, 1].
	FailedCostFraction float64 `json:"failed_cost_fraction"`
	// PermanentIDs lists configurations that always fail permanently — e.g.
	// an instance type the job cannot boot on. Retrying them is useless; the
	// campaign quarantines them (or aborts, per the retry policy).
	PermanentIDs []int `json:"permanent_ids,omitempty"`
	// CrashAtRun injects a single fatal crash on the Nth Run call (1-based)
	// across the wrapper's lifetime; 0 disables it. The crash fires once: a
	// restored wrapper (RestoreEnvState) remembers it already happened, so a
	// resumed campaign is not killed again at the same point.
	CrashAtRun int `json:"crash_at_run,omitempty"`
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.TransientRate < 0 || p.TransientRate > 1 {
		return fmt.Errorf("faults: transient rate %v outside [0,1]", p.TransientRate)
	}
	if p.StragglerRate < 0 || p.StragglerRate > 1 {
		return fmt.Errorf("faults: straggler rate %v outside [0,1]", p.StragglerRate)
	}
	if p.StragglerFactor != 0 && p.StragglerFactor < 1 {
		return fmt.Errorf("faults: straggler factor %v below 1", p.StragglerFactor)
	}
	if p.FailedCostFraction < 0 || p.FailedCostFraction > 1 {
		return fmt.Errorf("faults: failed-cost fraction %v outside [0,1]", p.FailedCostFraction)
	}
	if p.CrashAtRun < 0 {
		return fmt.Errorf("faults: negative crash-at-run index %d", p.CrashAtRun)
	}
	return nil
}

func (p Params) stragglerFactor() float64 {
	if p.StragglerFactor == 0 {
		return DefaultStragglerFactor
	}
	return p.StragglerFactor
}

// Env is a fault-injecting Environment wrapper. It implements
// optimizer.StatefulEnvironment: its counters (global run count, per-config
// attempt counts, whether the crash already fired) travel inside campaign
// snapshots, so a resumed campaign sees the fault stream continue exactly
// where the original left off.
type Env struct {
	inner     optimizer.Environment
	params    Params
	permanent map[int]bool

	mu       sync.Mutex
	runs     int
	crashed  bool
	attempts map[int]int
}

// New wraps an environment with fault injection.
func New(inner optimizer.Environment, params Params) (*Env, error) {
	if inner == nil {
		return nil, errors.New("faults: nil inner environment")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	permanent := make(map[int]bool, len(params.PermanentIDs))
	for _, id := range params.PermanentIDs {
		permanent[id] = true
	}
	return &Env{
		inner:     inner,
		params:    params,
		permanent: permanent,
		attempts:  make(map[int]int),
	}, nil
}

// Space implements optimizer.Environment.
func (e *Env) Space() *configspace.Space { return e.inner.Space() }

// UnitPricePerHour implements optimizer.Environment. Price lookups are
// metadata, not cloud runs; they never fault.
func (e *Env) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	return e.inner.UnitPricePerHour(cfg)
}

// Runs returns how many Run calls the wrapper has served.
func (e *Env) Runs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runs
}

// Crashed reports whether the injected crash already fired.
func (e *Env) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Run implements optimizer.Environment: it advances the deterministic fault
// stream for the configuration and either fails the attempt, degrades it to a
// straggler, or passes the inner measurement through.
func (e *Env) Run(cfg configspace.Config) (optimizer.TrialResult, error) {
	e.mu.Lock()
	e.runs++
	run := e.runs
	e.attempts[cfg.ID]++
	attempt := e.attempts[cfg.ID]
	crash := e.params.CrashAtRun > 0 && !e.crashed && run >= e.params.CrashAtRun
	if crash {
		e.crashed = true
	}
	e.mu.Unlock()

	if crash {
		return optimizer.TrialResult{}, fmt.Errorf("%w: run %d (config %d)", ErrInjectedCrash, run, cfg.ID)
	}

	// Faults are priced off the real measurement: a failed attempt bills a
	// fraction of what the full run would have cost.
	trial, err := e.inner.Run(cfg)
	if err != nil {
		return optimizer.TrialResult{}, err
	}

	if e.permanent[cfg.ID] {
		return optimizer.TrialResult{}, &optimizer.RunError{
			Err:       fmt.Errorf("%w: config %d (attempt %d)", ErrInjectedPermanent, cfg.ID, attempt),
			CostUSD:   e.params.FailedCostFraction * trial.Cost,
			Transient: false,
		}
	}
	if draw(e.params.Seed, cfg.ID, attempt, saltTransient) < e.params.TransientRate {
		return optimizer.TrialResult{}, &optimizer.RunError{
			Err:       fmt.Errorf("%w: config %d (attempt %d)", ErrInjectedTransient, cfg.ID, attempt),
			CostUSD:   e.params.FailedCostFraction * trial.Cost,
			Transient: true,
		}
	}
	if draw(e.params.Seed, cfg.ID, attempt, saltStraggler) < e.params.StragglerRate {
		factor := e.params.stragglerFactor()
		trial.RuntimeSeconds *= factor
		trial.Cost *= factor
		trial.TimedOut = true
	}
	return trial, nil
}

// envState is the serialized counter state.
type envState struct {
	Runs     int         `json:"runs"`
	Crashed  bool        `json:"crashed,omitempty"`
	Attempts map[int]int `json:"attempts,omitempty"`
}

// EnvState implements optimizer.StatefulEnvironment.
func (e *Env) EnvState() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return json.Marshal(envState{Runs: e.runs, Crashed: e.crashed, Attempts: e.attempts})
}

// RestoreEnvState implements optimizer.StatefulEnvironment.
func (e *Env) RestoreEnvState(data []byte) error {
	var s envState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("faults: decoding environment state: %w", err)
	}
	if s.Runs < 0 {
		return fmt.Errorf("faults: negative run count %d in environment state", s.Runs)
	}
	attempts := make(map[int]int, len(s.Attempts))
	for id, n := range s.Attempts {
		if n < 0 {
			return fmt.Errorf("faults: negative attempt count %d for config %d in environment state", n, id)
		}
		attempts[id] = n
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.runs = s.Runs
	e.crashed = s.Crashed
	e.attempts = attempts
	return nil
}

// Stream salts decouple the transient and straggler draws of one attempt.
const (
	saltTransient uint64 = 0xA0761D6478BD642F
	saltStraggler uint64 = 0xE7037ED1A0B428DB
)

// splitmix64 is the SplitMix64 finalizer, the same hash the optimizer's
// retry jitter and bootstrap resampling use.
func splitmix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// draw hashes (seed, configID, attempt, salt) into a uniform float64 in [0,1).
func draw(seed int64, configID, attempt int, salt uint64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 +
		uint64(configID)*0xD1B54A32D192ED03 +
		uint64(attempt)*0x94D049BB133111EB + salt
	return float64(splitmix64(x)>>11) / (1 << 53)
}
