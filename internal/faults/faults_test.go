package faults

import (
	"errors"
	"testing"

	"repro/internal/configspace"
	"repro/internal/dataset"
	"repro/internal/optimizer"
)

func fixtureEnv(t *testing.T) *optimizer.JobEnvironment {
	t.Helper()
	space, err := configspace.New([]configspace.Dimension{
		{Name: "vm", Values: []float64{0, 1, 2}},
		{Name: "workers", Values: []float64{2, 4, 8, 16}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New: %v", err)
	}
	measurements := make([]dataset.Measurement, space.Size())
	for id := 0; id < space.Size(); id++ {
		runtime := float64(1200 - 90*id)
		price := 0.5 + 0.1*float64(id)
		measurements[id] = dataset.Measurement{
			ConfigID:         id,
			RuntimeSeconds:   runtime,
			UnitPricePerHour: price,
			Cost:             runtime / 3600 * price,
		}
	}
	job, err := dataset.NewJob("fixture", space, measurements, 0)
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	env, err := optimizer.NewJobEnvironment(job)
	if err != nil {
		t.Fatalf("NewJobEnvironment: %v", err)
	}
	return env
}

func mustCfg(t *testing.T, env optimizer.Environment, id int) configspace.Config {
	t.Helper()
	cfg, err := env.Space().Config(id)
	if err != nil {
		t.Fatalf("Config(%d): %v", id, err)
	}
	return cfg
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{TransientRate: -0.1},
		{TransientRate: 1.1},
		{StragglerRate: 2},
		{StragglerFactor: 0.5},
		{FailedCostFraction: -1},
		{CrashAtRun: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params %d accepted: %+v", i, p)
		}
	}
	if err := (Params{TransientRate: 0.1, StragglerRate: 0.05, StragglerFactor: 3, FailedCostFraction: 0.25}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if _, err := New(nil, Params{}); err == nil {
		t.Error("nil inner environment accepted")
	}
}

// outcome flattens one Run call for comparison.
type outcome struct {
	cost     float64
	runtime  float64
	timedOut bool
	err      string
}

func sequence(t *testing.T, params Params, ids []int) []outcome {
	t.Helper()
	env, err := New(fixtureEnv(t), params)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out := make([]outcome, len(ids))
	for i, id := range ids {
		trial, err := env.Run(mustCfg(t, env, id))
		out[i] = outcome{cost: trial.Cost, runtime: trial.RuntimeSeconds, timedOut: trial.TimedOut}
		if err != nil {
			out[i].err = err.Error()
		}
	}
	return out
}

func TestFaultStreamIsDeterministic(t *testing.T) {
	params := Params{Seed: 11, TransientRate: 0.4, StragglerRate: 0.3, FailedCostFraction: 0.5}
	ids := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	a := sequence(t, params, ids)
	b := sequence(t, params, ids)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The stream must actually inject something at these rates.
	var failures, stragglers int
	for _, o := range a {
		if o.err != "" {
			failures++
		}
		if o.timedOut {
			stragglers++
		}
	}
	if failures == 0 {
		t.Error("40% transient rate injected no failure in 20 runs")
	}
	if stragglers == 0 {
		t.Error("30% straggler rate injected no straggler in 20 runs")
	}
	// A different seed must yield a different fault pattern.
	params.Seed = 12
	c := sequence(t, params, ids)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("fault stream identical under a different seed")
	}
}

func TestTransientFaultsAreRetryableAndPriced(t *testing.T) {
	env, err := New(fixtureEnv(t), Params{Seed: 11, TransientRate: 1, FailedCostFraction: 0.5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	inner := fixtureEnv(t)
	want, err := inner.Run(mustCfg(t, inner, 3))
	if err != nil {
		t.Fatalf("inner Run: %v", err)
	}
	_, rerr := env.Run(mustCfg(t, env, 3))
	var runErr *optimizer.RunError
	if !errors.As(rerr, &runErr) {
		t.Fatalf("transient fault = %T %v, want *RunError", rerr, rerr)
	}
	if !runErr.Transient || !errors.Is(rerr, ErrInjectedTransient) {
		t.Errorf("transient fault misclassified: transient=%v err=%v", runErr.Transient, rerr)
	}
	if runErr.CostUSD != 0.5*want.Cost {
		t.Errorf("failed attempt billed %v, want %v", runErr.CostUSD, 0.5*want.Cost)
	}
}

func TestPermanentIDsAlwaysFail(t *testing.T) {
	env, err := New(fixtureEnv(t), Params{Seed: 11, PermanentIDs: []int{4}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		_, rerr := env.Run(mustCfg(t, env, 4))
		var runErr *optimizer.RunError
		if !errors.As(rerr, &runErr) || runErr.Transient || !errors.Is(rerr, ErrInjectedPermanent) {
			t.Fatalf("attempt %d on permanent config = %v, want permanent RunError", attempt, rerr)
		}
	}
	if _, err := env.Run(mustCfg(t, env, 5)); err != nil {
		t.Errorf("non-listed config failed: %v", err)
	}
}

func TestStragglerInflatesMeasurement(t *testing.T) {
	env, err := New(fixtureEnv(t), Params{Seed: 11, StragglerRate: 1, StragglerFactor: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	inner := fixtureEnv(t)
	want, err := inner.Run(mustCfg(t, inner, 2))
	if err != nil {
		t.Fatalf("inner Run: %v", err)
	}
	got, err := env.Run(mustCfg(t, env, 2))
	if err != nil {
		t.Fatalf("straggler Run: %v", err)
	}
	if !got.TimedOut || got.RuntimeSeconds != 3*want.RuntimeSeconds || got.Cost != 3*want.Cost {
		t.Errorf("straggler = %+v, want 3x inflation of %+v with TimedOut", got, want)
	}
}

func TestCrashFiresOnceAndIsFatal(t *testing.T) {
	env, err := New(fixtureEnv(t), Params{Seed: 11, CrashAtRun: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := env.Run(mustCfg(t, env, 0)); err != nil {
		t.Fatalf("run before crash point failed: %v", err)
	}
	_, cerr := env.Run(mustCfg(t, env, 1))
	if !errors.Is(cerr, ErrInjectedCrash) || !errors.Is(cerr, optimizer.ErrEnvironmentFatal) {
		t.Fatalf("crash = %v, want ErrInjectedCrash wrapping ErrEnvironmentFatal", cerr)
	}
	if !env.Crashed() {
		t.Error("Crashed() false after the crash fired")
	}
	if _, err := env.Run(mustCfg(t, env, 1)); err != nil {
		t.Errorf("crash fired twice: %v", err)
	}
}

func TestEnvStateRoundTrip(t *testing.T) {
	params := Params{Seed: 11, TransientRate: 0.4, FailedCostFraction: 0.5}
	a, err := New(fixtureEnv(t), params)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Advance the fault stream: attempt counters decide future faults.
	ids := []int{0, 1, 1, 2, 3, 3, 3}
	for _, id := range ids {
		a.Run(mustCfg(t, a, id))
	}
	state, err := a.EnvState()
	if err != nil {
		t.Fatalf("EnvState: %v", err)
	}

	b, err := New(fixtureEnv(t), params)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := b.RestoreEnvState(state); err != nil {
		t.Fatalf("RestoreEnvState: %v", err)
	}
	if b.Runs() != a.Runs() {
		t.Fatalf("restored run count %d, want %d", b.Runs(), a.Runs())
	}
	// Both environments must now produce identical outcomes on the same tail.
	tail := []int{0, 1, 2, 3, 4, 5, 0, 1, 2, 3}
	for i, id := range tail {
		ta, ea := a.Run(mustCfg(t, a, id))
		tb, eb := b.Run(mustCfg(t, b, id))
		if (ea == nil) != (eb == nil) {
			t.Fatalf("tail run %d: errors diverged (%v vs %v)", i, ea, eb)
		}
		if ea != nil && ea.Error() != eb.Error() {
			t.Fatalf("tail run %d: error text diverged (%v vs %v)", i, ea, eb)
		}
		if ta.Cost != tb.Cost || ta.TimedOut != tb.TimedOut {
			t.Fatalf("tail run %d: outcomes diverged (%+v vs %+v)", i, ta, tb)
		}
	}

	if err := b.RestoreEnvState([]byte("{")); err == nil {
		t.Error("corrupt state accepted")
	}
	if err := b.RestoreEnvState([]byte(`{"runs":-1}`)); err == nil {
		t.Error("negative run count accepted")
	}
}

func TestPriceLookupsNeverFault(t *testing.T) {
	env, err := New(fixtureEnv(t), Params{Seed: 11, TransientRate: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for id := 0; id < env.Space().Size(); id++ {
		if _, err := env.UnitPricePerHour(mustCfg(t, env, id)); err != nil {
			t.Fatalf("price lookup %d faulted: %v", id, err)
		}
	}
	if env.Runs() != 0 {
		t.Errorf("price lookups consumed %d fault-stream runs", env.Runs())
	}
}
