//go:build race

package core

// raceEnabled reports whether the race detector instruments this build; the
// timing-sensitive scaling test skips itself under it (every measured side
// slows ~20x and CI pays the bill without learning anything new).
const raceEnabled = true
