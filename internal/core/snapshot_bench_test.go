package core

import (
	"testing"

	"repro/internal/optimizer"
	"repro/internal/synth"
)

// snapshotBenchCampaign runs a paper-scale Tensorflow-384 LA=1 campaign to
// completion and returns the Lynceus instance, environment and options needed
// to resume its snapshot.
func snapshotBenchCampaign(tb testing.TB) (*Lynceus, optimizer.Environment, *Campaign) {
	tb.Helper()
	job, err := synth.TensorflowJob(synth.CNN, 42)
	if err != nil {
		tb.Fatalf("TensorflowJob: %v", err)
	}
	env, err := optimizer.NewJobEnvironment(job)
	if err != nil {
		tb.Fatalf("NewJobEnvironment: %v", err)
	}
	tmax, err := job.RuntimeForFeasibleFraction(0.5)
	if err != nil {
		tb.Fatalf("RuntimeForFeasibleFraction: %v", err)
	}
	bootstrap, err := optimizer.ResolveBootstrapSize(job.Space(), optimizer.Options{Budget: 1, MaxRuntimeSeconds: 1})
	if err != nil {
		tb.Fatalf("ResolveBootstrapSize: %v", err)
	}
	opts := optimizer.Options{
		Budget:            float64(bootstrap) * job.MeanCost() * 1.3,
		MaxRuntimeSeconds: tmax,
		Seed:              7,
	}
	l, err := New(Params{Lookahead: 1})
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	campaign, err := l.NewCampaign(env, opts)
	if err != nil {
		tb.Fatalf("NewCampaign: %v", err)
	}
	if _, err := campaign.Run(); err != nil {
		tb.Fatalf("Run: %v", err)
	}
	return l, env, campaign
}

// BenchmarkSnapshotRestore tracks the two halves of the checkpointing path on
// a completed paper-scale campaign: op=snapshot serializes the campaign state
// (dominated by fitting the embedded warm-start ensemble), op=restore parses,
// validates and rebuilds a runnable campaign from those bytes. Both must stay
// cheap relative to one planning decision — checkpointing every step is the
// intended usage (see cmd/lynceus-tune -checkpoint), so a regression here
// taxes every trial of every fault-tolerant campaign.
func BenchmarkSnapshotRestore(b *testing.B) {
	l, env, campaign := snapshotBenchCampaign(b)
	snap, err := campaign.Snapshot()
	if err != nil {
		b.Fatalf("Snapshot: %v", err)
	}
	b.Run("op=snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := campaign.Snapshot(); err != nil {
				b.Fatalf("Snapshot: %v", err)
			}
		}
	})
	b.Run("op=restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resumed, err := l.ResumeCampaign(env, snap)
			if err != nil {
				b.Fatalf("ResumeCampaign: %v", err)
			}
			if !resumed.Done() {
				b.Fatal("resumed campaign not done")
			}
		}
	})
}
