package core

import (
	"testing"

	"repro/internal/configspace"
)

func searchSpace(t *testing.T, n int) *configspace.Space {
	t.Helper()
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	s, err := configspace.NewStreaming([]configspace.Dimension{{Name: "x", Values: values}}, nil)
	if err != nil {
		t.Fatalf("NewStreaming error: %v", err)
	}
	return s
}

func TestExhaustiveSelectsAllUntested(t *testing.T) {
	space := searchSpace(t, 10)
	tested := map[int]bool{2: true, 7: true}
	ids, err := Exhaustive{}.Select(space, func(id int) bool { return tested[id] }, 8, 0, 1)
	if err != nil {
		t.Fatalf("Select error: %v", err)
	}
	want := []int{0, 1, 3, 4, 5, 6, 8, 9}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestSampledIsDeterministicAndBounded(t *testing.T) {
	space := searchSpace(t, 10_000)
	none := func(int) bool { return false }
	s := Sampled{Size: 64}

	a, err := s.Select(space, none, space.Size(), 3, 42)
	if err != nil {
		t.Fatalf("Select error: %v", err)
	}
	b, err := s.Select(space, none, space.Size(), 3, 42)
	if err != nil {
		t.Fatalf("Select error: %v", err)
	}
	if len(a) != 64 {
		t.Fatalf("sample size = %d, want 64", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, iteration) drew different samples: %v vs %v", a, b)
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("sample not strictly increasing: %v", a)
		}
		if a[i] < 0 || a[i] >= space.Size() {
			t.Fatalf("sample id %d out of range", a[i])
		}
	}

	// A different iteration draws a different subsample (covering the space
	// over the campaign).
	c, err := s.Select(space, none, space.Size(), 4, 42)
	if err != nil {
		t.Fatalf("Select error: %v", err)
	}
	same := 0
	for i := range c {
		if c[i] == a[i] {
			same++
		}
	}
	if same == len(c) {
		t.Fatal("iterations 3 and 4 drew the identical subsample")
	}
}

func TestSampledSkipsTestedIDs(t *testing.T) {
	space := searchSpace(t, 5_000)
	tested := func(id int) bool { return id%2 == 0 }
	ids, err := Sampled{Size: 128}.Select(space, tested, space.Size()/2, 1, 9)
	if err != nil {
		t.Fatalf("Select error: %v", err)
	}
	if len(ids) != 128 {
		t.Fatalf("sample size = %d, want 128", len(ids))
	}
	for _, id := range ids {
		if id%2 == 0 {
			t.Fatalf("sample contains tested id %d", id)
		}
	}
}

func TestSampledDegeneratesToExhaustive(t *testing.T) {
	space := searchSpace(t, 100)
	tested := func(id int) bool { return id >= 30 }
	ids, err := Sampled{Size: 64}.Select(space, tested, 30, 2, 5)
	if err != nil {
		t.Fatalf("Select error: %v", err)
	}
	if len(ids) != 30 {
		t.Fatalf("sample = %d ids, want all 30 untested", len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("ids = %v, want 0..29", ids)
		}
	}
}

func TestSampledSizeAtLeastSpaceIsExhaustiveAndDeterministic(t *testing.T) {
	space := searchSpace(t, 50)
	none := func(int) bool { return false }
	for _, size := range []int{50, 51, 1024} {
		s := Sampled{Size: size}
		var first []int
		// The selection must be the full untested set in increasing ID order,
		// identical across iterations and seeds (nothing left to sample).
		for _, key := range []struct {
			iter int
			seed int64
		}{{0, 1}, {7, 1}, {0, 99}} {
			ids, err := s.Select(space, none, space.Size(), key.iter, key.seed)
			if err != nil {
				t.Fatalf("Select(size=%d, iter=%d, seed=%d): %v", size, key.iter, key.seed, err)
			}
			if len(ids) != space.Size() {
				t.Fatalf("size=%d returned %d ids, want the whole space (%d)", size, len(ids), space.Size())
			}
			for i, id := range ids {
				if id != i {
					t.Fatalf("size=%d ids = %v, want 0..%d", size, ids, space.Size()-1)
				}
			}
			if first == nil {
				first = ids
				continue
			}
			for i := range ids {
				if ids[i] != first[i] {
					t.Fatalf("degenerate selection varies with (iteration, seed): %v vs %v", ids, first)
				}
			}
		}
	}
}

func TestSampledRankedFallback(t *testing.T) {
	space := searchSpace(t, 1_000)
	tested := func(id int) bool { return id%3 != 0 }
	got := Sampled{}.rankedSample(space, tested, 16, 11, 4)
	if len(got) != 16 {
		t.Fatalf("ranked sample = %d ids, want 16", len(got))
	}
	seen := map[int]bool{}
	for _, id := range got {
		if id%3 != 0 {
			t.Fatalf("ranked sample contains tested id %d", id)
		}
		if seen[id] {
			t.Fatalf("ranked sample repeats id %d", id)
		}
		seen[id] = true
	}
	again := Sampled{}.rankedSample(space, tested, 16, 11, 4)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("ranked fallback is not deterministic")
		}
	}
}

func TestResolveStrategyAuto(t *testing.T) {
	if _, ok := resolveStrategy(nil, DefaultAutoSampleThreshold).(Exhaustive); !ok {
		t.Error("small space should resolve to Exhaustive")
	}
	if _, ok := resolveStrategy(nil, DefaultAutoSampleThreshold+1).(Sampled); !ok {
		t.Error("large space should resolve to Sampled")
	}
	if _, ok := resolveStrategy(Exhaustive{}, 1_000_000).(Exhaustive); !ok {
		t.Error("explicit strategy must win over auto")
	}
}
