package core

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/configspace"
	"repro/internal/optimizer"
)

// sameTrials compares two trial sequences bitwise (IDs, cost and runtime
// bits, timeout flags, extra metrics).
func sameTrials(t *testing.T, label string, got, want []optimizer.TrialResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d trials, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Config.ID != w.Config.ID {
			t.Fatalf("%s: trial %d config %d, want %d", label, i, g.Config.ID, w.Config.ID)
		}
		if math.Float64bits(g.Cost) != math.Float64bits(w.Cost) ||
			math.Float64bits(g.RuntimeSeconds) != math.Float64bits(w.RuntimeSeconds) ||
			g.TimedOut != w.TimedOut {
			t.Fatalf("%s: trial %d differs: %+v vs %+v", label, i, g, w)
		}
		for k, v := range w.Extra {
			if math.Float64bits(g.Extra[k]) != math.Float64bits(v) {
				t.Fatalf("%s: trial %d extra %q = %v, want %v", label, i, k, g.Extra[k], v)
			}
		}
	}
}

func sameResult(t *testing.T, label string, got, want optimizer.Result) {
	t.Helper()
	if got.Recommended.Config.ID != want.Recommended.Config.ID {
		t.Fatalf("%s: recommended %d, want %d", label, got.Recommended.Config.ID, want.Recommended.Config.ID)
	}
	if got.RecommendedFeasible != want.RecommendedFeasible {
		t.Fatalf("%s: feasible %v, want %v", label, got.RecommendedFeasible, want.RecommendedFeasible)
	}
	if math.Float64bits(got.SpentBudget) != math.Float64bits(want.SpentBudget) {
		t.Fatalf("%s: spent %v, want %v", label, got.SpentBudget, want.SpentBudget)
	}
	sameTrials(t, label, got.Trials, want.Trials)
}

// TestSharedCampaignsBitwiseIdenticalToIsolated is the sharing determinism
// contract: a batch mixing replica campaigns (same seed — maximal cache
// adoption), different seeds and a different budget, run concurrently
// through one share group, must produce exactly the trial sequences and
// recommendations of the same campaigns run alone.
func TestSharedCampaignsBitwiseIdenticalToIsolated(t *testing.T) {
	params := fastParams(2)
	params.SpeculativeRefit = SpecRefitIncremental
	l, err := New(params)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}

	type spec struct {
		name   string
		seed   int64
		budget float64
	}
	base := fixtureOptions(t, 0)
	specs := []spec{
		{name: "replica-a", seed: 5, budget: base.Budget},
		{name: "replica-b", seed: 5, budget: base.Budget},
		{name: "replica-c", seed: 5, budget: base.Budget},
		{name: "other-seed", seed: 11, budget: base.Budget},
		{name: "tight-budget", seed: 5, budget: base.Budget * 0.6},
	}

	// Isolated baselines, one campaign at a time, share-nothing.
	isolated := make(map[string]optimizer.Result, len(specs))
	for _, s := range specs {
		opts := base
		opts.Seed, opts.Budget = s.seed, s.budget
		c, err := l.NewCampaign(fixtureEnv(t), opts)
		if err != nil {
			t.Fatalf("NewCampaign(%s) error: %v", s.name, err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatalf("isolated %s: %v", s.name, err)
		}
		isolated[s.name] = res
	}

	runner := NewMultiRunner(4, nil)
	for _, s := range specs {
		opts := base
		opts.Seed, opts.Budget = s.seed, s.budget
		if err := runner.Add(s.name, l, fixtureEnv(t), opts); err != nil {
			t.Fatalf("Add(%s) error: %v", s.name, err)
		}
	}
	summary, err := runner.Run()
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if len(summary.Results) != len(specs) {
		t.Fatalf("%d results, want %d", len(summary.Results), len(specs))
	}
	for i, r := range summary.Results {
		if r.Name != specs[i].name {
			t.Fatalf("result %d is %q, want %q (Add order)", i, r.Name, specs[i].name)
		}
		if r.Err != nil {
			t.Fatalf("shared %s: %v", r.Name, r.Err)
		}
		sameResult(t, r.Name, r.Result, isolated[r.Name])
	}
	if summary.CampaignsPerSec <= 0 {
		t.Fatalf("CampaignsPerSec = %v", summary.CampaignsPerSec)
	}
	// The replicas must actually have shared work: at least one decision of
	// replica-b/-c adopted from the cache (the caches are non-empty).
	if runner.Group().decisions.Len() == 0 {
		t.Fatal("no decisions were published to the share group")
	}
}

// TestSharedResumeMidFlightNoBleed stops one campaign mid-flight, resumes it
// from its snapshot into a share group where another campaign already ran to
// completion, and checks the resumed campaign still reproduces its isolated
// run — no state bleeds across campaigns through the group.
func TestSharedResumeMidFlightNoBleed(t *testing.T) {
	params := fastParams(2)
	params.SpeculativeRefit = SpecRefitIncremental
	l, err := New(params)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	opts := fixtureOptions(t, 9)

	// Isolated baseline.
	cIso, err := l.NewCampaign(fixtureEnv(t), opts)
	if err != nil {
		t.Fatalf("NewCampaign error: %v", err)
	}
	want, err := cIso.Run()
	if err != nil {
		t.Fatalf("isolated run: %v", err)
	}

	g := NewShareGroup()

	// An unrelated campaign (different seed) runs to completion in the
	// group first, populating the caches and the arena pool.
	optsOther := fixtureOptions(t, 31)
	other, err := l.NewCampaignShared(fixtureEnv(t), optsOther, g)
	if err != nil {
		t.Fatalf("NewCampaignShared error: %v", err)
	}
	if _, err := other.Run(); err != nil {
		t.Fatalf("other campaign: %v", err)
	}

	// The campaign under test starts shared, is stopped mid-flight...
	cShared, err := l.NewCampaignShared(fixtureEnv(t), opts, g)
	if err != nil {
		t.Fatalf("NewCampaignShared error: %v", err)
	}
	for i := 0; i < 6; i++ {
		done, err := cShared.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if done {
			t.Fatalf("campaign finished during warmup at step %d", i)
		}
	}
	snap, err := cShared.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot error: %v", err)
	}
	cShared = nil // abandoned mid-flight; the group must not care

	// ...and resumes into the same (now warm) group.
	resumed, err := l.ResumeCampaignShared(fixtureEnv(t), snap, ResumeFuncs{}, g)
	if err != nil {
		t.Fatalf("ResumeCampaignShared error: %v", err)
	}
	got, err := resumed.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	sameResult(t, "resumed", got, want)

	// And the other campaign's results were not disturbed either: re-running
	// its spec isolated gives the same answer.
	cOtherIso, err := l.NewCampaign(fixtureEnv(t), optsOther)
	if err != nil {
		t.Fatalf("NewCampaign error: %v", err)
	}
	wantOther, err := cOtherIso.Run()
	if err != nil {
		t.Fatalf("isolated other: %v", err)
	}
	gotOther, err := other.Result()
	if err != nil {
		t.Fatalf("other.Result error: %v", err)
	}
	sameResult(t, "other", gotOther, wantOther)
}

// TestSharedPriceFetchOnce runs two campaigns of one share group over one
// environment instance and checks each configuration's unit price was
// fetched from the environment at most once in total.
func TestSharedPriceFetchOnce(t *testing.T) {
	env := &countingJobEnv{inner: fixtureEnv(t)}
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	g := NewShareGroup()
	for _, seed := range []int64{3, 4} {
		opts := fixtureOptions(t, seed)
		c, err := l.NewCampaignShared(env, opts, g)
		if err != nil {
			t.Fatalf("NewCampaignShared error: %v", err)
		}
		if _, err := c.Run(); err != nil {
			t.Fatalf("run(seed=%d): %v", seed, err)
		}
	}
	if got, max := env.priceCalls.Load(), int64(env.Space().Size()); got > max {
		t.Fatalf("environment fetched %d unit prices, want at most one per config (%d)", got, max)
	}
}

// countingJobEnv wraps a JobEnvironment counting UnitPricePerHour calls.
type countingJobEnv struct {
	inner      *optimizer.JobEnvironment
	priceCalls atomic.Int64
}

func (e *countingJobEnv) Space() *configspace.Space { return e.inner.Space() }

func (e *countingJobEnv) Run(cfg configspace.Config) (optimizer.TrialResult, error) {
	return e.inner.Run(cfg)
}

func (e *countingJobEnv) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	e.priceCalls.Add(1)
	return e.inner.UnitPricePerHour(cfg)
}
