package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/optimizer"
)

// TestSchedulerRunsEveryRootExactlyOnce drives the injector across worker
// counts (including more workers than tasks) and checks every root index is
// executed exactly once.
func TestSchedulerRunsEveryRootExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		const n = 100
		counts := make([]atomic.Int64, n)
		sched := newSpecScheduler(workers)
		sched.run(n, func(w *specWorker, i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: root %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

// TestSchedulerForkJoin spawns subtree tasks from every root task and joins
// them with help: all children must have completed by the time help returns,
// regardless of which worker stole them.
func TestSchedulerForkJoin(t *testing.T) {
	const n = 40
	const children = 5
	var total atomic.Int64
	sched := newSpecScheduler(4)
	sched.run(n, func(w *specWorker, i int) {
		results := make([]int64, children)
		var pending atomic.Int64
		pending.Store(children)
		for c := 0; c < children; c++ {
			res := &results[c]
			w.spawn(func(cw *specWorker) {
				*res = 1
				pending.Add(-1)
			})
		}
		w.help(&pending)
		// The join must have made every child's write visible.
		for c, r := range results {
			if r != 1 {
				t.Errorf("root %d: child %d not joined", i, c)
			}
			total.Add(r)
		}
	})
	if got := total.Load(); got != n*children {
		t.Fatalf("joined children = %d, want %d", got, n*children)
	}
}

// TestSchedulerWorkspaceArenasRecycle pins the per-worker arena: workspaces
// released to a worker come back on its next acquire, so clone slots and
// eligibility buffers are reused across tasks and decisions instead of
// cycling through a shared pool (or the allocator).
func TestSchedulerWorkspaceArenasRecycle(t *testing.T) {
	sched := newSpecScheduler(2)
	w := sched.workers[0]
	first := w.acquireWorkspace()
	w.releaseWorkspace(first)
	if second := w.acquireWorkspace(); second != first {
		t.Error("released workspace was not recycled by the owning worker")
	}
}

// TestAtomicMaxFloatMonotone hammers the lock-free bound from several
// goroutines; the result must be the global maximum and intermediate reads
// must never decrease.
func TestAtomicMaxFloatMonotone(t *testing.T) {
	var bound atomicMaxFloat
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prev := 0.0
			for i := 0; i < 1000; i++ {
				v := float64((i*7+g*13)%997) / 997
				bound.Max(v)
				if got := bound.Load(); got < prev {
					t.Errorf("bound decreased: %v after %v", got, prev)
					return
				} else {
					prev = got
				}
			}
		}(g)
	}
	wg.Wait()
	if got := bound.Load(); got != float64(996)/997 {
		t.Fatalf("final bound = %v, want %v", bound.Load(), float64(996)/997)
	}
}

// TestConcurrentCampaignsThroughScheduler runs two whole optimization
// campaigns concurrently, each with a multi-worker scheduler and forked
// incremental speculation, and checks both reproduce the serial reference
// trial sequence. Under -race (the CI race step runs this package) it
// verifies the scheduler, the per-worker arenas and the lock-free memo reads
// share nothing across planner instances.
func TestConcurrentCampaignsThroughScheduler(t *testing.T) {
	params := fastParams(2)
	params.Workers = 4
	params.SpeculativeRefit = SpecRefitIncremental

	reference := func() []int {
		serial := params
		serial.Workers = 1
		l, err := New(serial)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := l.Optimize(fixtureEnv(t), fixtureOptions(t, 29))
		if err != nil {
			t.Fatalf("reference Optimize: %v", err)
		}
		ids := make([]int, len(res.Trials))
		for i, tr := range res.Trials {
			ids[i] = tr.Config.ID
		}
		return ids
	}()

	const campaigns = 2
	var wg sync.WaitGroup
	trialIDs := make([][]int, campaigns)
	errs := make([]error, campaigns)
	envs := make([]*optimizer.JobEnvironment, campaigns)
	for c := range envs {
		envs[c] = fixtureEnv(t) // built on the test goroutine: t.Fatalf is illegal off it
	}
	opts := fixtureOptions(t, 29)
	for c := 0; c < campaigns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			l, err := New(params)
			if err != nil {
				errs[c] = err
				return
			}
			res, err := l.Optimize(envs[c], opts)
			if err != nil {
				errs[c] = err
				return
			}
			ids := make([]int, len(res.Trials))
			for i, tr := range res.Trials {
				ids[i] = tr.Config.ID
			}
			trialIDs[c] = ids
		}(c)
	}
	wg.Wait()
	for c := 0; c < campaigns; c++ {
		if errs[c] != nil {
			t.Fatalf("campaign %d: %v", c, errs[c])
		}
		if len(trialIDs[c]) != len(reference) {
			t.Fatalf("campaign %d made %d trials, reference %d", c, len(trialIDs[c]), len(reference))
		}
		for i := range reference {
			if trialIDs[c][i] != reference[i] {
				t.Fatalf("campaign %d trial %d = config %d, reference %d",
					c, i, trialIDs[c][i], reference[i])
			}
		}
	}
}
