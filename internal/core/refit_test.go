package core

import (
	"strings"
	"testing"

	"repro/internal/bagging"
	"repro/internal/gp"
	"repro/internal/model"
)

func TestResolveRefitMode(t *testing.T) {
	tests := []struct {
		mode      SpeculativeRefit
		lookahead int
		bound     int
		want      SpeculativeRefit
	}{
		// Explicit modes pass through untouched.
		{SpecRefitFull, 3, 100000, SpecRefitFull},
		{SpecRefitIncremental, 0, 1, SpecRefitIncremental},
		// Auto keeps the exact path on paper-scale searches.
		{SpecRefitAuto, 2, 384, SpecRefitFull},
		{SpecRefitAuto, 2, 72, SpecRefitFull},
		{SpecRefitAuto, 1, 1024, SpecRefitFull},
		// Auto switches once lookahead × candidates crosses the threshold or
		// the lookahead reaches 3.
		{SpecRefitAuto, 2, 1024, SpecRefitIncremental},
		{SpecRefitAuto, 3, 10, SpecRefitIncremental},
	}
	for _, tt := range tests {
		if got := resolveRefitMode(tt.mode, tt.lookahead, tt.bound); got != tt.want {
			t.Errorf("resolveRefitMode(%v, la=%d, bound=%d) = %v, want %v",
				tt.mode, tt.lookahead, tt.bound, got, tt.want)
		}
	}
}

func TestStrategyCandidateBound(t *testing.T) {
	if got := strategyCandidateBound(Exhaustive{}, 384); got != 384 {
		t.Errorf("Exhaustive bound = %d, want 384", got)
	}
	if got := strategyCandidateBound(Sampled{Size: 256}, 100000); got != 256 {
		t.Errorf("Sampled bound = %d, want 256", got)
	}
	if got := strategyCandidateBound(Sampled{}, 100000); got != DefaultSampleSize {
		t.Errorf("Sampled default bound = %d, want %d", got, DefaultSampleSize)
	}
	if got := strategyCandidateBound(Sampled{Size: 512}, 100); got != 100 {
		t.Errorf("Sampled bound capped by space = %d, want 100", got)
	}
}

func TestExplicitIncrementalRejectsNonIncrementalFactory(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 3)
	params, err := Params{
		Lookahead:        2,
		Model:            bagging.Params{NumTrees: 4},
		ModelFactory:     model.NewGPFactory(gp.Params{}),
		SpeculativeRefit: SpecRefitIncremental,
		Workers:          1,
	}.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	if _, err := newPlanner(params, env, opts); err == nil {
		t.Fatal("newPlanner accepted explicit Incremental with a GP factory")
	} else if !strings.Contains(err.Error(), "IncrementalRegressor") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAutoWithNonIncrementalFactoryFallsBackToFull(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 3)
	params, err := Params{
		Lookahead:    3, // Auto would pick Incremental
		Model:        bagging.Params{NumTrees: 4},
		ModelFactory: model.NewGPFactory(gp.Params{}),
		Workers:      1,
	}.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	p, err := newPlanner(params, env, opts)
	if err != nil {
		t.Fatalf("newPlanner: %v", err)
	}
	if p.refitMode != SpecRefitFull {
		t.Fatalf("refit mode = %v, want fallback to SpecRefitFull", p.refitMode)
	}
}

// TestNonRetainingBaggingFactoryResolvesLikeGP pins the capability probe for
// custom bagging factories built without bagging.Params.Incremental: their
// ensembles type-assert as IncrementalRegressor but cannot actually Update,
// so Auto must fall back to Full up front and explicit Incremental must fail
// at construction — never mid-run at the first speculative clone.
func TestNonRetainingBaggingFactoryResolvesLikeGP(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 3)
	plain := model.NewBaggingFactory(bagging.Params{NumTrees: 4}, 1)

	params, err := Params{Lookahead: 3, ModelFactory: plain, Workers: 1}.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	p, err := newPlanner(params, env, opts)
	if err != nil {
		t.Fatalf("newPlanner: %v", err)
	}
	if p.refitMode != SpecRefitFull {
		t.Fatalf("refit mode = %v, want fallback to SpecRefitFull", p.refitMode)
	}

	params.SpeculativeRefit = SpecRefitIncremental
	if _, err := newPlanner(params, env, opts); err == nil {
		t.Fatal("newPlanner accepted explicit Incremental with a non-retaining bagging factory")
	}

	retaining := model.NewBaggingFactory(bagging.Params{NumTrees: 4, Incremental: true}, 1)
	params.ModelFactory = retaining
	p, err = newPlanner(params, env, opts)
	if err != nil {
		t.Fatalf("newPlanner with retaining factory: %v", err)
	}
	if p.refitMode != SpecRefitIncremental {
		t.Fatalf("refit mode = %v, want SpecRefitIncremental", p.refitMode)
	}
}

func TestParamsRejectUnknownRefitMode(t *testing.T) {
	if _, err := New(Params{SpeculativeRefit: SpeculativeRefit(42)}); err == nil {
		t.Fatal("New accepted an unknown speculative-refit mode")
	}
}
