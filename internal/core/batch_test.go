package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/optimizer"
)

// TestOptimizeBatchScalarEquivalence is the campaign-level half of the batch
// determinism contract: routing every full-space model sweep through
// PredictBatch (the default) must profile exactly the same sequence of
// configurations and produce the same recommendation as the scalar
// per-configuration reference path, at LA=1 and at the pruned LA=2 search.
func TestOptimizeBatchScalarEquivalence(t *testing.T) {
	for _, lookahead := range []int{1, 2} {
		for _, seed := range []int64{3, 17} {
			env := fixtureEnv(t)
			opts := fixtureOptions(t, seed)

			batchParams := fastParams(lookahead)
			scalarParams := fastParams(lookahead)
			scalarParams.DisableBatchPredict = true

			batched, err := New(batchParams)
			if err != nil {
				t.Fatalf("New error: %v", err)
			}
			scalar, err := New(scalarParams)
			if err != nil {
				t.Fatalf("New error: %v", err)
			}
			a, err := batched.Optimize(env, opts)
			if err != nil {
				t.Fatalf("LA=%d seed=%d: batched Optimize error: %v", lookahead, seed, err)
			}
			b, err := scalar.Optimize(env, opts)
			if err != nil {
				t.Fatalf("LA=%d seed=%d: scalar Optimize error: %v", lookahead, seed, err)
			}
			if len(a.Trials) != len(b.Trials) {
				t.Fatalf("LA=%d seed=%d: trial counts differ: %d vs %d", lookahead, seed, len(a.Trials), len(b.Trials))
			}
			for i := range a.Trials {
				if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
					t.Fatalf("LA=%d seed=%d: trial %d differs between batch and scalar: %d vs %d",
						lookahead, seed, i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
				}
			}
			if a.Recommended.Config.ID != b.Recommended.Config.ID {
				t.Errorf("LA=%d seed=%d: recommendations differ: %d vs %d",
					lookahead, seed, a.Recommended.Config.ID, b.Recommended.Config.ID)
			}
			if a.SpentBudget != b.SpentBudget {
				t.Errorf("LA=%d seed=%d: spent budgets differ: %v vs %v",
					lookahead, seed, a.SpentBudget, b.SpentBudget)
			}
		}
	}
}

// TestOptimizeBatchScalarEquivalenceWithExtraConstraint repeats the
// equivalence check with an extra constraint model in the set, so the batch
// prefill of the per-metric models is exercised too.
func TestOptimizeBatchScalarEquivalenceWithExtraConstraint(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 11)
	opts.ExtraConstraints = []optimizer.Constraint{{Metric: "energy", Max: 60}}

	batchParams := fastParams(1)
	scalarParams := fastParams(1)
	scalarParams.DisableBatchPredict = true

	batched, err := New(batchParams)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	scalar, err := New(scalarParams)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	a, err := batched.Optimize(env, opts)
	if err != nil {
		t.Fatalf("batched Optimize error: %v", err)
	}
	b, err := scalar.Optimize(env, opts)
	if err != nil {
		t.Fatalf("scalar Optimize error: %v", err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs between batch and scalar: %d vs %d",
				i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
		}
	}
	if a.Recommended.Config.ID != b.Recommended.Config.ID {
		t.Errorf("recommendations differ: %d vs %d", a.Recommended.Config.ID, b.Recommended.Config.ID)
	}
}

// scalarOnlyFactory wraps a model.Factory and hides the batch capability of
// its regressors, mimicking a custom ModelFactory without PredictBatch.
type scalarOnlyFactory struct{ inner model.Factory }

type scalarOnlyRegressor struct{ inner model.Regressor }

func (f scalarOnlyFactory) New(stream int64) model.Regressor {
	return scalarOnlyRegressor{inner: f.inner.New(stream)}
}
func (f scalarOnlyFactory) Name() string { return f.inner.Name() }
func (r scalarOnlyRegressor) Fit(features [][]float64, targets []float64) error {
	return r.inner.Fit(features, targets)
}
func (r scalarOnlyRegressor) Predict(x []float64) (numeric.Gaussian, error) {
	return r.inner.Predict(x)
}

// TestOptimizeNonBatchFactoryMatchesBatchDefault pins the custom-factory
// escape hatch: a factory whose regressors lack PredictBatch must fall back
// to the lazy scalar path (no serial full-space sweep) and still produce the
// decisions of the equivalent batch-capable factory.
func TestOptimizeNonBatchFactoryMatchesBatchDefault(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 7)

	batchParams := fastParams(1)
	batchParams.ModelFactory = model.NewBaggingFactory(batchParams.Model, opts.Seed)
	scalarParams := fastParams(1)
	scalarParams.ModelFactory = scalarOnlyFactory{inner: model.NewBaggingFactory(scalarParams.Model, opts.Seed)}

	batched, err := New(batchParams)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	scalar, err := New(scalarParams)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	a, err := batched.Optimize(env, opts)
	if err != nil {
		t.Fatalf("batched Optimize error: %v", err)
	}
	b, err := scalar.Optimize(env, opts)
	if err != nil {
		t.Fatalf("scalar-only Optimize error: %v", err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs: %d vs %d", i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
		}
	}
	if a.Recommended.Config.ID != b.Recommended.Config.ID {
		t.Errorf("recommendations differ: %d vs %d", a.Recommended.Config.ID, b.Recommended.Config.ID)
	}
}
