package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the shared workspace arena pool of a ShareGroup.
//
// Without sharing, every planner's scheduler owns one pathWorkspace arena per
// worker for the lifetime of the campaign — N concurrent campaigns with K
// workers each hold O(N*K) arenas, nearly all of them idle at any instant
// because only ~GOMAXPROCS schedulers actually run at once. The pool
// promotes those arenas to group-shared, checked out per scheduler run and
// returned afterwards, so N campaigns hold O(GOMAXPROCS) warm arenas total.
//
// Arenas are keyed by a shape string (model factory, model params,
// constraint count — everything that determines the layout of the clone
// slots inside) so a checked-out arena's recycled workspaces always match
// what the planner would have built privately. Reusing a workspace across
// campaigns is safe because cloneSlot re-seeds and fully overwrites every
// value-affecting field of the clone on each use (bagging CloneInto copies
// seed, params, trees and repair state; nothing of the previous campaign
// survives into a prediction).
//
// Ownership is enforced, not assumed: an arena is stamped with the worker
// holding it (a CAS on checkout and release), and every acquire/release of a
// workspace asserts the stamp. A double checkout or a foreign release is a
// bug in the sharing layer and panics immediately instead of corrupting
// scratch state.

// wsArena is one worker's workspace freelist. Only the owning worker — the
// one the owner stamp points at — may touch free, which keeps the freelist
// lock-free exactly like the private per-worker arenas it replaces.
type wsArena struct {
	// shape identifies the workspace layout this arena recycles (see
	// arenaShape); pooled arenas only ever serve planners of the same shape.
	// Private arenas carry an empty shape and never enter a pool.
	shape string

	// owner is the worker currently holding the arena. Private arenas are
	// stamped at construction and never release; pooled arenas are stamped by
	// checkout and cleared by release.
	owner atomic.Pointer[specWorker]

	free []*pathWorkspace
}

// newPrivateArena creates an arena permanently owned by w — the non-shared
// planner case, byte-for-byte the behavior of the former per-worker freelist.
func newPrivateArena(w *specWorker) *wsArena {
	a := &wsArena{}
	a.owner.Store(w)
	return a
}

func (a *wsArena) assertOwner(w *specWorker) {
	if a.owner.Load() != w {
		panic("core: workspace arena touched by a non-owning worker")
	}
}

// acquire hands out a recycled pathWorkspace (or a fresh one on a cold
// arena). Must be called by the owning worker's goroutine.
func (a *wsArena) acquire(w *specWorker) *pathWorkspace {
	a.assertOwner(w)
	if n := len(a.free); n > 0 {
		ws := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return ws
	}
	return &pathWorkspace{}
}

// release returns a workspace to the arena. Must be called by the owning
// worker's goroutine, after the releasing task no longer references any
// clone slot inside.
func (a *wsArena) release(w *specWorker, ws *pathWorkspace) {
	a.assertOwner(w)
	a.free = append(a.free, ws)
}

// arenaPool shelves idle arenas by shape. Checkout and release are short
// critical sections (pop/push on a slice under one mutex); all workspace
// traffic happens on the checked-out arena without the pool lock.
type arenaPool struct {
	mu      sync.Mutex
	shelves map[string][]*wsArena

	// limit bounds the idle arenas retained per shape; releases beyond it
	// drop the arena for the GC, which is what turns O(campaigns*workers)
	// retained scratch into O(GOMAXPROCS).
	limit int
}

func newArenaPool(limit int) *arenaPool {
	if limit < 1 {
		limit = 1
	}
	return &arenaPool{shelves: make(map[string][]*wsArena), limit: limit}
}

// checkout hands w an idle arena of the shape (or a fresh one) and stamps w
// as its owner. Panics if the shelved arena is somehow still owned — that
// would mean two schedulers hold it at once.
func (p *arenaPool) checkout(shape string, w *specWorker) *wsArena {
	var a *wsArena
	p.mu.Lock()
	if shelf := p.shelves[shape]; len(shelf) > 0 {
		a = shelf[len(shelf)-1]
		shelf[len(shelf)-1] = nil
		p.shelves[shape] = shelf[:len(shelf)-1]
	}
	p.mu.Unlock()
	if a == nil {
		a = &wsArena{shape: shape}
	}
	if !a.owner.CompareAndSwap(nil, w) {
		panic("core: arena checked out while still owned")
	}
	return a
}

// release clears the owner stamp and shelves the arena for the next
// checkout, dropping it instead when the shape's shelf is full. Panics if w
// does not own the arena.
func (p *arenaPool) release(a *wsArena, w *specWorker) {
	if !a.owner.CompareAndSwap(w, nil) {
		panic("core: arena released by a non-owning worker")
	}
	p.mu.Lock()
	if shelf := p.shelves[a.shape]; len(shelf) < p.limit {
		p.shelves[a.shape] = append(shelf, a)
	}
	p.mu.Unlock()
}

// retained returns the number of idle arenas currently shelved (all shapes).
func (p *arenaPool) retained() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, shelf := range p.shelves {
		n += len(shelf)
	}
	return n
}

// arenaShape derives the pool shelf key of a planner: everything that
// determines the layout and reuse-compatibility of the pathWorkspaces inside
// (the clone slots are rebuilt from the root models on every use, so only
// structural parameters matter, not per-campaign seeds or histories).
func (p *planner) arenaShape() string {
	return fmt.Sprintf("%T|%s|%+v|x%d", p.factory, p.factory.Name(), p.params.Model, len(p.opts.ExtraConstraints))
}
