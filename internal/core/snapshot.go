package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bagging"
	"repro/internal/optimizer"
)

// SnapshotVersion is the current snapshot format version. Snapshots carry it
// so that a future format change fails loudly on old readers instead of
// resuming a campaign from misinterpreted state.
const SnapshotVersion = 1

// snapshotRetry is the serializable subset of optimizer.RetryPolicy
// (durations as nanoseconds; the Sleep hook is process-local and dropped).
type snapshotRetry struct {
	MaxAttempts   int   `json:"max_attempts,omitempty"`
	TimeoutNS     int64 `json:"timeout_ns,omitempty"`
	BackoffBaseNS int64 `json:"backoff_base_ns,omitempty"`
	BackoffMaxNS  int64 `json:"backoff_max_ns,omitempty"`
	Quarantine    bool  `json:"quarantine,omitempty"`
}

// snapshotOptions is the serializable subset of optimizer.Options.
// BootstrapSize always holds the resolved probe count, so a resume does not
// depend on the default-sizing rule staying unchanged. SetupCost functions
// cannot be serialized; HasSetupCost records that one was in use, and
// ResumeCampaignWith must re-supply it.
type snapshotOptions struct {
	Budget            float64                `json:"budget"`
	MaxRuntimeSeconds float64                `json:"max_runtime_seconds"`
	BootstrapSize     int                    `json:"bootstrap_size"`
	Seed              int64                  `json:"seed"`
	ExtraConstraints  []optimizer.Constraint `json:"extra_constraints,omitempty"`
	HasSetupCost      bool                   `json:"has_setup_cost,omitempty"`
	Retry             snapshotRetry          `json:"retry"`
}

// snapshotTrial is one recorded profiling run. Only the configuration ID is
// stored: features are re-derived from the space on resume, which also
// validates that the snapshot matches the environment.
type snapshotTrial struct {
	ConfigID         int                `json:"config_id"`
	RuntimeSeconds   float64            `json:"runtime_seconds"`
	UnitPricePerHour float64            `json:"unit_price_per_hour"`
	Cost             float64            `json:"cost"`
	TimedOut         bool               `json:"timed_out,omitempty"`
	Extra            map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the versioned durable state of a Campaign. Everything a resume
// needs to continue the bitwise-identical trial sequence is here: options,
// budget spent, the full trial history and quarantine set, the bootstrap
// cursor, and the planner's decision counter (the planner's only cross-
// decision state — price caches, memos and scratch arenas are rebuilt
// lazily). The fitted cost-model ensemble rides along for inspection and
// warm-starting (SnapshotEnsemble); resume refits from the history, so the
// ensemble is informational, not load-bearing.
type Snapshot struct {
	Version       int                    `json:"version"`
	Optimizer     string                 `json:"optimizer"`
	ParamsDigest  string                 `json:"params_digest"`
	SpaceSize     int                    `json:"space_size"`
	SpaceDims     int                    `json:"space_dims"`
	Options       snapshotOptions        `json:"options"`
	SpentBudget   float64                `json:"spent_budget"`
	Trials        []snapshotTrial        `json:"trials"`
	Quarantined   []int                  `json:"quarantined,omitempty"`
	BootProbeIdx  int                    `json:"boot_probe_idx"`
	BootDraws     int                    `json:"boot_draws"`
	BootSuccesses int                    `json:"boot_successes"`
	BootFinished  bool                   `json:"boot_finished,omitempty"`
	Iteration     int                    `json:"iteration"`
	Done          bool                   `json:"done,omitempty"`
	FinishReason  string                 `json:"finish_reason,omitempty"`
	EnvState      json.RawMessage        `json:"env_state,omitempty"`
	CostModel     *bagging.EnsembleState `json:"cost_model,omitempty"`
}

// Finish-reason wire values.
const (
	finishReasonBudget = "budget-exhausted"
	finishReasonSpace  = "space-exhausted"
)

// paramsDigest fingerprints every parameter that influences the decision
// sequence, so a snapshot cannot silently resume under a different
// configuration. Workers is deliberately absent: recommendations are
// worker-count independent, and resuming on a different machine width is a
// supported (and tested) scenario.
func paramsDigest(p Params) string {
	factory := "bagging"
	if p.ModelFactory != nil {
		factory = p.ModelFactory.Name()
	}
	search := "auto"
	if p.Search != nil {
		search = p.Search.Name()
		if s, ok := p.Search.(Sampled); ok {
			search = fmt.Sprintf("sampled/%d", s.Size)
		}
	}
	return fmt.Sprintf("la=%d gamma=%v nodisc=%v gh=%d elig=%v model=%+v factory=%s search=%s prune=%v batch=%v refit=%d",
		p.Lookahead, p.Discount, p.NoDiscount, p.GHOrder, p.EligibilityProb, p.Model, factory, search,
		!p.DisablePruning, !p.DisableBatchPredict, p.SpeculativeRefit)
}

// Snapshot serializes the campaign's durable state. Call it between Steps —
// typically after every trial — and persist the bytes; ResumeCampaign
// continues from them in a fresh process with the bitwise-identical trial
// sequence. Environments implementing optimizer.StatefulEnvironment get
// their state embedded and restored too.
func (c *Campaign) Snapshot() ([]byte, error) {
	trials := c.history.Trials()
	st := make([]snapshotTrial, len(trials))
	for i, tr := range trials {
		st[i] = snapshotTrial{
			ConfigID:         tr.Config.ID,
			RuntimeSeconds:   tr.RuntimeSeconds,
			UnitPricePerHour: tr.UnitPricePerHour,
			Cost:             tr.Cost,
			TimedOut:         tr.TimedOut,
			Extra:            tr.Extra,
		}
	}
	probeIdx, draws, successes, bootFinished := c.boot.State()
	snap := Snapshot{
		Version:      SnapshotVersion,
		Optimizer:    c.l.Name(),
		ParamsDigest: paramsDigest(c.l.params),
		SpaceSize:    c.env.Space().Size(),
		SpaceDims:    c.env.Space().NumDimensions(),
		Options: snapshotOptions{
			Budget:            c.opts.Budget,
			MaxRuntimeSeconds: c.opts.MaxRuntimeSeconds,
			BootstrapSize:     c.boot.Target(),
			Seed:              c.opts.Seed,
			ExtraConstraints:  c.opts.ExtraConstraints,
			HasSetupCost:      c.opts.SetupCost != nil,
			Retry: snapshotRetry{
				MaxAttempts:   c.opts.Retry.MaxAttempts,
				TimeoutNS:     int64(c.opts.Retry.Timeout),
				BackoffBaseNS: int64(c.opts.Retry.BackoffBase),
				BackoffMaxNS:  int64(c.opts.Retry.BackoffMax),
				Quarantine:    c.opts.Retry.Quarantine,
			},
		},
		SpentBudget:   c.budget.Spent(),
		Trials:        st,
		Quarantined:   c.history.QuarantinedIDs(),
		BootProbeIdx:  probeIdx,
		BootDraws:     draws,
		BootSuccesses: successes,
		BootFinished:  bootFinished,
		Iteration:     c.planner.iteration,
		Done:          c.done,
	}
	switch {
	case errors.Is(c.finish, optimizer.ErrBudgetExhausted):
		snap.FinishReason = finishReasonBudget
	case errors.Is(c.finish, optimizer.ErrSpaceExhausted):
		snap.FinishReason = finishReasonSpace
	}
	if se, ok := c.env.(optimizer.StatefulEnvironment); ok {
		raw, err := se.EnvState()
		if err != nil {
			return nil, fmt.Errorf("core: serializing environment state: %w", err)
		}
		snap.EnvState = raw
	}
	if c.l.params.ModelFactory == nil && len(trials) > 0 {
		state, err := c.fittedEnsembleState()
		if err != nil {
			return nil, err
		}
		snap.CostModel = state
	}
	return json.MarshalIndent(snap, "", " ")
}

// fittedEnsembleState fits the default bagging cost model on the current
// history — on the same (seed, iteration) stream the next decision's root
// model will use — and serializes it.
func (c *Campaign) fittedEnsembleState() (*bagging.EnsembleState, error) {
	params := c.l.params.Model
	params.Incremental = false
	ens := bagging.NewFactory(params, c.opts.Seed).New(int64(c.planner.iteration) * 2_000_000_011)
	if err := ens.Fit(c.history.Features(), c.history.Costs()); err != nil {
		return nil, fmt.Errorf("core: fitting snapshot cost model: %w", err)
	}
	return ens.State()
}

// SnapshotEnsemble decodes and reconstructs the cost-model ensemble embedded
// in a campaign snapshot: the default bagging model fitted on the snapshot's
// full history. Use it to inspect a checkpointed campaign's beliefs or to
// warm-start another model from them. Snapshots of campaigns with a custom
// ModelFactory (e.g. "gp") carry no ensemble.
func SnapshotEnsemble(data []byte) (*bagging.Ensemble, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d (this build reads version %d)", snap.Version, SnapshotVersion)
	}
	if snap.CostModel == nil {
		return nil, errors.New("core: snapshot carries no cost-model ensemble")
	}
	return bagging.FromState(snap.CostModel)
}

// ResumeFuncs re-supplies the process-local functions a snapshot cannot
// carry.
type ResumeFuncs struct {
	// SetupCost must be provided when the snapshotted campaign used one.
	SetupCost optimizer.SetupCostFunc
	// Sleep, when non-nil, replaces time.Sleep between retry attempts.
	Sleep func(time.Duration)
}

// ResumeCampaign reconstructs a campaign from a snapshot and continues it
// against the environment. The resumed campaign produces the
// bitwise-identical remaining trial sequence and recommendation as the
// original uninterrupted run (given the same deterministic environment — for
// stateful environments the embedded state is restored, and the environment
// must implement optimizer.StatefulEnvironment).
func (l *Lynceus) ResumeCampaign(env optimizer.Environment, data []byte) (*Campaign, error) {
	return l.ResumeCampaignWith(env, data, ResumeFuncs{})
}

// ResumeCampaignWith is ResumeCampaign with re-supplied process-local
// functions (setup-cost model, retry sleep hook).
func (l *Lynceus) ResumeCampaignWith(env optimizer.Environment, data []byte, fns ResumeFuncs) (*Campaign, error) {
	return l.resumeCampaign(env, data, fns, nil)
}

// resumeCampaign is the shared resume path of ResumeCampaignWith and
// ResumeCampaignShared; sh carries the campaign's share-group binding (nil
// outside a group).
func (l *Lynceus) resumeCampaign(env optimizer.Environment, data []byte, fns ResumeFuncs, sh *sharedCtx) (*Campaign, error) {
	if env == nil {
		return nil, errors.New("core: nil environment")
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d (this build reads version %d)", snap.Version, SnapshotVersion)
	}
	if snap.Optimizer != l.Name() {
		return nil, fmt.Errorf("core: snapshot was taken by %q, resuming with %q", snap.Optimizer, l.Name())
	}
	if digest := paramsDigest(l.params); snap.ParamsDigest != digest {
		return nil, fmt.Errorf("core: snapshot parameters %q do not match this optimizer's %q", snap.ParamsDigest, digest)
	}
	space := env.Space()
	if space.Size() != snap.SpaceSize || space.NumDimensions() != snap.SpaceDims {
		return nil, fmt.Errorf("core: snapshot space (%d configs, %d dims) does not match the environment (%d configs, %d dims)",
			snap.SpaceSize, snap.SpaceDims, space.Size(), space.NumDimensions())
	}
	if snap.Options.HasSetupCost && fns.SetupCost == nil {
		return nil, errors.New("core: the snapshotted campaign used a setup-cost function; resume with ResumeCampaignWith and re-supply it")
	}

	opts := optimizer.Options{
		Budget:            snap.Options.Budget,
		MaxRuntimeSeconds: snap.Options.MaxRuntimeSeconds,
		BootstrapSize:     snap.Options.BootstrapSize,
		Seed:              snap.Options.Seed,
		ExtraConstraints:  snap.Options.ExtraConstraints,
		SetupCost:         fns.SetupCost,
		Retry: optimizer.RetryPolicy{
			MaxAttempts: snap.Options.Retry.MaxAttempts,
			Timeout:     time.Duration(snap.Options.Retry.TimeoutNS),
			BackoffBase: time.Duration(snap.Options.Retry.BackoffBaseNS),
			BackoffMax:  time.Duration(snap.Options.Retry.BackoffMaxNS),
			Quarantine:  snap.Options.Retry.Quarantine,
			Sleep:       fns.Sleep,
		},
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("core: snapshot options: %w", err)
	}

	budget, err := optimizer.NewBudget(opts.Budget)
	if err != nil {
		return nil, err
	}
	if err := budget.Spend(snap.SpentBudget); err != nil {
		return nil, fmt.Errorf("core: snapshot spent budget: %w", err)
	}

	history := optimizer.NewHistory()
	for i, tr := range snap.Trials {
		cfg, err := space.Config(tr.ConfigID)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot trial %d references config %d: %w", i, tr.ConfigID, err)
		}
		history.Add(optimizer.TrialResult{
			Config:           cfg,
			RuntimeSeconds:   tr.RuntimeSeconds,
			UnitPricePerHour: tr.UnitPricePerHour,
			Cost:             tr.Cost,
			TimedOut:         tr.TimedOut,
			Extra:            tr.Extra,
		})
	}
	for _, id := range snap.Quarantined {
		if id < 0 || id >= space.Size() {
			return nil, fmt.Errorf("core: snapshot quarantines config %d outside the space", id)
		}
		history.MarkQuarantined(id)
	}

	// Re-derive the LHS plan from the seed (NewBootstrapper consumes the run
	// rng exactly like the original campaign did) and fast-forward its
	// cursor.
	rng := rand.New(rand.NewSource(opts.Seed))
	boot, err := optimizer.NewBootstrapper(env, snap.Options.BootstrapSize, rng, opts)
	if err != nil {
		return nil, err
	}
	if err := boot.Restore(snap.BootProbeIdx, snap.BootDraws, snap.BootSuccesses, snap.BootFinished); err != nil {
		return nil, err
	}

	planner, err := newPlannerShared(l.params, env, opts, sh)
	if err != nil {
		return nil, err
	}
	if snap.Iteration < 0 {
		return nil, fmt.Errorf("core: snapshot iteration %d is negative", snap.Iteration)
	}
	planner.iteration = snap.Iteration

	if len(snap.EnvState) > 0 {
		se, ok := env.(optimizer.StatefulEnvironment)
		if !ok {
			return nil, errors.New("core: snapshot carries environment state but the environment cannot restore it (optimizer.StatefulEnvironment)")
		}
		if err := se.RestoreEnvState(snap.EnvState); err != nil {
			return nil, fmt.Errorf("core: restoring environment state: %w", err)
		}
	}

	c := &Campaign{
		l:       l,
		env:     env,
		opts:    opts,
		budget:  budget,
		history: history,
		boot:    boot,
		planner: planner,
		done:    snap.Done,
	}
	switch snap.FinishReason {
	case "":
	case finishReasonBudget:
		c.finish = optimizer.ErrBudgetExhausted
	case finishReasonSpace:
		c.finish = optimizer.ErrSpaceExhausted
	default:
		return nil, fmt.Errorf("core: unknown snapshot finish reason %q", snap.FinishReason)
	}
	return c, nil
}
