package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the planner's depth-aware parallel speculation
// scheduler: a small work-stealing task pool whose unit of work is a
// speculation subtree, not just a root candidate.
//
// The previous design fanned out only over root candidates — one worker per
// candidate, every speculation layer underneath strictly serial — so a few
// expensive lookahead-3 candidates pinned one worker each while the rest of
// the pool idled, and the chunked pruning-threshold tightening inserted a
// synchronization barrier between every chunk. Here, root candidates are
// claimed from a lock-free injector in canonical (rank) order, and the
// speculated outcomes of a candidate's first lookahead layers become bounded
// tasks on per-worker deques that idle workers steal. Joins are "helping":
// a parent whose children are still in flight executes other subtree tasks
// instead of blocking, so no worker ever parks while work exists.
//
// Determinism contract: tasks carry a result slot fixed at spawn time and
// parents reduce child results in canonical (combo-index) order after the
// join, so every reduction applies the same floating-point operations in the
// same order regardless of which worker ran which task, or in which order
// tasks completed. The scheduler itself never makes a value-affecting choice.
//
// Worker states — and with them the per-worker pathWorkspace arenas, see
// specWorker.free — persist on the planner across decisions; only the worker
// goroutines are per-decision.

// specTaskFn is one schedulable unit of work: a speculation subtree (or a
// whole root-candidate path evaluation). The executing worker is passed in so
// the task can draw scratch state from that worker's arena and spawn
// sub-tasks onto its deque.
type specTaskFn func(w *specWorker)

// specWorker is one worker of the scheduler. The deque holds spawned subtree
// tasks (owner pushes and pops at the tail, thieves steal at the head); free
// is the worker-private pathWorkspace arena — only the owning goroutine
// touches it, which is what replaces the contended global sync.Pool of the
// previous design and keeps clone arenas warm across decisions.
type specWorker struct {
	id    int
	sched *specScheduler

	mu    sync.Mutex
	deque []specTaskFn

	// arena is the workspace freelist the worker currently draws from:
	// acquireWorkspace and releaseWorkspace always run on the owning
	// goroutine, so no lock is needed and the clone slots (bagging ensembles,
	// regression-tree arenas) and eligibility buffers inside are reused
	// across candidates, subtrees and decisions without ever crossing a
	// synchronization point. For non-shared planners arena is the permanent
	// private one; shared incremental planners swap in a pool-checked-out
	// arena for the duration of each run (see specScheduler.run).
	arena   *wsArena
	private *wsArena
}

// acquireWorkspace hands out a recycled pathWorkspace (or a fresh one on a
// cold arena). Must be called from the worker's own goroutine.
func (w *specWorker) acquireWorkspace() *pathWorkspace {
	return w.arena.acquire(w)
}

// releaseWorkspace returns a workspace to the worker's arena. Must be called
// from the worker's own goroutine, after the releasing task no longer
// references any clone slot inside (including from spawned children, which
// is guaranteed by joining the children first).
func (w *specWorker) releaseWorkspace(ws *pathWorkspace) {
	w.arena.release(w, ws)
}

// spawn pushes a subtree task onto the worker's deque, from where the owner
// pops it LIFO (locality: the most recently spawned subtree is the hottest)
// and idle workers steal it FIFO (the oldest task roots the largest remaining
// subtree, which keeps steals coarse).
func (w *specWorker) spawn(t specTaskFn) {
	w.mu.Lock()
	w.deque = append(w.deque, t)
	w.mu.Unlock()
}

// popLocal removes the most recently spawned task of this worker's deque.
func (w *specWorker) popLocal() specTaskFn {
	w.mu.Lock()
	n := len(w.deque)
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	t := w.deque[n-1]
	w.deque[n-1] = nil
	w.deque = w.deque[:n-1]
	w.mu.Unlock()
	return t
}

// stealFrom takes the oldest task of a victim's deque.
func (w *specWorker) stealFrom(v *specWorker) specTaskFn {
	v.mu.Lock()
	if len(v.deque) == 0 {
		v.mu.Unlock()
		return nil
	}
	t := v.deque[0]
	v.deque[0] = nil
	v.deque = v.deque[1:]
	v.mu.Unlock()
	return t
}

// findTask returns the next subtree task to run: the worker's own deque
// first, then a sweep over the other workers' deques.
func (w *specWorker) findTask() specTaskFn {
	if t := w.popLocal(); t != nil {
		return t
	}
	workers := w.sched.workers
	for off := 1; off < len(workers); off++ {
		if t := w.stealFrom(workers[(w.id+off)%len(workers)]); t != nil {
			return t
		}
	}
	return nil
}

// Idle backoff: a worker that finds no stealable task yields a few times
// before sleeping briefly. Pure Gosched spinning is fine on idle cores but
// actively steals cycles from the productive goroutines when workers
// outnumber GOMAXPROCS (the oversubscribed single-core case the scaling
// sanity test pins), while the sleep is far shorter than any subtree task,
// so wake-up latency stays negligible.
const (
	idleSpins = 4
	idleSleep = 50 * time.Microsecond
)

// idleWait backs off once per fruitless task search; *spins must be reset to
// zero whenever a task was found.
func idleWait(spins *int) {
	if *spins < idleSpins {
		*spins++
		runtime.Gosched()
		return
	}
	time.Sleep(idleSleep)
}

// help drains subtree tasks until pending reaches zero: the joining parent
// executes its own children (and, when those were stolen, anyone else's
// subtree tasks) instead of blocking. Only spawned subtree tasks are taken —
// never new root tasks — so the goroutine's task-nesting depth stays bounded
// by the spawn depth of the lookahead tree.
func (w *specWorker) help(pending *atomic.Int64) {
	spins := 0
	for pending.Load() > 0 {
		if t := w.findTask(); t != nil {
			spins = 0
			t(w)
			continue
		}
		idleWait(&spins)
	}
}

// specScheduler owns the persistent worker states. It is created once per
// planner (sized by Params.Workers) and reused for every decision; run
// spawns the worker goroutines per invocation.
type specScheduler struct {
	workers []*specWorker

	// wide makes run spawn every worker even when there are fewer root
	// tasks than workers. The planner sets it when subtree forking is
	// possible (incremental refits, lookahead >= 2): a decision whose
	// eligible set has shrunk below the worker count is exactly the regime
	// where the few remaining expensive paths fork, and the extra workers
	// exist to steal those subtrees. Without forking, spare workers would
	// only idle-poll, so non-forking planners keep the root-count cap.
	wide bool

	// pool and shape, when set, make every run check its participating
	// workers' arenas out of the share group's pool instead of using the
	// permanent private ones — the cross-campaign promotion that bounds
	// retained scratch by the pool limit instead of the campaign count.
	// Arenas recycle value-neutral scratch (clone slots are fully re-seeded
	// per use), so where a workspace last served does not affect results.
	pool  *arenaPool
	shape string

	// claimed is the root-task injector of the current run (the count of
	// claimed indices) and rootCount its total. Forking policy derives the
	// unclaimed supply from them (see scarceRoots): while plenty of root
	// candidates are still queued, root-level parallelism alone keeps every
	// worker busy and forking subtrees would only pay task overhead; once
	// the injector runs dry, the remaining expensive paths fork so the
	// whole pool finishes the tail together.
	claimed   atomic.Int64
	rootCount int64
}

func newSpecScheduler(size int) *specScheduler {
	if size < 1 {
		size = 1
	}
	s := &specScheduler{workers: make([]*specWorker, size)}
	for i := range s.workers {
		w := &specWorker{id: i, sched: s}
		w.private = newPrivateArena(w)
		w.arena = w.private
		s.workers[i] = w
	}
	return s
}

// parallel reports whether the scheduler has more than one worker, i.e.
// whether forking speculation subtrees into tasks can gain anything.
func (s *specScheduler) parallel() bool { return len(s.workers) > 1 }

// scarceRoots reports whether the unclaimed root-task supply of the current
// run has dropped below the worker count — the regime where subtree forking
// is the only way to keep the pool busy. Scheduling-dependent by design:
// forked and serial subtree evaluations produce bitwise-identical results,
// so this only decides where work runs, never what it computes.
func (s *specScheduler) scarceRoots() bool {
	return s.rootCount-s.claimed.Load() < int64(len(s.workers))
}

// run executes root(w, i) for i in [0, n): a lock-free injector (an atomic
// counter) hands out root indices in canonical order, and each claimed root
// task runs to completion — including the join of every subtree task it
// forked — before its worker claims the next. After the injector drains,
// workers keep stealing leftover subtree tasks of still-active roots until
// everything completed, so the tail of a decision is worked by the whole
// pool instead of one straggler.
//
// run returns only when every root task (and every subtree task transitively
// spawned by one) has finished.
func (s *specScheduler) run(n int, root func(w *specWorker, i int)) {
	if n <= 0 {
		return
	}
	workers := len(s.workers)
	if workers > n && !s.wide {
		workers = n
	}
	if s.pool != nil {
		for i := 0; i < workers; i++ {
			w := s.workers[i]
			w.arena = s.pool.checkout(s.shape, w)
		}
		defer func() {
			for i := 0; i < workers; i++ {
				w := s.workers[i]
				s.pool.release(w.arena, w)
				w.arena = w.private
			}
		}()
	}
	var activeRoots atomic.Int64
	s.rootCount = int64(n)
	s.claimed.Store(0)
	body := func(w *specWorker) {
		for {
			i := int(s.claimed.Add(1) - 1)
			if i >= n {
				break
			}
			activeRoots.Add(1)
			root(w, i)
			activeRoots.Add(-1)
		}
		// Tail assist: the injector is empty, but roots claimed by other
		// workers may still hold stealable subtree tasks.
		spins := 0
		for activeRoots.Load() > 0 {
			if t := w.findTask(); t != nil {
				spins = 0
				t(w)
				continue
			}
			idleWait(&spins)
		}
	}
	if workers == 1 {
		body(s.workers[0])
		return
	}
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		wg.Add(1)
		go func(w *specWorker) {
			defer wg.Done()
			body(w)
		}(s.workers[i])
	}
	body(s.workers[0])
	wg.Wait()
}

// atomicMaxFloat publishes a monotonically tightening non-negative bound
// without locks: Max only ever raises the stored value, so readers may
// observe a stale-but-valid (looser) bound and still make conservative
// decisions. The pruning threshold of prunedScores is published through two
// of these, which is what removed the chunk barriers of the previous design.
// Only non-negative values may be stored (the zero value reads as 0).
type atomicMaxFloat struct {
	bits atomic.Uint64
}

// Load returns the current bound.
func (a *atomicMaxFloat) Load() float64 {
	return math.Float64frombits(a.bits.Load())
}

// Max raises the bound to v if v is larger.
func (a *atomicMaxFloat) Max(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
