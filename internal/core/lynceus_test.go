package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/bagging"
	"repro/internal/configspace"
	"repro/internal/dataset"
	"repro/internal/optimizer"
)

// fixtureJob builds a 4x4 job with an interior optimum: runtime decreases
// with the cluster size, cost is minimized at a medium cluster with the right
// parameter, and the "bad" parameter values are much slower.
func fixtureJob(t *testing.T) *dataset.Job {
	t.Helper()
	space, err := configspace.New([]configspace.Dimension{
		{Name: "param", Values: []float64{0, 1, 2, 3}},
		{Name: "cluster", Values: []float64{1, 2, 4, 8}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	measurements := make([]dataset.Measurement, space.Size())
	for _, cfg := range space.Configs() {
		param := cfg.Features[0]
		cluster := cfg.Features[1]
		// Parameter 1 is best; others are 2x-6x slower.
		paramFactor := 1.0 + 2.5*math.Abs(param-1)
		// Diminishing parallel speedup.
		runtime := 2400 * paramFactor / math.Pow(cluster, 0.8)
		price := 0.2 * cluster
		measurements[cfg.ID] = dataset.Measurement{
			ConfigID:         cfg.ID,
			RuntimeSeconds:   runtime,
			UnitPricePerHour: price,
			Cost:             runtime / 3600 * price,
			Extra:            map[string]float64{"energy": runtime * cluster / 100},
		}
	}
	job, err := dataset.NewJob("core-fixture", space, measurements, 0)
	if err != nil {
		t.Fatalf("NewJob error: %v", err)
	}
	return job
}

func fixtureEnv(t *testing.T) *optimizer.JobEnvironment {
	t.Helper()
	env, err := optimizer.NewJobEnvironment(fixtureJob(t))
	if err != nil {
		t.Fatalf("NewJobEnvironment error: %v", err)
	}
	return env
}

// fixtureOptions returns options with a medium budget (enough for roughly ten
// average-cost runs) and a runtime constraint satisfied by about half of the
// configurations.
func fixtureOptions(t *testing.T, seed int64) optimizer.Options {
	t.Helper()
	job := fixtureJob(t)
	tmax, err := job.RuntimeForFeasibleFraction(0.6)
	if err != nil {
		t.Fatalf("RuntimeForFeasibleFraction error: %v", err)
	}
	return optimizer.Options{
		Budget:            10 * job.MeanCost(),
		MaxRuntimeSeconds: tmax,
		Seed:              seed,
	}
}

func fastParams(lookahead int) Params {
	return Params{
		Lookahead: lookahead,
		GHOrder:   3,
		Model:     bagging.Params{NumTrees: 6},
		Workers:   2,
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name   string
		params Params
	}{
		{name: "negative lookahead", params: Params{Lookahead: -1}},
		{name: "discount above one", params: Params{Discount: 1.5}},
		{name: "negative gh order", params: Params{GHOrder: -2}},
		{name: "bad eligibility", params: Params{EligibilityProb: 1.5}},
		{name: "negative workers", params: Params{Workers: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.params); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestNewDefaults(t *testing.T) {
	l, err := New(Params{})
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	p := l.Params()
	if p.Lookahead != 0 {
		t.Errorf("default lookahead = %d (zero value means LA=0; use DefaultLookahead explicitly)", p.Lookahead)
	}
	if p.Discount != DefaultDiscount {
		t.Errorf("discount = %v, want %v", p.Discount, DefaultDiscount)
	}
	if p.GHOrder != DefaultGHOrder {
		t.Errorf("gh order = %d, want %d", p.GHOrder, DefaultGHOrder)
	}
	if p.EligibilityProb != DefaultEligibilityProb {
		t.Errorf("eligibility = %v, want %v", p.EligibilityProb, DefaultEligibilityProb)
	}
	if p.Workers <= 0 {
		t.Errorf("workers = %d, want > 0", p.Workers)
	}

	noDiscount, err := New(Params{NoDiscount: true})
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	if noDiscount.Params().Discount != 0 {
		t.Errorf("NoDiscount did not force gamma to 0: %v", noDiscount.Params().Discount)
	}
}

func TestName(t *testing.T) {
	for _, la := range []int{0, 1, 2} {
		l, err := New(fastParams(la))
		if err != nil {
			t.Fatalf("New error: %v", err)
		}
		want := map[int]string{0: "lynceus-la0", 1: "lynceus-la1", 2: "lynceus-la2"}[la]
		if l.Name() != want {
			t.Errorf("Name = %q, want %q", l.Name(), want)
		}
	}
}

func TestOptimizeValidatesInput(t *testing.T) {
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	if _, err := l.Optimize(nil, fixtureOptions(t, 1)); err == nil {
		t.Error("nil environment should error")
	}
	if _, err := l.Optimize(fixtureEnv(t), optimizer.Options{}); err == nil {
		t.Error("invalid options should error")
	}
}

func TestOptimizeFindsGoodConfiguration(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 7)
	optimum, err := env.Job().Optimum(opts.MaxRuntimeSeconds)
	if err != nil {
		t.Fatalf("Optimum error: %v", err)
	}

	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	res, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if !res.RecommendedFeasible {
		t.Error("recommendation not feasible")
	}
	cno := res.Recommended.Cost / optimum.Cost
	if cno > 2.0 {
		t.Errorf("CNO = %v, want <= 2.0 on this easy fixture", cno)
	}
	if res.Explorations < 2 {
		t.Errorf("explorations = %d, want at least the bootstrap size", res.Explorations)
	}
	if res.Explorations != len(res.Trials) {
		t.Errorf("explorations %d != trials %d", res.Explorations, len(res.Trials))
	}
	if res.SpentBudget <= 0 {
		t.Errorf("spent budget = %v", res.SpentBudget)
	}
	if res.OptimizerName != "lynceus-la1" {
		t.Errorf("optimizer name = %q", res.OptimizerName)
	}
}

func TestOptimizeIsDeterministicGivenSeed(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 21)
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	a, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	b, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs: config %d vs %d", i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
		}
	}
	if a.Recommended.Config.ID != b.Recommended.Config.ID {
		t.Errorf("recommendations differ: %d vs %d", a.Recommended.Config.ID, b.Recommended.Config.ID)
	}
}

// TestOptimizeIndependentOfWorkerCount verifies that the parallel evaluation
// of exploration paths never changes the decisions: runs with 1 worker and
// with 8 workers must profile exactly the same sequence of configurations.
func TestOptimizeIndependentOfWorkerCount(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 29)
	serialParams := fastParams(1)
	serialParams.Workers = 1
	parallelParams := fastParams(1)
	parallelParams.Workers = 8

	serial, err := New(serialParams)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	parallel, err := New(parallelParams)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	a, err := serial.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	b, err := parallel.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs between worker counts: %d vs %d",
				i, a.Trials[i].Config.ID, b.Trials[i].Config.ID)
		}
	}
}

func TestOptimizeRespectsTinyBudget(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 3)
	// A budget barely covering the bootstrap leaves no room for exploration.
	opts.Budget = env.Job().MeanCost() * 0.5
	l, err := New(fastParams(2))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	res, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	// Bootstrap is 2 configurations for this space; with essentially no
	// remaining budget the optimizer must stop almost immediately.
	if res.Explorations > 4 {
		t.Errorf("explorations = %d with a tiny budget, want <= 4", res.Explorations)
	}
}

func TestOptimizeLookaheadZeroAndTwo(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 13)
	for _, la := range []int{0, 2} {
		l, err := New(fastParams(la))
		if err != nil {
			t.Fatalf("New error: %v", err)
		}
		res, err := l.Optimize(env, opts)
		if err != nil {
			t.Fatalf("Optimize(LA=%d) error: %v", la, err)
		}
		if res.Explorations < 2 {
			t.Errorf("LA=%d explorations = %d", la, res.Explorations)
		}
	}
}

func TestOptimizeWithExtraConstraint(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 5)
	// Constrain the synthetic energy metric to a value that excludes the
	// largest clusters.
	opts.ExtraConstraints = []optimizer.Constraint{{Metric: "energy", Max: 40}}
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	res, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if res.RecommendedFeasible && res.Recommended.Extra["energy"] > 40 {
		t.Errorf("recommendation violates the energy constraint: %v", res.Recommended.Extra["energy"])
	}
}

func TestOptimizeWithSetupCost(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 9)
	var setupCalls atomic.Int64
	opts.SetupCost = func(from *configspace.Config, to configspace.Config) float64 {
		setupCalls.Add(1)
		if from != nil && from.ID == to.ID {
			return 0
		}
		return 0.01
	}
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	res, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if setupCalls.Load() == 0 {
		t.Error("setup cost function never invoked")
	}
	// The spent budget must include the setup charges: it is strictly larger
	// than the sum of the trial costs.
	sumCosts := 0.0
	for _, tr := range res.Trials {
		sumCosts += tr.Cost
	}
	if res.SpentBudget <= sumCosts {
		t.Errorf("spent budget %v does not include setup costs (trial costs sum to %v)", res.SpentBudget, sumCosts)
	}
}

func TestSelectBestRatio(t *testing.T) {
	if _, ok := selectBestRatio(nil); ok {
		t.Error("empty scores should report not ok")
	}
	scores := []pathScore{
		{candidateID: 3, reward: 1.0, cost: 10},
		{candidateID: 1, reward: 0.5, cost: 1},
		{candidateID: 2, reward: 0.5, cost: 1},
	}
	id, ok := selectBestRatio(scores)
	if !ok || id != 1 {
		t.Errorf("selectBestRatio = %d, %v, want 1 (ties break on lower ID)", id, ok)
	}
	zeroCost := []pathScore{{candidateID: 5, reward: 0.1, cost: 0}}
	if id, ok := selectBestRatio(zeroCost); !ok || id != 5 {
		t.Errorf("zero-cost path selection = %d, %v", id, ok)
	}
}

func TestSchedulerRunIndexesResults(t *testing.T) {
	n := 20
	sched := newSpecScheduler(4)
	scores := make([]pathScore, n)
	sched.run(n, func(w *specWorker, i int) {
		scores[i] = pathScore{candidateID: i, reward: float64(i), cost: 1}
	})
	for i, s := range scores {
		if s.candidateID != i {
			t.Errorf("score %d has candidate %d; results must be indexed by input order", i, s.candidateID)
		}
	}

	wantErr := errors.New("boom")
	errs := make([]error, 10)
	sched.run(10, func(w *specWorker, i int) {
		if i >= 7 {
			errs[i] = fmt.Errorf("wrapped %d: %w", i, wantErr)
		}
	})
	if err := firstError(errs); !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	} else if err.Error() != "wrapped 7: boom" {
		t.Errorf("firstError must return the lowest-indexed error, got %v", err)
	}
}

func TestTrainSetWithEntryDoesNotMutateParent(t *testing.T) {
	parent := &trainSet{
		features: [][]float64{{1, 2}},
		costs:    []float64{3},
		extras:   [][]float64{{5}},
		feasible: []bool{true},
	}
	child := parent.withEntry([]float64{7, 8}, 9, []float64{10}, false)
	if len(parent.costs) != 1 || len(parent.features) != 1 || len(parent.extras[0]) != 1 {
		t.Errorf("parent mutated: %+v", parent)
	}
	if len(child.costs) != 2 || child.costs[1] != 9 || child.extras[0][1] != 10 || child.feasible[1] {
		t.Errorf("child malformed: %+v", child)
	}
	best, ok := child.bestFeasibleCost()
	if !ok || best != 3 {
		t.Errorf("bestFeasibleCost = %v, %v, want 3, true", best, ok)
	}
	if child.maxCost() != 9 {
		t.Errorf("maxCost = %v, want 9", child.maxCost())
	}
}
