package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"runtime"

	"repro/internal/numeric"
	"repro/internal/optimizer"
	"repro/internal/share"
)

// This file implements the cross-campaign sharing tier: campaigns created
// into one ShareGroup resolve content-equal spaces to one interned artifact
// (shared feature columns, shared unit-price cache), adopt each other's
// fitted root model sets and planning decisions when their planning inputs
// are identical, and draw path workspaces from a bounded shared arena pool
// instead of holding private ones per campaign.
//
// Correctness rests on one rule: everything shared is either immutable after
// publication or keyed by EVERY input that influences the shared value.
//   - The model cache key captures (space digest, params digest, seed,
//     iteration, constraint set, full trial history, quarantine set,
//     candidate ID set) — everything a root fit + prefill reads.
//   - The decision cache key additionally captures the remaining budget and
//     every candidate's unit price — with the model key, everything
//     nextConfig reads (the planner is a pure function of these; the
//     worker-count independence and golden tests pin that scheduling never
//     affects the outcome).
// Equal keys therefore imply bitwise-equal outcomes, which is why adopting a
// cached decision preserves the "identical to isolated run" contract.
//
// Sharing is disabled per planner whenever an input cannot be captured in
// the key: a SetupCost function (process-local closure), a custom
// ModelFactory, or a custom SearchStrategy (both identified only by name,
// which two distinct implementations could share). Such campaigns still get
// the interned space and shared prices — only model/decision adoption is off.

// Sizing of the per-group caches and the arena pool.
const (
	// sharedModelCacheEntries bounds the fitted-model cache. One entry per
	// (history prefix, candidate set) — a campaign publishes at most one per
	// decision, and stale iterations age out oldest-first.
	sharedModelCacheEntries = 64
	// sharedDecisionCacheEntries bounds the decision cache. Decisions are
	// two ints, so the bound exists to cap key retention, not value memory.
	sharedDecisionCacheEntries = 512
)

// ShareGroup is the shared state of a set of campaigns: the space-artifact
// registry, the model and decision caches, and the workspace arena pool.
// Create one group per co-scheduled batch (MultiRunner does this) and pass
// it to NewCampaignShared / ResumeCampaignShared. All methods and the
// campaigns created into one group are safe for concurrent use; the group
// holds no reference to any campaign, so abandoning a campaign leaks nothing
// into the others.
type ShareGroup struct {
	registry  *share.Registry
	models    *share.Cache[sharedModels]
	decisions *share.Cache[sharedDecision]
	arenas    *arenaPool
}

// NewShareGroup creates an empty share group.
func NewShareGroup() *ShareGroup {
	return &ShareGroup{
		registry:  share.NewRegistry(),
		models:    share.NewCache[sharedModels](sharedModelCacheEntries),
		decisions: share.NewCache[sharedDecision](sharedDecisionCacheEntries),
		arenas:    newArenaPool(2*runtime.GOMAXPROCS(0) + 2),
	}
}

// sharedModels is one published root model set: fitted, fully prefilled
// (memo all-valid), immutable. cols is the slot-major feature matrix the set
// was prefilled over — the adopter's activeCols — whose backing store was
// freshly allocated by the publisher (never a reused planner buffer), so it
// can never be overwritten under a reader.
type sharedModels struct {
	ms   *modelSet
	cols [][]float64
}

// sharedDecision is one published planning decision: the selected
// configuration ID, or ok=false when no eligible candidate fit the budget
// (itself a cacheable outcome — every replica campaign ends the same way).
type sharedDecision struct {
	id int
	ok bool
}

// sharedCtx is the planner-side handle of a share group binding: the group,
// the interned artifact of the campaign's space, and the shared price cache
// of the campaign's environment instance.
type sharedCtx struct {
	group    *ShareGroup
	artifact *share.Artifact
	prices   *optimizer.PriceCache
}

// bind interns the environment's space and returns the shared context plus
// the environment the campaign must use: the original wrapped to report the
// canonical space instance (a pass-through when it already does).
func (g *ShareGroup) bind(env optimizer.Environment) (*sharedCtx, optimizer.Environment, error) {
	if env == nil {
		return nil, nil, errors.New("core: nil environment")
	}
	artifact := g.registry.Intern(env.Space())
	wrapped := share.WrapEnv(env, artifact.Space())
	return &sharedCtx{group: g, artifact: artifact, prices: artifact.PriceCache(env)}, wrapped, nil
}

// NewCampaignShared is NewCampaign with cross-campaign sharing: the campaign
// joins the group's space artifact (shared feature columns and unit prices)
// and, when its configuration is fully key-capturable, adopts fitted models
// and planning decisions published by identical campaigns in the group. The
// trial sequence and recommendation are bitwise identical to the same
// campaign run in isolation. A nil group degenerates to NewCampaign.
func (l *Lynceus) NewCampaignShared(env optimizer.Environment, opts optimizer.Options, g *ShareGroup) (*Campaign, error) {
	if g == nil {
		return l.NewCampaign(env, opts)
	}
	sh, wrapped, err := g.bind(env)
	if err != nil {
		return nil, err
	}
	return l.newCampaign(wrapped, opts, sh)
}

// ResumeCampaignShared is ResumeCampaignWith into a share group: the resumed
// campaign continues its bitwise-identical trial sequence while sharing
// space artifacts, models and decisions with the group. A nil group
// degenerates to ResumeCampaignWith.
func (l *Lynceus) ResumeCampaignShared(env optimizer.Environment, data []byte, fns ResumeFuncs, g *ShareGroup) (*Campaign, error) {
	if g == nil {
		return l.ResumeCampaignWith(env, data, fns)
	}
	sh, wrapped, err := g.bind(env)
	if err != nil {
		return nil, err
	}
	return l.resumeCampaign(wrapped, data, fns, sh)
}

// sharable reports whether this planner's decisions may be published to and
// adopted from the group caches: every planning input must be capturable in
// the cache key. Process-local functions (SetupCost), custom model
// factories and custom search strategies are identified only by name, which
// the key cannot trust, so they opt the planner out of model/decision
// sharing (space and price sharing still apply).
func (p *planner) sharable() bool {
	if p.shared == nil || p.opts.SetupCost != nil || p.params.ModelFactory != nil {
		return false
	}
	switch p.strategy.(type) {
	case Exhaustive, Sampled:
		return true
	}
	return false
}

// shareKeys computes the model and decision cache keys of the current
// planning call. The model key covers everything the root fit + prefill
// reads; the decision key additionally covers the remaining budget and the
// candidates' unit prices (prices come from the environment, so two
// campaigns on different environment instances share a decision only when
// their prices agree bit for bit). Both are SHA-256 sums, returned as raw
// 32-byte strings.
func (p *planner) shareKeys(h *optimizer.History, remainingBudget float64, extraNames []string, untested []candidate) (modelKey, decisionKey string) {
	buf := p.keyBuf[:0]
	buf = appendKeyStr(buf, "lynceus/share/v1")
	buf = appendKeyStr(buf, p.shared.artifact.Digest())
	buf = appendKeyStr(buf, paramsDigest(p.params))
	buf = appendKeyU64(buf, uint64(p.opts.Seed))
	buf = appendKeyU64(buf, uint64(p.iteration))
	buf = appendKeyF64(buf, p.opts.MaxRuntimeSeconds)
	buf = appendKeyU64(buf, uint64(len(extraNames)))
	for _, name := range extraNames {
		buf = appendKeyStr(buf, name)
		buf = appendKeyF64(buf, p.constraintMax(name))
	}
	trials := h.Trials()
	buf = appendKeyU64(buf, uint64(len(trials)))
	for i := range trials {
		tr := &trials[i]
		buf = appendKeyU64(buf, uint64(tr.Config.ID))
		buf = appendKeyF64(buf, tr.Cost)
		buf = appendKeyF64(buf, tr.RuntimeSeconds)
		if tr.TimedOut {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		for _, name := range extraNames {
			buf = appendKeyF64(buf, tr.Extra[name])
		}
	}
	quarantined := h.QuarantinedIDs()
	buf = appendKeyU64(buf, uint64(len(quarantined)))
	for _, id := range quarantined {
		buf = appendKeyU64(buf, uint64(id))
	}
	buf = appendKeyU64(buf, uint64(len(untested)))
	for i := range untested {
		buf = appendKeyU64(buf, uint64(untested[i].id))
	}
	modelSum := sha256.Sum256(buf)

	buf = appendKeyStr(buf, "decision")
	buf = appendKeyF64(buf, remainingBudget)
	for i := range untested {
		buf = appendKeyF64(buf, untested[i].unitPriceHour)
	}
	decisionSum := sha256.Sum256(buf)

	p.keyBuf = buf[:0]
	return string(modelSum[:]), string(decisionSum[:])
}

func appendKeyU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendKeyF64(buf []byte, v float64) []byte {
	return appendKeyU64(buf, math.Float64bits(v))
}

func appendKeyStr(buf []byte, s string) []byte {
	buf = appendKeyU64(buf, uint64(len(s)))
	return append(buf, s...)
}

// sameGaussians reports whether two Gaussian slices are the same array view
// (identical backing and length) — the cheap identity check that lets
// extraMemosOf skip rewriting its scratch when the memo arrays have not
// moved, keeping concurrent sweeps of one published model set write-free.
func sameGaussians(a, b []numeric.Gaussian) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}
