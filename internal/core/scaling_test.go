package core

import (
	"sort"
	"testing"
	"time"
)

// TestPlannerLA3WorkerScalingSanity pins the regression the parallel
// speculation scheduler was built to fix: before it, LA=3 planning at 8
// workers was ~23% SLOWER per decision than at 1 worker (BENCH.json history)
// because the chunked pruning barriers and the contended workspace pool
// turned extra workers into pure overhead. With the work-stealing scheduler,
// multi-worker planning must never lose to serial planning beyond timing
// noise — and on real multi-core hardware it must win.
//
// The test times the same fixed decision sequence (median of 3 repetitions,
// fresh planner each, so both sides plan identical iterations) and allows a
// 15% noise margin: wall-clock medians on shared CI hardware jitter by
// several percent, while the barrier-era regression was well beyond the
// margin. Skipped with -short; the per-worker benchmarks in
// planner_bench_test.go track the same numbers continuously via BENCH.json.
func TestPlannerLA3WorkerScalingSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive scaling test skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing-sensitive scaling test skipped under the race detector")
	}
	const decisions = 4
	const reps = 3
	measure := func(workers int) float64 {
		times := make([]float64, 0, reps)
		for rep := 0; rep < reps; rep++ {
			fixture := newPlannerBenchFixture(t, 3, SpecRefitAuto, workers)
			// Warm-up decision (untimed): the first decision populates the
			// per-worker arenas — clone slots, eligibility buffers — that
			// persist across decisions in a real campaign.
			fixture.decide(t)
			start := time.Now()
			for d := 0; d < decisions; d++ {
				fixture.decide(t)
			}
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		return times[len(times)/2]
	}
	serial := measure(1)
	parallel := measure(8)
	t.Logf("LA=3 median for %d decisions: workers=1 %.3fs, workers=8 %.3fs (ratio %.2f)",
		decisions, serial, parallel, parallel/serial)
	const tolerance = 1.15
	if parallel > serial*tolerance {
		t.Errorf("LA=3 planning at 8 workers took %.3fs vs %.3fs at 1 worker (%.0f%% slower, tolerance %.0f%%): the speculation scheduler must not lose to serial planning",
			parallel, serial, (parallel/serial-1)*100, (tolerance-1)*100)
	}
}
