package core

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/bagging"
	"repro/internal/model"
	"repro/internal/optimizer"
)

// Defaults used by the paper's prototype (§4.3, §5.2).
const (
	// DefaultLookahead is the lookahead window LA.
	DefaultLookahead = 2
	// DefaultDiscount is the discount factor γ applied to future rewards.
	DefaultDiscount = 0.9
	// DefaultGHOrder is the number K of Gauss-Hermite points used to
	// discretize speculated outcomes.
	DefaultGHOrder = 3
	// DefaultEligibilityProb is the confidence with which a configuration's
	// predicted cost must fit in the remaining budget to stay eligible
	// (Algorithm 1, line 23).
	DefaultEligibilityProb = 0.99
)

// SpeculativeRefit selects how the planner retrains its models along
// speculative exploration paths (see Params.SpeculativeRefit).
type SpeculativeRefit int

const (
	// SpecRefitAuto resolves per planner: Full on paper-scale searches,
	// Incremental once lookahead × candidate bound crosses
	// AutoIncrementalWork (or lookahead reaches 3, where full refits stop
	// being interactive regardless of the candidate count).
	SpecRefitAuto SpeculativeRefit = iota
	// SpecRefitFull refits the whole model set from the extended training
	// matrix at every speculated outcome — the exact historical behavior,
	// bitwise-pinned by the golden campaign tests.
	SpecRefitFull
	// SpecRefitIncremental clones the parent model set once per speculation
	// branch and folds the speculated sample in with a one-sample update
	// (model.IncrementalRegressor), an order of magnitude cheaper per
	// speculation. The resulting trees differ from freshly refitted ones, so
	// recommendations match the Full path statistically, not bitwise
	// (enforced by the recommendation-parity campaign tests).
	SpecRefitIncremental
)

// AutoIncrementalWork is the lookahead × candidate-bound product above which
// SpecRefitAuto switches the speculative path to incremental refits. The
// paper-scale campaigns (384-point Tensorflow, 72-point Scout, LA ≤ 2) stay
// below it and keep the exact Full path by default.
const AutoIncrementalWork = 2048

// Params configures the Lynceus optimizer.
type Params struct {
	// Lookahead is the lookahead window LA; 0 yields the cost-normalized
	// myopic variant evaluated as "LA=0" in §6.2. Negative values are
	// rejected.
	Lookahead int
	// Discount is the discount factor γ in [0,1]; 0 falls back to
	// DefaultDiscount. Set NoDiscount to force γ = 0.
	Discount float64
	// NoDiscount forces γ = 0, which makes Lynceus ignore future rewards.
	NoDiscount bool
	// GHOrder is the Gauss-Hermite order K; 0 falls back to DefaultGHOrder.
	GHOrder int
	// EligibilityProb is the budget-eligibility confidence; 0 falls back to
	// DefaultEligibilityProb.
	EligibilityProb float64
	// Model configures the bagging ensemble used as the default cost model.
	Model bagging.Params
	// ModelFactory overrides the cost-model family; nil uses a bagging
	// ensemble built from Model (the paper's default). A Gaussian-Process
	// factory can be supplied to reproduce the footnote-1 variant.
	ModelFactory model.Factory
	// Search selects which untested configurations the planner considers at
	// each decision. nil resolves per space: Exhaustive (the paper's
	// behavior, bitwise-identical recommendations to the pre-strategy
	// planner) for spaces up to DefaultAutoSampleThreshold configurations,
	// Sampled (deterministic seeded subsampling, bounded per-decision cost)
	// above it. Strategies must be deterministic and worker-count
	// independent; see SearchStrategy.
	Search SearchStrategy
	// Workers sizes the planner's speculation scheduler: the number of
	// worker goroutines that concurrently evaluate exploration paths and —
	// at Lookahead >= 2 with incremental speculative refits — the speculated
	// outcome subtrees forked off each path's shallow layers; 0 uses
	// GOMAXPROCS. The recommendation is independent of the worker count:
	// every path evaluation owns scratch models whose random streams derive
	// from the candidate ID, forked subtree results are reduced in canonical
	// outcome order regardless of completion order, and the pruning
	// threshold is fixed from the unconditionally evaluated seed candidates,
	// so the pruned set never depends on scheduling.
	Workers int
	// DisablePruning turns off the optimistic-bound candidate pruning that
	// cuts the branching factor of the lookahead >= 2 path search. Pruning is
	// deterministic and worker-count independent; disable it to reproduce
	// the exhaustive search (e.g. for ablations).
	DisablePruning bool
	// DisableBatchPredict routes every full-space model sweep through scalar
	// per-configuration Predict calls instead of the batch prediction path.
	// The batch path emits bitwise-identical predictions (enforced by tests),
	// so this knob exists to prove exactly that — equivalence tests run the
	// planner both ways and require identical trial sequences — and as an
	// escape hatch for custom ModelFactory regressors.
	DisableBatchPredict bool
	// SpeculativeRefit selects the refit mode of the speculative path: Full
	// retrains the whole model set per speculated outcome (the exact paper
	// behavior), Incremental clones the parent models and applies one-sample
	// updates, and Auto (the zero value) resolves by lookahead × candidate
	// count — paper-scale searches keep Full, deep or wide searches switch
	// to Incremental. Explicitly requesting Incremental with a ModelFactory
	// whose regressors are not model.IncrementalRegressor (e.g. "gp") is an
	// error; under Auto such factories silently keep Full.
	SpeculativeRefit SpeculativeRefit
}

func (p Params) withDefaults() (Params, error) {
	if p.Lookahead < 0 {
		return Params{}, fmt.Errorf("core: negative lookahead %d", p.Lookahead)
	}
	if p.Discount < 0 || p.Discount > 1 {
		return Params{}, fmt.Errorf("core: discount %v outside [0,1]", p.Discount)
	}
	if p.Discount == 0 && !p.NoDiscount {
		p.Discount = DefaultDiscount
	}
	if p.GHOrder == 0 {
		p.GHOrder = DefaultGHOrder
	}
	if p.GHOrder < 1 {
		return Params{}, fmt.Errorf("core: gauss-hermite order %d below 1", p.GHOrder)
	}
	if p.EligibilityProb == 0 {
		p.EligibilityProb = DefaultEligibilityProb
	}
	if p.EligibilityProb <= 0 || p.EligibilityProb > 1 {
		return Params{}, fmt.Errorf("core: eligibility probability %v outside (0,1]", p.EligibilityProb)
	}
	if p.Workers < 0 {
		return Params{}, fmt.Errorf("core: negative worker count %d", p.Workers)
	}
	if p.Workers == 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	switch p.SpeculativeRefit {
	case SpecRefitAuto, SpecRefitFull, SpecRefitIncremental:
	default:
		return Params{}, fmt.Errorf("core: unknown speculative-refit mode %d", p.SpeculativeRefit)
	}
	return p, nil
}

// Lynceus is the budget-aware, long-sighted optimizer.
type Lynceus struct {
	params Params
}

// New creates a Lynceus optimizer. The zero Params value yields the paper's
// default configuration (LA=2, γ=0.9, 10-tree bagging ensemble).
func New(params Params) (*Lynceus, error) {
	normalized, err := params.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Lynceus{params: normalized}, nil
}

// Name implements optimizer.Optimizer.
func (l *Lynceus) Name() string {
	return fmt.Sprintf("lynceus-la%d", l.params.Lookahead)
}

// Params returns the normalized parameters of the optimizer.
func (l *Lynceus) Params() Params { return l.params }

// Optimize implements optimizer.Optimizer by running Algorithm 1 against the
// environment: it creates a Campaign and steps it to completion. Use
// NewCampaign directly to drive the run trial by trial (checkpointing,
// progress reporting).
func (l *Lynceus) Optimize(env optimizer.Environment, opts optimizer.Options) (optimizer.Result, error) {
	c, err := l.NewCampaign(env, opts)
	if err != nil {
		return optimizer.Result{}, err
	}
	return c.Run()
}

// candidate is one untested configuration together with the a-priori known
// information needed to score it. id is the configuration's ID within the
// space; slot is its dense index within the decision's active candidate set,
// which keys the prediction memos (so memo size tracks the candidate set, not
// the space). features alias the space's shared storage on materialized
// spaces and the planner's decode arena on streaming spaces — read-only
// either way.
type candidate struct {
	id            int
	slot          int
	features      []float64
	unitPriceHour float64
}

// pathScore is the outcome of simulating the exploration paths rooted at one
// candidate: the aggregate expected reward and the expected monetary cost of
// the path.
type pathScore struct {
	candidateID int
	reward      float64
	cost        float64
}

// selectBestRatio returns the candidate with the highest reward-to-cost
// ratio, breaking ties by lower configuration ID.
func selectBestRatio(scores []pathScore) (int, bool) {
	if len(scores) == 0 {
		return 0, false
	}
	sorted := make([]pathScore, len(scores))
	copy(sorted, scores)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].candidateID < sorted[j].candidateID })

	const eps = 1e-12
	ratio := func(s pathScore) float64 {
		den := s.cost
		if den < eps {
			den = eps
		}
		return s.reward / den
	}
	best := sorted[0]
	for _, s := range sorted[1:] {
		if ratio(s) > ratio(best) {
			best = s
		}
	}
	return best.candidateID, true
}
