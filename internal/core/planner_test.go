package core

import (
	"math"
	"testing"

	"repro/internal/bagging"
	"repro/internal/configspace"
	"repro/internal/numeric"
	"repro/internal/optimizer"
)

// testPlanner builds a planner over the fixture environment with the given
// extra constraints.
func testPlanner(t *testing.T, extra []optimizer.Constraint) (*planner, *optimizer.JobEnvironment, optimizer.Options) {
	t.Helper()
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 3)
	opts.ExtraConstraints = extra
	params, err := Params{Lookahead: 1, GHOrder: 3, Model: bagging.Params{NumTrees: 5}, Workers: 2}.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults error: %v", err)
	}
	p, err := newPlanner(params, env, opts)
	if err != nil {
		t.Fatalf("newPlanner error: %v", err)
	}
	return p, env, opts
}

// gatherAll returns the planner's active candidate set over every
// configuration of the space (the Exhaustive selection under an empty
// history), with slots 0..Size-1.
func gatherAll(t *testing.T, p *planner) []candidate {
	t.Helper()
	ids, err := Exhaustive{}.Select(p.space, func(int) bool { return false }, p.space.Size(), 0, 0)
	if err != nil {
		t.Fatalf("Select error: %v", err)
	}
	cands, err := p.gather(ids)
	if err != nil {
		t.Fatalf("gather error: %v", err)
	}
	return cands
}

func TestGatherCollectsUnitPricesAndSharesFeatureStorage(t *testing.T) {
	p, env, _ := testPlanner(t, nil)
	cands := gatherAll(t, p)
	if len(cands) != env.Space().Size() {
		t.Fatalf("candidates = %d, want %d", len(cands), env.Space().Size())
	}
	for _, cand := range cands {
		m, err := env.Job().Measurement(cand.id)
		if err != nil {
			t.Fatalf("Measurement error: %v", err)
		}
		if cand.unitPriceHour != m.UnitPricePerHour {
			t.Errorf("candidate %d unit price = %v, want %v", cand.id, cand.unitPriceHour, m.UnitPricePerHour)
		}
		if len(cand.features) != env.Space().NumDimensions() {
			t.Errorf("candidate %d features = %v", cand.id, cand.features)
		}
		// On materialized spaces candidates must alias the space's shared
		// feature storage instead of re-copying every row.
		shared, err := env.Space().RowFeatures(cand.id)
		if err != nil {
			t.Fatalf("RowFeatures error: %v", err)
		}
		if &cand.features[0] != &shared[0] {
			t.Fatalf("candidate %d copies its features instead of referencing the space's shared storage", cand.id)
		}
	}
}

func TestConstraintNamesAreSortedAndMapped(t *testing.T) {
	p, _, _ := testPlanner(t, []optimizer.Constraint{
		{Metric: "zeta", Max: 5},
		{Metric: "alpha", Max: 2},
	})
	names := p.constraintNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("constraintNames = %v, want sorted [alpha zeta]", names)
	}
	if p.constraintMax("alpha") != 2 || p.constraintMax("zeta") != 5 {
		t.Errorf("constraintMax lookup failed")
	}
	if p.constraintMax("missing") != 0 {
		t.Errorf("constraintMax for unknown metric = %v, want 0", p.constraintMax("missing"))
	}
}

func TestFeasibleSpeculation(t *testing.T) {
	p, _, opts := testPlanner(t, []optimizer.Constraint{{Metric: "energy", Max: 40}})
	cand := gatherAll(t, p)[0]
	names := p.constraintNames()
	// A speculated cost exactly at the runtime threshold is feasible.
	threshold := opts.MaxRuntimeSeconds * cand.unitPriceHour / 3600
	if !p.feasibleSpeculation(cand, threshold*0.99, []float64{10}, names) {
		t.Error("speculation below runtime threshold reported infeasible")
	}
	if p.feasibleSpeculation(cand, threshold*1.01, []float64{10}, names) {
		t.Error("speculation above runtime threshold reported feasible")
	}
	if p.feasibleSpeculation(cand, threshold*0.5, []float64{50}, names) {
		t.Error("speculation violating the energy constraint reported feasible")
	}
}

func TestEligibleFiltersOnBudget(t *testing.T) {
	p, env, opts := testPlanner(t, nil)
	h := optimizer.NewHistory()
	budget, err := optimizer.NewBudget(opts.Budget)
	if err != nil {
		t.Fatalf("NewBudget error: %v", err)
	}
	// Profile a handful of configurations to give the model signal.
	for _, id := range []int{0, 5, 10, 15} {
		cfg, err := env.Space().Config(id)
		if err != nil {
			t.Fatalf("Config error: %v", err)
		}
		if _, err := optimizer.RunTrial(env, cfg, h, budget, nil); err != nil {
			t.Fatalf("RunTrial error: %v", err)
		}
	}
	extraNames := p.constraintNames()
	train := newTrainSetFromHistory(h, opts, extraNames)
	ms := p.newModelSet(1, env.Space().Size())
	if err := ms.fit(train); err != nil {
		t.Fatalf("fit error: %v", err)
	}
	untested := make([]candidate, 0)
	for _, cand := range gatherAll(t, p) {
		if !h.Tested(cand.id) {
			untested = append(untested, cand)
		}
	}

	// With an enormous budget every untested configuration is eligible.
	all, _, _, err := p.eligible(untested, ms, 1e9, nil)
	if err != nil {
		t.Fatalf("eligible error: %v", err)
	}
	if len(all) != len(untested) {
		t.Errorf("eligible with huge budget = %d, want %d", len(all), len(untested))
	}
	// With a zero budget nothing is eligible.
	none, _, _, err := p.eligible(untested, ms, 0, nil)
	if err != nil {
		t.Fatalf("eligible error: %v", err)
	}
	if len(none) != 0 {
		t.Errorf("eligible with zero budget = %d, want 0", len(none))
	}
}

func TestNextStepPrefersHighEIc(t *testing.T) {
	p, env, opts := testPlanner(t, nil)
	h := optimizer.NewHistory()
	budget, err := optimizer.NewBudget(opts.Budget)
	if err != nil {
		t.Fatalf("NewBudget error: %v", err)
	}
	for _, id := range []int{0, 3, 7, 12, 15} {
		cfg, err := env.Space().Config(id)
		if err != nil {
			t.Fatalf("Config error: %v", err)
		}
		if _, err := optimizer.RunTrial(env, cfg, h, budget, nil); err != nil {
			t.Fatalf("RunTrial error: %v", err)
		}
	}
	extraNames := p.constraintNames()
	train := newTrainSetFromHistory(h, opts, extraNames)
	ms := p.newModelSet(2, env.Space().Size())
	if err := ms.fit(train); err != nil {
		t.Fatalf("fit error: %v", err)
	}
	untested := make([]candidate, 0)
	for _, cand := range gatherAll(t, p) {
		if !h.Tested(cand.id) {
			untested = append(untested, cand)
		}
	}
	state := &specState{train: train, untested: untested, budget: 1e9}
	inc, err := p.incumbent(state, ms)
	if err != nil {
		t.Fatalf("incumbent error: %v", err)
	}
	next, ok, err := p.nextStep(state, ms, inc, extraNames, nil)
	if err != nil {
		t.Fatalf("nextStep error: %v", err)
	}
	if !ok {
		t.Fatal("nextStep found no candidate despite a huge budget")
	}
	// The returned candidate must carry the highest EIc among the untested.
	bestEIc := -1.0
	bestID := -1
	for _, cand := range untested {
		costPred, extraPreds, err := ms.predict(cand.features)
		if err != nil {
			t.Fatalf("predict error: %v", err)
		}
		score, err := p.eic(inc, cand, costPred, extraPreds, extraNames)
		if err != nil {
			t.Fatalf("eic error: %v", err)
		}
		if score > bestEIc {
			bestEIc = score
			bestID = cand.id
		}
	}
	if next.id != bestID {
		t.Errorf("nextStep picked %d, want argmax-EIc %d", next.id, bestID)
	}

	// With a zero budget there is no next step.
	empty := &specState{train: train, untested: untested, budget: 0}
	if _, ok, err := p.nextStep(empty, ms, inc, extraNames, nil); err != nil || ok {
		t.Errorf("nextStep with zero budget = %v, %v, want not-ok", ok, err)
	}
}

func TestEICUsesFallbackIncumbentWhenNothingFeasible(t *testing.T) {
	p, _, _ := testPlanner(t, nil)
	// Training set where no entry is feasible.
	train := &trainSet{
		features: [][]float64{{0, 1}, {1, 2}},
		costs:    []float64{0.4, 0.9},
		extras:   [][]float64{},
		feasible: []bool{false, false},
	}
	ms := p.newModelSet(5, p.space.Size())
	if err := ms.fit(train); err != nil {
		t.Fatalf("fit error: %v", err)
	}
	cands := gatherAll(t, p)
	cand := cands[2]
	state := &specState{train: train, untested: cands[2:6], budget: 100}
	costPred, extraPreds, err := ms.predict(cand.features)
	if err != nil {
		t.Fatalf("predict error: %v", err)
	}
	inc, err := p.incumbent(state, ms)
	if err != nil {
		t.Fatalf("incumbent error: %v", err)
	}
	score, err := p.eic(inc, cand, costPred, extraPreds, nil)
	if err != nil {
		t.Fatalf("eic error: %v", err)
	}
	if score < 0 || math.IsNaN(score) {
		t.Errorf("EIc with fallback incumbent = %v", score)
	}
	// The fallback incumbent (max cost + 3 max std) is above every observed
	// cost, so the expected improvement cannot be zero for a configuration
	// predicted near the cheap end.
	if score == 0 {
		t.Error("EIc with fallback incumbent is zero; fallback rule likely not applied")
	}
}

func TestSetupCostHelper(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 3)
	charged := 0
	opts.SetupCost = func(from *configspace.Config, to configspace.Config) float64 {
		charged++
		if from == nil {
			return 1.5
		}
		return 0.25
	}
	params, err := Params{Lookahead: 0, Model: bagging.Params{NumTrees: 4}, Workers: 1}.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults error: %v", err)
	}
	p, err := newPlanner(params, env, opts)
	if err != nil {
		t.Fatalf("newPlanner error: %v", err)
	}
	cands := gatherAll(t, p)
	if got := p.setupCost(nil, cands[3]); got != 1.5 {
		t.Errorf("setup cost from scratch = %v, want 1.5", got)
	}
	from, err := env.Space().Config(2)
	if err != nil {
		t.Fatalf("Config error: %v", err)
	}
	if got := p.setupCost(&from, cands[3]); got != 0.25 {
		t.Errorf("setup cost between configs = %v, want 0.25", got)
	}
	if charged != 2 {
		t.Errorf("setup function called %d times, want 2", charged)
	}

	// Without the extension the helper charges nothing.
	opts.SetupCost = nil
	p2, err := newPlanner(params, env, opts)
	if err != nil {
		t.Fatalf("newPlanner error: %v", err)
	}
	if got := p2.setupCost(&from, gatherAll(t, p2)[1]); got != 0 {
		t.Errorf("setup cost without extension = %v, want 0", got)
	}
}

func TestWithoutRemovesCandidate(t *testing.T) {
	p, _, _ := testPlanner(t, nil)
	subset := gatherAll(t, p)[:5]
	out := without(subset, subset[2].id)
	if len(out) != 4 {
		t.Fatalf("without returned %d candidates, want 4", len(out))
	}
	for _, c := range out {
		if c.id == subset[2].id {
			t.Error("removed candidate still present")
		}
	}
}

func TestClampProb(t *testing.T) {
	if clampProb(-0.5) != 0 || clampProb(1.5) != 1 || clampProb(0.3) != 0.3 {
		t.Error("clampProb misbehaves")
	}
}

func TestModelSetPredictShapes(t *testing.T) {
	p, _, _ := testPlanner(t, []optimizer.Constraint{{Metric: "energy", Max: 100}})
	train := &trainSet{
		features: [][]float64{{0, 1}, {1, 2}, {2, 4}},
		costs:    []float64{0.1, 0.2, 0.3},
		extras:   [][]float64{{10, 20, 30}},
		feasible: []bool{true, true, true},
	}
	ms := p.newModelSet(9, 16)
	if err := ms.fit(train); err != nil {
		t.Fatalf("fit error: %v", err)
	}
	costPred, extraPreds, err := ms.predict([]float64{1, 2})
	if err != nil {
		t.Fatalf("predict error: %v", err)
	}
	if len(extraPreds) != 1 {
		t.Fatalf("extra predictions = %d, want 1", len(extraPreds))
	}
	if costPred.Mean < 0.1-1e-9 || costPred.Mean > 0.3+1e-9 {
		t.Errorf("cost prediction %v outside training range", costPred.Mean)
	}
	if extraPreds[0].Mean < 10-1e-9 || extraPreds[0].Mean > 30+1e-9 {
		t.Errorf("extra prediction %v outside training range", extraPreds[0].Mean)
	}
	var zero numeric.Gaussian
	if costPred == zero {
		t.Error("cost prediction is the zero distribution")
	}
}
