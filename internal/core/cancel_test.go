package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/configspace"
	"repro/internal/optimizer"
)

// TestStepContextCancelledAtEntry pins the trial-boundary cancellation
// contract: a StepContext with an already-cancelled context returns an error
// matching both optimizer.ErrCampaignCancelled and the context cause, records
// nothing, and leaves the campaign exactly where it was — stepping on with a
// live context afterwards reproduces the uncancelled run bitwise.
func TestStepContextCancelledAtEntry(t *testing.T) {
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	opts := fixtureOptions(t, 5)

	baselineCampaign, err := l.NewCampaign(fixtureEnv(t), opts)
	if err != nil {
		t.Fatalf("NewCampaign error: %v", err)
	}
	baseline, err := baselineCampaign.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	c, err := l.NewCampaign(fixtureEnv(t), opts)
	if err != nil {
		t.Fatalf("NewCampaign error: %v", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// Interleave a cancelled attempt before every real step.
	for {
		trialsBefore := len(c.Trials())
		if _, err := c.StepContext(cancelled); !errors.Is(err, optimizer.ErrCampaignCancelled) {
			t.Fatalf("cancelled StepContext error = %v, want ErrCampaignCancelled", err)
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled StepContext error = %v, want context.Canceled in the chain", err)
		}
		if got := len(c.Trials()); got != trialsBefore {
			t.Fatalf("cancelled step recorded a trial (%d -> %d)", trialsBefore, got)
		}
		done, err := c.StepContext(context.Background())
		if err != nil {
			t.Fatalf("live step: %v", err)
		}
		if done {
			break
		}
	}
	res, err := c.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	sameResult(t, "cancel-interleaved run", res, baseline)
}

// TestPlannerCancelledBetweenPhases drives nextConfig itself with a cancelled
// context: the planner must stop at a phase boundary with the sentinel error
// instead of planning on.
func TestPlannerCancelledBetweenPhases(t *testing.T) {
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	opts := fixtureOptions(t, 5)
	c, err := l.NewCampaign(fixtureEnv(t), opts)
	if err != nil {
		t.Fatalf("NewCampaign error: %v", err)
	}
	// Step past the bootstrap so nextConfig exercises the full planning
	// pipeline (gather, fit, eligibility, path scoring).
	for !c.boot.Done() {
		if done, err := c.Step(); err != nil || done {
			t.Fatalf("bootstrap stepping: done=%v err=%v", done, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = c.planner.nextConfig(ctx, c.history, c.budget.Remaining())
	if !errors.Is(err, optimizer.ErrCampaignCancelled) {
		t.Fatalf("nextConfig under cancelled ctx = %v, want ErrCampaignCancelled", err)
	}
	// A nil context still means "never cancelled".
	if _, _, err := c.planner.nextConfig(nil, c.history, c.budget.Remaining()); err != nil {
		t.Fatalf("nextConfig with nil ctx: %v", err)
	}
}

// TestCancelThenResumeBitwise is the server's rollback path in miniature:
// cancel a campaign, resume its last snapshot, finish — bitwise identical to
// never cancelling.
func TestCancelThenResumeBitwise(t *testing.T) {
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	opts := fixtureOptions(t, 7)

	baselineCampaign, err := l.NewCampaign(fixtureEnv(t), opts)
	if err != nil {
		t.Fatalf("NewCampaign error: %v", err)
	}
	baseline, err := baselineCampaign.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	c, err := l.NewCampaign(fixtureEnv(t), opts)
	if err != nil {
		t.Fatalf("NewCampaign error: %v", err)
	}
	for i := 0; i < 4; i++ {
		if done, err := c.Step(); err != nil || done {
			t.Fatalf("step %d: done=%v err=%v", i, done, err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	cancelledCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.StepContext(cancelledCtx); !errors.Is(err, optimizer.ErrCampaignCancelled) {
		t.Fatalf("cancelled step = %v, want ErrCampaignCancelled", err)
	}

	resumed, err := l.ResumeCampaign(fixtureEnv(t), snap)
	if err != nil {
		t.Fatalf("ResumeCampaign: %v", err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	sameResult(t, "cancel-then-resume", res, baseline)
}

// failingEnv lets the first `successes` runs through, then fails permanently —
// a campaign that bootstraps fine and dies at its first planned trial.
type failingEnv struct {
	*optimizer.JobEnvironment
	successes int
	runs      int
}

func (f *failingEnv) Run(cfg configspace.Config) (optimizer.TrialResult, error) {
	f.runs++
	if f.runs <= f.successes {
		return f.JobEnvironment.Run(cfg)
	}
	return optimizer.TrialResult{}, &optimizer.RunError{
		Err:       fmt.Errorf("injected permanent failure"),
		Transient: false,
	}
}

// TestMultiRunnerFailureRecords pins the structured per-campaign failure
// reporting: a failing campaign in a batch yields a CampaignFailure with the
// right name, index, errors.Is-matchable cause and transient flag, and the
// healthy campaigns are unaffected.
func TestMultiRunnerFailureRecords(t *testing.T) {
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	opts := fixtureOptions(t, 5)
	opts.BootstrapSize = 4
	opts.Retry = optimizer.RetryPolicy{MaxAttempts: 1} // abort on first failure

	runner := NewMultiRunner(2, nil)
	if err := runner.Add("healthy", l, fixtureEnv(t), opts); err != nil {
		t.Fatalf("Add(healthy): %v", err)
	}
	if err := runner.Add("doomed", l, &failingEnv{JobEnvironment: fixtureEnv(t), successes: 4}, opts); err != nil {
		t.Fatalf("Add(doomed): %v", err)
	}
	summary, err := runner.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if summary.Results[0].Err != nil {
		t.Fatalf("healthy campaign failed: %v", summary.Results[0].Err)
	}
	if len(summary.Failures) != 1 {
		t.Fatalf("%d failure records, want 1: %+v", len(summary.Failures), summary.Failures)
	}
	f := summary.Failures[0]
	if f.Name != "doomed" || f.Index != 1 {
		t.Fatalf("failure record = %+v, want name doomed index 1", f)
	}
	if !errors.Is(f.Err, optimizer.ErrRunFailed) {
		t.Fatalf("failure cause = %v, want ErrRunFailed in the chain", f.Err)
	}
	var runErr *optimizer.RunError
	if !errors.As(f.Err, &runErr) {
		t.Fatalf("failure cause = %v, want an extractable *RunError", f.Err)
	}
	if f.Transient {
		t.Fatal("permanent run failure classified transient")
	}
}

// TestMultiRunnerRunContextCancelled pins batch cancellation: a cancelled
// context stops every campaign with a transient, ErrCampaignCancelled-matching
// failure record, and the partial summary still comes back.
func TestMultiRunnerRunContextCancelled(t *testing.T) {
	l, err := New(fastParams(1))
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	opts := fixtureOptions(t, 5)
	runner := NewMultiRunner(2, nil)
	for i := 0; i < 3; i++ {
		if err := runner.Add(fmt.Sprintf("c%d", i), l, fixtureEnv(t), opts); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	summary, err := runner.RunContext(ctx)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(summary.Failures) != 3 {
		t.Fatalf("%d failure records, want 3 (all cancelled): %+v", len(summary.Failures), summary.Failures)
	}
	for i, f := range summary.Failures {
		if !errors.Is(f.Err, optimizer.ErrCampaignCancelled) {
			t.Fatalf("failure %d cause = %v, want ErrCampaignCancelled", i, f.Err)
		}
		if !f.Transient {
			t.Fatalf("cancellation of %q classified non-transient", f.Name)
		}
	}
}
