// Package core implements Lynceus, the paper's primary contribution: a
// budget-aware and long-sighted Bayesian-optimization loop (Algorithms 1
// and 2) that selects which configuration to profile next by simulating
// bounded-lookahead exploration paths, discretizing speculated outcomes with
// Gauss-Hermite quadrature, and maximizing the expected reward-to-cost ratio
// of the path rooted at each candidate configuration.
//
// # Planning hot path
//
// One planning decision fits a root model set on the profiling history,
// precomputes its predictions for every untested configuration on a bounded
// worker pool, and then scores the exploration path of every eligible
// candidate concurrently (Params.Workers wide). Three mechanisms keep the
// search fast without changing its outcome across worker counts:
//
//   - Prediction memo: every model is wrapped in a memo keyed by (model
//     generation, configuration ID) — see internal/model.Cached — so the
//     planner predicts each configuration once per speculation layer instead
//     of once per path.
//   - Deterministic fan-out: each path evaluation owns a scratch model set
//     whose random stream derives from the candidate ID, never from
//     scheduling order, so the same seed yields the identical trial sequence
//     and recommendation for every Params.Workers value.
//   - Optimistic-bound pruning: for lookahead >= 2 the candidates are ranked
//     by an optimistic reward-to-cost bound, the top seeds are scored
//     exactly, and remaining candidates whose bound cannot beat the best
//     exact ratio are dropped without simulating their paths. The threshold
//     tightens in fixed-size chunks, depends only on deterministic root-model
//     quantities, and can be switched off with Params.DisablePruning.
//   - Incremental speculative refits: Params.SpeculativeRefit selects whether
//     each speculated outcome refits the whole model set (Full, the paper's
//     exact behavior) or clones the parent models and folds the one
//     speculated sample in (Incremental — an order of magnitude cheaper,
//     statistically equivalent, and what makes lookahead >= 3 interactive).
//     Auto resolves by lookahead and candidate count.
package core
