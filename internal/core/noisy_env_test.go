package core

import (
	"math"
	"testing"

	"repro/internal/configspace"
	"repro/internal/optimizer"
)

// noisyEnv is a stochastic Environment: every Run draws a different noise
// factor (a deterministic function of the global call index), so repeated
// runs of one configuration would return different costs. It logs every
// observation it hands out, which lets the tests assert that the planner
// reports observed costs verbatim and never substitutes memoized model
// predictions for them.
type noisyEnv struct {
	space *configspace.Space
	calls int
	log   []optimizer.TrialResult
}

func newNoisyEnv(t *testing.T) *noisyEnv {
	t.Helper()
	space, err := configspace.New([]configspace.Dimension{
		{Name: "a", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		{Name: "b", Values: []float64{1, 2, 3, 4}},
		{Name: "c", Values: []float64{1, 2, 3, 4}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	return &noisyEnv{space: space}
}

func (e *noisyEnv) Space() *configspace.Space { return e.space }

func (e *noisyEnv) baseRuntime(cfg configspace.Config) float64 {
	return 20 + 5*cfg.Features[0] + 8*cfg.Features[1] - 3*cfg.Features[2]
}

func (e *noisyEnv) price(cfg configspace.Config) float64 {
	return 0.4 + 0.3*cfg.Features[2]
}

func (e *noisyEnv) Run(cfg configspace.Config) (optimizer.TrialResult, error) {
	// The noise factor depends on the call index: a re-run of the same
	// configuration at a different point of the campaign would observe a
	// different cost, exactly like a real stochastic system.
	factor := 1 + 0.25*math.Sin(1.7*float64(e.calls)+0.3*float64(cfg.ID))
	e.calls++
	runtime := e.baseRuntime(cfg) * factor
	price := e.price(cfg)
	tr := optimizer.TrialResult{
		Config:           cfg.Clone(),
		RuntimeSeconds:   runtime,
		UnitPricePerHour: price,
		Cost:             runtime / 3600 * price,
	}
	e.log = append(e.log, tr)
	return tr, nil
}

func (e *noisyEnv) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	return e.price(cfg), nil
}

func noisyCampaign(t *testing.T, params Params) (optimizer.Result, *noisyEnv) {
	t.Helper()
	env := newNoisyEnv(t)
	lyn, err := New(params)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	res, err := lyn.Optimize(env, optimizer.Options{
		Budget:            0.3,
		MaxRuntimeSeconds: 55,
		Seed:              3,
	})
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	return res, env
}

func noisyParams() Params {
	p := fastParams(2)
	p.SpeculativeRefit = SpecRefitIncremental
	return p
}

// TestNoisyEnvObservationsReportedVerbatim runs an LA=2 incremental campaign
// on the stochastic environment and checks that the planner's bookkeeping
// holds observations, not model state: every trial in the result matches the
// environment's own log bitwise and in order, no configuration is profiled
// twice, and the recommendation is the cheapest feasible *observed* trial —
// i.e. the memoized cost-model predictions (model.Cached) never leak into
// reported costs or the recommendation.
func TestNoisyEnvObservationsReportedVerbatim(t *testing.T) {
	res, env := noisyCampaign(t, noisyParams())
	if len(res.Trials) != len(env.log) {
		t.Fatalf("result has %d trials, environment served %d runs", len(res.Trials), len(env.log))
	}
	seen := make(map[int]bool)
	for i, tr := range res.Trials {
		want := env.log[i]
		if tr.Config.ID != want.Config.ID || tr.Cost != want.Cost || tr.RuntimeSeconds != want.RuntimeSeconds {
			t.Fatalf("trial %d reports (id=%d cost=%v runtime=%v), environment served (id=%d cost=%v runtime=%v)",
				i, tr.Config.ID, tr.Cost, tr.RuntimeSeconds, want.Config.ID, want.Cost, want.RuntimeSeconds)
		}
		if seen[tr.Config.ID] {
			t.Fatalf("configuration %d profiled twice", tr.Config.ID)
		}
		seen[tr.Config.ID] = true
	}

	// The recommendation must be the cheapest feasible observation.
	bestCost, bestID, found := 0.0, -1, false
	for _, tr := range env.log {
		if tr.RuntimeSeconds > 55 {
			continue
		}
		if !found || tr.Cost < bestCost {
			bestCost, bestID, found = tr.Cost, tr.Config.ID, true
		}
	}
	if !found {
		t.Fatal("campaign observed no feasible configuration; fixture needs retuning")
	}
	if !res.RecommendedFeasible || res.Recommended.Config.ID != bestID || res.Recommended.Cost != bestCost {
		t.Errorf("recommended config %d (cost %v, feasible=%v), want cheapest feasible observation %d (cost %v)",
			res.Recommended.Config.ID, res.Recommended.Cost, res.RecommendedFeasible, bestID, bestCost)
	}
}

// TestNoisyEnvCampaignsAreReplayable pins that the tuner carries no hidden
// state between runs: a fresh same-seed environment replays the identical
// trial sequence whether driven by a fresh tuner or by a reused one (the
// prediction memos are per-Optimize, so a prior campaign on different noise
// cannot corrupt the next — pruning calibration included).
func TestNoisyEnvCampaignsAreReplayable(t *testing.T) {
	first, _ := noisyCampaign(t, noisyParams())
	second, _ := noisyCampaign(t, noisyParams())

	// Same tuner instance reused across two environments.
	lyn, err := New(noisyParams())
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	opts := optimizer.Options{Budget: 0.3, MaxRuntimeSeconds: 55, Seed: 3}
	if _, err := lyn.Optimize(newNoisyEnv(t), opts); err != nil {
		t.Fatalf("first reuse Optimize error: %v", err)
	}
	third, err := lyn.Optimize(newNoisyEnv(t), opts)
	if err != nil {
		t.Fatalf("second reuse Optimize error: %v", err)
	}

	for name, other := range map[string]optimizer.Result{"fresh tuner": second, "reused tuner": third} {
		if len(other.Trials) != len(first.Trials) {
			t.Fatalf("%s: %d trials, want %d", name, len(other.Trials), len(first.Trials))
		}
		for i := range first.Trials {
			if first.Trials[i].Config.ID != other.Trials[i].Config.ID || first.Trials[i].Cost != other.Trials[i].Cost {
				t.Fatalf("%s: trial %d is (id=%d cost=%v), want (id=%d cost=%v)",
					name, i, other.Trials[i].Config.ID, other.Trials[i].Cost,
					first.Trials[i].Config.ID, first.Trials[i].Cost)
			}
		}
		if other.Recommended.Config.ID != first.Recommended.Config.ID || other.SpentBudget != first.SpentBudget {
			t.Fatalf("%s: recommended %d (spent %v), want %d (spent %v)",
				name, other.Recommended.Config.ID, other.SpentBudget,
				first.Recommended.Config.ID, first.SpentBudget)
		}
	}
}
