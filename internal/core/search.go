package core

import (
	"fmt"
	"sort"

	"repro/internal/configspace"
)

// Search-strategy defaults.
const (
	// DefaultSampleSize is the number of candidates Sampled considers per
	// decision when none is configured.
	DefaultSampleSize = 1024
	// DefaultAutoSampleThreshold is the space size above which a nil
	// Params.Search resolves to Sampled instead of Exhaustive.
	DefaultAutoSampleThreshold = 4096
)

// SearchStrategy chooses which untested configurations the planner considers
// at one decision. The paper's prototype sweeps every untested configuration
// per refit; that is Exhaustive, and it stops scaling once the space grows to
// production sizes (10^5+ points). Sampled bounds the per-decision candidate
// set, keeping planning time roughly constant as the space grows.
//
// Implementations must be deterministic given (space, tested set, iteration,
// seed) and must not depend on the planner's worker count: the selected IDs —
// not scheduling — drive every downstream decision.
type SearchStrategy interface {
	// Name identifies the strategy, e.g. "exhaustive" or "sampled".
	Name() string
	// Select returns the IDs of the candidate configurations examined at this
	// decision, in increasing ID order. tested reports whether a
	// configuration is out of consideration — already profiled or quarantined
	// after exhausting its retry attempts (History.Excluded); untestedCount is
	// the number of configurations remaining; iteration counts the planner's
	// decisions from zero; seed is the run seed (Options.Seed).
	Select(space *configspace.Space, tested func(id int) bool, untestedCount, iteration int, seed int64) ([]int, error)
}

// resolveStrategy returns the strategy a planner uses over a space: the
// explicitly configured one, or — for a nil strategy — Exhaustive on
// paper-scale spaces and Sampled above DefaultAutoSampleThreshold.
func resolveStrategy(explicit SearchStrategy, spaceSize int) SearchStrategy {
	if explicit != nil {
		return explicit
	}
	if spaceSize <= DefaultAutoSampleThreshold {
		return Exhaustive{}
	}
	return Sampled{}
}

// strategyCandidateBound returns an upper bound on the number of candidates
// the strategy hands the planner per decision. It sizes the SpecRefitAuto
// resolution: custom strategies conservatively report the space size.
func strategyCandidateBound(s SearchStrategy, spaceSize int) int {
	switch t := s.(type) {
	case Exhaustive:
		return spaceSize
	case Sampled:
		size := t.Size
		if size <= 0 {
			size = DefaultSampleSize
		}
		if size > spaceSize {
			return spaceSize
		}
		return size
	default:
		return spaceSize
	}
}

// Exhaustive considers every untested configuration at every decision — the
// paper's behavior. Recommendations are bitwise-identical to the
// pre-strategy planner (pinned by the golden campaign tests), which makes it
// the reference implementation and the default for small spaces.
type Exhaustive struct{}

// Name implements SearchStrategy.
func (Exhaustive) Name() string { return "exhaustive" }

// Select implements SearchStrategy: all untested IDs in increasing order.
func (Exhaustive) Select(space *configspace.Space, tested func(id int) bool, untestedCount, iteration int, seed int64) ([]int, error) {
	out := make([]int, 0, untestedCount)
	for id := 0; id < space.Size(); id++ {
		if !tested(id) {
			out = append(out, id)
		}
	}
	return out, nil
}

// Sampled considers a bounded, deterministic, seeded subsample of the
// untested configurations at every decision, so per-decision planning cost
// stays roughly constant as the space grows. Different decisions draw
// different subsamples (the stream is keyed by iteration), so the campaign
// still covers the space over time, while a fixed (seed, iteration) pair
// always draws the same candidates — independent of worker count.
type Sampled struct {
	// Size is the maximum number of candidates per decision; 0 selects
	// DefaultSampleSize. When fewer than Size configurations remain untested
	// the selection degenerates to Exhaustive.
	Size int
}

// Name implements SearchStrategy.
func (s Sampled) Name() string { return "sampled" }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed hash used
// to derive the deterministic candidate streams.
func splitmix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// sampleStream seeds the per-decision draw stream from (seed, iteration).
func sampleStream(seed int64, iteration int) uint64 {
	return splitmix64(uint64(seed)*0x9E3779B97F4A7C15 + uint64(iteration)*0xD1B54A32D192ED03 + 0x8CB92BA72F3D8DD7)
}

// Select implements SearchStrategy. The common path draws pseudorandom IDs
// from the (seed, iteration) stream until Size distinct untested ones are
// found — O(Size) work independent of the space size. When the untested
// fraction is too thin for rejection sampling (only possible near the end of
// a campaign), it falls back to ranking every untested ID by a per-ID hash,
// which is equally deterministic.
func (s Sampled) Select(space *configspace.Space, tested func(id int) bool, untestedCount, iteration int, seed int64) ([]int, error) {
	size := s.Size
	if size <= 0 {
		size = DefaultSampleSize
	}
	if size < 1 {
		return nil, fmt.Errorf("core: sampled search with non-positive size %d", size)
	}
	if untestedCount <= size {
		return Exhaustive{}.Select(space, tested, untestedCount, iteration, seed)
	}
	total := space.Size()
	state := sampleStream(seed, iteration)
	chosen := make(map[int]struct{}, size)
	out := make([]int, 0, size)
	maxDraws := 32*size + 1024
	for draws := 0; draws < maxDraws && len(out) < size; draws++ {
		state += 0x9E3779B97F4A7C15
		id := int(splitmix64(state) % uint64(total))
		if tested(id) {
			continue
		}
		if _, dup := chosen[id]; dup {
			continue
		}
		chosen[id] = struct{}{}
		out = append(out, id)
	}
	if len(out) < size {
		out = s.rankedSample(space, tested, size, seed, iteration)
	}
	sort.Ints(out)
	return out, nil
}

// rankedSample is the dense fallback: every untested ID is ranked by its
// per-ID hash under the decision's stream and the smallest Size win. One
// O(space) pass, still worker-count independent.
func (s Sampled) rankedSample(space *configspace.Space, tested func(id int) bool, size int, seed int64, iteration int) []int {
	base := sampleStream(seed, iteration)
	type ranked struct {
		key uint64
		id  int
	}
	all := make([]ranked, 0, size*2)
	for id := 0; id < space.Size(); id++ {
		if tested(id) {
			continue
		}
		all = append(all, ranked{key: splitmix64(base + uint64(id)*0x9E3779B97F4A7C15), id: id})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].key != all[b].key {
			return all[a].key < all[b].key
		}
		return all[a].id < all[b].id
	})
	if len(all) > size {
		all = all[:size]
	}
	out := make([]int, len(all))
	for i, r := range all {
		out[i] = r.id
	}
	return out
}

// Statically assert the strategies implement the interface.
var (
	_ SearchStrategy = Exhaustive{}
	_ SearchStrategy = Sampled{}
)
