package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/acquisition"
	"repro/internal/configspace"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/optimizer"
	"repro/internal/share"
)

// planner implements the configuration-selection logic of Algorithms 1 and 2:
// it turns the optimizer's history into speculation states and simulates
// exploration paths to score every eligible candidate.
//
// The planner never materializes the configuration space. Each decision asks
// the SearchStrategy for the candidate IDs to consider, gathers them into an
// active candidate set (features aliasing the space's shared storage on
// materialized spaces, or decoded into a reusable arena on streaming spaces),
// and keys every model memo by the candidate's dense slot within that set —
// so memory and sweep cost scale with the candidate set, not the space.
type planner struct {
	params    Params
	opts      optimizer.Options
	space     *configspace.Space
	strategy  SearchStrategy
	factory   model.Factory
	refitMode SpeculativeRefit
	iteration int

	// prices lazily memoizes unit prices per candidate, so huge spaces never
	// pay a full-space price sweep at planner creation.
	prices *optimizer.PriceCache

	// eligZ caches Φ⁻¹(EligibilityProb) for the incremental mode's
	// eligibility test: "P(cost ≤ budget) ≥ prob" becomes the algebraically
	// equivalent "budget ≥ mean + z·σ", which costs one multiply instead of
	// one erfc per candidate per speculated state. Full mode keeps the
	// historical CDF comparison bit for bit (eligUseZ false there, and also
	// when the quantile is unavailable, e.g. EligibilityProb = 1).
	eligZ    float64
	eligUseZ bool

	// sched is the persistent speculation scheduler (Params.Workers wide).
	// Its per-worker arenas recycle the incremental-mode path workspaces
	// (clone slots plus their arenas, eligibility buffers) across candidates,
	// subtrees and decisions without a shared pool: each worker owns its
	// freelist outright. Recycled state is fully overwritten by cloneFrom
	// before every use, so reuse never leaks model state between paths and
	// the recommendation stays scheduling-free.
	sched *specScheduler

	// forkDepth is the number of leading speculation layers whose outcome
	// subtrees are forked into scheduler tasks (0 disables forking). Only the
	// incremental refit mode forks — the Full mode's scratch refits consume a
	// per-candidate random stream sequentially, which the golden campaign
	// tests pin bitwise — and only the shallow layers are worth the task
	// overhead: deeper subtrees shrink geometrically.
	forkDepth int

	// shared is the campaign's share-group binding (nil outside a group).
	// When set, prices comes from the group's per-environment cache, the
	// scheduler draws arenas from the group pool (incremental mode), and —
	// for key-capturable configurations, see sharable — nextConfig adopts
	// and publishes fitted root models and whole decisions through the
	// group caches. keyBuf is the reusable cache-key assembly buffer.
	shared *sharedCtx
	keyBuf []byte

	// stepCtx is the context of the in-flight nextConfig call (set at entry,
	// cleared at exit; context.Background() when the caller supplied none).
	// It is read-only during the parallel fan-out: phase boundaries and each
	// path evaluation poll it, so a cancelled or deadline-exceeded step stops
	// between planner phases — not only between trials — with an error
	// wrapping optimizer.ErrCampaignCancelled. Polling a live context returns
	// nil everywhere, so cancellation support never perturbs decisions.
	stepCtx context.Context

	// Per-decision scratch rebuilt by nextConfig; read-only during the
	// parallel path-evaluation fan-out.
	featArena  []float64            // backing store of streaming-space candidate features
	colsBuf    []float64            // backing store of the slot-major feature matrix
	activeCols [][]float64          // activeCols[d][slot]: feature d of the active candidate in that slot
	activeCfgs []configspace.Config // decoded configs of active candidates (built only when SetupCost is set)
}

// resolveRefitMode turns SpecRefitAuto into a concrete mode from the
// lookahead window and the per-decision candidate bound of the strategy.
func resolveRefitMode(mode SpeculativeRefit, lookahead, candidateBound int) SpeculativeRefit {
	if mode != SpecRefitAuto {
		return mode
	}
	if lookahead >= 3 || lookahead*candidateBound >= AutoIncrementalWork {
		return SpecRefitIncremental
	}
	return SpecRefitFull
}

func newPlanner(params Params, env optimizer.Environment, opts optimizer.Options) (*planner, error) {
	return newPlannerShared(params, env, opts, nil)
}

// newPlannerShared is newPlanner bound to a share group: the planner reads
// unit prices through the group's shared per-environment cache and, in
// incremental mode, checks its workspace arenas out of the group pool per
// scheduler run instead of holding private ones.
func newPlannerShared(params Params, env optimizer.Environment, opts optimizer.Options, sh *sharedCtx) (*planner, error) {
	space := env.Space()
	strategy := resolveStrategy(params.Search, space.Size())
	mode := resolveRefitMode(params.SpeculativeRefit, params.Lookahead, strategyCandidateBound(strategy, space.Size()))
	factory := params.ModelFactory
	if factory == nil {
		// The default bagging factory retains incremental state only when the
		// speculative path needs it: Full-mode fits stay byte-for-byte the
		// historical ones with no retention overhead.
		m := params.Model
		m.Incremental = mode == SpecRefitIncremental
		factory = model.NewBaggingFactory(m, opts.Seed)
	} else if mode == SpecRefitIncremental {
		if !model.SupportsIncremental(factory.New(-1)) {
			if params.SpeculativeRefit == SpecRefitIncremental {
				return nil, fmt.Errorf("core: SpeculativeRefit Incremental requires incremental-update support (model.IncrementalRegressor, with retention enabled — e.g. bagging.Params.Incremental), which the %q factory's models lack", factory.Name())
			}
			mode = SpecRefitFull
		}
	}
	p := &planner{
		params:    params,
		opts:      opts,
		space:     space,
		strategy:  strategy,
		factory:   factory,
		refitMode: mode,
		prices:    optimizer.NewPriceCache(env),
		sched:     newSpecScheduler(params.Workers),
		shared:    sh,
	}
	if sh != nil {
		p.prices = sh.prices
	}
	if mode == SpecRefitIncremental {
		if sh != nil {
			p.sched.pool = sh.group.arenas
			p.sched.shape = p.arenaShape()
		}
		if z, err := numeric.NormalQuantile(params.EligibilityProb); err == nil {
			p.eligZ, p.eligUseZ = z, true
		}
		// Fork the outcome subtrees of the first LA-1 speculation layers; the
		// deepest layer's subtrees are leaves (one clone plus one sweep) and
		// would only pay task overhead. Two layers already yield
		// combos²-per-candidate tasks, so the cap keeps the task count
		// bounded on very deep lookaheads.
		p.forkDepth = params.Lookahead - 1
		if p.forkDepth > 2 {
			p.forkDepth = 2
		}
		// With forking possible, spawn every worker even for runs with
		// fewer root candidates than workers: the spare workers steal the
		// forked subtrees of the few expensive paths.
		p.sched.wide = p.forkDepth > 0
	}
	return p, nil
}

// gather materializes the active candidate set of one decision: the selected
// configuration IDs with dense slot indices, feature vectors, and unit
// prices. On materialized spaces the features alias the space's shared
// storage (no per-candidate copies); on streaming spaces they are decoded
// into an arena reused across decisions.
func (p *planner) gather(ids []int) ([]candidate, error) {
	cands := make([]candidate, len(ids))
	streaming := p.space.Streaming()
	var arena []float64
	if streaming {
		need := len(ids) * p.space.NumDimensions()
		if cap(p.featArena) < need {
			p.featArena = make([]float64, 0, need)
		}
		arena = p.featArena[:0]
	}
	for i, id := range ids {
		price, err := p.prices.UnitPrice(id)
		if err != nil {
			return nil, err
		}
		var feats []float64
		if streaming {
			start := len(arena)
			arena, err = p.space.AppendFeatures(arena, id)
			if err != nil {
				return nil, err
			}
			feats = arena[start:len(arena):len(arena)]
		} else {
			feats, err = p.space.RowFeatures(id)
			if err != nil {
				return nil, err
			}
		}
		cands[i] = candidate{id: id, slot: i, features: feats, unitPriceHour: price}
	}
	if streaming {
		p.featArena = arena
	}
	return cands, nil
}

// gatherCols builds the slot-major column matrix of the active candidates
// (cols[d][slot]) that batch prefills sweep. The backing store is reused
// across decisions.
func (p *planner) gatherCols(cands []candidate) [][]float64 {
	d := p.space.NumDimensions()
	n := len(cands)
	if cap(p.colsBuf) < d*n {
		p.colsBuf = make([]float64, d*n)
	}
	buf := p.colsBuf[:d*n]
	cols := make([][]float64, d)
	for k := range cols {
		cols[k] = buf[k*n : (k+1)*n]
	}
	for i, c := range cands {
		for k := 0; k < d; k++ {
			cols[k][i] = c.features[k]
		}
	}
	return cols
}

// gatherColsOwned is gatherCols with freshly allocated backing: used when the
// resulting matrix may be published to the share group's model cache, where
// later decisions of this planner must not overwrite it through the reused
// colsBuf (a published model set's prediction memos alias these columns).
func (p *planner) gatherColsOwned(cands []candidate) [][]float64 {
	d := p.space.NumDimensions()
	n := len(cands)
	buf := make([]float64, d*n)
	cols := make([][]float64, d)
	for k := range cols {
		cols[k] = buf[k*n : (k+1)*n]
	}
	for i, c := range cands {
		for k := 0; k < d; k++ {
			cols[k][i] = c.features[k]
		}
	}
	return cols
}

// candidateConfig returns the full configuration of an active candidate,
// preferring the per-decision view set over a fresh space lookup. The
// returned Config may alias the space's shared storage (read-only).
func (p *planner) candidateConfig(c candidate) configspace.Config {
	if c.slot >= 0 && c.slot < len(p.activeCfgs) && p.activeCfgs[c.slot].ID == c.id {
		return p.activeCfgs[c.slot]
	}
	cfg, err := p.space.ConfigView(c.id)
	if err != nil {
		return configspace.Config{ID: c.id, Features: append([]float64(nil), c.features...)}
	}
	return cfg
}

// constraintNames returns the extra-constraint metric names in a stable order.
func (p *planner) constraintNames() []string {
	names := make([]string, 0, len(p.opts.ExtraConstraints))
	for _, c := range p.opts.ExtraConstraints {
		names = append(names, c.Metric)
	}
	sort.Strings(names)
	return names
}

func (p *planner) constraintMax(name string) float64 {
	for _, c := range p.opts.ExtraConstraints {
		if c.Metric == name {
			return c.Max
		}
	}
	return 0
}

// trainSet is the (possibly speculated) training set S of one state: the cost
// and extra-metric targets of every profiled-or-speculated configuration.
type trainSet struct {
	features [][]float64
	costs    []float64
	extras   [][]float64 // extras[k][i]: value of the k-th constraint metric for entry i
	feasible []bool
}

func newTrainSetFromHistory(h *optimizer.History, opts optimizer.Options, extraNames []string) *trainSet {
	trials := h.Trials()
	ts := &trainSet{
		features: make([][]float64, 0, len(trials)),
		costs:    make([]float64, 0, len(trials)),
		extras:   make([][]float64, len(extraNames)),
		feasible: make([]bool, 0, len(trials)),
	}
	for k := range extraNames {
		ts.extras[k] = make([]float64, 0, len(trials))
	}
	for _, tr := range trials {
		ts.features = append(ts.features, append([]float64(nil), tr.Config.Features...))
		ts.costs = append(ts.costs, tr.Cost)
		ts.feasible = append(ts.feasible, tr.Feasible(opts.MaxRuntimeSeconds, opts.ExtraConstraints))
		for k, name := range extraNames {
			ts.extras[k] = append(ts.extras[k], tr.Extra[name])
		}
	}
	return ts
}

// withEntry returns a new training set extended with one speculated entry.
// The receiver is not modified.
func (ts *trainSet) withEntry(features []float64, cost float64, extras []float64, feasible bool) *trainSet {
	out := &trainSet{
		features: make([][]float64, len(ts.features), len(ts.features)+1),
		costs:    make([]float64, len(ts.costs), len(ts.costs)+1),
		extras:   make([][]float64, len(ts.extras)),
		feasible: make([]bool, len(ts.feasible), len(ts.feasible)+1),
	}
	copy(out.features, ts.features)
	copy(out.costs, ts.costs)
	copy(out.feasible, ts.feasible)
	out.features = append(out.features, features)
	out.costs = append(out.costs, cost)
	out.feasible = append(out.feasible, feasible)
	for k := range ts.extras {
		out.extras[k] = make([]float64, len(ts.extras[k]), len(ts.extras[k])+1)
		copy(out.extras[k], ts.extras[k])
		out.extras[k] = append(out.extras[k], extras[k])
	}
	return out
}

// withEntryInto is withEntry into reusable storage: dst's slices are
// overwritten with the receiver's entries plus one speculated entry and dst
// is returned. A nil extras appends a zero for every constraint metric. The
// speculation loop extends the same parent set once per depth, so recycling
// dst removes the per-outcome training-set copies from the planner's hot
// path; the receiver is never modified.
func (ts *trainSet) withEntryInto(dst *trainSet, features []float64, cost float64, extras []float64, feasible bool) *trainSet {
	dst.features = append(dst.features[:0], ts.features...)
	dst.features = append(dst.features, features)
	dst.costs = append(dst.costs[:0], ts.costs...)
	dst.costs = append(dst.costs, cost)
	dst.feasible = append(dst.feasible[:0], ts.feasible...)
	dst.feasible = append(dst.feasible, feasible)
	if cap(dst.extras) < len(ts.extras) {
		dst.extras = make([][]float64, len(ts.extras))
	}
	dst.extras = dst.extras[:len(ts.extras)]
	for k := range ts.extras {
		dst.extras[k] = append(dst.extras[k][:0], ts.extras[k]...)
		if extras == nil {
			dst.extras[k] = append(dst.extras[k], 0)
		} else {
			dst.extras[k] = append(dst.extras[k], extras[k])
		}
	}
	return dst
}

// bestFeasibleCost returns the lowest cost among feasible entries.
func (ts *trainSet) bestFeasibleCost() (float64, bool) {
	best := 0.0
	found := false
	for i, c := range ts.costs {
		if !ts.feasible[i] {
			continue
		}
		if !found || c < best {
			best = c
			found = true
		}
	}
	return best, found
}

// maxCost returns the highest cost in the training set.
func (ts *trainSet) maxCost() float64 {
	maxC := 0.0
	for _, c := range ts.costs {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}

// modelSet bundles the cost model with one model per extra constraint metric.
// Every model is wrapped in a prediction memo keyed by (model generation,
// candidate slot), so repeated predictions of the same candidate between
// refits — the planner re-predicts the whole candidate set once per
// speculation layer — cost one lookup instead of one model evaluation. Memos
// are sized by the decision's active candidate count, never by the space.
type modelSet struct {
	cost   *model.Cached
	extras []*model.Cached

	// extraMemos is scratch for extraMemosOf: one slot per extra model,
	// rewritten on every fast-path eligibility sweep.
	extraMemos [][]numeric.Gaussian
}

// newModelSet creates untrained models on a deterministic random stream, with
// prediction memos covering size candidate slots.
func (p *planner) newModelSet(stream int64, size int) *modelSet {
	ms := &modelSet{cost: model.NewCached(p.factory.New(stream), size)}
	names := p.constraintNames()
	ms.extras = make([]*model.Cached, len(names))
	for k := range names {
		ms.extras[k] = model.NewCached(p.factory.New(stream+int64(k+1)*1_000_003), size)
	}
	return ms
}

// fit trains every model of the set on the given training set, invalidating
// the prediction memos.
func (ms *modelSet) fit(ts *trainSet) error {
	if err := ms.cost.Fit(ts.features, ts.costs); err != nil {
		return fmt.Errorf("core: fitting cost model: %w", err)
	}
	for k, m := range ms.extras {
		if err := m.Fit(ts.features, ts.extras[k]); err != nil {
			return fmt.Errorf("core: fitting constraint model %d: %w", k, err)
		}
	}
	return nil
}

// predict returns the cost and per-constraint predictive distributions for an
// arbitrary feature vector, bypassing the memo.
func (ms *modelSet) predict(features []float64) (numeric.Gaussian, []numeric.Gaussian, error) {
	costPred, err := ms.cost.Predict(features)
	if err != nil {
		return numeric.Gaussian{}, nil, err
	}
	extraPreds := make([]numeric.Gaussian, len(ms.extras))
	for k, m := range ms.extras {
		extraPreds[k], err = m.Predict(features)
		if err != nil {
			return numeric.Gaussian{}, nil, err
		}
	}
	return costPred, extraPreds, nil
}

// predictCand returns the memoized predictive distributions of a candidate,
// keyed by its slot in the decision's active set.
func (ms *modelSet) predictCand(c candidate) (numeric.Gaussian, []numeric.Gaussian, error) {
	costPred, err := ms.cost.PredictID(c.slot, c.features)
	if err != nil {
		return numeric.Gaussian{}, nil, err
	}
	extraPreds := make([]numeric.Gaussian, len(ms.extras))
	for k, m := range ms.extras {
		extraPreds[k], err = m.PredictID(c.slot, c.features)
		if err != nil {
			return numeric.Gaussian{}, nil, err
		}
	}
	return costPred, extraPreds, nil
}

// prefillScalar computes the memoized predictions of every candidate on a
// bounded worker pool, one scalar Predict call per (model, candidate). It is
// the Params.DisableBatchPredict reference path; prefillBatch is the
// production path. After either returns, predictCand is a read-only lookup
// for those candidates, which makes the modelSet safe to share across the
// parallel path-evaluation fan-out.
func (ms *modelSet) prefillScalar(cands []candidate, workers int) error {
	return optimizer.ParallelFor(workers, len(cands), func(i int) error {
		_, _, err := ms.predictCand(cands[i])
		return err
	})
}

// prefillBatch computes the memoized predictions of every active candidate in
// one batch sweep per model over the decision's slot-major feature matrix.
// The batch path emits Gaussians bitwise identical to the scalar path, so the
// memo — and therefore every planning decision — is the same either way; it
// just stops paying per-call validation, per-tree dispatch, and error
// wrapping for every swept candidate.
func (ms *modelSet) prefillBatch(cols [][]float64) error {
	if err := ms.cost.Prefill(cols); err != nil {
		return fmt.Errorf("core: prefilling cost model: %w", err)
	}
	for k, m := range ms.extras {
		if err := m.Prefill(cols); err != nil {
			return fmt.Errorf("core: prefilling constraint model %d: %w", k, err)
		}
	}
	return nil
}

// supportsBatch reports whether the set's models can sweep in one batched
// call. Every model of the set comes from the same factory, so probing the
// cost model is enough.
func (ms *modelSet) supportsBatch() bool { return ms.cost.SupportsBatch() }

// refit trains the model set on the training set and, when batch prediction
// applies, immediately prefills the candidate-set prediction memo over the
// decision's slot-major matrix — every subsequent sweep of the new generation
// (eligibility, incumbent fallback, EIc) then hits the memo instead of
// predicting candidates one at a time. Custom factories without a batch path
// keep the lazy behavior: the memo fills on first use, one scalar prediction
// per candidate.
func (p *planner) refit(ms *modelSet, ts *trainSet) error {
	if err := ms.fit(ts); err != nil {
		return err
	}
	if !p.params.DisableBatchPredict && ms.supportsBatch() && p.activeCols != nil {
		return ms.prefillBatch(p.activeCols)
	}
	return nil
}

// update folds one speculated sample into every model of the set (the cost
// target into the cost model, each constraint metric into its model),
// selectively invalidating the prediction memos.
func (ms *modelSet) update(x []float64, cost float64, extras []float64) error {
	if err := ms.cost.Update(x, cost); err != nil {
		return fmt.Errorf("core: updating cost model: %w", err)
	}
	for k, m := range ms.extras {
		if err := m.Update(x, extras[k]); err != nil {
			return fmt.Errorf("core: updating constraint model %d: %w", k, err)
		}
	}
	return nil
}

// cloneFrom snapshots src's fitted models and prediction memos into the set,
// reusing its storage. cloneFrom only reads src, so concurrent clones from
// one parent set (the shared root models) are safe.
func (ms *modelSet) cloneFrom(src *modelSet) error {
	if err := ms.cost.CloneFrom(src.cost); err != nil {
		return fmt.Errorf("core: cloning cost model: %w", err)
	}
	for k, m := range ms.extras {
		if err := m.CloneFrom(src.extras[k]); err != nil {
			return fmt.Errorf("core: cloning constraint model %d: %w", k, err)
		}
	}
	return nil
}

// pathWorkspace is the per-path-evaluation model scratch. In Full mode it
// holds one model set that explorePaths refits from the extended training
// matrix at every speculated outcome (the exact historical behavior). In
// Incremental mode it holds one clone slot per speculation depth: each
// speculated outcome re-clones the parent set into its depth's slot and
// folds the single speculated sample in, never retraining a tree.
type pathWorkspace struct {
	scratch *modelSet
	clones  []*modelSet

	// elig backs the eligibility sweeps of this path's nextStep calls, which
	// otherwise allocate three candidate-set-sized slices per speculated
	// outcome. The buffers are only live within one nextStep call, so one
	// set per workspace suffices for the whole recursion.
	elig eligibleBuf

	// depths[d] is the serial combo loop's scratch at speculation depth d:
	// the extended training set, the reduced untested slice, the speculated
	// child state, and the Gauss-Hermite outcome/combo buffers. Depth d's
	// recursion returns before depth d reuses its scratch for the next combo,
	// so one set per depth serves the whole path; forked combo loops
	// deliberately allocate instead, since their child states outlive the
	// spawning frame (see explorePathsForked).
	depths []*pathDepthScratch
}

// pathDepthScratch is one speculation depth's reusable combo-loop storage.
type pathDepthScratch struct {
	train     *trainSet
	untested  []candidate
	state     specState
	outcomes  []numeric.WeightedValue
	combos    []numeric.WeightedVector
	comboVals []float64
}

// depth returns the scratch of the given speculation depth, creating it on
// first use. Contents are fully overwritten before every use.
func (ws *pathWorkspace) depth(slot int) *pathDepthScratch {
	for len(ws.depths) <= slot {
		ws.depths = append(ws.depths, &pathDepthScratch{train: &trainSet{}})
	}
	return ws.depths[slot]
}

// eligibleBuf holds the reusable output buffers of one eligibility sweep.
// extrasFlat is the arena backing the per-candidate rows of extraPreds on
// the memo fast path.
type eligibleBuf struct {
	cands      []candidate
	costPreds  []numeric.Gaussian
	extraPreds [][]numeric.Gaussian
	extrasFlat []numeric.Gaussian
}

// cloneSlot returns the model-set slot of the given speculation depth,
// creating it on first use. Slot contents are fully overwritten by cloneFrom
// before every use, so recycled slots never leak state between paths.
func (ws *pathWorkspace) cloneSlot(p *planner, depth int) *modelSet {
	for len(ws.clones) <= depth {
		// The stream only seeds the untrained placeholder models; cloneFrom
		// replaces their state entirely, so any constant works.
		ws.clones = append(ws.clones, p.newModelSet(int64(len(ws.clones))+1, 0))
	}
	return ws.clones[depth]
}

// evalPath scores the exploration paths rooted at one candidate on the given
// scheduler worker. Full mode keeps the historical per-candidate scratch
// model set with its random stream derived from (iteration, candidate ID) —
// the derivation the golden campaign tests pin — and deliberately never
// reuses it. Incremental mode draws a recycled workspace from the worker's
// private arena and returns it there once the whole path (including every
// forked subtree) has joined.
func (p *planner) evalPath(w *specWorker, iteration, activeSize int, rootState *specState, rootModels *modelSet, rootInc float64, cand candidate, extraNames []string) (pathScore, error) {
	// Cancellation poll: a cancelled step abandons the remaining path
	// evaluations (the error propagates through the canonical firstError
	// reduction, so the abort is deterministic). stepCtx may be nil when a
	// test drives evalPath outside nextConfig.
	if p.stepCtx != nil {
		if err := cancelErr(p.stepCtx); err != nil {
			return pathScore{}, err
		}
	}
	var ws *pathWorkspace
	if p.refitMode == SpecRefitIncremental {
		ws = w.acquireWorkspace()
		defer w.releaseWorkspace(ws)
	} else {
		ws = &pathWorkspace{scratch: p.newModelSet(int64(iteration)*4_000_000_007+int64(cand.id), activeSize)}
	}
	reward, cost, err := p.explorePaths(rootState, rootModels, rootInc, cand, p.params.Lookahead, ws, 0, extraNames, w)
	if err != nil {
		return pathScore{}, err
	}
	return pathScore{candidateID: cand.id, reward: reward, cost: cost}, nil
}

// specState is the state Σ of one node of an exploration path: the
// (speculated) training set, the untested configurations, the remaining
// budget, and the currently deployed configuration.
type specState struct {
	train    *trainSet
	untested []candidate
	budget   float64
	deployed *configspace.Config // nil when nothing is deployed
}

// without returns the untested set minus the given candidate.
func without(untested []candidate, id int) []candidate {
	return appendWithout(make([]candidate, 0, len(untested)-1), untested, id)
}

// appendWithout appends the untested set minus the given candidate to dst
// and returns the extended slice — the recycled-storage form of without used
// by the speculation loop's per-depth scratch.
func appendWithout(dst []candidate, untested []candidate, id int) []candidate {
	for _, c := range untested {
		if c.id != id {
			dst = append(dst, c)
		}
	}
	return dst
}

// setupCost returns the setup cost of switching from the state's deployed
// configuration to the candidate, if the extension is enabled.
func (p *planner) setupCost(deployed *configspace.Config, to candidate) float64 {
	if p.opts.SetupCost == nil {
		return 0
	}
	return p.opts.SetupCost(deployed, p.candidateConfig(to))
}

// feasibleSpeculation reports whether a speculated (cost, extras) outcome for
// the candidate satisfies the runtime and extra constraints: the runtime
// constraint is expressed on the cost via C(x) = T(x)·U(x).
func (p *planner) feasibleSpeculation(cand candidate, cost float64, extras []float64, extraNames []string) bool {
	if cost > p.opts.MaxRuntimeSeconds*cand.unitPriceHour/3600 {
		return false
	}
	for k, name := range extraNames {
		if extras[k] > p.constraintMax(name) {
			return false
		}
	}
	return true
}

// incumbent returns the EIc incumbent of a state: the cheapest feasible entry
// of the (speculated) training set, or, when no entry is feasible, the
// fallback "most expensive profiled cost plus three times the largest
// predictive standard deviation over untested configurations". It depends
// only on (state, model generation), so callers compute it once per state and
// share it across every candidate scored under that state.
func (p *planner) incumbent(state *specState, ms *modelSet) (float64, error) {
	if inc, ok := state.train.bestFeasibleCost(); ok {
		return inc, nil
	}
	maxStd := 0.0
	if memo := ms.cost.MemoPreds(); memo != nil {
		// Memo fast path: every slot is fresh, so the sweep is plain array
		// reads — no per-candidate call, no atomic tag loads.
		for _, u := range state.untested {
			if s := memo[u.slot].StdDev; s > maxStd {
				maxStd = s
			}
		}
		return acquisition.IncumbentFallback(state.train.maxCost(), maxStd), nil
	}
	for _, u := range state.untested {
		pred, _, err := ms.predictCand(u)
		if err != nil {
			return 0, err
		}
		if pred.StdDev > maxStd {
			maxStd = pred.StdDev
		}
	}
	return acquisition.IncumbentFallback(state.train.maxCost(), maxStd), nil
}

// eic computes the constrained expected improvement of a candidate under the
// given incumbent and model predictions (paper §3). The incumbent comes from
// incumbent(), computed once per speculation state.
func (p *planner) eic(incumbent float64, cand candidate, costPred numeric.Gaussian, extraPreds []numeric.Gaussian, extraNames []string) (float64, error) {
	ei := acquisition.ExpectedImprovement(costPred, incumbent)
	if ei == 0 {
		// The constraint probabilities only scale the expected improvement
		// down, so a zero EI needs no erfc evaluations. This is the common
		// case deep in speculation, where the ensemble's trees agree on
		// configurations predicted clearly above the incumbent.
		return 0, nil
	}
	// acquisition.Constrained only reads the variadic slice, so a small
	// stack array covers the runtime constraint plus the handful of extra
	// metric constraints without allocating on every candidate scored.
	var probsArr [4]float64
	probs := probsArr[:0]
	if 1+len(extraPreds) > cap(probs) {
		probs = make([]float64, 0, 1+len(extraPreds))
	}
	runtimeProb, err := acquisition.ConstraintProbability(costPred, p.opts.MaxRuntimeSeconds, cand.unitPriceHour/3600)
	if err != nil {
		return 0, err
	}
	probs = append(probs, runtimeProb)
	for k, pred := range extraPreds {
		probs = append(probs, clampProb(pred.ProbLE(p.constraintMax(extraNames[k]))))
	}
	return acquisition.Constrained(ei, probs...)
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// eligible returns the candidates whose predicted cost fits within the
// remaining budget with the configured confidence (Algorithm 1, line 23 and
// Algorithm 2, line 22). A non-nil buf recycles the output slices across
// calls (the returned slices alias it and are only valid until the next call
// with the same buf); a nil buf allocates fresh slices the caller may retain.
func (p *planner) eligible(untested []candidate, ms *modelSet, budget float64, buf *eligibleBuf) ([]candidate, []numeric.Gaussian, [][]numeric.Gaussian, error) {
	var out []candidate
	var costPreds []numeric.Gaussian
	var extraPreds [][]numeric.Gaussian
	if buf != nil {
		out = buf.cands[:0]
		costPreds = buf.costPreds[:0]
		extraPreds = buf.extraPreds[:0]
	} else {
		out = make([]candidate, 0, len(untested))
		costPreds = make([]numeric.Gaussian, 0, len(untested))
		extraPreds = make([][]numeric.Gaussian, 0, len(untested))
	}

	// Memo fast path: when every model's memo is all-valid — the steady state
	// after a prefilled refit or an eagerly repaired incremental update — the
	// sweep reads the prediction arrays directly, skipping the per-candidate
	// PredictID calls (and their atomic tag loads) that otherwise dominate
	// the speculation profile. Per-candidate extras rows are carved from the
	// buffer's flat arena instead of allocated.
	costMemo := ms.cost.MemoPreds()
	extraMemos := extraMemosOf(ms)
	if costMemo != nil && extraMemos != nil {
		var flat []numeric.Gaussian
		if buf != nil {
			flat = buf.extrasFlat[:0]
		}
		nk := len(ms.extras)
		for _, u := range untested {
			costPred := costMemo[u.slot]
			var ok bool
			if p.eligUseZ {
				if costPred.StdDev == 0 {
					ok = budget >= costPred.Mean
				} else {
					ok = budget >= costPred.Mean+p.eligZ*costPred.StdDev
				}
			} else {
				ok = costPred.ProbLE(budget) >= p.params.EligibilityProb
			}
			if !ok {
				continue
			}
			out = append(out, u)
			costPreds = append(costPreds, costPred)
			var row []numeric.Gaussian
			if buf != nil {
				base := len(flat)
				for _, em := range extraMemos {
					flat = append(flat, em[u.slot])
				}
				row = flat[base:len(flat):len(flat)]
			} else {
				row = make([]numeric.Gaussian, nk)
				for k, em := range extraMemos {
					row[k] = em[u.slot]
				}
			}
			extraPreds = append(extraPreds, row)
		}
		if buf != nil {
			buf.cands = out
			buf.costPreds = costPreds
			buf.extraPreds = extraPreds
			buf.extrasFlat = flat
		}
		return out, costPreds, extraPreds, nil
	}

	for _, u := range untested {
		costPred, extras, err := ms.predictCand(u)
		if err != nil {
			return nil, nil, nil, err
		}
		var ok bool
		if p.eligUseZ {
			if costPred.StdDev == 0 {
				ok = budget >= costPred.Mean
			} else {
				ok = budget >= costPred.Mean+p.eligZ*costPred.StdDev
			}
		} else {
			ok = costPred.ProbLE(budget) >= p.params.EligibilityProb
		}
		if ok {
			out = append(out, u)
			costPreds = append(costPreds, costPred)
			extraPreds = append(extraPreds, extras)
		}
	}
	if buf != nil {
		buf.cands = out
		buf.costPreds = costPreds
		buf.extraPreds = extraPreds
	}
	return out, costPreds, extraPreds, nil
}

// extraMemosEmpty is the shared zero-extras result of extraMemosOf: non-nil
// (so the fast path engages) but empty.
var extraMemosEmpty = [][]numeric.Gaussian{}

// extraMemosOf collects the all-valid memo arrays of the set's extra models,
// or nil when any extra model's memo is not all-valid (the fast path then
// falls back to PredictID). The zero-extras case — Lynceus' single-constraint
// formulation — returns a shared empty slice without touching the heap.
func extraMemosOf(ms *modelSet) [][]numeric.Gaussian {
	if len(ms.extras) == 0 {
		return extraMemosEmpty
	}
	if ms.extraMemos == nil {
		ms.extraMemos = make([][]numeric.Gaussian, len(ms.extras))
	}
	for k, m := range ms.extras {
		em := m.MemoPreds()
		if em == nil {
			return nil
		}
		// Skip the write when the memo array has not moved: a published
		// model set's extraMemos are prewarmed by its publisher, and every
		// later (possibly concurrent) caller re-derives the identical view —
		// writing it back would be a data race between adopters.
		if !sameGaussians(ms.extraMemos[k], em) {
			ms.extraMemos[k] = em
		}
	}
	return ms.extraMemos
}

// nextStep selects the configuration explored at depth ≥ 2 of a path: the
// eligible untested configuration with the highest EIc under the speculated
// state (Algorithm 2, NextStep). inc is the state's incumbent, computed once
// by the caller and shared with the recursive path evaluation. buf recycles
// the eligibility sweep's buffers across speculated outcomes (nil allocates).
func (p *planner) nextStep(state *specState, ms *modelSet, inc float64, extraNames []string, buf *eligibleBuf) (candidate, bool, error) {
	eligible, costPreds, extraPreds, err := p.eligible(state.untested, ms, state.budget, buf)
	if err != nil {
		return candidate{}, false, err
	}
	if len(eligible) == 0 {
		return candidate{}, false, nil
	}
	best := candidate{}
	bestEIc := -1.0
	for i, cand := range eligible {
		score, err := p.eic(inc, cand, costPreds[i], extraPreds[i], extraNames)
		if err != nil {
			return candidate{}, false, err
		}
		if score > bestEIc || (score == bestEIc && cand.id < best.id) {
			best = cand
			bestEIc = score
		}
	}
	return best, true, nil
}

// explorePaths implements Algorithm 2: it returns the expected reward and
// expected cost of the exploration path that starts by profiling cand from
// the given state, speculating on the remaining lookahead steps.
//
// models must be trained on state.train and inc must be the incumbent of
// (state, models); ws is the per-task model workspace that keeps path
// evaluations independent across goroutines — in Full mode a scratch set
// explorePaths refits freely (random stream split deterministically from the
// candidate ID), in Incremental mode a stack of clone slots indexed by slot
// (0 at the task's root call). w is the scheduler worker executing this
// evaluation; in Incremental mode the shallow speculation layers fork their
// outcome subtrees onto it as stealable tasks (see explorePathsForked), so a
// few expensive candidates can occupy the whole pool.
func (p *planner) explorePaths(state *specState, models *modelSet, inc float64, cand candidate, lookahead int, ws *pathWorkspace, slot int, extraNames []string, w *specWorker) (reward, cost float64, err error) {
	costPred, extraPreds, err := models.predictCand(cand)
	if err != nil {
		return 0, 0, err
	}
	reward, err = p.eic(inc, cand, costPred, extraPreds, extraNames)
	if err != nil {
		return 0, 0, err
	}
	setup := p.setupCost(state.deployed, cand)
	cost = costPred.Mean + setup

	if lookahead == 0 {
		return reward, cost, nil
	}

	// Discretize the speculated outcomes: the cost and every constraint
	// metric each contribute a Gauss-Hermite marginal; the joint outcomes are
	// their Cartesian product (paper §4.4 for the multi-constraint case). In
	// the common single-constraint case (no extras) the cost marginal is the
	// joint distribution, so the product machinery is skipped and both the
	// outcomes and the combo headers live in this depth's recycled scratch —
	// one Gauss-Hermite batch of speculated outcomes per step, allocated
	// never.
	ds := ws.depth(slot)
	var combos []numeric.WeightedVector
	if len(extraPreds) == 0 {
		ds.outcomes, err = numeric.AppendDiscretizedGaussian(ds.outcomes[:0], costPred, p.params.GHOrder)
		if err != nil {
			return 0, 0, err
		}
		nOut := len(ds.outcomes)
		if cap(ds.combos) < nOut {
			ds.combos = make([]numeric.WeightedVector, nOut)
			ds.comboVals = make([]float64, nOut)
		}
		combos = ds.combos[:nOut]
		values := ds.comboVals[:nOut]
		for i, o := range ds.outcomes {
			values[i] = o.Value
			combos[i] = numeric.WeightedVector{Values: values[i : i+1 : i+1], Weight: o.Weight}
		}
	} else {
		costOutcomes, err := numeric.DiscretizeGaussian(costPred, p.params.GHOrder)
		if err != nil {
			return 0, 0, err
		}
		dims := make([][]numeric.WeightedValue, 0, 1+len(extraPreds))
		dims = append(dims, costOutcomes)
		for _, pred := range extraPreds {
			outcomes, err := numeric.DiscretizeGaussian(pred, p.params.GHOrder)
			if err != nil {
				return 0, 0, err
			}
			dims = append(dims, outcomes)
		}
		combos, err = numeric.CartesianWeighted(dims)
		if err != nil {
			return 0, 0, err
		}
	}

	childUntested := appendWithout(ds.untested[:0], state.untested, cand.id)
	ds.untested = childUntested[:0]
	if len(childUntested) == 0 {
		return reward, cost, nil
	}
	var childDeployed *configspace.Config
	if p.opts.SetupCost != nil {
		cfg := p.candidateConfig(cand)
		childDeployed = &cfg
	}

	if p.shouldFork(w, lookahead, len(combos)) {
		return p.explorePathsForked(state, models, cand, lookahead, extraNames, w,
			combos, childUntested, childDeployed, setup, reward, cost)
	}

	// Serial evaluation: the speculated child states differ only in the
	// outcome of the last (speculated) training entry, so one extended
	// training set and one reduced untested slice are built per candidate
	// and the entry is rewritten per combo. Deeper recursion copies the
	// training set before extending it, so the mutation never escapes this
	// loop.
	childTrain := state.train.withEntryInto(ds.train, cand.features, 0, nil, false)
	last := len(childTrain.costs) - 1
	for _, combo := range combos {
		specCost := combo.Values[0]
		specExtras := combo.Values[1:]
		feasible := p.feasibleSpeculation(cand, specCost, specExtras, extraNames)

		childTrain.costs[last] = specCost
		childTrain.feasible[last] = feasible
		for k := range childTrain.extras {
			childTrain.extras[k][last] = specExtras[k]
		}
		ds.state = specState{
			train:    childTrain,
			untested: childUntested,
			budget:   state.budget - specCost - setup,
			deployed: childDeployed,
		}
		childState := &ds.state
		var childModels *modelSet
		if p.refitMode == SpecRefitIncremental {
			// Incremental fast path: snapshot the parent models into this
			// slot's clone and fold the one speculated sample in. The
			// clone inherits the parent's prediction memo, and the update
			// only drops the entries its single touched tree region can
			// move — the following incumbent/eligibility sweeps then cost
			// O(changed) model evaluations instead of a full refit + sweep.
			childModels = ws.cloneSlot(p, slot)
			if err := childModels.cloneFrom(models); err != nil {
				return 0, 0, err
			}
			if err := childModels.update(cand.features, specCost, specExtras); err != nil {
				return 0, 0, err
			}
		} else {
			if err := p.refit(ws.scratch, childState.train); err != nil {
				return 0, 0, err
			}
			childModels = ws.scratch
		}
		childInc, err := p.incumbent(childState, childModels)
		if err != nil {
			return 0, 0, err
		}
		next, ok, err := p.nextStep(childState, childModels, childInc, extraNames, &ws.elig)
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			// The speculated budget cannot accommodate any further step: the
			// path terminates here (Algorithm 2, lines 15-16).
			continue
		}
		subReward, subCost, err := p.explorePaths(childState, childModels, childInc, next, lookahead-1, ws, slot+1, extraNames, w)
		if err != nil {
			return 0, 0, err
		}
		cost += combo.Weight * subCost
		reward += p.params.Discount * combo.Weight * subReward
	}
	return reward, cost, nil
}

// shouldFork decides whether the outcome subtrees of the current speculation
// layer become scheduler tasks. Only the incremental refit mode forks (Full
// mode's scratch refits consume a per-candidate random stream sequentially,
// pinned bitwise by the golden campaign tests), only with a parallel
// scheduler, and only within the first forkDepth layers — the depth-aware
// bound that keeps tasks coarse enough to amortize scheduling. The layer
// index is derived from the remaining lookahead, so forked subtrees fork
// their own children too while still within the bound.
func (p *planner) shouldFork(w *specWorker, lookahead, combos int) bool {
	if w == nil || combos < 2 || p.refitMode != SpecRefitIncremental || !p.sched.parallel() {
		return false
	}
	if p.params.Lookahead-lookahead >= p.forkDepth {
		return false
	}
	// Supply-aware: while the injector still queues more root candidates
	// than there are workers, root-level parallelism alone saturates the
	// pool and serial subtree evaluation is cheaper (one shared child
	// training set instead of per-outcome copies). Forked and serial
	// evaluation compute bitwise-identical results, so this heuristic is
	// free to depend on scheduling state.
	return p.sched.scarceRoots()
}

// comboOutcome is the result slot of one forked speculated-outcome task.
// Slots are fixed at spawn time and reduced in combo order after the join,
// which keeps the floating-point reduction identical to the serial loop
// regardless of completion order.
type comboOutcome struct {
	reward, cost float64
	ok           bool
	err          error
}

// explorePathsForked is the parallel variant of explorePaths' combo loop:
// every speculated outcome of the current layer is spawned as a task on the
// executing worker's deque, idle workers steal them, and the parent helps
// drain subtree tasks until its children joined. Each child task evaluates
// exactly the operations of the serial loop body — clone parent models, fold
// the speculated sample in, pick the next step, recurse — on its own
// workspace, so forked and serial evaluations produce bitwise-identical
// rewards and costs (the worker-count independence tests pin this).
func (p *planner) explorePathsForked(state *specState, models *modelSet, cand candidate, lookahead int, extraNames []string, w *specWorker, combos []numeric.WeightedVector, childUntested []candidate, childDeployed *configspace.Config, setup, reward, cost float64) (float64, float64, error) {
	outcomes := make([]comboOutcome, len(combos))
	var pending atomic.Int64
	pending.Store(int64(len(combos)))
	for ci := range combos {
		specCost := combos[ci].Values[0]
		specExtras := combos[ci].Values[1:]
		feasible := p.feasibleSpeculation(cand, specCost, specExtras, extraNames)
		childState := &specState{
			train:    state.train.withEntry(cand.features, specCost, specExtras, feasible),
			untested: childUntested,
			budget:   state.budget - specCost - setup,
			deployed: childDeployed,
		}
		out := &outcomes[ci]
		w.spawn(func(cw *specWorker) {
			out.reward, out.cost, out.ok, out.err = p.evalSpeculated(cw, childState, models, cand, specCost, specExtras, lookahead, extraNames)
			pending.Add(-1)
		})
	}
	w.help(&pending)
	for ci := range outcomes {
		o := &outcomes[ci]
		if o.err != nil {
			return 0, 0, o.err
		}
		if !o.ok {
			// The speculated budget cannot accommodate any further step: the
			// path terminates here (Algorithm 2, lines 15-16).
			continue
		}
		cost += combos[ci].Weight * o.cost
		reward += p.params.Discount * combos[ci].Weight * o.reward
	}
	return reward, cost, nil
}

// evalSpeculated evaluates one speculated-outcome subtree on the worker that
// picked the task up: clone the parent models, fold the speculated sample
// in, select the next step under the speculated state, and recurse with the
// remaining lookahead. The workspace comes from the executing worker's arena
// and is released only after the recursion — including any further forked
// layer — has fully joined, so clone slots referenced by grandchild tasks
// stay untouched until they finished.
func (p *planner) evalSpeculated(cw *specWorker, childState *specState, parent *modelSet, cand candidate, specCost float64, specExtras []float64, lookahead int, extraNames []string) (reward, cost float64, ok bool, err error) {
	ws := cw.acquireWorkspace()
	defer cw.releaseWorkspace(ws)
	childModels := ws.cloneSlot(p, 0)
	if err := childModels.cloneFrom(parent); err != nil {
		return 0, 0, false, err
	}
	if err := childModels.update(cand.features, specCost, specExtras); err != nil {
		return 0, 0, false, err
	}
	childInc, err := p.incumbent(childState, childModels)
	if err != nil {
		return 0, 0, false, err
	}
	next, found, err := p.nextStep(childState, childModels, childInc, extraNames, &ws.elig)
	if err != nil || !found {
		return 0, 0, false, err
	}
	subReward, subCost, err := p.explorePaths(childState, childModels, childInc, next, lookahead-1, ws, 1, extraNames, cw)
	if err != nil {
		return 0, 0, false, err
	}
	return subReward, subCost, true, nil
}

// Pruning constants (see prunedScores).
const (
	// pruneOptimism inflates the optimistic future-reward bound to keep the
	// pruning rule conservative: the speculated EIc of a future step may
	// exceed the largest root-model EIc when the speculated outcome lowers
	// the incumbent or inflates the predictive spread.
	pruneOptimism = 1.25
	// pruneMinSeeds is the minimum number of top-ranked candidates whose
	// paths are always evaluated exactly; below 2x this count pruning is not
	// worth the bookkeeping.
	pruneMinSeeds = 8
	// pruneSeedDivisor sizes the exactly-evaluated seed set relative to the
	// eligible-candidate count.
	pruneSeedDivisor = 8
)

// nextConfig implements Algorithm 1's NextConfig: it asks the search strategy
// for the candidate IDs considered at this decision, scores the exploration
// paths rooted at every eligible candidate, and returns the configuration
// starting the path with the best reward-to-cost ratio.
//
// The paths are scored concurrently on a worker pool (Params.Workers wide);
// the root model set is fitted once, its predictions for every candidate are
// precomputed, and each path evaluation owns a scratch model set on a random
// stream derived from the candidate's configuration ID — so the selected
// configuration is identical for every worker count.
func (p *planner) nextConfig(ctx context.Context, h *optimizer.History, remainingBudget float64) (configspace.Config, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.stepCtx = ctx
	defer func() { p.stepCtx = nil }()
	extraNames := p.constraintNames()
	train := newTrainSetFromHistory(h, p.opts, extraNames)
	if len(train.costs) == 0 {
		return configspace.Config{}, false, fmt.Errorf("core: nextConfig called with an empty history")
	}

	// Quarantined configurations are excluded alongside tested ones; with an
	// empty quarantine set this degenerates to the historical tested-only
	// filter (ExcludedCount == h.Len()), which the golden campaigns pin.
	untestedCount := p.space.Size() - h.ExcludedCount()
	if untestedCount <= 0 {
		return configspace.Config{}, false, nil
	}
	ids, err := p.strategy.Select(p.space, h.Excluded, untestedCount, p.iteration, p.opts.Seed)
	if err != nil {
		return configspace.Config{}, false, fmt.Errorf("core: search strategy %q: %w", p.strategy.Name(), err)
	}
	if len(ids) == 0 {
		return configspace.Config{}, false, nil
	}
	untested, err := p.gather(ids)
	if err != nil {
		return configspace.Config{}, false, err
	}
	// Phase boundary: candidate selection done, model fit next. Checked
	// before the sharing claim so a cancelled campaign never becomes a
	// decision leader its replicas would block on.
	if err := cancelErr(ctx); err != nil {
		return configspace.Config{}, false, err
	}

	// Cross-campaign sharing: when every planning input is captured by the
	// cache keys (see sharable and shareKeys), an identical campaign's
	// published decision is adopted outright, and concurrent identical
	// campaigns single-flight the computation — one leader plans, the
	// replicas block briefly and adopt. Equal keys imply bitwise-equal
	// outcomes, so adoption preserves the isolated-run trial sequence.
	var modelKey string
	var claim *share.Claim[sharedDecision]
	if p.sharable() {
		var decisionKey string
		modelKey, decisionKey = p.shareKeys(h, remainingBudget, extraNames, untested)
		dec, cl := p.shared.group.decisions.GetOrClaim(decisionKey)
		if cl == nil {
			p.iteration++
			if !dec.ok {
				return configspace.Config{}, false, nil
			}
			best, err := p.space.Config(dec.id)
			if err != nil {
				return configspace.Config{}, false, err
			}
			return best, true, nil
		}
		claim = cl
		// The leader publishes at every definitive exit below; on error
		// paths the deferred Abandon (a no-op after Publish) wakes blocked
		// followers to re-elect instead of deadlocking them.
		defer claim.Abandon()
	}

	p.activeCfgs = p.activeCfgs[:0]
	if p.opts.SetupCost != nil {
		// Config views, not clones: on materialized spaces the active set
		// aliases the space's shared Indices/Features rows, matching the
		// no-copy contract of the candidates themselves.
		for _, id := range ids {
			cfg, err := p.space.ConfigView(id)
			if err != nil {
				return configspace.Config{}, false, err
			}
			p.activeCfgs = append(p.activeCfgs, cfg)
		}
	}

	// An identical campaign may have published this decision's fitted,
	// fully-prefilled root model set; adopting it (read-only, with the
	// publisher's owned column matrix) skips the fit and prefill entirely.
	var rootModels *modelSet
	adoptedModels := false
	if modelKey != "" {
		if sm, ok := p.shared.group.models.Get(modelKey); ok {
			rootModels = sm.ms
			p.activeCols = sm.cols
			adoptedModels = true
		}
	}
	if !adoptedModels {
		rootModels = p.newModelSet(int64(p.iteration)*2_000_000_011, len(untested))
	}
	p.iteration++
	if !adoptedModels {
		// Fit, then populate the root prediction memo up front: every later
		// root-model prediction (eligibility, incumbent fallback, per-path root
		// EIc) becomes a read-only lookup, which keeps the shared root model set
		// race-free during the parallel fan-out. The production path sweeps the
		// candidate set in one batch per model; the scalar reference path
		// predicts the candidates one by one on the worker pool.
		if err := rootModels.fit(train); err != nil {
			return configspace.Config{}, false, err
		}
		if p.params.DisableBatchPredict || !rootModels.supportsBatch() {
			p.activeCols = nil
			if err := rootModels.prefillScalar(untested, p.params.Workers); err != nil {
				return configspace.Config{}, false, err
			}
		} else {
			if modelKey != "" {
				// Freshly-backed columns: the published set's memos alias
				// them, and the reusable colsBuf would be overwritten by
				// this planner's next decision under the adopters.
				p.activeCols = p.gatherColsOwned(untested)
			} else {
				p.activeCols = p.gatherCols(untested)
			}
			if err := rootModels.prefillBatch(p.activeCols); err != nil {
				return configspace.Config{}, false, err
			}
		}
		// Publish only a fully-memoized set (batch prefill: cost and extra
		// memos all-valid, prewarmed here) — adopters then never write to
		// it. Scalar-mode sets stay private.
		if modelKey != "" && rootModels.cost.MemoPreds() != nil && extraMemosOf(rootModels) != nil {
			p.shared.group.models.Put(modelKey, sharedModels{ms: rootModels, cols: p.activeCols})
		}
	}

	// Phase boundary: root models fitted and prefilled, eligibility next.
	if err := cancelErr(ctx); err != nil {
		return configspace.Config{}, false, err
	}

	rootState := &specState{
		train:    train,
		untested: untested,
		budget:   remainingBudget,
		deployed: h.Deployed(),
	}

	eligible, costPreds, extraPreds, err := p.eligible(untested, rootModels, remainingBudget, nil)
	if err != nil {
		return configspace.Config{}, false, err
	}
	if len(eligible) == 0 {
		if claim != nil {
			// "No eligible candidate" is itself the decision: replicas of
			// this campaign end the same way, so cache it.
			claim.Publish(sharedDecision{})
		}
		return configspace.Config{}, false, nil
	}
	rootInc, err := p.incumbent(rootState, rootModels)
	if err != nil {
		return configspace.Config{}, false, err
	}
	rootEIc := make([]float64, len(eligible))
	for i, cand := range eligible {
		if rootEIc[i], err = p.eic(rootInc, cand, costPreds[i], extraPreds[i], extraNames); err != nil {
			return configspace.Config{}, false, err
		}
	}

	// Phase boundary: eligibility and root EIc done, path scoring next (the
	// long phase; each path evaluation additionally polls stepCtx itself).
	if err := cancelErr(ctx); err != nil {
		return configspace.Config{}, false, err
	}

	deepSearch := p.params.Lookahead >= 2 && !p.params.DisablePruning
	iteration := p.iteration
	active := len(untested)

	var scores []pathScore
	if deepSearch && len(eligible) > 2*pruneMinSeeds {
		scores, err = p.prunedScores(eligible, costPreds, rootEIc, rootState, rootModels, rootInc, iteration, active, extraNames)
	} else {
		results := make([]pathScore, len(eligible))
		errs := make([]error, len(eligible))
		p.sched.run(len(eligible), func(w *specWorker, i int) {
			results[i], errs[i] = p.evalPath(w, iteration, active, rootState, rootModels, rootInc, eligible[i], extraNames)
		})
		scores, err = results, firstError(errs)
	}
	if err != nil {
		return configspace.Config{}, false, err
	}

	bestID, ok := selectBestRatio(scores)
	if !ok {
		if claim != nil {
			claim.Publish(sharedDecision{})
		}
		return configspace.Config{}, false, nil
	}
	best, err := p.space.Config(bestID)
	if err != nil {
		return configspace.Config{}, false, err
	}
	if claim != nil {
		claim.Publish(sharedDecision{id: bestID, ok: true})
	}
	return best, true, nil
}

// firstError returns the lowest-indexed non-nil error of a result slice, so
// error reporting is deterministic regardless of scheduling.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prunedScores evaluates the exploration paths of the eligible candidates
// with optimistic-bound pruning, cutting the branching factor of the
// lookahead ≥ 2 search:
//
//  1. Every candidate gets an optimistic ratio bound from root-model
//     quantities alone: its own root EIc plus a discounted, optimism-inflated
//     multiple of the best root EIc (future steps cannot plausibly beat the
//     best currently known reward by more), divided by its root expected cost
//     (a lower bound on the true path cost, since speculated future costs are
//     non-negative).
//  2. The top seeds by that bound are evaluated exactly, with no
//     synchronization between them: each seed task publishes its ratio and
//     observed future reward through lock-free monotone atomics as it
//     completes (forked subtrees steal freely throughout).
//  3. At the seed join the pruning threshold is fixed from the seed
//     results; remaining candidates whose bound cannot beat it are dropped
//     without simulating their paths, and the survivors are evaluated
//     exactly.
//
// This replaces the former fixed-size chunk barriers (one pool-wide
// synchronization per 16 candidates) with a single join per decision, and
// keeps the pruned set deterministic BY CONSTRUCTION: the threshold depends
// only on the seed results, which are evaluated unconditionally, never on
// which worker read the threshold when. Scores land in slots fixed by
// candidate rank and are collected in canonical order, so the
// recommendation is bitwise identical for every Params.Workers value
// (pinned by the worker-count determinism tests and the golden campaign
// tests).
func (p *planner) prunedScores(eligible []candidate, costPreds []numeric.Gaussian, rootEIc []float64, rootState *specState, rootModels *modelSet, rootInc float64, iteration, active int, extraNames []string) ([]pathScore, error) {
	const eps = 1e-12

	maxEIc := 0.0
	for _, score := range rootEIc {
		if score > maxEIc {
			maxEIc = score
		}
	}

	// Discounted horizon weight: sum of discount^d for d = 1..Lookahead.
	horizon := 0.0
	pow := 1.0
	for d := 0; d < p.params.Lookahead; d++ {
		pow *= p.params.Discount
		horizon += pow
	}

	costLBs := make([]float64, len(eligible))
	bounds := make([]float64, len(eligible))
	for i, cand := range eligible {
		costLB := costPreds[i].Mean + p.setupCost(rootState.deployed, cand)
		if costLB < eps {
			costLB = eps
		}
		costLBs[i] = costLB
		bounds[i] = (rootEIc[i] + horizon*maxEIc) / costLB
	}

	order := make([]int, len(eligible))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if bounds[order[a]] != bounds[order[b]] {
			return bounds[order[a]] > bounds[order[b]]
		}
		return eligible[order[a]].id < eligible[order[b]].id
	})

	seedCount := len(eligible) / pruneSeedDivisor
	if seedCount < pruneMinSeeds {
		seedCount = pruneMinSeeds
	}

	// Phase 1: evaluate every seed exactly. Seed tasks publish the pruning
	// calibration through the lock-free monotone atomics as they complete
	// (no synchronization between seeds, forked subtrees steal freely); the
	// single join at the end of the run is the only synchronization point of
	// the whole decision — versus one barrier per 16-candidate chunk before.
	var bestRatio, maxFuture atomicMaxFloat
	results := make([]pathScore, len(order))
	errs := make([]error, len(order))
	evalRank := func(w *specWorker, rank int) {
		i := order[rank]
		s, err := p.evalPath(w, iteration, active, rootState, rootModels, rootInc, eligible[i], extraNames)
		if err != nil {
			errs[rank] = err
			return
		}
		results[rank] = s
		den := s.cost
		if den < eps {
			den = eps
		}
		bestRatio.Max(s.reward / den)
		maxFuture.Max(s.reward - rootEIc[i])
	}
	p.sched.run(seedCount, evalRank)
	if err := firstError(errs[:seedCount]); err != nil {
		return nil, err
	}

	// Phase 2: fix the threshold from the (deterministic) seed results and
	// prune the remaining candidates against it up front. The discounted
	// future reward of a path varies far less across root candidates than
	// the root EIc does, so the largest future reward observed across the
	// seeds, inflated by the safety factor, bounds the rest; the
	// discounted-horizon multiple of the best root EIc floors the term, so a
	// degenerate seed sample (every seed's speculation adding nothing) can
	// never tighten the bound below the static ranking optimism.
	//
	// Fixing the threshold at the seed join — rather than letting survivor
	// evaluations keep tightening it — is what makes the pruned set
	// deterministic BY CONSTRUCTION: it depends only on seed results, which
	// are evaluated unconditionally. A threshold that kept moving while
	// survivors completed in scheduling order would still pick the same
	// winner whenever the optimistic bound truly bounds (a skipped
	// candidate's ratio would sit strictly below an exactly-computed one),
	// but the bound is a calibrated heuristic, and the repository's
	// reproducibility contract must not be conditional on it.
	future := pruneOptimism * maxFuture.Load()
	if floor := horizon * maxEIc; future < floor {
		future = floor
	}
	threshold := bestRatio.Load()
	survivors := make([]int, 0, len(order)-seedCount)
	for rank := seedCount; rank < len(order); rank++ {
		if i := order[rank]; (rootEIc[i]+future)/costLBs[i] >= threshold {
			survivors = append(survivors, rank)
		}
	}
	p.sched.run(len(survivors), func(w *specWorker, k int) {
		evalRank(w, survivors[k])
	})
	if err := firstError(errs[seedCount:]); err != nil {
		return nil, err
	}

	scores := make([]pathScore, 0, seedCount+len(survivors))
	for rank := 0; rank < seedCount; rank++ {
		scores = append(scores, results[rank])
	}
	for _, rank := range survivors {
		scores = append(scores, results[rank])
	}
	return scores, nil
}
