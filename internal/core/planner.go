package core

import (
	"fmt"
	"sort"

	"repro/internal/acquisition"
	"repro/internal/configspace"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/optimizer"
)

// planner implements the configuration-selection logic of Algorithms 1 and 2:
// it turns the optimizer's history into speculation states and simulates
// exploration paths to score every eligible candidate.
type planner struct {
	params     Params
	opts       optimizer.Options
	space      *configspace.Space
	candidates []candidate          // indexed by configuration ID
	configs    []configspace.Config // indexed by configuration ID
	factory    model.Factory
	iteration  int
}

func newPlanner(params Params, env optimizer.Environment, opts optimizer.Options) (*planner, error) {
	space := env.Space()
	configs := space.Configs()
	candidates := make([]candidate, len(configs))
	for i, cfg := range configs {
		price, err := env.UnitPricePerHour(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: unit price of config %d: %w", cfg.ID, err)
		}
		if price <= 0 {
			return nil, fmt.Errorf("core: non-positive unit price %v for config %d", price, cfg.ID)
		}
		candidates[i] = candidate{
			id:            cfg.ID,
			features:      append([]float64(nil), cfg.Features...),
			unitPriceHour: price,
		}
	}
	factory := params.ModelFactory
	if factory == nil {
		factory = model.NewBaggingFactory(params.Model, opts.Seed)
	}
	return &planner{
		params:     params,
		opts:       opts,
		space:      space,
		candidates: candidates,
		configs:    configs,
		factory:    factory,
	}, nil
}

// constraintNames returns the extra-constraint metric names in a stable order.
func (p *planner) constraintNames() []string {
	names := make([]string, 0, len(p.opts.ExtraConstraints))
	for _, c := range p.opts.ExtraConstraints {
		names = append(names, c.Metric)
	}
	sort.Strings(names)
	return names
}

func (p *planner) constraintMax(name string) float64 {
	for _, c := range p.opts.ExtraConstraints {
		if c.Metric == name {
			return c.Max
		}
	}
	return 0
}

// trainSet is the (possibly speculated) training set S of one state: the cost
// and extra-metric targets of every profiled-or-speculated configuration.
type trainSet struct {
	features [][]float64
	costs    []float64
	extras   [][]float64 // extras[k][i]: value of the k-th constraint metric for entry i
	feasible []bool
}

func newTrainSetFromHistory(h *optimizer.History, opts optimizer.Options, extraNames []string) *trainSet {
	trials := h.Trials()
	ts := &trainSet{
		features: make([][]float64, 0, len(trials)),
		costs:    make([]float64, 0, len(trials)),
		extras:   make([][]float64, len(extraNames)),
		feasible: make([]bool, 0, len(trials)),
	}
	for k := range extraNames {
		ts.extras[k] = make([]float64, 0, len(trials))
	}
	for _, tr := range trials {
		ts.features = append(ts.features, append([]float64(nil), tr.Config.Features...))
		ts.costs = append(ts.costs, tr.Cost)
		ts.feasible = append(ts.feasible, tr.Feasible(opts.MaxRuntimeSeconds, opts.ExtraConstraints))
		for k, name := range extraNames {
			ts.extras[k] = append(ts.extras[k], tr.Extra[name])
		}
	}
	return ts
}

// withEntry returns a new training set extended with one speculated entry.
// The receiver is not modified.
func (ts *trainSet) withEntry(features []float64, cost float64, extras []float64, feasible bool) *trainSet {
	out := &trainSet{
		features: make([][]float64, len(ts.features), len(ts.features)+1),
		costs:    make([]float64, len(ts.costs), len(ts.costs)+1),
		extras:   make([][]float64, len(ts.extras)),
		feasible: make([]bool, len(ts.feasible), len(ts.feasible)+1),
	}
	copy(out.features, ts.features)
	copy(out.costs, ts.costs)
	copy(out.feasible, ts.feasible)
	out.features = append(out.features, features)
	out.costs = append(out.costs, cost)
	out.feasible = append(out.feasible, feasible)
	for k := range ts.extras {
		out.extras[k] = make([]float64, len(ts.extras[k]), len(ts.extras[k])+1)
		copy(out.extras[k], ts.extras[k])
		out.extras[k] = append(out.extras[k], extras[k])
	}
	return out
}

// bestFeasibleCost returns the lowest cost among feasible entries.
func (ts *trainSet) bestFeasibleCost() (float64, bool) {
	best := 0.0
	found := false
	for i, c := range ts.costs {
		if !ts.feasible[i] {
			continue
		}
		if !found || c < best {
			best = c
			found = true
		}
	}
	return best, found
}

// maxCost returns the highest cost in the training set.
func (ts *trainSet) maxCost() float64 {
	maxC := 0.0
	for _, c := range ts.costs {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}

// modelSet bundles the cost model with one model per extra constraint metric.
type modelSet struct {
	cost   model.Regressor
	extras []model.Regressor
}

// newModelSet creates untrained models on a deterministic random stream.
func (p *planner) newModelSet(stream int64) *modelSet {
	ms := &modelSet{cost: p.factory.New(stream)}
	names := p.constraintNames()
	ms.extras = make([]model.Regressor, len(names))
	for k := range names {
		ms.extras[k] = p.factory.New(stream + int64(k+1)*1_000_003)
	}
	return ms
}

// fit trains every model of the set on the given training set.
func (ms *modelSet) fit(ts *trainSet) error {
	if err := ms.cost.Fit(ts.features, ts.costs); err != nil {
		return fmt.Errorf("core: fitting cost model: %w", err)
	}
	for k, m := range ms.extras {
		if err := m.Fit(ts.features, ts.extras[k]); err != nil {
			return fmt.Errorf("core: fitting constraint model %d: %w", k, err)
		}
	}
	return nil
}

// predict returns the cost and per-constraint predictive distributions for a
// feature vector.
func (ms *modelSet) predict(features []float64) (numeric.Gaussian, []numeric.Gaussian, error) {
	costPred, err := ms.cost.Predict(features)
	if err != nil {
		return numeric.Gaussian{}, nil, err
	}
	extraPreds := make([]numeric.Gaussian, len(ms.extras))
	for k, m := range ms.extras {
		extraPreds[k], err = m.Predict(features)
		if err != nil {
			return numeric.Gaussian{}, nil, err
		}
	}
	return costPred, extraPreds, nil
}

// specState is the state Σ of one node of an exploration path: the
// (speculated) training set, the untested configurations, the remaining
// budget, and the currently deployed configuration.
type specState struct {
	train      *trainSet
	untested   []candidate
	budget     float64
	deployedID int // -1 when nothing is deployed
}

// without returns the untested set minus the given candidate.
func without(untested []candidate, id int) []candidate {
	out := make([]candidate, 0, len(untested)-1)
	for _, c := range untested {
		if c.id != id {
			out = append(out, c)
		}
	}
	return out
}

// setupCost returns the setup cost of switching from the state's deployed
// configuration to the candidate, if the extension is enabled.
func (p *planner) setupCost(deployedID int, to candidate) float64 {
	if p.opts.SetupCost == nil {
		return 0
	}
	var from *configspace.Config
	if deployedID >= 0 && deployedID < len(p.configs) {
		cfg := p.configs[deployedID].Clone()
		from = &cfg
	}
	return p.opts.SetupCost(from, p.configs[to.id])
}

// feasibleSpeculation reports whether a speculated (cost, extras) outcome for
// the candidate satisfies the runtime and extra constraints: the runtime
// constraint is expressed on the cost via C(x) = T(x)·U(x).
func (p *planner) feasibleSpeculation(cand candidate, cost float64, extras []float64, extraNames []string) bool {
	if cost > p.opts.MaxRuntimeSeconds*cand.unitPriceHour/3600 {
		return false
	}
	for k, name := range extraNames {
		if extras[k] > p.constraintMax(name) {
			return false
		}
	}
	return true
}

// eic computes the constrained expected improvement of a candidate under the
// given state and model predictions (paper §3). The incumbent is the cheapest
// feasible entry of the (speculated) training set; when no entry is feasible
// the fallback rule "most expensive profiled cost plus three times the
// largest predictive standard deviation over untested configurations"
// applies.
func (p *planner) eic(state *specState, ms *modelSet, cand candidate, costPred numeric.Gaussian, extraPreds []numeric.Gaussian, extraNames []string) (float64, error) {
	incumbent, hasFeasible := state.train.bestFeasibleCost()
	if !hasFeasible {
		maxStd := 0.0
		for _, u := range state.untested {
			pred, _, err := ms.predict(u.features)
			if err != nil {
				return 0, err
			}
			if pred.StdDev > maxStd {
				maxStd = pred.StdDev
			}
		}
		incumbent = acquisition.IncumbentFallback(state.train.maxCost(), maxStd)
	}

	ei := acquisition.ExpectedImprovement(costPred, incumbent)
	probs := make([]float64, 0, 1+len(extraPreds))
	runtimeProb, err := acquisition.ConstraintProbability(costPred, p.opts.MaxRuntimeSeconds, cand.unitPriceHour/3600)
	if err != nil {
		return 0, err
	}
	probs = append(probs, runtimeProb)
	for k, pred := range extraPreds {
		probs = append(probs, clampProb(pred.ProbLE(p.constraintMax(extraNames[k]))))
	}
	return acquisition.Constrained(ei, probs...)
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// eligible returns the candidates whose predicted cost fits within the
// remaining budget with the configured confidence (Algorithm 1, line 23 and
// Algorithm 2, line 22).
func (p *planner) eligible(untested []candidate, ms *modelSet, budget float64) ([]candidate, []numeric.Gaussian, [][]numeric.Gaussian, error) {
	out := make([]candidate, 0, len(untested))
	costPreds := make([]numeric.Gaussian, 0, len(untested))
	extraPreds := make([][]numeric.Gaussian, 0, len(untested))
	for _, u := range untested {
		costPred, extras, err := ms.predict(u.features)
		if err != nil {
			return nil, nil, nil, err
		}
		if costPred.ProbLE(budget) >= p.params.EligibilityProb {
			out = append(out, u)
			costPreds = append(costPreds, costPred)
			extraPreds = append(extraPreds, extras)
		}
	}
	return out, costPreds, extraPreds, nil
}

// nextStep selects the configuration explored at depth ≥ 2 of a path: the
// eligible untested configuration with the highest EIc under the speculated
// state (Algorithm 2, NextStep).
func (p *planner) nextStep(state *specState, ms *modelSet, extraNames []string) (candidate, bool, error) {
	eligible, costPreds, extraPreds, err := p.eligible(state.untested, ms, state.budget)
	if err != nil {
		return candidate{}, false, err
	}
	if len(eligible) == 0 {
		return candidate{}, false, nil
	}
	best := candidate{}
	bestEIc := -1.0
	for i, cand := range eligible {
		score, err := p.eic(state, ms, cand, costPreds[i], extraPreds[i], extraNames)
		if err != nil {
			return candidate{}, false, err
		}
		if score > bestEIc || (score == bestEIc && cand.id < best.id) {
			best = cand
			bestEIc = score
		}
	}
	return best, true, nil
}

// explorePaths implements Algorithm 2: it returns the expected reward and
// expected cost of the exploration path that starts by profiling cand from
// the given state, speculating on the remaining lookahead steps.
//
// models must be trained on state.train; scratch is an independent model set
// that explorePaths may refit freely for deeper speculation levels (it is the
// per-candidate workspace that keeps path evaluations independent across
// goroutines).
func (p *planner) explorePaths(state *specState, models *modelSet, cand candidate, lookahead int, scratch *modelSet, extraNames []string) (reward, cost float64, err error) {
	costPred, extraPreds, err := models.predict(cand.features)
	if err != nil {
		return 0, 0, err
	}
	reward, err = p.eic(state, models, cand, costPred, extraPreds, extraNames)
	if err != nil {
		return 0, 0, err
	}
	cost = costPred.Mean + p.setupCost(state.deployedID, cand)

	if lookahead == 0 {
		return reward, cost, nil
	}

	// Discretize the speculated outcomes: the cost and every constraint
	// metric each contribute a Gauss-Hermite marginal; the joint outcomes are
	// their Cartesian product (paper §4.4 for the multi-constraint case).
	dims := make([][]numeric.WeightedValue, 0, 1+len(extraPreds))
	costOutcomes, err := numeric.DiscretizeGaussian(costPred, p.params.GHOrder)
	if err != nil {
		return 0, 0, err
	}
	dims = append(dims, costOutcomes)
	for _, pred := range extraPreds {
		outcomes, err := numeric.DiscretizeGaussian(pred, p.params.GHOrder)
		if err != nil {
			return 0, 0, err
		}
		dims = append(dims, outcomes)
	}
	combos, err := numeric.CartesianWeighted(dims)
	if err != nil {
		return 0, 0, err
	}

	for _, combo := range combos {
		specCost := combo.Values[0]
		specExtras := combo.Values[1:]
		feasible := p.feasibleSpeculation(cand, specCost, specExtras, extraNames)

		childState := &specState{
			train:      state.train.withEntry(cand.features, specCost, specExtras, feasible),
			untested:   without(state.untested, cand.id),
			budget:     state.budget - specCost - p.setupCost(state.deployedID, cand),
			deployedID: cand.id,
		}
		if len(childState.untested) == 0 {
			continue
		}
		if err := scratch.fit(childState.train); err != nil {
			return 0, 0, err
		}
		next, ok, err := p.nextStep(childState, scratch, extraNames)
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			// The speculated budget cannot accommodate any further step: the
			// path terminates here (Algorithm 2, lines 15-16).
			continue
		}
		subReward, subCost, err := p.explorePaths(childState, scratch, next, lookahead-1, scratch, extraNames)
		if err != nil {
			return 0, 0, err
		}
		cost += combo.Weight * subCost
		reward += p.params.Discount * combo.Weight * subReward
	}
	return reward, cost, nil
}

// nextConfig implements Algorithm 1's NextConfig: it scores the exploration
// paths rooted at every eligible untested configuration and returns the
// configuration starting the path with the best reward-to-cost ratio.
func (p *planner) nextConfig(h *optimizer.History, remainingBudget float64) (configspace.Config, bool, error) {
	extraNames := p.constraintNames()
	train := newTrainSetFromHistory(h, p.opts, extraNames)
	if len(train.costs) == 0 {
		return configspace.Config{}, false, fmt.Errorf("core: nextConfig called with an empty history")
	}

	untested := make([]candidate, 0, len(p.candidates))
	for _, cand := range p.candidates {
		if !h.Tested(cand.id) {
			untested = append(untested, cand)
		}
	}
	if len(untested) == 0 {
		return configspace.Config{}, false, nil
	}

	rootModels := p.newModelSet(int64(p.iteration) * 2_000_000_011)
	p.iteration++
	if err := rootModels.fit(train); err != nil {
		return configspace.Config{}, false, err
	}

	rootState := &specState{
		train:      train,
		untested:   untested,
		budget:     remainingBudget,
		deployedID: deployedID(h),
	}

	eligible, _, _, err := p.eligible(untested, rootModels, remainingBudget)
	if err != nil {
		return configspace.Config{}, false, err
	}
	if len(eligible) == 0 {
		return configspace.Config{}, false, nil
	}

	iteration := p.iteration
	scores, err := evaluateCandidatesParallel(p.params.Workers, len(eligible), func(i int) (pathScore, error) {
		cand := eligible[i]
		scratch := p.newModelSet(int64(iteration)*4_000_000_007 + int64(cand.id))
		reward, cost, err := p.explorePaths(rootState, rootModels, cand, p.params.Lookahead, scratch, extraNames)
		if err != nil {
			return pathScore{}, err
		}
		return pathScore{candidateID: cand.id, reward: reward, cost: cost}, nil
	})
	if err != nil {
		return configspace.Config{}, false, err
	}

	bestID, ok := selectBestRatio(scores)
	if !ok {
		return configspace.Config{}, false, nil
	}
	return p.configs[bestID].Clone(), true, nil
}

// deployedID returns the ID of the configuration currently deployed according
// to the history, or -1 when none is.
func deployedID(h *optimizer.History) int {
	cfg := h.Deployed()
	if cfg == nil {
		return -1
	}
	return cfg.ID
}
