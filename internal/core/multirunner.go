package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/optimizer"
)

// MultiRunner drives N campaigns concurrently over one ShareGroup: a bounded
// worker pool steps campaigns round-robin (one Step per turn, then back of
// the queue), so no campaign starves and replica campaigns stay roughly in
// lockstep — the regime where the group's single-flight decision cache turns
// N plans into one. Each campaign itself remains single-threaded (Campaigns
// are not safe for concurrent use; the runner never steps one from two
// goroutines), and each produces the bitwise-identical trial sequence it
// would produce run alone.
type MultiRunner struct {
	group       *ShareGroup
	concurrency int

	items   []*multiItem
	started atomic.Bool
}

type multiItem struct {
	name     string
	campaign *Campaign
	result   MultiResult
}

// MultiResult is the outcome of one campaign of a batch.
type MultiResult struct {
	// Name is the label the campaign was added under.
	Name string
	// Result is the campaign's recommendation; valid when Err is nil.
	Result optimizer.Result
	// Err is the campaign's terminal error, if any. One campaign failing
	// does not abort the batch.
	Err error
	// Steps counts the Step calls the runner made on this campaign
	// (trials run plus the final call that reports completion).
	Steps int
}

// CampaignFailure is the structured failure record of one campaign of a
// batch: which campaign failed, the errors.Is-matchable cause, and whether
// the failure is transient — worth re-running the campaign (typically by
// resuming its last snapshot) rather than writing it off.
type CampaignFailure struct {
	// Name is the label the campaign was added under.
	Name string
	// Index is the campaign's position in Add order (MultiSummary.Results
	// index), disambiguating duplicate names.
	Index int
	// Err is the campaign's terminal error with its full wrap chain intact:
	// errors.Is matches the campaign-control sentinels
	// (optimizer.ErrRunFailed, optimizer.ErrCampaignCancelled, ...) and
	// errors.As extracts the underlying *optimizer.RunError when the failure
	// came from a profiling run.
	Err error
	// Transient reports whether re-running the campaign can plausibly
	// succeed: cancellations and deadline aborts (the driver stopped the
	// campaign, not the campaign itself), trial timeouts, and profiling
	// failures the environment marked retryable are transient; fatal
	// environment errors and permanent run failures are not.
	Transient bool
}

// classifyFailure builds the structured record of one failed campaign.
func classifyFailure(name string, index int, err error) CampaignFailure {
	f := CampaignFailure{Name: name, Index: index, Err: err}
	switch {
	case errors.Is(err, optimizer.ErrCampaignCancelled):
		f.Transient = true
	case errors.Is(err, optimizer.ErrEnvironmentFatal):
		f.Transient = false
	case errors.Is(err, optimizer.ErrTrialTimeout):
		f.Transient = true
	default:
		var runErr *optimizer.RunError
		if errors.As(err, &runErr) {
			f.Transient = runErr.Transient
		}
	}
	return f
}

// MultiSummary is the outcome of a whole batch.
type MultiSummary struct {
	// Results holds one entry per added campaign, in Add order.
	Results []MultiResult
	// Failures holds one structured record per campaign whose Err is
	// non-nil, in Add order — the machine-readable view a driving service
	// reports and acts on (retry transient failures, quarantine the rest).
	// Empty when every campaign finished.
	Failures []CampaignFailure
	// Elapsed is the wall-clock time of the Run call.
	Elapsed time.Duration
	// CampaignsPerSec is len(Results) divided by Elapsed — the batch
	// throughput number the benchmark gates on.
	CampaignsPerSec float64
}

// NewMultiRunner creates a runner stepping at most concurrency campaigns at
// once (0 defaults to GOMAXPROCS) over the given share group (nil creates a
// fresh group).
func NewMultiRunner(concurrency int, g *ShareGroup) *MultiRunner {
	if g == nil {
		g = NewShareGroup()
	}
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	return &MultiRunner{group: g, concurrency: concurrency}
}

// Group returns the runner's share group, for attaching externally created
// campaigns (NewCampaignShared / ResumeCampaignShared) before Attach.
func (r *MultiRunner) Group() *ShareGroup { return r.group }

// Add creates a campaign into the runner's share group and queues it.
func (r *MultiRunner) Add(name string, l *Lynceus, env optimizer.Environment, opts optimizer.Options) error {
	if l == nil {
		return errors.New("core: nil optimizer")
	}
	c, err := l.NewCampaignShared(env, opts, r.group)
	if err != nil {
		return fmt.Errorf("core: campaign %q: %w", name, err)
	}
	r.Attach(name, c)
	return nil
}

// Attach queues an existing campaign — typically one resumed into the
// runner's group via ResumeCampaignShared. The campaign must not be stepped
// by anyone else while the runner runs.
func (r *MultiRunner) Attach(name string, c *Campaign) {
	r.items = append(r.items, &multiItem{name: name, campaign: c, result: MultiResult{Name: name}})
}

// Run steps every queued campaign to completion and returns the batch
// summary. Fair scheduling: the queue hands each worker one campaign for one
// Step; unfinished campaigns re-enter the queue behind the others. A Run can
// only happen once per runner.
func (r *MultiRunner) Run() (MultiSummary, error) {
	return r.RunContext(context.Background())
}

// RunContext is Run under a context: cancelling it stops every campaign at
// its next step (between trials or between planner phases) and records the
// cancellation as that campaign's failure — transient, since resuming the
// campaigns' snapshots continues them. The summary is returned, not
// discarded, so a cancelled batch still reports how far each campaign got.
func (r *MultiRunner) RunContext(ctx context.Context) (MultiSummary, error) {
	if r.started.Swap(true) {
		return MultiSummary{}, errors.New("core: MultiRunner.Run called twice")
	}
	start := time.Now()
	n := len(r.items)
	if n > 0 {
		// Every live campaign occupies at most one queue slot (a worker holds
		// it while stepping, re-enqueues or drops it after), so the buffer
		// never blocks a send and the last finisher can close the queue.
		queue := make(chan *multiItem, n)
		var remaining atomic.Int64
		remaining.Store(int64(n))
		for _, it := range r.items {
			queue <- it
		}
		workers := r.concurrency
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := range queue {
					done, err := it.campaign.StepContext(ctx)
					it.result.Steps++
					if err != nil {
						it.result.Err = err
						done = true
					}
					if !done {
						queue <- it
						continue
					}
					if it.result.Err == nil {
						it.result.Result, it.result.Err = it.campaign.Result()
					}
					if remaining.Add(-1) == 0 {
						close(queue)
					}
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start)
	summary := MultiSummary{Elapsed: elapsed}
	for i, it := range r.items {
		summary.Results = append(summary.Results, it.result)
		if it.result.Err != nil {
			summary.Failures = append(summary.Failures, classifyFailure(it.name, i, it.result.Err))
		}
	}
	if s := elapsed.Seconds(); s > 0 {
		summary.CampaignsPerSec = float64(n) / s
	}
	return summary, nil
}
