package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bagging"
	"repro/internal/optimizer"
	"repro/internal/synth"
)

// Per-decision planner benchmarks on the 384-point Tensorflow space.
//
// The previous planner benchmarks (in the repository root) timed whole
// optimization campaigns, so at default benchtime each received b.N = 1 —
// a single noisy sample that made the CI bench-regression gate flaky. Here
// one benchmark op is exactly one planning decision (one nextConfig call)
// from a fixed bootstrap history, which yields b.N >= 3 at the default 1s
// benchtime for every variant and keeps per-op work constant: the history
// never grows, only the planner's iteration counter advances (as it would
// across decisions of a real campaign).
//
// ns/decision therefore equals ns/op; it is still reported explicitly
// because the benchjson regression gate tracks that metric name across every
// planner benchmark, wherever it lives. ReportAllocs feeds the allocation
// gate (B/op, allocs/op) introduced alongside the parallel speculation
// scheduler.

// plannerBenchFixture is the shared per-decision benchmark state: a planner
// over the Tensorflow-384 space plus the bootstrap history and remaining
// budget of a paper-scale campaign.
type plannerBenchFixture struct {
	planner   *planner
	history   *optimizer.History
	remaining float64
}

func newPlannerBenchFixture(tb testing.TB, lookahead int, refit SpeculativeRefit, workers int) *plannerBenchFixture {
	tb.Helper()
	job, err := synth.TensorflowJob(synth.CNN, 42)
	if err != nil {
		tb.Fatalf("TensorflowJob: %v", err)
	}
	env, err := optimizer.NewJobEnvironment(job)
	if err != nil {
		tb.Fatalf("NewJobEnvironment: %v", err)
	}
	tmax, err := job.RuntimeForFeasibleFraction(0.5)
	if err != nil {
		tb.Fatalf("RuntimeForFeasibleFraction: %v", err)
	}
	opts := optimizer.Options{
		Budget:            1, // unused: the benchmark drives nextConfig directly
		MaxRuntimeSeconds: tmax,
		Seed:              1,
	}
	bootstrap, err := optimizer.ResolveBootstrapSize(job.Space(), optimizer.Options{Budget: 1, MaxRuntimeSeconds: 1})
	if err != nil {
		tb.Fatalf("ResolveBootstrapSize: %v", err)
	}
	// A third of a bootstrap's worth of remaining budget: a mid-campaign
	// decision of a 1.5x campaign. The budget-eligibility filter keeps the
	// candidate set large enough to be representative while holding one
	// decision under ~1/3 s for every variant, so b.N >= 3 at the default
	// 1 s benchtime — a single-iteration planner benchmark is too noisy for
	// the regression gate.
	total := float64(bootstrap) * job.MeanCost() * 1.35
	budget, err := optimizer.NewBudget(total)
	if err != nil {
		tb.Fatalf("NewBudget: %v", err)
	}
	history := optimizer.NewHistory()
	rng := rand.New(rand.NewSource(opts.Seed))
	if err := optimizer.Bootstrap(env, bootstrap, rng, history, budget, opts); err != nil {
		tb.Fatalf("Bootstrap: %v", err)
	}
	params, err := Params{
		Lookahead:        lookahead,
		Model:            bagging.Params{NumTrees: 10},
		Workers:          workers,
		SpeculativeRefit: refit,
	}.withDefaults()
	if err != nil {
		tb.Fatalf("withDefaults: %v", err)
	}
	p, err := newPlanner(params, env, opts)
	if err != nil {
		tb.Fatalf("newPlanner: %v", err)
	}
	return &plannerBenchFixture{planner: p, history: history, remaining: budget.Remaining()}
}

// decide runs one planning decision and fails the benchmark if the planner
// declines to recommend (which would mean the op did no work).
func (f *plannerBenchFixture) decide(tb testing.TB) {
	next, ok, err := f.planner.nextConfig(nil, f.history, f.remaining)
	if err != nil {
		tb.Fatalf("nextConfig: %v", err)
	}
	if !ok {
		tb.Fatal("nextConfig declined to recommend")
	}
	_ = next
}

func benchmarkPlannerDecision(b *testing.B, lookahead int, refit SpeculativeRefit, workers int) {
	b.Helper()
	fixture := newPlannerBenchFixture(b, lookahead, refit, workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fixture.decide(b)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/decision")
}

// BenchmarkPlannerLA2Tensorflow measures one long-sighted (LA=2) planning
// decision per op, per speculative-refit mode and worker count. The worker
// sweep (1, 2, 4, 8) tracks the scaling of the parallel speculation
// scheduler; the acceptance bars live in the scaling sanity test and the CI
// bench-regression gate (see README "Performance").
func BenchmarkPlannerLA2Tensorflow(b *testing.B) {
	for _, refit := range []SpeculativeRefit{SpecRefitFull, SpecRefitIncremental} {
		name := "full"
		if refit == SpecRefitIncremental {
			name = "incremental"
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("refit=%s/workers=%d", name, workers), func(b *testing.B) {
				benchmarkPlannerDecision(b, 2, refit, workers)
			})
		}
	}
}

// BenchmarkPlannerLA3Tensorflow measures one lookahead-3 decision per op.
// LA=3 multiplies the speculation tree by another candidates × quadrature
// factor; SpecRefitAuto resolves it to the incremental path, and the
// scheduler forks the first two speculation layers so a few expensive
// candidates can occupy the whole worker pool.
func BenchmarkPlannerLA3Tensorflow(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkPlannerDecision(b, 3, SpecRefitAuto, workers)
		})
	}
}
