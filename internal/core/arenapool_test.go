package core

import (
	"sync/atomic"
	"testing"
)

func TestArenaPoolCheckoutReleaseRecycles(t *testing.T) {
	p := newArenaPool(2)
	s := newSpecScheduler(2)
	w0, w1 := s.workers[0], s.workers[1]

	a := p.checkout("shape-a", w0)
	ws := a.acquire(w0)
	a.release(w0, ws)
	p.release(a, w0)
	if got := p.retained(); got != 1 {
		t.Fatalf("retained = %d, want 1", got)
	}

	// The recycled arena comes back (warm freelist) — to any worker.
	b := p.checkout("shape-a", w1)
	if b != a {
		t.Fatal("shelved arena was not recycled")
	}
	ws2 := b.acquire(w1)
	if ws2 != ws {
		t.Fatal("recycled arena lost its warm workspace")
	}
	b.release(w1, ws2)
	p.release(b, w1)

	// A different shape never shares a shelf.
	c := p.checkout("shape-b", w0)
	if c == a {
		t.Fatal("arena crossed shapes")
	}
	p.release(c, w0)
}

func TestArenaPoolRetentionBound(t *testing.T) {
	p := newArenaPool(2)
	s := newSpecScheduler(4)
	arenas := make([]*wsArena, 4)
	for i := range arenas {
		arenas[i] = p.checkout("s", s.workers[i])
	}
	for i := range arenas {
		p.release(arenas[i], s.workers[i])
	}
	if got := p.retained(); got != 2 {
		t.Fatalf("retained = %d, want the limit 2", got)
	}
}

func TestArenaOwnershipEnforced(t *testing.T) {
	p := newArenaPool(1)
	s := newSpecScheduler(2)
	w0, w1 := s.workers[0], s.workers[1]
	a := p.checkout("s", w0)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("foreign acquire", func() { a.acquire(w1) })
	mustPanic("foreign pool release", func() { p.release(a, w1) })
	p.release(a, w0)
	mustPanic("released-arena acquire", func() { a.acquire(w0) })
}

// TestSharedSchedulerSwapsArenasPerRun checks that a pool-wired scheduler
// draws pooled arenas during run and restores the private ones after.
func TestSharedSchedulerSwapsArenasPerRun(t *testing.T) {
	s := newSpecScheduler(2)
	s.pool = newArenaPool(8)
	s.shape = "s"
	var ran atomic.Int64
	s.run(2, func(w *specWorker, i int) {
		if w.arena == w.private {
			t.Error("run with a pool still used the private arena")
		}
		ws := w.acquireWorkspace()
		w.releaseWorkspace(ws)
		ran.Add(1)
	})
	for _, w := range s.workers {
		if w.arena != w.private {
			t.Fatal("private arena not restored after run")
		}
	}
	if s.pool.retained() == 0 {
		t.Fatal("no arena returned to the pool after run")
	}
	if ran.Load() != 2 {
		t.Fatalf("ran %d root bodies, want 2", ran.Load())
	}
}
