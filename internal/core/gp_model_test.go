package core

import (
	"testing"

	"repro/internal/gp"
	"repro/internal/model"
)

// TestOptimizeWithGaussianProcessModel exercises the footnote-1 variant of
// the paper: Lynceus planning on a Gaussian-Process cost model instead of the
// bagging ensemble.
func TestOptimizeWithGaussianProcessModel(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 19)
	optimum, err := env.Job().Optimum(opts.MaxRuntimeSeconds)
	if err != nil {
		t.Fatalf("Optimum error: %v", err)
	}

	l, err := New(Params{
		Lookahead:    1,
		GHOrder:      3,
		ModelFactory: model.NewGPFactory(gp.Params{}),
		Workers:      2,
	})
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	res, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if !res.RecommendedFeasible {
		t.Error("recommendation not feasible")
	}
	if cno := res.Recommended.Cost / optimum.Cost; cno > 2.5 {
		t.Errorf("CNO with GP model = %v, want <= 2.5 on this easy fixture", cno)
	}
	if res.Explorations < 2 {
		t.Errorf("explorations = %d", res.Explorations)
	}
}

// TestGPModelIsDeterministic verifies that runs with the GP model are
// reproducible: the GP itself is deterministic given the data, and the rest
// of the loop is seeded.
func TestGPModelIsDeterministic(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 23)
	l, err := New(Params{Lookahead: 1, ModelFactory: model.NewGPFactory(gp.Params{}), Workers: 2})
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	a, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	b, err := l.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs", i)
		}
	}
}
