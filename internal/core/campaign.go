package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/optimizer"
)

// Campaign is one Lynceus optimization run, driven one trial at a time.
// Optimize is a Step loop over a Campaign; stepping it explicitly is what
// enables checkpointing — Snapshot between any two steps captures the full
// campaign state, and ResumeCampaign continues the bitwise-identical trial
// sequence in a fresh process.
//
// A Campaign is not safe for concurrent use. A Step that returns an error
// leaves the in-memory campaign in an undefined intermediate state (the probe
// cursor may have advanced past the failed trial); recover by resuming from
// the last snapshot, not by stepping again.
type Campaign struct {
	l       *Lynceus
	env     optimizer.Environment
	opts    optimizer.Options
	budget  *optimizer.Budget
	history *optimizer.History
	boot    *optimizer.Bootstrapper
	planner *planner
	done    bool
	finish  error
}

// NewCampaign validates the options and prepares a campaign: budget and
// history trackers, the LHS bootstrap plan, and the planner. No trial runs
// until the first Step.
func (l *Lynceus) NewCampaign(env optimizer.Environment, opts optimizer.Options) (*Campaign, error) {
	return l.newCampaign(env, opts, nil)
}

// newCampaign is the shared construction path of NewCampaign and
// NewCampaignShared; sh carries the campaign's share-group binding (nil
// outside a group).
func (l *Lynceus) newCampaign(env optimizer.Environment, opts optimizer.Options, sh *sharedCtx) (*Campaign, error) {
	if env == nil {
		return nil, errors.New("core: nil environment")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	budget, err := optimizer.NewBudget(opts.Budget)
	if err != nil {
		return nil, err
	}
	bootstrapSize, err := optimizer.ResolveBootstrapSize(env.Space(), opts)
	if err != nil {
		return nil, err
	}
	// The run rng is consumed exclusively by the LHS bootstrap plan, exactly
	// as in the historical Optimize; every later stream derives from
	// (seed, iteration, candidate) hashes.
	rng := rand.New(rand.NewSource(opts.Seed))
	boot, err := optimizer.NewBootstrapper(env, bootstrapSize, rng, opts)
	if err != nil {
		return nil, err
	}
	planner, err := newPlannerShared(l.params, env, opts, sh)
	if err != nil {
		return nil, err
	}
	return &Campaign{
		l:       l,
		env:     env,
		opts:    opts,
		budget:  budget,
		history: optimizer.NewHistory(),
		boot:    boot,
		planner: planner,
	}, nil
}

// Step advances the campaign by one trial: a bootstrap probe while the LHS
// phase is incomplete, then one planning decision plus its profiling run. A
// step that quarantines a failing configuration (opts.Retry.Quarantine)
// counts as progress and returns done=false with no error. Step returns
// done=true once no further trial can run; FinishReason then tells why.
func (c *Campaign) Step() (done bool, err error) {
	return c.StepContext(context.Background())
}

// cancelErr converts a cancelled context into the campaign error family:
// the returned error wraps both optimizer.ErrCampaignCancelled and the
// context's own error (context.Canceled / context.DeadlineExceeded), and is
// nil while the context is live.
func cancelErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", optimizer.ErrCampaignCancelled, err)
	}
	return nil
}

// StepContext is Step under a context: a cancelled or deadline-exceeded
// context stops the step between trials and between planner phases (strategy
// selection, model fit, eligibility, path scoring) with an error wrapping
// optimizer.ErrCampaignCancelled. Cancellation never records a partial
// trial, but — like any other Step error — it can leave the in-memory
// planner state mid-decision; recover by resuming from the last snapshot.
// The context does not interrupt a blocking Environment.Run (use
// RetryPolicy.Timeout for that); it is checked again when the run returns.
func (c *Campaign) StepContext(ctx context.Context) (done bool, err error) {
	if c.done {
		return true, nil
	}
	if err := cancelErr(ctx); err != nil {
		return false, err
	}
	if !c.boot.Done() {
		bootDone, err := c.boot.Step(c.history, c.budget, c.opts)
		if err != nil {
			return false, err
		}
		if bootDone && c.history.Len() == 0 {
			// Unreachable in practice (Step errors first), kept as a guard.
			c.finishWith(optimizer.ErrSpaceExhausted)
			return true, nil
		}
		return false, nil
	}
	if c.env.Space().Size()-c.history.ExcludedCount() <= 0 {
		c.finishWith(optimizer.ErrSpaceExhausted)
		return true, nil
	}
	next, ok, err := c.planner.nextConfig(ctx, c.history, c.budget.Remaining())
	if err != nil {
		return false, err
	}
	if !ok {
		// No candidate's predicted cost fits the remaining budget with the
		// required confidence: the campaign ends having spent its budget.
		c.finishWith(optimizer.ErrBudgetExhausted)
		return true, nil
	}
	if err := cancelErr(ctx); err != nil {
		return false, err
	}
	if _, _, err := optimizer.RunTrialWithRetry(c.env, next, c.history, c.budget, c.opts); err != nil {
		return false, err
	}
	return false, nil
}

func (c *Campaign) finishWith(reason error) {
	c.done = true
	c.finish = reason
}

// Done reports whether the campaign has finished.
func (c *Campaign) Done() bool { return c.done }

// FinishReason returns why the campaign finished — a sentinel matching
// errors.Is(reason, optimizer.ErrBudgetExhausted) or
// optimizer.ErrSpaceExhausted — and nil while it is still running. A finished
// campaign is a normal outcome: the reason is reporting, not a failure.
func (c *Campaign) FinishReason() error { return c.finish }

// Trials returns the profiling runs recorded so far, in execution order.
func (c *Campaign) Trials() []optimizer.TrialResult { return c.history.Trials() }

// QuarantinedIDs returns the configurations excluded after exhausting their
// retry attempts, in increasing ID order.
func (c *Campaign) QuarantinedIDs() []int { return c.history.QuarantinedIDs() }

// RemainingBudget returns the remaining profiling budget in USD (negative
// when the last run overshot).
func (c *Campaign) RemainingBudget() float64 { return c.budget.Remaining() }

// Result assembles the recommendation from the trials recorded so far. It
// works on running campaigns too (the recommendation simply reflects the
// partial history); it errors only when no trial has completed yet.
func (c *Campaign) Result() (optimizer.Result, error) {
	return optimizer.BuildResult(c.l.Name(), c.history, c.budget, c.opts)
}

// Run steps the campaign to completion and returns the recommendation.
func (c *Campaign) Run() (optimizer.Result, error) {
	for {
		done, err := c.Step()
		if err != nil {
			return optimizer.Result{}, err
		}
		if done {
			return c.Result()
		}
	}
}
