// Package numeric provides the numerical building blocks used by the Lynceus
// optimizer: the standard normal distribution, Gauss-Hermite quadrature, and
// the discretization of Gaussian predictive distributions into
// (value, weight) pairs (paper §4.2, approximation 3).
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidStdDev is returned when a Gaussian is constructed with a negative
// standard deviation.
var ErrInvalidStdDev = errors.New("numeric: standard deviation must be non-negative")

// invSqrt2Pi is 1/sqrt(2*pi), the normalization constant of the standard
// normal density.
const invSqrt2Pi = 0.3989422804014327

// NormalPDF returns the density of the standard normal distribution at z.
func NormalPDF(z float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*z*z)
}

// NormalCDF returns the cumulative distribution function of the standard
// normal distribution at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z value such that NormalCDF(z) == p. It accepts
// p in the open interval (0, 1) and returns an error otherwise.
//
// The implementation uses the Acklam rational approximation refined by a
// single Halley step, which yields close to machine precision over the whole
// domain.
func NormalQuantile(p float64) (float64, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return 0, fmt.Errorf("numeric: quantile probability %v outside (0,1)", p)
	}

	// Coefficients of the Acklam approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x, nil
}

// Gaussian is a univariate normal distribution N(Mean, StdDev^2). The zero
// value is the degenerate distribution concentrated at 0.
type Gaussian struct {
	Mean   float64
	StdDev float64
}

// NewGaussian constructs a Gaussian and validates the standard deviation.
func NewGaussian(mean, stdDev float64) (Gaussian, error) {
	if math.IsNaN(mean) || math.IsNaN(stdDev) {
		return Gaussian{}, fmt.Errorf("numeric: NaN gaussian parameter (mean=%v, std=%v)", mean, stdDev)
	}
	if stdDev < 0 {
		return Gaussian{}, fmt.Errorf("%w: %v", ErrInvalidStdDev, stdDev)
	}
	return Gaussian{Mean: mean, StdDev: stdDev}, nil
}

// PDF returns the density of the distribution at x. For a degenerate
// distribution (StdDev == 0) it returns +Inf at the mean and 0 elsewhere.
func (g Gaussian) PDF(x float64) float64 {
	if g.StdDev == 0 {
		if x == g.Mean {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - g.Mean) / g.StdDev
	return NormalPDF(z) / g.StdDev
}

// CDF returns P(X <= x) for X distributed as g. A degenerate distribution is
// handled as a step function at the mean.
func (g Gaussian) CDF(x float64) float64 {
	if g.StdDev == 0 {
		if x >= g.Mean {
			return 1
		}
		return 0
	}
	return NormalCDF((x - g.Mean) / g.StdDev)
}

// ProbLE is an alias for CDF that reads naturally at call sites of the form
// "probability that the cost is below the threshold".
func (g Gaussian) ProbLE(threshold float64) float64 {
	return g.CDF(threshold)
}

// Quantile returns the value x such that CDF(x) == p.
func (g Gaussian) Quantile(p float64) (float64, error) {
	if g.StdDev == 0 {
		if p <= 0 || p >= 1 {
			return 0, fmt.Errorf("numeric: quantile probability %v outside (0,1)", p)
		}
		return g.Mean, nil
	}
	z, err := NormalQuantile(p)
	if err != nil {
		return 0, err
	}
	return g.Mean + z*g.StdDev, nil
}
