package numeric

import (
	"fmt"
	"math"
	"sync"
)

// maxGHOrder bounds the quadrature order accepted by GaussHermite. Orders
// beyond this are numerically pointless for Lynceus (the paper uses a handful
// of nodes) and would slow down the Newton iteration for no benefit.
const maxGHOrder = 64

// GHNode is a single Gauss-Hermite quadrature node: the abscissa X and its
// weight W for integrands of the form f(x)·exp(-x²).
type GHNode struct {
	X float64
	W float64
}

// WeightedValue is a speculated outcome produced by discretizing a predictive
// distribution: a concrete Value (e.g. a cost) and the Weight that captures
// its likelihood. Weights of a discretization sum to 1.
type WeightedValue struct {
	Value  float64
	Weight float64
}

// ghCache memoizes node computations per order; quadrature nodes are
// requested once per optimizer step, always with the same small orders.
var ghCache sync.Map // map[int][]GHNode

// GaussHermite returns the n nodes and weights of the Gauss-Hermite
// quadrature rule, i.e. the rule that approximates
//
//	∫ f(x)·exp(-x²) dx  ≈  Σ w_i · f(x_i).
//
// Nodes are returned in increasing abscissa order. The computation uses the
// standard Newton iteration on the physicists' Hermite polynomials
// (Numerical Recipes' gauher) and is exact for polynomials up to degree 2n-1.
func GaussHermite(n int) ([]GHNode, error) {
	if n <= 0 {
		return nil, fmt.Errorf("numeric: gauss-hermite order must be positive, got %d", n)
	}
	if n > maxGHOrder {
		return nil, fmt.Errorf("numeric: gauss-hermite order %d exceeds maximum %d", n, maxGHOrder)
	}
	if cached, ok := ghCache.Load(n); ok {
		nodes, _ := cached.([]GHNode)
		return cloneNodes(nodes), nil
	}

	nodes, err := computeGaussHermite(n)
	if err != nil {
		return nil, err
	}
	ghCache.Store(n, nodes)
	return cloneNodes(nodes), nil
}

func cloneNodes(nodes []GHNode) []GHNode {
	out := make([]GHNode, len(nodes))
	copy(out, nodes)
	return out
}

// computeGaussHermite performs the actual node/weight computation.
func computeGaussHermite(n int) ([]GHNode, error) {
	const (
		eps     = 3.0e-14
		maxIter = 64
	)
	piQuarter := math.Pow(math.Pi, -0.25)

	x := make([]float64, n)
	w := make([]float64, n)
	m := (n + 1) / 2

	var z float64
	for i := 0; i < m; i++ {
		// Initial guesses for the roots, from largest to smallest.
		switch i {
		case 0:
			z = math.Sqrt(float64(2*n+1)) - 1.85575*math.Pow(float64(2*n+1), -1.0/6.0)
		case 1:
			z -= 1.14 * math.Pow(float64(n), 0.426) / z
		case 2:
			z = 1.86*z - 0.86*x[0]
		case 3:
			z = 1.91*z - 0.91*x[1]
		default:
			z = 2*z - x[i-2]
		}

		var pp float64
		converged := false
		for iter := 0; iter < maxIter; iter++ {
			p1 := piQuarter
			p2 := 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				fj := float64(j)
				p1 = z*math.Sqrt(2/(fj+1))*p2 - math.Sqrt(fj/(fj+1))*p3
			}
			pp = math.Sqrt(2*float64(n)) * p2
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) <= eps {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("numeric: gauss-hermite Newton iteration did not converge for order %d", n)
		}

		x[i] = z
		x[n-1-i] = -z
		w[i] = 2 / (pp * pp)
		w[n-1-i] = w[i]
	}

	nodes := make([]GHNode, n)
	for i := 0; i < n; i++ {
		// gauher produces roots in decreasing order in the first half;
		// emit them sorted in increasing abscissa order.
		nodes[i] = GHNode{X: x[n-1-i], W: w[n-1-i]}
	}
	return nodes, nil
}

// DiscretizeGaussian approximates the Gaussian distribution g by n weighted
// values using Gauss-Hermite quadrature:
//
//	value_i  = mean + sqrt(2)·std·x_i
//	weight_i = w_i / sqrt(pi)
//
// The weights sum to 1 (up to floating point error). This is the
// discretization Lynceus applies to the cost distribution predicted by its
// black-box model when it speculates about exploration-path outcomes
// (paper §4.2, approximation 3). A degenerate Gaussian (StdDev == 0) yields a
// single value with weight 1.
func DiscretizeGaussian(g Gaussian, n int) ([]WeightedValue, error) {
	if g.StdDev < 0 {
		return nil, fmt.Errorf("%w: %v", ErrInvalidStdDev, g.StdDev)
	}
	if g.StdDev == 0 {
		return []WeightedValue{{Value: g.Mean, Weight: 1}}, nil
	}
	nodes, err := GaussHermite(n)
	if err != nil {
		return nil, err
	}
	invSqrtPi := 1 / math.Sqrt(math.Pi)
	out := make([]WeightedValue, len(nodes))
	for i, node := range nodes {
		out[i] = WeightedValue{
			Value:  g.Mean + math.Sqrt2*g.StdDev*node.X,
			Weight: node.W * invSqrtPi,
		}
	}
	return out, nil
}

// AppendDiscretizedGaussian appends the DiscretizeGaussian outcomes of g to
// dst and returns the extended slice, computing identical values through the
// same cached quadrature nodes without allocating per call. The planner's
// speculation loop discretizes one predicted Gaussian per speculated step, so
// the allocation-free form sits directly on its hot path.
func AppendDiscretizedGaussian(dst []WeightedValue, g Gaussian, n int) ([]WeightedValue, error) {
	if g.StdDev < 0 {
		return dst, fmt.Errorf("%w: %v", ErrInvalidStdDev, g.StdDev)
	}
	if g.StdDev == 0 {
		return append(dst, WeightedValue{Value: g.Mean, Weight: 1}), nil
	}
	nodes, err := gaussHermiteCached(n)
	if err != nil {
		return dst, err
	}
	invSqrtPi := 1 / math.Sqrt(math.Pi)
	for _, node := range nodes {
		dst = append(dst, WeightedValue{
			Value:  g.Mean + math.Sqrt2*g.StdDev*node.X,
			Weight: node.W * invSqrtPi,
		})
	}
	return dst, nil
}

// gaussHermiteCached returns the cached node slice for order n without
// cloning. Callers must treat the result as read-only.
func gaussHermiteCached(n int) ([]GHNode, error) {
	if cached, ok := ghCache.Load(n); ok {
		nodes, _ := cached.([]GHNode)
		return nodes, nil
	}
	if _, err := GaussHermite(n); err != nil {
		return nil, err
	}
	cached, _ := ghCache.Load(n)
	nodes, _ := cached.([]GHNode)
	return nodes, nil
}

// CartesianWeighted combines independent per-dimension discretizations into
// their Cartesian product: each combination carries one value per dimension
// and a weight equal to the product of the component weights. It supports the
// multi-constraint extension of Lynceus (paper §4.4), where the speculation
// branches on the joint outcome of the cost and of every constraint metric.
func CartesianWeighted(dims [][]WeightedValue) ([]WeightedVector, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("numeric: cartesian product requires at least one dimension")
	}
	total := 1
	for i, d := range dims {
		if len(d) == 0 {
			return nil, fmt.Errorf("numeric: cartesian dimension %d is empty", i)
		}
		total *= len(d)
	}

	out := make([]WeightedVector, 0, total)
	indices := make([]int, len(dims))
	for {
		values := make([]float64, len(dims))
		weight := 1.0
		for d, idx := range indices {
			values[d] = dims[d][idx].Value
			weight *= dims[d][idx].Weight
		}
		out = append(out, WeightedVector{Values: values, Weight: weight})

		// Advance the mixed-radix counter.
		d := len(dims) - 1
		for d >= 0 {
			indices[d]++
			if indices[d] < len(dims[d]) {
				break
			}
			indices[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return out, nil
}

// WeightedVector is a joint speculated outcome over several metrics, used by
// the multi-constraint extension: Values[i] is the speculated value of the
// i-th metric, and Weight is the joint likelihood of the combination.
type WeightedVector struct {
	Values []float64
	Weight float64
}
