package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalPDFKnownValues(t *testing.T) {
	tests := []struct {
		name string
		z    float64
		want float64
	}{
		{name: "at zero", z: 0, want: 0.3989422804014327},
		{name: "at one", z: 1, want: 0.24197072451914337},
		{name: "at minus one", z: -1, want: 0.24197072451914337},
		{name: "at two", z: 2, want: 0.05399096651318806},
		{name: "far tail", z: 10, want: 7.69459862670642e-23},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NormalPDF(tt.z)
			if !closeTo(got, tt.want, 1e-12) {
				t.Errorf("NormalPDF(%v) = %v, want %v", tt.z, got, tt.want)
			}
		})
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		name string
		z    float64
		want float64
	}{
		{name: "at zero", z: 0, want: 0.5},
		{name: "at one", z: 1, want: 0.8413447460685429},
		{name: "at minus one", z: -1, want: 0.15865525393145707},
		{name: "at 1.96", z: 1.959963984540054, want: 0.975},
		{name: "deep left tail", z: -8, want: 6.22096057427178e-16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NormalCDF(tt.z)
			if !closeTo(got, tt.want, 1e-10) {
				t.Errorf("NormalCDF(%v) = %v, want %v", tt.z, got, tt.want)
			}
		})
	}
}

func TestNormalCDFIsMonotonic(t *testing.T) {
	prev := -1.0
	for z := -6.0; z <= 6.0; z += 0.01 {
		cur := NormalCDF(z)
		if cur < prev {
			t.Fatalf("NormalCDF not monotonic at z=%v: %v < %v", z, cur, prev)
		}
		prev = cur
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for p := 0.001; p < 1; p += 0.001 {
		z, err := NormalQuantile(p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v) returned error: %v", p, err)
		}
		back := NormalCDF(z)
		if !closeTo(back, p, 1e-9) {
			t.Fatalf("NormalCDF(NormalQuantile(%v)) = %v, want %v", p, back, p)
		}
	}
}

func TestNormalQuantileRejectsInvalidInput(t *testing.T) {
	for _, p := range []float64{-0.1, 0, 1, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%v) expected error, got nil", p)
		}
	}
}

func TestNewGaussianValidation(t *testing.T) {
	if _, err := NewGaussian(1, -0.5); err == nil {
		t.Error("NewGaussian with negative std expected error, got nil")
	}
	if _, err := NewGaussian(math.NaN(), 1); err == nil {
		t.Error("NewGaussian with NaN mean expected error, got nil")
	}
	g, err := NewGaussian(3, 2)
	if err != nil {
		t.Fatalf("NewGaussian(3,2) unexpected error: %v", err)
	}
	if g.Mean != 3 || g.StdDev != 2 {
		t.Errorf("NewGaussian(3,2) = %+v", g)
	}
}

func TestGaussianCDFAndPDF(t *testing.T) {
	g := Gaussian{Mean: 10, StdDev: 2}
	if got := g.CDF(10); !closeTo(got, 0.5, 1e-12) {
		t.Errorf("CDF at mean = %v, want 0.5", got)
	}
	if got := g.CDF(12); !closeTo(got, NormalCDF(1), 1e-12) {
		t.Errorf("CDF one std above mean = %v, want %v", got, NormalCDF(1))
	}
	if got := g.PDF(10); !closeTo(got, NormalPDF(0)/2, 1e-12) {
		t.Errorf("PDF at mean = %v, want %v", got, NormalPDF(0)/2)
	}
	if got := g.ProbLE(12); got != g.CDF(12) {
		t.Errorf("ProbLE(12)=%v differs from CDF(12)=%v", got, g.CDF(12))
	}
}

func TestDegenerateGaussian(t *testing.T) {
	g := Gaussian{Mean: 5, StdDev: 0}
	if got := g.CDF(4.999); got != 0 {
		t.Errorf("degenerate CDF below mean = %v, want 0", got)
	}
	if got := g.CDF(5); got != 1 {
		t.Errorf("degenerate CDF at mean = %v, want 1", got)
	}
	if got := g.PDF(6); got != 0 {
		t.Errorf("degenerate PDF away from mean = %v, want 0", got)
	}
	if !math.IsInf(g.PDF(5), 1) {
		t.Errorf("degenerate PDF at mean = %v, want +Inf", g.PDF(5))
	}
	q, err := g.Quantile(0.3)
	if err != nil || q != 5 {
		t.Errorf("degenerate Quantile(0.3) = %v, %v, want 5, nil", q, err)
	}
}

func TestGaussianQuantileRoundTrip(t *testing.T) {
	g := Gaussian{Mean: -4, StdDev: 7}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x, err := g.Quantile(p)
		if err != nil {
			t.Fatalf("Quantile(%v) error: %v", p, err)
		}
		if back := g.CDF(x); !closeTo(back, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestQuickNormalCDFBounds(t *testing.T) {
	property := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		c := NormalCDF(z)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(property, nil); err != nil {
		t.Errorf("NormalCDF out of [0,1]: %v", err)
	}
}

func TestQuickGaussianCDFMonotone(t *testing.T) {
	property := func(mean float64, spread float64, a, b float64) bool {
		mean = math.Mod(mean, 1e6)
		std := math.Abs(math.Mod(spread, 1e3)) + 1e-9
		g := Gaussian{Mean: mean, StdDev: std}
		lo, hi := math.Mod(a, 1e6), math.Mod(b, 1e6)
		if lo > hi {
			lo, hi = hi, lo
		}
		return g.CDF(lo) <= g.CDF(hi)+1e-12
	}
	if err := quick.Check(property, nil); err != nil {
		t.Errorf("Gaussian CDF not monotone: %v", err)
	}
}

func closeTo(got, want, tol float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	diff := math.Abs(got - want)
	if diff <= tol {
		return true
	}
	// Relative tolerance for large magnitudes.
	return diff <= tol*math.Max(math.Abs(got), math.Abs(want))
}
