package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussHermiteRejectsInvalidOrders(t *testing.T) {
	for _, n := range []int{-3, 0, maxGHOrder + 1} {
		if _, err := GaussHermite(n); err == nil {
			t.Errorf("GaussHermite(%d) expected error, got nil", n)
		}
	}
}

func TestGaussHermiteKnownRules(t *testing.T) {
	sqrtPi := math.Sqrt(math.Pi)
	tests := []struct {
		name  string
		order int
		nodes []GHNode
	}{
		{
			name:  "order 1",
			order: 1,
			nodes: []GHNode{{X: 0, W: sqrtPi}},
		},
		{
			name:  "order 2",
			order: 2,
			nodes: []GHNode{
				{X: -math.Sqrt(0.5), W: sqrtPi / 2},
				{X: math.Sqrt(0.5), W: sqrtPi / 2},
			},
		},
		{
			name:  "order 3",
			order: 3,
			nodes: []GHNode{
				{X: -math.Sqrt(1.5), W: sqrtPi / 6},
				{X: 0, W: 2 * sqrtPi / 3},
				{X: math.Sqrt(1.5), W: sqrtPi / 6},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := GaussHermite(tt.order)
			if err != nil {
				t.Fatalf("GaussHermite(%d) error: %v", tt.order, err)
			}
			if len(got) != len(tt.nodes) {
				t.Fatalf("GaussHermite(%d) returned %d nodes, want %d", tt.order, len(got), len(tt.nodes))
			}
			for i := range got {
				if !closeTo(got[i].X, tt.nodes[i].X, 1e-10) {
					t.Errorf("node %d abscissa = %v, want %v", i, got[i].X, tt.nodes[i].X)
				}
				if !closeTo(got[i].W, tt.nodes[i].W, 1e-10) {
					t.Errorf("node %d weight = %v, want %v", i, got[i].W, tt.nodes[i].W)
				}
			}
		})
	}
}

func TestGaussHermiteWeightsSumToSqrtPi(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 10, 20, 40} {
		nodes, err := GaussHermite(n)
		if err != nil {
			t.Fatalf("GaussHermite(%d) error: %v", n, err)
		}
		sum := 0.0
		for _, node := range nodes {
			if node.W <= 0 {
				t.Errorf("order %d: non-positive weight %v", n, node.W)
			}
			sum += node.W
		}
		if !closeTo(sum, math.Sqrt(math.Pi), 1e-9) {
			t.Errorf("order %d: weights sum to %v, want sqrt(pi)=%v", n, sum, math.Sqrt(math.Pi))
		}
	}
}

func TestGaussHermiteNodesAreSortedAndSymmetric(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 16} {
		nodes, err := GaussHermite(n)
		if err != nil {
			t.Fatalf("GaussHermite(%d) error: %v", n, err)
		}
		for i := 1; i < len(nodes); i++ {
			if nodes[i].X <= nodes[i-1].X {
				t.Errorf("order %d: nodes not strictly increasing at %d", n, i)
			}
		}
		for i := range nodes {
			j := len(nodes) - 1 - i
			if !closeTo(nodes[i].X, -nodes[j].X, 1e-10) {
				t.Errorf("order %d: abscissae not symmetric (%v vs %v)", n, nodes[i].X, nodes[j].X)
			}
			if !closeTo(nodes[i].W, nodes[j].W, 1e-10) {
				t.Errorf("order %d: weights not symmetric (%v vs %v)", n, nodes[i].W, nodes[j].W)
			}
		}
	}
}

// TestGaussHermitePolynomialExactness exercises the defining property of the
// rule: an n-point rule integrates x^k·exp(-x²) exactly for k <= 2n-1.
func TestGaussHermitePolynomialExactness(t *testing.T) {
	// Exact Gaussian moments of ∫ x^k e^{-x²} dx: 0 for odd k,
	// sqrt(pi)·(k-1)!!/2^{k/2} for even k.
	exactMoment := func(k int) float64 {
		if k%2 == 1 {
			return 0
		}
		val := math.Sqrt(math.Pi)
		for i := k - 1; i >= 1; i -= 2 {
			val *= float64(i) / 2
		}
		return val
	}
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		nodes, err := GaussHermite(n)
		if err != nil {
			t.Fatalf("GaussHermite(%d) error: %v", n, err)
		}
		for k := 0; k <= 2*n-1; k++ {
			got := 0.0
			for _, node := range nodes {
				got += node.W * math.Pow(node.X, float64(k))
			}
			want := exactMoment(k)
			if !closeTo(got, want, 1e-8) {
				t.Errorf("order %d moment %d = %v, want %v", n, k, got, want)
			}
		}
	}
}

func TestGaussHermiteCacheReturnsIndependentSlices(t *testing.T) {
	first, err := GaussHermite(5)
	if err != nil {
		t.Fatalf("GaussHermite(5) error: %v", err)
	}
	first[0].X = 12345
	second, err := GaussHermite(5)
	if err != nil {
		t.Fatalf("GaussHermite(5) error: %v", err)
	}
	if second[0].X == 12345 {
		t.Error("mutating a returned slice leaked into the cache")
	}
}

func TestDiscretizeGaussianWeightsAndMean(t *testing.T) {
	g := Gaussian{Mean: 40, StdDev: 12}
	for _, n := range []int{1, 3, 5, 9} {
		vals, err := DiscretizeGaussian(g, n)
		if err != nil {
			t.Fatalf("DiscretizeGaussian order %d error: %v", n, err)
		}
		if len(vals) != n {
			t.Fatalf("DiscretizeGaussian order %d returned %d values", n, len(vals))
		}
		sumW, mean, second := 0.0, 0.0, 0.0
		for _, wv := range vals {
			sumW += wv.Weight
			mean += wv.Weight * wv.Value
			second += wv.Weight * wv.Value * wv.Value
		}
		if !closeTo(sumW, 1, 1e-9) {
			t.Errorf("order %d: weights sum to %v, want 1", n, sumW)
		}
		if !closeTo(mean, g.Mean, 1e-8) {
			t.Errorf("order %d: discretized mean %v, want %v", n, mean, g.Mean)
		}
		if n >= 2 {
			variance := second - mean*mean
			if !closeTo(variance, g.StdDev*g.StdDev, 1e-6) {
				t.Errorf("order %d: discretized variance %v, want %v", n, variance, g.StdDev*g.StdDev)
			}
		}
	}
}

func TestDiscretizeGaussianDegenerate(t *testing.T) {
	vals, err := DiscretizeGaussian(Gaussian{Mean: 7, StdDev: 0}, 5)
	if err != nil {
		t.Fatalf("DiscretizeGaussian error: %v", err)
	}
	if len(vals) != 1 || vals[0].Value != 7 || vals[0].Weight != 1 {
		t.Errorf("degenerate discretization = %+v, want single (7,1)", vals)
	}
}

func TestDiscretizeGaussianRejectsNegativeStd(t *testing.T) {
	if _, err := DiscretizeGaussian(Gaussian{Mean: 1, StdDev: -1}, 3); err == nil {
		t.Error("expected error for negative std, got nil")
	}
}

func TestQuickDiscretizeGaussianPreservesMass(t *testing.T) {
	property := func(mean, spread float64, orderSeed uint8) bool {
		mean = math.Mod(mean, 1e5)
		std := math.Abs(math.Mod(spread, 1e4))
		order := int(orderSeed%10) + 1
		vals, err := DiscretizeGaussian(Gaussian{Mean: mean, StdDev: std}, order)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, wv := range vals {
			if wv.Weight < 0 {
				return false
			}
			sum += wv.Weight
		}
		return closeTo(sum, 1, 1e-8)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Errorf("discretization mass not preserved: %v", err)
	}
}

func TestCartesianWeighted(t *testing.T) {
	dims := [][]WeightedValue{
		{{Value: 1, Weight: 0.25}, {Value: 2, Weight: 0.75}},
		{{Value: 10, Weight: 0.5}, {Value: 20, Weight: 0.3}, {Value: 30, Weight: 0.2}},
	}
	combos, err := CartesianWeighted(dims)
	if err != nil {
		t.Fatalf("CartesianWeighted error: %v", err)
	}
	if len(combos) != 6 {
		t.Fatalf("CartesianWeighted returned %d combos, want 6", len(combos))
	}
	sum := 0.0
	for _, c := range combos {
		if len(c.Values) != 2 {
			t.Fatalf("combo has %d values, want 2", len(c.Values))
		}
		sum += c.Weight
	}
	if !closeTo(sum, 1, 1e-12) {
		t.Errorf("combined weights sum to %v, want 1", sum)
	}
	// Spot check a specific combination.
	found := false
	for _, c := range combos {
		if c.Values[0] == 2 && c.Values[1] == 30 {
			found = true
			if !closeTo(c.Weight, 0.75*0.2, 1e-12) {
				t.Errorf("combo (2,30) weight = %v, want %v", c.Weight, 0.75*0.2)
			}
		}
	}
	if !found {
		t.Error("combination (2,30) missing from cartesian product")
	}
}

func TestCartesianWeightedErrors(t *testing.T) {
	if _, err := CartesianWeighted(nil); err == nil {
		t.Error("expected error for empty dimension list")
	}
	if _, err := CartesianWeighted([][]WeightedValue{{}}); err == nil {
		t.Error("expected error for empty dimension")
	}
}
