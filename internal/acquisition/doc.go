// Package acquisition implements the acquisition functions of the paper
// (§3): Expected Improvement (EI) for minimization, the constrained variant
// EIc obtained by multiplying EI with the probability that every performance
// constraint is met, and the incumbent fallback rule used while no profiled
// configuration satisfies the constraints yet ("most expensive profiled cost
// plus three times the largest predictive standard deviation").
//
// The planner in internal/core calls these functions for every candidate of
// every speculation state, so they sit directly on the optimizer's hot path;
// they are pure functions of the predictive Gaussians and therefore safe to
// evaluate concurrently.
package acquisition
