package acquisition

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// ErrNoCandidates is returned by selection helpers invoked with no candidates.
var ErrNoCandidates = errors.New("acquisition: no candidates")

// ExpectedImprovement returns the expected improvement of a candidate with
// predictive distribution pred over the current best (lowest) objective value
// best, for a minimization problem:
//
//	EI(x) = (y* − µ(x))·Φ(z) + σ(x)·φ(z),   z = (y* − µ(x))/σ(x).
//
// When the predictive standard deviation is zero, EI degenerates to
// max(0, y* − µ(x)).
func ExpectedImprovement(pred numeric.Gaussian, best float64) float64 {
	if pred.StdDev == 0 {
		if diff := best - pred.Mean; diff > 0 {
			return diff
		}
		return 0
	}
	z := (best - pred.Mean) / pred.StdDev
	ei := (best-pred.Mean)*numeric.NormalCDF(z) + pred.StdDev*numeric.NormalPDF(z)
	if ei < 0 {
		// Numerical noise can drive the closed form slightly negative deep in
		// the "no improvement" regime.
		return 0
	}
	return ei
}

// ConstraintProbability returns P(C(x) ≤ Tmax · U(x)), the probability that
// the configuration meets the maximum-runtime constraint, computed on the
// cost model by exploiting C(x) = T(x)·U(x) with U(x) known (paper §3).
// unitPricePerSecond is U(x) expressed per second so that the threshold and
// the cost prediction share the same unit.
func ConstraintProbability(costPred numeric.Gaussian, maxRuntimeSeconds, unitPricePerSecond float64) (float64, error) {
	if maxRuntimeSeconds <= 0 {
		return 0, fmt.Errorf("acquisition: non-positive runtime constraint %v", maxRuntimeSeconds)
	}
	if unitPricePerSecond <= 0 {
		return 0, fmt.Errorf("acquisition: non-positive unit price %v", unitPricePerSecond)
	}
	return costPred.ProbLE(maxRuntimeSeconds * unitPricePerSecond), nil
}

// Constrained combines an expected improvement with the probability that
// every constraint is satisfied: EIc(x) = EI(x) · Π P(m_i ≤ t_i). The
// probabilities are assumed independent, as in the paper's multi-constraint
// extension (§4.4).
func Constrained(ei float64, constraintProbs ...float64) (float64, error) {
	if ei < 0 {
		return 0, fmt.Errorf("acquisition: negative expected improvement %v", ei)
	}
	out := ei
	for i, p := range constraintProbs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return 0, fmt.Errorf("acquisition: constraint probability %d = %v outside [0,1]", i, p)
		}
		out *= p
	}
	return out, nil
}

// IncumbentFallback returns the pseudo-incumbent y* to use when no profiled
// configuration satisfies the runtime constraint yet: the cost of the most
// expensive configuration profiled so far plus three times the maximum
// predictive standard deviation over the untested configurations (paper §3,
// following [39]).
func IncumbentFallback(maxObservedCost, maxPredictiveStd float64) float64 {
	return maxObservedCost + 3*maxPredictiveStd
}

// Incumbent computes the incumbent y* given the best feasible observed cost
// (if any) and the fallback ingredients. hasFeasible indicates whether any
// profiled configuration met the constraint.
func Incumbent(bestFeasibleCost float64, hasFeasible bool, maxObservedCost, maxPredictiveStd float64) float64 {
	if hasFeasible {
		return bestFeasibleCost
	}
	return IncumbentFallback(maxObservedCost, maxPredictiveStd)
}

// Score is the acquisition value of one candidate configuration.
type Score struct {
	// ConfigID identifies the candidate within its space.
	ConfigID int
	// Pred is the cost prediction of the model for the candidate.
	Pred numeric.Gaussian
	// EI is the unconstrained expected improvement.
	EI float64
	// ProbFeasible is the probability that the runtime constraint holds.
	ProbFeasible float64
	// EIc is the constrained expected improvement EI·ProbFeasible.
	EIc float64
}

// ArgMaxEIc returns the index (within scores) of the candidate with the
// highest EIc. Ties are broken by the lower ConfigID to keep selection
// deterministic.
func ArgMaxEIc(scores []Score) (int, error) {
	if len(scores) == 0 {
		return 0, ErrNoCandidates
	}
	best := 0
	for i := 1; i < len(scores); i++ {
		if better(scores[i].EIc, scores[i].ConfigID, scores[best].EIc, scores[best].ConfigID) {
			best = i
		}
	}
	return best, nil
}

// ArgMaxRatio returns the index of the candidate maximizing EIc divided by
// the predicted cost (the LA=0 "cost-aware but myopic" variant of §6.2).
// Candidates with non-positive predicted mean cost are scored using a tiny
// epsilon denominator so they do not produce infinities.
func ArgMaxRatio(scores []Score) (int, error) {
	if len(scores) == 0 {
		return 0, ErrNoCandidates
	}
	const eps = 1e-12
	ratio := func(s Score) float64 {
		den := s.Pred.Mean
		if den < eps {
			den = eps
		}
		return s.EIc / den
	}
	best := 0
	for i := 1; i < len(scores); i++ {
		if better(ratio(scores[i]), scores[i].ConfigID, ratio(scores[best]), scores[best].ConfigID) {
			best = i
		}
	}
	return best, nil
}

// better reports whether candidate (value a, id aID) beats (value b, id bID).
func better(a float64, aID int, b float64, bID int) bool {
	if a != b {
		return a > b
	}
	return aID < bID
}
