package acquisition

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestExpectedImprovementZeroStd(t *testing.T) {
	tests := []struct {
		name string
		pred numeric.Gaussian
		best float64
		want float64
	}{
		{name: "improvement", pred: numeric.Gaussian{Mean: 5}, best: 8, want: 3},
		{name: "no improvement", pred: numeric.Gaussian{Mean: 10}, best: 8, want: 0},
		{name: "equal", pred: numeric.Gaussian{Mean: 8}, best: 8, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExpectedImprovement(tt.pred, tt.best); got != tt.want {
				t.Errorf("EI = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExpectedImprovementClosedForm(t *testing.T) {
	// With µ = best and σ = 1, EI = σ·φ(0) = 0.3989...
	pred := numeric.Gaussian{Mean: 4, StdDev: 1}
	got := ExpectedImprovement(pred, 4)
	want := numeric.NormalPDF(0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EI at z=0 = %v, want %v", got, want)
	}
	// One std of improvement: EI = 1·Φ(1) + 1·φ(1).
	got = ExpectedImprovement(numeric.Gaussian{Mean: 3, StdDev: 1}, 4)
	want = numeric.NormalCDF(1) + numeric.NormalPDF(1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EI at z=1 = %v, want %v", got, want)
	}
}

func TestExpectedImprovementIsNonNegativeAndMonotoneInUncertainty(t *testing.T) {
	property := func(meanRaw, stdRaw, bestRaw float64) bool {
		mean := math.Mod(meanRaw, 1e4)
		std := math.Abs(math.Mod(stdRaw, 1e3))
		best := math.Mod(bestRaw, 1e4)
		pred := numeric.Gaussian{Mean: mean, StdDev: std}
		ei := ExpectedImprovement(pred, best)
		if ei < 0 || math.IsNaN(ei) {
			return false
		}
		// More uncertainty can never decrease EI.
		eiWider := ExpectedImprovement(numeric.Gaussian{Mean: mean, StdDev: std + 1}, best)
		return eiWider >= ei-1e-9
	}
	if err := quick.Check(property, nil); err != nil {
		t.Errorf("EI property failed: %v", err)
	}
}

func TestConstraintProbability(t *testing.T) {
	pred := numeric.Gaussian{Mean: 10, StdDev: 2}
	// Threshold = Tmax·U = 600s · (1/60 $/s) = 10$ -> z = 0 -> p = 0.5.
	p, err := ConstraintProbability(pred, 600, 1.0/60)
	if err != nil {
		t.Fatalf("ConstraintProbability error: %v", err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("p = %v, want 0.5", p)
	}
	if _, err := ConstraintProbability(pred, 0, 1); err == nil {
		t.Error("zero Tmax should error")
	}
	if _, err := ConstraintProbability(pred, 10, 0); err == nil {
		t.Error("zero unit price should error")
	}
}

func TestConstrained(t *testing.T) {
	got, err := Constrained(2.0, 0.5, 0.5)
	if err != nil {
		t.Fatalf("Constrained error: %v", err)
	}
	if got != 0.5 {
		t.Errorf("Constrained = %v, want 0.5", got)
	}
	if _, err := Constrained(-1, 0.5); err == nil {
		t.Error("negative EI should error")
	}
	if _, err := Constrained(1, 1.5); err == nil {
		t.Error("probability above 1 should error")
	}
	if _, err := Constrained(1, -0.1); err == nil {
		t.Error("negative probability should error")
	}
	noConstraints, err := Constrained(3.0)
	if err != nil || noConstraints != 3.0 {
		t.Errorf("Constrained with no constraints = %v, %v", noConstraints, err)
	}
}

func TestIncumbent(t *testing.T) {
	if got := Incumbent(7, true, 100, 5); got != 7 {
		t.Errorf("Incumbent with feasible best = %v, want 7", got)
	}
	if got := Incumbent(0, false, 100, 5); got != 115 {
		t.Errorf("Incumbent fallback = %v, want 115 (max + 3·std)", got)
	}
	if got := IncumbentFallback(10, 2); got != 16 {
		t.Errorf("IncumbentFallback = %v, want 16", got)
	}
}

func TestArgMaxEIc(t *testing.T) {
	scores := []Score{
		{ConfigID: 4, EIc: 0.3},
		{ConfigID: 2, EIc: 0.9},
		{ConfigID: 9, EIc: 0.9},
		{ConfigID: 1, EIc: 0.1},
	}
	idx, err := ArgMaxEIc(scores)
	if err != nil {
		t.Fatalf("ArgMaxEIc error: %v", err)
	}
	if scores[idx].ConfigID != 2 {
		t.Errorf("ArgMaxEIc picked config %d, want 2 (ties break on lower ID)", scores[idx].ConfigID)
	}
	if _, err := ArgMaxEIc(nil); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("empty candidates error = %v, want ErrNoCandidates", err)
	}
}

func TestArgMaxRatio(t *testing.T) {
	scores := []Score{
		// High EIc but expensive.
		{ConfigID: 0, EIc: 1.0, Pred: numeric.Gaussian{Mean: 100}},
		// Lower EIc but much cheaper: best ratio.
		{ConfigID: 1, EIc: 0.5, Pred: numeric.Gaussian{Mean: 10}},
		{ConfigID: 2, EIc: 0.2, Pred: numeric.Gaussian{Mean: 50}},
	}
	idx, err := ArgMaxRatio(scores)
	if err != nil {
		t.Fatalf("ArgMaxRatio error: %v", err)
	}
	if scores[idx].ConfigID != 1 {
		t.Errorf("ArgMaxRatio picked config %d, want 1", scores[idx].ConfigID)
	}
	if _, err := ArgMaxRatio(nil); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("empty candidates error = %v, want ErrNoCandidates", err)
	}
	// A zero predicted cost must not produce Inf/NaN selection panics.
	weird := []Score{{ConfigID: 0, EIc: 0.1, Pred: numeric.Gaussian{Mean: 0}}}
	if _, err := ArgMaxRatio(weird); err != nil {
		t.Errorf("zero-cost candidate should not error: %v", err)
	}
}

func TestQuickConstrainedNeverExceedsEI(t *testing.T) {
	property := func(eiRaw, pRaw float64) bool {
		ei := math.Abs(math.Mod(eiRaw, 1e6))
		p := math.Abs(math.Mod(pRaw, 1.0))
		got, err := Constrained(ei, p)
		if err != nil {
			return false
		}
		return got <= ei+1e-12 && got >= 0
	}
	if err := quick.Check(property, nil); err != nil {
		t.Errorf("Constrained bound property failed: %v", err)
	}
}
