package regtree

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// refNode is a pointer-linked tree node — the pre-flattening representation,
// reconstructed from the serialized v1 state. The property tests below walk
// it side by side with the packed flat layout to prove the two predict
// bitwise identically, which is the invariant that let the flat rewrite land
// without touching any golden campaign.
type refNode struct {
	feature   int32
	threshold float64
	value     float64
	left      *refNode
	right     *refNode
}

// refFromState links a pointer tree from the flattened v1 node list.
func refFromState(t *testing.T, s TreeState) *refNode {
	t.Helper()
	var build func(i int32) *refNode
	build = func(i int32) *refNode {
		ns := s.Nodes[i]
		if ns.Left < 0 {
			return &refNode{value: ns.Value, left: nil}
		}
		return &refNode{
			feature:   ns.Feature,
			threshold: ns.Threshold,
			left:      build(ns.Left),
			right:     build(ns.Right),
		}
	}
	return build(0)
}

func (n *refNode) predict(x []float64) float64 {
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// randomFixture draws a training set with mixed discrete/continuous features
// and a noisy nonlinear target, the shape of the paper's profiling data.
func randomFixture(rng *rand.Rand, n, m int) ([][]float64, []float64) {
	features := make([][]float64, n)
	targets := make([]float64, n)
	for i := range features {
		row := make([]float64, m)
		for f := range row {
			if f%2 == 0 {
				row[f] = float64(rng.Intn(4))
			} else {
				row[f] = rng.Float64() * 10
			}
		}
		features[i] = row
		targets[i] = 3*row[0] - row[m-1] + rng.NormFloat64()
	}
	return features, targets
}

// probeGrid draws random probe points, including points outside the training
// range so off-distribution traversals are covered too.
func probeGrid(rng *rand.Rand, count, m int) [][]float64 {
	probes := make([][]float64, count)
	for i := range probes {
		row := make([]float64, m)
		for f := range row {
			row[f] = rng.Float64()*16 - 3
		}
		probes[i] = row
	}
	return probes
}

// assertMatchesRef checks that the packed tree and the pointer reference
// predict bitwise identically on every probe, through both the scalar walk
// and PredictBatch over a column-major gather of the probes.
func assertMatchesRef(t *testing.T, tree *Tree, ref *refNode, probes [][]float64, label string) {
	t.Helper()
	m := tree.NumFeatures()
	cols := make([][]float64, m)
	for f := range cols {
		cols[f] = make([]float64, len(probes))
		for i, p := range probes {
			cols[f][i] = p[f]
		}
	}
	batch := make([]float64, len(probes))
	if err := tree.PredictBatch(cols, batch); err != nil {
		t.Fatalf("%s: PredictBatch: %v", label, err)
	}
	for i, p := range probes {
		want := ref.predict(p)
		got, err := tree.Predict(p)
		if err != nil {
			t.Fatalf("%s: Predict: %v", label, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: scalar predict at %v: packed %v != pointer %v", label, p, got, want)
		}
		if math.Float64bits(batch[i]) != math.Float64bits(want) {
			t.Fatalf("%s: batch predict at %v: packed %v != pointer %v", label, p, batch[i], want)
		}
	}
}

// TestPackedTreeMatchesPointerTree trains packed trees over randomized
// fixtures and parameters and checks both predict paths against the pointer
// reference.
func TestPackedTreeMatchesPointerTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(60)
		m := 1 + rng.Intn(6)
		features, targets := randomFixture(rng, n, m)
		params := Params{
			MinSamplesSplit: 2 + rng.Intn(6),
			MinLeafSize:     1 + rng.Intn(3),
		}
		tree, err := Train(features, targets, params, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatalf("trial %d: Train: %v", trial, err)
		}
		state, err := tree.State()
		if err != nil {
			t.Fatalf("trial %d: State: %v", trial, err)
		}
		ref := refFromState(t, state)
		assertMatchesRef(t, tree, ref, probeGrid(rng, 50, m), "trained")
	}
}

// TestPackedTreeMatchesPointerTreeAfterInserts runs incremental trees through
// long insert sequences — including leaf re-splits, which regrow subtrees at
// interior slots with descendants appended at the end of the node array (the
// reason the packed layout keeps explicit child indices instead of assuming
// preorder adjacency) — re-deriving the pointer reference after every stretch
// of inserts.
func TestPackedTreeMatchesPointerTreeAfterInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(4)
		features, targets := randomFixture(rng, 10, m)
		tree, err := TrainIncremental(features, targets, Params{MinSamplesSplit: 4, MinLeafSize: 2}, nil)
		if err != nil {
			t.Fatalf("trial %d: TrainIncremental: %v", trial, err)
		}
		for round := 0; round < 8; round++ {
			for k := 0; k < 10; k++ {
				x := make([]float64, m)
				for f := range x {
					x[f] = float64(rng.Intn(5))
				}
				if _, err := tree.Insert(x, rng.NormFloat64()*5, nil); err != nil {
					t.Fatalf("trial %d: Insert: %v", trial, err)
				}
			}
			state, err := tree.State()
			if err != nil {
				t.Fatalf("trial %d: State: %v", trial, err)
			}
			ref := refFromState(t, state)
			assertMatchesRef(t, tree, ref, probeGrid(rng, 30, m), "after inserts")
		}
	}
}

// TestPackedTreeMatchesPointerTreeThroughCloneAndSnapshot covers the
// remaining mutation/restore paths: a clone receiving further inserts, and a
// serialize round-trip through the v1 JSON snapshot format. In both cases
// the restored or mutated packed tree must keep matching a pointer reference
// built from its own state, and the snapshot JSON itself must be stable
// across a State -> FromState -> State round-trip.
func TestPackedTreeMatchesPointerTreeThroughCloneAndSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := 3
	features, targets := randomFixture(rng, 25, m)
	tree, err := TrainIncremental(features, targets, Params{MinSamplesSplit: 3, MinLeafSize: 1}, nil)
	if err != nil {
		t.Fatalf("TrainIncremental: %v", err)
	}
	clone := tree.Clone()
	for k := 0; k < 40; k++ {
		x := []float64{float64(rng.Intn(5)), rng.Float64() * 10, float64(rng.Intn(5))}
		if _, err := clone.Insert(x, rng.NormFloat64()*5, nil); err != nil {
			t.Fatalf("Insert into clone: %v", err)
		}
	}
	probes := probeGrid(rng, 60, m)
	for _, tc := range []struct {
		label string
		tree  *Tree
	}{{"parent", tree}, {"clone", clone}} {
		state, err := tc.tree.State()
		if err != nil {
			t.Fatalf("%s: State: %v", tc.label, err)
		}
		ref := refFromState(t, state)
		assertMatchesRef(t, tc.tree, ref, probes, tc.label)

		// Round-trip through the v1 JSON form.
		blob, err := json.Marshal(state)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", tc.label, err)
		}
		var back TreeState
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: Unmarshal: %v", tc.label, err)
		}
		restored, err := FromState(back)
		if err != nil {
			t.Fatalf("%s: FromState: %v", tc.label, err)
		}
		assertMatchesRef(t, restored, ref, probes, tc.label+" restored")
		state2, err := restored.State()
		if err != nil {
			t.Fatalf("%s: State after round-trip: %v", tc.label, err)
		}
		blob2, err := json.Marshal(state2)
		if err != nil {
			t.Fatalf("%s: Marshal after round-trip: %v", tc.label, err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("%s: snapshot JSON not stable across round-trip", tc.label)
		}
	}
}
