package regtree

import (
	"math"
	"math/rand"
	"testing"
)

// incFixture is a small discrete training set with a clear split structure:
// the target is driven by feature 0, with feature 1 as noise.
func incFixture() ([][]float64, []float64) {
	features := [][]float64{
		{0, 0}, {0, 1}, {0, 2},
		{1, 0}, {1, 1}, {1, 2},
		{2, 0}, {2, 1}, {2, 2},
	}
	targets := []float64{1, 1.1, 0.9, 5, 5.2, 4.8, 9, 9.1, 8.9}
	return features, targets
}

func TestTrainIncrementalMatchesTrainBitwise(t *testing.T) {
	features, targets := incFixture()
	params := Params{MinSamplesSplit: 2, MinLeafSize: 1}
	plain, err := Train(features, targets, params, nil)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	inc, err := TrainIncremental(features, targets, params, nil)
	if err != nil {
		t.Fatalf("TrainIncremental: %v", err)
	}
	if !inc.Incremental() || plain.Incremental() {
		t.Fatalf("Incremental flags: plain=%v inc=%v", plain.Incremental(), inc.Incremental())
	}
	if inc.Leaves() != plain.Leaves() || inc.Depth() != plain.Depth() {
		t.Fatalf("structure differs: leaves %d/%d depth %d/%d", inc.Leaves(), plain.Leaves(), inc.Depth(), plain.Depth())
	}
	for _, row := range features {
		a, _ := plain.Predict(row)
		b, _ := inc.Predict(row)
		if a != b {
			t.Fatalf("prediction at %v differs: %v vs %v", row, a, b)
		}
	}
	if inc.Samples() != len(targets) {
		t.Fatalf("Samples = %d, want %d", inc.Samples(), len(targets))
	}
}

func TestInsertUpdatesLeafMean(t *testing.T) {
	features, targets := incFixture()
	// MinSamplesSplit high enough that the insert below cannot re-split.
	tree, err := TrainIncremental(features, targets, Params{MinSamplesSplit: 100}, nil)
	if err != nil {
		t.Fatalf("TrainIncremental: %v", err)
	}
	// A single leaf (no splits): the prediction is the global mean.
	before, _ := tree.Predict([]float64{0, 0})
	if _, err := tree.Insert([]float64{0, 0}, 100, nil); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	after, _ := tree.Predict([]float64{0, 0})
	wantSum := 100.0
	for _, y := range targets {
		wantSum += y
	}
	want := wantSum / float64(len(targets)+1)
	if math.Abs(after-want) > 1e-12 {
		t.Fatalf("mean after insert = %v, want %v (before %v)", after, want, before)
	}
	if tree.Samples() != len(targets)+1 {
		t.Fatalf("Samples = %d, want %d", tree.Samples(), len(targets)+1)
	}
}

func TestInsertResplitsLeafPastThreshold(t *testing.T) {
	// Start with constant targets: a single leaf. Then insert distinct
	// targets at a distinct feature value until the leaf re-splits.
	features := [][]float64{{0}, {0}, {0}}
	targets := []float64{1, 1, 1}
	tree, err := TrainIncremental(features, targets, Params{MinSamplesSplit: 2, MinLeafSize: 1}, nil)
	if err != nil {
		t.Fatalf("TrainIncremental: %v", err)
	}
	if tree.Leaves() != 1 {
		t.Fatalf("Leaves = %d, want 1", tree.Leaves())
	}
	for i := 0; i < 3; i++ {
		if _, err := tree.Insert([]float64{5}, 9, nil); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if tree.Leaves() < 2 {
		t.Fatalf("leaf did not re-split: %d leaves", tree.Leaves())
	}
	low, _ := tree.Predict([]float64{0})
	high, _ := tree.Predict([]float64{5})
	if low != 1 || high != 9 {
		t.Fatalf("post-split predictions = (%v, %v), want (1, 9)", low, high)
	}
}

func TestInsertValidation(t *testing.T) {
	features, targets := incFixture()
	plain, _ := Train(features, targets, Params{}, nil)
	if _, err := plain.Insert([]float64{0, 0}, 1, nil); err == nil {
		t.Error("Insert into a Train-built tree did not fail")
	}
	inc, _ := TrainIncremental(features, targets, Params{}, nil)
	if _, err := inc.Insert([]float64{0}, 1, nil); err == nil {
		t.Error("Insert with wrong arity did not fail")
	}
	if _, err := inc.Insert([]float64{0, 0}, math.NaN(), nil); err == nil {
		t.Error("Insert with NaN target did not fail")
	}
	var empty *Tree
	if _, err := empty.Insert([]float64{0}, 1, nil); err == nil {
		t.Error("Insert into nil tree did not fail")
	}
}

func TestHitsNodeBoundsPredictionChanges(t *testing.T) {
	features, targets := incFixture()
	tree, err := TrainIncremental(features, targets, Params{MinSamplesSplit: 2, MinLeafSize: 1}, nil)
	if err != nil {
		t.Fatalf("TrainIncremental: %v", err)
	}
	// Record predictions over a probe grid, insert one sample, and check
	// that every changed prediction is flagged by HitsNode.
	probes := make([][]float64, 0, 16)
	for a := 0.0; a <= 3; a++ {
		for b := 0.0; b <= 3; b++ {
			probes = append(probes, []float64{a, b})
		}
	}
	before := make([]float64, len(probes))
	for i, x := range probes {
		before[i], _ = tree.Predict(x)
	}
	node, err := tree.Insert([]float64{2, 2}, 20, nil)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	for i, x := range probes {
		after, _ := tree.Predict(x)
		if after != before[i] && !tree.HitsNode(x, node) {
			t.Errorf("prediction at %v changed (%v -> %v) but HitsNode is false", x, before[i], after)
		}
	}
}

func TestCloneIsIndependentAndDeterministic(t *testing.T) {
	features, targets := incFixture()
	parent, err := TrainIncremental(features, targets, Params{MinSamplesSplit: 2, MinLeafSize: 1}, nil)
	if err != nil {
		t.Fatalf("TrainIncremental: %v", err)
	}
	a := parent.Clone()
	b := &Tree{}
	parent.CloneInto(b)

	parentBefore, _ := parent.Predict([]float64{1, 1})
	// The same insert sequence applied to both clones must produce bitwise
	// identical trees, and the parent must not move.
	inserts := []struct {
		x []float64
		y float64
	}{
		{[]float64{1, 1}, 4.9}, {[]float64{2, 0}, 9.3}, {[]float64{0, 2}, 1.05},
	}
	for _, in := range inserts {
		if _, err := a.Insert(in.x, in.y, nil); err != nil {
			t.Fatalf("Insert into a: %v", err)
		}
		if _, err := b.Insert(in.x, in.y, nil); err != nil {
			t.Fatalf("Insert into b: %v", err)
		}
	}
	for _, row := range features {
		pa, _ := a.Predict(row)
		pb, _ := b.Predict(row)
		if pa != pb {
			t.Fatalf("clones diverged at %v: %v vs %v", row, pa, pb)
		}
	}
	if after, _ := parent.Predict([]float64{1, 1}); after != parentBefore {
		t.Fatalf("parent prediction moved after clone inserts: %v -> %v", parentBefore, after)
	}
	if parent.Samples() != len(targets) || a.Samples() != len(targets)+len(inserts) {
		t.Fatalf("sample counts: parent %d, clone %d", parent.Samples(), a.Samples())
	}
}

// TestCloneIntoReuseIsCheap re-clones into the same destination and checks the
// arena reuse keeps steady-state allocations near zero.
func TestCloneIntoReuseIsCheap(t *testing.T) {
	features, targets := incFixture()
	parent, err := TrainIncremental(features, targets, Params{MinSamplesSplit: 2, MinLeafSize: 1}, nil)
	if err != nil {
		t.Fatalf("TrainIncremental: %v", err)
	}
	dst := &Tree{}
	parent.CloneInto(dst) // warm the arenas
	allocs := testing.AllocsPerRun(100, func() {
		parent.CloneInto(dst)
	})
	if allocs > 0 {
		t.Errorf("steady-state CloneInto allocates %.1f objects per clone, want 0", allocs)
	}
}

// TestIncrementalTrackingSurvivesResplitChains stresses Insert with a long
// random sample stream and cross-checks the tree against a freshly trained
// reference on the same distribution: structure-independent invariants only
// (finite predictions, sample bookkeeping, leaf membership consistency).
func TestIncrementalTrackingSurvivesResplitChains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([][]float64, 8)
	targets := make([]float64, 8)
	fn := func(x []float64) float64 { return 3*x[0] - 2*x[1] + x[0]*x[1] }
	for i := range base {
		base[i] = []float64{float64(rng.Intn(4)), float64(rng.Intn(4))}
		targets[i] = fn(base[i])
	}
	tree, err := TrainIncremental(base, targets, Params{MinSamplesSplit: 4, MinLeafSize: 2}, nil)
	if err != nil {
		t.Fatalf("TrainIncremental: %v", err)
	}
	for i := 0; i < 200; i++ {
		x := []float64{float64(rng.Intn(4)), float64(rng.Intn(4))}
		if _, err := tree.Insert(x, fn(x), nil); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tree.Samples() != 8+200 {
		t.Fatalf("Samples = %d, want 208", tree.Samples())
	}
	// Every retained sample must sit in the leaf its features route to, and
	// each leaf value must equal the mean of its members.
	inc := tree.inc
	counted := 0
	for node, members := range inc.leafSamples {
		if members == nil {
			continue
		}
		if tree.nodes[node].left >= 0 {
			t.Fatalf("internal node %d holds samples", node)
		}
		sum := 0.0
		for _, s := range members {
			counted++
			row := make([]float64, tree.numFeatures)
			for f := range row {
				row[f] = inc.cols[f][s]
			}
			if got := tree.leafIndex(row); got != int32(node) {
				t.Fatalf("sample %d recorded in leaf %d but routes to %d", s, node, got)
			}
			sum += inc.targets[s]
		}
		want := sum / float64(len(members))
		if math.Abs(tree.nodes[node].thresh-want) > 1e-9 {
			t.Fatalf("leaf %d value %v, want member mean %v", node, tree.nodes[node].thresh, want)
		}
	}
	if counted != tree.Samples() {
		t.Fatalf("leaf membership covers %d samples, want %d", counted, tree.Samples())
	}
	// The tree should have learned the function reasonably well on seen data.
	for i := 0; i < 10; i++ {
		x := []float64{float64(rng.Intn(4)), float64(rng.Intn(4))}
		pred, err := tree.Predict(x)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if math.IsNaN(pred) || math.IsInf(pred, 0) {
			t.Fatalf("non-finite prediction at %v", x)
		}
	}
}
