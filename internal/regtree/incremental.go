package regtree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// This file implements the incremental-update extension of the regression
// tree: a tree trained with TrainIncremental retains its training samples and
// the per-leaf sample membership, which lets Insert fold one new sample into
// the fitted tree — updating the covering leaf's mean and re-splitting the
// leaf once it accumulates enough samples — instead of retraining from
// scratch. The planner's speculative path uses it to turn per-speculation
// full refits into one-sample updates (see core.Params.SpeculativeRefit).
//
// The split structure above the touched leaf is frozen: upper splits are not
// revisited when a sample arrives, which is what makes Insert O(depth + leaf)
// instead of O(n log n). The resulting tree therefore differs from one
// retrained on the extended sample set; the ensemble layer relies only on
// statistical, not bitwise, agreement between the two (enforced by the
// planner's parity tests).

// incState is the retained training state of an incrementally updatable tree.
type incState struct {
	params Params // normalized induction parameters, reused by re-splits

	// cols is the column-major retained sample matrix (cols[f][i] is feature
	// f of sample i) — the same layout growInto consumes, so a leaf re-split
	// runs the regular induction machinery over the leaf's sample indices.
	cols    [][]float64
	targets []float64

	// leafSamples[node] lists the retained sample indices covered by that
	// leaf; nil for internal nodes.
	leafSamples [][]int32

	// colArena and sampleArena back the cols / leafSamples storage of cloned
	// and arena-trained trees, so one allocation per matrix replaces one per
	// column or leaf. Slices handed out of the arenas are capacity-capped, so
	// post-clone appends copy out instead of clobbering neighbors.
	colArena    []float64
	sampleArena []int32

	// scratch backs leaf re-splits; built lazily, never cloned.
	scratch *resplitScratch
}

// resplitScratch holds the buffers a leaf re-split reuses across Inserts.
type resplitScratch struct {
	indices []int
	split   *splitScratch
}

// cloneColSlack is the spare capacity (in samples) each cloned column and the
// target slice reserve, so the handful of Inserts a speculation clone receives
// append in place instead of reallocating every column.
const cloneColSlack = 8

// TrainIncremental fits a tree exactly like Train — identical structure,
// identical rng consumption — and additionally retains the training samples
// and per-leaf membership required by Insert and deep Clone. The retained
// matrix is a copy; the caller's rows are not referenced after return.
func TrainIncremental(features [][]float64, targets []float64, params Params, rng *rand.Rand) (*Tree, error) {
	t := &Tree{}
	if err := NewArena().TrainIncremental(t, features, targets, params, rng); err != nil {
		return nil, err
	}
	return t, nil
}

// TrainIncremental is the arena form of the package-level TrainIncremental:
// it fits dst through (*Arena).Train and rebuilds dst's retained incremental
// state in place, reusing the column and sample arenas of dst's previous fit.
func (a *Arena) TrainIncremental(dst *Tree, features [][]float64, targets []float64, params Params, rng *rand.Rand) error {
	inc := dst.inc
	if err := a.Train(dst, features, targets, params, rng); err != nil {
		return err
	}
	if inc == nil {
		inc = &incState{}
	}
	dst.inc = inc
	a.buildIncState(dst, inc, features, targets, params)
	return nil
}

// buildIncState populates the retained sample matrix and per-leaf membership
// of a freshly fitted tree. The columns land in the incState's reusable
// arena with cloneColSlack spare samples each; the leaf membership lists are
// capacity-capped subslices of the sample arena (appends past a leaf's
// retained count copy out, matching the clone contract).
func (a *Arena) buildIncState(t *Tree, inc *incState, features [][]float64, targets []float64, params Params) {
	n := len(targets)
	inc.params = params.withDefaults()

	stride := n + cloneColSlack
	if cap(inc.colArena) < t.numFeatures*stride {
		inc.colArena = make([]float64, t.numFeatures*stride)
	}
	arena := inc.colArena[:t.numFeatures*stride]
	if cap(inc.cols) < t.numFeatures {
		inc.cols = make([][]float64, t.numFeatures)
	}
	inc.cols = inc.cols[:t.numFeatures]
	for f := 0; f < t.numFeatures; f++ {
		col := arena[f*stride : f*stride+n : (f+1)*stride]
		for i, row := range features {
			col[i] = row[f]
		}
		inc.cols[f] = col
	}
	if cap(inc.targets) < n+cloneColSlack {
		inc.targets = make([]float64, 0, n+cloneColSlack)
	}
	inc.targets = append(inc.targets[:0], targets...)

	// Two-pass leaf bucketing: assign every sample to its covering leaf, then
	// carve the membership lists out of the sample arena in node order. The
	// per-leaf sample order stays ascending, as appends would produce.
	nodes := t.nodeCount()
	if cap(a.leafOf) < n {
		a.leafOf = make([]int32, n)
	}
	leafOf := a.leafOf[:n]
	if cap(inc.leafSamples) < nodes {
		inc.leafSamples = make([][]int32, nodes)
	}
	inc.leafSamples = inc.leafSamples[:nodes]
	for i := range inc.leafSamples {
		inc.leafSamples[i] = nil
	}
	if cap(inc.sampleArena) < n {
		inc.sampleArena = make([]int32, n)
	}
	sa := inc.sampleArena[:n]
	for i, row := range features {
		leafOf[i] = t.leafIndex(row)
	}
	if cap(a.leafCount) < nodes {
		a.leafCount = make([]int32, nodes)
	}
	counts := a.leafCount[:nodes]
	for i := range counts {
		counts[i] = 0
	}
	for _, leaf := range leafOf {
		counts[leaf]++
	}
	off := 0
	for node := range counts {
		if c := int(counts[node]); c > 0 {
			inc.leafSamples[node] = sa[off : off : off+c]
			off += c
		}
	}
	for i, leaf := range leafOf {
		inc.leafSamples[leaf] = append(inc.leafSamples[leaf], int32(i))
	}
}

// Incremental reports whether the tree retains the state needed by Insert.
func (t *Tree) Incremental() bool { return t != nil && t.inc != nil }

// Samples returns the number of retained training samples (0 for trees
// without incremental state).
func (t *Tree) Samples() int {
	if t == nil || t.inc == nil {
		return 0
	}
	return len(t.inc.targets)
}

// leafIndex walks the tree to the leaf covering x and returns its node index.
func (t *Tree) leafIndex(x []float64) int32 {
	nodes := t.nodes
	i := int32(0)
	for {
		nd := nodes[i]
		if nd.left < 0 {
			return i
		}
		if x[nd.feat] <= nd.thresh {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Insert folds one sample into a tree trained with TrainIncremental: the
// covering leaf's mean is updated with the new target, and once the leaf
// holds at least MinSamplesSplit samples (and splitting is still admissible
// under MaxDepth/MinLeafSize) the leaf is re-split in place by the regular
// induction machinery over its retained samples. Splits above the leaf are
// never revisited.
//
// Insert returns the index of the affected node — the former leaf, which
// after a re-split roots the regrown subtree. Predictions of feature vectors
// whose root-to-leaf walk does not pass through that node are unchanged (see
// HitsNode); the ensemble layer uses this for selective memo invalidation.
//
// rng is only consumed when Params.FeatureFraction < 1 (it drives the
// random-subspace draw of a re-split); it may be nil otherwise.
func (t *Tree) Insert(x []float64, y float64, rng *rand.Rand) (int, error) {
	if t == nil || t.nodeCount() == 0 {
		return 0, errors.New("regtree: insert into untrained tree")
	}
	inc := t.inc
	if inc == nil {
		return 0, errors.New("regtree: insert into a tree without incremental state (use TrainIncremental)")
	}
	if len(x) != t.numFeatures {
		return 0, fmt.Errorf("regtree: feature vector has %d columns, want %d", len(x), t.numFeatures)
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return 0, fmt.Errorf("regtree: target is not finite: %v", y)
	}
	if inc.params.FeatureFraction < 1 && rng == nil {
		return 0, errors.New("regtree: rng required when FeatureFraction < 1")
	}

	// Walk to the covering leaf, tracking its depth (root = 1) for the
	// MaxDepth gate of a potential re-split.
	nodes := t.nodes
	i := int32(0)
	depth := 1
	for {
		nd := nodes[i]
		if nd.left < 0 {
			break
		}
		if x[nd.feat] <= nd.thresh {
			i = nd.left
		} else {
			i = nd.right
		}
		depth++
	}

	// Retain the sample and attach it to the leaf.
	si := int32(len(inc.targets))
	for f := 0; f < t.numFeatures; f++ {
		inc.cols[f] = append(inc.cols[f], x[f])
	}
	inc.targets = append(inc.targets, y)
	samples := append(inc.leafSamples[i], si)
	inc.leafSamples[i] = samples

	// Recompute the leaf mean exactly from its samples (one short pass, which
	// also yields the constant-target check of the re-split gate).
	first := inc.targets[samples[0]]
	sum := 0.0
	constant := true
	for _, s := range samples {
		ys := inc.targets[s]
		sum += ys
		if ys != first {
			constant = false
		}
	}
	t.nodes[i].thresh = sum / float64(len(samples))

	// Same gating as growInto: too few samples, too deep, or constant targets
	// keep the leaf as-is. This is the common case — most inserts stop here.
	p := inc.params
	if len(samples) < p.MinSamplesSplit || (p.MaxDepth > 0 && depth > p.MaxDepth) || constant {
		return int(i), nil
	}
	t.resplitLeaf(i, depth, samples, rng)
	return int(i), nil
}

// resplitLeaf regrows the subtree rooted at the given leaf from its retained
// samples: growInto rewrites the leaf's node slot in place, appends any new
// descendants to the node arrays, and the retained samples are redistributed
// over the new leaves. When no admissible split exists the appended state is
// rolled back and the leaf (whose mean Insert already updated) is kept.
func (t *Tree) resplitLeaf(i int32, depth int, samples []int32, rng *rand.Rand) {
	inc := t.inc
	sc := inc.ensureScratch(len(inc.targets), t.numFeatures)
	idxs := sc.indices[:0]
	for _, s := range samples {
		idxs = append(idxs, int(s))
	}
	sc.indices = idxs

	oldLeaves, oldDepth := t.leaves, t.depth
	if !t.growInto(i, inc.cols, inc.targets, idxs, inc.params, rng, depth, sc.split) {
		// No admissible split: growInto re-wrote the leaf (same mean, already
		// up to date) and counted a phantom leaf; restore the counters.
		t.leaves, t.depth = oldLeaves, oldDepth
		return
	}
	// The old leaf is replaced by the subtree (whose leaves growInto counted).
	t.leaves--

	for len(inc.leafSamples) < t.nodeCount() {
		inc.leafSamples = append(inc.leafSamples, nil)
	}
	inc.leafSamples[i] = nil
	for _, s := range samples {
		leaf := t.descendSample(i, s)
		inc.leafSamples[leaf] = append(inc.leafSamples[leaf], s)
	}
}

// descendSample walks the retained sample s from the given node to its leaf.
func (t *Tree) descendSample(start int32, s int32) int32 {
	nodes := t.nodes
	cols := t.inc.cols
	i := start
	for {
		nd := nodes[i]
		if nd.left < 0 {
			return i
		}
		if cols[nd.feat][s] <= nd.thresh {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// ensureScratch returns the re-split scratch sized for n samples.
func (s *incState) ensureScratch(n, numFeatures int) *resplitScratch {
	if s.scratch == nil {
		s.scratch = &resplitScratch{}
	}
	sc := s.scratch
	if sc.split == nil || cap(sc.split.pairs) < n {
		sc.split = &splitScratch{
			pairs:     make([]featTarget, n+cloneColSlack),
			prefixSum: make([]float64, n+cloneColSlack+1),
			prefixSq:  make([]float64, n+cloneColSlack+1),
			features:  make([]int, numFeatures),
			vals:      make([]valueAgg, 0, maxDistinctForBuckets),
		}
	}
	return sc
}

// PathStep is one split constraint on the root-to-node path returned by
// AppendPathTo: points satisfying (x[Feature] <= Threshold) == Left stay on
// the path at that split.
type PathStep struct {
	Threshold float64
	Feature   int32
	Left      bool
}

// AppendPathTo appends the split constraints of the root-to-node path for
// the given node index to out and returns it, with ok=false when the index
// does not name a node of the tree. A feature vector reaches the node iff it
// satisfies every returned step — checking the steps directly is cheaper
// than a full root-to-leaf walk because the check can stop at the first
// violated constraint, which for points far from the node is the very first
// one. The bagging ensemble sweeps candidate sets with it to bound which
// predictions a one-sample update can have moved.
func (t *Tree) AppendPathTo(node int, out []PathStep) ([]PathStep, bool) {
	if t == nil || node < 0 || node >= t.nodeCount() {
		return out, false
	}
	return t.pathTo(0, int32(node), out)
}

// pathTo extends out with the steps from cur to target, depth-first.
func (t *Tree) pathTo(cur, target int32, out []PathStep) ([]PathStep, bool) {
	if cur == target {
		return out, true
	}
	nd := t.nodes[cur]
	if nd.left < 0 {
		return out, false
	}
	out = append(out, PathStep{Feature: nd.feat, Threshold: nd.thresh, Left: true})
	if res, ok := t.pathTo(nd.left, target, out); ok {
		return res, true
	}
	out[len(out)-1].Left = false
	if res, ok := t.pathTo(nd.right, target, out); ok {
		return res, true
	}
	return out[:len(out)-1], false
}

// HitsNode reports whether the prediction walk for x passes through the node
// with the given index. After an Insert that returned node n, the tree's
// prediction for x can only have changed when HitsNode(x, n) is true — the
// update touched nothing outside that node's region.
func (t *Tree) HitsNode(x []float64, target int) bool {
	nodes := t.nodes
	tgt := int32(target)
	i := int32(0)
	for {
		if i == tgt {
			return true
		}
		nd := nodes[i]
		if nd.left < 0 {
			return false
		}
		if x[nd.feat] <= nd.thresh {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Clone returns an independent deep copy of the tree, including any retained
// incremental state: the copy can Insert freely without affecting the
// original. Cloning reads the source without mutating it, so concurrent
// clones of one tree are safe.
func (t *Tree) Clone() *Tree {
	dst := &Tree{}
	t.CloneInto(dst)
	return dst
}

// CloneInto copies t into dst, reusing dst's existing storage where capacity
// allows — the node array is one slice copy, and the retained sample matrix
// and leaf membership land in per-tree arenas, so a clone of a typical
// planner-sized tree allocates nothing after the first use of a dst. Cloned
// columns reserve a few samples of slack, so the one-sample Inserts the
// speculation path applies right after cloning append in place.
func (t *Tree) CloneInto(dst *Tree) {
	if dst == t {
		return
	}
	dst.numFeatures = t.numFeatures
	dst.leaves = t.leaves
	dst.depth = t.depth
	dst.nodes = append(dst.nodes[:0], t.nodes...)
	if t.inc == nil {
		dst.inc = nil
		return
	}
	src := t.inc
	di := dst.inc
	if di == nil {
		di = &incState{}
		dst.inc = di
	}
	di.params = src.params
	n := len(src.targets)

	stride := n + cloneColSlack
	if cap(di.colArena) < t.numFeatures*stride {
		di.colArena = make([]float64, t.numFeatures*stride)
	}
	arena := di.colArena[:t.numFeatures*stride]
	if cap(di.cols) < t.numFeatures {
		di.cols = make([][]float64, t.numFeatures)
	}
	di.cols = di.cols[:t.numFeatures]
	for f := 0; f < t.numFeatures; f++ {
		col := arena[f*stride : f*stride+n : (f+1)*stride]
		copy(col, src.cols[f])
		di.cols[f] = col
	}
	di.targets = append(di.targets[:0], src.targets...)

	if cap(di.sampleArena) < n {
		di.sampleArena = make([]int32, n)
	}
	sa := di.sampleArena[:0]
	if cap(di.leafSamples) < t.nodeCount() {
		di.leafSamples = make([][]int32, t.nodeCount())
	}
	di.leafSamples = di.leafSamples[:t.nodeCount()]
	for ni := range di.leafSamples {
		s := src.leafSamples[ni]
		if s == nil {
			di.leafSamples[ni] = nil
			continue
		}
		start := len(sa)
		sa = append(sa, s...)
		di.leafSamples[ni] = sa[start:len(sa):len(sa)]
	}
	di.sampleArena = sa[:cap(sa)]
}
