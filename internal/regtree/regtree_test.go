package regtree

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrainValidation(t *testing.T) {
	tests := []struct {
		name     string
		features [][]float64
		targets  []float64
		params   Params
		rng      *rand.Rand
		wantErr  error
	}{
		{name: "empty data", features: nil, targets: nil, wantErr: ErrNoTrainingData},
		{name: "length mismatch", features: [][]float64{{1}}, targets: []float64{1, 2}},
		{name: "empty rows", features: [][]float64{{}}, targets: []float64{1}},
		{name: "ragged rows", features: [][]float64{{1, 2}, {1}}, targets: []float64{1, 2}},
		{name: "nan target", features: [][]float64{{1}}, targets: []float64{math.NaN()}},
		{name: "inf target", features: [][]float64{{1}}, targets: []float64{math.Inf(1)}},
		{
			name:     "feature fraction without rng",
			features: [][]float64{{1, 2}, {3, 4}},
			targets:  []float64{1, 2},
			params:   Params{FeatureFraction: 0.5},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Train(tt.features, tt.targets, tt.params, tt.rng)
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSingleSampleTreePredictsConstant(t *testing.T) {
	tree, err := Train([][]float64{{1, 2, 3}}, []float64{42}, Params{}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	got, err := tree.Predict([]float64{9, 9, 9})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	if got != 42 {
		t.Errorf("Predict = %v, want 42", got)
	}
	if tree.Leaves() != 1 || tree.Depth() != 1 {
		t.Errorf("Leaves/Depth = %d/%d, want 1/1", tree.Leaves(), tree.Depth())
	}
}

func TestTreeFitsTrainingDataExactly(t *testing.T) {
	// Distinct feature vectors with distinct targets: a fully grown tree must
	// reproduce the training targets exactly.
	features := [][]float64{
		{1, 10}, {1, 20}, {2, 10}, {2, 20}, {3, 10}, {3, 20},
	}
	targets := []float64{5, 7, 11, 13, 17, 19}
	tree, err := Train(features, targets, Params{}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	for i, x := range features {
		got, err := tree.Predict(x)
		if err != nil {
			t.Fatalf("Predict error: %v", err)
		}
		if got != targets[i] {
			t.Errorf("Predict(%v) = %v, want %v", x, got, targets[i])
		}
	}
}

func TestTreeSplitsOnInformativeFeature(t *testing.T) {
	// Feature 0 is informative, feature 1 is pure noise with a constant value.
	features := [][]float64{
		{0, 5}, {1, 5}, {2, 5}, {3, 5},
		{10, 5}, {11, 5}, {12, 5}, {13, 5},
	}
	targets := []float64{1, 1, 1, 1, 100, 100, 100, 100}
	tree, err := Train(features, targets, Params{MaxDepth: 1}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	low, err := tree.Predict([]float64{2, 5})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	high, err := tree.Predict([]float64{12, 5})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	if low != 1 || high != 100 {
		t.Errorf("Predict low/high = %v/%v, want 1/100", low, high)
	}
}

func TestMaxDepthAndMinLeafConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	features := make([][]float64, n)
	targets := make([]float64, n)
	for i := range features {
		features[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		targets[i] = features[i][0]*3 + features[i][1]
	}
	tree, err := Train(features, targets, Params{MaxDepth: 3, MinLeafSize: 10}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	if tree.Depth() > 4 {
		t.Errorf("Depth = %d, want <= 4 (MaxDepth 3 + leaf level)", tree.Depth())
	}
	if tree.Leaves() > 8 {
		t.Errorf("Leaves = %d, want <= 8 for depth-3 tree", tree.Leaves())
	}
}

func TestConstantTargetsYieldSingleLeaf(t *testing.T) {
	features := [][]float64{{1}, {2}, {3}, {4}}
	targets := []float64{7, 7, 7, 7}
	tree, err := Train(features, targets, Params{}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	if tree.Leaves() != 1 {
		t.Errorf("Leaves = %d, want 1 for constant targets", tree.Leaves())
	}
}

func TestPredictValidation(t *testing.T) {
	var nilTree *Tree
	if _, err := nilTree.Predict([]float64{1}); err == nil {
		t.Error("predict on nil tree should error")
	}
	tree, err := Train([][]float64{{1, 2}}, []float64{3}, Params{}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	if _, err := tree.Predict([]float64{1}); err == nil {
		t.Error("wrong arity should error")
	}
	if tree.NumFeatures() != 2 {
		t.Errorf("NumFeatures = %d, want 2", tree.NumFeatures())
	}
}

func TestFeatureFractionUsesSubsetOfFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	features := [][]float64{
		{0, 0}, {1, 1}, {2, 2}, {3, 3}, {10, 10}, {11, 11}, {12, 12}, {13, 13},
	}
	targets := []float64{1, 1, 1, 1, 100, 100, 100, 100}
	tree, err := Train(features, targets, Params{FeatureFraction: 0.5}, rng)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	// With either feature the split is learnable, so predictions must still
	// separate the two groups.
	low, _ := tree.Predict([]float64{1, 1})
	high, _ := tree.Predict([]float64{12, 12})
	if low >= high {
		t.Errorf("low %v not below high %v", low, high)
	}
}

func TestTreeReducesErrorVersusGlobalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	features := make([][]float64, n)
	targets := make([]float64, n)
	for i := range features {
		x0 := rng.Float64() * 4
		x1 := rng.Float64() * 4
		features[i] = []float64{x0, x1}
		targets[i] = math.Sin(x0)*10 + x1*x1 + rng.NormFloat64()*0.1
	}
	tree, err := Train(features, targets, Params{MinLeafSize: 5}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	mean := 0.0
	for _, y := range targets {
		mean += y
	}
	mean /= float64(n)
	var sseTree, sseMean float64
	for i, x := range features {
		pred, err := tree.Predict(x)
		if err != nil {
			t.Fatalf("Predict error: %v", err)
		}
		sseTree += (pred - targets[i]) * (pred - targets[i])
		sseMean += (mean - targets[i]) * (mean - targets[i])
	}
	if sseTree > sseMean/4 {
		t.Errorf("tree SSE %v not substantially below mean-predictor SSE %v", sseTree, sseMean)
	}
}

// TestQuickPredictionWithinTargetRange checks the CART invariant that every
// prediction is a mean of training targets and therefore lies within their
// range.
func TestQuickPredictionWithinTargetRange(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		features := make([][]float64, n)
		targets := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range features {
			features[i] = []float64{rng.Float64() * 100, float64(rng.Intn(5)), rng.NormFloat64()}
			targets[i] = rng.NormFloat64() * 50
			if targets[i] < lo {
				lo = targets[i]
			}
			if targets[i] > hi {
				hi = targets[i]
			}
		}
		tree, err := Train(features, targets, Params{MinLeafSize: 1 + rng.Intn(3)}, nil)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			x := []float64{rng.Float64() * 200, float64(rng.Intn(8)), rng.NormFloat64() * 2}
			pred, err := tree.Predict(x)
			if err != nil {
				return false
			}
			if pred < lo-1e-9 || pred > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("prediction range property failed: %v", err)
	}
}

// transpose turns row-major feature rows into the column-major matrix
// consumed by PredictBatch.
func transpose(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	cols := make([][]float64, len(rows[0]))
	for f := range cols {
		cols[f] = make([]float64, len(rows))
		for i, row := range rows {
			cols[f][i] = row[f]
		}
	}
	return cols
}

func TestPredictBatchMatchesScalarBitwise(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 2
		features := make([][]float64, n)
		targets := make([]float64, n)
		for i := range features {
			features[i] = []float64{rng.Float64() * 100, float64(rng.Intn(4)), rng.NormFloat64()}
			targets[i] = rng.NormFloat64() * 50
		}
		tree, err := Train(features, targets, Params{MinLeafSize: 1 + rng.Intn(2)}, nil)
		if err != nil {
			return false
		}
		queries := make([][]float64, 50)
		for i := range queries {
			queries[i] = []float64{rng.Float64() * 200, float64(rng.Intn(6)), rng.NormFloat64() * 2}
		}
		out := make([]float64, len(queries))
		if err := tree.PredictBatch(transpose(queries), out); err != nil {
			return false
		}
		for i, q := range queries {
			want, err := tree.Predict(q)
			if err != nil || out[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("batch/scalar equivalence property failed: %v", err)
	}
}

func TestPredictBatchValidation(t *testing.T) {
	tree, err := Train([][]float64{{1, 2}, {3, 4}, {5, 6}}, []float64{1, 2, 3}, Params{}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	var untrained *Tree
	if err := untrained.PredictBatch([][]float64{{1}, {2}}, make([]float64, 1)); err == nil {
		t.Error("PredictBatch on nil tree: expected error, got nil")
	}
	if err := tree.PredictBatch([][]float64{{1}}, make([]float64, 1)); err == nil {
		t.Error("PredictBatch with wrong column count: expected error, got nil")
	}
	if err := tree.PredictBatch([][]float64{{1, 2}, {3}}, make([]float64, 2)); err == nil {
		t.Error("PredictBatch with ragged columns: expected error, got nil")
	}
	if err := tree.PredictBatch([][]float64{{1, 2}, {3, 4}}, make([]float64, 3)); err == nil {
		t.Error("PredictBatch with short columns: expected error, got nil")
	}
}

func TestPredictBatchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	features := make([][]float64, 64)
	targets := make([]float64, 64)
	for i := range features {
		features[i] = []float64{rng.Float64() * 10, float64(rng.Intn(4))}
		targets[i] = rng.NormFloat64()
	}
	tree, err := Train(features, targets, Params{}, nil)
	if err != nil {
		t.Fatalf("Train error: %v", err)
	}
	cols := transpose(features)
	out := make([]float64, len(features))
	allocs := testing.AllocsPerRun(100, func() {
		if err := tree.PredictBatch(cols, out); err != nil {
			t.Fatalf("PredictBatch error: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("PredictBatch allocations per sweep = %v, want 0", allocs)
	}
}
