package regtree

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// trainedTree fits a non-trivial tree on a deterministic synthetic surface.
func trainedTree(t *testing.T) (*Tree, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	features := make([][]float64, 200)
	targets := make([]float64, len(features))
	for i := range features {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4, float64(rng.Intn(3))}
		features[i] = x
		targets[i] = x[0]*x[0] - 2*x[1] + 3*x[2]
	}
	tree, err := Train(features, targets, Params{}, nil)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return tree, features
}

func TestTreeStateRoundTripIsBitwise(t *testing.T) {
	tree, features := trainedTree(t)
	state, err := tree.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	// Through JSON, as campaign snapshots store it.
	data, err := json.Marshal(state)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded TreeState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored, err := FromState(decoded)
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	if restored.Leaves() != tree.Leaves() || restored.Depth() != tree.Depth() || restored.NumFeatures() != tree.NumFeatures() {
		t.Errorf("restored shape %d/%d/%d, want %d/%d/%d",
			restored.Leaves(), restored.Depth(), restored.NumFeatures(),
			tree.Leaves(), tree.Depth(), tree.NumFeatures())
	}
	for i, x := range features {
		if got, want := restored.PredictUnchecked(x), tree.PredictUnchecked(x); got != want {
			t.Fatalf("prediction %d = %v, want bitwise %v", i, got, want)
		}
	}
}

func TestTreeStateRejectsUntrained(t *testing.T) {
	if _, err := (&Tree{}).State(); err == nil {
		t.Error("untrained tree serialized")
	}
}

func TestFromStateRejectsCorruptedGraphs(t *testing.T) {
	tree, _ := trainedTree(t)
	good, err := tree.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	corrupt := func(mutate func(s *TreeState)) TreeState {
		s := TreeState{NumFeatures: good.NumFeatures, Leaves: good.Leaves, Depth: good.Depth}
		s.Nodes = append([]NodeState(nil), good.Nodes...)
		mutate(&s)
		return s
	}
	cases := map[string]TreeState{
		"no nodes":     {NumFeatures: 2},
		"zero feats":   corrupt(func(s *TreeState) { s.NumFeatures = 0 }),
		"child oob":    corrupt(func(s *TreeState) { s.Nodes[0].Right = int32(len(s.Nodes)) }),
		"child cycle":  corrupt(func(s *TreeState) { s.Nodes[0].Left = 0 }),
		"feature oob":  corrupt(func(s *TreeState) { s.Nodes[0].Feature = int32(s.NumFeatures) }),
		"nan split":    corrupt(func(s *TreeState) { s.Nodes[0].Threshold = math.NaN() }),
		"nan leaf":     corrupt(func(s *TreeState) { s.Nodes[len(s.Nodes)-1].Value = math.NaN() }),
		"negative rgt": corrupt(func(s *TreeState) { s.Nodes[0].Right = -2 }),
	}
	for name, s := range cases {
		if _, err := FromState(s); err == nil {
			t.Errorf("corrupted state %q accepted", name)
		}
	}
}
