// Package regtree implements CART-style regression trees. They are the base
// learners of the bagging ensemble that Lynceus uses as its black-box cost
// model (paper §3, "Regression model"): each tree is trained on a random
// sub-sample of the profiled configurations and predicts the job cost from
// the configuration's feature vector.
package regtree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrNoTrainingData is returned when a tree is trained on an empty dataset.
var ErrNoTrainingData = errors.New("regtree: no training data")

// Params configures tree induction. The zero value is normalized by
// (*Params).withDefaults to a fully grown tree that considers every feature
// at every split.
type Params struct {
	// MaxDepth bounds the depth of the tree; 0 means unbounded.
	MaxDepth int
	// MinLeafSize is the minimum number of samples per leaf; values below 1
	// are treated as 1.
	MinLeafSize int
	// MinSamplesSplit is the minimum number of samples required to attempt a
	// split; values below 2 are treated as 2.
	MinSamplesSplit int
	// FeatureFraction is the fraction of features examined at each split
	// (random-subspace randomization). Values outside (0,1] are treated as 1.
	FeatureFraction float64
}

func (p Params) withDefaults() Params {
	if p.MinLeafSize < 1 {
		p.MinLeafSize = 1
	}
	if p.MinSamplesSplit < 2 {
		p.MinSamplesSplit = 2
	}
	if p.FeatureFraction <= 0 || p.FeatureFraction > 1 {
		p.FeatureFraction = 1
	}
	return p
}

// node is a tree node; leaves carry the mean target of the samples they
// cover, internal nodes carry an axis-aligned split.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	leaf      bool
	value     float64
}

// Tree is a trained regression tree.
type Tree struct {
	root        *node
	numFeatures int
	leaves      int
	depth       int
}

// Train fits a regression tree to the given feature matrix and targets. Every
// row of features must have the same length, and len(features) must equal
// len(targets). The rng is only used when Params.FeatureFraction < 1; it may
// be nil otherwise.
func Train(features [][]float64, targets []float64, params Params, rng *rand.Rand) (*Tree, error) {
	if len(features) == 0 {
		return nil, ErrNoTrainingData
	}
	if len(features) != len(targets) {
		return nil, fmt.Errorf("regtree: %d feature rows but %d targets", len(features), len(targets))
	}
	numFeatures := len(features[0])
	if numFeatures == 0 {
		return nil, errors.New("regtree: feature rows are empty")
	}
	for i, row := range features {
		if len(row) != numFeatures {
			return nil, fmt.Errorf("regtree: feature row %d has %d columns, want %d", i, len(row), numFeatures)
		}
	}
	for i, y := range targets {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("regtree: target %d is not finite: %v", i, y)
		}
	}
	params = params.withDefaults()
	if params.FeatureFraction < 1 && rng == nil {
		return nil, errors.New("regtree: rng required when FeatureFraction < 1")
	}

	indices := make([]int, len(features))
	for i := range indices {
		indices[i] = i
	}
	t := &Tree{numFeatures: numFeatures}
	t.root = t.grow(features, targets, indices, params, rng, 1)
	return t, nil
}

// grow recursively builds the tree over the samples referenced by indices.
func (t *Tree) grow(features [][]float64, targets []float64, indices []int, params Params, rng *rand.Rand, depth int) *node {
	if depth > t.depth {
		t.depth = depth
	}
	mean := meanOf(targets, indices)

	mustLeaf := len(indices) < params.MinSamplesSplit ||
		(params.MaxDepth > 0 && depth > params.MaxDepth) ||
		isConstant(targets, indices)
	if !mustLeaf {
		if feature, threshold, ok := t.bestSplit(features, targets, indices, params, rng); ok {
			left, right := partition(features, indices, feature, threshold)
			if len(left) >= params.MinLeafSize && len(right) >= params.MinLeafSize {
				return &node{
					feature:   feature,
					threshold: threshold,
					left:      t.grow(features, targets, left, params, rng, depth+1),
					right:     t.grow(features, targets, right, params, rng, depth+1),
				}
			}
		}
	}
	t.leaves++
	return &node{leaf: true, value: mean}
}

// bestSplit finds the axis-aligned split that minimizes the total sum of
// squared errors of the two children. It returns ok=false when no valid split
// exists (e.g. all candidate features are constant).
func (t *Tree) bestSplit(features [][]float64, targets []float64, indices []int, params Params, rng *rand.Rand) (int, float64, bool) {
	candidates := t.candidateFeatures(params, rng)

	bestSSE := math.Inf(1)
	bestFeature := -1
	bestThreshold := 0.0

	sorted := make([]int, len(indices))
	for _, f := range candidates {
		copy(sorted, indices)
		sort.Slice(sorted, func(i, j int) bool { return features[sorted[i]][f] < features[sorted[j]][f] })

		// Prefix sums of targets over the sorted order enable O(1) SSE
		// evaluation per split position.
		n := len(sorted)
		prefixSum := make([]float64, n+1)
		prefixSq := make([]float64, n+1)
		for i, idx := range sorted {
			y := targets[idx]
			prefixSum[i+1] = prefixSum[i] + y
			prefixSq[i+1] = prefixSq[i] + y*y
		}

		for i := params.MinLeafSize; i <= n-params.MinLeafSize; i++ {
			lo := features[sorted[i-1]][f]
			hi := features[sorted[i]][f]
			if lo == hi {
				continue
			}
			leftSSE := sse(prefixSum[i], prefixSq[i], float64(i))
			rightSSE := sse(prefixSum[n]-prefixSum[i], prefixSq[n]-prefixSq[i], float64(n-i))
			total := leftSSE + rightSSE
			if total < bestSSE {
				bestSSE = total
				bestFeature = f
				bestThreshold = (lo + hi) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, false
	}
	return bestFeature, bestThreshold, true
}

// candidateFeatures returns the features examined at a split, applying the
// random-subspace fraction when configured.
func (t *Tree) candidateFeatures(params Params, rng *rand.Rand) []int {
	all := make([]int, t.numFeatures)
	for i := range all {
		all[i] = i
	}
	if params.FeatureFraction >= 1 {
		return all
	}
	k := int(math.Ceil(params.FeatureFraction * float64(t.numFeatures)))
	if k < 1 {
		k = 1
	}
	if k >= t.numFeatures {
		return all
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	picked := all[:k]
	sort.Ints(picked)
	return picked
}

// sse computes sum((y - mean)^2) from the sum and sum of squares of a group.
func sse(sum, sumSq, count float64) float64 {
	if count == 0 {
		return 0
	}
	v := sumSq - sum*sum/count
	if v < 0 {
		// Guard against tiny negative values from floating point cancellation.
		return 0
	}
	return v
}

func partition(features [][]float64, indices []int, feature int, threshold float64) (left, right []int) {
	left = make([]int, 0, len(indices))
	right = make([]int, 0, len(indices))
	for _, idx := range indices {
		if features[idx][feature] <= threshold {
			left = append(left, idx)
		} else {
			right = append(right, idx)
		}
	}
	return left, right
}

func meanOf(targets []float64, indices []int) float64 {
	if len(indices) == 0 {
		return 0
	}
	sum := 0.0
	for _, idx := range indices {
		sum += targets[idx]
	}
	return sum / float64(len(indices))
}

func isConstant(targets []float64, indices []int) bool {
	for _, idx := range indices[1:] {
		if targets[idx] != targets[indices[0]] {
			return false
		}
	}
	return true
}

// Predict returns the tree's estimate for the given feature vector.
func (t *Tree) Predict(x []float64) (float64, error) {
	if t == nil || t.root == nil {
		return 0, errors.New("regtree: predict on untrained tree")
	}
	if len(x) != t.numFeatures {
		return 0, fmt.Errorf("regtree: feature vector has %d columns, want %d", len(x), t.numFeatures)
	}
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value, nil
}

// NumFeatures returns the number of input features the tree was trained on.
func (t *Tree) NumFeatures() int { return t.numFeatures }

// Leaves returns the number of leaves in the tree.
func (t *Tree) Leaves() int { return t.leaves }

// Depth returns the depth of the tree (a single leaf has depth 1).
func (t *Tree) Depth() int { return t.depth }
