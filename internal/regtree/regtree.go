// Package regtree implements CART-style regression trees. They are the base
// learners of the bagging ensemble that Lynceus uses as its black-box cost
// model (paper §3, "Regression model"): each tree is trained on a random
// sub-sample of the profiled configurations and predicts the job cost from
// the configuration's feature vector.
package regtree

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
)

// ErrNoTrainingData is returned when a tree is trained on an empty dataset.
var ErrNoTrainingData = errors.New("regtree: no training data")

// Params configures tree induction. The zero value is normalized by
// (*Params).withDefaults to a fully grown tree that considers every feature
// at every split.
type Params struct {
	// MaxDepth bounds the depth of the tree; 0 means unbounded.
	MaxDepth int
	// MinLeafSize is the minimum number of samples per leaf; values below 1
	// are treated as 1.
	MinLeafSize int
	// MinSamplesSplit is the minimum number of samples required to attempt a
	// split; values below 2 are treated as 2.
	MinSamplesSplit int
	// FeatureFraction is the fraction of features examined at each split
	// (random-subspace randomization). Values outside (0,1] are treated as 1.
	FeatureFraction float64
}

func (p Params) withDefaults() Params {
	if p.MinLeafSize < 1 {
		p.MinLeafSize = 1
	}
	if p.MinSamplesSplit < 2 {
		p.MinSamplesSplit = 2
	}
	if p.FeatureFraction <= 0 || p.FeatureFraction > 1 {
		p.FeatureFraction = 1
	}
	return p
}

// node is one flattened tree node, packed into 24 bytes so a traversal step
// touches a single cache line. The leaf value shares storage with the split
// threshold — a node is never both — which is what keeps the struct this
// small: left < 0 marks a leaf whose value lives in thresh; internal nodes
// carry the split (feat, thresh) and both child indices. The left child is
// explicit rather than implied by preorder because a leaf re-split (see
// resplitLeaf) regrows a subtree at an interior slot with its descendants
// appended at the end of the array.
type node struct {
	thresh float64 // split threshold; the leaf value when left < 0
	feat   int32   // feature index of the split; unused on leaves
	left   int32   // left-child index; < 0 marks a leaf
	right  int32   // right-child index; unused on leaves
}

// Tree is a trained regression tree in a flattened layout: nodes[i] is one
// node, emitted in preorder by training (children always follow their
// parent). Predictions walk an index chain through one contiguous array of
// packed 24-byte nodes instead of chasing heap pointers, so every traversal
// step costs one cache line. (An earlier structure-of-arrays split of the
// node fields touched four lines per step and measurably lost to this
// layout on full-space sweeps.)
//
// Trees are grown directly into the array — there is no intermediate
// pointer representation — so an Arena-backed refit reuses the array of the
// previous fit and allocates nothing in steady state.
type Tree struct {
	nodes []node

	numFeatures int
	leaves      int
	depth       int

	// inc holds the retained training state of incrementally updatable trees
	// (see TrainIncremental); nil for trees fitted with Train.
	inc *incState
}

// nodeCount returns the number of nodes of the flattened tree.
func (t *Tree) nodeCount() int { return len(t.nodes) }

// appendNode appends one zeroed node and returns its index. The entry is
// written explicitly because reused array capacity still holds the previous
// fit's nodes.
func (t *Tree) appendNode() int32 {
	i := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{})
	return i
}

// reset clears the fitted state while keeping the array capacity for reuse.
func (t *Tree) reset(numFeatures int) {
	t.nodes = t.nodes[:0]
	t.numFeatures = numFeatures
	t.leaves = 0
	t.depth = 0
	t.inc = nil
}

// Arena owns the reusable training buffers of one trainer: the split scratch
// (including the column-major transposed sample matrix) and the sample-index
// permutation. Training through an arena reuses these across fits, so a
// steady-state refit of same-sized data allocates nothing beyond first-time
// node-array growth. An Arena is not safe for concurrent use; the trained
// trees never retain arena memory, so the trees themselves are.
type Arena struct {
	scratch splitScratch
	indices []int

	// leafOf and leafCount back TrainIncremental's per-leaf sample
	// bucketing (see buildIncState).
	leafOf    []int32
	leafCount []int32
}

// NewArena returns an empty training arena.
func NewArena() *Arena { return &Arena{} }

// ensure sizes the arena for a training set of the given shape, reusing
// existing capacity where possible. The column headers are rebuilt every call
// because the sample count (and therefore the column stride) changes.
func (a *Arena) ensure(samples, numFeatures int) {
	s := &a.scratch
	if cap(s.colsFlat) < samples*numFeatures {
		s.colsFlat = make([]float64, samples*numFeatures)
	}
	flat := s.colsFlat[:samples*numFeatures]
	if cap(s.cols) < numFeatures {
		s.cols = make([][]float64, numFeatures)
	}
	s.cols = s.cols[:numFeatures]
	for f := range s.cols {
		s.cols[f] = flat[f*samples : (f+1)*samples]
	}
	if cap(s.pairs) < samples {
		s.pairs = make([]featTarget, samples)
		s.prefixSum = make([]float64, samples+1)
		s.prefixSq = make([]float64, samples+1)
	}
	if cap(s.features) < numFeatures {
		s.features = make([]int, numFeatures)
	}
	if s.vals == nil {
		s.vals = make([]valueAgg, 0, maxDistinctForBuckets)
	}
	if cap(a.indices) < samples {
		a.indices = make([]int, samples)
	}
}

// Train fits a regression tree to the given feature matrix and targets. Every
// row of features must have the same length, and len(features) must equal
// len(targets). The rng is only used when Params.FeatureFraction < 1; it may
// be nil otherwise.
func Train(features [][]float64, targets []float64, params Params, rng *rand.Rand) (*Tree, error) {
	t := &Tree{}
	if err := NewArena().Train(t, features, targets, params, rng); err != nil {
		return nil, err
	}
	return t, nil
}

// Train fits dst to the given samples exactly like the package-level Train —
// identical structure, identical rng consumption — reusing both the arena's
// scratch and dst's node arrays. dst's previous fitted state is replaced.
func (a *Arena) Train(dst *Tree, features [][]float64, targets []float64, params Params, rng *rand.Rand) error {
	if len(features) == 0 {
		return ErrNoTrainingData
	}
	if len(features) != len(targets) {
		return fmt.Errorf("regtree: %d feature rows but %d targets", len(features), len(targets))
	}
	numFeatures := len(features[0])
	if numFeatures == 0 {
		return errors.New("regtree: feature rows are empty")
	}
	for i, row := range features {
		if len(row) != numFeatures {
			return fmt.Errorf("regtree: feature row %d has %d columns, want %d", i, len(row), numFeatures)
		}
	}
	for i, y := range targets {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return fmt.Errorf("regtree: target %d is not finite: %v", i, y)
		}
	}
	params = params.withDefaults()
	if params.FeatureFraction < 1 && rng == nil {
		return errors.New("regtree: rng required when FeatureFraction < 1")
	}

	a.ensure(len(features), numFeatures)
	indices := a.indices[:len(features)]
	for i := range indices {
		indices[i] = i
	}
	// Transpose the features once: the split scans read one feature across
	// many samples, so a column-major layout turns every read into a
	// contiguous-slice access instead of a row-pointer chase.
	for f := 0; f < numFeatures; f++ {
		col := a.scratch.cols[f]
		for i, row := range features {
			col[i] = row[f]
		}
	}
	dst.reset(numFeatures)
	root := dst.appendNode()
	dst.growInto(root, a.scratch.cols, targets, indices, params, rng, 1, &a.scratch)
	return nil
}

// growInto fills the (already appended) node at index `at` with the subtree
// covering the samples referenced by indices, appending any descendants to
// the node arrays. The emitted order is preorder — each internal node is
// immediately followed by its full left subtree, then its right subtree —
// which is the layout the v1 snapshot format pins. It reports whether the
// node became a split (false: it is a leaf).
func (t *Tree) growInto(at int32, cols [][]float64, targets []float64, indices []int, params Params, rng *rand.Rand, depth int, scratch *splitScratch) bool {
	if depth > t.depth {
		t.depth = depth
	}
	// One pass computes the leaf mean and the constant-target check.
	first := targets[indices[0]]
	sum := 0.0
	constant := true
	for _, idx := range indices {
		y := targets[idx]
		sum += y
		if y != first {
			constant = false
		}
	}
	mean := sum / float64(len(indices))

	mustLeaf := len(indices) < params.MinSamplesSplit ||
		(params.MaxDepth > 0 && depth > params.MaxDepth) ||
		constant
	if !mustLeaf {
		if feature, threshold, ok := t.bestSplit(cols, targets, indices, params, rng, scratch); ok {
			left, right := partition(cols[feature], indices, threshold)
			if len(left) >= params.MinLeafSize && len(right) >= params.MinLeafSize {
				li := t.appendNode()
				t.growInto(li, cols, targets, left, params, rng, depth+1, scratch)
				ri := t.appendNode()
				t.growInto(ri, cols, targets, right, params, rng, depth+1, scratch)
				t.nodes[at] = node{thresh: threshold, feat: int32(feature), left: li, right: ri}
				return true
			}
		}
	}
	t.nodes[at] = node{thresh: mean, left: -1}
	t.leaves++
	return false
}

// featTarget pairs one sample's value along the split feature with its
// target, so bestSplit sorts a flat contiguous slice instead of chasing an
// index indirection through a reflection-based comparator.
type featTarget struct {
	v, y float64
}

// valueAgg aggregates the targets of every sample sharing one value of the
// split feature: configuration dimensions are discrete with few distinct
// values, so grouping replaces an O(n log n) sort with an O(n·k) scan.
type valueAgg struct {
	v     float64
	sum   float64
	sq    float64
	count int
}

// maxDistinctForBuckets bounds the distinct-value groups tracked by the
// bucketed split scan; features with higher cardinality (e.g. continuous
// ones) fall back to the sort-based scan.
const maxDistinctForBuckets = 32

// splitScratch holds the buffers bestSplit reuses across every node and
// feature of one Train call, avoiding per-node allocations in the planner's
// hottest loop (the speculative refits of the bagging ensemble).
type splitScratch struct {
	pairs     []featTarget
	prefixSum []float64
	prefixSq  []float64
	features  []int
	vals      []valueAgg
	cols      [][]float64
	colsFlat  []float64
}

func newSplitScratch(samples, numFeatures int) *splitScratch {
	flat := make([]float64, samples*numFeatures)
	cols := make([][]float64, numFeatures)
	for f := range cols {
		cols[f] = flat[f*samples : (f+1)*samples]
	}
	return &splitScratch{
		pairs:     make([]featTarget, samples),
		prefixSum: make([]float64, samples+1),
		prefixSq:  make([]float64, samples+1),
		features:  make([]int, numFeatures),
		vals:      make([]valueAgg, 0, maxDistinctForBuckets),
		cols:      cols,
		colsFlat:  flat,
	}
}

// bestSplit finds the axis-aligned split that minimizes the total sum of
// squared errors of the two children. It returns ok=false when no valid split
// exists (e.g. all candidate features are constant).
//
// The chosen split only depends on the set of (value, target) pairs on each
// side of a threshold — thresholds sit between distinct feature values, so
// the order of ties within the sort never changes the outcome.
func (t *Tree) bestSplit(cols [][]float64, targets []float64, indices []int, params Params, rng *rand.Rand, scratch *splitScratch) (int, float64, bool) {
	candidates := t.candidateFeatures(params, rng, scratch)

	bestSSE := math.Inf(1)
	bestFeature := -1
	bestThreshold := 0.0

	for _, f := range candidates {
		threshold, total, ok, handled := bucketedSplit(cols[f], targets, indices, params, scratch)
		if !handled {
			threshold, total, ok = sortedSplit(cols[f], targets, indices, params, scratch)
		}
		if ok && total < bestSSE {
			bestSSE = total
			bestFeature = f
			bestThreshold = threshold
		}
	}
	if bestFeature < 0 {
		return 0, 0, false
	}
	return bestFeature, bestThreshold, true
}

// bucketedSplit scans one feature by grouping the samples per distinct value
// (configuration dimensions are small discrete sets), which evaluates the
// same candidate thresholds as the sort-based scan without sorting the
// samples. handled=false means the feature has more than
// maxDistinctForBuckets distinct values and the caller must use the
// sort-based scan; ok=false (with handled=true) means no threshold satisfies
// the leaf-size constraint.
func bucketedSplit(col []float64, targets []float64, indices []int, params Params, scratch *splitScratch) (threshold, bestSSE float64, ok, handled bool) {
	vals := scratch.vals[:0]
	for _, idx := range indices {
		v := col[idx]
		y := targets[idx]
		found := false
		for vi := range vals {
			if vals[vi].v == v {
				vals[vi].sum += y
				vals[vi].sq += y * y
				vals[vi].count++
				found = true
				break
			}
		}
		if !found {
			if len(vals) == maxDistinctForBuckets {
				return 0, 0, false, false
			}
			vals = append(vals, valueAgg{v: v, sum: y, sq: y * y, count: 1})
		}
	}
	slices.SortFunc(vals, func(a, b valueAgg) int { return cmp.Compare(a.v, b.v) })

	n := len(indices)
	totalSum, totalSq := 0.0, 0.0
	for _, a := range vals {
		totalSum += a.sum
		totalSq += a.sq
	}

	bestSSE = math.Inf(1)
	leftSum, leftSq := 0.0, 0.0
	leftCount := 0
	for j := 0; j < len(vals)-1; j++ {
		leftSum += vals[j].sum
		leftSq += vals[j].sq
		leftCount += vals[j].count
		if leftCount < params.MinLeafSize || n-leftCount < params.MinLeafSize {
			continue
		}
		total := sse(leftSum, leftSq, float64(leftCount)) +
			sse(totalSum-leftSum, totalSq-leftSq, float64(n-leftCount))
		if total < bestSSE {
			bestSSE = total
			threshold = (vals[j].v + vals[j+1].v) / 2
			ok = true
		}
	}
	return threshold, bestSSE, ok, true
}

// sortedSplit is the sort-based scan used for high-cardinality features: it
// sorts (value, target) pairs and sweeps prefix sums over the sorted order
// for O(1) SSE evaluation per split position.
func sortedSplit(col []float64, targets []float64, indices []int, params Params, scratch *splitScratch) (threshold, bestSSE float64, ok bool) {
	n := len(indices)
	pairs := scratch.pairs[:n]
	prefixSum := scratch.prefixSum[:n+1]
	prefixSq := scratch.prefixSq[:n+1]
	for i, idx := range indices {
		pairs[i] = featTarget{v: col[idx], y: targets[idx]}
	}
	slices.SortFunc(pairs, func(a, b featTarget) int { return cmp.Compare(a.v, b.v) })

	for i, p := range pairs {
		prefixSum[i+1] = prefixSum[i] + p.y
		prefixSq[i+1] = prefixSq[i] + p.y*p.y
	}

	bestSSE = math.Inf(1)
	for i := params.MinLeafSize; i <= n-params.MinLeafSize; i++ {
		lo := pairs[i-1].v
		hi := pairs[i].v
		if lo == hi {
			continue
		}
		total := sse(prefixSum[i], prefixSq[i], float64(i)) +
			sse(prefixSum[n]-prefixSum[i], prefixSq[n]-prefixSq[i], float64(n-i))
		if total < bestSSE {
			bestSSE = total
			threshold = (lo + hi) / 2
			ok = true
		}
	}
	return threshold, bestSSE, ok
}

// candidateFeatures returns the features examined at a split, applying the
// random-subspace fraction when configured. The returned slice aliases
// scratch and is only valid until the next call.
func (t *Tree) candidateFeatures(params Params, rng *rand.Rand, scratch *splitScratch) []int {
	all := scratch.features[:t.numFeatures]
	for i := range all {
		all[i] = i
	}
	if params.FeatureFraction >= 1 {
		return all
	}
	k := int(math.Ceil(params.FeatureFraction * float64(t.numFeatures)))
	if k < 1 {
		k = 1
	}
	if k >= t.numFeatures {
		return all
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	picked := all[:k]
	sort.Ints(picked)
	return picked
}

// sse computes sum((y - mean)^2) from the sum and sum of squares of a group.
func sse(sum, sumSq, count float64) float64 {
	if count == 0 {
		return 0
	}
	v := sumSq - sum*sum/count
	if v < 0 {
		// Guard against tiny negative values from floating point cancellation.
		return 0
	}
	return v
}

// partition reorders indices in place so the samples at or below the
// threshold come first, and returns the two halves as subslices. The order
// within each half is irrelevant: every consumer (leaf means, constant
// checks, the distinct-value split scans) depends only on the sample sets.
func partition(col []float64, indices []int, threshold float64) (left, right []int) {
	i, j := 0, len(indices)
	for i < j {
		if col[indices[i]] <= threshold {
			i++
		} else {
			j--
			indices[i], indices[j] = indices[j], indices[i]
		}
	}
	return indices[:i], indices[i:]
}

// Predict returns the tree's estimate for the given feature vector.
func (t *Tree) Predict(x []float64) (float64, error) {
	if t == nil || t.nodeCount() == 0 {
		return 0, errors.New("regtree: predict on untrained tree")
	}
	if len(x) != t.numFeatures {
		return 0, fmt.Errorf("regtree: feature vector has %d columns, want %d", len(x), t.numFeatures)
	}
	return t.PredictUnchecked(x), nil
}

// PredictUnchecked is Predict without the per-call validation: the caller must
// guarantee that the tree is trained and that len(x) == NumFeatures(). The
// bagging ensemble uses it to validate a feature vector once per ensemble
// prediction instead of once per tree.
func (t *Tree) PredictUnchecked(x []float64) float64 {
	nodes := t.nodes
	i := int32(0)
	for {
		nd := nodes[i]
		if nd.left < 0 {
			return nd.thresh
		}
		if x[nd.feat] <= nd.thresh {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// PredictBatch predicts every point of a column-major feature matrix:
// cols[f][i] is feature f of point i, and the estimate of point i is written
// to out[i]. Inputs are validated once for the whole batch and the sweep
// allocates nothing. The bagging ensemble's batch sweep does not use this
// form: it gathers each point into a row and runs PredictUnchecked, so one
// gather is shared by all trees of the ensemble.
func (t *Tree) PredictBatch(cols [][]float64, out []float64) error {
	if t == nil || t.nodeCount() == 0 {
		return errors.New("regtree: predict on untrained tree")
	}
	if len(cols) != t.numFeatures {
		return fmt.Errorf("regtree: feature matrix has %d columns, want %d", len(cols), t.numFeatures)
	}
	n := len(out)
	for f, col := range cols {
		if len(col) != n {
			return fmt.Errorf("regtree: feature column %d has %d points, want %d", f, len(col), n)
		}
	}
	nodes := t.nodes
	for i := 0; i < n; i++ {
		j := int32(0)
		for {
			nd := nodes[j]
			if nd.left < 0 {
				out[i] = nd.thresh
				break
			}
			if cols[nd.feat][i] <= nd.thresh {
				j = nd.left
			} else {
				j = nd.right
			}
		}
	}
	return nil
}

// NodeValue returns the leaf value of the given node and whether the node is
// a leaf. Interior nodes return (0, false). The bagging ensemble's memo
// repair uses it to read the post-insert value of an updated leaf without a
// traversal.
func (t *Tree) NodeValue(node int) (float64, bool) {
	if node < 0 || node >= len(t.nodes) {
		return 0, false
	}
	nd := t.nodes[node]
	if nd.left >= 0 {
		return 0, false
	}
	return nd.thresh, true
}

// PredictFromUnchecked walks the subtree rooted at the given node index and
// returns its estimate for x. Like PredictUnchecked, no validation happens:
// the caller must guarantee the tree is trained, the node index is in range,
// and len(x) == NumFeatures(). The bagging ensemble's memo repair uses it to
// re-predict points through a re-split leaf's regrown subtree without
// re-walking from the root.
func (t *Tree) PredictFromUnchecked(node int, x []float64) float64 {
	v, _ := t.PredictLeafFromUnchecked(node, x)
	return v
}

// PredictLeafFromUnchecked is PredictFromUnchecked returning, alongside the
// estimate, the index of the leaf the walk ended on. The bagging ensemble's
// memo repair keeps a per-point leaf-index matrix so that the points covered
// by an updated leaf are found by one equality scan instead of re-filtering
// the whole batch through the leaf's root path; this accessor both seeds
// that matrix (node 0) and refreshes it through regrown subtrees.
func (t *Tree) PredictLeafFromUnchecked(node int, x []float64) (float64, int32) {
	nodes := t.nodes
	i := int32(node)
	for {
		nd := nodes[i]
		if nd.left < 0 {
			return nd.thresh, i
		}
		if x[nd.feat] <= nd.thresh {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// NumFeatures returns the number of input features the tree was trained on.
func (t *Tree) NumFeatures() int { return t.numFeatures }

// Leaves returns the number of leaves in the tree.
func (t *Tree) Leaves() int { return t.leaves }

// Depth returns the depth of the tree (a single leaf has depth 1).
func (t *Tree) Depth() int { return t.depth }
