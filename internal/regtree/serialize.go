package regtree

import (
	"errors"
	"fmt"
	"math"
)

// NodeState is the serializable form of one flattened tree node. Left < 0
// marks a leaf carrying Value; internal nodes carry the split and the indices
// of their children within the node slice.
type NodeState struct {
	Feature   int32   `json:"feature"`
	Threshold float64 `json:"threshold"`
	Left      int32   `json:"left"`
	Right     int32   `json:"right"`
	Value     float64 `json:"value"`
}

// TreeState is the serializable fitted state of a Tree: the flattened node
// array plus its summary counters. It captures everything predictions need;
// the retained incremental-training state (TrainIncremental) is deliberately
// not serialized, so a restored tree predicts identically but cannot absorb
// further online updates.
type TreeState struct {
	Nodes       []NodeState `json:"nodes"`
	NumFeatures int         `json:"num_features"`
	Leaves      int         `json:"leaves"`
	Depth       int         `json:"depth"`
}

// State extracts the serializable fitted state of the tree. The emitted node
// list is the flattened preorder layout regardless of the in-memory
// representation, so the v1 snapshot format is unchanged by the
// structure-of-arrays storage.
func (t *Tree) State() (TreeState, error) {
	if t.nodeCount() == 0 {
		return TreeState{}, errors.New("regtree: cannot serialize an untrained tree")
	}
	nodes := make([]NodeState, t.nodeCount())
	for i, nd := range t.nodes {
		if nd.left < 0 {
			// Leaves carry their value in the packed node's thresh field;
			// the emitted form keeps the v1 convention (Feature/Threshold
			// zero, Left = -1) so snapshots stay bitwise identical.
			nodes[i] = NodeState{Left: -1, Value: nd.thresh}
			continue
		}
		nodes[i] = NodeState{
			Feature:   nd.feat,
			Threshold: nd.thresh,
			Left:      nd.left,
			Right:     nd.right,
		}
	}
	return TreeState{
		Nodes:       nodes,
		NumFeatures: t.numFeatures,
		Leaves:      t.leaves,
		Depth:       t.depth,
	}, nil
}

// FromState reconstructs a prediction-ready tree from serialized state,
// validating the node graph so a corrupted snapshot cannot send
// PredictUnchecked out of bounds.
func FromState(s TreeState) (*Tree, error) {
	if len(s.Nodes) == 0 {
		return nil, errors.New("regtree: tree state has no nodes")
	}
	if s.NumFeatures < 1 {
		return nil, fmt.Errorf("regtree: tree state has %d features", s.NumFeatures)
	}
	n := int32(len(s.Nodes))
	t := &Tree{
		nodes:       make([]node, len(s.Nodes)),
		numFeatures: s.NumFeatures,
		leaves:      s.Leaves,
		depth:       s.Depth,
	}
	for i, ns := range s.Nodes {
		if ns.Left < 0 {
			// Leaf: only the value matters, stored in the packed node's
			// thresh field.
			if math.IsNaN(ns.Value) || math.IsInf(ns.Value, 0) {
				return nil, fmt.Errorf("regtree: leaf %d has non-finite value %v", i, ns.Value)
			}
			t.nodes[i] = node{thresh: ns.Value, left: -1}
			continue
		}
		if ns.Left >= n || ns.Right < 0 || ns.Right >= n {
			return nil, fmt.Errorf("regtree: node %d has child indices (%d, %d) outside [0, %d)", i, ns.Left, ns.Right, n)
		}
		if int(ns.Left) <= i || int(ns.Right) <= i {
			// The flattened layout keeps children after their parent, which
			// also rules out traversal cycles.
			return nil, fmt.Errorf("regtree: node %d has non-preorder child indices (%d, %d)", i, ns.Left, ns.Right)
		}
		if ns.Feature < 0 || int(ns.Feature) >= s.NumFeatures {
			return nil, fmt.Errorf("regtree: node %d splits on feature %d of %d", i, ns.Feature, s.NumFeatures)
		}
		if math.IsNaN(ns.Threshold) {
			return nil, fmt.Errorf("regtree: node %d has NaN threshold", i)
		}
		t.nodes[i] = node{thresh: ns.Threshold, feat: ns.Feature, left: ns.Left, right: ns.Right}
	}
	return t, nil
}
