package regtree

import (
	"errors"
	"fmt"
	"math"
)

// NodeState is the serializable form of one flattened tree node. Left < 0
// marks a leaf carrying Value; internal nodes carry the split and the indices
// of their children within the node slice.
type NodeState struct {
	Feature   int32   `json:"feature"`
	Threshold float64 `json:"threshold"`
	Left      int32   `json:"left"`
	Right     int32   `json:"right"`
	Value     float64 `json:"value"`
}

// TreeState is the serializable fitted state of a Tree: the flattened node
// array plus its summary counters. It captures everything predictions need;
// the retained incremental-training state (TrainIncremental) is deliberately
// not serialized, so a restored tree predicts identically but cannot absorb
// further online updates.
type TreeState struct {
	Nodes       []NodeState `json:"nodes"`
	NumFeatures int         `json:"num_features"`
	Leaves      int         `json:"leaves"`
	Depth       int         `json:"depth"`
}

// State extracts the serializable fitted state of the tree.
func (t *Tree) State() (TreeState, error) {
	if len(t.nodes) == 0 {
		return TreeState{}, errors.New("regtree: cannot serialize an untrained tree")
	}
	nodes := make([]NodeState, len(t.nodes))
	for i, n := range t.nodes {
		nodes[i] = NodeState{
			Feature:   n.feature,
			Threshold: n.threshold,
			Left:      n.left,
			Right:     n.right,
			Value:     n.value,
		}
	}
	return TreeState{
		Nodes:       nodes,
		NumFeatures: t.numFeatures,
		Leaves:      t.leaves,
		Depth:       t.depth,
	}, nil
}

// FromState reconstructs a prediction-ready tree from serialized state,
// validating the node graph so a corrupted snapshot cannot send
// PredictUnchecked out of bounds.
func FromState(s TreeState) (*Tree, error) {
	if len(s.Nodes) == 0 {
		return nil, errors.New("regtree: tree state has no nodes")
	}
	if s.NumFeatures < 1 {
		return nil, fmt.Errorf("regtree: tree state has %d features", s.NumFeatures)
	}
	n := int32(len(s.Nodes))
	nodes := make([]flatNode, len(s.Nodes))
	for i, ns := range s.Nodes {
		if ns.Left < 0 {
			// Leaf: only the value matters.
			if math.IsNaN(ns.Value) || math.IsInf(ns.Value, 0) {
				return nil, fmt.Errorf("regtree: leaf %d has non-finite value %v", i, ns.Value)
			}
			nodes[i] = flatNode{value: ns.Value, left: -1}
			continue
		}
		if ns.Left >= n || ns.Right < 0 || ns.Right >= n {
			return nil, fmt.Errorf("regtree: node %d has child indices (%d, %d) outside [0, %d)", i, ns.Left, ns.Right, n)
		}
		if int(ns.Left) <= i || int(ns.Right) <= i {
			// The flattened layout is preorder: children always follow their
			// parent, which also rules out traversal cycles.
			return nil, fmt.Errorf("regtree: node %d has non-preorder child indices (%d, %d)", i, ns.Left, ns.Right)
		}
		if ns.Feature < 0 || int(ns.Feature) >= s.NumFeatures {
			return nil, fmt.Errorf("regtree: node %d splits on feature %d of %d", i, ns.Feature, s.NumFeatures)
		}
		if math.IsNaN(ns.Threshold) {
			return nil, fmt.Errorf("regtree: node %d has NaN threshold", i)
		}
		nodes[i] = flatNode{
			feature:   ns.Feature,
			threshold: ns.Threshold,
			left:      ns.Left,
			right:     ns.Right,
		}
	}
	return &Tree{
		nodes:       nodes,
		numFeatures: s.NumFeatures,
		leaves:      s.Leaves,
		depth:       s.Depth,
	}, nil
}
