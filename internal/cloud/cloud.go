// Package cloud models the rented infrastructure side of the optimization
// problem: VM types with their hardware characteristics and on-demand hourly
// prices, cluster specifications, and the per-second billing scheme the paper
// assumes when computing C(x) = T(x) · U(x) (paper §2).
package cloud

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnknownVMType is returned when a VM type name is not in the catalogue.
var ErrUnknownVMType = errors.New("cloud: unknown VM type")

// VMType describes one rentable virtual machine flavour.
type VMType struct {
	// Name is the provider identifier, e.g. "t2.xlarge".
	Name string
	// Family is the instance family, e.g. "t2", "c4".
	Family string
	// Size is the size within the family, e.g. "small", "xlarge".
	Size string
	// VCPUs is the number of virtual CPUs.
	VCPUs int
	// MemoryGB is the amount of RAM in gigabytes.
	MemoryGB float64
	// PricePerHour is the on-demand price in USD per hour.
	PricePerHour float64
}

// Validate checks that the VM type definition is internally consistent.
func (v VMType) Validate() error {
	if v.Name == "" {
		return errors.New("cloud: VM type has empty name")
	}
	if v.VCPUs <= 0 {
		return fmt.Errorf("cloud: VM type %q has non-positive vCPU count %d", v.Name, v.VCPUs)
	}
	if v.MemoryGB <= 0 {
		return fmt.Errorf("cloud: VM type %q has non-positive memory %v", v.Name, v.MemoryGB)
	}
	if v.PricePerHour <= 0 {
		return fmt.Errorf("cloud: VM type %q has non-positive price %v", v.Name, v.PricePerHour)
	}
	return nil
}

// Catalog is an immutable collection of VM types indexed by name.
type Catalog struct {
	byName map[string]VMType
	names  []string
}

// NewCatalog builds a catalogue from the given VM types, rejecting duplicates
// and invalid entries.
func NewCatalog(types []VMType) (*Catalog, error) {
	if len(types) == 0 {
		return nil, errors.New("cloud: catalogue requires at least one VM type")
	}
	c := &Catalog{byName: make(map[string]VMType, len(types))}
	for _, v := range types {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.byName[v.Name]; dup {
			return nil, fmt.Errorf("cloud: duplicate VM type %q", v.Name)
		}
		c.byName[v.Name] = v
		c.names = append(c.names, v.Name)
	}
	sort.Strings(c.names)
	return c, nil
}

// Lookup returns the VM type with the given name.
func (c *Catalog) Lookup(name string) (VMType, error) {
	v, ok := c.byName[name]
	if !ok {
		return VMType{}, fmt.Errorf("%w: %q", ErrUnknownVMType, name)
	}
	return v, nil
}

// Names returns the VM type names in the catalogue, sorted alphabetically.
func (c *Catalog) Names() []string {
	return append([]string(nil), c.names...)
}

// Types returns every VM type in the catalogue, sorted by name.
func (c *Catalog) Types() []VMType {
	out := make([]VMType, 0, len(c.names))
	for _, n := range c.names {
		out = append(out, c.byName[n])
	}
	return out
}

// Cluster is a homogeneous set of worker VMs plus an optional number of
// auxiliary VMs of the same type (e.g. the parameter server used by the
// Tensorflow jobs in the paper, which deploy one extra VM besides the
// workers).
type Cluster struct {
	VM           VMType
	Workers      int
	ExtraVMs     int
	ExtraVMsType *VMType
}

// Validate checks that the cluster specification makes sense.
func (c Cluster) Validate() error {
	if err := c.VM.Validate(); err != nil {
		return err
	}
	if c.Workers <= 0 {
		return fmt.Errorf("cloud: cluster requires at least one worker, got %d", c.Workers)
	}
	if c.ExtraVMs < 0 {
		return fmt.Errorf("cloud: negative extra VM count %d", c.ExtraVMs)
	}
	if c.ExtraVMsType != nil {
		if err := c.ExtraVMsType.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalVMs returns the total number of VMs rented by the cluster.
func (c Cluster) TotalVMs() int { return c.Workers + c.ExtraVMs }

// TotalVCPUs returns the aggregate number of vCPUs across worker VMs.
func (c Cluster) TotalVCPUs() int { return c.Workers * c.VM.VCPUs }

// TotalMemoryGB returns the aggregate worker memory in gigabytes.
func (c Cluster) TotalMemoryGB() float64 { return float64(c.Workers) * c.VM.MemoryGB }

// PricePerHour returns the rental price of the whole cluster in USD per hour.
func (c Cluster) PricePerHour() float64 {
	price := float64(c.Workers) * c.VM.PricePerHour
	if c.ExtraVMs > 0 {
		extraType := c.VM
		if c.ExtraVMsType != nil {
			extraType = *c.ExtraVMsType
		}
		price += float64(c.ExtraVMs) * extraType.PricePerHour
	}
	return price
}

// PricePerSecond returns the rental price of the whole cluster in USD per
// second, matching the per-second billing scheme assumed in the paper.
func (c Cluster) PricePerSecond() float64 { return c.PricePerHour() / 3600 }

// Cost returns the monetary cost of holding the cluster for the given
// duration in seconds: C(x) = T(x) · U(x) under per-second billing.
func (c Cluster) Cost(runtimeSeconds float64) (float64, error) {
	if runtimeSeconds < 0 {
		return 0, fmt.Errorf("cloud: negative runtime %v", runtimeSeconds)
	}
	return runtimeSeconds * c.PricePerSecond(), nil
}
