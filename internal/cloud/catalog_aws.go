package cloud

import "fmt"

// This file embeds an on-demand price catalogue modelled after the AWS EC2
// instance types used in the paper's evaluation (Tables 2 and §5.1.2):
// the t2 family for the Tensorflow jobs, the c4/m4/r4 families for the Scout
// jobs, and the c4/m4/r3/i2 families for the CherryPick jobs. Prices are
// us-east-1 on-demand rates at the time the datasets were collected; only the
// *relative* prices matter for the optimizer, since the cost of a
// configuration is runtime × cluster price.

// awsTypes is the embedded catalogue definition.
var awsTypes = []VMType{
	// t2 family (Tensorflow jobs, Table 2).
	{Name: "t2.small", Family: "t2", Size: "small", VCPUs: 1, MemoryGB: 2, PricePerHour: 0.023},
	{Name: "t2.medium", Family: "t2", Size: "medium", VCPUs: 2, MemoryGB: 4, PricePerHour: 0.0464},
	{Name: "t2.xlarge", Family: "t2", Size: "xlarge", VCPUs: 4, MemoryGB: 16, PricePerHour: 0.1856},
	{Name: "t2.2xlarge", Family: "t2", Size: "2xlarge", VCPUs: 8, MemoryGB: 32, PricePerHour: 0.3712},

	// c4 family (Scout and CherryPick jobs).
	{Name: "c4.large", Family: "c4", Size: "large", VCPUs: 2, MemoryGB: 3.75, PricePerHour: 0.10},
	{Name: "c4.xlarge", Family: "c4", Size: "xlarge", VCPUs: 4, MemoryGB: 7.5, PricePerHour: 0.199},
	{Name: "c4.2xlarge", Family: "c4", Size: "2xlarge", VCPUs: 8, MemoryGB: 15, PricePerHour: 0.398},

	// m4 family (Scout and CherryPick jobs).
	{Name: "m4.large", Family: "m4", Size: "large", VCPUs: 2, MemoryGB: 8, PricePerHour: 0.10},
	{Name: "m4.xlarge", Family: "m4", Size: "xlarge", VCPUs: 4, MemoryGB: 16, PricePerHour: 0.20},
	{Name: "m4.2xlarge", Family: "m4", Size: "2xlarge", VCPUs: 8, MemoryGB: 32, PricePerHour: 0.40},

	// r4 family (Scout jobs).
	{Name: "r4.large", Family: "r4", Size: "large", VCPUs: 2, MemoryGB: 15.25, PricePerHour: 0.133},
	{Name: "r4.xlarge", Family: "r4", Size: "xlarge", VCPUs: 4, MemoryGB: 30.5, PricePerHour: 0.266},
	{Name: "r4.2xlarge", Family: "r4", Size: "2xlarge", VCPUs: 8, MemoryGB: 61, PricePerHour: 0.532},

	// r3 family (CherryPick jobs).
	{Name: "r3.large", Family: "r3", Size: "large", VCPUs: 2, MemoryGB: 15.25, PricePerHour: 0.166},
	{Name: "r3.xlarge", Family: "r3", Size: "xlarge", VCPUs: 4, MemoryGB: 30.5, PricePerHour: 0.333},
	{Name: "r3.2xlarge", Family: "r3", Size: "2xlarge", VCPUs: 8, MemoryGB: 61, PricePerHour: 0.665},

	// i2 family (CherryPick jobs; storage-optimized).
	{Name: "i2.large", Family: "i2", Size: "large", VCPUs: 2, MemoryGB: 15.25, PricePerHour: 0.213},
	{Name: "i2.xlarge", Family: "i2", Size: "xlarge", VCPUs: 4, MemoryGB: 30.5, PricePerHour: 0.853},
	{Name: "i2.2xlarge", Family: "i2", Size: "2xlarge", VCPUs: 8, MemoryGB: 61, PricePerHour: 1.705},
}

// AWSCatalog returns a catalogue with the EC2-style VM types used across the
// paper's three datasets.
func AWSCatalog() (*Catalog, error) {
	return NewCatalog(awsTypes)
}

// MustAWSCatalog returns the embedded catalogue and panics if the embedded
// definition is inconsistent. The embedded data is covered by tests, so a
// panic here indicates a programming error rather than a runtime condition.
func MustAWSCatalog() *Catalog {
	c, err := AWSCatalog()
	if err != nil {
		panic(fmt.Sprintf("cloud: embedded AWS catalogue is invalid: %v", err))
	}
	return c
}
