package cloud

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func validVM() VMType {
	return VMType{Name: "t2.xlarge", Family: "t2", Size: "xlarge", VCPUs: 4, MemoryGB: 16, PricePerHour: 0.1856}
}

func TestVMTypeValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*VMType)
		wantErr bool
	}{
		{name: "valid", mutate: func(*VMType) {}, wantErr: false},
		{name: "empty name", mutate: func(v *VMType) { v.Name = "" }, wantErr: true},
		{name: "zero vcpus", mutate: func(v *VMType) { v.VCPUs = 0 }, wantErr: true},
		{name: "negative memory", mutate: func(v *VMType) { v.MemoryGB = -1 }, wantErr: true},
		{name: "zero price", mutate: func(v *VMType) { v.PricePerHour = 0 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := validVM()
			tt.mutate(&v)
			err := v.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewCatalogRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewCatalog(nil); err == nil {
		t.Error("empty catalogue should error")
	}
	if _, err := NewCatalog([]VMType{validVM(), validVM()}); err == nil {
		t.Error("duplicate VM types should error")
	}
	if _, err := NewCatalog([]VMType{{Name: "bad"}}); err == nil {
		t.Error("invalid VM type should error")
	}
}

func TestCatalogLookup(t *testing.T) {
	c, err := AWSCatalog()
	if err != nil {
		t.Fatalf("AWSCatalog error: %v", err)
	}
	v, err := c.Lookup("t2.small")
	if err != nil {
		t.Fatalf("Lookup error: %v", err)
	}
	if v.VCPUs != 1 || v.MemoryGB != 2 {
		t.Errorf("t2.small = %+v, want 1 vCPU / 2 GB (Table 2)", v)
	}
	if _, err := c.Lookup("x1e.32xlarge"); !errors.Is(err, ErrUnknownVMType) {
		t.Errorf("Lookup unknown type error = %v, want ErrUnknownVMType", err)
	}
}

func TestAWSCatalogCoversPaperFamilies(t *testing.T) {
	c, err := AWSCatalog()
	if err != nil {
		t.Fatalf("AWSCatalog error: %v", err)
	}
	// Table 2: the four t2 sizes used for the Tensorflow jobs.
	for _, name := range []string{"t2.small", "t2.medium", "t2.xlarge", "t2.2xlarge"} {
		if _, err := c.Lookup(name); err != nil {
			t.Errorf("missing Tensorflow VM type %q: %v", name, err)
		}
	}
	// §5.1.2: Scout uses {c4,r4,m4} × {large,xlarge,2xlarge}; CherryPick uses
	// {c4,m4,r3,i2} × the same sizes.
	for _, family := range []string{"c4", "m4", "r4", "r3", "i2"} {
		for _, size := range []string{"large", "xlarge", "2xlarge"} {
			name := family + "." + size
			if _, err := c.Lookup(name); err != nil {
				t.Errorf("missing VM type %q: %v", name, err)
			}
		}
	}
	if len(c.Names()) != len(c.Types()) {
		t.Errorf("Names/Types length mismatch: %d vs %d", len(c.Names()), len(c.Types()))
	}
}

func TestMustAWSCatalogDoesNotPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("MustAWSCatalog panicked: %v", r)
		}
	}()
	if c := MustAWSCatalog(); c == nil {
		t.Fatal("MustAWSCatalog returned nil")
	}
}

func TestClusterValidate(t *testing.T) {
	valid := Cluster{VM: validVM(), Workers: 8, ExtraVMs: 1}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid cluster rejected: %v", err)
	}
	if err := (Cluster{VM: validVM(), Workers: 0}).Validate(); err == nil {
		t.Error("zero workers should error")
	}
	if err := (Cluster{VM: validVM(), Workers: 2, ExtraVMs: -1}).Validate(); err == nil {
		t.Error("negative extra VMs should error")
	}
	bad := VMType{Name: "bad"}
	if err := (Cluster{VM: validVM(), Workers: 2, ExtraVMs: 1, ExtraVMsType: &bad}).Validate(); err == nil {
		t.Error("invalid extra VM type should error")
	}
}

func TestClusterAggregates(t *testing.T) {
	c := Cluster{VM: validVM(), Workers: 8, ExtraVMs: 1}
	if got := c.TotalVMs(); got != 9 {
		t.Errorf("TotalVMs = %d, want 9", got)
	}
	if got := c.TotalVCPUs(); got != 32 {
		t.Errorf("TotalVCPUs = %d, want 32", got)
	}
	if got := c.TotalMemoryGB(); got != 128 {
		t.Errorf("TotalMemoryGB = %v, want 128", got)
	}
	wantHourly := 9 * 0.1856
	if got := c.PricePerHour(); math.Abs(got-wantHourly) > 1e-12 {
		t.Errorf("PricePerHour = %v, want %v", got, wantHourly)
	}
	if got := c.PricePerSecond(); math.Abs(got-wantHourly/3600) > 1e-15 {
		t.Errorf("PricePerSecond = %v, want %v", got, wantHourly/3600)
	}
}

func TestClusterWithDifferentExtraVMType(t *testing.T) {
	small := VMType{Name: "t2.small", Family: "t2", Size: "small", VCPUs: 1, MemoryGB: 2, PricePerHour: 0.023}
	c := Cluster{VM: validVM(), Workers: 4, ExtraVMs: 1, ExtraVMsType: &small}
	want := 4*0.1856 + 0.023
	if got := c.PricePerHour(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PricePerHour = %v, want %v", got, want)
	}
}

func TestClusterCost(t *testing.T) {
	c := Cluster{VM: validVM(), Workers: 10}
	cost, err := c.Cost(3600)
	if err != nil {
		t.Fatalf("Cost error: %v", err)
	}
	if math.Abs(cost-10*0.1856) > 1e-12 {
		t.Errorf("Cost(1 hour) = %v, want %v", cost, 10*0.1856)
	}
	if _, err := c.Cost(-1); err == nil {
		t.Error("negative runtime should error")
	}
	zero, err := c.Cost(0)
	if err != nil || zero != 0 {
		t.Errorf("Cost(0) = %v, %v, want 0, nil", zero, err)
	}
}

func TestQuickClusterCostScalesLinearly(t *testing.T) {
	property := func(workersRaw uint8, secondsRaw float64) bool {
		workers := int(workersRaw%100) + 1
		seconds := math.Abs(math.Mod(secondsRaw, 1e6))
		c := Cluster{VM: validVM(), Workers: workers}
		c1, err1 := c.Cost(seconds)
		c2, err2 := c.Cost(2 * seconds)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(c2-2*c1) < 1e-9*(1+c2)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Errorf("cost does not scale linearly with runtime: %v", err)
	}
}
