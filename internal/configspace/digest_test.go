package configspace

import (
	"sync"
	"testing"
)

func digestDims() []Dimension {
	return []Dimension{
		{Name: "n", Values: []float64{1, 2, 4}},
		{Name: "hw", Values: []float64{0, 1}, Labels: []string{"cpu", "gpu"}},
		{Name: "batch", Values: []float64{16, 32}},
	}
}

func TestDigestEqualForEqualSpaces(t *testing.T) {
	a, err := New(digestDims(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(digestDims(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("equal spaces disagree: %s vs %s", a.Digest(), b.Digest())
	}
	if a.Digest() == "" {
		t.Fatal("empty digest")
	}
	// Memoized: repeated calls return the identical string.
	if a.Digest() != a.Digest() {
		t.Fatal("digest not stable across calls")
	}
}

func TestDigestSeparatesContent(t *testing.T) {
	base, err := New(digestDims(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Different dimension values.
	dims := digestDims()
	dims[0].Values = []float64{1, 2, 8}
	valDiff, err := New(dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	if valDiff.Digest() == base.Digest() {
		t.Fatal("different values share a digest")
	}

	// Different labels over the same values.
	dims = digestDims()
	dims[1].Labels = []string{"cpu", "tpu"}
	labelDiff, err := New(dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	if labelDiff.Digest() == base.Digest() {
		t.Fatal("different labels share a digest")
	}

	// A filter that keeps everything hashes like no filter at all: the
	// configuration set is identical.
	keepAll, err := New(digestDims(), func(indices []int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if keepAll.Digest() != base.Digest() {
		t.Fatal("keep-all filter changed the digest despite identical configs")
	}

	// A filter that drops points must change the digest.
	filtered, err := New(digestDims(), func(indices []int) bool { return indices[0] != 1 }) // drop n=2
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Digest() == base.Digest() {
		t.Fatal("filtered space shares the unfiltered digest")
	}
}

func TestDigestSeparatesRepresentations(t *testing.T) {
	mat, err := New(digestDims(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewStreaming(digestDims(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Digest() == stream.Digest() {
		t.Fatal("materialized and streaming spaces share a digest")
	}

	stream2, err := NewStreaming(digestDims(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Digest() != stream2.Digest() {
		t.Fatal("equal streaming spaces disagree")
	}

	// Filtered streaming spaces hash the accepted set.
	fs1, err := NewStreaming(digestDims(), func(indices []int) bool { return indices[2] == 0 })
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := NewStreaming(digestDims(), func(indices []int) bool { return indices[2] == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if fs1.Digest() == fs2.Digest() {
		t.Fatal("different streaming filters share a digest")
	}
	if fs1.Digest() == stream.Digest() {
		t.Fatal("filtered streaming space shares the unfiltered digest")
	}
}

func TestDigestConcurrentFirstCall(t *testing.T) {
	s, err := New(digestDims(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	out := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = s.Digest()
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if out[i] != out[0] {
			t.Fatalf("goroutine %d saw digest %s, goroutine 0 saw %s", i, out[i], out[0])
		}
	}
}
