// Package configspace models the discrete configuration spaces explored by
// Lynceus: a configuration is a tuple <N, H, P> of cluster size, hardware
// type, and job-level parameters (paper §2). A Space is the (optionally
// filtered) Cartesian product of a set of discrete dimensions.
//
// A Space comes in two representations sharing one API:
//
//   - materialized (New): every configuration and the column-major feature
//     matrix are built up front. Right for the paper-scale spaces (hundreds of
//     points), where full-space model sweeps dominate and the matrix is the
//     fast path.
//   - streaming (NewStreaming): configurations are decoded on demand from the
//     dimension cross-product and full-space consumers iterate block-wise
//     feature views (ForEachBlock). Right for production-scale spaces (10^5+
//     points), which must never be held in memory as one monolithic slice.
package configspace

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
)

// ErrEmptySpace is returned when a space would contain no configuration.
var ErrEmptySpace = errors.New("configspace: space contains no configuration")

// MaxMaterializedSize bounds the number of configurations New will materialize
// eagerly. Larger spaces must use NewStreaming, which holds no per-config
// storage.
const MaxMaterializedSize = 1 << 21

// Dimension is one axis of the configuration space: an ordered list of the
// discrete numeric values the axis can take. Labels, when present, provide a
// human-readable name per value (e.g. the VM type name); they must either be
// empty or have exactly one entry per value.
type Dimension struct {
	Name   string
	Values []float64
	Labels []string
}

// Validate checks the internal consistency of the dimension.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return errors.New("configspace: dimension has empty name")
	}
	if len(d.Values) == 0 {
		return fmt.Errorf("configspace: dimension %q has no values", d.Name)
	}
	if len(d.Labels) != 0 && len(d.Labels) != len(d.Values) {
		return fmt.Errorf("configspace: dimension %q has %d labels for %d values",
			d.Name, len(d.Labels), len(d.Values))
	}
	seen := make(map[float64]struct{}, len(d.Values))
	for _, v := range d.Values {
		if _, dup := seen[v]; dup {
			return fmt.Errorf("configspace: dimension %q has duplicate value %v", d.Name, v)
		}
		seen[v] = struct{}{}
	}
	return nil
}

// Label returns the label of the i-th value, falling back to the numeric
// value when no labels are defined.
func (d Dimension) Label(i int) string {
	if i < 0 || i >= len(d.Values) {
		return ""
	}
	if len(d.Labels) == len(d.Values) {
		return d.Labels[i]
	}
	return fmt.Sprintf("%g", d.Values[i])
}

// Config is one point of a Space. ID is the dense index of the configuration
// within its space; Indices holds the per-dimension value index; Features is
// the numeric feature vector handed to the regression model.
type Config struct {
	ID       int
	Indices  []int
	Features []float64
}

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := Config{ID: c.ID}
	out.Indices = append([]int(nil), c.Indices...)
	out.Features = append([]float64(nil), c.Features...)
	return out
}

// Filter restricts the Cartesian product of the dimensions: only index
// vectors for which it returns true are part of the space. A nil filter
// keeps every combination.
type Filter func(indices []int) bool

// Space is a finite configuration space: the (optionally filtered) Cartesian
// product of its dimensions, with configurations identified by dense IDs in
// lexicographic order of their index vectors. Depending on the constructor
// the space is either materialized (every Config and the column-major feature
// matrix held in memory) or streaming (configurations decoded on demand).
type Space struct {
	dims []Dimension

	// Materialized representation (New); nil for streaming spaces.
	configs []Config
	// cols is the column-major feature matrix of the whole space:
	// cols[d][id] is feature d of the configuration with the given ID. It is
	// built once by New and shared read-only by every full-space batch
	// prediction sweep, so fits and sweeps never rebuild features.
	cols [][]float64

	// Streaming representation (NewStreaming).
	streaming bool
	total     int   // number of configurations in the space
	strides   []int // strides[d]: flat-index stride of dimension d
	// accepted holds the sorted flat cross-product indices kept by the
	// filter; nil when the space is the unfiltered cross-product (the common
	// production case), in which case ID == flat index.
	accepted []int64

	// digest memoizes Digest(). A Space is immutable after construction, so
	// the hash is computed at most once; the Once makes the lazy computation
	// safe under concurrent first calls (the cross-campaign sharing layer
	// interns spaces from many goroutines).
	digestOnce sync.Once
	digestHex  string
}

// validateDims checks the dimension list shared by both constructors and
// returns the total cross-product size, guarding the product against int
// overflow.
func validateDims(dims []Dimension) (int, error) {
	if len(dims) == 0 {
		return 0, errors.New("configspace: space requires at least one dimension")
	}
	names := make(map[string]struct{}, len(dims))
	total := 1
	for _, d := range dims {
		if err := d.Validate(); err != nil {
			return 0, err
		}
		if _, dup := names[d.Name]; dup {
			return 0, fmt.Errorf("configspace: duplicate dimension name %q", d.Name)
		}
		names[d.Name] = struct{}{}
		if total > math.MaxInt/len(d.Values) {
			return 0, fmt.Errorf("configspace: cross-product size overflows int at dimension %q", d.Name)
		}
		total *= len(d.Values)
	}
	return total, nil
}

func copyDims(dims []Dimension) []Dimension {
	copied := make([]Dimension, len(dims))
	for i, d := range dims {
		copied[i] = Dimension{
			Name:   d.Name,
			Values: append([]float64(nil), d.Values...),
			Labels: append([]string(nil), d.Labels...),
		}
	}
	return copied
}

// dimStrides returns the mixed-radix strides of the dimensions: the flat
// cross-product index of an index vector is sum(indices[d] * strides[d]).
func dimStrides(dims []Dimension) []int {
	strides := make([]int, len(dims))
	stride := 1
	for d := len(dims) - 1; d >= 0; d-- {
		strides[d] = stride
		stride *= len(dims[d].Values)
	}
	return strides
}

// advanceIndices increments a mixed-radix counter over the dimensions'
// value indices (lexicographic order) and reports whether it wrapped around
// past the last combination.
func advanceIndices(indices []int, dims []Dimension) (wrapped bool) {
	for d := len(indices) - 1; d >= 0; d-- {
		indices[d]++
		if indices[d] < len(dims[d].Values) {
			return false
		}
		indices[d] = 0
	}
	return true
}

// searchAccepted returns the rank of the first accepted flat index >= flat
// (the lower-bound position in the sorted accepted slice).
func (s *Space) searchAccepted(flat int64) int {
	lo, hi := 0, len(s.accepted)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.accepted[mid] < flat {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// New builds a materialized Space from the Cartesian product of dims,
// restricted by filter. The resulting configurations are assigned dense IDs
// in lexicographic order of their index vectors. Spaces larger than
// MaxMaterializedSize are rejected; use NewStreaming for those.
func New(dims []Dimension, filter Filter) (*Space, error) {
	total, err := validateDims(dims)
	if err != nil {
		return nil, err
	}
	if total > MaxMaterializedSize {
		return nil, fmt.Errorf("configspace: cross-product has %d combinations, above the %d materialization limit (use NewStreaming)",
			total, MaxMaterializedSize)
	}

	copied := copyDims(dims)
	s := &Space{dims: copied, strides: dimStrides(copied)}
	indices := make([]int, len(copied))
	for {
		if filter == nil || filter(append([]int(nil), indices...)) {
			cfg := Config{
				ID:       len(s.configs),
				Indices:  append([]int(nil), indices...),
				Features: make([]float64, len(copied)),
			}
			for d, idx := range indices {
				cfg.Features[d] = copied[d].Values[idx]
			}
			s.configs = append(s.configs, cfg)
		}
		if advanceIndices(indices, copied) {
			break
		}
	}
	if len(s.configs) == 0 {
		return nil, fmt.Errorf("configspace: filter rejected all %d combinations of the cross-product: %w", total, ErrEmptySpace)
	}
	s.total = len(s.configs)
	flat := make([]float64, len(copied)*len(s.configs))
	s.cols = make([][]float64, len(copied))
	for d := range s.cols {
		s.cols[d] = flat[d*len(s.configs) : (d+1)*len(s.configs)]
		for i, c := range s.configs {
			s.cols[d][i] = c.Features[d]
		}
	}
	return s, nil
}

// NewStreaming builds a streaming Space over the Cartesian product of dims,
// restricted by filter. No per-configuration storage is kept: configurations
// are decoded on demand from their dense ID, and full-space consumers iterate
// the space block-wise (ForEachBlock). A filtered streaming space stores one
// int64 per kept combination (the sorted flat indices); an unfiltered one
// stores nothing but the dimensions.
func NewStreaming(dims []Dimension, filter Filter) (*Space, error) {
	total, err := validateDims(dims)
	if err != nil {
		return nil, err
	}
	copied := copyDims(dims)
	s := &Space{
		dims:      copied,
		streaming: true,
		strides:   dimStrides(copied),
		total:     total,
	}
	if filter == nil {
		return s, nil
	}

	indices := make([]int, len(copied))
	scratch := make([]int, len(copied))
	for flat := 0; flat < total; flat++ {
		copy(scratch, indices)
		if filter(scratch) {
			s.accepted = append(s.accepted, int64(flat))
		}
		advanceIndices(indices, copied)
	}
	if len(s.accepted) == 0 {
		return nil, fmt.Errorf("configspace: filter rejected all %d combinations of the cross-product: %w", total, ErrEmptySpace)
	}
	s.total = len(s.accepted)
	return s, nil
}

// Streaming reports whether the space decodes configurations on demand
// instead of holding them in memory.
func (s *Space) Streaming() bool { return s.streaming }

// Size returns the number of configurations in the space.
func (s *Space) Size() int { return s.total }

// NumDimensions returns the number of dimensions of the space.
func (s *Space) NumDimensions() int { return len(s.dims) }

// Dimensions returns a copy of the space's dimensions.
func (s *Space) Dimensions() []Dimension {
	return copyDims(s.dims)
}

// Dimension returns the d-th dimension.
func (s *Space) Dimension(d int) (Dimension, error) {
	if d < 0 || d >= len(s.dims) {
		return Dimension{}, fmt.Errorf("configspace: dimension index %d out of range [0,%d)", d, len(s.dims))
	}
	return Dimension{
		Name:   s.dims[d].Name,
		Values: append([]float64(nil), s.dims[d].Values...),
		Labels: append([]string(nil), s.dims[d].Labels...),
	}, nil
}

// flatOf returns the flat cross-product index of the configuration with the
// given dense ID.
func (s *Space) flatOf(id int) int {
	if s.accepted != nil {
		return int(s.accepted[id])
	}
	return id
}

// decodeIndices writes the per-dimension value indices of the given flat
// cross-product index into dst (which must have NumDimensions entries).
func (s *Space) decodeIndices(flat int, dst []int) {
	for d := range s.dims {
		dst[d] = (flat / s.strides[d]) % len(s.dims[d].Values)
	}
}

// Config returns the configuration with the given ID. The returned slices are
// always owned by the caller.
func (s *Space) Config(id int) (Config, error) {
	if id < 0 || id >= s.total {
		return Config{}, fmt.Errorf("configspace: config id %d out of range [0,%d)", id, s.total)
	}
	if !s.streaming {
		return s.configs[id].Clone(), nil
	}
	cfg := Config{
		ID:       id,
		Indices:  make([]int, len(s.dims)),
		Features: make([]float64, len(s.dims)),
	}
	s.decodeIndices(s.flatOf(id), cfg.Indices)
	for d, idx := range cfg.Indices {
		cfg.Features[d] = s.dims[d].Values[idx]
	}
	return cfg, nil
}

// ConfigView returns the configuration with the given ID without copying
// when the representation allows it: on materialized spaces the returned
// Indices and Features alias the space's shared storage and must be treated
// as read-only; on streaming spaces they are decoded into fresh slices. Use
// Config when the caller needs owned slices.
func (s *Space) ConfigView(id int) (Config, error) {
	if id < 0 || id >= s.total {
		return Config{}, fmt.Errorf("configspace: config id %d out of range [0,%d)", id, s.total)
	}
	if !s.streaming {
		return s.configs[id], nil
	}
	return s.Config(id)
}

// Configs returns a copy of every configuration in the space. On streaming
// spaces this materializes the whole space and is meant for tests and small
// tools only; production sweeps should use ForEachBlock.
func (s *Space) Configs() []Config {
	out := make([]Config, s.total)
	if !s.streaming {
		for i, c := range s.configs {
			out[i] = c.Clone()
		}
		return out
	}
	for id := range out {
		cfg, _ := s.Config(id)
		out[id] = cfg
	}
	return out
}

// IDs returns the IDs of all configurations in the space.
func (s *Space) IDs() []int {
	out := make([]int, s.total)
	for i := range out {
		out[i] = i
	}
	return out
}

// IDOfIndices returns the dense configuration ID of the given per-dimension
// value indices, or false when the combination is not part of the (possibly
// filtered) space. Streaming spaces answer in O(log n); materialized spaces
// scan.
func (s *Space) IDOfIndices(indices []int) (int, bool) {
	if len(indices) != len(s.dims) {
		return 0, false
	}
	for d, idx := range indices {
		if idx < 0 || idx >= len(s.dims[d].Values) {
			return 0, false
		}
	}
	if s.streaming {
		flat := 0
		for d, idx := range indices {
			flat += idx * s.strides[d]
		}
		if s.accepted == nil {
			return flat, true
		}
		lo := s.searchAccepted(int64(flat))
		if lo < len(s.accepted) && s.accepted[lo] == int64(flat) {
			return lo, true
		}
		return 0, false
	}
	for _, c := range s.configs {
		match := true
		for d := range indices {
			if c.Indices[d] != indices[d] {
				match = false
				break
			}
		}
		if match {
			return c.ID, true
		}
	}
	return 0, false
}

// NearestID returns the ID of the configuration whose flat cross-product
// index is closest to the given per-dimension index vector: the configuration
// itself when the combination is part of the space, otherwise the nearest
// accepted one (ties break toward the lower ID). Samplers use it to map
// stratified index vectors onto possibly-filtered spaces without enumerating
// them. Returns false when the indices are out of range.
func (s *Space) NearestID(indices []int) (int, bool) {
	if len(indices) != len(s.dims) {
		return 0, false
	}
	flat := 0
	for d, idx := range indices {
		if idx < 0 || idx >= len(s.dims[d].Values) {
			return 0, false
		}
		flat += idx * s.strides[d]
	}
	if !s.streaming {
		bestID, bestDist := 0, math.MaxInt
		for _, c := range s.configs {
			cf := 0
			for d, idx := range c.Indices {
				cf += idx * s.strides[d]
			}
			dist := cf - flat
			if dist < 0 {
				dist = -dist
			}
			if dist < bestDist {
				bestDist = dist
				bestID = c.ID
			}
		}
		return bestID, true
	}
	if s.accepted == nil {
		return flat, true
	}
	lo := s.searchAccepted(int64(flat))
	if lo >= len(s.accepted) {
		return len(s.accepted) - 1, true
	}
	if lo == 0 {
		return 0, true
	}
	if int64(flat)-s.accepted[lo-1] <= s.accepted[lo]-int64(flat) {
		return lo - 1, true
	}
	return lo, true
}

// Lookup finds the configuration with the given per-dimension indices, or
// reports that it is not part of the (possibly filtered) space.
func (s *Space) Lookup(indices []int) (Config, bool) {
	id, ok := s.IDOfIndices(indices)
	if !ok {
		return Config{}, false
	}
	cfg, err := s.Config(id)
	if err != nil {
		return Config{}, false
	}
	return cfg, true
}

// Describe renders the configuration as a human readable string using the
// dimension labels, e.g. "vm_type=t2.xlarge n_workers=8 learning_rate=0.001".
func (s *Space) Describe(c Config) string {
	parts := make([]string, 0, len(s.dims))
	for d := range s.dims {
		if d >= len(c.Indices) {
			break
		}
		parts = append(parts, fmt.Sprintf("%s=%s", s.dims[d].Name, s.dims[d].Label(c.Indices[d])))
	}
	return strings.Join(parts, " ")
}

// RowFeatures returns the feature vector of the configuration with the given
// ID. On materialized spaces the returned slice is the space's shared storage
// and must be treated as read-only — candidates reference it instead of
// copying. On streaming spaces the vector is decoded into a fresh slice; use
// AppendFeatures to decode into caller-owned storage instead.
func (s *Space) RowFeatures(id int) ([]float64, error) {
	if id < 0 || id >= s.total {
		return nil, fmt.Errorf("configspace: config id %d out of range [0,%d)", id, s.total)
	}
	if !s.streaming {
		return s.configs[id].Features, nil
	}
	out := make([]float64, len(s.dims))
	return s.appendFeatures(out[:0], id), nil
}

// AppendFeatures appends the feature vector of the configuration with the
// given ID to dst and returns the extended slice. It lets callers batch many
// decoded rows into one arena without per-row allocations.
func (s *Space) AppendFeatures(dst []float64, id int) ([]float64, error) {
	if id < 0 || id >= s.total {
		return dst, fmt.Errorf("configspace: config id %d out of range [0,%d)", id, s.total)
	}
	if !s.streaming {
		return append(dst, s.configs[id].Features...), nil
	}
	return s.appendFeatures(dst, id), nil
}

func (s *Space) appendFeatures(dst []float64, id int) []float64 {
	flat := s.flatOf(id)
	for d := range s.dims {
		idx := (flat / s.strides[d]) % len(s.dims[d].Values)
		dst = append(dst, s.dims[d].Values[idx])
	}
	return dst
}

// FeatureColumns returns the column-major feature matrix of the space:
// FeatureColumns()[d][id] is feature d of the configuration with the given
// ID. The matrix is built once when a materialized space is created and the
// returned slices are shared, not copied — callers must treat them as
// read-only. It is the input of the full-space batch prediction path
// (regtree/bagging/gp PredictBatch). Streaming spaces have no monolithic
// matrix and return nil; block-wise consumers use ForEachBlock instead.
func (s *Space) FeatureColumns() [][]float64 { return s.cols }

// FeatureNames returns the dimension names in feature-vector order.
func (s *Space) FeatureNames() []string {
	out := make([]string, len(s.dims))
	for i, d := range s.dims {
		out[i] = d.Name
	}
	return out
}

// DefaultBlockSize is the block length used by ForEachBlock when the caller
// passes a non-positive size: large enough to amortize per-block overhead in
// batch prediction sweeps, small enough that a block of a wide space stays in
// cache.
const DefaultBlockSize = 4096

// Block is a contiguous run of configurations of a Space presented as a
// column-major feature view: Cols[d][i] is feature d of the configuration
// with ID Start+i. Blocks handed to ForEachBlock callbacks are read-only and
// only valid for the duration of the callback (streaming spaces reuse one
// decode buffer across blocks).
type Block struct {
	Start int
	Cols  [][]float64
}

// Len returns the number of configurations in the block.
func (b Block) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return len(b.Cols[0])
}

// ForEachBlock invokes fn over consecutive blocks of at most blockSize
// configurations covering the whole space in increasing ID order. A
// non-positive blockSize selects DefaultBlockSize. Materialized spaces hand
// out zero-copy views of the cached feature matrix; streaming spaces decode
// each block into a buffer reused across callbacks. fn errors abort the
// iteration.
func (s *Space) ForEachBlock(blockSize int, fn func(Block) error) error {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if !s.streaming {
		view := make([][]float64, len(s.cols))
		for start := 0; start < s.total; start += blockSize {
			end := start + blockSize
			if end > s.total {
				end = s.total
			}
			for d, col := range s.cols {
				view[d] = col[start:end]
			}
			if err := fn(Block{Start: start, Cols: view}); err != nil {
				return err
			}
		}
		return nil
	}

	if blockSize > s.total {
		blockSize = s.total
	}
	buf := make([]float64, len(s.dims)*blockSize)
	cols := make([][]float64, len(s.dims))
	indices := make([]int, len(s.dims))
	for start := 0; start < s.total; start += blockSize {
		end := start + blockSize
		if end > s.total {
			end = s.total
		}
		n := end - start
		for d := range cols {
			cols[d] = buf[d*blockSize : d*blockSize+n]
		}
		if s.accepted == nil {
			// Unfiltered: advance a mixed-radix counter across the block
			// instead of div/mod-decoding every ID.
			s.decodeIndices(start, indices)
			for i := 0; i < n; i++ {
				for d, idx := range indices {
					cols[d][i] = s.dims[d].Values[idx]
				}
				advanceIndices(indices, s.dims)
			}
		} else {
			for i := 0; i < n; i++ {
				flat := int(s.accepted[start+i])
				for d := range s.dims {
					cols[d][i] = s.dims[d].Values[(flat/s.strides[d])%len(s.dims[d].Values)]
				}
			}
		}
		if err := fn(Block{Start: start, Cols: cols}); err != nil {
			return err
		}
	}
	return nil
}
