// Package configspace models the discrete configuration spaces explored by
// Lynceus: a configuration is a tuple <N, H, P> of cluster size, hardware
// type, and job-level parameters (paper §2). A Space is the (optionally
// filtered) Cartesian product of a set of discrete dimensions.
package configspace

import (
	"errors"
	"fmt"
	"strings"
)

// ErrEmptySpace is returned when a space would contain no configuration.
var ErrEmptySpace = errors.New("configspace: space contains no configuration")

// Dimension is one axis of the configuration space: an ordered list of the
// discrete numeric values the axis can take. Labels, when present, provide a
// human-readable name per value (e.g. the VM type name); they must either be
// empty or have exactly one entry per value.
type Dimension struct {
	Name   string
	Values []float64
	Labels []string
}

// Validate checks the internal consistency of the dimension.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return errors.New("configspace: dimension has empty name")
	}
	if len(d.Values) == 0 {
		return fmt.Errorf("configspace: dimension %q has no values", d.Name)
	}
	if len(d.Labels) != 0 && len(d.Labels) != len(d.Values) {
		return fmt.Errorf("configspace: dimension %q has %d labels for %d values",
			d.Name, len(d.Labels), len(d.Values))
	}
	seen := make(map[float64]struct{}, len(d.Values))
	for _, v := range d.Values {
		if _, dup := seen[v]; dup {
			return fmt.Errorf("configspace: dimension %q has duplicate value %v", d.Name, v)
		}
		seen[v] = struct{}{}
	}
	return nil
}

// Label returns the label of the i-th value, falling back to the numeric
// value when no labels are defined.
func (d Dimension) Label(i int) string {
	if i < 0 || i >= len(d.Values) {
		return ""
	}
	if len(d.Labels) == len(d.Values) {
		return d.Labels[i]
	}
	return fmt.Sprintf("%g", d.Values[i])
}

// Config is one point of a Space. ID is the dense index of the configuration
// within its space; Indices holds the per-dimension value index; Features is
// the numeric feature vector handed to the regression model.
type Config struct {
	ID       int
	Indices  []int
	Features []float64
}

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := Config{ID: c.ID}
	out.Indices = append([]int(nil), c.Indices...)
	out.Features = append([]float64(nil), c.Features...)
	return out
}

// Filter restricts the Cartesian product of the dimensions: only index
// vectors for which it returns true are part of the space. A nil filter
// keeps every combination.
type Filter func(indices []int) bool

// Space is a finite, enumerated configuration space.
type Space struct {
	dims    []Dimension
	configs []Config

	// cols is the column-major feature matrix of the whole space:
	// cols[d][id] is feature d of the configuration with the given ID. It is
	// built once by New and shared read-only by every full-space batch
	// prediction sweep, so fits and sweeps never rebuild features.
	cols [][]float64
}

// New builds a Space from the Cartesian product of dims, restricted by
// filter. The resulting configurations are assigned dense IDs in
// lexicographic order of their index vectors.
func New(dims []Dimension, filter Filter) (*Space, error) {
	if len(dims) == 0 {
		return nil, errors.New("configspace: space requires at least one dimension")
	}
	names := make(map[string]struct{}, len(dims))
	for _, d := range dims {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := names[d.Name]; dup {
			return nil, fmt.Errorf("configspace: duplicate dimension name %q", d.Name)
		}
		names[d.Name] = struct{}{}
	}

	copied := make([]Dimension, len(dims))
	for i, d := range dims {
		copied[i] = Dimension{
			Name:   d.Name,
			Values: append([]float64(nil), d.Values...),
			Labels: append([]string(nil), d.Labels...),
		}
	}

	s := &Space{dims: copied}
	indices := make([]int, len(copied))
	for {
		if filter == nil || filter(append([]int(nil), indices...)) {
			cfg := Config{
				ID:       len(s.configs),
				Indices:  append([]int(nil), indices...),
				Features: make([]float64, len(copied)),
			}
			for d, idx := range indices {
				cfg.Features[d] = copied[d].Values[idx]
			}
			s.configs = append(s.configs, cfg)
		}
		// Advance the mixed-radix counter.
		d := len(copied) - 1
		for d >= 0 {
			indices[d]++
			if indices[d] < len(copied[d].Values) {
				break
			}
			indices[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	if len(s.configs) == 0 {
		return nil, ErrEmptySpace
	}
	flat := make([]float64, len(copied)*len(s.configs))
	s.cols = make([][]float64, len(copied))
	for d := range s.cols {
		s.cols[d] = flat[d*len(s.configs) : (d+1)*len(s.configs)]
		for i, c := range s.configs {
			s.cols[d][i] = c.Features[d]
		}
	}
	return s, nil
}

// Size returns the number of configurations in the space.
func (s *Space) Size() int { return len(s.configs) }

// NumDimensions returns the number of dimensions of the space.
func (s *Space) NumDimensions() int { return len(s.dims) }

// Dimensions returns a copy of the space's dimensions.
func (s *Space) Dimensions() []Dimension {
	out := make([]Dimension, len(s.dims))
	for i, d := range s.dims {
		out[i] = Dimension{
			Name:   d.Name,
			Values: append([]float64(nil), d.Values...),
			Labels: append([]string(nil), d.Labels...),
		}
	}
	return out
}

// Dimension returns the d-th dimension.
func (s *Space) Dimension(d int) (Dimension, error) {
	if d < 0 || d >= len(s.dims) {
		return Dimension{}, fmt.Errorf("configspace: dimension index %d out of range [0,%d)", d, len(s.dims))
	}
	return Dimension{
		Name:   s.dims[d].Name,
		Values: append([]float64(nil), s.dims[d].Values...),
		Labels: append([]string(nil), s.dims[d].Labels...),
	}, nil
}

// Config returns the configuration with the given ID.
func (s *Space) Config(id int) (Config, error) {
	if id < 0 || id >= len(s.configs) {
		return Config{}, fmt.Errorf("configspace: config id %d out of range [0,%d)", id, len(s.configs))
	}
	return s.configs[id].Clone(), nil
}

// Configs returns a copy of every configuration in the space.
func (s *Space) Configs() []Config {
	out := make([]Config, len(s.configs))
	for i, c := range s.configs {
		out[i] = c.Clone()
	}
	return out
}

// IDs returns the IDs of all configurations in the space.
func (s *Space) IDs() []int {
	out := make([]int, len(s.configs))
	for i := range s.configs {
		out[i] = s.configs[i].ID
	}
	return out
}

// Lookup finds the configuration with the given per-dimension indices, or
// reports that it is not part of the (possibly filtered) space.
func (s *Space) Lookup(indices []int) (Config, bool) {
	if len(indices) != len(s.dims) {
		return Config{}, false
	}
	for _, c := range s.configs {
		match := true
		for d := range indices {
			if c.Indices[d] != indices[d] {
				match = false
				break
			}
		}
		if match {
			return c.Clone(), true
		}
	}
	return Config{}, false
}

// Describe renders the configuration as a human readable string using the
// dimension labels, e.g. "vm_type=t2.xlarge n_workers=8 learning_rate=0.001".
func (s *Space) Describe(c Config) string {
	parts := make([]string, 0, len(s.dims))
	for d := range s.dims {
		if d >= len(c.Indices) {
			break
		}
		parts = append(parts, fmt.Sprintf("%s=%s", s.dims[d].Name, s.dims[d].Label(c.Indices[d])))
	}
	return strings.Join(parts, " ")
}

// FeatureColumns returns the column-major feature matrix of the space:
// FeatureColumns()[d][id] is feature d of the configuration with the given
// ID. The matrix is built once when the space is created and the returned
// slices are shared, not copied — callers must treat them as read-only. It is
// the input of the batch prediction path (regtree/bagging/gp PredictBatch),
// which sweeps the whole space per planning decision.
func (s *Space) FeatureColumns() [][]float64 { return s.cols }

// FeatureNames returns the dimension names in feature-vector order.
func (s *Space) FeatureNames() []string {
	out := make([]string, len(s.dims))
	for i, d := range s.dims {
		out[i] = d.Name
	}
	return out
}
