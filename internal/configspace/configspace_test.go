package configspace

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func twoByThreeDims() []Dimension {
	return []Dimension{
		{Name: "vm", Values: []float64{1, 2}, Labels: []string{"small", "large"}},
		{Name: "workers", Values: []float64{4, 8, 16}},
	}
}

func TestNewEnumeratesCartesianProduct(t *testing.T) {
	s, err := New(twoByThreeDims(), nil)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	if s.Size() != 6 {
		t.Fatalf("Size = %d, want 6", s.Size())
	}
	if s.NumDimensions() != 2 {
		t.Fatalf("NumDimensions = %d, want 2", s.NumDimensions())
	}
	// IDs must be dense and configs must carry consistent features.
	for i, cfg := range s.Configs() {
		if cfg.ID != i {
			t.Errorf("config %d has ID %d", i, cfg.ID)
		}
		if len(cfg.Indices) != 2 || len(cfg.Features) != 2 {
			t.Fatalf("config %d has malformed indices/features: %+v", i, cfg)
		}
		dims := s.Dimensions()
		for d := range dims {
			if cfg.Features[d] != dims[d].Values[cfg.Indices[d]] {
				t.Errorf("config %d feature %d = %v, want %v",
					i, d, cfg.Features[d], dims[d].Values[cfg.Indices[d]])
			}
		}
	}
}

func TestNewWithFilter(t *testing.T) {
	// Keep only configurations where workers index is strictly greater than
	// the VM index, mimicking per-size cluster caps in the Scout dataset.
	filter := func(idx []int) bool { return idx[1] > idx[0] }
	s, err := New(twoByThreeDims(), filter)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3", s.Size())
	}
	for _, cfg := range s.Configs() {
		if cfg.Indices[1] <= cfg.Indices[0] {
			t.Errorf("filtered space contains excluded config %+v", cfg)
		}
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		dims []Dimension
	}{
		{name: "no dimensions", dims: nil},
		{name: "empty name", dims: []Dimension{{Name: "", Values: []float64{1}}}},
		{name: "no values", dims: []Dimension{{Name: "a"}}},
		{name: "label mismatch", dims: []Dimension{{Name: "a", Values: []float64{1, 2}, Labels: []string{"x"}}}},
		{name: "duplicate values", dims: []Dimension{{Name: "a", Values: []float64{1, 1}}}},
		{name: "duplicate names", dims: []Dimension{
			{Name: "a", Values: []float64{1}},
			{Name: "a", Values: []float64{2}},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.dims, nil); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestNewEmptyAfterFilter(t *testing.T) {
	_, err := New(twoByThreeDims(), func([]int) bool { return false })
	if !errors.Is(err, ErrEmptySpace) {
		t.Errorf("error = %v, want ErrEmptySpace", err)
	}
}

func TestConfigAndLookup(t *testing.T) {
	s, err := New(twoByThreeDims(), nil)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	cfg, err := s.Config(3)
	if err != nil {
		t.Fatalf("Config(3) error: %v", err)
	}
	if cfg.ID != 3 {
		t.Errorf("Config(3).ID = %d", cfg.ID)
	}
	if _, err := s.Config(-1); err == nil {
		t.Error("Config(-1) expected error")
	}
	if _, err := s.Config(6); err == nil {
		t.Error("Config(6) expected error")
	}

	found, ok := s.Lookup([]int{1, 2})
	if !ok {
		t.Fatal("Lookup([1,2]) not found")
	}
	if found.Features[0] != 2 || found.Features[1] != 16 {
		t.Errorf("Lookup returned wrong config %+v", found)
	}
	if _, ok := s.Lookup([]int{5, 0}); ok {
		t.Error("Lookup of out-of-range indices should fail")
	}
	if _, ok := s.Lookup([]int{0}); ok {
		t.Error("Lookup with wrong arity should fail")
	}
}

func TestDescribeAndLabels(t *testing.T) {
	s, err := New(twoByThreeDims(), nil)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	cfg, ok := s.Lookup([]int{1, 0})
	if !ok {
		t.Fatal("Lookup failed")
	}
	desc := s.Describe(cfg)
	if !strings.Contains(desc, "vm=large") || !strings.Contains(desc, "workers=4") {
		t.Errorf("Describe = %q", desc)
	}
	d, err := s.Dimension(0)
	if err != nil {
		t.Fatalf("Dimension(0) error: %v", err)
	}
	if d.Label(0) != "small" || d.Label(1) != "large" {
		t.Errorf("labels = %q, %q", d.Label(0), d.Label(1))
	}
	if d.Label(5) != "" {
		t.Errorf("out-of-range label = %q, want empty", d.Label(5))
	}
	d1, err := s.Dimension(1)
	if err != nil {
		t.Fatalf("Dimension(1) error: %v", err)
	}
	if d1.Label(2) != "16" {
		t.Errorf("numeric fallback label = %q, want 16", d1.Label(2))
	}
	if _, err := s.Dimension(7); err == nil {
		t.Error("Dimension(7) expected error")
	}
}

func TestCloneIsolation(t *testing.T) {
	s, err := New(twoByThreeDims(), nil)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	cfg, err := s.Config(0)
	if err != nil {
		t.Fatalf("Config error: %v", err)
	}
	cfg.Features[0] = 999
	cfg.Indices[0] = 999
	again, err := s.Config(0)
	if err != nil {
		t.Fatalf("Config error: %v", err)
	}
	if again.Features[0] == 999 || again.Indices[0] == 999 {
		t.Error("mutating a returned config leaked into the space")
	}
}

func TestFeatureNamesAndIDs(t *testing.T) {
	s, err := New(twoByThreeDims(), nil)
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	names := s.FeatureNames()
	if len(names) != 2 || names[0] != "vm" || names[1] != "workers" {
		t.Errorf("FeatureNames = %v", names)
	}
	ids := s.IDs()
	if len(ids) != 6 {
		t.Fatalf("IDs length = %d", len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Errorf("IDs[%d] = %d", i, id)
		}
	}
}

func TestQuickSpaceSizeMatchesFilter(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDims := rng.Intn(3) + 1
		dims := make([]Dimension, nDims)
		total := 1
		for d := range dims {
			nVals := rng.Intn(4) + 1
			vals := make([]float64, nVals)
			for v := range vals {
				vals[v] = float64(v) + rng.Float64()/2
			}
			dims[d] = Dimension{Name: string(rune('a' + d)), Values: vals}
			total *= nVals
		}
		// Filter keeps combinations whose index sum is even.
		filter := func(idx []int) bool {
			sum := 0
			for _, i := range idx {
				sum += i
			}
			return sum%2 == 0
		}
		s, err := New(dims, filter)
		if err != nil {
			// A space can legitimately become empty only if the filter removes
			// everything, which cannot happen here since the all-zero index
			// vector always has an even sum.
			return false
		}
		if s.Size() > total {
			return false
		}
		for _, cfg := range s.Configs() {
			if !filter(cfg.Indices) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("space enumeration property failed: %v", err)
	}
}

func TestFeatureColumnsMatchConfigFeatures(t *testing.T) {
	space, err := New([]Dimension{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{10, 20}},
	}, func(indices []int) bool { return indices[0] != 1 || indices[1] != 1 })
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	cols := space.FeatureColumns()
	if len(cols) != space.NumDimensions() {
		t.Fatalf("FeatureColumns has %d columns, want %d", len(cols), space.NumDimensions())
	}
	for d, col := range cols {
		if len(col) != space.Size() {
			t.Fatalf("column %d has %d points, want %d", d, len(col), space.Size())
		}
	}
	for _, cfg := range space.Configs() {
		for d, v := range cfg.Features {
			if cols[d][cfg.ID] != v {
				t.Errorf("cols[%d][%d] = %v, want %v", d, cfg.ID, cols[d][cfg.ID], v)
			}
		}
	}
}
