package configspace

import (
	"errors"
	"strings"
	"testing"
)

func testDims() []Dimension {
	return []Dimension{
		{Name: "a", Values: []float64{0, 1, 2}},
		{Name: "b", Values: []float64{10, 20}},
		{Name: "c", Values: []float64{0.5, 1.5, 2.5, 3.5}},
	}
}

// evenFilter keeps index vectors whose component sum is even.
func evenFilter(indices []int) bool {
	sum := 0
	for _, i := range indices {
		sum += i
	}
	return sum%2 == 0
}

// TestStreamingMatchesMaterialized pins the contract between the two
// representations: identical sizes, configurations, feature rows, lookups and
// block views for the same dimensions and filter.
func TestStreamingMatchesMaterialized(t *testing.T) {
	for _, filter := range []Filter{nil, evenFilter} {
		eager, err := New(testDims(), filter)
		if err != nil {
			t.Fatalf("New error: %v", err)
		}
		stream, err := NewStreaming(testDims(), filter)
		if err != nil {
			t.Fatalf("NewStreaming error: %v", err)
		}
		if !stream.Streaming() || eager.Streaming() {
			t.Fatal("Streaming() flags wrong")
		}
		if eager.Size() != stream.Size() {
			t.Fatalf("sizes differ: %d vs %d", eager.Size(), stream.Size())
		}
		for id := 0; id < eager.Size(); id++ {
			a, err := eager.Config(id)
			if err != nil {
				t.Fatalf("eager Config(%d): %v", id, err)
			}
			b, err := stream.Config(id)
			if err != nil {
				t.Fatalf("streaming Config(%d): %v", id, err)
			}
			if a.ID != b.ID || len(a.Indices) != len(b.Indices) {
				t.Fatalf("config %d differs: %+v vs %+v", id, a, b)
			}
			for d := range a.Indices {
				if a.Indices[d] != b.Indices[d] || a.Features[d] != b.Features[d] {
					t.Fatalf("config %d dim %d differs: %+v vs %+v", id, d, a, b)
				}
			}
			// Lookup round-trips on both representations.
			if got, ok := stream.IDOfIndices(a.Indices); !ok || got != id {
				t.Fatalf("streaming IDOfIndices(%v) = %d, %v, want %d", a.Indices, got, ok, id)
			}
			if got, ok := eager.IDOfIndices(a.Indices); !ok || got != id {
				t.Fatalf("eager IDOfIndices(%v) = %d, %v, want %d", a.Indices, got, ok, id)
			}
			row, err := stream.RowFeatures(id)
			if err != nil {
				t.Fatalf("RowFeatures(%d): %v", id, err)
			}
			for d := range row {
				if row[d] != a.Features[d] {
					t.Fatalf("RowFeatures(%d) = %v, want %v", id, row, a.Features)
				}
			}
		}
	}
}

// TestForEachBlockCoversSpace checks block iteration on both representations
// and at block sizes below, at, and above the space size — including a
// streaming space with a filter.
func TestForEachBlockCoversSpace(t *testing.T) {
	for _, filter := range []Filter{nil, evenFilter} {
		for _, build := range []func([]Dimension, Filter) (*Space, error){New, NewStreaming} {
			s, err := build(testDims(), filter)
			if err != nil {
				t.Fatalf("constructor error: %v", err)
			}
			for _, blockSize := range []int{1, 3, s.Size(), s.Size() + 100, 0} {
				covered := 0
				err := s.ForEachBlock(blockSize, func(b Block) error {
					if b.Start != covered {
						t.Fatalf("block starts at %d, want %d", b.Start, covered)
					}
					if len(b.Cols) != s.NumDimensions() {
						t.Fatalf("block has %d columns, want %d", len(b.Cols), s.NumDimensions())
					}
					for i := 0; i < b.Len(); i++ {
						cfg, err := s.Config(b.Start + i)
						if err != nil {
							return err
						}
						for d := range b.Cols {
							if b.Cols[d][i] != cfg.Features[d] {
								t.Fatalf("block feature [%d][%d] = %v, want %v",
									d, i, b.Cols[d][i], cfg.Features[d])
							}
						}
					}
					covered += b.Len()
					return nil
				})
				if err != nil {
					t.Fatalf("ForEachBlock error: %v", err)
				}
				if covered != s.Size() {
					t.Fatalf("blocks covered %d configs, want %d", covered, s.Size())
				}
			}
		}
	}
}

// TestSingleConfigSpace pins the smallest edge case on both representations.
func TestSingleConfigSpace(t *testing.T) {
	dims := []Dimension{{Name: "only", Values: []float64{42}}}
	for _, build := range []func([]Dimension, Filter) (*Space, error){New, NewStreaming} {
		s, err := build(dims, nil)
		if err != nil {
			t.Fatalf("constructor error: %v", err)
		}
		if s.Size() != 1 {
			t.Fatalf("size = %d, want 1", s.Size())
		}
		blocks := 0
		if err := s.ForEachBlock(1000, func(b Block) error {
			blocks++
			if b.Len() != 1 || b.Cols[0][0] != 42 {
				t.Fatalf("unexpected block %+v", b)
			}
			return nil
		}); err != nil {
			t.Fatalf("ForEachBlock error: %v", err)
		}
		if blocks != 1 {
			t.Fatalf("blocks = %d, want 1", blocks)
		}
	}
}

// TestFilterRejectsAllIsClearError requires both constructors to surface the
// rejected-everything case as ErrEmptySpace with the combination count.
func TestFilterRejectsAllIsClearError(t *testing.T) {
	reject := func([]int) bool { return false }
	for _, build := range []func([]Dimension, Filter) (*Space, error){New, NewStreaming} {
		_, err := build(testDims(), reject)
		if !errors.Is(err, ErrEmptySpace) {
			t.Fatalf("error = %v, want ErrEmptySpace", err)
		}
		if !strings.Contains(err.Error(), "24 combinations") {
			t.Errorf("error %q does not name the rejected combination count", err)
		}
	}
}

// TestCrossProductOverflowGuard requires both constructors to reject
// dimension products that overflow int instead of wrapping silently.
func TestCrossProductOverflowGuard(t *testing.T) {
	values := make([]float64, 1<<16)
	for i := range values {
		values[i] = float64(i)
	}
	dims := []Dimension{
		{Name: "a", Values: values},
		{Name: "b", Values: values},
		{Name: "c", Values: values},
		{Name: "d", Values: values},
	}
	for _, build := range []func([]Dimension, Filter) (*Space, error){New, NewStreaming} {
		_, err := build(dims, nil)
		if err == nil || !strings.Contains(err.Error(), "overflow") {
			t.Fatalf("error = %v, want overflow guard", err)
		}
	}
}

// TestMaterializationLimit: New refuses spaces above MaxMaterializedSize and
// points at NewStreaming, which handles them without materializing.
func TestMaterializationLimit(t *testing.T) {
	values := make([]float64, 1500)
	for i := range values {
		values[i] = float64(i)
	}
	dims := []Dimension{
		{Name: "a", Values: values},
		{Name: "b", Values: values},
	}
	if _, err := New(dims, nil); err == nil || !strings.Contains(err.Error(), "NewStreaming") {
		t.Fatalf("New error = %v, want materialization-limit error naming NewStreaming", err)
	}
	s, err := NewStreaming(dims, nil)
	if err != nil {
		t.Fatalf("NewStreaming error: %v", err)
	}
	if s.Size() != 1500*1500 {
		t.Fatalf("size = %d, want %d", s.Size(), 1500*1500)
	}
	cfg, err := s.Config(s.Size() - 1)
	if err != nil {
		t.Fatalf("Config error: %v", err)
	}
	if cfg.Features[0] != 1499 || cfg.Features[1] != 1499 {
		t.Fatalf("last config = %+v", cfg)
	}
}

// TestAppendFeaturesArena checks arena decoding against Config on a filtered
// streaming space.
func TestAppendFeaturesArena(t *testing.T) {
	s, err := NewStreaming(testDims(), evenFilter)
	if err != nil {
		t.Fatalf("NewStreaming error: %v", err)
	}
	arena := make([]float64, 0, s.Size()*s.NumDimensions())
	for id := 0; id < s.Size(); id++ {
		var err error
		arena, err = s.AppendFeatures(arena, id)
		if err != nil {
			t.Fatalf("AppendFeatures(%d): %v", id, err)
		}
	}
	for id := 0; id < s.Size(); id++ {
		cfg, err := s.Config(id)
		if err != nil {
			t.Fatalf("Config(%d): %v", id, err)
		}
		row := arena[id*s.NumDimensions() : (id+1)*s.NumDimensions()]
		for d := range row {
			if row[d] != cfg.Features[d] {
				t.Fatalf("arena row %d = %v, want %v", id, row, cfg.Features)
			}
		}
	}
}

// TestNearestIDFiltered checks nearest-ID mapping on a filtered streaming
// space: members map to themselves, non-members to an adjacent accepted
// combination.
func TestNearestIDFiltered(t *testing.T) {
	s, err := NewStreaming(testDims(), evenFilter)
	if err != nil {
		t.Fatalf("NewStreaming error: %v", err)
	}
	for id := 0; id < s.Size(); id++ {
		cfg, err := s.Config(id)
		if err != nil {
			t.Fatalf("Config(%d): %v", id, err)
		}
		if got, ok := s.NearestID(cfg.Indices); !ok || got != id {
			t.Fatalf("NearestID(%v) = %d, %v, want %d", cfg.Indices, got, ok, id)
		}
	}
	// An odd-sum combination is not in the space; its nearest neighbour must
	// be a valid ID.
	if id, ok := s.NearestID([]int{0, 0, 1}); !ok || id < 0 || id >= s.Size() {
		t.Fatalf("NearestID on non-member = %d, %v", id, ok)
	}
	if _, ok := s.NearestID([]int{9, 9, 9}); ok {
		t.Fatal("NearestID accepted out-of-range indices")
	}
}
