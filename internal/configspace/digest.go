package configspace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Digest returns a content hash identifying the space: two spaces with equal
// digests contain the same configurations — same dimensions (names, values,
// labels), same representation (materialized vs streaming), and same filter
// effect — in the same ID order, so every ID-keyed artifact derived from one
// (feature rows, column matrices, unit-price caches, prediction memos) is
// valid for the other. The cross-campaign sharing layer keys its interned
// space artifacts by this digest.
//
// Materialized and streaming spaces hash differently even when they hold the
// same configurations: consumers of a materialized space may rely on
// FeatureColumns and Configs, which streaming spaces do not provide, so the
// two representations must never share an artifact.
//
// The digest is computed lazily on first call and memoized; Spaces are
// immutable after construction, so concurrent calls are safe.
func (s *Space) Digest() string {
	s.digestOnce.Do(func() { s.digestHex = s.computeDigest() })
	return s.digestHex
}

func (s *Space) computeDigest() string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(str string) {
		writeU64(uint64(len(str)))
		h.Write([]byte(str))
	}

	if s.streaming {
		writeStr("configspace-v1/streaming")
	} else {
		writeStr("configspace-v1/materialized")
	}

	writeU64(uint64(len(s.dims)))
	for _, d := range s.dims {
		writeStr(d.Name)
		writeU64(uint64(len(d.Values)))
		for _, v := range d.Values {
			writeU64(math.Float64bits(v))
		}
		writeU64(uint64(len(d.Labels)))
		for _, l := range d.Labels {
			writeStr(l)
		}
	}

	// Filter effect: the set of cross-product points kept. The unfiltered
	// space hashes a marker only; filtered spaces hash every surviving flat
	// index (bounded by MaxMaterializedSize for materialized spaces and by
	// the accepted list's own size for streaming ones).
	product := 1
	for _, d := range s.dims {
		product *= len(d.Values)
	}
	switch {
	case s.streaming && s.accepted == nil, !s.streaming && s.total == product:
		writeStr("unfiltered")
	case s.streaming:
		writeStr("filtered")
		writeU64(uint64(len(s.accepted)))
		for _, flat := range s.accepted {
			writeU64(uint64(flat))
		}
	default:
		writeStr("filtered")
		writeU64(uint64(len(s.configs)))
		strides := dimStrides(s.dims)
		for _, cfg := range s.configs {
			flat := 0
			for d, idx := range cfg.Indices {
				flat += idx * strides[d]
			}
			writeU64(uint64(flat))
		}
	}

	return hex.EncodeToString(h.Sum(nil))
}
