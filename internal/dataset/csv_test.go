package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	job := testJob(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, job); err != nil {
		t.Fatalf("WriteCSV error: %v", err)
	}
	parsed, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV error: %v", err)
	}
	if parsed.Name() != job.Name() {
		t.Errorf("round-trip name = %q, want %q", parsed.Name(), job.Name())
	}
	if parsed.TimeoutSeconds() != job.TimeoutSeconds() {
		t.Errorf("round-trip timeout = %v, want %v", parsed.TimeoutSeconds(), job.TimeoutSeconds())
	}
	if parsed.Size() != job.Size() {
		t.Fatalf("round-trip size = %d, want %d", parsed.Size(), job.Size())
	}

	// The space may be re-enumerated in a different ID order; compare by
	// describing each configuration.
	origByDesc := make(map[string]Measurement)
	for _, m := range job.Measurements() {
		cfg, err := job.Space().Config(m.ConfigID)
		if err != nil {
			t.Fatalf("Config error: %v", err)
		}
		origByDesc[job.Space().Describe(cfg)] = m
	}
	for _, m := range parsed.Measurements() {
		cfg, err := parsed.Space().Config(m.ConfigID)
		if err != nil {
			t.Fatalf("Config error: %v", err)
		}
		desc := parsed.Space().Describe(cfg)
		orig, ok := origByDesc[desc]
		if !ok {
			t.Fatalf("configuration %q missing from original job", desc)
		}
		if math.Abs(m.RuntimeSeconds-orig.RuntimeSeconds) > 1e-9 {
			t.Errorf("%q runtime = %v, want %v", desc, m.RuntimeSeconds, orig.RuntimeSeconds)
		}
		if math.Abs(m.Cost-orig.Cost) > 1e-9 {
			t.Errorf("%q cost = %v, want %v", desc, m.Cost, orig.Cost)
		}
		if math.Abs(m.Extra["energy"]-orig.Extra["energy"]) > 1e-9 {
			t.Errorf("%q energy = %v, want %v", desc, m.Extra["energy"], orig.Extra["energy"])
		}
	}
}

func TestWriteCSVNilJob(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}, nil); err == nil {
		t.Error("WriteCSV(nil) should error")
	}
}

func TestReadCSVComputesCostWhenMissing(t *testing.T) {
	csvText := `# job=mini
# timeout_seconds=600
vm,workers,runtime_seconds,unit_price_per_hour
small,2,3600,0.5
small,4,1800,1.0
large,2,1200,2.0
large,4,900,4.0
`
	job, err := ReadCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatalf("ReadCSV error: %v", err)
	}
	if job.Name() != "mini" {
		t.Errorf("name = %q", job.Name())
	}
	if job.Size() != 4 {
		t.Fatalf("size = %d, want 4", job.Size())
	}
	for _, m := range job.Measurements() {
		want := m.RuntimeSeconds / 3600 * m.UnitPricePerHour
		if math.Abs(m.Cost-want) > 1e-12 {
			t.Errorf("config %d cost = %v, want derived %v", m.ConfigID, m.Cost, want)
		}
	}
	// The "vm" dimension is non-numeric, so it must have labels.
	dims := job.Space().Dimensions()
	foundVM := false
	for _, d := range dims {
		if d.Name == "vm" {
			foundVM = true
			if len(d.Labels) != 2 {
				t.Errorf("vm dimension labels = %v", d.Labels)
			}
		}
		if d.Name == "workers" {
			if len(d.Values) != 2 || d.Values[0] != 2 || d.Values[1] != 4 {
				t.Errorf("workers values = %v, want [2 4]", d.Values)
			}
		}
	}
	if !foundVM {
		t.Error("vm dimension missing")
	}
}

func TestReadCSVSparseSpace(t *testing.T) {
	// Only 3 of the 4 combinations are present: the space must contain
	// exactly the observed configurations, as in the Scout dataset where
	// larger VM sizes cap the cluster size.
	csvText := `vm,workers,runtime_seconds,unit_price_per_hour
small,2,3600,0.5
small,4,1800,1.0
large,2,1200,2.0
`
	job, err := ReadCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatalf("ReadCSV error: %v", err)
	}
	if job.Size() != 3 {
		t.Errorf("size = %d, want 3 (sparse space)", job.Size())
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
	}{
		{name: "empty", text: ""},
		{name: "header only", text: "a,runtime_seconds,unit_price_per_hour\n"},
		{name: "missing price", text: "a,runtime_seconds\n1,10\n"},
		{name: "missing runtime", text: "a,unit_price_per_hour\n1,10\n"},
		{name: "no dimensions", text: "runtime_seconds,unit_price_per_hour\n10,1\n"},
		{name: "bad runtime", text: "a,runtime_seconds,unit_price_per_hour\n1,zzz,1\n"},
		{name: "bad price", text: "a,runtime_seconds,unit_price_per_hour\n1,10,zzz\n"},
		{name: "bad timeout comment", text: "# timeout_seconds=abc\na,runtime_seconds,unit_price_per_hour\n1,10,1\n"},
		{name: "duplicate row", text: "a,runtime_seconds,unit_price_per_hour\n1,10,1\n1,20,1\n"},
		{name: "bad timed_out", text: "a,runtime_seconds,unit_price_per_hour,timed_out\n1,10,1,maybe\n"},
		{name: "bad extra", text: "a,runtime_seconds,unit_price_per_hour,extra_energy\n1,10,1,zzz\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.text)); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestReadCSVTimedOutColumn(t *testing.T) {
	csvText := `a,runtime_seconds,unit_price_per_hour,cost,timed_out
1,600,1,0.1667,true
2,300,1,0.0833,false
`
	job, err := ReadCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatalf("ReadCSV error: %v", err)
	}
	timedOutCount := 0
	for _, m := range job.Measurements() {
		if m.TimedOut {
			timedOutCount++
		}
	}
	if timedOutCount != 1 {
		t.Errorf("timed-out count = %d, want 1", timedOutCount)
	}
}
