package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/configspace"
)

// Column names of the fixed (non-dimension) CSV columns.
const (
	colRuntime  = "runtime_seconds"
	colPrice    = "unit_price_per_hour"
	colCost     = "cost"
	colTimedOut = "timed_out"
	extraPrefix = "extra_"
)

// WriteCSV serializes the job as CSV: one column per dimension (using labels
// when available), followed by runtime_seconds, unit_price_per_hour, cost,
// timed_out, and one extra_<name> column per extra metric. Two leading
// comment lines carry the job name and timeout.
func WriteCSV(w io.Writer, job *Job) error {
	if job == nil {
		return errors.New("dataset: nil job")
	}
	if _, err := fmt.Fprintf(w, "# job=%s\n# timeout_seconds=%g\n", job.Name(), job.TimeoutSeconds()); err != nil {
		return fmt.Errorf("dataset: writing CSV header comments: %w", err)
	}

	dims := job.Space().Dimensions()
	extraNames := collectExtraNames(job.Measurements())

	cw := csv.NewWriter(w)
	header := make([]string, 0, len(dims)+4+len(extraNames))
	for _, d := range dims {
		header = append(header, d.Name)
	}
	header = append(header, colRuntime, colPrice, colCost, colTimedOut)
	for _, name := range extraNames {
		header = append(header, extraPrefix+name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}

	for _, m := range job.Measurements() {
		cfg, err := job.Space().Config(m.ConfigID)
		if err != nil {
			return err
		}
		row := make([]string, 0, len(header))
		for d := range dims {
			row = append(row, dims[d].Label(cfg.Indices[d]))
		}
		row = append(row,
			strconv.FormatFloat(m.RuntimeSeconds, 'g', -1, 64),
			strconv.FormatFloat(m.UnitPricePerHour, 'g', -1, 64),
			strconv.FormatFloat(m.Cost, 'g', -1, 64),
			strconv.FormatBool(m.TimedOut),
		)
		for _, name := range extraNames {
			row = append(row, strconv.FormatFloat(m.Extra[name], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing CSV row for config %d: %w", m.ConfigID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing CSV: %w", err)
	}
	return nil
}

func collectExtraNames(measurements []Measurement) []string {
	set := make(map[string]struct{})
	for _, m := range measurements {
		for name := range m.Extra {
			set[name] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// csvRow is a parsed CSV data row prior to space construction.
type csvRow struct {
	dimCells []string
	m        Measurement
}

// ReadCSV parses a job from the CSV format produced by WriteCSV. Dimension
// columns may contain either numbers or arbitrary labels; label columns are
// mapped to ordinal numeric values in sorted label order.
func ReadCSV(r io.Reader) (*Job, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	name := "job"
	timeout := 0.0

	lines := strings.Split(string(raw), "\n")
	dataLines := make([]string, 0, len(lines))
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			meta := strings.TrimSpace(strings.TrimPrefix(trimmed, "#"))
			if v, ok := strings.CutPrefix(meta, "job="); ok {
				name = strings.TrimSpace(v)
			}
			if v, ok := strings.CutPrefix(meta, "timeout_seconds="); ok {
				parsed, perr := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if perr != nil {
					return nil, fmt.Errorf("dataset: parsing timeout comment %q: %w", trimmed, perr)
				}
				timeout = parsed
			}
			continue
		}
		dataLines = append(dataLines, line)
	}
	if len(dataLines) < 2 {
		return nil, errors.New("dataset: CSV requires a header and at least one data row")
	}

	cr := csv.NewReader(strings.NewReader(strings.Join(dataLines, "\n")))
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: parsing CSV: %w", err)
	}
	header := records[0]
	dimCols, fixedCols, extraCols, err := classifyColumns(header)
	if err != nil {
		return nil, err
	}

	rows := make([]csvRow, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d cells, want %d", i+1, len(rec), len(header))
		}
		row, err := parseRow(rec, dimCols, fixedCols, extraCols, header)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", i+1, err)
		}
		rows = append(rows, row)
	}

	space, indexOf, err := buildSpace(header, dimCols, rows)
	if err != nil {
		return nil, err
	}

	measurements := make([]Measurement, 0, len(rows))
	for i, row := range rows {
		id, ok := indexOf(row.dimCells)
		if !ok {
			return nil, fmt.Errorf("dataset: row %d does not map to a configuration", i+1)
		}
		m := row.m
		m.ConfigID = id
		measurements = append(measurements, m)
	}
	return NewJob(name, space, measurements, timeout)
}

// classifyColumns splits the header into dimension columns, fixed columns and
// extra metric columns.
func classifyColumns(header []string) (dimCols []int, fixedCols map[string]int, extraCols map[string]int, err error) {
	fixedCols = make(map[string]int)
	extraCols = make(map[string]int)
	for i, h := range header {
		switch {
		case h == colRuntime || h == colPrice || h == colCost || h == colTimedOut:
			fixedCols[h] = i
		case strings.HasPrefix(h, extraPrefix):
			extraCols[strings.TrimPrefix(h, extraPrefix)] = i
		default:
			dimCols = append(dimCols, i)
		}
	}
	for _, required := range []string{colRuntime, colPrice} {
		if _, ok := fixedCols[required]; !ok {
			return nil, nil, nil, fmt.Errorf("dataset: CSV is missing required column %q", required)
		}
	}
	if len(dimCols) == 0 {
		return nil, nil, nil, errors.New("dataset: CSV has no dimension columns")
	}
	return dimCols, fixedCols, extraCols, nil
}

func parseRow(rec []string, dimCols []int, fixedCols, extraCols map[string]int, header []string) (csvRow, error) {
	row := csvRow{dimCells: make([]string, 0, len(dimCols))}
	for _, c := range dimCols {
		row.dimCells = append(row.dimCells, strings.TrimSpace(rec[c]))
	}

	runtime, err := strconv.ParseFloat(strings.TrimSpace(rec[fixedCols[colRuntime]]), 64)
	if err != nil {
		return csvRow{}, fmt.Errorf("parsing %s: %w", colRuntime, err)
	}
	price, err := strconv.ParseFloat(strings.TrimSpace(rec[fixedCols[colPrice]]), 64)
	if err != nil {
		return csvRow{}, fmt.Errorf("parsing %s: %w", colPrice, err)
	}
	cost := runtime / 3600 * price
	if c, ok := fixedCols[colCost]; ok {
		cost, err = strconv.ParseFloat(strings.TrimSpace(rec[c]), 64)
		if err != nil {
			return csvRow{}, fmt.Errorf("parsing %s: %w", colCost, err)
		}
	}
	timedOut := false
	if c, ok := fixedCols[colTimedOut]; ok {
		timedOut, err = strconv.ParseBool(strings.TrimSpace(rec[c]))
		if err != nil {
			return csvRow{}, fmt.Errorf("parsing %s: %w", colTimedOut, err)
		}
	}
	row.m = Measurement{
		RuntimeSeconds:   runtime,
		UnitPricePerHour: price,
		Cost:             cost,
		TimedOut:         timedOut,
	}
	if len(extraCols) > 0 {
		row.m.Extra = make(map[string]float64, len(extraCols))
		for name, c := range extraCols {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[c]), 64)
			if err != nil {
				return csvRow{}, fmt.Errorf("parsing %s%s: %w", extraPrefix, name, err)
			}
			row.m.Extra[name] = v
		}
	}
	return row, nil
}

// buildSpace derives a configuration space from the observed dimension cells
// and returns a function that maps a row's cells to the configuration ID.
func buildSpace(header []string, dimCols []int, rows []csvRow) (*configspace.Space, func(cells []string) (int, bool), error) {
	nDims := len(dimCols)
	// Distinct cell values per dimension.
	distinct := make([]map[string]struct{}, nDims)
	for d := range distinct {
		distinct[d] = make(map[string]struct{})
	}
	for _, row := range rows {
		for d, cell := range row.dimCells {
			distinct[d][cell] = struct{}{}
		}
	}

	dims := make([]configspace.Dimension, nDims)
	cellIndex := make([]map[string]int, nDims)
	for d := range dims {
		cells := make([]string, 0, len(distinct[d]))
		for c := range distinct[d] {
			cells = append(cells, c)
		}
		sortCells(cells)

		dim := configspace.Dimension{Name: header[dimCols[d]]}
		numeric := true
		values := make([]float64, len(cells))
		for i, c := range cells {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				numeric = false
				break
			}
			values[i] = v
		}
		if numeric {
			dim.Values = values
		} else {
			dim.Values = make([]float64, len(cells))
			dim.Labels = cells
			for i := range cells {
				dim.Values[i] = float64(i)
			}
		}
		dims[d] = dim
		cellIndex[d] = make(map[string]int, len(cells))
		for i, c := range cells {
			cellIndex[d][c] = i
		}
	}

	// Observed index vectors define the (possibly sparse) space.
	type key string
	observed := make(map[key]struct{}, len(rows))
	encode := func(indices []int) key {
		parts := make([]string, len(indices))
		for i, idx := range indices {
			parts[i] = strconv.Itoa(idx)
		}
		return key(strings.Join(parts, ","))
	}
	for _, row := range rows {
		indices := make([]int, nDims)
		for d, cell := range row.dimCells {
			indices[d] = cellIndex[d][cell]
		}
		observed[encode(indices)] = struct{}{}
	}

	space, err := configspace.New(dims, func(indices []int) bool {
		_, ok := observed[encode(indices)]
		return ok
	})
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: building space from CSV: %w", err)
	}

	indexOf := func(cells []string) (int, bool) {
		indices := make([]int, nDims)
		for d, cell := range cells {
			idx, ok := cellIndex[d][cell]
			if !ok {
				return 0, false
			}
			indices[d] = idx
		}
		cfg, ok := space.Lookup(indices)
		if !ok {
			return 0, false
		}
		return cfg.ID, true
	}
	return space, indexOf, nil
}

// sortCells sorts cell strings numerically when every cell parses as a
// number, and lexicographically otherwise, so that dimension values keep a
// natural order (e.g. cluster sizes 4 < 8 < 16).
func sortCells(cells []string) {
	numeric := true
	for _, c := range cells {
		if _, err := strconv.ParseFloat(c, 64); err != nil {
			numeric = false
			break
		}
	}
	if numeric {
		sort.Slice(cells, func(i, j int) bool {
			vi, _ := strconv.ParseFloat(cells[i], 64)
			vj, _ := strconv.ParseFloat(cells[j], 64)
			return vi < vj
		})
		return
	}
	sort.Strings(cells)
}
