// Package dataset represents profiled jobs as lookup tables, the same
// simulation substrate the paper uses for its evaluation (§5.2): every
// configuration of a job's space is associated with the runtime and cost that
// were measured (or, in this reproduction, synthesized) by running the job
// once on that configuration. Optimizers are then evaluated by replaying
// those measurements.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/configspace"
)

// ErrNoFeasibleConfig is returned when an operation requires at least one
// configuration meeting the runtime constraint and none exists.
var ErrNoFeasibleConfig = errors.New("dataset: no configuration satisfies the runtime constraint")

// Measurement is the outcome of profiling a job on one configuration.
type Measurement struct {
	// ConfigID identifies the configuration within the job's space.
	ConfigID int
	// RuntimeSeconds is the measured job runtime. When the job was forcefully
	// terminated, it equals the timeout.
	RuntimeSeconds float64
	// UnitPricePerHour is U(x): the rental price of the configuration's
	// cluster in USD per hour.
	UnitPricePerHour float64
	// Cost is C(x) = T(x) · U(x) under per-second billing, in USD.
	Cost float64
	// TimedOut reports whether the job hit the forceful-termination timeout.
	TimedOut bool
	// Extra holds additional constraint metrics (e.g. energy in joules) used
	// by the multi-constraint extension.
	Extra map[string]float64
}

// UnitPricePerSecond returns U(x) expressed per second.
func (m Measurement) UnitPricePerSecond() float64 { return m.UnitPricePerHour / 3600 }

// Validate checks that the measurement is internally consistent.
func (m Measurement) Validate() error {
	if m.ConfigID < 0 {
		return fmt.Errorf("dataset: negative config ID %d", m.ConfigID)
	}
	if m.RuntimeSeconds < 0 || math.IsNaN(m.RuntimeSeconds) || math.IsInf(m.RuntimeSeconds, 0) {
		return fmt.Errorf("dataset: invalid runtime %v for config %d", m.RuntimeSeconds, m.ConfigID)
	}
	if m.UnitPricePerHour <= 0 || math.IsNaN(m.UnitPricePerHour) {
		return fmt.Errorf("dataset: invalid unit price %v for config %d", m.UnitPricePerHour, m.ConfigID)
	}
	if m.Cost < 0 || math.IsNaN(m.Cost) || math.IsInf(m.Cost, 0) {
		return fmt.Errorf("dataset: invalid cost %v for config %d", m.Cost, m.ConfigID)
	}
	return nil
}

// Job is a profiled job: a configuration space plus one measurement per
// configuration.
type Job struct {
	name           string
	space          *configspace.Space
	measurements   []Measurement
	timeoutSeconds float64
}

// NewJob builds a Job. measurements must contain exactly one entry per
// configuration of the space (matched by ConfigID). timeoutSeconds is the
// forceful-termination limit used when the data was collected; pass 0 when no
// timeout applies.
func NewJob(name string, space *configspace.Space, measurements []Measurement, timeoutSeconds float64) (*Job, error) {
	if name == "" {
		return nil, errors.New("dataset: job requires a name")
	}
	if space == nil {
		return nil, errors.New("dataset: job requires a configuration space")
	}
	if timeoutSeconds < 0 {
		return nil, fmt.Errorf("dataset: negative timeout %v", timeoutSeconds)
	}
	if len(measurements) != space.Size() {
		return nil, fmt.Errorf("dataset: %d measurements for a space of %d configurations",
			len(measurements), space.Size())
	}
	indexed := make([]Measurement, space.Size())
	seen := make([]bool, space.Size())
	for _, m := range measurements {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if m.ConfigID >= space.Size() {
			return nil, fmt.Errorf("dataset: measurement for config %d outside space of size %d",
				m.ConfigID, space.Size())
		}
		if seen[m.ConfigID] {
			return nil, fmt.Errorf("dataset: duplicate measurement for config %d", m.ConfigID)
		}
		seen[m.ConfigID] = true
		indexed[m.ConfigID] = m
	}
	return &Job{
		name:           name,
		space:          space,
		measurements:   indexed,
		timeoutSeconds: timeoutSeconds,
	}, nil
}

// Name returns the job's name.
func (j *Job) Name() string { return j.name }

// Space returns the job's configuration space.
func (j *Job) Space() *configspace.Space { return j.space }

// TimeoutSeconds returns the forceful-termination limit (0 when none).
func (j *Job) TimeoutSeconds() float64 { return j.timeoutSeconds }

// Size returns the number of configurations of the job.
func (j *Job) Size() int { return len(j.measurements) }

// Measurement returns the measurement of the given configuration.
func (j *Job) Measurement(configID int) (Measurement, error) {
	if configID < 0 || configID >= len(j.measurements) {
		return Measurement{}, fmt.Errorf("dataset: config ID %d out of range [0,%d)", configID, len(j.measurements))
	}
	return j.measurements[configID], nil
}

// Measurements returns a copy of all measurements, ordered by configuration
// ID.
func (j *Job) Measurements() []Measurement {
	out := make([]Measurement, len(j.measurements))
	copy(out, j.measurements)
	return out
}

// MeanCost returns the average cost of running the job across all
// configurations — the m̃ used to size the optimization budget
// B = N·m̃·b (paper §5.2).
func (j *Job) MeanCost() float64 {
	sum := 0.0
	for _, m := range j.measurements {
		sum += m.Cost
	}
	return sum / float64(len(j.measurements))
}

// Feasible reports whether the configuration meets the runtime constraint.
func (j *Job) Feasible(configID int, maxRuntimeSeconds float64) (bool, error) {
	m, err := j.Measurement(configID)
	if err != nil {
		return false, err
	}
	return m.RuntimeSeconds <= maxRuntimeSeconds && !m.TimedOut, nil
}

// Optimum returns the cheapest configuration that satisfies the runtime
// constraint.
func (j *Job) Optimum(maxRuntimeSeconds float64) (Measurement, error) {
	best := Measurement{}
	found := false
	for _, m := range j.measurements {
		if m.TimedOut || m.RuntimeSeconds > maxRuntimeSeconds {
			continue
		}
		if !found || m.Cost < best.Cost {
			best = m
			found = true
		}
	}
	if !found {
		return Measurement{}, ErrNoFeasibleConfig
	}
	return best, nil
}

// FeasibleFraction returns the fraction of configurations that satisfy the
// runtime constraint.
func (j *Job) FeasibleFraction(maxRuntimeSeconds float64) float64 {
	count := 0
	for _, m := range j.measurements {
		if !m.TimedOut && m.RuntimeSeconds <= maxRuntimeSeconds {
			count++
		}
	}
	return float64(count) / float64(len(j.measurements))
}

// RuntimeForFeasibleFraction returns the runtime constraint Tmax such that
// approximately the given fraction of configurations satisfies it. The paper
// sets the constraint of every job "in such a way that it is satisfied by
// roughly half of the possible configurations" (§5.2).
func (j *Job) RuntimeForFeasibleFraction(fraction float64) (float64, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("dataset: feasible fraction %v outside (0,1]", fraction)
	}
	runtimes := make([]float64, 0, len(j.measurements))
	for _, m := range j.measurements {
		if m.TimedOut {
			continue
		}
		runtimes = append(runtimes, m.RuntimeSeconds)
	}
	if len(runtimes) == 0 {
		return 0, ErrNoFeasibleConfig
	}
	sort.Float64s(runtimes)
	idx := int(math.Ceil(fraction*float64(len(j.measurements)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(runtimes) {
		idx = len(runtimes) - 1
	}
	return runtimes[idx], nil
}

// NormalizedCosts returns, for every configuration, the cost normalized by
// the cost of the optimum under the given runtime constraint, sorted in
// increasing order. This is the series plotted in Figure 1a.
func (j *Job) NormalizedCosts(maxRuntimeSeconds float64) ([]float64, error) {
	opt, err := j.Optimum(maxRuntimeSeconds)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(j.measurements))
	for _, m := range j.measurements {
		out = append(out, m.Cost/opt.Cost)
	}
	sort.Float64s(out)
	return out, nil
}

// CountWithinFactor returns the number of configurations whose cost is within
// the given multiplicative factor of the optimum and that satisfy the runtime
// constraint. Figure 1a's discussion reports that only 5–20 configurations
// (1.5%–5% of the space) are within a factor of two of the optimum.
func (j *Job) CountWithinFactor(maxRuntimeSeconds, factor float64) (int, error) {
	if factor < 1 {
		return 0, fmt.Errorf("dataset: factor %v below 1", factor)
	}
	opt, err := j.Optimum(maxRuntimeSeconds)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, m := range j.measurements {
		if m.TimedOut || m.RuntimeSeconds > maxRuntimeSeconds {
			continue
		}
		if m.Cost <= factor*opt.Cost {
			count++
		}
	}
	return count, nil
}
