package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/configspace"
)

// randomJob generates a random (but valid) job for property-based testing.
func randomJob(rng *rand.Rand) (*Job, error) {
	nDims := rng.Intn(3) + 1
	dims := make([]configspace.Dimension, nDims)
	for d := range dims {
		nVals := rng.Intn(3) + 2
		vals := make([]float64, nVals)
		for v := range vals {
			vals[v] = float64(v)*float64(rng.Intn(5)+1) + rng.Float64()
		}
		dims[d] = configspace.Dimension{Name: string(rune('a' + d)), Values: vals}
	}
	space, err := configspace.New(dims, nil)
	if err != nil {
		return nil, err
	}
	measurements := make([]Measurement, space.Size())
	for id := 0; id < space.Size(); id++ {
		runtime := rng.Float64()*3000 + 1
		price := rng.Float64()*2 + 0.01
		measurements[id] = Measurement{
			ConfigID:         id,
			RuntimeSeconds:   runtime,
			UnitPricePerHour: price,
			Cost:             runtime / 3600 * price,
			TimedOut:         rng.Float64() < 0.1,
			Extra:            map[string]float64{"energy": rng.Float64() * 100},
		}
	}
	return NewJob("property-job", space, measurements, 3600)
}

// TestQuickCSVRoundTripPreservesMeasurements: writing a job to CSV and
// reading it back yields the same multiset of (runtime, price, cost,
// timed_out, extras), regardless of the space's shape.
func TestQuickCSVRoundTripPreservesMeasurements(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		job, err := randomJob(rng)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, job); err != nil {
			return false
		}
		parsed, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if parsed.Size() != job.Size() || parsed.TimeoutSeconds() != job.TimeoutSeconds() {
			return false
		}
		// Compare measurement multisets keyed by the configuration
		// description (IDs may be re-enumerated).
		origByDesc := make(map[string]Measurement, job.Size())
		for _, m := range job.Measurements() {
			cfg, err := job.Space().Config(m.ConfigID)
			if err != nil {
				return false
			}
			origByDesc[job.Space().Describe(cfg)] = m
		}
		for _, m := range parsed.Measurements() {
			cfg, err := parsed.Space().Config(m.ConfigID)
			if err != nil {
				return false
			}
			orig, ok := origByDesc[parsed.Space().Describe(cfg)]
			if !ok {
				return false
			}
			if math.Abs(m.RuntimeSeconds-orig.RuntimeSeconds) > 1e-6 ||
				math.Abs(m.Cost-orig.Cost) > 1e-6 ||
				m.TimedOut != orig.TimedOut ||
				math.Abs(m.Extra["energy"]-orig.Extra["energy"]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("CSV round-trip property failed: %v", err)
	}
}

// TestQuickDerivedStatisticsConsistent: the optimum is feasible, has the
// lowest cost among feasible configurations, and the feasible fraction at the
// derived Tmax is close to the requested one.
func TestQuickDerivedStatisticsConsistent(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		job, err := randomJob(rng)
		if err != nil {
			return false
		}
		tmax, err := job.RuntimeForFeasibleFraction(0.5)
		if err != nil {
			// A job where every configuration timed out has no feasible
			// runtime; skip those draws.
			return true
		}
		opt, err := job.Optimum(tmax)
		if err != nil {
			return true
		}
		feasible, err := job.Feasible(opt.ConfigID, tmax)
		if err != nil || !feasible {
			return false
		}
		for _, m := range job.Measurements() {
			ok, err := job.Feasible(m.ConfigID, tmax)
			if err != nil {
				return false
			}
			if ok && m.Cost < opt.Cost-1e-12 {
				return false
			}
		}
		frac := job.FeasibleFraction(tmax)
		return frac > 0 && frac <= 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("derived statistics property failed: %v", err)
	}
}
