package dataset

import (
	"errors"
	"math"
	"testing"

	"repro/internal/configspace"
)

// testJob builds a small 2x3 job with hand-picked runtimes and prices.
func testJob(t *testing.T) *Job {
	t.Helper()
	space, err := configspace.New([]configspace.Dimension{
		{Name: "vm", Values: []float64{0, 1}, Labels: []string{"small", "large"}},
		{Name: "workers", Values: []float64{2, 4, 8}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	// Config IDs follow lexicographic index order:
	// 0:(small,2) 1:(small,4) 2:(small,8) 3:(large,2) 4:(large,4) 5:(large,8)
	runtimes := []float64{1000, 600, 400, 500, 300, 200}
	prices := []float64{0.2, 0.4, 0.8, 0.6, 1.2, 2.4}
	measurements := make([]Measurement, space.Size())
	for id := 0; id < space.Size(); id++ {
		measurements[id] = Measurement{
			ConfigID:         id,
			RuntimeSeconds:   runtimes[id],
			UnitPricePerHour: prices[id],
			Cost:             runtimes[id] / 3600 * prices[id],
			Extra:            map[string]float64{"energy": float64(id) * 10},
		}
	}
	job, err := NewJob("test-job", space, measurements, 1200)
	if err != nil {
		t.Fatalf("NewJob error: %v", err)
	}
	return job
}

func TestNewJobValidation(t *testing.T) {
	space, err := configspace.New([]configspace.Dimension{
		{Name: "a", Values: []float64{1, 2}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	good := []Measurement{
		{ConfigID: 0, RuntimeSeconds: 10, UnitPricePerHour: 1, Cost: 10.0 / 3600},
		{ConfigID: 1, RuntimeSeconds: 20, UnitPricePerHour: 1, Cost: 20.0 / 3600},
	}
	tests := []struct {
		name         string
		jobName      string
		space        *configspace.Space
		measurements []Measurement
		timeout      float64
	}{
		{name: "empty name", jobName: "", space: space, measurements: good},
		{name: "nil space", jobName: "j", space: nil, measurements: good},
		{name: "negative timeout", jobName: "j", space: space, measurements: good, timeout: -1},
		{name: "wrong count", jobName: "j", space: space, measurements: good[:1]},
		{name: "duplicate config", jobName: "j", space: space, measurements: []Measurement{good[0], good[0]}},
		{name: "out of range config", jobName: "j", space: space, measurements: []Measurement{good[0], {ConfigID: 9, RuntimeSeconds: 1, UnitPricePerHour: 1}}},
		{name: "invalid measurement", jobName: "j", space: space, measurements: []Measurement{good[0], {ConfigID: 1, RuntimeSeconds: -1, UnitPricePerHour: 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewJob(tt.jobName, tt.space, tt.measurements, tt.timeout); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
	if _, err := NewJob("ok", space, good, 0); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

func TestMeasurementValidate(t *testing.T) {
	valid := Measurement{ConfigID: 0, RuntimeSeconds: 10, UnitPricePerHour: 0.5, Cost: 1}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid measurement rejected: %v", err)
	}
	invalid := []Measurement{
		{ConfigID: -1, RuntimeSeconds: 1, UnitPricePerHour: 1},
		{ConfigID: 0, RuntimeSeconds: math.NaN(), UnitPricePerHour: 1},
		{ConfigID: 0, RuntimeSeconds: 1, UnitPricePerHour: 0},
		{ConfigID: 0, RuntimeSeconds: 1, UnitPricePerHour: 1, Cost: -2},
	}
	for i, m := range invalid {
		if err := m.Validate(); err == nil {
			t.Errorf("invalid measurement %d accepted: %+v", i, m)
		}
	}
}

func TestUnitPricePerSecond(t *testing.T) {
	m := Measurement{UnitPricePerHour: 7.2}
	if got := m.UnitPricePerSecond(); math.Abs(got-0.002) > 1e-15 {
		t.Errorf("UnitPricePerSecond = %v, want 0.002", got)
	}
}

func TestJobAccessors(t *testing.T) {
	job := testJob(t)
	if job.Name() != "test-job" {
		t.Errorf("Name = %q", job.Name())
	}
	if job.Size() != 6 {
		t.Errorf("Size = %d, want 6", job.Size())
	}
	if job.TimeoutSeconds() != 1200 {
		t.Errorf("TimeoutSeconds = %v", job.TimeoutSeconds())
	}
	m, err := job.Measurement(3)
	if err != nil {
		t.Fatalf("Measurement error: %v", err)
	}
	if m.ConfigID != 3 || m.RuntimeSeconds != 500 {
		t.Errorf("Measurement(3) = %+v", m)
	}
	if _, err := job.Measurement(-1); err == nil {
		t.Error("negative config ID should error")
	}
	if _, err := job.Measurement(6); err == nil {
		t.Error("out-of-range config ID should error")
	}
	if got := len(job.Measurements()); got != 6 {
		t.Errorf("Measurements length = %d", got)
	}
}

func TestMeanCost(t *testing.T) {
	job := testJob(t)
	want := 0.0
	for _, m := range job.Measurements() {
		want += m.Cost
	}
	want /= 6
	if got := job.MeanCost(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanCost = %v, want %v", got, want)
	}
}

func TestOptimumAndFeasibility(t *testing.T) {
	job := testJob(t)
	// With Tmax = 450s only configs 2 (400s, cost 0.0889) and 5 (200s, cost
	// 0.1333) and 4 (300s, cost 0.1) are feasible; the optimum is config 2.
	opt, err := job.Optimum(450)
	if err != nil {
		t.Fatalf("Optimum error: %v", err)
	}
	if opt.ConfigID != 2 {
		t.Errorf("Optimum config = %d, want 2", opt.ConfigID)
	}
	feasible, err := job.Feasible(0, 450)
	if err != nil || feasible {
		t.Errorf("Feasible(0,450) = %v, %v, want false, nil", feasible, err)
	}
	feasible, err = job.Feasible(5, 450)
	if err != nil || !feasible {
		t.Errorf("Feasible(5,450) = %v, %v, want true, nil", feasible, err)
	}
	if got := job.FeasibleFraction(450); got != 0.5 {
		t.Errorf("FeasibleFraction(450) = %v, want 0.5", got)
	}
	if _, err := job.Optimum(10); !errors.Is(err, ErrNoFeasibleConfig) {
		t.Errorf("Optimum with impossible constraint error = %v, want ErrNoFeasibleConfig", err)
	}
}

func TestTimedOutConfigsAreInfeasible(t *testing.T) {
	space, err := configspace.New([]configspace.Dimension{{Name: "a", Values: []float64{1, 2}}}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	measurements := []Measurement{
		{ConfigID: 0, RuntimeSeconds: 600, UnitPricePerHour: 1, Cost: 600.0 / 3600, TimedOut: true},
		{ConfigID: 1, RuntimeSeconds: 300, UnitPricePerHour: 1, Cost: 300.0 / 3600},
	}
	job, err := NewJob("timeouts", space, measurements, 600)
	if err != nil {
		t.Fatalf("NewJob error: %v", err)
	}
	feasible, err := job.Feasible(0, 1000)
	if err != nil || feasible {
		t.Errorf("timed-out config reported feasible: %v, %v", feasible, err)
	}
	opt, err := job.Optimum(1000)
	if err != nil {
		t.Fatalf("Optimum error: %v", err)
	}
	if opt.ConfigID != 1 {
		t.Errorf("Optimum = %d, want 1", opt.ConfigID)
	}
}

func TestRuntimeForFeasibleFraction(t *testing.T) {
	job := testJob(t)
	tmax, err := job.RuntimeForFeasibleFraction(0.5)
	if err != nil {
		t.Fatalf("RuntimeForFeasibleFraction error: %v", err)
	}
	if got := job.FeasibleFraction(tmax); got != 0.5 {
		t.Errorf("FeasibleFraction at derived Tmax = %v, want 0.5 (Tmax=%v)", got, tmax)
	}
	if _, err := job.RuntimeForFeasibleFraction(0); err == nil {
		t.Error("zero fraction should error")
	}
	if _, err := job.RuntimeForFeasibleFraction(1.5); err == nil {
		t.Error("fraction above one should error")
	}
}

func TestNormalizedCosts(t *testing.T) {
	job := testJob(t)
	normalized, err := job.NormalizedCosts(450)
	if err != nil {
		t.Fatalf("NormalizedCosts error: %v", err)
	}
	if len(normalized) != 6 {
		t.Fatalf("NormalizedCosts length = %d", len(normalized))
	}
	if normalized[0] > 1+1e-12 {
		t.Errorf("smallest normalized cost = %v, want <= 1", normalized[0])
	}
	for i := 1; i < len(normalized); i++ {
		if normalized[i] < normalized[i-1] {
			t.Errorf("normalized costs not sorted at %d", i)
		}
	}
}

func TestCountWithinFactor(t *testing.T) {
	job := testJob(t)
	count, err := job.CountWithinFactor(450, 2)
	if err != nil {
		t.Fatalf("CountWithinFactor error: %v", err)
	}
	// Feasible costs: cfg2=0.0889, cfg4=0.1, cfg5=0.1333; all within 2x of 0.0889.
	if count != 3 {
		t.Errorf("CountWithinFactor = %d, want 3", count)
	}
	if _, err := job.CountWithinFactor(450, 0.5); err == nil {
		t.Error("factor below 1 should error")
	}
}
