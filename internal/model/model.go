// Package model defines the regression-model abstraction used by the
// optimizers: any learner that can be fitted on (configuration, target) pairs
// and produces a Gaussian predictive distribution per configuration can serve
// as Lynceus' black-box cost model. The paper's prototype uses a bagging
// ensemble of regression trees, and notes (§3, footnote 1) that Gaussian
// Processes are a drop-in alternative; this package provides factories for
// both.
package model

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/bagging"
	"repro/internal/gp"
	"repro/internal/numeric"
)

// Regressor is a trainable model with Gaussian predictive distributions.
type Regressor interface {
	// Fit trains the model on the given samples, replacing previous state.
	Fit(features [][]float64, targets []float64) error
	// Predict returns the predictive distribution at x.
	Predict(x []float64) (numeric.Gaussian, error)
}

// Factory creates independent Regressor instances on deterministic random
// streams, so concurrent planners can each own a private model.
type Factory interface {
	// New returns a fresh, untrained Regressor for the given stream.
	New(stream int64) Regressor
	// Name identifies the model family (e.g. "bagging", "gp").
	Name() string
}

// BatchRegressor is implemented by regressors that can predict a whole batch
// of points in one call over a column-major feature matrix (cols[d][i] is
// feature d of point i, out[i] its predictive distribution). Implementations
// must emit Gaussians bitwise identical to point-by-point Predict calls, so
// batched and scalar planners make identical decisions; they may reuse
// internal scratch, so a single PredictBatch call must not run concurrently
// with another on the same regressor.
type BatchRegressor interface {
	PredictBatch(cols [][]float64, out []numeric.Gaussian) error
}

// BatchAffectedRegressor is an optional extension of IncrementalRegressor:
// AffectedByLastUpdateBatch answers AffectedByLastUpdate for every point of
// a column-major feature matrix in one sweep, which lets Cached.Update run
// its selective invalidation without gathering rows or re-walking trees per
// memo entry.
type BatchAffectedRegressor interface {
	AffectedByLastUpdateBatch(cols [][]float64, out []bool) error
}

// AffectedAppender is the sparse form of BatchAffectedRegressor: it appends
// the ascending indices i ∈ [0, n) of the column-major matrix whose
// prediction the last Update may have changed. Combined with BatchRegressor
// it lets Cached.Update repair its memo eagerly — re-predict exactly the
// affected entries in one small batched call — instead of invalidating slots
// and paying a lazy recompute (plus an atomic tag per slot) on every later
// read.
type AffectedAppender interface {
	AppendAffectedByLastUpdate(cols [][]float64, n int, ids []int32) ([]int32, error)
}

// MemoRepairer is the strongest eager-repair extension: the regressor keeps
// enough per-point bookkeeping from a PredictBatchRepair sweep to refresh
// the points a one-sample Update moved without re-predicting them from
// scratch (for the bagging ensemble, per-tree constant stores instead of
// whole-ensemble re-walks). Repaired Gaussians must stay bitwise identical
// to a fresh prediction. Cached prefers this over the AffectedAppender +
// BatchRegressor gather/re-predict pair whenever it is implemented.
type MemoRepairer interface {
	// PredictBatchRepair is PredictBatch plus the repair bookkeeping for
	// the swept points.
	PredictBatchRepair(cols [][]float64, out []numeric.Gaussian) error
	// AppendRepairedByLastUpdate refreshes preds[i] in place for every
	// point the last Update may have moved, appends those indices to ids,
	// and reports whether the repair state was usable — false (with nil
	// error) means the caller must fall back to re-predicting.
	AppendRepairedByLastUpdate(cols [][]float64, n int, ids []int32, preds []numeric.Gaussian) ([]int32, bool, error)
}

// IncrementalRegressor is implemented by regressors that can fold one sample
// into their fitted state without a full refit, and that can snapshot that
// state into another instance of the same concrete type. The planner's
// speculative path uses it to turn the per-speculation full refit into a
// clone plus a one-sample update (core.Params.SpeculativeRefit).
//
// Implementations must be deterministic: the model that results from cloning
// a fitted source and applying a fixed sample sequence may depend only on the
// source's state and the sequence, never on goroutine scheduling — this is
// what keeps incremental planning worker-count independent.
type IncrementalRegressor interface {
	Regressor
	// Update folds one training sample into the fitted model.
	Update(x []float64, y float64) error
	// AffectedByLastUpdate reports whether the last Update may have changed
	// the prediction at x. False negatives are forbidden (a changed
	// prediction must be flagged); false positives only cost a recompute.
	AffectedByLastUpdate(x []float64) bool
	// CloneInto deep-copies the fitted state into dst, which must be an
	// instance of the same concrete type (typically from the same Factory),
	// reusing dst's storage where possible. It must not mutate the receiver,
	// so concurrent clones from one source are safe.
	CloneInto(dst any) error
}

// SupportsIncremental reports whether a regressor can serve the incremental
// speculative-refit path: it must implement IncrementalRegressor, and — when
// it additionally exposes an IncrementalCapable() configuration probe, as
// the bagging ensemble does — be configured to retain incremental state on
// Fit. The planner probes a factory product with this before resolving to
// the incremental mode, so a bagging factory built without
// bagging.Params.Incremental falls back to full refits up front instead of
// failing at the first speculative clone.
func SupportsIncremental(r Regressor) bool {
	if _, ok := r.(IncrementalRegressor); !ok {
		return false
	}
	if c, ok := r.(interface{ IncrementalCapable() bool }); ok {
		return c.IncrementalCapable()
	}
	return true
}

// Statically assert that the concrete learners satisfy Regressor and the
// batch/incremental extensions.
var (
	_ Regressor              = (*bagging.Ensemble)(nil)
	_ Regressor              = (*gp.GP)(nil)
	_ BatchRegressor         = (*bagging.Ensemble)(nil)
	_ BatchRegressor         = (*gp.GP)(nil)
	_ IncrementalRegressor   = (*bagging.Ensemble)(nil)
	_ BatchAffectedRegressor = (*bagging.Ensemble)(nil)
	_ AffectedAppender       = (*bagging.Ensemble)(nil)
)

// BaggingFactory builds bagging ensembles of regression trees (the paper's
// default model).
type BaggingFactory struct {
	factory *bagging.Factory
}

// NewBaggingFactory creates a factory for bagging ensembles with the given
// parameters and base seed.
func NewBaggingFactory(params bagging.Params, seed int64) *BaggingFactory {
	return &BaggingFactory{factory: bagging.NewFactory(params, seed)}
}

// New implements Factory.
func (f *BaggingFactory) New(stream int64) Regressor { return f.factory.New(stream) }

// Name implements Factory.
func (f *BaggingFactory) Name() string { return "bagging" }

// GPFactory builds Gaussian-Process regressors.
type GPFactory struct {
	params gp.Params
}

// NewGPFactory creates a factory for Gaussian-Process regressors.
func NewGPFactory(params gp.Params) *GPFactory {
	return &GPFactory{params: params}
}

// New implements Factory. Gaussian processes are deterministic given the
// training data, so the stream identifier is ignored.
func (f *GPFactory) New(int64) Regressor { return gp.New(f.params) }

// Name implements Factory.
func (f *GPFactory) Name() string { return "gp" }

// Kind selects a model family by name.
type Kind string

// Supported model kinds.
const (
	KindBagging Kind = "bagging"
	KindGP      Kind = "gp"
)

// NewFactory builds a Factory for the given kind.
func NewFactory(kind Kind, baggingParams bagging.Params, gpParams gp.Params, seed int64) (Factory, error) {
	switch kind {
	case KindBagging, "":
		return NewBaggingFactory(baggingParams, seed), nil
	case KindGP:
		return NewGPFactory(gpParams), nil
	default:
		return nil, fmt.Errorf("model: unknown model kind %q", kind)
	}
}

// ErrNilFactory is returned by helpers that require a factory.
var ErrNilFactory = errors.New("model: nil factory")

// Cached wraps a Regressor with a prediction memo keyed by (model
// generation, configuration ID). Lynceus' path simulation predicts the same
// finite set of configurations many times between refits — once per
// speculation layer is enough, so the memo turns every repeat into an O(1)
// lookup. Fitting bumps the generation, which invalidates the whole memo
// without clearing it.
//
// The memo's read path is lock-free: each slot carries an atomically
// published generation tag, written only after the slot's prediction, so
// concurrent PredictID calls — including concurrent cold misses on the same
// slot — never lock, never block, and never observe a half-written entry.
// Racing writers resolve by compare-and-swap claim: the loser simply returns
// its own (identical, deterministic) prediction without publishing. This is
// what lets the planner's speculation scheduler share one prefilled model
// set across every concurrently scored subtree without serializing on memo
// synchronization.
//
// On top of the tagged slots sits an all-valid fast path: after a successful
// Prefill every slot is fresh, so the memo flips to allValid and PredictID
// becomes a plain array read with no atomics. When the inner regressor can
// enumerate the entries a one-sample Update may have moved (AffectedAppender
// + BatchRegressor, as the bagging ensemble can), Update repairs exactly
// those entries in place with one small batched predict and the memo stays
// allValid — the per-update O(memo) tag sweep disappears from the planner's
// incremental hot path. While allValid is set the slot tags are bypassed and
// hold garbage, so every transition out of allValid must rewrite them (see
// scrubTags) before any tagged read can occur.
//
// Fit, Update, Prefill and CloneFrom still mutate the model itself and must
// not run concurrently with anything else on the same Cached.
type Cached struct {
	inner Regressor
	gen   uint32

	// slotGens[id] is the atomically published generation tag of memo slot
	// id, memoWriting while a writer holds the slot's publish claim; preds
	// holds the memoized distributions. A slot is valid iff its tag equals
	// the current generation (plus memoGenOffset). While allValid is set the
	// tags are bypassed entirely and their contents are meaningless.
	slotGens []atomic.Uint32
	preds    []numeric.Gaussian

	// allValid marks that every memo slot holds the current generation's
	// prediction, letting PredictID skip the atomic tag check. Only mutating
	// calls flip it, and those are exclusive by contract, so the plain bool
	// is safe.
	allValid bool

	// lastCols remembers the column-major feature matrix of the last Prefill
	// (cols[d][id] is feature d of the configuration in memo slot id). It is
	// what lets Update re-tag memo entries whose predictions provably did not
	// move instead of dropping the whole memo. Read-only; shared by clones.
	lastCols [][]float64

	// Scratch reused by Prefill and Update: the affected-flag buffer, a
	// column-view header, one gathered feature row for inner regressors
	// without the batch extensions, and the eager repair path's affected-id
	// list, gathered feature columns and batched predictions.
	affected   []bool
	colView    [][]float64
	row        []float64
	idsBuf     []int32
	gatherBuf  []float64
	gatherCols [][]float64
	gatherOut  []numeric.Gaussian
}

// NewCached wraps inner with a memo for configuration IDs in [0, size).
func NewCached(inner Regressor, size int) *Cached {
	return &Cached{
		inner:    inner,
		slotGens: make([]atomic.Uint32, size),
		preds:    make([]numeric.Gaussian, size),
	}
}

// Generation returns the number of completed fits and updates; predictions
// memoized under older generations are stale.
func (c *Cached) Generation() int { return int(c.gen) }

// Fit trains the wrapped model and invalidates the memo.
func (c *Cached) Fit(features [][]float64, targets []float64) error {
	if err := c.inner.Fit(features, targets); err != nil {
		// The inner model may be partially refitted; make sure the memo does
		// not keep serving pre-fit predictions through the allValid bypass.
		c.dropAllValid()
		return err
	}
	c.gen++
	c.dropAllValid()
	return nil
}

// dropAllValid leaves the all-valid fast path, rewriting the bypassed (and
// therefore garbage) slot tags to "stale" so the tagged read path cannot
// accidentally hit. No-op when the memo is already on the tagged path.
func (c *Cached) dropAllValid() {
	if !c.allValid {
		return
	}
	c.allValid = false
	c.scrubTags()
}

// scrubTags marks every memo slot stale. Tag 0 can never equal a live
// generation: memoGenOffset keeps the current generation's tag at least 1.
func (c *Cached) scrubTags() {
	for i := range c.slotGens {
		c.slotGens[i].Store(0)
	}
}

// Predict forwards to the wrapped model without touching the memo; use it for
// feature vectors that do not correspond to a configuration ID.
func (c *Cached) Predict(x []float64) (numeric.Gaussian, error) {
	return c.inner.Predict(x)
}

// PredictID returns the predictive distribution of the configuration with the
// given ID and feature vector, computing it at most once per generation per
// racing writer. Safe for concurrent callers, including concurrent cold
// misses on one slot: the prediction is written before the generation tag is
// published, and the tag is claimed by compare-and-swap, so readers observe
// either a complete entry or a miss — never torn data. The wrapped model's
// predictions are deterministic, so racing writers compute identical values
// and the losing writer just skips publication.
func (c *Cached) PredictID(id int, x []float64) (numeric.Gaussian, error) {
	if c.allValid && id >= 0 && id < len(c.preds) {
		// All-valid fast path: every slot is fresh, no tag to check.
		return c.preds[id], nil
	}
	cur := c.gen + memoGenOffset
	inMemo := id >= 0 && id < len(c.slotGens)
	var seen uint32
	if inMemo {
		seen = c.slotGens[id].Load()
		if seen == cur {
			return c.preds[id], nil
		}
	}
	pred, err := c.inner.Predict(x)
	if err != nil {
		return numeric.Gaussian{}, err
	}
	if inMemo && seen != memoWriting && c.slotGens[id].CompareAndSwap(seen, memoWriting) {
		c.preds[id] = pred
		c.slotGens[id].Store(cur)
	}
	return pred, nil
}

// MemoPreds exposes the memoized prediction array when every slot is known
// fresh (the all-valid fast path is active), and nil otherwise. The planner's
// candidate sweeps read it directly — one bounds check per candidate instead
// of a PredictID call with an atomic tag load. The returned slice is indexed
// by configuration ID, is owned by the Cached, and is invalidated by any
// mutating call; callers must not retain it across Fit, Update, Prefill or
// CloneFrom.
func (c *Cached) MemoPreds() []numeric.Gaussian {
	if !c.allValid {
		return nil
	}
	return c.preds
}

// SupportsBatch reports whether the wrapped regressor implements
// BatchRegressor, i.e. whether Prefill can sweep in one batched call. The
// planner uses it to keep non-batch custom models on the lazy scalar path
// instead of forcing a serial point-by-point sweep.
func (c *Cached) SupportsBatch() bool {
	_, ok := c.inner.(BatchRegressor)
	return ok
}

// Prefill computes the memoized prediction of every configuration ID in
// [0, len(memo)) from the space's column-major feature matrix (cols[d][id] is
// feature d of the configuration with that ID) in one batch sweep. After it
// returns, PredictID is a read-only lookup for every ID of the current
// generation, which makes the Cached model safe to share across a parallel
// fan-out. Columns longer than the memo are allowed; only the first
// len(memo) points are swept. Inner regressors implementing BatchRegressor
// predict the whole sweep in one call; others are swept point by point
// through the same memo.
//
// Prefill mutates the memo and must not run concurrently with Fit, PredictID
// or another Prefill on the same Cached.
func (c *Cached) Prefill(cols [][]float64) error {
	n := len(c.slotGens)
	if n == 0 {
		return nil
	}
	for d, col := range cols {
		if len(col) < n {
			return fmt.Errorf("model: feature column %d has %d points, want at least %d", d, len(col), n)
		}
	}
	// Leave the all-valid bypass before touching preds: on a mid-sweep error
	// the array is partially overwritten, which the tagged path correctly
	// treats as stale but the bypass would serve.
	c.dropAllValid()
	gen := c.gen + memoGenOffset
	c.lastCols = cols
	if batch, ok := c.inner.(BatchRegressor); ok {
		// PredictBatch requires len(col) == len(out) exactly. It writes
		// straight into the memo's prediction array: Prefill is exclusive
		// by contract, and on error the slot tags are never published, so a
		// partially overwritten array is indistinguishable from stale.
		// Memo-repairing regressors sweep through PredictBatchRepair
		// instead (bitwise-identical output), arming the O(changed-trees)
		// repair path for the Updates that follow.
		cols = c.viewFirstN(cols, n)
		if rep, ok := c.inner.(MemoRepairer); ok {
			if err := rep.PredictBatchRepair(cols, c.preds[:n]); err != nil {
				return err
			}
		} else if err := batch.PredictBatch(cols, c.preds[:n]); err != nil {
			return err
		}
		c.allValid = true
		return nil
	}
	if cap(c.row) < len(cols) {
		c.row = make([]float64, len(cols))
	}
	row := c.row[:len(cols)]
	for id := 0; id < n; id++ {
		for d, col := range cols {
			row[d] = col[id]
		}
		pred, err := c.inner.Predict(row)
		if err != nil {
			return err
		}
		c.preds[id] = pred
		c.slotGens[id].Store(gen)
	}
	c.allValid = true
	return nil
}

// viewFirstN returns a column view covering exactly the first n points of
// each column, reusing the colView header when any column needs trimming;
// cols is returned as-is when every column is already exactly n long. The
// batch sweeps of Prefill and Update both require exact-length columns.
func (c *Cached) viewFirstN(cols [][]float64, n int) [][]float64 {
	trimmed := false
	for _, col := range cols {
		if len(col) > n {
			trimmed = true
			break
		}
	}
	if !trimmed {
		return cols
	}
	if cap(c.colView) < len(cols) {
		c.colView = make([][]float64, len(cols))
	}
	view := c.colView[:len(cols)]
	for d, col := range cols {
		view[d] = col[:n]
	}
	return view
}

// SupportsIncremental reports whether the wrapped regressor implements
// IncrementalRegressor, i.e. whether Update and CloneFrom apply.
func (c *Cached) SupportsIncremental() bool {
	_, ok := c.inner.(IncrementalRegressor)
	return ok
}

// Update folds one sample into the wrapped incremental model and keeps the
// prediction memo consistent. The generation is always bumped. When the memo
// is all-valid and the inner regressor supports the eager repair pair
// (AffectedAppender + BatchRegressor), the affected entries — typically a
// handful after a one-sample update — are re-predicted in place with one
// small batched call and the memo stays all-valid: later reads are plain
// array loads, with no recompute and no atomic tag traffic. Otherwise the
// memo falls back to selective tag invalidation: entries whose predictions
// cannot have changed — per AffectedByLastUpdate over the feature matrix of
// the last Prefill — are carried into the new generation, and affected ones
// are recomputed lazily. Either way the speculation sweep costs O(changed)
// instead of O(candidates) model evaluations.
//
// Without a preceding Prefill there is no feature source to check against,
// so the whole memo goes stale (correct, just slower). Update mutates the
// memo and must not run concurrently with other calls on the same Cached.
func (c *Cached) Update(x []float64, y float64) error {
	inc, ok := c.inner.(IncrementalRegressor)
	if !ok {
		return fmt.Errorf("model: regressor %T does not support incremental updates", c.inner)
	}
	if err := inc.Update(x, y); err != nil {
		// Update validates before mutating, so the memoized predictions
		// still describe the model; the memo is left untouched.
		return err
	}
	oldGen := c.gen + memoGenOffset
	c.gen++
	newGen := c.gen + memoGenOffset
	cols := c.lastCols
	wasAllValid := c.allValid
	if len(cols) == 0 {
		c.dropAllValid()
		return nil
	}
	n := len(c.slotGens)
	for _, col := range cols {
		if len(col) < n {
			n = len(col)
		}
	}
	if wasAllValid && n == len(c.slotGens) {
		app, okApp := c.inner.(AffectedAppender)
		batch, okBatch := c.inner.(BatchRegressor)
		if okApp && okBatch {
			return c.repairAllValid(app, batch, cols, n)
		}
	}
	if batch, ok := c.inner.(BatchAffectedRegressor); ok {
		if cap(c.affected) < n {
			c.affected = make([]bool, n)
		}
		affected := c.affected[:n]
		if err := batch.AffectedByLastUpdateBatch(c.viewFirstN(cols, n), affected); err != nil {
			c.dropAllValid()
			return err
		}
		if wasAllValid {
			// The bypassed tags are garbage, but every prediction is known
			// valid for the pre-update model, so unaffected slots can be
			// tagged fresh directly; affected ones go stale.
			c.allValid = false
			c.scrubTags()
			for id := 0; id < n; id++ {
				if !affected[id] {
					c.slotGens[id].Store(newGen)
				}
			}
			return nil
		}
		for id := 0; id < n; id++ {
			if c.slotGens[id].Load() == oldGen && !affected[id] {
				c.slotGens[id].Store(newGen)
			}
		}
		return nil
	}
	if cap(c.row) < len(cols) {
		c.row = make([]float64, len(cols))
	}
	row := c.row[:len(cols)]
	if wasAllValid {
		c.allValid = false
		c.scrubTags()
	}
	for id := 0; id < n; id++ {
		if !wasAllValid && c.slotGens[id].Load() != oldGen {
			continue
		}
		for d, col := range cols {
			row[d] = col[id]
		}
		if !inc.AffectedByLastUpdate(row) {
			c.slotGens[id].Store(newGen)
		}
	}
	return nil
}

// repairAllValid is Update's eager path: with every memo slot valid for the
// pre-update model, re-predicting just the affected IDs brings the whole
// memo to the post-update model in one batched call, so the all-valid bypass
// survives the update.
func (c *Cached) repairAllValid(app AffectedAppender, batch BatchRegressor, cols [][]float64, n int) error {
	// Fast path: a memo-repairing regressor refreshes the affected entries
	// in place from its own bookkeeping — no row gather, no re-walk of
	// unchanged trees. Unusable state (e.g. the memo was prefilled before
	// the regressor's repair sweep existed, or a repair was skipped) falls
	// through to the gather/re-predict pair below.
	if rep, ok := c.inner.(MemoRepairer); ok {
		ids, usable, err := rep.AppendRepairedByLastUpdate(c.viewFirstN(cols, n), n, c.idsBuf[:0], c.preds)
		c.idsBuf = ids[:0]
		if err != nil {
			c.dropAllValid()
			return err
		}
		if usable {
			return nil
		}
	}
	ids, err := app.AppendAffectedByLastUpdate(cols, n, c.idsBuf[:0])
	if err != nil {
		c.idsBuf = ids[:0]
		c.dropAllValid()
		return err
	}
	c.idsBuf = ids
	m := len(ids)
	if m == 0 {
		return nil
	}
	if cap(c.gatherBuf) < m*len(cols) {
		c.gatherBuf = make([]float64, m*len(cols))
	}
	if cap(c.gatherCols) < len(cols) {
		c.gatherCols = make([][]float64, len(cols))
	}
	gcols := c.gatherCols[:len(cols)]
	for d, col := range cols {
		g := c.gatherBuf[d*m : (d+1)*m : (d+1)*m]
		for k, id := range ids {
			g[k] = col[id]
		}
		gcols[d] = g
	}
	if cap(c.gatherOut) < m {
		c.gatherOut = make([]numeric.Gaussian, m)
	}
	outs := c.gatherOut[:m]
	if err := batch.PredictBatch(gcols, outs); err != nil {
		c.dropAllValid()
		return err
	}
	for k, id := range ids {
		c.preds[id] = outs[k]
	}
	return nil
}

// CloneFrom snapshots src — fitted model state, memo, generation, and the
// feature matrix reference for selective invalidation — into the receiver,
// reusing its storage. The receiver's inner regressor must be an instance of
// the same concrete type as src's (typically both from one Factory).
// CloneFrom only reads src, so concurrent clones from one quiescent source
// are safe; the receiver must be private to the caller. A source slot caught
// mid-publication (a concurrent PredictID cold miss, possible when the
// source is still being read lazily elsewhere) is copied as stale — the
// clone then recomputes that one prediction on demand.
func (c *Cached) CloneFrom(src *Cached) error {
	inc, ok := src.inner.(IncrementalRegressor)
	if !ok {
		return fmt.Errorf("model: source regressor %T does not support incremental cloning", src.inner)
	}
	if err := inc.CloneInto(c.inner); err != nil {
		c.dropAllValid()
		return err
	}
	c.gen = src.gen
	n := len(src.slotGens)
	if cap(c.preds) < n {
		c.slotGens = make([]atomic.Uint32, n)
		c.preds = make([]numeric.Gaussian, 0, n)
	}
	c.slotGens = c.slotGens[:n]
	c.preds = c.preds[:n]
	c.lastCols = src.lastCols
	if src.allValid {
		// All-valid fast path: one bulk copy of the predictions, no per-slot
		// atomics. The receiver's tags become garbage, which the allValid
		// bypass makes irrelevant (and any later exit from the bypass scrubs
		// them).
		copy(c.preds, src.preds)
		c.allValid = true
		return nil
	}
	c.allValid = false
	for id := 0; id < n; id++ {
		g := src.slotGens[id].Load()
		if g == memoWriting {
			g = 0
		} else if g == src.gen+memoGenOffset {
			c.preds[id] = src.preds[id]
		}
		c.slotGens[id].Store(g)
	}
	return nil
}

// memoGenOffset keeps the zero value of a slot's generation tag distinct
// from the generation of an untrained model, so a fresh memo never reports a
// hit.
const memoGenOffset = 1

// memoWriting marks a memo slot whose publication is claimed by an in-flight
// PredictID writer. Generations are far from wrapping to it in any realistic
// campaign.
const memoWriting = ^uint32(0)

// Statically assert that Cached remains a Regressor.
var _ Regressor = (*Cached)(nil)
