package model

import (
	"testing"

	"repro/internal/bagging"
	"repro/internal/gp"
	"repro/internal/numeric"
)

// incCols builds the column-major matrix of a small 2-feature grid and the
// row accessor tests use to cross-check memo behavior.
func incCols(n int) ([][]float64, func(id int) []float64) {
	cols := make([][]float64, 2)
	cols[0] = make([]float64, n)
	cols[1] = make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = float64(i % 6)
		cols[1][i] = float64(i / 6)
	}
	return cols, func(id int) []float64 { return []float64{cols[0][id], cols[1][id]} }
}

func fittedIncCached(t *testing.T, size int) (*Cached, [][]float64, func(int) []float64) {
	t.Helper()
	features, targets := trainingData()
	c := NewCached(bagging.New(bagging.Params{NumTrees: 8, Incremental: true}, 3), size)
	if err := c.Fit(features, targets); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	cols, rowOf := incCols(size)
	if err := c.Prefill(cols); err != nil {
		t.Fatalf("Prefill: %v", err)
	}
	return c, cols, rowOf
}

func TestCachedSupportsIncremental(t *testing.T) {
	inc := NewCached(bagging.New(bagging.Params{Incremental: true}, 1), 4)
	if !inc.SupportsIncremental() {
		t.Error("bagging-backed Cached does not report incremental support")
	}
	g := NewCached(gp.New(gp.Params{}), 4)
	if g.SupportsIncremental() {
		t.Error("gp-backed Cached claims incremental support")
	}
	if err := g.Update([]float64{0, 0}, 1); err == nil {
		t.Error("Update on a non-incremental Cached did not fail")
	}
	if err := g.CloneFrom(g); err == nil {
		t.Error("CloneFrom with a non-incremental source did not fail")
	}
}

func TestCachedUpdateKeepsUnchangedEntriesAndRefreshesChanged(t *testing.T) {
	const size = 24
	c, _, rowOf := fittedIncCached(t, size)
	inner := c.inner.(IncrementalRegressor)

	before := make([]numeric.Gaussian, size)
	for id := 0; id < size; id++ {
		p, err := c.PredictID(id, rowOf(id))
		if err != nil {
			t.Fatalf("PredictID: %v", err)
		}
		before[id] = p
	}
	gen := c.Generation()
	if err := c.Update(rowOf(7), 42); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if c.Generation() != gen+1 {
		t.Fatalf("Generation after Update = %d, want %d", c.Generation(), gen+1)
	}
	for id := 0; id < size; id++ {
		row := rowOf(id)
		want, err := inner.Predict(row)
		if err != nil {
			t.Fatalf("inner Predict: %v", err)
		}
		got, err := c.PredictID(id, row)
		if err != nil {
			t.Fatalf("PredictID after Update: %v", err)
		}
		if got != want {
			t.Fatalf("memoized prediction %d = %+v, want inner %+v", id, got, want)
		}
		if !inner.AffectedByLastUpdate(row) && got != before[id] {
			t.Fatalf("unaffected entry %d moved: %+v -> %+v", id, before[id], got)
		}
	}
}

// TestCachedUpdateSkipsRecomputeForUnaffectedEntries counts inner Predict
// calls: after a one-sample update, re-reading the memo must only recompute
// the entries the update could have changed.
func TestCachedUpdateSkipsRecomputeForUnaffectedEntries(t *testing.T) {
	const size = 24
	features, targets := trainingData()
	counter := &countingRegressor{inner: bagging.New(bagging.Params{NumTrees: 8, Incremental: true}, 3)}
	c := NewCached(counter, size)
	if err := c.Fit(features, targets); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	cols, rowOf := incCols(size)
	if err := c.Prefill(cols); err != nil {
		t.Fatalf("Prefill: %v", err)
	}

	if err := c.Update(rowOf(7), 42); err != nil {
		t.Fatalf("Update: %v", err)
	}
	affected := 0
	for id := 0; id < size; id++ {
		if counter.inner.AffectedByLastUpdate(rowOf(id)) {
			affected++
		}
	}
	counter.predicts = 0
	for id := 0; id < size; id++ {
		if _, err := c.PredictID(id, rowOf(id)); err != nil {
			t.Fatalf("PredictID: %v", err)
		}
	}
	if counter.predicts != affected {
		t.Fatalf("memo recomputed %d entries after update, want exactly the %d affected ones", counter.predicts, affected)
	}
	if affected == size {
		t.Fatalf("degenerate fixture: every entry affected, selective invalidation untested")
	}
}

func TestCachedCloneFromIsIndependent(t *testing.T) {
	const size = 24
	src, _, rowOf := fittedIncCached(t, size)
	dst := NewCached(bagging.New(bagging.Params{NumTrees: 8, Incremental: true}, 99), 0)
	if err := dst.CloneFrom(src); err != nil {
		t.Fatalf("CloneFrom: %v", err)
	}
	srcBefore := make([]numeric.Gaussian, size)
	for id := 0; id < size; id++ {
		p, err := src.PredictID(id, rowOf(id))
		if err != nil {
			t.Fatalf("PredictID: %v", err)
		}
		srcBefore[id] = p
		q, err := dst.PredictID(id, rowOf(id))
		if err != nil {
			t.Fatalf("clone PredictID: %v", err)
		}
		if q != p {
			t.Fatalf("clone prediction %d = %+v, want %+v", id, q, p)
		}
	}
	// Updating the clone must leave the source untouched and selectively
	// invalidate the clone's memo using the shared feature matrix.
	for i := 0; i < 4; i++ {
		if err := dst.Update(rowOf(3), 77); err != nil {
			t.Fatalf("clone Update: %v", err)
		}
	}
	for id := 0; id < size; id++ {
		p, err := src.PredictID(id, rowOf(id))
		if err != nil {
			t.Fatalf("PredictID: %v", err)
		}
		if p != srcBefore[id] {
			t.Fatalf("source moved after clone update at %d: %+v -> %+v", id, srcBefore[id], p)
		}
	}
	moved := false
	for id := 0; id < size; id++ {
		q, err := dst.PredictID(id, rowOf(id))
		if err != nil {
			t.Fatalf("clone PredictID: %v", err)
		}
		want, err := dst.inner.Predict(rowOf(id))
		if err != nil {
			t.Fatalf("clone inner Predict: %v", err)
		}
		if q != want {
			t.Fatalf("clone memo %d = %+v, want %+v", id, q, want)
		}
		if q != srcBefore[id] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("repeated clone updates changed no prediction; fixture too weak")
	}
}

// countingRegressor wraps an incremental ensemble and counts scalar Predict
// calls. It deliberately does not forward PredictBatch, so Cached sweeps it
// point by point through the counter.
type countingRegressor struct {
	inner    *bagging.Ensemble
	predicts int
}

func (c *countingRegressor) Fit(features [][]float64, targets []float64) error {
	return c.inner.Fit(features, targets)
}

func (c *countingRegressor) Predict(x []float64) (numeric.Gaussian, error) {
	c.predicts++
	return c.inner.Predict(x)
}

func (c *countingRegressor) Update(x []float64, y float64) error { return c.inner.Update(x, y) }

func (c *countingRegressor) AffectedByLastUpdate(x []float64) bool {
	return c.inner.AffectedByLastUpdate(x)
}

func (c *countingRegressor) CloneInto(dst any) error { return c.inner.CloneInto(dst) }
