package model

import (
	"math"
	"testing"

	"repro/internal/bagging"
	"repro/internal/gp"
)

func trainingData() ([][]float64, []float64) {
	features := make([][]float64, 0, 30)
	targets := make([]float64, 0, 30)
	for i := 0; i < 30; i++ {
		x := float64(i) / 3
		y := float64(i % 5)
		features = append(features, []float64{x, y})
		targets = append(targets, 2*x+y)
	}
	return features, targets
}

func TestNewFactoryKinds(t *testing.T) {
	tests := []struct {
		kind     Kind
		wantName string
	}{
		{kind: KindBagging, wantName: "bagging"},
		{kind: "", wantName: "bagging"},
		{kind: KindGP, wantName: "gp"},
	}
	for _, tt := range tests {
		f, err := NewFactory(tt.kind, bagging.Params{NumTrees: 5}, gp.Params{}, 1)
		if err != nil {
			t.Fatalf("NewFactory(%q) error: %v", tt.kind, err)
		}
		if f.Name() != tt.wantName {
			t.Errorf("NewFactory(%q).Name() = %q, want %q", tt.kind, f.Name(), tt.wantName)
		}
	}
	if _, err := NewFactory("forest", bagging.Params{}, gp.Params{}, 1); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestFactoriesProduceWorkingRegressors(t *testing.T) {
	features, targets := trainingData()
	factories := []Factory{
		NewBaggingFactory(bagging.Params{NumTrees: 8}, 7),
		NewGPFactory(gp.Params{}),
	}
	for _, f := range factories {
		t.Run(f.Name(), func(t *testing.T) {
			reg := f.New(3)
			if err := reg.Fit(features, targets); err != nil {
				t.Fatalf("Fit error: %v", err)
			}
			pred, err := reg.Predict([]float64{5, 2})
			if err != nil {
				t.Fatalf("Predict error: %v", err)
			}
			want := 2*5.0 + 2
			if math.Abs(pred.Mean-want) > 3 {
				t.Errorf("prediction mean = %v, want ~%v", pred.Mean, want)
			}
			if pred.StdDev < 0 {
				t.Errorf("negative std %v", pred.StdDev)
			}
		})
	}
}

func TestBaggingFactoryStreamsAreDeterministic(t *testing.T) {
	features, targets := trainingData()
	f := NewBaggingFactory(bagging.Params{NumTrees: 6}, 11)
	a := f.New(4)
	b := f.New(4)
	if err := a.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := b.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	pa, err := a.Predict([]float64{3, 1})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	pb, err := b.Predict([]float64{3, 1})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	if pa != pb {
		t.Errorf("same stream produced different models: %+v vs %+v", pa, pb)
	}
}
