package model

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/bagging"
	"repro/internal/gp"
	"repro/internal/numeric"
)

func trainingData() ([][]float64, []float64) {
	features := make([][]float64, 0, 30)
	targets := make([]float64, 0, 30)
	for i := 0; i < 30; i++ {
		x := float64(i) / 3
		y := float64(i % 5)
		features = append(features, []float64{x, y})
		targets = append(targets, 2*x+y)
	}
	return features, targets
}

func TestNewFactoryKinds(t *testing.T) {
	tests := []struct {
		kind     Kind
		wantName string
	}{
		{kind: KindBagging, wantName: "bagging"},
		{kind: "", wantName: "bagging"},
		{kind: KindGP, wantName: "gp"},
	}
	for _, tt := range tests {
		f, err := NewFactory(tt.kind, bagging.Params{NumTrees: 5}, gp.Params{}, 1)
		if err != nil {
			t.Fatalf("NewFactory(%q) error: %v", tt.kind, err)
		}
		if f.Name() != tt.wantName {
			t.Errorf("NewFactory(%q).Name() = %q, want %q", tt.kind, f.Name(), tt.wantName)
		}
	}
	if _, err := NewFactory("forest", bagging.Params{}, gp.Params{}, 1); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestFactoriesProduceWorkingRegressors(t *testing.T) {
	features, targets := trainingData()
	factories := []Factory{
		NewBaggingFactory(bagging.Params{NumTrees: 8}, 7),
		NewGPFactory(gp.Params{}),
	}
	for _, f := range factories {
		t.Run(f.Name(), func(t *testing.T) {
			reg := f.New(3)
			if err := reg.Fit(features, targets); err != nil {
				t.Fatalf("Fit error: %v", err)
			}
			pred, err := reg.Predict([]float64{5, 2})
			if err != nil {
				t.Fatalf("Predict error: %v", err)
			}
			want := 2*5.0 + 2
			if math.Abs(pred.Mean-want) > 3 {
				t.Errorf("prediction mean = %v, want ~%v", pred.Mean, want)
			}
			if pred.StdDev < 0 {
				t.Errorf("negative std %v", pred.StdDev)
			}
		})
	}
}

func TestBaggingFactoryStreamsAreDeterministic(t *testing.T) {
	features, targets := trainingData()
	f := NewBaggingFactory(bagging.Params{NumTrees: 6}, 11)
	a := f.New(4)
	b := f.New(4)
	if err := a.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := b.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	pa, err := a.Predict([]float64{3, 1})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	pb, err := b.Predict([]float64{3, 1})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	if pa != pb {
		t.Errorf("same stream produced different models: %+v vs %+v", pa, pb)
	}
}

// scalarOnly wraps a Regressor and hides its batch path, exercising Prefill's
// point-by-point fallback.
type scalarOnly struct{ inner Regressor }

func (s scalarOnly) Fit(features [][]float64, targets []float64) error {
	return s.inner.Fit(features, targets)
}
func (s scalarOnly) Predict(x []float64) (numeric.Gaussian, error) { return s.inner.Predict(x) }

// spaceColumns builds a column-major matrix for a tiny 2-dimensional space of
// n configurations.
func spaceColumns(n int) ([][]float64, [][]float64) {
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	rows := make([][]float64, n)
	for id := 0; id < n; id++ {
		cols[0][id] = float64(id) / 2
		cols[1][id] = float64(id % 4)
		rows[id] = []float64{cols[0][id], cols[1][id]}
	}
	return cols, rows
}

func TestCachedPrefillMatchesPredictID(t *testing.T) {
	features, targets := trainingData()
	const n = 24
	cols, rows := spaceColumns(n)
	for _, tc := range []struct {
		name  string
		inner Regressor
	}{
		{name: "batch-bagging", inner: bagging.New(bagging.Params{NumTrees: 6}, 5)},
		{name: "batch-gp", inner: gp.New(gp.Params{})},
		{name: "scalar-fallback", inner: scalarOnly{inner: bagging.New(bagging.Params{NumTrees: 6}, 5)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: an identical model swept through cold PredictID calls.
			var ref Regressor
			switch tc.name {
			case "batch-gp":
				ref = gp.New(gp.Params{})
			default:
				ref = bagging.New(bagging.Params{NumTrees: 6}, 5)
			}
			cached := NewCached(tc.inner, n)
			refCached := NewCached(ref, n)
			if err := cached.Fit(features, targets); err != nil {
				t.Fatalf("Fit error: %v", err)
			}
			if err := refCached.Fit(features, targets); err != nil {
				t.Fatalf("Fit error: %v", err)
			}
			if err := cached.Prefill(cols); err != nil {
				t.Fatalf("Prefill error: %v", err)
			}
			for id := 0; id < n; id++ {
				got, err := cached.PredictID(id, rows[id])
				if err != nil {
					t.Fatalf("PredictID error: %v", err)
				}
				want, err := refCached.PredictID(id, rows[id])
				if err != nil {
					t.Fatalf("reference PredictID error: %v", err)
				}
				if got != want {
					t.Fatalf("config %d: prefetched %+v != scalar %+v", id, got, want)
				}
			}
		})
	}
}

func TestCachedPrefillInvalidatedByFit(t *testing.T) {
	features, targets := trainingData()
	const n = 8
	cols, rows := spaceColumns(n)
	cached := NewCached(bagging.New(bagging.Params{NumTrees: 4}, 9), n)
	if err := cached.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := cached.Prefill(cols); err != nil {
		t.Fatalf("Prefill error: %v", err)
	}
	before, err := cached.PredictID(3, rows[3])
	if err != nil {
		t.Fatalf("PredictID error: %v", err)
	}
	// Refit on shifted targets: the memo generation must move on so the old
	// prefilled prediction is not served.
	shifted := make([]float64, len(targets))
	for i, y := range targets {
		shifted[i] = y + 100
	}
	if err := cached.Fit(features, shifted); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	after, err := cached.PredictID(3, rows[3])
	if err != nil {
		t.Fatalf("PredictID error: %v", err)
	}
	if before == after {
		t.Error("prefilled prediction survived a refit")
	}
}

func TestCachedPrefillValidation(t *testing.T) {
	cached := NewCached(bagging.New(bagging.Params{NumTrees: 4}, 9), 8)
	features, targets := trainingData()
	if err := cached.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := cached.Prefill([][]float64{make([]float64, 4), make([]float64, 8)}); err == nil {
		t.Error("Prefill with a short column: expected error, got nil")
	}
	if err := cached.Prefill([][]float64{make([]float64, 8)}); err == nil {
		t.Error("Prefill with wrong column count: expected error, got nil")
	}
}

func TestCachedPrefillTrimsLongerColumns(t *testing.T) {
	features, targets := trainingData()
	const n = 6
	cols, rows := spaceColumns(12) // columns longer than the memo
	cached := NewCached(bagging.New(bagging.Params{NumTrees: 4}, 2), n)
	ref := NewCached(bagging.New(bagging.Params{NumTrees: 4}, 2), n)
	if err := cached.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := ref.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := cached.Prefill(cols); err != nil {
		t.Fatalf("Prefill with longer columns error: %v", err)
	}
	for id := 0; id < n; id++ {
		got, err := cached.PredictID(id, rows[id])
		if err != nil {
			t.Fatalf("PredictID error: %v", err)
		}
		want, err := ref.PredictID(id, rows[id])
		if err != nil {
			t.Fatalf("reference PredictID error: %v", err)
		}
		if got != want {
			t.Fatalf("config %d: trimmed prefill %+v != scalar %+v", id, got, want)
		}
	}
}

// TestCachedConcurrentColdMisses pins the lock-free memo read path: many
// goroutines hammer PredictID over the same cold slots — racing cold misses
// on one slot included — and every call must return the deterministic inner
// prediction with no torn reads. Run with -race (the CI race step does) to
// verify the publication protocol: prediction written before the generation
// tag, tag claimed by compare-and-swap.
func TestCachedConcurrentColdMisses(t *testing.T) {
	features, targets := trainingData()
	const n = 24
	_, rows := spaceColumns(n)
	cached := NewCached(bagging.New(bagging.Params{NumTrees: 6}, 5), n)
	ref := bagging.New(bagging.Params{NumTrees: 6}, 5)
	if err := cached.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := ref.Fit(features, targets); err != nil {
		t.Fatalf("reference Fit error: %v", err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Every goroutine sweeps all slots in a different order, so cold
			// misses collide on the same slots across goroutines.
			for rep := 0; rep < 50; rep++ {
				for k := 0; k < n; k++ {
					id := (k*(g+1) + rep) % n
					got, err := cached.PredictID(id, rows[id])
					if err != nil {
						errs[g] = err
						return
					}
					want, err := ref.Predict(rows[id])
					if err != nil {
						errs[g] = err
						return
					}
					if got != want {
						errs[g] = fmt.Errorf("slot %d: concurrent PredictID %+v != inner %+v", id, got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
