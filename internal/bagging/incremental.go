package bagging

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
	"repro/internal/regtree"
)

// This file implements the ensemble's one-sample update path: an ensemble
// fitted with Params.Incremental can fold a new (x, y) sample into its trees
// without refitting, and CloneInto snapshots a fitted ensemble into reusable
// storage so the planner's speculation branches each get an independent,
// cheaply derived copy to update.

// ErrNotIncremental is returned by Update and CloneInto when the ensemble was
// not fitted with Params.Incremental.
var ErrNotIncremental = errors.New("bagging: ensemble was not fitted with Params.Incremental")

// Incremental reports whether the ensemble retains the per-tree state needed
// by Update and CloneInto.
func (e *Ensemble) Incremental() bool {
	return e.params.Incremental && len(e.trees) > 0 && e.trees[0].Incremental()
}

// IncrementalCapable reports whether fits of this ensemble will support
// Update and CloneInto, i.e. whether Params.Incremental is set. Unlike
// Incremental it does not require a completed fit, which is what lets the
// planner probe a factory's products before planning starts instead of
// failing mid-run (see model.SupportsIncremental).
func (e *Ensemble) IncrementalCapable() bool { return e.params.Incremental }

// Updates returns the number of samples folded in by Update since the last
// Fit.
func (e *Ensemble) Updates() int { return e.updates }

// updateStream mixes (seed, tree, sample index) into one SplitMix64 draw, the
// key of every randomized decision of one tree's view of one updated sample.
func updateStream(seed int64, tree, sample int) uint64 {
	return mix64(uint64(seed)*0x9E3779B97F4A7C15 +
		uint64(tree)*0xD1B54A32D192ED03 +
		uint64(sample)*0x8CB92BA72F3D8DD7 + 0x2545F4914F6CDD1D)
}

// inclusionMultiplicity maps one uniform draw to the number of times a new
// sample enters a tree's bootstrap stream. A bootstrap resample of rate
// SampleFraction includes a given sample Binomial(n, fraction/n) ≈
// Poisson(fraction) times, so the multiplicity follows the Poisson CDF at
// that rate — deterministic in the draw, independent of history.
func inclusionMultiplicity(u uint64, rate float64) int {
	// Uniform in [0, 1) from the top 53 bits.
	x := float64(u>>11) / (1 << 53)
	p := math.Exp(-rate)
	cum := p
	k := 0
	for x >= cum && k < 16 {
		k++
		p *= rate / float64(k)
		cum += p
	}
	return k
}

// Update folds one sample into the fitted ensemble: each tree receives the
// sample a deterministic number of times — the Poisson-distributed bootstrap
// inclusion weight keyed by (seed, tree, sample index) — and inserts it via
// regtree.Insert (leaf mean update, re-split past the min-samples threshold).
//
// The weights depend only on the ensemble's seed and the count of updates
// since the last Fit, never on goroutine scheduling, so clones of one fitted
// ensemble that apply the same sample sequence end up bitwise identical —
// this is what keeps the planner's incremental speculation worker-count
// independent.
func (e *Ensemble) Update(x []float64, y float64) error {
	if !e.Trained() {
		return ErrNotTrained
	}
	if !e.Incremental() {
		return ErrNotIncremental
	}
	if len(x) != e.numFeatures {
		return fmt.Errorf("bagging: feature vector has %d columns, want %d", len(x), e.numFeatures)
	}
	if cap(e.lastAffected) < len(e.trees) {
		e.lastAffected = make([]int32, len(e.trees))
	}
	e.lastAffected = e.lastAffected[:len(e.trees)]
	k := e.updates
	needRng := e.params.Tree.FeatureFraction > 0 && e.params.Tree.FeatureFraction < 1
	for ti, tree := range e.trees {
		draw := updateStream(e.seed, ti, k)
		m := inclusionMultiplicity(draw, e.params.SampleFraction)
		if m == 0 {
			e.lastAffected[ti] = -1
			continue
		}
		var rng *rand.Rand
		if needRng {
			rng = rand.New(rand.NewSource(int64(draw ^ 0xA5A5A5A5A5A5A5A5)))
		}
		affected := -1
		for j := 0; j < m; j++ {
			node, err := tree.Insert(x, y, rng)
			if err != nil {
				return fmt.Errorf("bagging: updating tree %d: %w", ti, err)
			}
			if affected < 0 {
				// Later duplicates land inside the first insert's region, so
				// the first touched node bounds everything this tree changed.
				affected = node
			}
		}
		e.lastAffected[ti] = int32(affected)
	}
	e.updates = k + 1
	// The repair matrix describes the pre-update trees; one pending update
	// is repairable (AppendRepairedByLastUpdate), a second unrepaired one
	// invalidates the state.
	if e.repairN > 0 {
		if e.repairDirty {
			e.repairN = 0
		} else {
			e.repairDirty = true
		}
	}
	return nil
}

// AffectedByLastUpdate reports whether the last Update may have changed the
// ensemble's prediction at x: true when, in at least one tree that received
// the sample, the prediction walk for x passes through the updated node.
// False when no update happened since the last Fit. The planner's prediction
// memo uses this to keep entries whose predictions provably did not move.
func (e *Ensemble) AffectedByLastUpdate(x []float64) bool {
	if len(e.lastAffected) == 0 {
		return false
	}
	for ti, tree := range e.trees {
		a := e.lastAffected[ti]
		if a < 0 {
			continue
		}
		if tree.HitsNode(x, int(a)) {
			return true
		}
	}
	return false
}

// AppendAffectedByLastUpdate appends (in ascending order) the indices
// i ∈ [0, n) of a column-major candidate matrix whose prediction the last
// Update may have changed, and returns the extended slice — the sparse form
// of AffectedByLastUpdateBatch, which the prediction memo's eager repair
// consumes directly. After a one-sample update the affected set is tiny, so
// handing back indices lets the caller re-predict exactly those points in
// one batched sweep instead of re-scanning a dense flag array.
//
// Each updated tree's root-to-affected-node split constraints are applied
// step-major: the first constraint filters all still-unmarked points into a
// worklist with one sequential scan of a single column, and every further
// constraint shrinks the worklist in place. Points far from the updated
// region (the vast majority) are rejected by the first split without ever
// touching the remaining constraints' columns.
//
// AppendAffectedByLastUpdate reuses scratch on the ensemble, so calls on one
// ensemble must not run concurrently (Predict and PredictBatch remain
// concurrency-safe). Columns may be longer than n; only the first n points
// are swept.
func (e *Ensemble) AppendAffectedByLastUpdate(cols [][]float64, n int, ids []int32) ([]int32, error) {
	if !e.Trained() {
		return ids, ErrNotTrained
	}
	if len(cols) != e.numFeatures {
		return ids, fmt.Errorf("bagging: feature matrix has %d columns, want %d", len(cols), e.numFeatures)
	}
	for f, col := range cols {
		if len(col) < n {
			return ids, fmt.Errorf("bagging: feature column %d has %d points, want at least %d", f, len(col), n)
		}
	}
	if len(e.lastAffected) == 0 {
		return ids, nil
	}
	if cap(e.markBuf) < n {
		e.markBuf = make([]bool, n)
	}
	mark := e.markBuf[:n]
	for i := range mark {
		mark[i] = false
	}
	if cap(e.wlBuf) < n {
		e.wlBuf = make([]int32, n)
	}
	for ti, tree := range e.trees {
		a := e.lastAffected[ti]
		if a < 0 {
			continue
		}
		steps, ok := tree.AppendPathTo(int(a), e.pathBuf[:0])
		e.pathBuf = steps[:0]
		if !ok {
			return ids, fmt.Errorf("bagging: affected node %d not found in tree %d", a, ti)
		}
		if len(steps) == 0 {
			// The tree's root was re-split: every prediction may have moved.
			for i := range mark {
				mark[i] = true
			}
			break
		}
		s0 := steps[0]
		col := cols[s0.Feature]
		wl := e.wlBuf[:0]
		for i := 0; i < n; i++ {
			if !mark[i] && (col[i] <= s0.Threshold) == s0.Left {
				wl = append(wl, int32(i))
			}
		}
		for _, s := range steps[1:] {
			if len(wl) == 0 {
				break
			}
			col := cols[s.Feature]
			kept := wl[:0]
			for _, i := range wl {
				if (col[i] <= s.Threshold) == s.Left {
					kept = append(kept, i)
				}
			}
			wl = kept
		}
		for _, i := range wl {
			mark[i] = true
		}
	}
	for i := 0; i < n; i++ {
		if mark[i] {
			ids = append(ids, int32(i))
		}
	}
	return ids, nil
}

// AppendRepairedByLastUpdate refreshes, in place, the predictive Gaussians
// of every point the last Update may have moved, appends those point indices
// (ascending) to ids, and returns the extended slice plus whether the repair
// state was usable — false (with nil error) means the caller must fall back
// to re-predicting affected points from scratch.
//
// It requires a PredictBatchRepair sweep of the same n points followed by
// exactly one Update. The key structural fact: an Insert only ever modifies
// the subtree at the covering leaf — so in each updated tree, the moved
// points are exactly those whose memoized leaf index is the affected node
// (found by one equality scan, no root-path re-filtering), and their new
// prediction is the updated leaf's value (one constant), or a short walk
// through the regrown subtree when the leaf re-split. Unchanged trees are
// never touched, and each repaired point's Gaussian is recomputed from the
// per-tree matrix in tree order — the same accumulation order as accumRow —
// so the repaired memo stays bitwise identical to a fresh prediction sweep.
//
// Columns must be exactly n long. AppendRepairedByLastUpdate mutates the
// repair matrix and scratch, so calls on one ensemble must not run
// concurrently with anything else on it.
func (e *Ensemble) AppendRepairedByLastUpdate(cols [][]float64, n int, ids []int32, preds []numeric.Gaussian) ([]int32, bool, error) {
	if !e.Trained() {
		return ids, false, ErrNotTrained
	}
	if e.repairN != n || !e.repairDirty {
		return ids, false, nil
	}
	if len(cols) != e.numFeatures {
		return ids, false, fmt.Errorf("bagging: feature matrix has %d columns, want %d", len(cols), e.numFeatures)
	}
	for f, col := range cols {
		if len(col) != n {
			return ids, false, fmt.Errorf("bagging: feature column %d has %d points, want %d", f, len(col), n)
		}
	}
	if len(preds) < n {
		return ids, false, fmt.Errorf("bagging: prediction array has %d slots, want at least %d", len(preds), n)
	}
	e.repairDirty = false
	if len(e.lastAffected) == 0 {
		return ids, true, nil
	}
	T := len(e.trees)
	mat := e.repairPreds[:T*n]
	leaves := e.repairLeaf[:T*n]
	if cap(e.markBuf) < n {
		e.markBuf = make([]bool, n)
	}
	mark := e.markBuf[:n]
	for i := range mark {
		mark[i] = false
	}
	for ti, tree := range e.trees {
		a := e.lastAffected[ti]
		if a < 0 {
			continue
		}
		// The affected node was the covering leaf before the insert, so the
		// points it moved are exactly those whose memoized leaf is that
		// node — one sequential equality scan over this tree's leaf row.
		// (A root-leaf tree is just the a == 0 instance: every point
		// matches.) No cross-tree mark skip: this tree's matrix row must
		// refresh for every matching point, marked or not.
		row := mat[ti*n : (ti+1)*n : (ti+1)*n]
		leafRow := leaves[ti*n : (ti+1)*n : (ti+1)*n]
		if v, isLeaf := tree.NodeValue(int(a)); isLeaf {
			// Leaf mean update: one constant covers every matching point,
			// and the leaf assignment is unchanged.
			for i, l := range leafRow {
				if l == a {
					row[i] = v
					mark[i] = true
				}
			}
		} else {
			// The leaf re-split: matching points diverge through the
			// regrown subtree, entered directly at the affected node, and
			// their leaf assignments move to the regrown leaves.
			if cap(e.rowScratch) < e.numFeatures {
				e.rowScratch = make([]float64, e.numFeatures)
			}
			x := e.rowScratch[:e.numFeatures]
			for i, l := range leafRow {
				if l != a {
					continue
				}
				for f, col := range cols {
					x[f] = col[i]
				}
				row[i], leafRow[i] = tree.PredictLeafFromUnchecked(int(a), x)
				mark[i] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if !mark[i] {
			continue
		}
		var sum, sumSq float64
		for t := 0; t < T; t++ {
			p := mat[t*n+i]
			sum += p
			sumSq += p * p
		}
		preds[i] = e.gaussianFromSums(sum, sumSq)
		ids = append(ids, int32(i))
	}
	return ids, true, nil
}

// AffectedByLastUpdateBatch sweeps a column-major candidate matrix
// (cols[f][i] is feature f of point i) and writes to out[i] whether the last
// Update may have changed the prediction of point i — the dense form of
// AppendAffectedByLastUpdate, kept for callers that want per-point flags.
//
// AffectedByLastUpdateBatch reuses scratch on the ensemble, so calls on one
// ensemble must not run concurrently (Predict and PredictBatch remain
// concurrency-safe).
func (e *Ensemble) AffectedByLastUpdateBatch(cols [][]float64, out []bool) error {
	if !e.Trained() {
		return ErrNotTrained
	}
	if len(cols) != e.numFeatures {
		return fmt.Errorf("bagging: feature matrix has %d columns, want %d", len(cols), e.numFeatures)
	}
	n := len(out)
	for f, col := range cols {
		if len(col) != n {
			return fmt.Errorf("bagging: feature column %d has %d points, want %d", f, len(col), n)
		}
	}
	for i := range out {
		out[i] = false
	}
	ids, err := e.AppendAffectedByLastUpdate(cols, n, e.idsBuf[:0])
	e.idsBuf = ids[:0]
	if err != nil {
		return err
	}
	for _, id := range ids {
		out[id] = true
	}
	return nil
}

// CloneInto implements the model layer's incremental-cloning contract: dst
// must be an *Ensemble (typically produced by the same Factory). The fitted
// state — trees with their retained samples, the update counter, the
// deterministic seed — is deep-copied into dst's reusable storage (each tree
// clones into a per-tree arena), so repeated clones into one dst allocate
// almost nothing. dst's own rng is left untouched; clones are meant to be
// updated and queried, not refitted.
//
// Cloning only reads the source, so concurrent CloneInto calls from one
// fitted ensemble into distinct destinations are safe.
func (e *Ensemble) CloneInto(dst any) error {
	d, ok := dst.(*Ensemble)
	if !ok {
		return fmt.Errorf("bagging: CloneInto destination is %T, want *Ensemble", dst)
	}
	if !e.Trained() {
		return ErrNotTrained
	}
	if !e.Incremental() {
		return ErrNotIncremental
	}
	if d == e {
		return nil
	}
	d.params = e.params
	d.seed = e.seed
	d.numFeatures = e.numFeatures
	d.updates = e.updates
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(e.seed ^ 0x6C62272E07BB0142))
	}
	if cap(d.trees) < len(e.trees) {
		trees := make([]*regtree.Tree, len(e.trees))
		copy(trees, d.trees)
		d.trees = trees
	}
	d.trees = d.trees[:len(e.trees)]
	for i, tree := range e.trees {
		if d.trees[i] == nil {
			d.trees[i] = &regtree.Tree{}
		}
		tree.CloneInto(d.trees[i])
	}
	d.lastAffected = append(d.lastAffected[:0], e.lastAffected...)
	d.repairN = e.repairN
	d.repairDirty = e.repairDirty
	if e.repairN > 0 {
		d.repairPreds = append(d.repairPreds[:0], e.repairPreds[:len(e.trees)*e.repairN]...)
		d.repairLeaf = append(d.repairLeaf[:0], e.repairLeaf[:len(e.trees)*e.repairN]...)
	}
	return nil
}
