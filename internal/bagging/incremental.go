package bagging

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/regtree"
)

// This file implements the ensemble's one-sample update path: an ensemble
// fitted with Params.Incremental can fold a new (x, y) sample into its trees
// without refitting, and CloneInto snapshots a fitted ensemble into reusable
// storage so the planner's speculation branches each get an independent,
// cheaply derived copy to update.

// ErrNotIncremental is returned by Update and CloneInto when the ensemble was
// not fitted with Params.Incremental.
var ErrNotIncremental = errors.New("bagging: ensemble was not fitted with Params.Incremental")

// Incremental reports whether the ensemble retains the per-tree state needed
// by Update and CloneInto.
func (e *Ensemble) Incremental() bool {
	return e.params.Incremental && len(e.trees) > 0 && e.trees[0].Incremental()
}

// IncrementalCapable reports whether fits of this ensemble will support
// Update and CloneInto, i.e. whether Params.Incremental is set. Unlike
// Incremental it does not require a completed fit, which is what lets the
// planner probe a factory's products before planning starts instead of
// failing mid-run (see model.SupportsIncremental).
func (e *Ensemble) IncrementalCapable() bool { return e.params.Incremental }

// Updates returns the number of samples folded in by Update since the last
// Fit.
func (e *Ensemble) Updates() int { return e.updates }

// updateStream mixes (seed, tree, sample index) into one SplitMix64 draw, the
// key of every randomized decision of one tree's view of one updated sample.
func updateStream(seed int64, tree, sample int) uint64 {
	return mix64(uint64(seed)*0x9E3779B97F4A7C15 +
		uint64(tree)*0xD1B54A32D192ED03 +
		uint64(sample)*0x8CB92BA72F3D8DD7 + 0x2545F4914F6CDD1D)
}

// inclusionMultiplicity maps one uniform draw to the number of times a new
// sample enters a tree's bootstrap stream. A bootstrap resample of rate
// SampleFraction includes a given sample Binomial(n, fraction/n) ≈
// Poisson(fraction) times, so the multiplicity follows the Poisson CDF at
// that rate — deterministic in the draw, independent of history.
func inclusionMultiplicity(u uint64, rate float64) int {
	// Uniform in [0, 1) from the top 53 bits.
	x := float64(u>>11) / (1 << 53)
	p := math.Exp(-rate)
	cum := p
	k := 0
	for x >= cum && k < 16 {
		k++
		p *= rate / float64(k)
		cum += p
	}
	return k
}

// Update folds one sample into the fitted ensemble: each tree receives the
// sample a deterministic number of times — the Poisson-distributed bootstrap
// inclusion weight keyed by (seed, tree, sample index) — and inserts it via
// regtree.Insert (leaf mean update, re-split past the min-samples threshold).
//
// The weights depend only on the ensemble's seed and the count of updates
// since the last Fit, never on goroutine scheduling, so clones of one fitted
// ensemble that apply the same sample sequence end up bitwise identical —
// this is what keeps the planner's incremental speculation worker-count
// independent.
func (e *Ensemble) Update(x []float64, y float64) error {
	if !e.Trained() {
		return ErrNotTrained
	}
	if !e.Incremental() {
		return ErrNotIncremental
	}
	if len(x) != e.numFeatures {
		return fmt.Errorf("bagging: feature vector has %d columns, want %d", len(x), e.numFeatures)
	}
	if cap(e.lastAffected) < len(e.trees) {
		e.lastAffected = make([]int32, len(e.trees))
	}
	e.lastAffected = e.lastAffected[:len(e.trees)]
	k := e.updates
	needRng := e.params.Tree.FeatureFraction > 0 && e.params.Tree.FeatureFraction < 1
	for ti, tree := range e.trees {
		draw := updateStream(e.seed, ti, k)
		m := inclusionMultiplicity(draw, e.params.SampleFraction)
		if m == 0 {
			e.lastAffected[ti] = -1
			continue
		}
		var rng *rand.Rand
		if needRng {
			rng = rand.New(rand.NewSource(int64(draw ^ 0xA5A5A5A5A5A5A5A5)))
		}
		affected := -1
		for j := 0; j < m; j++ {
			node, err := tree.Insert(x, y, rng)
			if err != nil {
				return fmt.Errorf("bagging: updating tree %d: %w", ti, err)
			}
			if affected < 0 {
				// Later duplicates land inside the first insert's region, so
				// the first touched node bounds everything this tree changed.
				affected = node
			}
		}
		e.lastAffected[ti] = int32(affected)
	}
	e.updates = k + 1
	return nil
}

// AffectedByLastUpdate reports whether the last Update may have changed the
// ensemble's prediction at x: true when, in at least one tree that received
// the sample, the prediction walk for x passes through the updated node.
// False when no update happened since the last Fit. The planner's prediction
// memo uses this to keep entries whose predictions provably did not move.
func (e *Ensemble) AffectedByLastUpdate(x []float64) bool {
	if len(e.lastAffected) == 0 {
		return false
	}
	for ti, tree := range e.trees {
		a := e.lastAffected[ti]
		if a < 0 {
			continue
		}
		if tree.HitsNode(x, int(a)) {
			return true
		}
	}
	return false
}

// AffectedByLastUpdateBatch sweeps a column-major candidate matrix
// (cols[f][i] is feature f of point i) and writes to out[i] whether the last
// Update may have changed the prediction of point i — the batched equivalent
// of AffectedByLastUpdate. Instead of walking every tree per point, it
// extracts each updated tree's root-to-affected-node split constraints once
// and checks points against them, stopping at the first violated constraint;
// points far from the updated region (the vast majority after a one-sample
// update) are rejected by the first split. The prediction memo's selective
// invalidation runs on this sweep.
//
// AffectedByLastUpdateBatch reuses a path buffer on the ensemble, so calls
// on one ensemble must not run concurrently (Predict and PredictBatch remain
// concurrency-safe).
func (e *Ensemble) AffectedByLastUpdateBatch(cols [][]float64, out []bool) error {
	if !e.Trained() {
		return ErrNotTrained
	}
	if len(cols) != e.numFeatures {
		return fmt.Errorf("bagging: feature matrix has %d columns, want %d", len(cols), e.numFeatures)
	}
	n := len(out)
	for f, col := range cols {
		if len(col) != n {
			return fmt.Errorf("bagging: feature column %d has %d points, want %d", f, len(col), n)
		}
	}
	for i := range out {
		out[i] = false
	}
	if len(e.lastAffected) == 0 {
		return nil
	}
	for ti, tree := range e.trees {
		a := e.lastAffected[ti]
		if a < 0 {
			continue
		}
		steps, ok := tree.AppendPathTo(int(a), e.pathBuf[:0])
		e.pathBuf = steps[:0]
		if !ok {
			return fmt.Errorf("bagging: affected node %d not found in tree %d", a, ti)
		}
		for i := 0; i < n; i++ {
			if out[i] {
				continue
			}
			hit := true
			for _, s := range steps {
				if (cols[s.Feature][i] <= s.Threshold) != s.Left {
					hit = false
					break
				}
			}
			if hit {
				out[i] = true
			}
		}
	}
	return nil
}

// CloneInto implements the model layer's incremental-cloning contract: dst
// must be an *Ensemble (typically produced by the same Factory). The fitted
// state — trees with their retained samples, the update counter, the
// deterministic seed — is deep-copied into dst's reusable storage (each tree
// clones into a per-tree arena), so repeated clones into one dst allocate
// almost nothing. dst's own rng is left untouched; clones are meant to be
// updated and queried, not refitted.
//
// Cloning only reads the source, so concurrent CloneInto calls from one
// fitted ensemble into distinct destinations are safe.
func (e *Ensemble) CloneInto(dst any) error {
	d, ok := dst.(*Ensemble)
	if !ok {
		return fmt.Errorf("bagging: CloneInto destination is %T, want *Ensemble", dst)
	}
	if !e.Trained() {
		return ErrNotTrained
	}
	if !e.Incremental() {
		return ErrNotIncremental
	}
	if d == e {
		return nil
	}
	d.params = e.params
	d.seed = e.seed
	d.numFeatures = e.numFeatures
	d.updates = e.updates
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(e.seed ^ 0x6C62272E07BB0142))
	}
	if cap(d.trees) < len(e.trees) {
		trees := make([]*regtree.Tree, len(e.trees))
		copy(trees, d.trees)
		d.trees = trees
	}
	d.trees = d.trees[:len(e.trees)]
	for i, tree := range e.trees {
		if d.trees[i] == nil {
			d.trees[i] = &regtree.Tree{}
		}
		tree.CloneInto(d.trees[i])
	}
	d.lastAffected = append(d.lastAffected[:0], e.lastAffected...)
	return nil
}
