package bagging

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
	"repro/internal/regtree"
)

// ErrNotTrained is returned when Predict is called before Fit.
var ErrNotTrained = errors.New("bagging: ensemble is not trained")

// DefaultNumTrees is the ensemble size used by the paper's prototype
// ("a bagging ensemble of 10 random trees", §5.2).
const DefaultNumTrees = 10

// Params configures the ensemble.
type Params struct {
	// NumTrees is the number of base learners; values below 1 fall back to
	// DefaultNumTrees.
	NumTrees int
	// SampleFraction is the size of each bootstrap resample relative to the
	// training set; values outside (0,1] fall back to 1.
	SampleFraction float64
	// Tree configures the base learners.
	Tree regtree.Params
	// MinStdDevFraction is a lower bound on the predictive standard
	// deviation, expressed as a fraction of the predicted mean's magnitude.
	// A small floor keeps the Expected Improvement from collapsing to zero
	// when all trees agree exactly (which happens routinely with the tiny
	// training sets of early optimization iterations). Values below 0 are
	// treated as 0.
	MinStdDevFraction float64
	// Incremental makes Fit retain each tree's training samples and leaf
	// membership (regtree.TrainIncremental), enabling Update and CloneInto.
	// Retention changes neither the fitted trees nor the rng stream — only
	// memory is spent — so predictions are bitwise identical either way.
	Incremental bool
}

func (p Params) withDefaults() Params {
	if p.NumTrees < 1 {
		p.NumTrees = DefaultNumTrees
	}
	if p.SampleFraction <= 0 || p.SampleFraction > 1 {
		p.SampleFraction = 1
	}
	if p.MinStdDevFraction < 0 {
		p.MinStdDevFraction = 0
	}
	return p
}

// Ensemble is a bagging ensemble of regression trees. An Ensemble is not safe
// for concurrent mutation: call Fit from a single goroutine; Predict may be
// called concurrently once Fit has returned.
type Ensemble struct {
	params      Params
	rng         *rand.Rand
	seed        int64
	trees       []*regtree.Tree
	numFeatures int

	// updates counts the samples folded in by Update since the last Fit; it
	// is the sample index that keys the deterministic per-tree inclusion
	// weights, so clones of one fitted ensemble apply identical weights to
	// their next sample regardless of which goroutine updates them.
	updates int
	// lastAffected[t] is the node index of tree t touched by the last Update
	// (-1 when the sample was not included in that tree's stream); nil when
	// no update happened since the last Fit.
	lastAffected []int32

	// Resample buffers reused across fits. Lynceus' path simulation refits
	// the same ensemble once per speculated outcome, so per-fit allocations
	// sit directly on the planner's hot path. Trained trees never retain the
	// buffers (they only store split thresholds and leaf means), which makes
	// the reuse safe.
	subFeatures [][]float64
	subTargets  []float64

	// pathBuf is reused by AffectedByLastUpdateBatch's per-tree path
	// extraction.
	pathBuf []regtree.PathStep
}

// New creates an untrained ensemble. All randomness (bootstrap resampling and
// per-tree feature sub-sampling) is drawn from the given seed, so fits are
// reproducible.
func New(params Params, seed int64) *Ensemble {
	return &Ensemble{
		params: params.withDefaults(),
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
	}
}

// Fit trains the ensemble on the given samples, replacing any previous state.
func (e *Ensemble) Fit(features [][]float64, targets []float64) error {
	if len(features) == 0 {
		return errors.New("bagging: no training data")
	}
	if len(features) != len(targets) {
		return fmt.Errorf("bagging: %d feature rows but %d targets", len(features), len(targets))
	}

	n := len(features)
	sampleSize := int(math.Ceil(e.params.SampleFraction * float64(n)))
	if sampleSize < 1 {
		sampleSize = 1
	}

	if cap(e.subFeatures) < sampleSize {
		e.subFeatures = make([][]float64, sampleSize)
		e.subTargets = make([]float64, sampleSize)
	}
	subFeatures := e.subFeatures[:sampleSize]
	subTargets := e.subTargets[:sampleSize]

	trees := make([]*regtree.Tree, 0, e.params.NumTrees)
	for i := 0; i < e.params.NumTrees; i++ {
		for j := 0; j < sampleSize; j++ {
			idx := e.rng.Intn(n)
			subFeatures[j] = features[idx]
			subTargets[j] = targets[idx]
		}
		var tree *regtree.Tree
		var err error
		if e.params.Incremental {
			tree, err = regtree.TrainIncremental(subFeatures, subTargets, e.params.Tree, e.rng)
		} else {
			tree, err = regtree.Train(subFeatures, subTargets, e.params.Tree, e.rng)
		}
		if err != nil {
			return fmt.Errorf("bagging: training tree %d: %w", i, err)
		}
		trees = append(trees, tree)
	}
	e.trees = trees
	e.numFeatures = len(features[0])
	e.updates = 0
	e.lastAffected = e.lastAffected[:0]
	return nil
}

// Trained reports whether the ensemble has been fitted.
func (e *Ensemble) Trained() bool { return len(e.trees) > 0 }

// NumTrees returns the number of base learners in the ensemble.
func (e *Ensemble) NumTrees() int { return e.params.NumTrees }

// Predict returns the predictive distribution for the given feature vector:
// a Gaussian whose mean and standard deviation are the mean and spread of the
// individual tree predictions, as assumed by the paper's EIc computation.
//
// The inputs are validated once per call — every tree was trained on the same
// feature arity, so the per-tree traversal cannot fail after this check.
func (e *Ensemble) Predict(x []float64) (numeric.Gaussian, error) {
	if !e.Trained() {
		return numeric.Gaussian{}, ErrNotTrained
	}
	if len(x) != e.numFeatures {
		return numeric.Gaussian{}, fmt.Errorf("bagging: feature vector has %d columns, want %d", len(x), e.numFeatures)
	}
	sum, sumSq := 0.0, 0.0
	for _, tree := range e.trees {
		p := tree.PredictUnchecked(x)
		sum += p
		sumSq += p * p
	}
	return e.gaussianFromSums(sum, sumSq), nil
}

// PredictBatch predicts every point of a column-major feature matrix
// (cols[f][i] is feature f of point i), writing the predictive distribution
// of point i to out[i]. Inputs are validated once for the whole sweep and
// nothing is allocated per point: each point's features are gathered into
// one reused row and the per-point sum and sum of squares accumulate in
// registers. The trees are visited in the same order as Predict, so the
// emitted Gaussians are bitwise identical to the scalar path — this is what
// lets the planner switch its full-space sweeps to the batch path without
// changing any recommendation.
//
// (A tree-major variant — each tree traversed over the whole batch — and a
// direct column-walk variant were both measured slower here: the trees are
// small enough to stay cache-resident, so the extra accumulation passes and
// the per-node two-level column indexing cost more than they save.)
//
// The gathered row lives on the caller's stack (up to batchRowStackSize
// features), so concurrent PredictBatch calls on one fitted ensemble are
// safe, like Predict.
func (e *Ensemble) PredictBatch(cols [][]float64, out []numeric.Gaussian) error {
	if !e.Trained() {
		return ErrNotTrained
	}
	if len(cols) != e.numFeatures {
		return fmt.Errorf("bagging: feature matrix has %d columns, want %d", len(cols), e.numFeatures)
	}
	n := len(out)
	for f, col := range cols {
		if len(col) != n {
			return fmt.Errorf("bagging: feature column %d has %d points, want %d", f, len(col), n)
		}
	}
	var rowBuf [batchRowStackSize]float64
	var row []float64
	if len(cols) <= len(rowBuf) {
		row = rowBuf[:len(cols)]
	} else {
		row = make([]float64, len(cols))
	}
	for i := 0; i < n; i++ {
		for f, col := range cols {
			row[f] = col[i]
		}
		sum, sumSq := 0.0, 0.0
		for _, tree := range e.trees {
			p := tree.PredictUnchecked(row)
			sum += p
			sumSq += p * p
		}
		out[i] = e.gaussianFromSums(sum, sumSq)
	}
	return nil
}

// batchRowStackSize is the widest feature row PredictBatch gathers on the
// stack; wider spaces (rare — configuration spaces have a handful of
// dimensions) fall back to one heap allocation per call.
const batchRowStackSize = 32

// gaussianFromSums turns the sum and sum of squares of the tree predictions
// into the predictive Gaussian. Predict and PredictBatch share it so the two
// paths stay bitwise identical.
func (e *Ensemble) gaussianFromSums(sum, sumSq float64) numeric.Gaussian {
	n := float64(len(e.trees))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if floor := e.params.MinStdDevFraction * math.Abs(mean); std < floor {
		std = floor
	}
	return numeric.Gaussian{Mean: mean, StdDev: std}
}

// Factory creates independent ensembles that share the same parameters but
// use distinct deterministic random streams. Lynceus' path simulation
// retrains a fresh model at every speculated step, potentially from several
// goroutines at once; a Factory hands each of them its own Ensemble.
type Factory struct {
	params Params
	seed   int64
}

// NewFactory creates a Factory with the given parameters and base seed.
func NewFactory(params Params, seed int64) *Factory {
	return &Factory{params: params.withDefaults(), seed: seed}
}

// Params returns the parameters with which ensembles are created.
func (f *Factory) Params() Params { return f.params }

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed hash shared
// by every stream derivation in this package (factory streams, update
// inclusion weights).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New creates a fresh untrained ensemble whose random stream is derived from
// the factory seed and the given stream identifier. Calls with distinct
// stream identifiers are safe from concurrent goroutines.
func (f *Factory) New(stream int64) *Ensemble {
	// SplitMix64-style mixing to decorrelate nearby stream ids.
	z := mix64(uint64(f.seed) + uint64(stream)*0x9E3779B97F4A7C15)
	return New(f.params, int64(z))
}
