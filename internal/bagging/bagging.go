package bagging

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
	"repro/internal/regtree"
)

// ErrNotTrained is returned when Predict is called before Fit.
var ErrNotTrained = errors.New("bagging: ensemble is not trained")

// DefaultNumTrees is the ensemble size used by the paper's prototype
// ("a bagging ensemble of 10 random trees", §5.2).
const DefaultNumTrees = 10

// Params configures the ensemble.
type Params struct {
	// NumTrees is the number of base learners; values below 1 fall back to
	// DefaultNumTrees.
	NumTrees int
	// SampleFraction is the size of each bootstrap resample relative to the
	// training set; values outside (0,1] fall back to 1.
	SampleFraction float64
	// Tree configures the base learners.
	Tree regtree.Params
	// MinStdDevFraction is a lower bound on the predictive standard
	// deviation, expressed as a fraction of the predicted mean's magnitude.
	// A small floor keeps the Expected Improvement from collapsing to zero
	// when all trees agree exactly (which happens routinely with the tiny
	// training sets of early optimization iterations). Values below 0 are
	// treated as 0.
	MinStdDevFraction float64
	// Incremental makes Fit retain each tree's training samples and leaf
	// membership (regtree.TrainIncremental), enabling Update and CloneInto.
	// Retention changes neither the fitted trees nor the rng stream — only
	// memory is spent — so predictions are bitwise identical either way.
	Incremental bool
}

func (p Params) withDefaults() Params {
	if p.NumTrees < 1 {
		p.NumTrees = DefaultNumTrees
	}
	if p.SampleFraction <= 0 || p.SampleFraction > 1 {
		p.SampleFraction = 1
	}
	if p.MinStdDevFraction < 0 {
		p.MinStdDevFraction = 0
	}
	return p
}

// Ensemble is a bagging ensemble of regression trees. An Ensemble is not safe
// for concurrent mutation: call Fit from a single goroutine; Predict may be
// called concurrently once Fit has returned.
type Ensemble struct {
	params      Params
	rng         *rand.Rand
	seed        int64
	trees       []*regtree.Tree
	numFeatures int

	// updates counts the samples folded in by Update since the last Fit; it
	// is the sample index that keys the deterministic per-tree inclusion
	// weights, so clones of one fitted ensemble apply identical weights to
	// their next sample regardless of which goroutine updates them.
	updates int
	// lastAffected[t] is the node index of tree t touched by the last Update
	// (-1 when the sample was not included in that tree's stream); nil when
	// no update happened since the last Fit.
	lastAffected []int32

	// Resample buffers and the training arena, reused across fits. Lynceus'
	// path simulation refits the same ensemble once per speculated outcome,
	// so per-fit allocations sit directly on the planner's hot path: the
	// trees are trained in place through one arena (split scratch, transposed
	// sample matrix, index permutation), and the tree objects themselves are
	// recycled, so a steady-state refit allocates nothing. Trained trees
	// never retain arena memory, which makes the reuse safe.
	subFeatures [][]float64
	subTargets  []float64
	arena       *regtree.Arena

	// Scratch reused by the affected-point sweeps: the per-tree path buffer,
	// the per-point marks, the shrinking per-step worklist, and the id list
	// backing AffectedByLastUpdateBatch.
	pathBuf []regtree.PathStep
	markBuf []bool
	wlBuf   []int32
	idsBuf  []int32

	// Memo-repair state (PredictBatchRepair / AppendRepairedByLastUpdate):
	// repairPreds is a tree-major matrix — repairPreds[t*repairN+i] is tree
	// t's prediction for point i of the last repair-prefilled sweep — that
	// turns post-Update repair into per-tree constant stores instead of
	// full ensemble re-walks. repairLeaf is the matching leaf-index matrix:
	// because an Update's affected node was the covering leaf before the
	// insert, the points it moved in tree t are exactly those with
	// repairLeaf[t*repairN+i] == affected — one sequential equality scan,
	// no root-path re-filtering. repairN is the swept point count (0 = no
	// valid state); repairDirty records that exactly one Update has been
	// applied since the matrices were last consistent. rowScratch is one
	// gathered feature row for the re-split repair walk.
	repairPreds []float64
	repairLeaf  []int32
	repairN     int
	repairDirty bool
	rowScratch  []float64
}

// New creates an untrained ensemble. All randomness (bootstrap resampling and
// per-tree feature sub-sampling) is drawn from the given seed, so fits are
// reproducible.
func New(params Params, seed int64) *Ensemble {
	return &Ensemble{
		params: params.withDefaults(),
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
	}
}

// Fit trains the ensemble on the given samples, replacing any previous state.
func (e *Ensemble) Fit(features [][]float64, targets []float64) error {
	if len(features) == 0 {
		return errors.New("bagging: no training data")
	}
	if len(features) != len(targets) {
		return fmt.Errorf("bagging: %d feature rows but %d targets", len(features), len(targets))
	}

	n := len(features)
	sampleSize := int(math.Ceil(e.params.SampleFraction * float64(n)))
	if sampleSize < 1 {
		sampleSize = 1
	}

	if cap(e.subFeatures) < sampleSize {
		e.subFeatures = make([][]float64, sampleSize)
		e.subTargets = make([]float64, sampleSize)
	}
	subFeatures := e.subFeatures[:sampleSize]
	subTargets := e.subTargets[:sampleSize]

	// Train into recycled tree objects through the shared arena: the rng
	// stream and the induction are identical to a from-scratch fit, so the
	// fitted trees are bitwise the same — only the allocations disappear. A
	// mid-loop training error (malformed rows or non-finite targets in the
	// drawn subsample) leaves the ensemble partially refitted; no caller
	// continues using an ensemble whose Fit failed.
	if e.arena == nil {
		e.arena = regtree.NewArena()
	}
	if cap(e.trees) < e.params.NumTrees {
		trees := make([]*regtree.Tree, e.params.NumTrees)
		copy(trees, e.trees)
		e.trees = trees[:len(e.trees)]
	}
	trees := e.trees[:e.params.NumTrees]
	for i := 0; i < e.params.NumTrees; i++ {
		for j := 0; j < sampleSize; j++ {
			idx := e.rng.Intn(n)
			subFeatures[j] = features[idx]
			subTargets[j] = targets[idx]
		}
		if trees[i] == nil {
			trees[i] = &regtree.Tree{}
		}
		var err error
		if e.params.Incremental {
			err = e.arena.TrainIncremental(trees[i], subFeatures, subTargets, e.params.Tree, e.rng)
		} else {
			err = e.arena.Train(trees[i], subFeatures, subTargets, e.params.Tree, e.rng)
		}
		if err != nil {
			return fmt.Errorf("bagging: training tree %d: %w", i, err)
		}
	}
	e.trees = trees
	e.numFeatures = len(features[0])
	e.updates = 0
	e.lastAffected = e.lastAffected[:0]
	e.repairN = 0
	e.repairDirty = false
	return nil
}

// Trained reports whether the ensemble has been fitted.
func (e *Ensemble) Trained() bool { return len(e.trees) > 0 }

// NumTrees returns the number of base learners in the ensemble.
func (e *Ensemble) NumTrees() int { return e.params.NumTrees }

// Predict returns the predictive distribution for the given feature vector:
// a Gaussian whose mean and standard deviation are the mean and spread of the
// individual tree predictions, as assumed by the paper's EIc computation.
//
// The inputs are validated once per call — every tree was trained on the same
// feature arity, so the per-tree traversal cannot fail after this check.
func (e *Ensemble) Predict(x []float64) (numeric.Gaussian, error) {
	if !e.Trained() {
		return numeric.Gaussian{}, ErrNotTrained
	}
	if len(x) != e.numFeatures {
		return numeric.Gaussian{}, fmt.Errorf("bagging: feature vector has %d columns, want %d", len(x), e.numFeatures)
	}
	sum, sumSq := accumRow(e.trees, x)
	return e.gaussianFromSums(sum, sumSq), nil
}

// accumRow walks one feature row through every tree and returns the sum and
// sum of squares of the tree predictions. Predict and PredictBatch share it,
// which keeps the two paths bitwise identical — and keeps the hot traversal
// in a small frame of its own, where the tree walk inlines without competing
// for registers with the callers' sweep bookkeeping (inlining it into the
// batch loop measurably slowed the walk down).
func accumRow(trees []*regtree.Tree, x []float64) (sum, sumSq float64) {
	for _, tree := range trees {
		p := tree.PredictUnchecked(x)
		sum += p
		sumSq += p * p
	}
	return sum, sumSq
}

// PredictBatch predicts every point of a column-major feature matrix
// (cols[f][i] is feature f of point i), writing the predictive distribution
// of point i to out[i]. Inputs are validated once for the whole sweep and
// nothing is allocated per point: each point is gathered from the columns
// into a stack row once and that row is shared by every tree of the
// ensemble (accumRow), so the sweep pays one gather per point instead of
// one validated call per point. Within one point the trees accumulate in
// the same order as Predict, so the emitted Gaussians are bitwise identical
// to the scalar path and the planner can batch its sweeps without changing
// any recommendation.
//
// The gathered rows live on the caller's stack (for typical arities), so
// concurrent PredictBatch calls on one fitted ensemble are safe, like
// Predict.
func (e *Ensemble) PredictBatch(cols [][]float64, out []numeric.Gaussian) error {
	if !e.Trained() {
		return ErrNotTrained
	}
	if len(cols) != e.numFeatures {
		return fmt.Errorf("bagging: feature matrix has %d columns, want %d", len(cols), e.numFeatures)
	}
	n := len(out)
	for f, col := range cols {
		if len(col) != n {
			return fmt.Errorf("bagging: feature column %d has %d points, want %d", f, len(col), n)
		}
	}
	m := e.numFeatures
	var rowsArr [rowSlots * rowStride]float64
	rows := rowsArr[:]
	stride := rowStride
	if m > rowStride {
		// Degenerate arities beyond the stack budget fall back to a heap
		// buffer (one allocation per sweep, not per point).
		stride = m
		rows = make([]float64, rowSlots*stride)
	}
	trees := e.trees
	for i := 0; i < n; i++ {
		// Rotate the gather across rowSlots distinct rows: re-gathering every
		// point into one fixed row makes each point's stores alias the
		// previous point's still-speculative walk loads, and the resulting
		// memory-order stalls measurably serialized the sweep.
		off := (i % rowSlots) * stride
		x := rows[off : off+m : off+m]
		for f, col := range cols {
			x[f] = col[i]
		}
		sum, sumSq := accumRow(trees, x)
		out[i] = e.gaussianFromSums(sum, sumSq)
	}
	return nil
}

// rowSlots is the number of gather rows PredictBatch rotates across;
// rowStride is the per-row stack budget in float64s (wider spaces spill the
// rotation to one heap buffer per sweep).
const (
	rowSlots  = 8
	rowStride = 16
)

// PredictBatchRepair is PredictBatch plus memo-repair bookkeeping: alongside
// each point's Gaussian it records every individual tree's prediction in a
// tree-major matrix retained on the ensemble, which is what lets
// AppendRepairedByLastUpdate refresh a one-sample update's affected points
// without re-walking any unchanged tree. The emitted Gaussians are bitwise
// identical to PredictBatch (same traversals, same accumulation order);
// Predict/PredictBatch stay concurrency-safe afterwards, but
// PredictBatchRepair itself mutates ensemble state and must not run
// concurrently with anything on the same ensemble.
func (e *Ensemble) PredictBatchRepair(cols [][]float64, out []numeric.Gaussian) error {
	if !e.Trained() {
		return ErrNotTrained
	}
	if len(cols) != e.numFeatures {
		return fmt.Errorf("bagging: feature matrix has %d columns, want %d", len(cols), e.numFeatures)
	}
	n := len(out)
	for f, col := range cols {
		if len(col) != n {
			return fmt.Errorf("bagging: feature column %d has %d points, want %d", f, len(col), n)
		}
	}
	m := e.numFeatures
	var rowsArr [rowSlots * rowStride]float64
	rows := rowsArr[:]
	stride := rowStride
	if m > rowStride {
		stride = m
		rows = make([]float64, rowSlots*stride)
	}
	trees := e.trees
	if cap(e.repairPreds) < len(trees)*n {
		e.repairPreds = make([]float64, len(trees)*n)
	}
	if cap(e.repairLeaf) < len(trees)*n {
		e.repairLeaf = make([]int32, len(trees)*n)
	}
	mat := e.repairPreds[:len(trees)*n]
	leaves := e.repairLeaf[:len(trees)*n]
	for i := 0; i < n; i++ {
		off := (i % rowSlots) * stride
		x := rows[off : off+m : off+m]
		for f, col := range cols {
			x[f] = col[i]
		}
		sum, sumSq := accumRowStore(trees, x, mat, leaves, n, i)
		out[i] = e.gaussianFromSums(sum, sumSq)
	}
	e.repairN = n
	e.repairDirty = false
	return nil
}

// accumRowStore is accumRow with a per-tree store into the repair matrices
// (mat[t*n+i] = tree t's prediction, leaves[t*n+i] = the leaf it ended on).
// Kept as its own small frame for the same codegen reason as accumRow.
func accumRowStore(trees []*regtree.Tree, x []float64, mat []float64, leaves []int32, n, i int) (sum, sumSq float64) {
	for t, tree := range trees {
		p, leaf := tree.PredictLeafFromUnchecked(0, x)
		mat[t*n+i] = p
		leaves[t*n+i] = leaf
		sum += p
		sumSq += p * p
	}
	return sum, sumSq
}

// gaussianFromSums turns the sum and sum of squares of the tree predictions
// into the predictive Gaussian. Predict and PredictBatch share it so the two
// paths stay bitwise identical.
func (e *Ensemble) gaussianFromSums(sum, sumSq float64) numeric.Gaussian {
	n := float64(len(e.trees))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if floor := e.params.MinStdDevFraction * math.Abs(mean); std < floor {
		std = floor
	}
	return numeric.Gaussian{Mean: mean, StdDev: std}
}

// Factory creates independent ensembles that share the same parameters but
// use distinct deterministic random streams. Lynceus' path simulation
// retrains a fresh model at every speculated step, potentially from several
// goroutines at once; a Factory hands each of them its own Ensemble.
type Factory struct {
	params Params
	seed   int64
}

// NewFactory creates a Factory with the given parameters and base seed.
func NewFactory(params Params, seed int64) *Factory {
	return &Factory{params: params.withDefaults(), seed: seed}
}

// Params returns the parameters with which ensembles are created.
func (f *Factory) Params() Params { return f.params }

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed hash shared
// by every stream derivation in this package (factory streams, update
// inclusion weights).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New creates a fresh untrained ensemble whose random stream is derived from
// the factory seed and the given stream identifier. Calls with distinct
// stream identifiers are safe from concurrent goroutines.
func (f *Factory) New(stream int64) *Ensemble {
	// SplitMix64-style mixing to decorrelate nearby stream ids.
	z := mix64(uint64(f.seed) + uint64(stream)*0x9E3779B97F4A7C15)
	return New(f.params, int64(z))
}
