package bagging

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
	"repro/internal/regtree"
)

func linearDataset(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	features := make([][]float64, n)
	targets := make([]float64, n)
	for i := range features {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 5
		features[i] = []float64{x0, x1}
		targets[i] = 3*x0 + 2*x1 + rng.NormFloat64()*noise
	}
	return features, targets
}

func TestPredictBeforeFit(t *testing.T) {
	e := New(Params{}, 1)
	if _, err := e.Predict([]float64{1, 2}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Predict before Fit error = %v, want ErrNotTrained", err)
	}
	if e.Trained() {
		t.Error("Trained() = true before Fit")
	}
}

func TestFitValidation(t *testing.T) {
	e := New(Params{}, 1)
	if err := e.Fit(nil, nil); err == nil {
		t.Error("empty training data should error")
	}
	if err := e.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	e := New(Params{}, 1)
	if e.NumTrees() != DefaultNumTrees {
		t.Errorf("NumTrees = %d, want %d (paper §5.2 uses 10 trees)", e.NumTrees(), DefaultNumTrees)
	}
}

func TestPredictArityCheck(t *testing.T) {
	e := New(Params{}, 1)
	features, targets := linearDataset(20, 0, 1)
	if err := e.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if _, err := e.Predict([]float64{1}); err == nil {
		t.Error("wrong arity should error")
	}
}

func TestEnsembleLearnsSmoothFunction(t *testing.T) {
	features, targets := linearDataset(400, 0.2, 7)
	e := New(Params{NumTrees: 20, Tree: regtree.Params{MinLeafSize: 3}}, 11)
	if err := e.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	testFeatures, testTargets := linearDataset(100, 0, 99)
	var sse, sst float64
	var meanY float64
	for _, y := range testTargets {
		meanY += y
	}
	meanY /= float64(len(testTargets))
	for i, x := range testFeatures {
		pred, err := e.Predict(x)
		if err != nil {
			t.Fatalf("Predict error: %v", err)
		}
		sse += (pred.Mean - testTargets[i]) * (pred.Mean - testTargets[i])
		sst += (testTargets[i] - meanY) * (testTargets[i] - meanY)
	}
	r2 := 1 - sse/sst
	if r2 < 0.85 {
		t.Errorf("ensemble R^2 = %v, want >= 0.85", r2)
	}
}

func TestPredictionUncertaintyNonNegativeAndFloored(t *testing.T) {
	features, targets := linearDataset(50, 1.0, 3)
	e := New(Params{NumTrees: 15, MinStdDevFraction: 0.01}, 5)
	if err := e.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	for i := 0; i < 30; i++ {
		x := []float64{float64(i) / 3, float64(i % 5)}
		pred, err := e.Predict(x)
		if err != nil {
			t.Fatalf("Predict error: %v", err)
		}
		if pred.StdDev < 0 {
			t.Errorf("negative std %v", pred.StdDev)
		}
		if floor := 0.01 * math.Abs(pred.Mean); pred.StdDev < floor {
			t.Errorf("std %v below floor %v", pred.StdDev, floor)
		}
	}
}

func TestFitIsReproducibleGivenSeed(t *testing.T) {
	features, targets := linearDataset(80, 0.5, 21)
	a := New(Params{NumTrees: 8}, 42)
	b := New(Params{NumTrees: 8}, 42)
	if err := a.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := b.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i), float64(i % 3)}
		pa, err := a.Predict(x)
		if err != nil {
			t.Fatalf("Predict error: %v", err)
		}
		pb, err := b.Predict(x)
		if err != nil {
			t.Fatalf("Predict error: %v", err)
		}
		if pa != pb {
			t.Fatalf("predictions diverge for identical seeds: %+v vs %+v", pa, pb)
		}
	}
}

func TestRefitReplacesModel(t *testing.T) {
	e := New(Params{NumTrees: 5}, 9)
	lowFeatures := [][]float64{{1}, {2}, {3}, {4}}
	lowTargets := []float64{1, 1, 1, 1}
	if err := e.Fit(lowFeatures, lowTargets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	highTargets := []float64{100, 100, 100, 100}
	if err := e.Fit(lowFeatures, highTargets); err != nil {
		t.Fatalf("refit error: %v", err)
	}
	pred, err := e.Predict([]float64{2})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	if pred.Mean != 100 {
		t.Errorf("prediction after refit = %v, want 100", pred.Mean)
	}
}

func TestSingleSampleFit(t *testing.T) {
	e := New(Params{NumTrees: 4}, 2)
	if err := e.Fit([][]float64{{5, 5}}, []float64{13}); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	pred, err := e.Predict([]float64{0, 0})
	if err != nil {
		t.Fatalf("Predict error: %v", err)
	}
	if pred.Mean != 13 || pred.StdDev != 0 {
		t.Errorf("single-sample prediction = %+v, want mean 13, std 0", pred)
	}
}

func TestFactoryStreamsAreIndependentAndDeterministic(t *testing.T) {
	features, targets := linearDataset(60, 2.0, 17)
	f := NewFactory(Params{NumTrees: 6}, 1234)
	if f.Params().NumTrees != 6 {
		t.Errorf("factory params lost: %+v", f.Params())
	}

	a1 := f.New(7)
	a2 := f.New(7)
	b := f.New(8)
	for _, e := range []*Ensemble{a1, a2, b} {
		if err := e.Fit(features, targets); err != nil {
			t.Fatalf("Fit error: %v", err)
		}
	}
	x := []float64{4, 2}
	pa1, _ := a1.Predict(x)
	pa2, _ := a2.Predict(x)
	pb, _ := b.Predict(x)
	if pa1 != pa2 {
		t.Errorf("same stream should yield identical models: %+v vs %+v", pa1, pa2)
	}
	if pa1 == pb {
		t.Logf("different streams produced identical predictions (possible but unlikely): %+v", pa1)
	}
}

func TestFactoryConcurrentUse(t *testing.T) {
	features, targets := linearDataset(50, 1.0, 23)
	f := NewFactory(Params{NumTrees: 5}, 99)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			e := f.New(int64(stream))
			if err := e.Fit(features, targets); err != nil {
				errs[stream] = err
				return
			}
			if _, err := e.Predict([]float64{1, 1}); err != nil {
				errs[stream] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
	}
}

// TestQuickPredictionWithinTargetRange: bagging predictions are averages of
// tree predictions, which are averages of targets, so they must stay within
// the target range.
func TestQuickPredictionWithinTargetRange(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		features := make([][]float64, n)
		targets := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range features {
			features[i] = []float64{rng.Float64() * 10, rng.Float64()}
			targets[i] = rng.NormFloat64() * 20
			if targets[i] < lo {
				lo = targets[i]
			}
			if targets[i] > hi {
				hi = targets[i]
			}
		}
		e := New(Params{NumTrees: 5}, seed)
		if err := e.Fit(features, targets); err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			pred, err := e.Predict([]float64{rng.Float64() * 20, rng.Float64() * 2})
			if err != nil {
				return false
			}
			if pred.Mean < lo-1e-9 || pred.Mean > hi+1e-9 {
				return false
			}
			if pred.StdDev < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("bagging prediction range property failed: %v", err)
	}
}

// transpose turns row-major feature rows into the column-major matrix
// consumed by PredictBatch.
func transpose(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	cols := make([][]float64, len(rows[0]))
	for f := range cols {
		cols[f] = make([]float64, len(rows))
		for i, row := range rows {
			cols[f][i] = row[f]
		}
	}
	return cols
}

// TestPredictBatchMatchesScalarBitwise is the model-level half of the batch
// determinism contract: for any seed and ensemble size, the batched sweep
// must emit Gaussians bitwise identical to sequential Predict calls.
func TestPredictBatchMatchesScalarBitwise(t *testing.T) {
	for _, trees := range []int{1, 5, 10, 20} {
		for seed := int64(1); seed <= 5; seed++ {
			features, targets := linearDataset(40, 1.0, seed)
			e := New(Params{NumTrees: trees, MinStdDevFraction: 0.01}, seed)
			if err := e.Fit(features, targets); err != nil {
				t.Fatalf("trees=%d seed=%d: Fit error: %v", trees, seed, err)
			}
			rng := rand.New(rand.NewSource(seed + 100))
			queries := make([][]float64, 120)
			for i := range queries {
				queries[i] = []float64{rng.Float64() * 12, rng.Float64() * 6}
			}
			out := make([]numeric.Gaussian, len(queries))
			if err := e.PredictBatch(transpose(queries), out); err != nil {
				t.Fatalf("trees=%d seed=%d: PredictBatch error: %v", trees, seed, err)
			}
			for i, q := range queries {
				want, err := e.Predict(q)
				if err != nil {
					t.Fatalf("trees=%d seed=%d: Predict error: %v", trees, seed, err)
				}
				if out[i] != want {
					t.Fatalf("trees=%d seed=%d query %d: batch %+v != scalar %+v", trees, seed, i, out[i], want)
				}
			}
		}
	}
}

func TestPredictBatchValidation(t *testing.T) {
	e := New(Params{NumTrees: 3}, 1)
	if err := e.PredictBatch([][]float64{{1}, {2}}, make([]numeric.Gaussian, 1)); !errors.Is(err, ErrNotTrained) {
		t.Errorf("PredictBatch before Fit error = %v, want ErrNotTrained", err)
	}
	features, targets := linearDataset(20, 0.5, 1)
	if err := e.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	if err := e.PredictBatch([][]float64{{1}}, make([]numeric.Gaussian, 1)); err == nil {
		t.Error("PredictBatch with wrong column count: expected error, got nil")
	}
	if err := e.PredictBatch([][]float64{{1, 2}, {3}}, make([]numeric.Gaussian, 2)); err == nil {
		t.Error("PredictBatch with ragged columns: expected error, got nil")
	}
}

// TestPredictBatchZeroAllocsPerSweep is the allocation regression test of the
// batch path: after the first call has grown the scratch, a full sweep must
// not allocate at all — zero allocations per swept configuration.
func TestPredictBatchZeroAllocsPerSweep(t *testing.T) {
	features, targets := linearDataset(40, 1.0, 3)
	e := New(Params{NumTrees: 10}, 3)
	if err := e.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	cols := transpose(features)
	out := make([]numeric.Gaussian, len(features))
	// Warm the scratch once so the steady-state sweep is measured.
	if err := e.PredictBatch(cols, out); err != nil {
		t.Fatalf("PredictBatch error: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.PredictBatch(cols, out); err != nil {
			t.Fatalf("PredictBatch error: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("PredictBatch allocations per sweep = %v, want 0", allocs)
	}
}

// TestScalarPredictZeroAllocs locks in the hoisted validation of the scalar
// path: one Predict call validates once and allocates nothing.
func TestScalarPredictZeroAllocs(t *testing.T) {
	features, targets := linearDataset(40, 1.0, 3)
	e := New(Params{NumTrees: 10}, 3)
	if err := e.Fit(features, targets); err != nil {
		t.Fatalf("Fit error: %v", err)
	}
	x := []float64{3, 2}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.Predict(x); err != nil {
			t.Fatalf("Predict error: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("Predict allocations per call = %v, want 0", allocs)
	}
}
