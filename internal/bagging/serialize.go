package bagging

import (
	"errors"
	"fmt"

	"repro/internal/regtree"
)

// EnsembleState is the serializable fitted state of an Ensemble: parameters,
// base seed, and every fitted tree. Campaign snapshots embed it so a resumed
// (or warm-started) run can predict with the exact ensemble of the original
// process.
//
// What is deliberately NOT serialized: the resampling rng position (so Fit on
// a restored ensemble restarts the seed's stream from the top, unlike the
// original instance whose stream had advanced) and the trees' retained
// incremental-training state (so a restored ensemble cannot absorb Update
// calls). Restored ensembles are prediction-complete, training-fresh.
type EnsembleState struct {
	Params      Params              `json:"params"`
	Seed        int64               `json:"seed"`
	NumFeatures int                 `json:"num_features"`
	Trees       []regtree.TreeState `json:"trees"`
}

// State extracts the serializable fitted state of the ensemble.
func (e *Ensemble) State() (*EnsembleState, error) {
	if !e.Trained() {
		return nil, ErrNotTrained
	}
	trees := make([]regtree.TreeState, len(e.trees))
	for i, t := range e.trees {
		s, err := t.State()
		if err != nil {
			return nil, fmt.Errorf("bagging: serializing tree %d: %w", i, err)
		}
		trees[i] = s
	}
	return &EnsembleState{
		Params:      e.params,
		Seed:        e.seed,
		NumFeatures: e.numFeatures,
		Trees:       trees,
	}, nil
}

// FromState reconstructs a prediction-ready ensemble from serialized state.
// Predict and PredictBatch are bitwise-identical to the original instance;
// see EnsembleState for what a restored ensemble cannot do.
func FromState(s *EnsembleState) (*Ensemble, error) {
	if s == nil {
		return nil, errors.New("bagging: nil ensemble state")
	}
	if len(s.Trees) == 0 {
		return nil, errors.New("bagging: ensemble state has no trees")
	}
	if s.NumFeatures < 1 {
		return nil, fmt.Errorf("bagging: ensemble state has %d features", s.NumFeatures)
	}
	e := New(s.Params, s.Seed)
	trees := make([]*regtree.Tree, len(s.Trees))
	for i, ts := range s.Trees {
		t, err := regtree.FromState(ts)
		if err != nil {
			return nil, fmt.Errorf("bagging: restoring tree %d: %w", i, err)
		}
		if t.NumFeatures() != s.NumFeatures {
			return nil, fmt.Errorf("bagging: tree %d has %d features, ensemble has %d", i, t.NumFeatures(), s.NumFeatures)
		}
		trees[i] = t
	}
	e.trees = trees
	e.numFeatures = s.NumFeatures
	return e, nil
}
