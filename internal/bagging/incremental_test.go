package bagging

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/numeric"
)

// incEnsembleFixture fits an incremental ensemble on a smooth function over a
// small discrete grid.
func incEnsembleFixture(t *testing.T, seed int64) (*Ensemble, [][]float64, []float64, func([]float64) float64) {
	t.Helper()
	fn := func(x []float64) float64 { return 2*x[0] + x[1]*x[1] }
	features := make([][]float64, 0, 36)
	targets := make([]float64, 0, 36)
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			x := []float64{float64(a), float64(b)}
			features = append(features, x)
			targets = append(targets, fn(x))
		}
	}
	e := New(Params{NumTrees: 10, Incremental: true}, seed)
	if err := e.Fit(features, targets); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return e, features, targets, fn
}

func TestIncrementalFitPredictsBitwiseLikePlainFit(t *testing.T) {
	fn := func(x []float64) float64 { return 2*x[0] + x[1] }
	features := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}
	targets := make([]float64, len(features))
	for i, x := range features {
		targets[i] = fn(x)
	}
	plain := New(Params{NumTrees: 7}, 11)
	inc := New(Params{NumTrees: 7, Incremental: true}, 11)
	if err := plain.Fit(features, targets); err != nil {
		t.Fatalf("plain Fit: %v", err)
	}
	if err := inc.Fit(features, targets); err != nil {
		t.Fatalf("incremental Fit: %v", err)
	}
	for _, x := range features {
		a, _ := plain.Predict(x)
		b, _ := inc.Predict(x)
		if a != b {
			t.Fatalf("predictions differ at %v: %v vs %v", x, a, b)
		}
	}
}

func TestUpdateRequiresIncrementalFit(t *testing.T) {
	e := New(Params{NumTrees: 3}, 1)
	if err := e.Update([]float64{0}, 1); err != ErrNotTrained {
		t.Fatalf("Update before Fit = %v, want ErrNotTrained", err)
	}
	if err := e.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if err := e.Update([]float64{0}, 1); err != ErrNotIncremental {
		t.Fatalf("Update on plain fit = %v, want ErrNotIncremental", err)
	}
	if err := e.CloneInto(New(Params{NumTrees: 3}, 2)); err != ErrNotIncremental {
		t.Fatalf("CloneInto on plain fit = %v, want ErrNotIncremental", err)
	}
}

func TestUpdateMovesPredictionsTowardNewSample(t *testing.T) {
	e, _, _, _ := incEnsembleFixture(t, 5)
	x := []float64{3, 3}
	before, err := e.Predict(x)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	// Feed the same outlier repeatedly; the covering leaves' means must move
	// toward it.
	target := before.Mean + 50
	for i := 0; i < 8; i++ {
		if err := e.Update(x, target); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
	}
	after, err := e.Predict(x)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if after.Mean <= before.Mean {
		t.Fatalf("prediction did not move toward the inserted target: %v -> %v", before.Mean, after.Mean)
	}
	if e.Updates() != 8 {
		t.Fatalf("Updates = %d, want 8", e.Updates())
	}
}

func TestUpdateIsDeterministicAcrossClones(t *testing.T) {
	parent, features, _, fn := incEnsembleFixture(t, 9)
	mk := func() *Ensemble {
		c := New(parent.params, 12345) // distinct construction seed must not matter
		if err := parent.CloneInto(c); err != nil {
			t.Fatalf("CloneInto: %v", err)
		}
		return c
	}
	a, b := mk(), mk()
	stream := []struct {
		x []float64
		y float64
	}{
		{[]float64{1.5, 2}, fn([]float64{1.5, 2})},
		{[]float64{4, 0.5}, fn([]float64{4, 0.5}) + 1},
		{[]float64{2, 2}, fn([]float64{2, 2}) - 3},
	}
	for _, s := range stream {
		if err := a.Update(s.x, s.y); err != nil {
			t.Fatalf("Update a: %v", err)
		}
		if err := b.Update(s.x, s.y); err != nil {
			t.Fatalf("Update b: %v", err)
		}
	}
	for _, x := range features {
		pa, _ := a.Predict(x)
		pb, _ := b.Predict(x)
		if pa != pb {
			t.Fatalf("clone predictions diverged at %v: %+v vs %+v", x, pa, pb)
		}
	}
}

func TestCloneIntoLeavesParentUntouched(t *testing.T) {
	parent, features, _, _ := incEnsembleFixture(t, 21)
	before := make([]numeric.Gaussian, len(features))
	for i, x := range features {
		before[i], _ = parent.Predict(x)
	}
	clone := New(parent.params, 77)
	if err := parent.CloneInto(clone); err != nil {
		t.Fatalf("CloneInto: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := clone.Update([]float64{1, 1}, 99); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	for i, x := range features {
		after, _ := parent.Predict(x)
		if after != before[i] {
			t.Fatalf("parent moved at %v: %+v -> %+v", x, before[i], after)
		}
	}
	if parent.Updates() != 0 {
		t.Fatalf("parent Updates = %d, want 0", parent.Updates())
	}
}

func TestAffectedByLastUpdateFlagsEveryChangedPrediction(t *testing.T) {
	e, features, _, _ := incEnsembleFixture(t, 31)
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 20; step++ {
		before := make([]numeric.Gaussian, len(features))
		for i, x := range features {
			before[i], _ = e.Predict(x)
		}
		x := []float64{rng.Float64() * 5, rng.Float64() * 5}
		if err := e.Update(x, rng.Float64()*50); err != nil {
			t.Fatalf("Update: %v", err)
		}
		for i, px := range features {
			after, _ := e.Predict(px)
			if after != before[i] && !e.AffectedByLastUpdate(px) {
				t.Fatalf("step %d: prediction at %v changed (%+v -> %+v) but AffectedByLastUpdate is false",
					step, px, before[i], after)
			}
		}
	}
}

func TestInclusionMultiplicityMatchesPoisson(t *testing.T) {
	// Over many draws the multiplicities must follow Poisson(1) closely:
	// mean ~1, P(0) ~ 1/e.
	const n = 200_000
	zeros, total := 0, 0
	for i := 0; i < n; i++ {
		m := inclusionMultiplicity(updateStream(42, i%10, i), 1)
		total += m
		if m == 0 {
			zeros++
		}
	}
	mean := float64(total) / n
	p0 := float64(zeros) / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("multiplicity mean = %v, want ~1", mean)
	}
	if math.Abs(p0-math.Exp(-1)) > 0.01 {
		t.Errorf("P(multiplicity=0) = %v, want ~%v", p0, math.Exp(-1))
	}
}

// TestPredictBatchConcurrentSweeps exercises concurrent batched sweeps over
// one fitted ensemble — the shared-scratch hazard fixed by moving the
// gathered row to the caller's stack. Run under -race this fails loudly if
// PredictBatch ever regains shared mutable state.
func TestPredictBatchConcurrentSweeps(t *testing.T) {
	e, features, _, _ := incEnsembleFixture(t, 13)
	cols := make([][]float64, 2)
	for f := range cols {
		cols[f] = make([]float64, len(features))
		for i, row := range features {
			cols[f][i] = row[f]
		}
	}
	want := make([]numeric.Gaussian, len(features))
	if err := e.PredictBatch(cols, want); err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([][]numeric.Gaussian, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]numeric.Gaussian, len(features))
			for iter := 0; iter < 50; iter++ {
				if err := e.PredictBatch(cols, out); err != nil {
					errs[g] = err
					return
				}
			}
			outs[g] = out
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
		for i := range want {
			if outs[g][i] != want[i] {
				t.Fatalf("goroutine %d point %d = %+v, want %+v", g, i, outs[g][i], want[i])
			}
		}
	}
}
