package bagging

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
	"repro/internal/regtree"
)

// pointerTree is a pointer-linked mirror of one fitted regression tree,
// rebuilt from the serialized state. The ensemble-level property test walks
// it to prove that ensemble predictions over the packed flat trees — scalar
// and batched — stay bitwise identical to pointer chasing even after online
// Update sequences on clones.
type pointerTree struct {
	feature   int32
	threshold float64
	value     float64
	left      *pointerTree
	right     *pointerTree
}

func pointerFromState(s regtree.TreeState) *pointerTree {
	var build func(i int32) *pointerTree
	build = func(i int32) *pointerTree {
		ns := s.Nodes[i]
		if ns.Left < 0 {
			return &pointerTree{value: ns.Value}
		}
		return &pointerTree{
			feature:   ns.Feature,
			threshold: ns.Threshold,
			left:      build(ns.Left),
			right:     build(ns.Right),
		}
	}
	return build(0)
}

func (n *pointerTree) predict(x []float64) float64 {
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// refGaussian recomputes the ensemble's predictive Gaussian from the pointer
// mirrors with the same accumulation order and floor as the production path.
func refGaussian(e *Ensemble, refs []*pointerTree, x []float64) numeric.Gaussian {
	var sum, sumSq float64
	for _, ref := range refs {
		p := ref.predict(x)
		sum += p
		sumSq += p * p
	}
	return e.gaussianFromSums(sum, sumSq)
}

// TestEnsemblePredictionsMatchPointerTreesThroughUpdates fits an incremental
// ensemble, clones it, and folds a stream of updates into the clone —
// re-deriving pointer mirrors of every tree after each stretch and checking
// that Predict and PredictBatch agree with the mirrors bitwise.
func TestEnsemblePredictionsMatchPointerTreesThroughUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const m = 3
	features := make([][]float64, 30)
	targets := make([]float64, 30)
	for i := range features {
		features[i] = []float64{float64(rng.Intn(4)), rng.Float64() * 8, float64(rng.Intn(3))}
		targets[i] = 2*features[i][0] + features[i][1] + rng.NormFloat64()
	}
	ensemble := New(Params{NumTrees: 8, Incremental: true, MinStdDevFraction: 0.01}, 7)
	if err := ensemble.Fit(features, targets); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	clone := New(Params{NumTrees: 8, Incremental: true, MinStdDevFraction: 0.01}, 8)
	if err := ensemble.CloneInto(clone); err != nil {
		t.Fatalf("CloneInto: %v", err)
	}

	probes := make([][]float64, 40)
	for i := range probes {
		probes[i] = []float64{rng.Float64()*6 - 1, rng.Float64()*12 - 2, rng.Float64()*5 - 1}
	}
	cols := make([][]float64, m)
	for f := range cols {
		cols[f] = make([]float64, len(probes))
		for i, p := range probes {
			cols[f][i] = p[f]
		}
	}

	check := func(e *Ensemble, label string) {
		refs := make([]*pointerTree, len(e.trees))
		for i, tree := range e.trees {
			state, err := tree.State()
			if err != nil {
				t.Fatalf("%s: tree %d State: %v", label, i, err)
			}
			refs[i] = pointerFromState(state)
		}
		batch := make([]numeric.Gaussian, len(probes))
		if err := e.PredictBatch(cols, batch); err != nil {
			t.Fatalf("%s: PredictBatch: %v", label, err)
		}
		for i, p := range probes {
			want := refGaussian(e, refs, p)
			got, err := e.Predict(p)
			if err != nil {
				t.Fatalf("%s: Predict: %v", label, err)
			}
			if math.Float64bits(got.Mean) != math.Float64bits(want.Mean) ||
				math.Float64bits(got.StdDev) != math.Float64bits(want.StdDev) {
				t.Fatalf("%s: scalar at %v: packed %+v != pointer %+v", label, p, got, want)
			}
			if batch[i] != got {
				t.Fatalf("%s: batch at %v: %+v != scalar %+v", label, p, batch[i], got)
			}
		}
	}

	check(ensemble, "fitted")
	for round := 0; round < 6; round++ {
		for k := 0; k < 5; k++ {
			x := []float64{float64(rng.Intn(4)), rng.Float64() * 8, float64(rng.Intn(3))}
			if err := clone.Update(x, 2*x[0]+x[1]+rng.NormFloat64()); err != nil {
				t.Fatalf("round %d: Update: %v", round, err)
			}
		}
		check(clone, "after updates")
	}
	// The source ensemble must be untouched by the clone's updates.
	check(ensemble, "fitted after clone updates")
}

// TestMemoRepairMatchesFreshPredictions drives the PredictBatchRepair +
// Update + AppendRepairedByLastUpdate cycle through a long update stream —
// including tight clusters that force leaves to re-split — and checks after
// every update that the repaired memo is bitwise identical to a fresh
// PredictBatch sweep. Also exercises the clone path (repair state must
// travel with CloneInto) and the unusable-state fallback after a second
// un-repaired Update.
func TestMemoRepairMatchesFreshPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const m = 3
	features := make([][]float64, 30)
	targets := make([]float64, 30)
	for i := range features {
		features[i] = []float64{float64(rng.Intn(4)), rng.Float64() * 8, float64(rng.Intn(3))}
		targets[i] = 2*features[i][0] + features[i][1] + rng.NormFloat64()
	}
	ensemble := New(Params{NumTrees: 8, Incremental: true, MinStdDevFraction: 0.01}, 7)
	if err := ensemble.Fit(features, targets); err != nil {
		t.Fatalf("Fit: %v", err)
	}

	const n = 64
	probes := make([][]float64, n)
	cols := make([][]float64, m)
	for f := range cols {
		cols[f] = make([]float64, n)
	}
	for i := range probes {
		probes[i] = []float64{rng.Float64()*6 - 1, rng.Float64()*12 - 2, rng.Float64()*5 - 1}
		for f := range cols {
			cols[f][i] = probes[i][f]
		}
	}

	preds := make([]numeric.Gaussian, n)
	want := make([]numeric.Gaussian, n)
	if err := ensemble.PredictBatchRepair(cols, preds); err != nil {
		t.Fatalf("PredictBatchRepair: %v", err)
	}
	if err := ensemble.PredictBatch(cols, want); err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	for i := range preds {
		if preds[i] != want[i] {
			t.Fatalf("sweep: PredictBatchRepair[%d] = %+v, PredictBatch = %+v", i, preds[i], want[i])
		}
	}

	verify := func(e *Ensemble, label string, round int) {
		ids, usable, err := e.AppendRepairedByLastUpdate(cols, n, nil, preds)
		if err != nil {
			t.Fatalf("%s round %d: AppendRepairedByLastUpdate: %v", label, round, err)
		}
		if !usable {
			t.Fatalf("%s round %d: repair state unexpectedly unusable", label, round)
		}
		for k := 1; k < len(ids); k++ {
			if ids[k] <= ids[k-1] {
				t.Fatalf("%s round %d: ids not strictly ascending: %v", label, round, ids)
			}
		}
		if err := e.PredictBatch(cols, want); err != nil {
			t.Fatalf("%s round %d: PredictBatch: %v", label, round, err)
		}
		for i := range preds {
			if math.Float64bits(preds[i].Mean) != math.Float64bits(want[i].Mean) ||
				math.Float64bits(preds[i].StdDev) != math.Float64bits(want[i].StdDev) {
				t.Fatalf("%s round %d: repaired[%d] = %+v, fresh = %+v", label, round, i, preds[i], want[i])
			}
		}
	}

	// Alternate diffuse updates with a tight cluster around one region so
	// covering leaves accumulate samples and re-split, exercising the
	// regrown-subtree walk (and, rarely, root-affected trees).
	for round := 0; round < 40; round++ {
		var x []float64
		if round%3 == 0 {
			x = []float64{1, 3 + rng.Float64()*0.2, 1}
		} else {
			x = []float64{float64(rng.Intn(4)), rng.Float64() * 8, float64(rng.Intn(3))}
		}
		if err := ensemble.Update(x, 2*x[0]+x[1]+rng.NormFloat64()); err != nil {
			t.Fatalf("round %d: Update: %v", round, err)
		}
		verify(ensemble, "source", round)
	}

	// Repair state must travel with CloneInto and repair independently.
	clone := New(Params{NumTrees: 8, Incremental: true, MinStdDevFraction: 0.01}, 8)
	if err := ensemble.CloneInto(clone); err != nil {
		t.Fatalf("CloneInto: %v", err)
	}
	for round := 0; round < 10; round++ {
		x := []float64{float64(rng.Intn(4)), rng.Float64() * 8, float64(rng.Intn(3))}
		if err := clone.Update(x, 2*x[0]+x[1]+rng.NormFloat64()); err != nil {
			t.Fatalf("clone round %d: Update: %v", round, err)
		}
		verify(clone, "clone", round)
	}

	// Two updates without an interleaved repair invalidate the memo: the
	// second Update must flip the state to unusable, and a fresh
	// PredictBatchRepair sweep must re-arm it.
	for k := 0; k < 2; k++ {
		x := []float64{float64(rng.Intn(4)), rng.Float64() * 8, float64(rng.Intn(3))}
		if err := clone.Update(x, 2*x[0]+x[1]+rng.NormFloat64()); err != nil {
			t.Fatalf("double-update %d: Update: %v", k, err)
		}
	}
	if _, usable, err := clone.AppendRepairedByLastUpdate(cols, n, nil, preds); err != nil || usable {
		t.Fatalf("after double update: usable=%v err=%v, want unusable with nil error", usable, err)
	}
	if err := clone.PredictBatchRepair(cols, preds); err != nil {
		t.Fatalf("re-arm PredictBatchRepair: %v", err)
	}
	x := []float64{float64(rng.Intn(4)), rng.Float64() * 8, float64(rng.Intn(3))}
	if err := clone.Update(x, 2*x[0]+x[1]+rng.NormFloat64()); err != nil {
		t.Fatalf("re-arm Update: %v", err)
	}
	verify(clone, "re-armed clone", 0)
}
