// Package bagging implements the bootstrap-aggregated ensemble of regression
// trees that Lynceus uses as its black-box cost model (paper §3): each of the
// ensemble's trees is trained on a random sub-sample of the profiled
// configurations, and the spread of the individual tree predictions provides
// the per-point mean and standard deviation that the constrained Expected
// Improvement acquisition function interprets as a Gaussian.
//
// Lynceus' path simulation refits an ensemble once per speculated outcome,
// which makes Fit the planner's single hottest operation; the ensemble
// therefore reuses its resample buffers across fits, and the regression trees
// beneath it (internal/regtree) avoid per-node allocations. A Factory hands
// independent ensembles on deterministic random streams to concurrent path
// evaluations, so the planner's parallel fan-out never shares mutable model
// state between goroutines.
//
// Ensembles fitted with Params.Incremental additionally support the
// planner's incremental speculative-refit mode: CloneInto snapshots a fitted
// ensemble into reusable storage, Update folds one sample into the cloned
// trees under deterministic Poisson bootstrap-inclusion weights keyed by
// (seed, tree, sample index), and AffectedByLastUpdateBatch bounds which
// predictions the update can have moved — see core.Params.SpeculativeRefit
// and docs/ARCHITECTURE.md, "Refit paths".
package bagging
