package bagging

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
)

func fittedEnsemble(t *testing.T) (*Ensemble, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	features := make([][]float64, 150)
	targets := make([]float64, len(features))
	for i := range features {
		x := []float64{rng.Float64() * 8, float64(rng.Intn(4)), rng.Float64()}
		features[i] = x
		targets[i] = 2*x[0] + 5*x[1] - x[2]*x[0]
	}
	e := New(Params{}, 17)
	if err := e.Fit(features, targets); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return e, features
}

func TestEnsembleStateRoundTripIsBitwise(t *testing.T) {
	e, features := fittedEnsemble(t)
	state, err := e.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	data, err := json.Marshal(state)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded EnsembleState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored, err := FromState(&decoded)
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	if !restored.Trained() || restored.NumTrees() != e.NumTrees() {
		t.Fatalf("restored ensemble trained=%v trees=%d, want trained with %d trees", restored.Trained(), restored.NumTrees(), e.NumTrees())
	}
	for i, x := range features {
		want, err := e.Predict(x)
		if err != nil {
			t.Fatalf("Predict original %d: %v", i, err)
		}
		got, err := restored.Predict(x)
		if err != nil {
			t.Fatalf("Predict restored %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("prediction %d = %+v, want bitwise %+v", i, got, want)
		}
	}
}

func TestEnsembleStateRejectsInvalid(t *testing.T) {
	if _, err := New(Params{}, 1).State(); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained State error = %v, want ErrNotTrained", err)
	}
	if _, err := FromState(nil); err == nil {
		t.Error("nil state accepted")
	}
	if _, err := FromState(&EnsembleState{NumFeatures: 2}); err == nil {
		t.Error("treeless state accepted")
	}
	e, _ := fittedEnsemble(t)
	state, err := e.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	state.NumFeatures++
	if _, err := FromState(state); err == nil {
		t.Error("feature-count mismatch accepted")
	}
}
