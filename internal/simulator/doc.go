// Package simulator drives the paper's evaluation methodology (§5.2): it
// replays one or more optimizers against a profiled job many times, each run
// bootstrapped with a different (but across-optimizer shared) random seed,
// and aggregates the metrics the paper reports — the cost of the recommended
// configuration normalized to the optimum (CNO) and the number of
// explorations performed (NEX) — together with the per-exploration
// convergence traces used by Figure 7.
//
// Campaigns parallelize across runs: Config.Workers bounds how many
// optimization runs execute concurrently, and because run i always uses seed
// BaseSeed+i and lands at index i of the result, the campaign's outcome is
// identical for every worker count.
package simulator
