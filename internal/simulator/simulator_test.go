package simulator

import (
	"math"
	"testing"

	"repro/internal/bagging"
	"repro/internal/baselines"
	"repro/internal/configspace"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/optimizer"
)

func fixtureJob(t *testing.T) *dataset.Job {
	t.Helper()
	space, err := configspace.New([]configspace.Dimension{
		{Name: "param", Values: []float64{0, 1, 2, 3}},
		{Name: "cluster", Values: []float64{1, 2, 4, 8}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	measurements := make([]dataset.Measurement, space.Size())
	for _, cfg := range space.Configs() {
		param := cfg.Features[0]
		cluster := cfg.Features[1]
		paramFactor := 1.0 + 2.5*math.Abs(param-1)
		runtime := 2400 * paramFactor / math.Pow(cluster, 0.8)
		price := 0.2 * cluster
		measurements[cfg.ID] = dataset.Measurement{
			ConfigID:         cfg.ID,
			RuntimeSeconds:   runtime,
			UnitPricePerHour: price,
			Cost:             runtime / 3600 * price,
		}
	}
	job, err := dataset.NewJob("sim-fixture", space, measurements, 0)
	if err != nil {
		t.Fatalf("NewJob error: %v", err)
	}
	return job
}

func TestConfigValidation(t *testing.T) {
	job := fixtureJob(t)
	r := baselines.NewRandom()
	invalid := []Config{
		{Job: nil, Runs: 3},
		{Job: job, Runs: 0},
		{Job: job, Runs: 3, BudgetMultiplier: -1},
		{Job: job, Runs: 3, FeasibleFraction: 2},
	}
	for i, cfg := range invalid {
		if _, err := Evaluate(r, cfg); err == nil {
			t.Errorf("invalid config %d accepted", i)
		}
	}
	if _, err := Evaluate(nil, Config{Job: job, Runs: 1}); err == nil {
		t.Error("nil optimizer should error")
	}
}

func TestEvaluateRandomBaseline(t *testing.T) {
	job := fixtureJob(t)
	cfg := Config{Job: job, Runs: 5, BaseSeed: 100}
	res, err := Evaluate(baselines.NewRandom(), cfg)
	if err != nil {
		t.Fatalf("Evaluate error: %v", err)
	}
	if res.JobName != "sim-fixture" || res.OptimizerName != "rnd" {
		t.Errorf("identity fields: %q %q", res.JobName, res.OptimizerName)
	}
	if len(res.Runs) != 5 {
		t.Fatalf("runs = %d, want 5", len(res.Runs))
	}
	if res.OptimalCost <= 0 || res.Budget <= 0 || res.Tmax <= 0 {
		t.Errorf("derived quantities: opt=%v budget=%v tmax=%v", res.OptimalCost, res.Budget, res.Tmax)
	}
	for i, run := range res.Runs {
		if run.CNO < 1-1e-9 {
			t.Errorf("run %d CNO = %v below 1", i, run.CNO)
		}
		if run.Explorations < 2 {
			t.Errorf("run %d explorations = %d", i, run.Explorations)
		}
		if len(run.BestCNOByExploration) != run.Explorations {
			t.Errorf("run %d trace length %d != NEX %d", i, len(run.BestCNOByExploration), run.Explorations)
		}
		if run.Seed != cfg.BaseSeed+int64(i) {
			t.Errorf("run %d seed = %d", i, run.Seed)
		}
		// The convergence trace must be non-increasing once finite.
		prev := math.Inf(1)
		for _, v := range run.BestCNOByExploration {
			if !math.IsInf(v, 1) && v > prev+1e-9 {
				t.Errorf("run %d convergence trace increased: %v after %v", i, v, prev)
			}
			if !math.IsInf(v, 1) {
				prev = v
			}
		}
	}

	cnoSummary, err := res.CNOSummary()
	if err != nil {
		t.Fatalf("CNOSummary error: %v", err)
	}
	if cnoSummary.Count != 5 || cnoSummary.Mean < 1-1e-9 {
		t.Errorf("CNO summary = %+v", cnoSummary)
	}
	nexSummary, err := res.NEXSummary()
	if err != nil {
		t.Fatalf("NEXSummary error: %v", err)
	}
	if nexSummary.Min < 2 {
		t.Errorf("NEX summary = %+v", nexSummary)
	}
}

func TestEvaluateAllSharesBootstrapSeeds(t *testing.T) {
	job := fixtureJob(t)
	cfg := Config{Job: job, Runs: 3, BaseSeed: 7}
	bo, err := baselines.NewBO(baselines.BOParams{Model: bagging.Params{NumTrees: 5}})
	if err != nil {
		t.Fatalf("NewBO error: %v", err)
	}
	results, err := EvaluateAll([]optimizer.Optimizer{bo, baselines.NewRandom()}, cfg)
	if err != nil {
		t.Fatalf("EvaluateAll error: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i := range results[0].Runs {
		if results[0].Runs[i].Seed != results[1].Runs[i].Seed {
			t.Errorf("run %d seeds differ across optimizers: %d vs %d",
				i, results[0].Runs[i].Seed, results[1].Runs[i].Seed)
		}
	}
}

func TestEvaluateLynceusBeatsNothingButRuns(t *testing.T) {
	// A smoke test that the full Lynceus optimizer composes with the
	// simulator on a small space.
	job := fixtureJob(t)
	lyn, err := core.New(core.Params{Lookahead: 1, Model: bagging.Params{NumTrees: 5}, Workers: 2})
	if err != nil {
		t.Fatalf("core.New error: %v", err)
	}
	res, err := Evaluate(lyn, Config{Job: job, Runs: 2, BaseSeed: 11})
	if err != nil {
		t.Fatalf("Evaluate error: %v", err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	if res.OptimizerName != "lynceus-la1" {
		t.Errorf("optimizer name = %q", res.OptimizerName)
	}
}

func TestEvaluateWithExplicitTmaxAndBootstrap(t *testing.T) {
	job := fixtureJob(t)
	cfg := Config{Job: job, Runs: 2, MaxRuntimeSeconds: 5000, BootstrapSize: 4, BaseSeed: 3}
	res, err := Evaluate(baselines.NewRandom(), cfg)
	if err != nil {
		t.Fatalf("Evaluate error: %v", err)
	}
	if res.Tmax != 5000 {
		t.Errorf("Tmax = %v, want 5000", res.Tmax)
	}
	for _, run := range res.Runs {
		if run.Explorations < 4 {
			t.Errorf("explorations = %d, want >= bootstrap size 4", run.Explorations)
		}
	}
}

func TestConvergenceCurve(t *testing.T) {
	result := JobResult{
		Runs: []RunMetrics{
			{BestCNOByExploration: []float64{math.Inf(1), 3, 2, 1}},
			{BestCNOByExploration: []float64{4, 4}},
		},
	}
	curve, err := ConvergenceCurve(result, 50)
	if err != nil {
		t.Fatalf("ConvergenceCurve error: %v", err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve length = %d, want 4", len(curve))
	}
	// After exploration 2 (index 1): traces are {3, 4} -> median 3.5.
	if math.Abs(curve[1]-3.5) > 1e-9 {
		t.Errorf("curve[1] = %v, want 3.5", curve[1])
	}
	// After exploration 4: first run reaches 1, second stays at its final 4.
	if math.Abs(curve[3]-2.5) > 1e-9 {
		t.Errorf("curve[3] = %v, want 2.5", curve[3])
	}
	if _, err := ConvergenceCurve(JobResult{}, 50); err == nil {
		t.Error("empty result should error")
	}
}
