package simulator

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/optimizer"
	"repro/internal/stat"
)

// DefaultBudgetMultiplier is the default budget parameter b (medium budget,
// §5.2): the budget is b times the expected cost of the bootstrap phase.
const DefaultBudgetMultiplier = 3

// Config describes one evaluation campaign of a single job.
type Config struct {
	// Job is the profiled job to optimize.
	Job *dataset.Job
	// Runs is the number of independent optimization runs; the paper uses at
	// least 100. Values below 1 are rejected.
	Runs int
	// BudgetMultiplier is the b parameter: B = N·m̃·b. Zero falls back to
	// DefaultBudgetMultiplier.
	BudgetMultiplier float64
	// FeasibleFraction is the fraction of configurations that must satisfy
	// the runtime constraint; the constraint Tmax is derived from it. Zero
	// falls back to 0.5 (paper §5.2). Ignored when MaxRuntimeSeconds is set.
	FeasibleFraction float64
	// MaxRuntimeSeconds overrides the derived runtime constraint when > 0.
	MaxRuntimeSeconds float64
	// BootstrapSize overrides the paper-default initial sample count when > 0.
	BootstrapSize int
	// BaseSeed seeds the per-run seeds; run i uses BaseSeed + i so that all
	// optimizers see the same bootstrap samples in their i-th run.
	BaseSeed int64
	// ExtraConstraints adds additional constraints (multi-constraint
	// extension).
	ExtraConstraints []optimizer.Constraint
	// SetupCost charges deployment switches against the budget when non-nil.
	// Runs may execute concurrently (see Workers), so the function must be
	// safe for concurrent use.
	SetupCost optimizer.SetupCostFunc
	// Workers bounds how many of the campaign's runs execute concurrently;
	// 0 or 1 runs them serially. Every run derives its seed from BaseSeed +
	// run index and the results are collected by run index, so the campaign's
	// outcome is identical for every worker count.
	Workers int
}

func (c Config) withDefaults() (Config, error) {
	if c.Job == nil {
		return Config{}, errors.New("simulator: config requires a job")
	}
	if c.Runs < 1 {
		return Config{}, fmt.Errorf("simulator: runs must be positive, got %d", c.Runs)
	}
	if c.BudgetMultiplier == 0 {
		c.BudgetMultiplier = DefaultBudgetMultiplier
	}
	if c.BudgetMultiplier <= 0 {
		return Config{}, fmt.Errorf("simulator: budget multiplier must be positive, got %v", c.BudgetMultiplier)
	}
	if c.FeasibleFraction == 0 {
		c.FeasibleFraction = 0.5
	}
	if c.FeasibleFraction < 0 || c.FeasibleFraction > 1 {
		return Config{}, fmt.Errorf("simulator: feasible fraction %v outside (0,1]", c.FeasibleFraction)
	}
	return c, nil
}

// RunMetrics captures the outcome of a single optimization run.
type RunMetrics struct {
	// Seed is the per-run seed.
	Seed int64
	// CNO is the cost of the recommended configuration normalized by the
	// optimum's cost.
	CNO float64
	// Feasible reports whether the recommendation met the constraints.
	Feasible bool
	// Explorations is the number of configurations profiled (NEX).
	Explorations int
	// SpentBudget is the profiling money actually spent.
	SpentBudget float64
	// BestCNOByExploration[i] is the CNO of the best feasible configuration
	// found within the first i+1 explorations (+Inf until a feasible
	// configuration is found); it is the convergence trace of Figure 7.
	BestCNOByExploration []float64
}

// JobResult aggregates the runs of one optimizer on one job.
type JobResult struct {
	JobName       string
	OptimizerName string
	// Tmax is the runtime constraint used.
	Tmax float64
	// Budget is the monetary budget B of every run.
	Budget float64
	// OptimalCost is the cost of the true optimum under Tmax.
	OptimalCost float64
	// Runs holds the per-run metrics.
	Runs []RunMetrics
}

// CNOs returns the CNO of every run.
func (r JobResult) CNOs() []float64 {
	out := make([]float64, len(r.Runs))
	for i, run := range r.Runs {
		out[i] = run.CNO
	}
	return out
}

// Explorations returns the NEX of every run.
func (r JobResult) Explorations() []float64 {
	out := make([]float64, len(r.Runs))
	for i, run := range r.Runs {
		out[i] = float64(run.Explorations)
	}
	return out
}

// CNOSummary summarizes the CNO distribution.
func (r JobResult) CNOSummary() (stat.Summary, error) { return stat.Summarize(r.CNOs()) }

// NEXSummary summarizes the NEX distribution.
func (r JobResult) NEXSummary() (stat.Summary, error) { return stat.Summarize(r.Explorations()) }

// Evaluate runs one optimizer against the configured job.
func Evaluate(opt optimizer.Optimizer, cfg Config) (JobResult, error) {
	if opt == nil {
		return JobResult{}, errors.New("simulator: nil optimizer")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return JobResult{}, err
	}

	tmax := cfg.MaxRuntimeSeconds
	if tmax <= 0 {
		tmax, err = cfg.Job.RuntimeForFeasibleFraction(cfg.FeasibleFraction)
		if err != nil {
			return JobResult{}, fmt.Errorf("simulator: deriving runtime constraint: %w", err)
		}
	}
	optimum, err := cfg.Job.Optimum(tmax)
	if err != nil {
		return JobResult{}, fmt.Errorf("simulator: job %q has no feasible configuration: %w", cfg.Job.Name(), err)
	}

	env, err := optimizer.NewJobEnvironment(cfg.Job)
	if err != nil {
		return JobResult{}, err
	}
	bootstrapSize := cfg.BootstrapSize
	if bootstrapSize <= 0 {
		bootstrapSize, err = optimizer.ResolveBootstrapSize(cfg.Job.Space(), optimizer.Options{Budget: 1, MaxRuntimeSeconds: 1})
		if err != nil {
			return JobResult{}, err
		}
	}
	budget := float64(bootstrapSize) * cfg.Job.MeanCost() * cfg.BudgetMultiplier

	result := JobResult{
		JobName:       cfg.Job.Name(),
		OptimizerName: opt.Name(),
		Tmax:          tmax,
		Budget:        budget,
		OptimalCost:   optimum.Cost,
	}

	result.Runs = make([]RunMetrics, cfg.Runs)
	if err := optimizer.ParallelFor(cfg.Workers, cfg.Runs, func(run int) error {
		seed := cfg.BaseSeed + int64(run)
		opts := optimizer.Options{
			Budget:            budget,
			MaxRuntimeSeconds: tmax,
			BootstrapSize:     cfg.BootstrapSize,
			Seed:              seed,
			ExtraConstraints:  cfg.ExtraConstraints,
			SetupCost:         cfg.SetupCost,
		}
		res, err := opt.Optimize(env, opts)
		if err != nil {
			return fmt.Errorf("simulator: run %d of %s on %s: %w", run, opt.Name(), cfg.Job.Name(), err)
		}
		result.Runs[run] = RunMetrics{
			Seed:                 seed,
			CNO:                  res.Recommended.Cost / optimum.Cost,
			Feasible:             res.RecommendedFeasible,
			Explorations:         res.Explorations,
			SpentBudget:          res.SpentBudget,
			BestCNOByExploration: convergenceTrace(res, opts, optimum.Cost),
		}
		return nil
	}); err != nil {
		return JobResult{}, err
	}
	return result, nil
}

// EvaluateAll runs several optimizers on the same job configuration. Because
// every run derives its seed from BaseSeed + run index, the i-th run of every
// optimizer bootstraps from the same initial configurations, matching the
// paper's "same set of initial configurations for their own i-th run"
// methodology.
func EvaluateAll(opts []optimizer.Optimizer, cfg Config) ([]JobResult, error) {
	out := make([]JobResult, 0, len(opts))
	for _, opt := range opts {
		res, err := Evaluate(opt, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// convergenceTrace computes the best-feasible-so-far CNO after each
// exploration of a run.
func convergenceTrace(res optimizer.Result, opts optimizer.Options, optimalCost float64) []float64 {
	trace := make([]float64, len(res.Trials))
	best := math.Inf(1)
	for i, tr := range res.Trials {
		if tr.Feasible(opts.MaxRuntimeSeconds, opts.ExtraConstraints) && tr.Cost < best {
			best = tr.Cost
		}
		if math.IsInf(best, 1) {
			trace[i] = math.Inf(1)
		} else {
			trace[i] = best / optimalCost
		}
	}
	return trace
}

// ConvergenceCurve aggregates the per-run convergence traces of a JobResult
// into a percentile curve: point i is the given percentile of the best-so-far
// CNO after exploration i+1, computed across the runs that performed at least
// i+1 explorations. Runs that have already stopped contribute their final
// value, matching how Figure 7 extends each optimizer's curve to the right.
func ConvergenceCurve(result JobResult, percentile float64) ([]float64, error) {
	if len(result.Runs) == 0 {
		return nil, errors.New("simulator: no runs to aggregate")
	}
	maxLen := 0
	for _, run := range result.Runs {
		if len(run.BestCNOByExploration) > maxLen {
			maxLen = len(run.BestCNOByExploration)
		}
	}
	curve := make([]float64, maxLen)
	for i := 0; i < maxLen; i++ {
		values := make([]float64, 0, len(result.Runs))
		for _, run := range result.Runs {
			trace := run.BestCNOByExploration
			if len(trace) == 0 {
				continue
			}
			idx := i
			if idx >= len(trace) {
				idx = len(trace) - 1
			}
			v := trace[idx]
			if math.IsInf(v, 1) {
				// No feasible configuration yet: represent it with a large
				// sentinel so percentiles remain finite.
				v = math.MaxFloat64
			}
			values = append(values, v)
		}
		p, err := stat.Percentile(values, percentile)
		if err != nil {
			return nil, err
		}
		curve[i] = p
	}
	return curve, nil
}
