// Package stat provides the summary statistics used by the experiment
// pipeline: means, standard deviations, percentiles, and empirical CDFs over
// metric samples such as the cost-normalized-to-optimal (CNO) and the number
// of explorations (NEX).
package stat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptySample is returned when a statistic is requested over no data.
var ErrEmptySample = errors.New("stat: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	mean, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks, matching the convention used by
// numpy's default percentile and by the paper's reported 50th/90th/95th
// percentile figures.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	if math.IsNaN(p) || p < 0 || p > 100 {
		return 0, fmt.Errorf("stat: percentile %v outside [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary bundles the statistics the evaluation section reports for a metric.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P90    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmptySample
	}
	mean, err := Mean(xs)
	if err != nil {
		return Summary{}, err
	}
	std, err := StdDev(xs)
	if err != nil {
		return Summary{}, err
	}
	minV, err := Min(xs)
	if err != nil {
		return Summary{}, err
	}
	maxV, err := Max(xs)
	if err != nil {
		return Summary{}, err
	}
	p50, err := Percentile(xs, 50)
	if err != nil {
		return Summary{}, err
	}
	p90, err := Percentile(xs, 90)
	if err != nil {
		return Summary{}, err
	}
	p95, err := Percentile(xs, 95)
	if err != nil {
		return Summary{}, err
	}
	p99, err := Percentile(xs, 99)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Count:  len(xs),
		Mean:   mean,
		StdDev: std,
		Min:    minV,
		P50:    p50,
		P90:    p90,
		P95:    p95,
		P99:    p99,
		Max:    maxV,
	}, nil
}

// CDFPoint is one point of an empirical CDF: the fraction of samples that are
// less than or equal to Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// EmpiricalCDF returns the empirical cumulative distribution of xs as a
// sequence of (value, fraction) points sorted by value. Duplicate values are
// collapsed into a single point carrying the cumulative fraction.
func EmpiricalCDF(xs []float64) ([]CDFPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		frac := float64(i+1) / n
		if len(out) > 0 && out[len(out)-1].Value == v {
			out[len(out)-1].Fraction = frac
			continue
		}
		out = append(out, CDFPoint{Value: v, Fraction: frac})
	}
	return out, nil
}

// CDFAt evaluates an empirical CDF at value v: the fraction of the underlying
// samples that are <= v. The cdf slice must be sorted by Value, as produced
// by EmpiricalCDF.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	frac := 0.0
	for _, p := range cdf {
		if p.Value > v {
			break
		}
		frac = p.Fraction
	}
	return frac
}

// FractionAtMost returns the fraction of xs that is <= threshold.
func FractionAtMost(xs []float64, threshold float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	count := 0
	for _, x := range xs {
		if x <= threshold {
			count++
		}
	}
	return float64(count) / float64(len(xs)), nil
}
