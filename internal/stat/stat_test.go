package stat

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mean, err := Mean(xs)
	if err != nil {
		t.Fatalf("Mean error: %v", err)
	}
	if mean != 5 {
		t.Errorf("Mean = %v, want 5", mean)
	}
	variance, err := Variance(xs)
	if err != nil {
		t.Fatalf("Variance error: %v", err)
	}
	if variance != 4 {
		t.Errorf("Variance = %v, want 4", variance)
	}
	std, err := StdDev(xs)
	if err != nil {
		t.Fatalf("StdDev error: %v", err)
	}
	if std != 2 {
		t.Errorf("StdDev = %v, want 2", std)
	}
}

func TestEmptySampleErrors(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Mean(nil) error = %v, want ErrEmptySample", err)
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Variance(nil) error = %v, want ErrEmptySample", err)
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Percentile(nil) error = %v, want ErrEmptySample", err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Min(nil) error = %v, want ErrEmptySample", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Max(nil) error = %v, want ErrEmptySample", err)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Summarize(nil) error = %v, want ErrEmptySample", err)
	}
	if _, err := EmpiricalCDF(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("EmpiricalCDF(nil) error = %v, want ErrEmptySample", err)
	}
	if _, err := FractionAtMost(nil, 1); !errors.Is(err, ErrEmptySample) {
		t.Errorf("FractionAtMost(nil) error = %v, want ErrEmptySample", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	minV, err := Min(xs)
	if err != nil || minV != -1 {
		t.Errorf("Min = %v, %v, want -1, nil", minV, err)
	}
	maxV, err := Max(xs)
	if err != nil || maxV != 7 {
		t.Errorf("Max = %v, %v, want 7, nil", maxV, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		name string
		p    float64
		want float64
	}{
		{name: "min", p: 0, want: 1},
		{name: "median", p: 50, want: 5.5},
		{name: "90th", p: 90, want: 9.1},
		{name: "max", p: 100, want: 10},
		{name: "25th", p: 25, want: 3.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Percentile(xs, tt.p)
			if err != nil {
				t.Fatalf("Percentile error: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestPercentileSingleElementAndInvalidP(t *testing.T) {
	got, err := Percentile([]float64{42}, 73)
	if err != nil || got != 42 {
		t.Errorf("Percentile single element = %v, %v, want 42, nil", got, err)
	}
	for _, p := range []float64{-1, 101, math.NaN()} {
		if _, err := Percentile([]float64{1, 2}, p); err == nil {
			t.Errorf("Percentile(%v) expected error", p)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	if _, err := Percentile(xs, 90); err != nil {
		t.Fatalf("Percentile error: %v", err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("Percentile mutated its input at %d: %v vs %v", i, xs, orig)
		}
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 0, 100)
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatalf("Summarize error: %v", err)
	}
	if s.Count != 100 {
		t.Errorf("Count = %d, want 100", s.Count)
	}
	if s.Mean != 50.5 {
		t.Errorf("Mean = %v, want 50.5", s.Mean)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("Min/Max = %v/%v, want 1/100", s.Min, s.Max)
	}
	if math.Abs(s.P50-50.5) > 1e-9 {
		t.Errorf("P50 = %v, want 50.5", s.P50)
	}
	if math.Abs(s.P90-90.1) > 1e-9 {
		t.Errorf("P90 = %v, want 90.1", s.P90)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	xs := []float64{3, 1, 2, 2, 5}
	cdf, err := EmpiricalCDF(xs)
	if err != nil {
		t.Fatalf("EmpiricalCDF error: %v", err)
	}
	wantValues := []float64{1, 2, 3, 5}
	wantFracs := []float64{0.2, 0.6, 0.8, 1.0}
	if len(cdf) != len(wantValues) {
		t.Fatalf("EmpiricalCDF returned %d points, want %d", len(cdf), len(wantValues))
	}
	for i := range cdf {
		if cdf[i].Value != wantValues[i] {
			t.Errorf("point %d value = %v, want %v", i, cdf[i].Value, wantValues[i])
		}
		if math.Abs(cdf[i].Fraction-wantFracs[i]) > 1e-12 {
			t.Errorf("point %d fraction = %v, want %v", i, cdf[i].Fraction, wantFracs[i])
		}
	}
}

func TestCDFAt(t *testing.T) {
	cdf := []CDFPoint{{Value: 1, Fraction: 0.25}, {Value: 2, Fraction: 0.75}, {Value: 4, Fraction: 1}}
	tests := []struct {
		v    float64
		want float64
	}{
		{v: 0.5, want: 0},
		{v: 1, want: 0.25},
		{v: 1.5, want: 0.25},
		{v: 3, want: 0.75},
		{v: 10, want: 1},
	}
	for _, tt := range tests {
		if got := CDFAt(cdf, tt.v); got != tt.want {
			t.Errorf("CDFAt(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestFractionAtMost(t *testing.T) {
	xs := []float64{1, 1, 2, 3, 10}
	got, err := FractionAtMost(xs, 2)
	if err != nil {
		t.Fatalf("FractionAtMost error: %v", err)
	}
	if got != 0.6 {
		t.Errorf("FractionAtMost = %v, want 0.6", got)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	property := func(seed int64, pRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		p := math.Abs(math.Mod(pRaw, 100))
		got, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		minV, _ := Min(xs)
		maxV, _ := Max(xs)
		return got >= minV-1e-9 && got <= maxV+1e-9
	}
	if err := quick.Check(property, nil); err != nil {
		t.Errorf("percentile out of sample range: %v", err)
	}
}

func TestQuickEmpiricalCDFMonotone(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 50
		}
		cdf, err := EmpiricalCDF(xs)
		if err != nil {
			return false
		}
		if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Value < cdf[j].Value }) {
			return false
		}
		prev := 0.0
		for _, p := range cdf {
			if p.Fraction < prev || p.Fraction > 1+1e-12 {
				return false
			}
			prev = p.Fraction
		}
		return math.Abs(cdf[len(cdf)-1].Fraction-1) < 1e-12
	}
	if err := quick.Check(property, nil); err != nil {
		t.Errorf("empirical CDF not monotone: %v", err)
	}
}
