package baselines

import (
	"errors"
	"math/rand"

	"repro/internal/optimizer"
)

// Random is the RND baseline of the evaluation (§5.2): it profiles as many
// configurations as possible given the budget, picking them uniformly at
// random, and finally recommends the best configuration it tried. It
// establishes a floor on the complexity of the optimization task.
type Random struct{}

// NewRandom creates the RND baseline.
func NewRandom() *Random { return &Random{} }

// Name implements optimizer.Optimizer.
func (r *Random) Name() string { return "rnd" }

// Optimize implements optimizer.Optimizer. While budget remains, RND draws an
// untested configuration uniformly at random and profiles it; it stops when
// the budget is depleted or the whole space has been profiled. The last run
// may overshoot the budget slightly, since a black-box optimizer only learns
// the cost of a configuration by running it.
func (r *Random) Optimize(env optimizer.Environment, opts optimizer.Options) (optimizer.Result, error) {
	if env == nil {
		return optimizer.Result{}, errors.New("baselines: nil environment")
	}
	if err := opts.Validate(); err != nil {
		return optimizer.Result{}, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	budget, err := optimizer.NewBudget(opts.Budget)
	if err != nil {
		return optimizer.Result{}, err
	}
	history := optimizer.NewHistory()
	bootstrapSize, err := optimizer.ResolveBootstrapSize(env.Space(), opts)
	if err != nil {
		return optimizer.Result{}, err
	}
	if err := optimizer.Bootstrap(env, bootstrapSize, rng, history, budget, opts); err != nil {
		return optimizer.Result{}, err
	}

	space := env.Space()
	for budget.Remaining() > 0 {
		untested := history.UntestedIDs(space)
		if len(untested) == 0 {
			break
		}
		cfg, err := space.Config(untested[rng.Intn(len(untested))])
		if err != nil {
			return optimizer.Result{}, err
		}
		if _, err := optimizer.RunTrial(env, cfg, history, budget, opts.SetupCost); err != nil {
			return optimizer.Result{}, err
		}
	}
	return optimizer.BuildResult(r.Name(), history, budget, opts)
}
