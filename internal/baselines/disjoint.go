package baselines

import (
	"fmt"

	"repro/internal/dataset"
)

// DisjointResult is the outcome of one idealized disjoint optimization run:
// starting from the reference cloud configuration identified by
// ReferenceKey, the two-phase optimization selected FinalConfigID with cost
// FinalCost.
type DisjointResult struct {
	ReferenceKey  string
	FinalConfigID int
	FinalCost     float64
	// CNO is the final cost normalized by the cost of the true optimum.
	CNO float64
}

// Disjoint performs the idealized disjoint optimization of Figure 1b on a
// profiled job: for every possible reference cloud configuration c†, it
// (i) finds the best job parameters on c† and then (ii) finds the best cloud
// configuration for those parameters. Both phases are assumed perfect (they
// pick the true best within their slice), so the results upper-bound what a
// real disjoint optimizer could achieve.
//
// cloudDims lists the indices of the dimensions that describe the cloud
// configuration (e.g. VM type and cluster size); the remaining dimensions are
// treated as job parameters. maxRuntimeSeconds is the runtime constraint.
func Disjoint(job *dataset.Job, cloudDims []int, maxRuntimeSeconds float64) ([]DisjointResult, error) {
	if job == nil {
		return nil, fmt.Errorf("baselines: nil job")
	}
	space := job.Space()
	if len(cloudDims) == 0 || len(cloudDims) >= space.NumDimensions() {
		return nil, fmt.Errorf("baselines: disjoint optimization needs a strict, non-empty subset of dimensions as cloud dimensions (got %d of %d)",
			len(cloudDims), space.NumDimensions())
	}
	isCloudDim := make(map[int]bool, len(cloudDims))
	for _, d := range cloudDims {
		if d < 0 || d >= space.NumDimensions() {
			return nil, fmt.Errorf("baselines: cloud dimension %d out of range", d)
		}
		if isCloudDim[d] {
			return nil, fmt.Errorf("baselines: duplicate cloud dimension %d", d)
		}
		isCloudDim[d] = true
	}

	optimum, err := job.Optimum(maxRuntimeSeconds)
	if err != nil {
		return nil, fmt.Errorf("baselines: disjoint optimization: %w", err)
	}

	// Key helpers: project a configuration onto its cloud part or its
	// parameter part.
	configs := space.Configs()
	cloudKey := func(indices []int) string {
		key := ""
		for _, d := range cloudDims {
			key += fmt.Sprintf("%d,", indices[d])
		}
		return key
	}
	paramKey := func(indices []int) string {
		key := ""
		for d := range indices {
			if !isCloudDim[d] {
				key += fmt.Sprintf("%d,", indices[d])
			}
		}
		return key
	}

	// Enumerate the distinct cloud settings in a stable order.
	cloudKeys := make([]string, 0)
	seen := make(map[string]bool)
	for _, cfg := range configs {
		k := cloudKey(cfg.Indices)
		if !seen[k] {
			seen[k] = true
			cloudKeys = append(cloudKeys, k)
		}
	}

	results := make([]DisjointResult, 0, len(cloudKeys))
	for _, ref := range cloudKeys {
		// Phase 1: best feasible parameters on the reference cloud setting.
		bestParamCost := 0.0
		bestParam := ""
		foundParam := false
		for _, cfg := range configs {
			if cloudKey(cfg.Indices) != ref {
				continue
			}
			feasible, err := job.Feasible(cfg.ID, maxRuntimeSeconds)
			if err != nil {
				return nil, err
			}
			if !feasible {
				continue
			}
			m, err := job.Measurement(cfg.ID)
			if err != nil {
				return nil, err
			}
			if !foundParam || m.Cost < bestParamCost {
				bestParamCost = m.Cost
				bestParam = paramKey(cfg.Indices)
				foundParam = true
			}
		}
		if !foundParam {
			// No feasible configuration on this reference cloud setting: the
			// disjoint optimization cannot even complete its first phase.
			continue
		}

		// Phase 2: best feasible cloud setting for the chosen parameters.
		bestCost := 0.0
		bestID := -1
		for _, cfg := range configs {
			if paramKey(cfg.Indices) != bestParam {
				continue
			}
			feasible, err := job.Feasible(cfg.ID, maxRuntimeSeconds)
			if err != nil {
				return nil, err
			}
			if !feasible {
				continue
			}
			m, err := job.Measurement(cfg.ID)
			if err != nil {
				return nil, err
			}
			if bestID < 0 || m.Cost < bestCost {
				bestCost = m.Cost
				bestID = cfg.ID
			}
		}
		if bestID < 0 {
			continue
		}
		results = append(results, DisjointResult{
			ReferenceKey:  ref,
			FinalConfigID: bestID,
			FinalCost:     bestCost,
			CNO:           bestCost / optimum.Cost,
		})
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("baselines: disjoint optimization found no feasible reference configuration")
	}
	return results, nil
}
