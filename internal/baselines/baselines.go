package baselines

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/acquisition"
	"repro/internal/bagging"
	"repro/internal/configspace"
	"repro/internal/numeric"
	"repro/internal/optimizer"
)

// DefaultEligibilityProb is the confidence with which a configuration's
// predicted cost must fit the remaining budget to stay selectable. It matches
// Lynceus' budget filter so that every optimizer stops under the same
// condition and differences in the results come from the selection policy
// alone.
const DefaultEligibilityProb = 0.99

// BOParams configures the BO baseline.
type BOParams struct {
	// Model configures the bagging ensemble used as the cost model; the
	// evaluation uses the same 10-tree ensemble as Lynceus (§5.2).
	Model bagging.Params
	// EligibilityProb overrides DefaultEligibilityProb when non-zero.
	EligibilityProb float64
	// CostNormalized selects the "LA=0"-style myopic cost-aware variant,
	// which divides the acquisition value by the predicted profiling cost.
	CostNormalized bool
}

func (p BOParams) withDefaults() BOParams {
	if p.EligibilityProb == 0 {
		p.EligibilityProb = DefaultEligibilityProb
	}
	return p
}

// BO is the traditional greedy constrained-EI Bayesian optimizer used by
// CherryPick and Arrow: at every iteration it profiles the untested
// configuration that maximizes EIc, with no lookahead and (unless
// CostNormalized is set) no cost awareness in the acquisition function.
type BO struct {
	params BOParams
}

// NewBO creates a BO baseline optimizer.
func NewBO(params BOParams) (*BO, error) {
	normalized := params.withDefaults()
	if normalized.EligibilityProb <= 0 || normalized.EligibilityProb > 1 {
		return nil, fmt.Errorf("baselines: eligibility probability %v outside (0,1]", normalized.EligibilityProb)
	}
	return &BO{params: normalized}, nil
}

// Name implements optimizer.Optimizer.
func (b *BO) Name() string {
	if b.params.CostNormalized {
		return "bo-cost-normalized"
	}
	return "bo"
}

// boModels bundles the cost model with one model per extra constraint metric,
// plus the per-block scratch of the candidate sweep: after each fit, every
// model predicts the space block by block (configspace.Block views), so no
// full-space prediction array or monolithic feature matrix is ever
// materialized — the sweep works identically on materialized and streaming
// spaces.
type boModels struct {
	cost       *bagging.Ensemble
	extraNames []string
	extras     []*bagging.Ensemble
	extraMax   []float64

	// Per-block prediction buffers, reused across blocks and refits.
	costBuf  []numeric.Gaussian
	extraBuf [][]numeric.Gaussian
}

func newBOModels(params bagging.Params, opts optimizer.Options) *boModels {
	names := make([]string, 0, len(opts.ExtraConstraints))
	for _, c := range opts.ExtraConstraints {
		names = append(names, c.Metric)
	}
	sort.Strings(names)
	maxima := make([]float64, len(names))
	for i, name := range names {
		for _, c := range opts.ExtraConstraints {
			if c.Metric == name {
				maxima[i] = c.Max
			}
		}
	}
	m := &boModels{
		cost:       bagging.New(params, opts.Seed),
		extraNames: names,
		extraMax:   maxima,
	}
	m.extras = make([]*bagging.Ensemble, len(names))
	m.extraBuf = make([][]numeric.Gaussian, len(names))
	for i := range names {
		m.extras[i] = bagging.New(params, opts.Seed+int64(i+1)*1_000_003)
	}
	return m
}

// fit trains every model on the history.
func (m *boModels) fit(h *optimizer.History) error {
	features := h.Features()
	if err := m.cost.Fit(features, h.Costs()); err != nil {
		return fmt.Errorf("baselines: fitting cost model: %w", err)
	}
	for i, name := range m.extraNames {
		if err := m.extras[i].Fit(features, h.ExtraMetric(name)); err != nil {
			return fmt.Errorf("baselines: fitting constraint model %q: %w", name, err)
		}
	}
	return nil
}

// boCandidate is one untested configuration surviving the budget-eligibility
// filter of a sweep, with its per-model predictive distributions.
type boCandidate struct {
	id       int
	costPred numeric.Gaussian
	extras   []numeric.Gaussian
}

// sweep predicts the whole space block by block and returns the eligible
// untested candidates (in increasing ID order) together with the largest
// predictive standard deviation over all untested configurations (the
// incumbent-fallback input). Gaussians from the block path are bitwise
// identical to full-matrix and scalar sweeps, so the selection matches the
// pre-block-sweep baseline exactly.
func (m *boModels) sweep(space *configspace.Space, h *optimizer.History, remainingBudget, eligibilityProb float64) ([]boCandidate, float64, error) {
	eligible := make([]boCandidate, 0, 64)
	maxStd := 0.0
	err := space.ForEachBlock(0, func(blk configspace.Block) error {
		n := blk.Len()
		if cap(m.costBuf) < n {
			m.costBuf = make([]numeric.Gaussian, n)
		}
		costs := m.costBuf[:n]
		if err := m.cost.PredictBatch(blk.Cols, costs); err != nil {
			return fmt.Errorf("baselines: sweeping cost model: %w", err)
		}
		for k := range m.extras {
			if cap(m.extraBuf[k]) < n {
				m.extraBuf[k] = make([]numeric.Gaussian, n)
			}
			if err := m.extras[k].PredictBatch(blk.Cols, m.extraBuf[k][:n]); err != nil {
				return fmt.Errorf("baselines: sweeping constraint model %q: %w", m.extraNames[k], err)
			}
		}
		for i := 0; i < n; i++ {
			id := blk.Start + i
			if h.Excluded(id) {
				continue
			}
			costPred := costs[i]
			if costPred.StdDev > maxStd {
				maxStd = costPred.StdDev
			}
			if costPred.ProbLE(remainingBudget) < eligibilityProb {
				continue
			}
			cand := boCandidate{id: id, costPred: costPred}
			if len(m.extras) > 0 {
				cand.extras = make([]numeric.Gaussian, len(m.extras))
				for k := range m.extras {
					cand.extras[k] = m.extraBuf[k][i]
				}
			}
			eligible = append(eligible, cand)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return eligible, maxStd, nil
}

// Optimize implements optimizer.Optimizer.
func (b *BO) Optimize(env optimizer.Environment, opts optimizer.Options) (optimizer.Result, error) {
	if env == nil {
		return optimizer.Result{}, errors.New("baselines: nil environment")
	}
	if err := opts.Validate(); err != nil {
		return optimizer.Result{}, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	budget, err := optimizer.NewBudget(opts.Budget)
	if err != nil {
		return optimizer.Result{}, err
	}
	history := optimizer.NewHistory()
	bootstrapSize, err := optimizer.ResolveBootstrapSize(env.Space(), opts)
	if err != nil {
		return optimizer.Result{}, err
	}
	if err := optimizer.Bootstrap(env, bootstrapSize, rng, history, budget, opts); err != nil {
		return optimizer.Result{}, err
	}

	space := env.Space()
	prices := optimizer.NewPriceCache(env)
	models := newBOModels(b.params.Model, opts)

	for {
		nextID, ok, err := b.nextConfig(space, history, models, prices, budget.Remaining(), opts)
		if err != nil {
			return optimizer.Result{}, err
		}
		if !ok {
			break
		}
		cfg, err := space.Config(nextID)
		if err != nil {
			return optimizer.Result{}, err
		}
		if _, err := optimizer.RunTrial(env, cfg, history, budget, opts.SetupCost); err != nil {
			return optimizer.Result{}, err
		}
	}
	return optimizer.BuildResult(b.Name(), history, budget, opts)
}

// nextConfig selects the untested configuration with the highest acquisition
// value among those whose predicted cost fits the remaining budget. The
// candidate predictions come from a block-wise sweep of the space, so the
// baseline runs unchanged on streaming spaces.
func (b *BO) nextConfig(space *configspace.Space, h *optimizer.History, models *boModels, prices *optimizer.PriceCache, remainingBudget float64, opts optimizer.Options) (int, bool, error) {
	if space.Size()-h.ExcludedCount() <= 0 {
		return 0, false, nil
	}
	if err := models.fit(h); err != nil {
		return 0, false, err
	}

	eligible, maxStd, err := models.sweep(space, h, remainingBudget, b.params.EligibilityProb)
	if err != nil {
		return 0, false, err
	}
	if len(eligible) == 0 {
		return 0, false, nil
	}

	best := incumbent(h, opts, maxStd)
	scores := make([]acquisition.Score, 0, len(eligible))
	for _, cand := range eligible {
		costPred := cand.costPred
		ei := acquisition.ExpectedImprovement(costPred, best)
		probs := make([]float64, 0, 1+len(models.extras))
		price, err := prices.UnitPrice(cand.id)
		if err != nil {
			return 0, false, err
		}
		runtimeProb, err := acquisition.ConstraintProbability(costPred, opts.MaxRuntimeSeconds, price/3600)
		if err != nil {
			return 0, false, err
		}
		probs = append(probs, runtimeProb)
		for i := range models.extras {
			probs = append(probs, clampProb(cand.extras[i].ProbLE(models.extraMax[i])))
		}
		eic, err := acquisition.Constrained(ei, probs...)
		if err != nil {
			return 0, false, err
		}
		scores = append(scores, acquisition.Score{
			ConfigID:     cand.id,
			Pred:         costPred,
			EI:           ei,
			ProbFeasible: runtimeProb,
			EIc:          eic,
		})
	}

	var idx int
	if b.params.CostNormalized {
		idx, err = acquisition.ArgMaxRatio(scores)
	} else {
		idx, err = acquisition.ArgMaxEIc(scores)
	}
	if err != nil {
		return 0, false, err
	}
	return scores[idx].ConfigID, true, nil
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// incumbent returns the EI reference value y*: the cheapest feasible profiled
// cost, or the paper's fallback when no profiled configuration is feasible.
func incumbent(h *optimizer.History, opts optimizer.Options, maxPredStd float64) float64 {
	best, ok := h.BestFeasible(opts.MaxRuntimeSeconds, opts.ExtraConstraints)
	if ok {
		return best.Cost
	}
	return acquisition.IncumbentFallback(h.MaxCost(), maxPredStd)
}
