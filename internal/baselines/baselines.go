package baselines

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/acquisition"
	"repro/internal/bagging"
	"repro/internal/configspace"
	"repro/internal/numeric"
	"repro/internal/optimizer"
)

// DefaultEligibilityProb is the confidence with which a configuration's
// predicted cost must fit the remaining budget to stay selectable. It matches
// Lynceus' budget filter so that every optimizer stops under the same
// condition and differences in the results come from the selection policy
// alone.
const DefaultEligibilityProb = 0.99

// BOParams configures the BO baseline.
type BOParams struct {
	// Model configures the bagging ensemble used as the cost model; the
	// evaluation uses the same 10-tree ensemble as Lynceus (§5.2).
	Model bagging.Params
	// EligibilityProb overrides DefaultEligibilityProb when non-zero.
	EligibilityProb float64
	// CostNormalized selects the "LA=0"-style myopic cost-aware variant,
	// which divides the acquisition value by the predicted profiling cost.
	CostNormalized bool
}

func (p BOParams) withDefaults() BOParams {
	if p.EligibilityProb == 0 {
		p.EligibilityProb = DefaultEligibilityProb
	}
	return p
}

// BO is the traditional greedy constrained-EI Bayesian optimizer used by
// CherryPick and Arrow: at every iteration it profiles the untested
// configuration that maximizes EIc, with no lookahead and (unless
// CostNormalized is set) no cost awareness in the acquisition function.
type BO struct {
	params BOParams
}

// NewBO creates a BO baseline optimizer.
func NewBO(params BOParams) (*BO, error) {
	normalized := params.withDefaults()
	if normalized.EligibilityProb <= 0 || normalized.EligibilityProb > 1 {
		return nil, fmt.Errorf("baselines: eligibility probability %v outside (0,1]", normalized.EligibilityProb)
	}
	return &BO{params: normalized}, nil
}

// Name implements optimizer.Optimizer.
func (b *BO) Name() string {
	if b.params.CostNormalized {
		return "bo-cost-normalized"
	}
	return "bo"
}

// boModels bundles the cost model with one model per extra constraint metric,
// plus the scratch of the full-space batch prediction sweep: after each fit,
// every model predicts the whole space in one PredictBatch call over the
// space's column-major feature matrix, and candidate scoring reads the
// resulting Gaussians by configuration ID.
type boModels struct {
	cost       *bagging.Ensemble
	extraNames []string
	extras     []*bagging.Ensemble
	extraMax   []float64

	cols       [][]float64          // space's column-major feature matrix (read-only)
	costPreds  []numeric.Gaussian   // costPreds[id]: cost prediction of config id
	extraPreds [][]numeric.Gaussian // extraPreds[k][id]: k-th constraint metric
}

func newBOModels(params bagging.Params, space *configspace.Space, opts optimizer.Options) *boModels {
	names := make([]string, 0, len(opts.ExtraConstraints))
	for _, c := range opts.ExtraConstraints {
		names = append(names, c.Metric)
	}
	sort.Strings(names)
	maxima := make([]float64, len(names))
	for i, name := range names {
		for _, c := range opts.ExtraConstraints {
			if c.Metric == name {
				maxima[i] = c.Max
			}
		}
	}
	m := &boModels{
		cost:       bagging.New(params, opts.Seed),
		extraNames: names,
		extraMax:   maxima,
		cols:       space.FeatureColumns(),
		costPreds:  make([]numeric.Gaussian, space.Size()),
	}
	m.extras = make([]*bagging.Ensemble, len(names))
	m.extraPreds = make([][]numeric.Gaussian, len(names))
	for i := range names {
		m.extras[i] = bagging.New(params, opts.Seed+int64(i+1)*1_000_003)
		m.extraPreds[i] = make([]numeric.Gaussian, space.Size())
	}
	return m
}

// fit trains every model on the history and refreshes the full-space
// prediction sweep: one batch prediction per model over the whole space.
func (m *boModels) fit(h *optimizer.History) error {
	features := h.Features()
	if err := m.cost.Fit(features, h.Costs()); err != nil {
		return fmt.Errorf("baselines: fitting cost model: %w", err)
	}
	if err := m.cost.PredictBatch(m.cols, m.costPreds); err != nil {
		return fmt.Errorf("baselines: sweeping cost model: %w", err)
	}
	for i, name := range m.extraNames {
		if err := m.extras[i].Fit(features, h.ExtraMetric(name)); err != nil {
			return fmt.Errorf("baselines: fitting constraint model %q: %w", name, err)
		}
		if err := m.extras[i].PredictBatch(m.cols, m.extraPreds[i]); err != nil {
			return fmt.Errorf("baselines: sweeping constraint model %q: %w", name, err)
		}
	}
	return nil
}

// Optimize implements optimizer.Optimizer.
func (b *BO) Optimize(env optimizer.Environment, opts optimizer.Options) (optimizer.Result, error) {
	if env == nil {
		return optimizer.Result{}, errors.New("baselines: nil environment")
	}
	if err := opts.Validate(); err != nil {
		return optimizer.Result{}, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	budget, err := optimizer.NewBudget(opts.Budget)
	if err != nil {
		return optimizer.Result{}, err
	}
	history := optimizer.NewHistory()
	bootstrapSize, err := optimizer.ResolveBootstrapSize(env.Space(), opts)
	if err != nil {
		return optimizer.Result{}, err
	}
	if err := optimizer.Bootstrap(env, bootstrapSize, rng, history, budget, opts.SetupCost); err != nil {
		return optimizer.Result{}, err
	}

	space := env.Space()
	unitPrices := make([]float64, space.Size())
	for _, cfg := range space.Configs() {
		price, err := env.UnitPricePerHour(cfg)
		if err != nil {
			return optimizer.Result{}, err
		}
		unitPrices[cfg.ID] = price
	}
	models := newBOModels(b.params.Model, space, opts)

	for {
		nextID, ok, err := b.nextConfig(space, history, models, unitPrices, budget.Remaining(), opts)
		if err != nil {
			return optimizer.Result{}, err
		}
		if !ok {
			break
		}
		cfg, err := space.Config(nextID)
		if err != nil {
			return optimizer.Result{}, err
		}
		if _, err := optimizer.RunTrial(env, cfg, history, budget, opts.SetupCost); err != nil {
			return optimizer.Result{}, err
		}
	}
	return optimizer.BuildResult(b.Name(), history, budget, opts)
}

// nextConfig selects the untested configuration with the highest acquisition
// value among those whose predicted cost fits the remaining budget.
func (b *BO) nextConfig(space *configspace.Space, h *optimizer.History, models *boModels, unitPrices []float64, remainingBudget float64, opts optimizer.Options) (int, bool, error) {
	untested := h.Untested(space)
	if len(untested) == 0 {
		return 0, false, nil
	}
	if err := models.fit(h); err != nil {
		return 0, false, err
	}

	// The models were swept over the whole space at fit time; candidate
	// scoring is pure memo reads indexed by configuration ID.
	eligible := make([]configspace.Config, 0, len(untested))
	maxStd := 0.0
	for _, cfg := range untested {
		costPred := models.costPreds[cfg.ID]
		if costPred.StdDev > maxStd {
			maxStd = costPred.StdDev
		}
		if costPred.ProbLE(remainingBudget) < b.params.EligibilityProb {
			continue
		}
		eligible = append(eligible, cfg)
	}
	if len(eligible) == 0 {
		return 0, false, nil
	}

	best := incumbent(h, opts, maxStd)
	scores := make([]acquisition.Score, 0, len(eligible))
	for _, cfg := range eligible {
		costPred := models.costPreds[cfg.ID]
		ei := acquisition.ExpectedImprovement(costPred, best)
		probs := make([]float64, 0, 1+len(models.extras))
		runtimeProb, err := acquisition.ConstraintProbability(costPred, opts.MaxRuntimeSeconds, unitPrices[cfg.ID]/3600)
		if err != nil {
			return 0, false, err
		}
		probs = append(probs, runtimeProb)
		for i := range models.extras {
			probs = append(probs, clampProb(models.extraPreds[i][cfg.ID].ProbLE(models.extraMax[i])))
		}
		eic, err := acquisition.Constrained(ei, probs...)
		if err != nil {
			return 0, false, err
		}
		scores = append(scores, acquisition.Score{
			ConfigID:     cfg.ID,
			Pred:         costPred,
			EI:           ei,
			ProbFeasible: runtimeProb,
			EIc:          eic,
		})
	}

	var idx int
	var err error
	if b.params.CostNormalized {
		idx, err = acquisition.ArgMaxRatio(scores)
	} else {
		idx, err = acquisition.ArgMaxEIc(scores)
	}
	if err != nil {
		return 0, false, err
	}
	return scores[idx].ConfigID, true, nil
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// incumbent returns the EI reference value y*: the cheapest feasible profiled
// cost, or the paper's fallback when no profiled configuration is feasible.
func incumbent(h *optimizer.History, opts optimizer.Options, maxPredStd float64) float64 {
	best, ok := h.BestFeasible(opts.MaxRuntimeSeconds, opts.ExtraConstraints)
	if ok {
		return best.Cost
	}
	return acquisition.IncumbentFallback(h.MaxCost(), maxPredStd)
}
