package baselines

import (
	"math"
	"testing"

	"repro/internal/bagging"
	"repro/internal/configspace"
	"repro/internal/dataset"
	"repro/internal/optimizer"
)

// fixtureJob builds the same 4x4 job used by the core tests: parameter 1 is
// best, cost is minimized at a medium cluster.
func fixtureJob(t *testing.T) *dataset.Job {
	t.Helper()
	space, err := configspace.New([]configspace.Dimension{
		{Name: "param", Values: []float64{0, 1, 2, 3}},
		{Name: "cluster", Values: []float64{1, 2, 4, 8}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	measurements := make([]dataset.Measurement, space.Size())
	for _, cfg := range space.Configs() {
		param := cfg.Features[0]
		cluster := cfg.Features[1]
		paramFactor := 1.0 + 2.5*math.Abs(param-1)
		runtime := 2400 * paramFactor / math.Pow(cluster, 0.8)
		price := 0.2 * cluster
		measurements[cfg.ID] = dataset.Measurement{
			ConfigID:         cfg.ID,
			RuntimeSeconds:   runtime,
			UnitPricePerHour: price,
			Cost:             runtime / 3600 * price,
			Extra:            map[string]float64{"energy": runtime * cluster / 100},
		}
	}
	job, err := dataset.NewJob("baseline-fixture", space, measurements, 0)
	if err != nil {
		t.Fatalf("NewJob error: %v", err)
	}
	return job
}

func fixtureEnv(t *testing.T) *optimizer.JobEnvironment {
	t.Helper()
	env, err := optimizer.NewJobEnvironment(fixtureJob(t))
	if err != nil {
		t.Fatalf("NewJobEnvironment error: %v", err)
	}
	return env
}

func fixtureOptions(t *testing.T, seed int64) optimizer.Options {
	t.Helper()
	job := fixtureJob(t)
	tmax, err := job.RuntimeForFeasibleFraction(0.6)
	if err != nil {
		t.Fatalf("RuntimeForFeasibleFraction error: %v", err)
	}
	return optimizer.Options{
		Budget:            10 * job.MeanCost(),
		MaxRuntimeSeconds: tmax,
		Seed:              seed,
	}
}

func TestNewBOValidation(t *testing.T) {
	if _, err := NewBO(BOParams{EligibilityProb: 1.5}); err == nil {
		t.Error("invalid eligibility probability should error")
	}
	b, err := NewBO(BOParams{})
	if err != nil {
		t.Fatalf("NewBO error: %v", err)
	}
	if b.Name() != "bo" {
		t.Errorf("Name = %q", b.Name())
	}
	cn, err := NewBO(BOParams{CostNormalized: true})
	if err != nil {
		t.Fatalf("NewBO error: %v", err)
	}
	if cn.Name() != "bo-cost-normalized" {
		t.Errorf("Name = %q", cn.Name())
	}
}

func TestBOOptimize(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 11)
	optimum, err := env.Job().Optimum(opts.MaxRuntimeSeconds)
	if err != nil {
		t.Fatalf("Optimum error: %v", err)
	}
	b, err := NewBO(BOParams{Model: bagging.Params{NumTrees: 6}})
	if err != nil {
		t.Fatalf("NewBO error: %v", err)
	}
	res, err := b.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if !res.RecommendedFeasible {
		t.Error("recommendation not feasible")
	}
	if cno := res.Recommended.Cost / optimum.Cost; cno > 3 {
		t.Errorf("CNO = %v, want <= 3 on this easy fixture", cno)
	}
	if res.Explorations < 2 || res.Explorations != len(res.Trials) {
		t.Errorf("explorations = %d, trials = %d", res.Explorations, len(res.Trials))
	}
	if res.OptimizerName != "bo" {
		t.Errorf("name = %q", res.OptimizerName)
	}
}

func TestBOOptimizeValidatesInput(t *testing.T) {
	b, err := NewBO(BOParams{})
	if err != nil {
		t.Fatalf("NewBO error: %v", err)
	}
	if _, err := b.Optimize(nil, fixtureOptions(t, 1)); err == nil {
		t.Error("nil environment should error")
	}
	if _, err := b.Optimize(fixtureEnv(t), optimizer.Options{}); err == nil {
		t.Error("invalid options should error")
	}
}

func TestBOIsDeterministic(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 17)
	b, err := NewBO(BOParams{Model: bagging.Params{NumTrees: 6}})
	if err != nil {
		t.Fatalf("NewBO error: %v", err)
	}
	a, err := b.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	c, err := b.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if len(a.Trials) != len(c.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(c.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != c.Trials[i].Config.ID {
			t.Fatalf("trial %d differs", i)
		}
	}
}

func TestBOCostNormalizedVariant(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 23)
	cn, err := NewBO(BOParams{Model: bagging.Params{NumTrees: 6}, CostNormalized: true})
	if err != nil {
		t.Fatalf("NewBO error: %v", err)
	}
	res, err := cn.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if res.OptimizerName != "bo-cost-normalized" {
		t.Errorf("name = %q", res.OptimizerName)
	}
	if res.Explorations < 2 {
		t.Errorf("explorations = %d", res.Explorations)
	}
}

func TestBOWithExtraConstraint(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 29)
	opts.ExtraConstraints = []optimizer.Constraint{{Metric: "energy", Max: 40}}
	b, err := NewBO(BOParams{Model: bagging.Params{NumTrees: 6}})
	if err != nil {
		t.Fatalf("NewBO error: %v", err)
	}
	res, err := b.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if res.RecommendedFeasible && res.Recommended.Extra["energy"] > 40 {
		t.Errorf("recommendation violates the energy constraint: %v", res.Recommended.Extra["energy"])
	}
}

func TestRandomOptimize(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 31)
	r := NewRandom()
	if r.Name() != "rnd" {
		t.Errorf("Name = %q", r.Name())
	}
	res, err := r.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if res.Explorations < 2 {
		t.Errorf("explorations = %d", res.Explorations)
	}
	// RND stops only when the budget is depleted or the space is exhausted.
	if res.SpentBudget < res.InitialBudget && res.Explorations < env.Space().Size() {
		t.Errorf("RND stopped early: spent %v of %v after %d explorations",
			res.SpentBudget, res.InitialBudget, res.Explorations)
	}
	// The recommendation is the best feasible configuration among the trials.
	bestCost := math.Inf(1)
	for _, tr := range res.Trials {
		if tr.Feasible(opts.MaxRuntimeSeconds, nil) && tr.Cost < bestCost {
			bestCost = tr.Cost
		}
	}
	if res.RecommendedFeasible && res.Recommended.Cost != bestCost {
		t.Errorf("recommendation cost %v != best tried feasible cost %v", res.Recommended.Cost, bestCost)
	}
}

func TestRandomOptimizeValidatesInput(t *testing.T) {
	r := NewRandom()
	if _, err := r.Optimize(nil, fixtureOptions(t, 1)); err == nil {
		t.Error("nil environment should error")
	}
	if _, err := r.Optimize(fixtureEnv(t), optimizer.Options{}); err == nil {
		t.Error("invalid options should error")
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	env := fixtureEnv(t)
	opts := fixtureOptions(t, 37)
	r := NewRandom()
	a, err := r.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	b, err := r.Optimize(env, opts)
	if err != nil {
		t.Fatalf("Optimize error: %v", err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ")
	}
	for i := range a.Trials {
		if a.Trials[i].Config.ID != b.Trials[i].Config.ID {
			t.Fatalf("trial %d differs", i)
		}
	}
}

func TestDisjointValidation(t *testing.T) {
	job := fixtureJob(t)
	if _, err := Disjoint(nil, []int{1}, 1000); err == nil {
		t.Error("nil job should error")
	}
	if _, err := Disjoint(job, nil, 1000); err == nil {
		t.Error("empty cloud dims should error")
	}
	if _, err := Disjoint(job, []int{0, 1}, 1000); err == nil {
		t.Error("all dims as cloud dims should error")
	}
	if _, err := Disjoint(job, []int{5}, 1000); err == nil {
		t.Error("out-of-range cloud dim should error")
	}
	if _, err := Disjoint(job, []int{1, 1}, 1000); err == nil {
		t.Error("duplicate cloud dim should error")
	}
	if _, err := Disjoint(job, []int{1}, 0.001); err == nil {
		t.Error("impossible constraint should error")
	}
}

func TestDisjointUpperBoundsAndCanMissOptimum(t *testing.T) {
	// Craft a job where the best parameter on small clusters differs from
	// the best parameter on large clusters, so disjoint optimization starting
	// from a small reference cluster misses the global optimum.
	space, err := configspace.New([]configspace.Dimension{
		{Name: "param", Values: []float64{0, 1}},
		{Name: "cluster", Values: []float64{1, 2}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	// Costs: (param0,cl1)=4 (param1,cl1)=3 (param0,cl2)=1 (param1,cl2)=5.
	// Global optimum: param0 on cluster2, cost 1. Starting from cluster1 the
	// best param is param1 (3), and the best cluster for param1 is cluster1
	// (3) -> CNO 3.
	costs := map[[2]int]float64{
		{0, 0}: 4, {1, 0}: 3, {0, 1}: 1, {1, 1}: 5,
	}
	measurements := make([]dataset.Measurement, space.Size())
	for _, cfg := range space.Configs() {
		c := costs[[2]int{cfg.Indices[0], cfg.Indices[1]}]
		measurements[cfg.ID] = dataset.Measurement{
			ConfigID:         cfg.ID,
			RuntimeSeconds:   100,
			UnitPricePerHour: c * 36,
			Cost:             c,
		}
	}
	job, err := dataset.NewJob("disjoint-fixture", space, measurements, 0)
	if err != nil {
		t.Fatalf("NewJob error: %v", err)
	}

	results, err := Disjoint(job, []int{1}, 1000)
	if err != nil {
		t.Fatalf("Disjoint error: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want one per reference cloud setting (2)", len(results))
	}
	foundOptimal, foundSuboptimal := false, false
	for _, r := range results {
		if r.CNO < 1-1e-9 {
			t.Errorf("CNO %v below 1; disjoint cannot beat the true optimum", r.CNO)
		}
		if math.Abs(r.CNO-1) < 1e-9 {
			foundOptimal = true
		}
		if r.CNO > 2.9 {
			foundSuboptimal = true
		}
	}
	if !foundOptimal {
		t.Error("no reference cluster led disjoint optimization to the optimum")
	}
	if !foundSuboptimal {
		t.Error("no reference cluster exposed the sub-optimality of disjoint optimization")
	}
}

func TestDisjointOnFixtureJob(t *testing.T) {
	job := fixtureJob(t)
	tmax, err := job.RuntimeForFeasibleFraction(0.7)
	if err != nil {
		t.Fatalf("RuntimeForFeasibleFraction error: %v", err)
	}
	results, err := Disjoint(job, []int{1}, tmax)
	if err != nil {
		t.Fatalf("Disjoint error: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("no disjoint results")
	}
	for _, r := range results {
		if r.CNO < 1-1e-9 {
			t.Errorf("CNO %v below 1", r.CNO)
		}
		if r.FinalCost <= 0 {
			t.Errorf("non-positive final cost %v", r.FinalCost)
		}
	}
}
