// Package baselines implements the optimizers Lynceus is compared against in
// the paper's evaluation (§5.3, §6): the CherryPick/Arrow-style greedy
// constrained-EI Bayesian optimizer (BO), random search under the same budget
// (RND), and the idealized disjoint optimization of Figure 1b that tunes the
// job parameters and the cloud configuration separately.
//
// All baselines implement optimizer.Optimizer and run against the same
// Environment, budget, and bootstrap samples as Lynceus, which is what makes
// the CNO/NEX comparisons of the experiment pipeline apples-to-apples. Their
// Optimize methods keep no mutable receiver state, so one baseline instance
// can serve concurrent evaluation-campaign runs.
package baselines
