package servesim

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomCase draws a randomized (scenario, deployment) pair from the rng.
// Everything is derived from the rng, so the property suite is a fixed,
// reproducible set of scenarios despite being "random".
func randomCase(rng *rand.Rand) (Scenario, Deployment) {
	nClasses := 1 + rng.Intn(3)
	classes := make([]SLOClass, nClasses)
	for i := range classes {
		pMin := 8 + rng.Intn(200)
		oMin := 2 + rng.Intn(40)
		classes[i] = SLOClass{
			Name:       string(rune('a' + i)),
			Share:      0.2 + rng.Float64(),
			LatencySLO: 0.5 + rng.Float64()*20,
			PromptMin:  pMin, PromptMax: pMin + rng.Intn(300),
			OutputMin: oMin, OutputMax: oMin + rng.Intn(80),
		}
	}
	s := Scenario{
		Name:            "prop",
		Classes:         classes,
		ArrivalRate:     0.5 + rng.Float64()*8,
		Requests:        10 + rng.Intn(60),
		QueuePerReplica: 1 + rng.Intn(12),
		StepBase:        0.01 + rng.Float64()*0.05,
		StepPerSeq:      rng.Float64() * 0.01,
		PrefillPerToken: rng.Float64() * 0.001,
		NoiseSpread:     rng.Float64() * 0.4,
		MaxSLOViolation: 0.1,
	}
	d := Deployment{
		Replicas: 1 + rng.Intn(4),
		Type:     Catalog[rng.Intn(len(Catalog))],
		MaxBatch: 1 << rng.Intn(5),
		Policy:   Policies()[rng.Intn(len(Policies()))],
	}
	return s, d
}

// replayState rebuilds queue/instance occupancy from a trace, checking every
// step of the event bookkeeping against the limits the simulator promises.
type replayState struct {
	kvUsed   []int
	batch    []int
	queued   int
	inFlight int
	arrived  int
	done     int
	rejected int
}

// replayTrace validates a trace event-by-event: KV reservations within the
// budget, batch sizes within max-batch, admissions matching arrivals, and
// the per-event kv/batch annotations consistent with the replayed state.
func replayTrace(t *testing.T, d Deployment, trace []TraceEvent) replayState {
	t.Helper()
	st := replayState{kvUsed: make([]int, d.Replicas), batch: make([]int, d.Replicas)}
	need := make(map[int]int) // request -> KV reservation while resident
	lastT := 0.0
	for i, ev := range trace {
		if ev.Time < lastT {
			t.Fatalf("event %d goes back in time: %v after %v", i, ev.Time, lastT)
		}
		lastT = ev.Time
		switch ev.Kind {
		case "arrive":
			st.arrived++
			st.queued++ // provisional; "reject" or "admit" settles it
		case "reject":
			st.queued--
			st.rejected++
		case "admit":
			st.queued--
			st.inFlight++
			need[ev.Request] = ev.KVUsed - st.kvUsed[ev.Instance]
			if need[ev.Request] <= 0 {
				t.Fatalf("event %d: admit of request %d reserves %d KV tokens", i, ev.Request, need[ev.Request])
			}
			st.kvUsed[ev.Instance] = ev.KVUsed
			st.batch[ev.Instance]++
			if st.batch[ev.Instance] != ev.Batch {
				t.Fatalf("event %d: batch annotation %d, replay says %d", i, ev.Batch, st.batch[ev.Instance])
			}
			if st.batch[ev.Instance] > d.MaxBatch {
				t.Fatalf("event %d: batch %d exceeds max-batch %d", i, st.batch[ev.Instance], d.MaxBatch)
			}
			if st.kvUsed[ev.Instance] > d.Type.KVTokens {
				t.Fatalf("event %d: KV %d exceeds budget %d", i, st.kvUsed[ev.Instance], d.Type.KVTokens)
			}
		case "finish":
			st.inFlight--
			st.done++
			st.kvUsed[ev.Instance] -= need[ev.Request]
			delete(need, ev.Request)
			st.batch[ev.Instance]--
			if st.kvUsed[ev.Instance] != ev.KVUsed {
				t.Fatalf("event %d: finish KV annotation %d, replay says %d", i, ev.KVUsed, st.kvUsed[ev.Instance])
			}
			if st.kvUsed[ev.Instance] < 0 || st.batch[ev.Instance] < 0 {
				t.Fatalf("event %d: negative occupancy kv=%d batch=%d", i, st.kvUsed[ev.Instance], st.batch[ev.Instance])
			}
		case "step":
			if ev.Batch > d.MaxBatch || ev.KVUsed > d.Type.KVTokens {
				t.Fatalf("event %d: step annotation batch=%d kv=%d exceeds limits", i, ev.Batch, ev.KVUsed)
			}
		default:
			t.Fatalf("event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return st
}

// TestPropertyInvariants runs the randomized scenario suite and checks, per
// (scenario, deployment, seed):
//
//   - request conservation: arrived == completed + rejected + in-flight, and
//     at drain in-flight == 0;
//   - the KV budget and max-batch are never exceeded at any trace event;
//   - bitwise run-determinism for identical (config, seed).
func TestPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for i := 0; i < 40; i++ {
		s, d := randomCase(rng)
		seed := rng.Int63()
		var trace []TraceEvent
		res, err := Simulate(s, d, seed, &trace)
		if err != nil {
			t.Fatalf("case %d: Simulate: %v", i, err)
		}

		// Conservation on the aggregate result: the simulator runs to drain.
		if res.Arrived != s.Requests {
			t.Fatalf("case %d: arrived %d, want %d", i, res.Arrived, s.Requests)
		}
		if res.Completed+res.Rejected != res.Arrived {
			t.Fatalf("case %d: completed %d + rejected %d != arrived %d",
				i, res.Completed, res.Rejected, res.Arrived)
		}

		// Conservation and occupancy limits on the replayed trace.
		st := replayTrace(t, d, trace)
		if st.arrived != res.Arrived || st.done != res.Completed || st.rejected != res.Rejected {
			t.Fatalf("case %d: trace counts (%d,%d,%d) disagree with result (%d,%d,%d)",
				i, st.arrived, st.done, st.rejected, res.Arrived, res.Completed, res.Rejected)
		}
		if st.inFlight != 0 || st.queued != 0 {
			t.Fatalf("case %d: drain left in-flight=%d queued=%d", i, st.inFlight, st.queued)
		}
		for inst, kv := range st.kvUsed {
			if kv != 0 {
				t.Fatalf("case %d: instance %d drained with %d KV tokens reserved", i, inst, kv)
			}
		}
		for inst, peak := range res.MaxKVUsed {
			if peak > d.Type.KVTokens {
				t.Fatalf("case %d: instance %d peak KV %d exceeds budget %d", i, inst, peak, d.Type.KVTokens)
			}
		}

		// Bitwise determinism: same (scenario, deployment, seed) -> identical
		// result and trace.
		var trace2 []TraceEvent
		res2, err := Simulate(s, d, seed, &trace2)
		if err != nil {
			t.Fatalf("case %d: second Simulate: %v", i, err)
		}
		if !reflect.DeepEqual(res, res2) {
			t.Fatalf("case %d: results differ across identical seeds:\n%+v\n%+v", i, res, res2)
		}
		if !reflect.DeepEqual(trace, trace2) {
			t.Fatalf("case %d: traces differ across identical seeds", i)
		}
	}
}

// TestPropertyFIFOOrdering checks that under the FIFO policy requests start
// service in global arrival order — per class and overall — with strict
// head-of-line blocking (no overtaking).
func TestPropertyFIFOOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 25; i++ {
		s, d := randomCase(rng)
		d.Policy = FIFO
		var trace []TraceEvent
		if _, err := Simulate(s, d, rng.Int63(), &trace); err != nil {
			t.Fatalf("case %d: Simulate: %v", i, err)
		}
		lastAdmitted := -1
		lastPerClass := map[int]int{}
		for _, ev := range trace {
			if ev.Kind != "admit" {
				continue
			}
			if ev.Request <= lastAdmitted {
				t.Fatalf("case %d: FIFO admitted request %d after %d", i, ev.Request, lastAdmitted)
			}
			lastAdmitted = ev.Request
			if prev, ok := lastPerClass[ev.Class]; ok && ev.Request <= prev {
				t.Fatalf("case %d: class %d admitted request %d after %d", i, ev.Class, ev.Request, prev)
			}
			lastPerClass[ev.Class] = ev.Request
		}
	}
}

// TestPropertySLOPriorityOrdering checks that under the SLO-priority policy
// admissions within one class still follow arrival order (the policy reorders
// across classes, never within one).
func TestPropertySLOPriorityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 25; i++ {
		s, d := randomCase(rng)
		d.Policy = SLOPriority
		var trace []TraceEvent
		if _, err := Simulate(s, d, rng.Int63(), &trace); err != nil {
			t.Fatalf("case %d: Simulate: %v", i, err)
		}
		lastPerClass := map[int]int{}
		for _, ev := range trace {
			if ev.Kind != "admit" {
				continue
			}
			if prev, ok := lastPerClass[ev.Class]; ok && ev.Request <= prev {
				t.Fatalf("case %d: class %d admitted request %d after %d", i, ev.Class, ev.Request, prev)
			}
			lastPerClass[ev.Class] = ev.Request
		}
	}
}
