package servesim

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/configspace"
	"repro/internal/optimizer"
)

// SLOViolationMetric is the extra-metric name under which Env reports the
// fraction of requests that missed their latency SLO; constrain it with
// optimizer.Constraint{Metric: SLOViolationMetric, Max: ...}.
const SLOViolationMetric = "slo_violation"

// trueStatsSalt seeds the replication streams of TrueStats/Optimum. It is
// deliberately independent of the Env seed: ground truth is a property of
// (scenario, deployment) alone, so optima are comparable across campaigns.
const trueStatsSalt = 0x7B07

// Catalog is the default accelerator-instance catalog: price roughly doubles
// per tier while decode speed slightly more than doubles, so big instances
// win on throughput per dollar but lose when the workload cannot fill them.
var Catalog = []InstanceType{
	{Name: "g4-small", PricePerHour: 0.74, Speed: 1.0, KVTokens: 4096},
	{Name: "g5-medium", PricePerHour: 1.60, Speed: 2.1, KVTokens: 8192},
	{Name: "g6-large", PricePerHour: 3.90, Speed: 4.6, KVTokens: 16384},
	{Name: "g6-xl", PricePerHour: 7.80, Speed: 8.4, KVTokens: 32768},
}

// SpaceParams describes the configuration space of an Env: the candidate
// values of each tuning knob. Zero-value fields select the defaults (replicas
// 1..8, the full Catalog, max-batch {2,4,8,16}, every policy), a 384-point
// space at paper scale.
type SpaceParams struct {
	Replicas   []int
	Types      []InstanceType
	MaxBatches []int
	Policies   []Policy
}

func (p SpaceParams) withDefaults() SpaceParams {
	if len(p.Replicas) == 0 {
		p.Replicas = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if len(p.Types) == 0 {
		p.Types = append([]InstanceType(nil), Catalog...)
	}
	if len(p.MaxBatches) == 0 {
		p.MaxBatches = []int{2, 4, 8, 16}
	}
	if len(p.Policies) == 0 {
		p.Policies = Policies()
	}
	return p
}

// Space builds the configuration space replicas x instance type x max-batch x
// scheduler policy.
func (p SpaceParams) Space() (*configspace.Space, error) {
	p = p.withDefaults()
	repVals := make([]float64, len(p.Replicas))
	for i, r := range p.Replicas {
		repVals[i] = float64(r)
	}
	typeVals := make([]float64, len(p.Types))
	typeLabels := make([]string, len(p.Types))
	for i, it := range p.Types {
		typeVals[i] = float64(i)
		typeLabels[i] = it.Name
	}
	batchVals := make([]float64, len(p.MaxBatches))
	for i, b := range p.MaxBatches {
		batchVals[i] = float64(b)
	}
	polVals := make([]float64, len(p.Policies))
	polLabels := make([]string, len(p.Policies))
	for i, pol := range p.Policies {
		polVals[i] = float64(pol)
		polLabels[i] = pol.String()
	}
	dims := []configspace.Dimension{
		{Name: "replicas", Values: repVals},
		{Name: "instance_type", Values: typeVals, Labels: typeLabels},
		{Name: "max_batch", Values: batchVals},
		{Name: "scheduler", Values: polVals, Labels: polLabels},
	}
	return configspace.New(dims, nil)
}

// Env wraps one simulated serving scenario as an optimizer.Environment.
//
// Unlike every lookup-table workload, Run is stochastic: the i-th run of a
// configuration draws its service times from the stream derived from (env
// seed, config ID, i), so repeated runs of one configuration return different
// costs while any fixed call sequence stays bitwise reproducible. Create one
// Env per campaign (construction is cheap) — campaigns issue trials serially,
// so a campaign's trial sequence alone determines every observation.
type Env struct {
	scenario Scenario
	params   SpaceParams
	space    *configspace.Space
	seed     int64

	mu   sync.Mutex
	runs map[int]int
}

// NewEnv creates the environment of one scenario over the given space. The
// seed drives the per-run stochastic draws.
func NewEnv(scenario Scenario, params SpaceParams, seed int64) (*Env, error) {
	if err := scenario.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()
	space, err := params.Space()
	if err != nil {
		return nil, err
	}
	return &Env{
		scenario: scenario,
		params:   params,
		space:    space,
		seed:     mix(seed, scenario.hash()),
		runs:     make(map[int]int),
	}, nil
}

// hash folds the scenario name into the seed mix so different profiles with
// the same user seed draw independent noise.
func (s Scenario) hash() int64 {
	h := int64(0)
	for _, r := range s.Name {
		h = h*131 + int64(r)
	}
	return h
}

// Name returns the scenario name.
func (e *Env) Name() string { return e.scenario.Name }

// Scenario returns the wrapped scenario.
func (e *Env) Scenario() Scenario { return e.scenario }

// Space implements optimizer.Environment.
func (e *Env) Space() *configspace.Space { return e.space }

// Constraint returns the scenario's SLO-attainment constraint, ready to pass
// via optimizer.Options.ExtraConstraints.
func (e *Env) Constraint() optimizer.Constraint {
	return optimizer.Constraint{Metric: SLOViolationMetric, Max: e.scenario.MaxSLOViolation}
}

// Deployment decodes a configuration of the space.
func (e *Env) Deployment(cfg configspace.Config) (Deployment, error) {
	if len(cfg.Indices) != 4 {
		return Deployment{}, fmt.Errorf("servesim: config has %d dimensions, want 4", len(cfg.Indices))
	}
	ti := cfg.Indices[1]
	if ti < 0 || ti >= len(e.params.Types) {
		return Deployment{}, fmt.Errorf("servesim: instance type index %d out of range [0,%d)", ti, len(e.params.Types))
	}
	pi := cfg.Indices[3]
	if pi < 0 || pi >= len(e.params.Policies) {
		return Deployment{}, fmt.Errorf("servesim: policy index %d out of range [0,%d)", pi, len(e.params.Policies))
	}
	return Deployment{
		Replicas: int(cfg.Features[0]),
		Type:     e.params.Types[ti],
		MaxBatch: int(cfg.Features[2]),
		Policy:   e.params.Policies[pi],
	}, nil
}

// nextRunSeed returns the seed of the next profiling run of the
// configuration, advancing its per-configuration run counter.
func (e *Env) nextRunSeed(configID int) int64 {
	e.mu.Lock()
	n := e.runs[configID]
	e.runs[configID] = n + 1
	e.mu.Unlock()
	return mix3(e.seed, int64(configID), int64(n))
}

// ResetRuns rewinds every per-configuration run counter, making the next
// call sequence reproduce the draws of a fresh Env.
func (e *Env) ResetRuns() {
	e.mu.Lock()
	e.runs = make(map[int]int)
	e.mu.Unlock()
}

// envState is the serialized form of the environment's mutable state: the
// per-configuration run counters that position every noise stream.
type envState struct {
	Runs map[int]int `json:"runs,omitempty"`
}

// EnvState implements optimizer.StatefulEnvironment: the per-configuration
// run counters travel inside campaign snapshots, so a campaign resumed in a
// fresh process draws the identical stochastic observations the
// uninterrupted run would have drawn.
func (e *Env) EnvState() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return json.Marshal(envState{Runs: e.runs})
}

// RestoreEnvState implements optimizer.StatefulEnvironment.
func (e *Env) RestoreEnvState(data []byte) error {
	var st envState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("servesim: decoding environment state: %w", err)
	}
	runs := make(map[int]int, len(st.Runs))
	for id, n := range st.Runs {
		if n < 0 {
			return fmt.Errorf("servesim: negative run counter %d for config %d", n, id)
		}
		runs[id] = n
	}
	e.mu.Lock()
	e.runs = runs
	e.mu.Unlock()
	return nil
}

// trial converts one simulation result into a TrialResult.
func (e *Env) trial(cfg configspace.Config, d Deployment, res Result) optimizer.TrialResult {
	price := d.PricePerHour()
	return optimizer.TrialResult{
		Config:           cfg.Clone(),
		RuntimeSeconds:   res.Makespan,
		UnitPricePerHour: price,
		Cost:             res.Makespan / 3600 * price,
		Extra:            map[string]float64{SLOViolationMetric: res.SLOViolation()},
	}
}

// Run implements optimizer.Environment: it simulates serving the scenario's
// fixed request volume on the deployment. The makespan — and therefore the
// cost makespan/3600 x $/hour — is stochastic per run.
func (e *Env) Run(cfg configspace.Config) (optimizer.TrialResult, error) {
	d, err := e.Deployment(cfg)
	if err != nil {
		return optimizer.TrialResult{}, err
	}
	res, err := Simulate(e.scenario, d, e.nextRunSeed(cfg.ID), nil)
	if err != nil {
		return optimizer.TrialResult{}, err
	}
	return e.trial(cfg, d, res), nil
}

// UnitPricePerHour implements optimizer.Environment: the cluster rental
// price is known from the catalog without simulating.
func (e *Env) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	d, err := e.Deployment(cfg)
	if err != nil {
		return 0, err
	}
	return d.PricePerHour(), nil
}

// TrueStats is the seed-averaged ground truth of one configuration.
type TrueStats struct {
	ConfigID int
	// MeanCost is the expected dollar cost of one profiling run (serving the
	// scenario's fixed volume), i.e. the $/hour of the deployment scaled by
	// the expected serving time.
	MeanCost float64
	// MeanMakespan and MeanViolation are the expected makespan and
	// SLO-violation fraction.
	MeanMakespan, MeanViolation float64
}

// True computes the ground truth of a configuration by averaging reps
// replications drawn from an Env-seed-independent stream, so values are
// comparable across campaigns with different seeds. reps <= 0 selects 5.
func (e *Env) True(configID int, reps int) (TrueStats, error) {
	if reps <= 0 {
		reps = 5
	}
	cfg, err := e.space.ConfigView(configID)
	if err != nil {
		return TrueStats{}, err
	}
	d, err := e.Deployment(cfg)
	if err != nil {
		return TrueStats{}, err
	}
	out := TrueStats{ConfigID: configID}
	for r := 0; r < reps; r++ {
		res, err := Simulate(e.scenario, d, mix3(trueStatsSalt, int64(configID), int64(r)), nil)
		if err != nil {
			return TrueStats{}, err
		}
		out.MeanMakespan += res.Makespan
		out.MeanViolation += res.SLOViolation()
		out.MeanCost += res.Makespan / 3600 * d.PricePerHour()
	}
	n := float64(reps)
	out.MeanMakespan /= n
	out.MeanViolation /= n
	out.MeanCost /= n
	return out, nil
}

// Optimum scans the whole space for the cheapest configuration whose ground
// truth satisfies both the makespan constraint and the scenario's SLO
// constraint, averaging reps replications per configuration. It is the
// analytic reference of the campaign-quality tests.
func (e *Env) Optimum(maxMakespan float64, reps int) (TrueStats, error) {
	best := TrueStats{ConfigID: -1}
	for id := 0; id < e.space.Size(); id++ {
		ts, err := e.True(id, reps)
		if err != nil {
			return TrueStats{}, err
		}
		if ts.MeanMakespan > maxMakespan || ts.MeanViolation > e.scenario.MaxSLOViolation {
			continue
		}
		if best.ConfigID < 0 || ts.MeanCost < best.MeanCost {
			best = ts
		}
	}
	if best.ConfigID < 0 {
		return TrueStats{}, fmt.Errorf("servesim: no configuration of %q satisfies makespan <= %v and violation <= %v",
			e.scenario.Name, maxMakespan, e.scenario.MaxSLOViolation)
	}
	return best, nil
}

// ApproxStats estimates the q-quantile of the makespan and the mean run cost
// from one replication of a deterministic subsample of the space. Campaign
// setups use it to pick a makespan constraint and budget without sweeping
// every configuration.
func (e *Env) ApproxStats(q float64, samples int) (makespanQ, meanCost float64, err error) {
	if q < 0 || q > 1 {
		return 0, 0, fmt.Errorf("servesim: quantile %v outside [0,1]", q)
	}
	if samples <= 0 {
		samples = 128
	}
	if samples > e.space.Size() {
		samples = e.space.Size()
	}
	makespans := make([]float64, 0, samples)
	sumCost := 0.0
	state := uint64(mix(trueStatsSalt, 0x5EED))
	seen := make(map[int]struct{}, samples)
	for len(makespans) < samples {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		id := int((z ^ (z >> 31)) % uint64(e.space.Size()))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		ts, err := e.True(id, 1)
		if err != nil {
			return 0, 0, err
		}
		makespans = append(makespans, ts.MeanMakespan)
		sumCost += ts.MeanCost
	}
	sort.Float64s(makespans)
	idx := int(q * float64(len(makespans)-1))
	return makespans[idx], sumCost / float64(len(makespans)), nil
}

// Profiles lists the named serving scenarios in a stable order.
func Profiles() []string { return []string{"chat", "code", "batch"} }

// ProfileScenario returns the named scenario.
func ProfileScenario(name string) (Scenario, error) {
	switch name {
	case "chat":
		// Latency-dominated: mostly interactive traffic with tight SLOs and
		// short outputs; the scheduler policy and replica count decide
		// whether the tail meets the deadline.
		return Scenario{
			Name: "chat",
			Classes: []SLOClass{
				{Name: "interactive", Share: 0.6, LatencySLO: 2.5, PromptMin: 48, PromptMax: 192, OutputMin: 8, OutputMax: 24},
				{Name: "standard", Share: 0.3, LatencySLO: 6, PromptMin: 64, PromptMax: 256, OutputMin: 24, OutputMax: 64},
				{Name: "background", Share: 0.1, LatencySLO: 30, PromptMin: 128, PromptMax: 512, OutputMin: 64, OutputMax: 128},
			},
			ArrivalRate:     6,
			Requests:        90,
			QueuePerReplica: 12,
			StepBase:        0.030,
			StepPerSeq:      0.004,
			PrefillPerToken: 0.0004,
			NoiseSpread:     0.18,
			MaxSLOViolation: 0.10,
		}, nil
	case "code":
		// Long generations with medium SLOs: KV pressure dominates, so
		// max-batch and instance memory matter more than raw speed.
		return Scenario{
			Name: "code",
			Classes: []SLOClass{
				{Name: "completion", Share: 0.5, LatencySLO: 4, PromptMin: 256, PromptMax: 1024, OutputMin: 16, OutputMax: 48},
				{Name: "generation", Share: 0.5, LatencySLO: 15, PromptMin: 512, PromptMax: 2048, OutputMin: 64, OutputMax: 192},
			},
			ArrivalRate:     3,
			Requests:        72,
			QueuePerReplica: 10,
			StepBase:        0.030,
			StepPerSeq:      0.004,
			PrefillPerToken: 0.0004,
			NoiseSpread:     0.15,
			MaxSLOViolation: 0.10,
		}, nil
	case "batch":
		// Throughput-dominated: loose SLOs and long outputs; the cheapest
		// deployment that keeps up wins, attainment rarely binds.
		return Scenario{
			Name: "batch",
			Classes: []SLOClass{
				{Name: "summarize", Share: 0.7, LatencySLO: 60, PromptMin: 512, PromptMax: 2048, OutputMin: 64, OutputMax: 256},
				{Name: "extract", Share: 0.3, LatencySLO: 30, PromptMin: 256, PromptMax: 1024, OutputMin: 32, OutputMax: 96},
			},
			ArrivalRate:     4,
			Requests:        96,
			QueuePerReplica: 16,
			StepBase:        0.030,
			StepPerSeq:      0.004,
			PrefillPerToken: 0.0004,
			NoiseSpread:     0.12,
			MaxSLOViolation: 0.08,
		}, nil
	default:
		return Scenario{}, fmt.Errorf("servesim: unknown profile %q (want one of %v)", name, Profiles())
	}
}

// NewProfileEnv creates the environment of a named profile over the default
// 384-point space.
func NewProfileEnv(profile string, seed int64) (*Env, error) {
	scenario, err := ProfileScenario(profile)
	if err != nil {
		return nil, err
	}
	return NewEnv(scenario, SpaceParams{}, seed)
}

// Statically assert that Env satisfies the Environment contract.
var _ optimizer.Environment = (*Env)(nil)
