package servesim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden servesim trace files")

// goldenTrace pins an entire simulation run: the aggregate result plus the
// event-by-event trace. Any behavioural change to the event loop — admission
// order, step timing, KV accounting — shows up as a diff against the pinned
// file.
type goldenTrace struct {
	Scenario   string       `json:"scenario"`
	Deployment Deployment   `json:"deployment"`
	Seed       int64        `json:"seed"`
	Result     Result       `json:"result"`
	Events     []TraceEvent `json:"events"`
}

func goldenCases() []struct {
	name string
	s    Scenario
	d    Deployment
	seed int64
} {
	tiny := Scenario{
		Name: "tiny",
		Classes: []SLOClass{
			{Name: "fast", Share: 0.6, LatencySLO: 2, PromptMin: 16, PromptMax: 48, OutputMin: 4, OutputMax: 10},
			{Name: "slow", Share: 0.4, LatencySLO: 8, PromptMin: 48, PromptMax: 96, OutputMin: 12, OutputMax: 24},
		},
		ArrivalRate:     4,
		Requests:        12,
		QueuePerReplica: 4,
		StepBase:        0.030,
		StepPerSeq:      0.004,
		PrefillPerToken: 0.0004,
		NoiseSpread:     0.15,
		MaxSLOViolation: 0.1,
	}
	congested := tiny
	congested.Name = "congested"
	congested.ArrivalRate = 10
	congested.Requests = 16
	congested.QueuePerReplica = 2
	return []struct {
		name string
		s    Scenario
		d    Deployment
		seed int64
	}{
		{
			name: "fifo",
			s:    tiny,
			d:    Deployment{Replicas: 2, Type: Catalog[0], MaxBatch: 4, Policy: FIFO},
			seed: 11,
		},
		{
			name: "slo_priority",
			s:    congested,
			d:    Deployment{Replicas: 1, Type: Catalog[1], MaxBatch: 8, Policy: SLOPriority},
			seed: 23,
		},
	}
}

// TestGoldenTraces replays two small seeded scenarios and compares their full
// event traces against pinned files. Regenerate with:
//
//	go test ./internal/servesim -run TestGoldenTraces -update-golden
func TestGoldenTraces(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			var events []TraceEvent
			res, err := Simulate(tc.s, tc.d, tc.seed, &events)
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			got := goldenTrace{
				Scenario:   tc.s.Name,
				Deployment: tc.d,
				Seed:       tc.seed,
				Result:     res,
				Events:     events,
			}
			path := filepath.Join("testdata", "golden_servesim_"+tc.name+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				t.Logf("wrote %s (%d events)", path, len(events))
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update-golden to create): %v", err)
			}
			var want goldenTrace
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("unmarshal golden: %v", err)
			}
			if !reflect.DeepEqual(got.Result, want.Result) {
				t.Errorf("result drifted from golden:\n got %+v\nwant %+v", got.Result, want.Result)
			}
			if len(got.Events) != len(want.Events) {
				t.Fatalf("trace has %d events, golden has %d", len(got.Events), len(want.Events))
			}
			for i := range got.Events {
				if got.Events[i] != want.Events[i] {
					t.Fatalf("event %d drifted:\n got %+v\nwant %+v", i, got.Events[i], want.Events[i])
				}
			}
		})
	}
}
