package servesim

import (
	"testing"
)

func testEnv(t *testing.T, seed int64) *Env {
	t.Helper()
	env, err := NewEnv(testScenario(), SpaceParams{
		Replicas:   []int{1, 2, 3},
		MaxBatches: []int{2, 4, 8},
	}, seed)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func TestEnvSpaceShape(t *testing.T) {
	env := testEnv(t, 1)
	// 3 replicas x 4 types x 3 batches x 3 policies.
	if got := env.Space().Size(); got != 108 {
		t.Fatalf("space size %d, want 108", got)
	}
	env2, err := NewProfileEnv("chat", 1)
	if err != nil {
		t.Fatalf("NewProfileEnv: %v", err)
	}
	if got := env2.Space().Size(); got != 384 {
		t.Fatalf("default space size %d, want 384", got)
	}
}

// TestEnvRunIsStochasticButReplayable pins the noise model of the wrapper:
// repeated runs of one configuration differ (real observation noise), yet the
// whole call sequence is a pure function of (seed, sequence) — a fresh Env
// with the same seed, or ResetRuns, reproduces the draws bitwise.
func TestEnvRunIsStochasticButReplayable(t *testing.T) {
	env := testEnv(t, 42)
	cfg, err := env.Space().ConfigView(17)
	if err != nil {
		t.Fatalf("ConfigView: %v", err)
	}
	r1, err := env.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := env.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.RuntimeSeconds == r2.RuntimeSeconds {
		t.Errorf("repeat runs of one config returned identical makespan %v", r1.RuntimeSeconds)
	}
	if r1.UnitPricePerHour != r2.UnitPricePerHour {
		t.Errorf("price drifted across runs: %v vs %v", r1.UnitPricePerHour, r2.UnitPricePerHour)
	}

	// A fresh Env with the same seed replays the same draws...
	fresh := testEnv(t, 42)
	f1, err := fresh.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if f1.RuntimeSeconds != r1.RuntimeSeconds || f1.Cost != r1.Cost {
		t.Errorf("fresh env first run %v/%v, want %v/%v", f1.RuntimeSeconds, f1.Cost, r1.RuntimeSeconds, r1.Cost)
	}
	// ...and so does ResetRuns on the original.
	env.ResetRuns()
	b1, err := env.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b1.RuntimeSeconds != r1.RuntimeSeconds {
		t.Errorf("ResetRuns did not rewind draws: %v, want %v", b1.RuntimeSeconds, r1.RuntimeSeconds)
	}

	// A different seed draws different noise.
	other := testEnv(t, 43)
	o1, err := other.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if o1.RuntimeSeconds == r1.RuntimeSeconds {
		t.Errorf("different env seeds produced identical makespan %v", o1.RuntimeSeconds)
	}
}

func TestEnvTrialFields(t *testing.T) {
	env := testEnv(t, 7)
	cfg, err := env.Space().ConfigView(5)
	if err != nil {
		t.Fatalf("ConfigView: %v", err)
	}
	tr, err := env.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, err := env.Deployment(cfg)
	if err != nil {
		t.Fatalf("Deployment: %v", err)
	}
	if tr.UnitPricePerHour != d.PricePerHour() {
		t.Errorf("trial price %v, deployment price %v", tr.UnitPricePerHour, d.PricePerHour())
	}
	price, err := env.UnitPricePerHour(cfg)
	if err != nil {
		t.Fatalf("UnitPricePerHour: %v", err)
	}
	if price != d.PricePerHour() {
		t.Errorf("UnitPricePerHour %v, deployment price %v", price, d.PricePerHour())
	}
	if want := tr.RuntimeSeconds / 3600 * price; tr.Cost != want {
		t.Errorf("cost %v, want runtime/3600*price = %v", tr.Cost, want)
	}
	v, ok := tr.Extra[SLOViolationMetric]
	if !ok {
		t.Fatalf("trial missing extra metric %q", SLOViolationMetric)
	}
	if v < 0 || v > 1 {
		t.Errorf("violation %v outside [0,1]", v)
	}
	if tr.Config.ID != cfg.ID {
		t.Errorf("trial config ID %d, want %d", tr.Config.ID, cfg.ID)
	}
	c := env.Constraint()
	if c.Metric != SLOViolationMetric || c.Max != env.Scenario().MaxSLOViolation {
		t.Errorf("constraint %+v inconsistent with scenario", c)
	}
}

// TestEnvTrueStatsSeedIndependent pins the ground-truth contract: True uses a
// replication stream independent of the Env seed, so optima computed by
// differently seeded campaigns agree exactly.
func TestEnvTrueStatsSeedIndependent(t *testing.T) {
	a := testEnv(t, 1)
	b := testEnv(t, 999)
	ta, err := a.True(10, 3)
	if err != nil {
		t.Fatalf("True: %v", err)
	}
	tb, err := b.True(10, 3)
	if err != nil {
		t.Fatalf("True: %v", err)
	}
	if ta != tb {
		t.Errorf("ground truth depends on env seed: %+v vs %+v", ta, tb)
	}
	if ta.MeanCost <= 0 || ta.MeanMakespan <= 0 {
		t.Errorf("degenerate ground truth %+v", ta)
	}
}

func TestEnvOptimum(t *testing.T) {
	env := testEnv(t, 1)
	mkQ, _, err := env.ApproxStats(0.9, 40)
	if err != nil {
		t.Fatalf("ApproxStats: %v", err)
	}
	best, err := env.Optimum(mkQ, 2)
	if err != nil {
		t.Fatalf("Optimum: %v", err)
	}
	if best.ConfigID < 0 || best.ConfigID >= env.Space().Size() {
		t.Fatalf("optimum ID %d out of range", best.ConfigID)
	}
	if best.MeanMakespan > mkQ || best.MeanViolation > env.Scenario().MaxSLOViolation {
		t.Errorf("optimum %+v violates its own constraints (makespan <= %v)", best, mkQ)
	}
	// The optimum must be no more expensive than any other feasible config;
	// spot-check against the constrained minimum over a full scan.
	for id := 0; id < env.Space().Size(); id++ {
		ts, err := env.True(id, 2)
		if err != nil {
			t.Fatalf("True(%d): %v", id, err)
		}
		if ts.MeanMakespan <= mkQ && ts.MeanViolation <= env.Scenario().MaxSLOViolation && ts.MeanCost < best.MeanCost {
			t.Fatalf("config %d is feasible and cheaper than claimed optimum: %+v < %+v", id, ts, best)
		}
	}
	// An impossible constraint reports an error instead of a bogus optimum.
	if _, err := env.Optimum(0.0001, 1); err == nil {
		t.Error("impossible makespan constraint produced an optimum")
	}
}

func TestProfileEnvs(t *testing.T) {
	for _, name := range Profiles() {
		env, err := NewProfileEnv(name, 3)
		if err != nil {
			t.Fatalf("NewProfileEnv(%q): %v", name, err)
		}
		cfg, err := env.Space().ConfigView(0)
		if err != nil {
			t.Fatalf("ConfigView: %v", err)
		}
		tr, err := env.Run(cfg)
		if err != nil {
			t.Fatalf("%s Run: %v", name, err)
		}
		if tr.Cost <= 0 || tr.RuntimeSeconds <= 0 {
			t.Errorf("%s: degenerate trial %+v", name, tr)
		}
	}
	if _, err := NewProfileEnv("nope", 1); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := ProfileScenario("nope"); err == nil {
		t.Error("unknown profile scenario accepted")
	}
}
