// Package servesim is a seeded, deterministic discrete-event simulator of an
// LLM inference-serving cluster, and the first Lynceus workload whose
// profiling runs are genuinely stochastic: repeated runs of the same
// configuration draw different service times from the campaign-seed-derived
// noise stream, so the tuner's ensemble finally models real observation
// noise instead of replaying a lookup table.
//
// The simulated cluster is N replicas of one instance type. Requests arrive
// from a Poisson mix of SLO classes (interactive chat, standard, batch, ...),
// each with its own latency SLO and prompt/output token-length distribution.
// Every instance runs continuous batching: sequences join the running batch
// at decode-step boundaries, bounded both by the configured max-batch and by
// a KV-cache-style token budget that limits the memory reserved by concurrent
// sequences. A pluggable scheduler policy (FIFO, shortest-queue,
// SLO-priority) decides which queued request is admitted next.
//
// Env wraps one simulated scenario as an optimizer.Environment whose
// configuration space spans replica count x instance type x max-batch x
// scheduler policy: the tuner minimizes the dollar cost of serving a fixed
// request volume (makespan/3600 x cluster $/hour) under a makespan constraint
// and an SLO-attainment constraint carried as the "slo_violation" extra
// metric. TrueStats and Optimum compute seed-averaged ground truth per
// configuration, which is how campaign tests measure recommendation quality
// against the analytic space optimum.
package servesim
