package servesim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Policy selects which queued request an instance admits next.
type Policy int

// The scheduler policies of the simulated cluster.
const (
	// FIFO admits requests in global arrival order with strict head-of-line
	// blocking: a request that does not fit the instance at the head of the
	// queue waits, it is never overtaken.
	FIFO Policy = iota
	// ShortestQueue assigns each arriving request to the replica with the
	// fewest queued plus running sequences (lowest index on ties) and serves
	// each per-replica queue FIFO.
	ShortestQueue
	// SLOPriority admits the queued request with the tightest latency SLO
	// first (arrival order within a class), so interactive traffic overtakes
	// batch traffic under load.
	SLOPriority
)

// String returns the policy name used in dimension labels and traces.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case ShortestQueue:
		return "shortest-queue"
	case SLOPriority:
		return "slo-priority"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Policies lists the scheduler policies in a stable order.
func Policies() []Policy { return []Policy{FIFO, ShortestQueue, SLOPriority} }

// PolicyByName resolves a policy from its String form.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("servesim: unknown scheduler policy %q", name)
}

// InstanceType describes one accelerator instance of the catalog.
type InstanceType struct {
	// Name identifies the type, e.g. "g4-small".
	Name string
	// PricePerHour is the rental price of one replica in USD per hour.
	PricePerHour float64
	// Speed is the relative decode speed (step durations are divided by it).
	Speed float64
	// KVTokens is the KV-cache budget: the sum of tokens reserved by the
	// sequences concurrently resident on the instance can never exceed it.
	KVTokens int
}

// SLOClass is one request class of the arrival mix.
type SLOClass struct {
	// Name identifies the class, e.g. "interactive".
	Name string
	// Share is the fraction of the total arrival rate carried by the class;
	// shares are normalized, so they need not sum to one.
	Share float64
	// LatencySLO is the end-to-end completion deadline in simulated seconds.
	LatencySLO float64
	// PromptMin/PromptMax bound the uniform prompt-token distribution.
	PromptMin, PromptMax int
	// OutputMin/OutputMax bound the uniform output-token distribution.
	OutputMin, OutputMax int
}

// Scenario describes one serving workload: the arrival mix and the service
// cost model shared by every deployment simulated against it.
type Scenario struct {
	// Name identifies the scenario, e.g. "chat".
	Name string
	// Classes is the SLO-class mix of the arrival stream.
	Classes []SLOClass
	// ArrivalRate is the total Poisson arrival rate in requests per second.
	ArrivalRate float64
	// Requests is the fixed request volume of one profiling run; the run
	// simulates until every request completed or was rejected.
	Requests int
	// QueuePerReplica caps admission: an arrival finding QueuePerReplica x
	// replicas requests already queued is rejected.
	QueuePerReplica int
	// StepBase is the fixed duration of one decode step at Speed 1.
	StepBase float64
	// StepPerSeq is the per-running-sequence duration added to each step.
	StepPerSeq float64
	// PrefillPerToken is the one-off per-prompt-token cost charged to the
	// step in which a sequence joins the batch.
	PrefillPerToken float64
	// NoiseSpread is the lognormal sigma of the per-step service-time noise;
	// it is what makes repeated runs of one configuration differ.
	NoiseSpread float64
	// MaxSLOViolation is the scenario's default attainment constraint: the
	// fraction of requests allowed to miss their SLO (rejections count as
	// misses).
	MaxSLOViolation float64
}

// Validate checks the scenario's internal consistency.
func (s Scenario) Validate() error {
	if len(s.Classes) == 0 {
		return fmt.Errorf("servesim: scenario %q has no SLO classes", s.Name)
	}
	total := 0.0
	for _, c := range s.Classes {
		if c.Share <= 0 {
			return fmt.Errorf("servesim: class %q has non-positive share %v", c.Name, c.Share)
		}
		if c.LatencySLO <= 0 {
			return fmt.Errorf("servesim: class %q has non-positive SLO %v", c.Name, c.LatencySLO)
		}
		if c.PromptMin <= 0 || c.PromptMax < c.PromptMin {
			return fmt.Errorf("servesim: class %q has invalid prompt range [%d,%d]", c.Name, c.PromptMin, c.PromptMax)
		}
		if c.OutputMin <= 0 || c.OutputMax < c.OutputMin {
			return fmt.Errorf("servesim: class %q has invalid output range [%d,%d]", c.Name, c.OutputMin, c.OutputMax)
		}
		total += c.Share
	}
	if total <= 0 {
		return fmt.Errorf("servesim: scenario %q has zero total class share", s.Name)
	}
	if s.ArrivalRate <= 0 {
		return fmt.Errorf("servesim: scenario %q has non-positive arrival rate %v", s.Name, s.ArrivalRate)
	}
	if s.Requests <= 0 {
		return fmt.Errorf("servesim: scenario %q has non-positive request volume %d", s.Name, s.Requests)
	}
	if s.QueuePerReplica <= 0 {
		return fmt.Errorf("servesim: scenario %q has non-positive queue cap %d", s.Name, s.QueuePerReplica)
	}
	if s.StepBase <= 0 || s.StepPerSeq < 0 || s.PrefillPerToken < 0 {
		return fmt.Errorf("servesim: scenario %q has invalid step cost model", s.Name)
	}
	if s.NoiseSpread < 0 {
		return fmt.Errorf("servesim: scenario %q has negative noise spread %v", s.Name, s.NoiseSpread)
	}
	return nil
}

// Deployment is one cluster configuration simulated against a scenario.
type Deployment struct {
	// Replicas is the number of identical instances.
	Replicas int
	// Type is the instance type of every replica.
	Type InstanceType
	// MaxBatch bounds the sequences concurrently decoded per instance.
	MaxBatch int
	// Policy is the scheduler policy.
	Policy Policy
}

// PricePerHour returns the cluster rental price in USD per hour.
func (d Deployment) PricePerHour() float64 {
	return float64(d.Replicas) * d.Type.PricePerHour
}

// Validate checks the deployment.
func (d Deployment) Validate() error {
	if d.Replicas <= 0 {
		return fmt.Errorf("servesim: non-positive replica count %d", d.Replicas)
	}
	if d.MaxBatch <= 0 {
		return fmt.Errorf("servesim: non-positive max batch %d", d.MaxBatch)
	}
	if d.Type.Speed <= 0 {
		return fmt.Errorf("servesim: instance type %q has non-positive speed %v", d.Type.Name, d.Type.Speed)
	}
	if d.Type.PricePerHour <= 0 {
		return fmt.Errorf("servesim: instance type %q has non-positive price %v", d.Type.Name, d.Type.PricePerHour)
	}
	if d.Type.KVTokens <= 0 {
		return fmt.Errorf("servesim: instance type %q has non-positive KV budget %d", d.Type.Name, d.Type.KVTokens)
	}
	if d.Policy < FIFO || d.Policy > SLOPriority {
		return fmt.Errorf("servesim: unknown policy %d", int(d.Policy))
	}
	return nil
}

// Request is one generated request of a profiling run.
type Request struct {
	// ID is the dense arrival index of the request.
	ID int
	// Class indexes Scenario.Classes.
	Class int
	// Arrival is the arrival time in simulated seconds.
	Arrival float64
	// PromptTokens and OutputTokens are the sampled sequence lengths; the
	// request reserves PromptTokens+OutputTokens KV tokens while resident.
	PromptTokens, OutputTokens int
}

// KVNeed is the KV budget the request reserves while resident on an instance.
func (r Request) KVNeed() int { return r.PromptTokens + r.OutputTokens }

// ClassMetrics aggregates per-class outcomes of one run.
type ClassMetrics struct {
	Name        string
	Arrived     int
	Completed   int
	Rejected    int
	SLOAttained int
	// SumLatency and MaxLatency summarize the completion latencies.
	SumLatency, MaxLatency float64
}

// Result summarizes one simulated profiling run.
type Result struct {
	// Makespan is the simulated time from the first arrival epoch (t=0) to
	// the drain of the last request.
	Makespan float64
	// Arrived, Completed and Rejected count requests; the simulator runs to
	// drain, so Arrived == Completed + Rejected always holds on a Result.
	Arrived, Completed, Rejected int
	// SLOAttained counts the completed requests that met their class SLO.
	SLOAttained int
	// Steps is the total number of decode steps executed across instances.
	Steps int
	// PerClass holds per-class outcome aggregates.
	PerClass []ClassMetrics
	// MaxKVUsed is the peak KV reservation observed per instance; it never
	// exceeds the instance type's KVTokens (enforced by admission, asserted
	// by the property tests).
	MaxKVUsed []int
}

// SLOViolation returns the fraction of requests that missed their SLO:
// rejected requests and completions past the deadline, over all arrivals.
func (r Result) SLOViolation() float64 {
	if r.Arrived == 0 {
		return 0
	}
	return 1 - float64(r.SLOAttained)/float64(r.Arrived)
}

// TraceEvent is one event of a simulation trace. Traces are the golden-test
// surface of the simulator: any semantic change to the event loop shows up as
// an event-by-event diff against the pinned testdata files.
type TraceEvent struct {
	// Time is the simulated timestamp of the event.
	Time float64 `json:"t"`
	// Kind is one of "arrive", "reject", "admit", "step" or "finish".
	Kind string `json:"kind"`
	// Instance is the replica index, -1 for events without one.
	Instance int `json:"inst"`
	// Request is the request ID, -1 for step events.
	Request int `json:"req"`
	// Class is the request's SLO class index, -1 for step events.
	Class int `json:"class"`
	// Batch is the instance's running batch size after the event (admit,
	// step, finish), 0 otherwise.
	Batch int `json:"batch"`
	// KVUsed is the instance's reserved KV tokens after the event (admit,
	// step, finish), 0 otherwise.
	KVUsed int `json:"kv"`
}

// GenerateRequests draws the request stream of one run: per-class Poisson
// arrivals merged into one stream (implemented as one Poisson process with
// share-weighted class marks), with uniform prompt/output token lengths. The
// stream depends only on (scenario, seed).
func GenerateRequests(s Scenario, seed int64) []Request {
	rng := rand.New(rand.NewSource(mix(seed, streamArrivals)))
	totalShare := 0.0
	for _, c := range s.Classes {
		totalShare += c.Share
	}
	reqs := make([]Request, s.Requests)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / s.ArrivalRate
		pick := rng.Float64() * totalShare
		class := len(s.Classes) - 1
		acc := 0.0
		for ci, c := range s.Classes {
			acc += c.Share
			if pick < acc {
				class = ci
				break
			}
		}
		c := s.Classes[class]
		reqs[i] = Request{
			ID:           i,
			Class:        class,
			Arrival:      t,
			PromptTokens: c.PromptMin + rng.Intn(c.PromptMax-c.PromptMin+1),
			OutputTokens: c.OutputMin + rng.Intn(c.OutputMax-c.OutputMin+1),
		}
	}
	return reqs
}

// RNG stream identifiers: independent deterministic streams derived from the
// run seed, so changing how one stream is consumed never shifts another.
const (
	streamArrivals = 0x5A11
	streamSteps    = 0x57E9
)

// event is one entry of the simulation's event queue.
type event struct {
	time float64
	// seq is the global scheduling order, the deterministic tie-breaker for
	// identical timestamps.
	seq  int
	kind eventKind
	// inst is the instance of a step-completion event.
	inst int
	// req is the request index of an arrival event.
	req int
}

type eventKind int

const (
	evArrival eventKind = iota
	evStep
)

// eventQueue is a min-heap over (time, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// seqState is one resident sequence of an instance's running batch.
type seqState struct {
	req       int
	generated int
}

// instance is the mutable state of one replica.
type instance struct {
	running []seqState
	kvUsed  int
	// queue is the per-instance queue of the ShortestQueue policy.
	queue []int
	// stepScheduled reports whether a step-completion event is in flight.
	stepScheduled bool
	maxKV         int
}

// sim is the run state of one simulation.
type sim struct {
	s     Scenario
	d     Deployment
	reqs  []Request
	insts []instance
	// global is the shared queue of the FIFO and SLOPriority policies.
	global []int
	queued int
	events eventQueue
	seq    int
	noise  *rand.Rand
	trace  *[]TraceEvent

	completed   []float64 // completion time per request, -1 while in flight
	result      Result
	lastEventAt float64
}

// Simulate runs one profiling run of the deployment against the scenario and
// returns its aggregate result. The run is a pure function of (scenario,
// deployment, seed): identical inputs produce bitwise-identical results and
// traces. When trace is non-nil, every event is appended to it.
func Simulate(s Scenario, d Deployment, seed int64, trace *[]TraceEvent) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	sm := &sim{
		s:     s,
		d:     d,
		reqs:  GenerateRequests(s, seed),
		insts: make([]instance, d.Replicas),
		noise: rand.New(rand.NewSource(mix(seed, streamSteps))),
		trace: trace,
	}
	sm.completed = make([]float64, len(sm.reqs))
	for i := range sm.completed {
		sm.completed[i] = -1
	}
	sm.result.PerClass = make([]ClassMetrics, len(s.Classes))
	for ci, c := range s.Classes {
		sm.result.PerClass[ci].Name = c.Name
	}
	for i := range sm.reqs {
		sm.push(event{time: sm.reqs[i].Arrival, kind: evArrival, req: i, inst: -1})
	}
	for len(sm.events) > 0 {
		e := heap.Pop(&sm.events).(event)
		sm.lastEventAt = e.time
		switch e.kind {
		case evArrival:
			sm.arrive(e.time, e.req)
		case evStep:
			sm.stepComplete(e.time, e.inst)
		}
	}
	sm.finishResult()
	return sm.result, nil
}

func (sm *sim) push(e event) {
	e.seq = sm.seq
	sm.seq++
	heap.Push(&sm.events, e)
}

func (sm *sim) emit(ev TraceEvent) {
	if sm.trace != nil {
		*sm.trace = append(*sm.trace, ev)
	}
}

// arrive handles one request arrival: admission-cap check, queue join per
// policy, then an immediate dispatch attempt on idle instances.
func (sm *sim) arrive(t float64, ri int) {
	req := sm.reqs[ri]
	cm := &sm.result.PerClass[req.Class]
	sm.result.Arrived++
	cm.Arrived++
	sm.emit(TraceEvent{Time: t, Kind: "arrive", Instance: -1, Request: req.ID, Class: req.Class})

	// Oversized requests can never fit any instance of this deployment, so
	// they are rejected at arrival instead of deadlocking a head-of-line
	// queue; capacity rejections use the queued-request cap.
	if req.KVNeed() > sm.d.Type.KVTokens || sm.queued >= sm.s.QueuePerReplica*sm.d.Replicas {
		sm.result.Rejected++
		cm.Rejected++
		sm.emit(TraceEvent{Time: t, Kind: "reject", Instance: -1, Request: req.ID, Class: req.Class})
		return
	}

	switch sm.d.Policy {
	case ShortestQueue:
		best := 0
		bestLoad := len(sm.insts[0].queue) + len(sm.insts[0].running)
		for i := 1; i < len(sm.insts); i++ {
			load := len(sm.insts[i].queue) + len(sm.insts[i].running)
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		sm.insts[best].queue = append(sm.insts[best].queue, ri)
	default:
		sm.global = append(sm.global, ri)
		if sm.d.Policy == SLOPriority {
			// Keep the global queue ordered by (SLO asc, arrival asc); the
			// new request bubbles left past looser SLOs.
			for i := len(sm.global) - 1; i > 0; i-- {
				a, b := sm.reqs[sm.global[i-1]], sm.reqs[sm.global[i]]
				if sm.s.Classes[a.Class].LatencySLO <= sm.s.Classes[b.Class].LatencySLO {
					break
				}
				sm.global[i-1], sm.global[i] = sm.global[i], sm.global[i-1]
			}
		}
	}
	sm.queued++

	// Idle instances admit immediately; busy ones at their next step
	// boundary (continuous batching).
	for i := range sm.insts {
		if !sm.insts[i].stepScheduled && len(sm.insts[i].running) == 0 {
			sm.admitAndSchedule(t, i)
		}
	}
}

// queueHead returns the next request the policy would admit on instance i,
// or -1 when its queue view is empty.
func (sm *sim) queueHead(i int) int {
	if sm.d.Policy == ShortestQueue {
		if len(sm.insts[i].queue) == 0 {
			return -1
		}
		return sm.insts[i].queue[0]
	}
	if len(sm.global) == 0 {
		return -1
	}
	return sm.global[0]
}

func (sm *sim) popQueueHead(i int) {
	if sm.d.Policy == ShortestQueue {
		sm.insts[i].queue = sm.insts[i].queue[1:]
	} else {
		sm.global = sm.global[1:]
	}
	sm.queued--
}

// admitAndSchedule admits queued requests onto instance i (head-of-line, no
// overtaking: a head that does not fit blocks the instance's admissions) and
// schedules the next decode step. It returns the prompt tokens admitted,
// which the caller's step duration charges as prefill work.
func (sm *sim) admitAndSchedule(t float64, i int) {
	inst := &sm.insts[i]
	admittedPrompt := 0
	for len(inst.running) < sm.d.MaxBatch {
		ri := sm.queueHead(i)
		if ri < 0 {
			break
		}
		req := sm.reqs[ri]
		if inst.kvUsed+req.KVNeed() > sm.d.Type.KVTokens {
			break
		}
		sm.popQueueHead(i)
		inst.running = append(inst.running, seqState{req: ri})
		inst.kvUsed += req.KVNeed()
		if inst.kvUsed > inst.maxKV {
			inst.maxKV = inst.kvUsed
		}
		admittedPrompt += req.PromptTokens
		sm.emit(TraceEvent{Time: t, Kind: "admit", Instance: i, Request: req.ID, Class: req.Class,
			Batch: len(inst.running), KVUsed: inst.kvUsed})
	}
	if len(inst.running) == 0 || inst.stepScheduled {
		return
	}
	dur := (sm.s.StepBase + sm.s.StepPerSeq*float64(len(inst.running)) +
		sm.s.PrefillPerToken*float64(admittedPrompt)) / sm.d.Type.Speed
	dur *= math.Exp(sm.noise.NormFloat64() * sm.s.NoiseSpread)
	inst.stepScheduled = true
	sm.push(event{time: t + dur, kind: evStep, inst: i, req: -1})
}

// stepComplete handles one decode-step completion on instance i: every
// running sequence generates one token, finished sequences leave and free
// their KV reservation, then the instance admits and schedules the next step.
func (sm *sim) stepComplete(t float64, i int) {
	inst := &sm.insts[i]
	inst.stepScheduled = false
	sm.result.Steps++

	keep := inst.running[:0]
	for _, seq := range inst.running {
		seq.generated++
		req := sm.reqs[seq.req]
		if seq.generated < req.OutputTokens {
			keep = append(keep, seq)
			continue
		}
		inst.kvUsed -= req.KVNeed()
		sm.completed[seq.req] = t
		latency := t - req.Arrival
		cm := &sm.result.PerClass[req.Class]
		sm.result.Completed++
		cm.Completed++
		cm.SumLatency += latency
		if latency > cm.MaxLatency {
			cm.MaxLatency = latency
		}
		if latency <= sm.s.Classes[req.Class].LatencySLO {
			sm.result.SLOAttained++
			cm.SLOAttained++
		}
		sm.emit(TraceEvent{Time: t, Kind: "finish", Instance: i, Request: req.ID, Class: req.Class,
			Batch: len(keep), KVUsed: inst.kvUsed})
	}
	inst.running = keep
	sm.emit(TraceEvent{Time: t, Kind: "step", Instance: i, Request: -1, Class: -1,
		Batch: len(inst.running), KVUsed: inst.kvUsed})
	sm.admitAndSchedule(t, i)
}

func (sm *sim) finishResult() {
	sm.result.Makespan = sm.lastEventAt
	sm.result.MaxKVUsed = make([]int, len(sm.insts))
	for i := range sm.insts {
		sm.result.MaxKVUsed[i] = sm.insts[i].maxKV
	}
}

// mix combines two 64-bit values into a well-distributed seed (SplitMix64),
// matching the convention of the synthetic workload generators.
func mix(a, b int64) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b)*0xD1B54A32D192ED03 + 0x8CB92BA72F3D8DD7
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// mix3 folds three values into one seed.
func mix3(a, b, c int64) int64 { return mix(mix(a, b), c) }
