package servesim

import (
	"math"
	"testing"
)

// TestEnvStateRoundTrip pins the StatefulEnvironment contract the serving
// layer's crash recovery rests on: EnvState captures the per-configuration
// run counters, and a fresh Env with the same seed restored from that state
// continues the exact noise streams of the original — a restarted server
// replays a resumed campaign's environment bitwise.
func TestEnvStateRoundTrip(t *testing.T) {
	env := testEnv(t, 42)
	cfg, err := env.Space().ConfigView(17)
	if err != nil {
		t.Fatalf("ConfigView: %v", err)
	}
	other, err := env.Space().ConfigView(3)
	if err != nil {
		t.Fatalf("ConfigView: %v", err)
	}
	// Burn a few draws so the counters are nontrivial and uneven.
	for i := 0; i < 3; i++ {
		if _, err := env.Run(cfg); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if _, err := env.Run(other); err != nil {
		t.Fatalf("Run: %v", err)
	}

	state, err := env.EnvState()
	if err != nil {
		t.Fatalf("EnvState: %v", err)
	}
	restored := testEnv(t, 42)
	if err := restored.RestoreEnvState(state); err != nil {
		t.Fatalf("RestoreEnvState: %v", err)
	}

	// Both environments must now produce bit-identical streams.
	for i := 0; i < 3; i++ {
		for _, c := range []int{17, 3, 50} {
			view, err := env.Space().ConfigView(c)
			if err != nil {
				t.Fatalf("ConfigView: %v", err)
			}
			want, err := env.Run(view)
			if err != nil {
				t.Fatalf("original Run: %v", err)
			}
			got, err := restored.Run(view)
			if err != nil {
				t.Fatalf("restored Run: %v", err)
			}
			if math.Float64bits(got.RuntimeSeconds) != math.Float64bits(want.RuntimeSeconds) ||
				math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
				t.Fatalf("draw %d of config %d diverged: runtime %x vs %x", i, c,
					math.Float64bits(got.RuntimeSeconds), math.Float64bits(want.RuntimeSeconds))
			}
		}
	}
}

func TestEnvStateRejectsCorruptState(t *testing.T) {
	env := testEnv(t, 1)
	if err := env.RestoreEnvState([]byte("{")); err == nil {
		t.Fatal("RestoreEnvState accepted truncated JSON")
	}
	if err := env.RestoreEnvState([]byte(`{"runs":{"5":-1}}`)); err == nil {
		t.Fatal("RestoreEnvState accepted a negative run counter")
	}
}
