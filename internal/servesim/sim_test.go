package servesim

import (
	"math"
	"testing"
)

// testScenario is a small, fast scenario shared by the unit tests.
func testScenario() Scenario {
	return Scenario{
		Name: "unit",
		Classes: []SLOClass{
			{Name: "fast", Share: 0.7, LatencySLO: 2, PromptMin: 16, PromptMax: 64, OutputMin: 4, OutputMax: 12},
			{Name: "slow", Share: 0.3, LatencySLO: 10, PromptMin: 32, PromptMax: 128, OutputMin: 16, OutputMax: 48},
		},
		ArrivalRate:     5,
		Requests:        40,
		QueuePerReplica: 8,
		StepBase:        0.030,
		StepPerSeq:      0.004,
		PrefillPerToken: 0.0004,
		NoiseSpread:     0.15,
		MaxSLOViolation: 0.1,
	}
}

func testDeployment() Deployment {
	return Deployment{Replicas: 2, Type: Catalog[0], MaxBatch: 4, Policy: FIFO}
}

func TestSimulateBasics(t *testing.T) {
	res, err := Simulate(testScenario(), testDeployment(), 1, nil)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Arrived != 40 {
		t.Errorf("arrived %d, want 40", res.Arrived)
	}
	if res.Completed+res.Rejected != res.Arrived {
		t.Errorf("completed %d + rejected %d != arrived %d", res.Completed, res.Rejected, res.Arrived)
	}
	if res.Completed == 0 {
		t.Error("no requests completed")
	}
	if res.Makespan <= 0 {
		t.Errorf("non-positive makespan %v", res.Makespan)
	}
	if res.Steps <= 0 {
		t.Errorf("non-positive step count %d", res.Steps)
	}
	if v := res.SLOViolation(); v < 0 || v > 1 {
		t.Errorf("SLO violation %v outside [0,1]", v)
	}
	totalArr, totalComp, totalRej, totalSLO := 0, 0, 0, 0
	for _, cm := range res.PerClass {
		totalArr += cm.Arrived
		totalComp += cm.Completed
		totalRej += cm.Rejected
		totalSLO += cm.SLOAttained
	}
	if totalArr != res.Arrived || totalComp != res.Completed || totalRej != res.Rejected || totalSLO != res.SLOAttained {
		t.Errorf("per-class aggregates (%d,%d,%d,%d) disagree with totals (%d,%d,%d,%d)",
			totalArr, totalComp, totalRej, totalSLO, res.Arrived, res.Completed, res.Rejected, res.SLOAttained)
	}
	if len(res.MaxKVUsed) != 2 {
		t.Fatalf("MaxKVUsed has %d entries, want 2", len(res.MaxKVUsed))
	}
}

func TestGenerateRequestsDeterministicAndOrdered(t *testing.T) {
	s := testScenario()
	a := GenerateRequests(s, 7)
	b := GenerateRequests(s, 7)
	if len(a) != s.Requests {
		t.Fatalf("generated %d requests, want %d", len(a), s.Requests)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals out of order at %d: %v after %v", i, a[i].Arrival, a[i-1].Arrival)
		}
		c := s.Classes[a[i].Class]
		if a[i].PromptTokens < c.PromptMin || a[i].PromptTokens > c.PromptMax {
			t.Fatalf("request %d prompt %d outside [%d,%d]", i, a[i].PromptTokens, c.PromptMin, c.PromptMax)
		}
		if a[i].OutputTokens < c.OutputMin || a[i].OutputTokens > c.OutputMax {
			t.Fatalf("request %d output %d outside [%d,%d]", i, a[i].OutputTokens, c.OutputMin, c.OutputMax)
		}
	}
	if c := GenerateRequests(s, 8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced an identical request prefix")
	}
}

func TestSimulateSeedChangesOutcome(t *testing.T) {
	s := testScenario()
	d := testDeployment()
	a, err := Simulate(s, d, 1, nil)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	b, err := Simulate(s, d, 2, nil)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if a.Makespan == b.Makespan {
		t.Errorf("different seeds produced identical makespan %v", a.Makespan)
	}
}

// TestMoreCapacityHelps pins the qualitative shape of the model: more
// replicas of the same type cannot hurt throughput, so the makespan shrinks
// or stays arrival-bound, and a severely underprovisioned deployment misses
// SLOs that a provisioned one meets.
func TestMoreCapacityHelps(t *testing.T) {
	s := testScenario()
	small := Deployment{Replicas: 1, Type: Catalog[0], MaxBatch: 2, Policy: FIFO}
	big := Deployment{Replicas: 4, Type: Catalog[2], MaxBatch: 16, Policy: FIFO}
	sr, err := Simulate(s, small, 3, nil)
	if err != nil {
		t.Fatalf("Simulate small: %v", err)
	}
	br, err := Simulate(s, big, 3, nil)
	if err != nil {
		t.Fatalf("Simulate big: %v", err)
	}
	if br.Makespan >= sr.Makespan {
		t.Errorf("big deployment makespan %v not below small %v", br.Makespan, sr.Makespan)
	}
	if br.SLOViolation() >= sr.SLOViolation() {
		t.Errorf("big deployment violation %v not below small %v", br.SLOViolation(), sr.SLOViolation())
	}
}

// TestOversizedRequestRejected pins the arrival-time rejection of requests
// that could never fit the instance KV budget (instead of deadlocking a
// head-of-line queue).
func TestOversizedRequestRejected(t *testing.T) {
	s := testScenario()
	s.Classes = []SLOClass{{Name: "huge", Share: 1, LatencySLO: 10,
		PromptMin: 5000, PromptMax: 6000, OutputMin: 10, OutputMax: 20}}
	s.Requests = 5
	d := testDeployment() // g4-small: 4096 KV tokens < 5010 minimum need
	res, err := Simulate(s, d, 1, nil)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Rejected != 5 || res.Completed != 0 {
		t.Errorf("rejected=%d completed=%d, want all 5 rejected", res.Rejected, res.Completed)
	}
}

func TestValidationErrors(t *testing.T) {
	s := testScenario()
	d := testDeployment()
	bad := s
	bad.ArrivalRate = 0
	if _, err := Simulate(bad, d, 1, nil); err == nil {
		t.Error("zero arrival rate accepted")
	}
	bad = s
	bad.Classes = nil
	if _, err := Simulate(bad, d, 1, nil); err == nil {
		t.Error("empty class mix accepted")
	}
	badD := d
	badD.Replicas = 0
	if _, err := Simulate(s, badD, 1, nil); err == nil {
		t.Error("zero replicas accepted")
	}
	badD = d
	badD.MaxBatch = -1
	if _, err := Simulate(s, badD, 1, nil); err == nil {
		t.Error("negative max batch accepted")
	}
	badD = d
	badD.Policy = Policy(99)
	if _, err := Simulate(s, badD, 1, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range Policies() {
		got, err := PolicyByName(p.String())
		if err != nil || got != p {
			t.Errorf("PolicyByName(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy name accepted")
	}
}

func TestNoiseSpreadZeroIsStillDeterministicAcrossSeeds(t *testing.T) {
	// With zero noise the service times are deterministic, but arrivals still
	// differ per seed; the run must stay well-formed.
	s := testScenario()
	s.NoiseSpread = 0
	res, err := Simulate(s, testDeployment(), 5, nil)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Completed+res.Rejected != res.Arrived || math.IsNaN(res.Makespan) {
		t.Errorf("malformed result %+v", res)
	}
}
