package share

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/configspace"
	"repro/internal/optimizer"
)

func testSpace(t *testing.T) *configspace.Space {
	t.Helper()
	s, err := configspace.New([]configspace.Dimension{
		{Name: "n", Values: []float64{1, 2, 4}},
		{Name: "hw", Values: []float64{0, 1}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// countingEnv is a minimal environment that counts price fetches.
type countingEnv struct {
	space      *configspace.Space
	priceCalls atomic.Int64
}

func (e *countingEnv) Space() *configspace.Space { return e.space }

func (e *countingEnv) Run(cfg configspace.Config) (optimizer.TrialResult, error) {
	return optimizer.TrialResult{Config: cfg, Cost: 1, RuntimeSeconds: 1, UnitPricePerHour: 1}, nil
}

func (e *countingEnv) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	e.priceCalls.Add(1)
	return 0.5 + float64(cfg.ID), nil
}

func TestRegistryInternsByDigest(t *testing.T) {
	r := NewRegistry()
	s1 := testSpace(t)
	s2 := testSpace(t) // distinct instance, equal content
	a1 := r.Intern(s1)
	a2 := r.Intern(s2)
	if a1 != a2 {
		t.Fatal("content-equal spaces interned as distinct artifacts")
	}
	if a1.Space() != s1 {
		t.Fatal("first interned space is not the canonical instance")
	}
	if a1.Digest() != s1.Digest() {
		t.Fatal("artifact digest mismatch")
	}
	if r.Len() != 1 {
		t.Fatalf("registry holds %d artifacts, want 1", r.Len())
	}

	other, err := configspace.New([]configspace.Dimension{{Name: "x", Values: []float64{1, 2}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Intern(other) == a1 {
		t.Fatal("different space shares an artifact")
	}
	if r.Len() != 2 {
		t.Fatalf("registry holds %d artifacts, want 2", r.Len())
	}
}

func TestRegistryInternConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	arts := make([]*Artifact, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i] = r.Intern(testSpace(t))
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if arts[i] != arts[0] {
			t.Fatal("concurrent interns produced distinct artifacts")
		}
	}
}

func TestArtifactPriceCacheSharedPerEnvInstance(t *testing.T) {
	r := NewRegistry()
	env := &countingEnv{space: testSpace(t)}
	a := r.Intern(env.Space())

	pc1 := a.PriceCache(env)
	pc2 := a.PriceCache(env)
	if pc1 != pc2 {
		t.Fatal("same environment instance got two price caches")
	}
	for round := 0; round < 3; round++ {
		for id := 0; id < env.Space().Size(); id++ {
			p, err := pc1.UnitPrice(id)
			if err != nil {
				t.Fatal(err)
			}
			if want := 0.5 + float64(id); p != want {
				t.Fatalf("price of %d = %v, want %v", id, p, want)
			}
		}
	}
	if got := env.priceCalls.Load(); got != int64(env.Space().Size()) {
		t.Fatalf("environment fetched %d prices, want one per config (%d)", got, env.Space().Size())
	}

	// A different environment instance on the same space must not share
	// fetched prices: its price list may differ.
	env2 := &countingEnv{space: testSpace(t)}
	if a.PriceCache(env2) == pc1 {
		t.Fatal("distinct environment instances share a price cache")
	}
}

func TestWrapEnv(t *testing.T) {
	canonical := testSpace(t)
	env := &countingEnv{space: testSpace(t)}
	w := WrapEnv(env, canonical)
	if w == optimizer.Environment(env) {
		t.Fatal("wrapper expected for a non-canonical space")
	}
	if w.Space() != canonical {
		t.Fatal("wrapper does not report the canonical space")
	}
	cfg, err := canonical.Config(3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Run(cfg)
	if err != nil || tr.Config.ID != 3 {
		t.Fatalf("wrapped Run: %+v, %v", tr, err)
	}
	if _, stateful := w.(optimizer.StatefulEnvironment); stateful {
		t.Fatal("plain environment wrapped as stateful")
	}

	// An environment already on the canonical instance passes through.
	envC := &countingEnv{space: canonical}
	if WrapEnv(envC, canonical) != optimizer.Environment(envC) {
		t.Fatal("canonical-space environment was wrapped")
	}
}

func TestCachePutGetEviction(t *testing.T) {
	c := NewCache[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %v %v", v, ok)
	}
	c.Put("c", 3) // evicts "a" (oldest)
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("b = %v %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %v %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Overwriting a key must not grow the order bookkeeping.
	c.Put("b", 20)
	if v, _ := c.Get("b"); v != 20 {
		t.Fatal("overwrite lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len after overwrite = %d, want 2", c.Len())
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache[int](8)
	const goroutines = 12
	var leaders atomic.Int64
	var wg sync.WaitGroup
	vals := make([]int, goroutines)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, claim := c.GetOrClaim("k")
			if claim != nil {
				leaders.Add(1)
				claim.Publish(42)
				v = 42
			}
			vals[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d leaders for one key, want 1", got)
	}
	for i, v := range vals {
		if v != 42 {
			t.Fatalf("goroutine %d saw %d, want 42", i, v)
		}
	}
}

func TestCacheAbandonElectsNewLeader(t *testing.T) {
	c := NewCache[int](8)
	_, claim := c.GetOrClaim("k")
	if claim == nil {
		t.Fatal("first caller did not become leader")
	}

	got := make(chan int, 1)
	go func() {
		v, cl2 := c.GetOrClaim("k")
		if cl2 != nil {
			// This goroutine became the next leader after the abandon.
			cl2.Publish(7)
			v = 7
		}
		got <- v
	}()
	claim.Abandon()
	if v := <-got; v != 7 {
		t.Fatalf("waiter saw %d, want 7", v)
	}
	if v, ok := c.Get("k"); !ok || v != 7 {
		t.Fatalf("cache holds %v %v, want 7", v, ok)
	}
	// Abandon after done is a no-op.
	claim.Abandon()
	claim.Publish(99)
	if v, _ := c.Get("k"); v != 7 {
		t.Fatal("done claim mutated the cache")
	}
}

// TestCacheConcurrentMixed exercises Get/Put/GetOrClaim from many goroutines
// for the race detector.
func TestCacheConcurrentMixed(t *testing.T) {
	c := NewCache[int](4)
	keys := []string{"a", "b", "c", "d", "e", "f"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g+i)%len(keys)]
				switch i % 3 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				default:
					if _, claim := c.GetOrClaim(k); claim != nil {
						if i%2 == 0 {
							claim.Publish(i)
						} else {
							claim.Abandon()
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
