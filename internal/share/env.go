package share

import (
	"repro/internal/configspace"
	"repro/internal/optimizer"
)

// WrapEnv returns an environment identical to inner except that Space()
// reports the canonical space instance. The canonical space is content-equal
// to inner's own (same digest, same IDs, same feature bits), so the wrapper
// changes which backing arrays campaigns read, never what any trial or
// decision computes. When inner already reports the canonical instance it is
// returned unchanged.
//
// Stateful environments (optimizer.StatefulEnvironment) keep their snapshot
// hooks through the wrapper, so shared campaigns snapshot and resume exactly
// like isolated ones.
func WrapEnv(inner optimizer.Environment, canonical *configspace.Space) optimizer.Environment {
	if inner.Space() == canonical {
		return inner
	}
	w := wrappedEnv{inner: inner, space: canonical}
	if _, ok := inner.(optimizer.StatefulEnvironment); ok {
		return &statefulWrappedEnv{w}
	}
	return &w
}

type wrappedEnv struct {
	inner optimizer.Environment
	space *configspace.Space
}

func (e *wrappedEnv) Space() *configspace.Space { return e.space }

func (e *wrappedEnv) Run(cfg configspace.Config) (optimizer.TrialResult, error) {
	return e.inner.Run(cfg)
}

func (e *wrappedEnv) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	return e.inner.UnitPricePerHour(cfg)
}

type statefulWrappedEnv struct {
	wrappedEnv
}

func (e *statefulWrappedEnv) EnvState() ([]byte, error) {
	return e.inner.(optimizer.StatefulEnvironment).EnvState()
}

func (e *statefulWrappedEnv) RestoreEnvState(data []byte) error {
	return e.inner.(optimizer.StatefulEnvironment).RestoreEnvState(data)
}
