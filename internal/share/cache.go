package share

import (
	"sync"
	"sync/atomic"
)

// Cache is a bounded, copy-on-write key/value cache with single-flight
// claims. Get is lock-free (one atomic load plus one map read); Put and
// Publish copy the map, so the cache is meant for values that are expensive
// to compute and cheap to store — fitted model sets, planning decisions.
//
// GetOrClaim adds the single-flight discipline campaigns in lockstep need:
// the first caller of a missing key becomes its leader and receives a Claim,
// every concurrent caller of the same key blocks until the leader publishes
// (and then gets the value) or abandons (and then contends to become the next
// leader). Without it, N replica campaigns reaching the same decision at the
// same time would all miss and all compute.
//
// Published values are immutable by contract: the cache hands the same value
// to every reader and never copies it.
type Cache[V any] struct {
	limit int
	state atomic.Pointer[cacheState[V]]

	mu      sync.Mutex
	flights map[string]chan struct{}
}

// cacheState is one immutable snapshot of the cache contents. order holds
// the keys oldest-insertion-first and drives eviction.
type cacheState[V any] struct {
	values map[string]V
	order  []string
}

// NewCache creates a cache holding at most limit entries; when an insert
// exceeds the limit the oldest-inserted entries are evicted.
func NewCache[V any](limit int) *Cache[V] {
	if limit < 1 {
		limit = 1
	}
	return &Cache[V]{limit: limit, flights: make(map[string]chan struct{})}
}

// Get returns the published value of the key, if any. Lock-free.
func (c *Cache[V]) Get(key string) (V, bool) {
	if st := c.state.Load(); st != nil {
		if v, ok := st.values[key]; ok {
			return v, true
		}
	}
	var zero V
	return zero, false
}

// Len returns the number of published entries.
func (c *Cache[V]) Len() int {
	if st := c.state.Load(); st != nil {
		return len(st.values)
	}
	return 0
}

// Put publishes a value, waking any claim waiters of the key. The value must
// be immutable from here on.
func (c *Cache[V]) Put(key string, v V) {
	c.mu.Lock()
	c.putLocked(key, v)
	c.releaseFlightLocked(key)
	c.mu.Unlock()
}

// putLocked installs the value into a fresh state snapshot, evicting the
// oldest entries past the limit. Caller holds c.mu.
func (c *Cache[V]) putLocked(key string, v V) {
	old := c.state.Load()
	var next cacheState[V]
	if old == nil {
		next.values = make(map[string]V, 1)
	} else {
		next.values = make(map[string]V, len(old.values)+1)
		for k, val := range old.values {
			next.values[k] = val
		}
		next.order = append(next.order, old.order...)
	}
	if _, exists := next.values[key]; !exists {
		next.order = append(next.order, key)
	}
	next.values[key] = v
	for len(next.values) > c.limit && len(next.order) > 0 {
		evict := next.order[0]
		next.order = next.order[1:]
		delete(next.values, evict)
	}
	c.state.Store(&next)
}

// releaseFlightLocked closes and forgets the key's in-flight channel, if any.
// Caller holds c.mu.
func (c *Cache[V]) releaseFlightLocked(key string) {
	if ch, ok := c.flights[key]; ok {
		delete(c.flights, key)
		close(ch)
	}
}

// Claim is the leadership token of one in-flight key. Exactly one of Publish
// or Abandon must be called; until then every concurrent GetOrClaim of the
// key blocks.
type Claim[V any] struct {
	c    *Cache[V]
	key  string
	done bool
}

// Publish installs the computed value and wakes the key's waiters. The value
// must be immutable from here on.
func (cl *Claim[V]) Publish(v V) {
	if cl.done {
		return
	}
	cl.done = true
	cl.c.Put(cl.key, v)
}

// Abandon releases the claim without a value: waiters wake and contend to
// become the key's next leader. Use it on error paths.
func (cl *Claim[V]) Abandon() {
	if cl.done {
		return
	}
	cl.done = true
	cl.c.mu.Lock()
	cl.c.releaseFlightLocked(cl.key)
	cl.c.mu.Unlock()
}

// GetOrClaim returns the published value of the key (nil Claim), or makes the
// caller the key's leader (non-nil Claim, zero value). Callers finding the
// key in flight block until its leader publishes or abandons.
func (c *Cache[V]) GetOrClaim(key string) (V, *Claim[V]) {
	for {
		if v, ok := c.Get(key); ok {
			return v, nil
		}
		c.mu.Lock()
		// Re-check under the lock: a leader may have published between the
		// lock-free read and the acquisition.
		if st := c.state.Load(); st != nil {
			if v, ok := st.values[key]; ok {
				c.mu.Unlock()
				return v, nil
			}
		}
		ch, inFlight := c.flights[key]
		if !inFlight {
			c.flights[key] = make(chan struct{})
			c.mu.Unlock()
			var zero V
			return zero, &Claim[V]{c: c, key: key}
		}
		c.mu.Unlock()
		<-ch
	}
}
