// Package share implements the cross-campaign sharing layer: interned,
// immutable per-space artifacts (canonical Space, shared unit-price caches)
// and a bounded copy-on-write cache with single-flight claims that campaigns
// use to adopt each other's fitted models and planning decisions.
//
// Everything handed out by this package is either immutable after publication
// (canonical spaces, published cache values) or internally synchronized
// (price caches, the registry and cache maps themselves). Reads of published
// state are lock-free: the registry and caches swap whole maps behind an
// atomic pointer, so the steady-state lookup is one atomic load plus one map
// read, with writers paying the copy.
package share

import (
	"sync"
	"sync/atomic"

	"repro/internal/configspace"
	"repro/internal/optimizer"
)

// Registry interns one Artifact per distinct configuration space, keyed by
// the space's content digest (configspace.Space.Digest). Campaigns created on
// content-equal spaces — even distinct *Space instances — resolve to the same
// artifact and therefore share its canonical space and price caches.
type Registry struct {
	mu       sync.Mutex
	byDigest atomic.Pointer[map[string]*Artifact]
}

// NewRegistry creates an empty artifact registry.
func NewRegistry() *Registry { return &Registry{} }

// Intern returns the artifact of the space's digest, creating it on first
// use. The first space interned under a digest becomes the canonical
// instance; later content-equal spaces resolve to it. The lookup is lock-free
// once the artifact exists.
func (r *Registry) Intern(space *configspace.Space) *Artifact {
	d := space.Digest()
	if m := r.byDigest.Load(); m != nil {
		if a, ok := (*m)[d]; ok {
			return a
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.byDigest.Load()
	if old != nil {
		if a, ok := (*old)[d]; ok {
			return a
		}
	}
	a := &Artifact{digest: d, space: space, prices: make(map[optimizer.Environment]*optimizer.PriceCache)}
	next := make(map[string]*Artifact, 1)
	if old != nil {
		next = make(map[string]*Artifact, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	next[d] = a
	r.byDigest.Store(&next)
	return a
}

// Len returns the number of interned artifacts.
func (r *Registry) Len() int {
	if m := r.byDigest.Load(); m != nil {
		return len(*m)
	}
	return 0
}

// Artifact is the shared, immutable per-space state: the canonical Space
// instance (whose FeatureColumns matrix and decoded rows every campaign on
// the space reads) and one shared unit-price cache per environment instance.
type Artifact struct {
	digest string
	space  *configspace.Space

	// prices maps an environment instance to its shared price cache. Keyed
	// by instance identity, not by space: two environments on the same space
	// may charge different unit prices, so only campaigns handing in the
	// same environment value share fetched prices. Environment values must
	// be comparable (every environment in this repository is a pointer).
	mu     sync.Mutex
	prices map[optimizer.Environment]*optimizer.PriceCache
}

// Digest returns the content digest the artifact is keyed by.
func (a *Artifact) Digest() string { return a.digest }

// Space returns the canonical space instance. Read-only.
func (a *Artifact) Space() *configspace.Space { return a.space }

// PriceCache returns the shared unit-price cache of the given environment
// instance, creating it on first use. The cache fetches each configuration's
// price from the environment at most once, no matter how many campaigns on
// the artifact ask for it (optimizer.PriceCache is safe for concurrent
// lazy fetches). The cache reads prices through the canonical space, so its
// ID-keyed entries are valid for every campaign on the artifact.
func (a *Artifact) PriceCache(env optimizer.Environment) *optimizer.PriceCache {
	a.mu.Lock()
	defer a.mu.Unlock()
	if pc, ok := a.prices[env]; ok {
		return pc
	}
	pc := optimizer.NewPriceCache(WrapEnv(env, a.space))
	a.prices[env] = pc
	return pc
}
