package lhs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/configspace"
)

func gridSpace(t *testing.T, valuesPerDim ...int) *configspace.Space {
	t.Helper()
	dims := make([]configspace.Dimension, len(valuesPerDim))
	for d, n := range valuesPerDim {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		dims[d] = configspace.Dimension{Name: string(rune('a' + d)), Values: vals}
	}
	s, err := configspace.New(dims, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	return s
}

func TestSampleArgumentValidation(t *testing.T) {
	s := gridSpace(t, 4, 4)
	rng := rand.New(rand.NewSource(1))
	if _, err := Sample(nil, 2, rng); err == nil {
		t.Error("nil space should error")
	}
	if _, err := Sample(s, 2, nil); err == nil {
		t.Error("nil rng should error")
	}
	if _, err := Sample(s, 0, rng); err == nil {
		t.Error("zero sample size should error")
	}
	if _, err := Sample(s, -3, rng); err == nil {
		t.Error("negative sample size should error")
	}
}

func TestSampleReturnsDistinctConfigs(t *testing.T) {
	s := gridSpace(t, 8, 6, 4)
	rng := rand.New(rand.NewSource(7))
	got, err := Sample(s, 10, rng)
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("Sample returned %d configs, want 10", len(got))
	}
	seen := make(map[int]bool)
	for _, cfg := range got {
		if seen[cfg.ID] {
			t.Errorf("duplicate config ID %d in sample", cfg.ID)
		}
		seen[cfg.ID] = true
	}
}

func TestSampleCoversWholeSpaceWhenNTooLarge(t *testing.T) {
	s := gridSpace(t, 3, 2)
	rng := rand.New(rand.NewSource(3))
	got, err := Sample(s, 100, rng)
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	if len(got) != s.Size() {
		t.Fatalf("Sample returned %d configs, want whole space %d", len(got), s.Size())
	}
	seen := make(map[int]bool)
	for _, cfg := range got {
		seen[cfg.ID] = true
	}
	if len(seen) != s.Size() {
		t.Errorf("sample does not cover the space: %d unique of %d", len(seen), s.Size())
	}
}

func TestSampleIsDeterministicGivenSeed(t *testing.T) {
	s := gridSpace(t, 10, 10)
	a, err := Sample(s, 8, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	b, err := Sample(s, 8, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("samples diverge at %d: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
}

// TestSampleStratification verifies the defining property of LHS on an exact
// grid: when the number of samples equals the number of values of a
// dimension, every value of that dimension appears exactly once.
func TestSampleStratification(t *testing.T) {
	s := gridSpace(t, 6, 6)
	rng := rand.New(rand.NewSource(11))
	got, err := Sample(s, 6, rng)
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	for d := 0; d < 2; d++ {
		counts := make(map[int]int)
		for _, cfg := range got {
			counts[cfg.Indices[d]]++
		}
		for v := 0; v < 6; v++ {
			if counts[v] != 1 {
				t.Errorf("dimension %d value %d sampled %d times, want exactly 1 (counts=%v)",
					d, v, counts[v], counts)
			}
		}
	}
}

func TestSampleOnFilteredSpace(t *testing.T) {
	dims := []configspace.Dimension{
		{Name: "vm", Values: []float64{0, 1, 2}},
		{Name: "workers", Values: []float64{4, 8, 16, 32}},
	}
	// Exclude the largest cluster for the largest VM, as in the Scout space.
	filter := func(idx []int) bool { return !(idx[0] == 2 && idx[1] == 3) }
	s, err := configspace.New(dims, filter)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	got, err := Sample(s, 5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("Sample returned %d configs", len(got))
	}
	for _, cfg := range got {
		if cfg.Indices[0] == 2 && cfg.Indices[1] == 3 {
			t.Errorf("sample contains filtered-out configuration %+v", cfg)
		}
	}
}

func TestDefaultBootstrapSize(t *testing.T) {
	tests := []struct {
		name string
		dims []int
		want int
	}{
		// 384-point Tensorflow-like space, 5 dims: 3% of 384 = 11.52 -> 12.
		{name: "tensorflow style", dims: []int{3, 2, 2, 4, 8}, want: 12},
		// Scout-like space with 3 dims and 66 points: 3% -> 2, dims -> 3.
		{name: "small space uses dims", dims: []int{3, 2, 11}, want: 3},
		{name: "tiny space capped at size", dims: []int{2}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := gridSpace(t, tt.dims...)
			got, err := DefaultBootstrapSize(s)
			if err != nil {
				t.Fatalf("DefaultBootstrapSize error: %v", err)
			}
			if got != tt.want {
				t.Errorf("DefaultBootstrapSize = %d, want %d (space size %d)", got, tt.want, s.Size())
			}
		})
	}
	if _, err := DefaultBootstrapSize(nil); err == nil {
		t.Error("nil space should error")
	}
}

func TestQuickSampleAlwaysDistinctAndValid(t *testing.T) {
	property := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []configspace.Dimension{
			{Name: "a", Values: []float64{0, 1, 2, 3}},
			{Name: "b", Values: []float64{0, 1, 2}},
			{Name: "c", Values: []float64{0, 1}},
		}
		s, err := configspace.New(dims, nil)
		if err != nil {
			return false
		}
		n := int(nRaw%30) + 1
		got, err := Sample(s, n, rng)
		if err != nil {
			return false
		}
		want := n
		if want > s.Size() {
			want = s.Size()
		}
		if len(got) != want {
			return false
		}
		seen := make(map[int]bool)
		for _, cfg := range got {
			if cfg.ID < 0 || cfg.ID >= s.Size() || seen[cfg.ID] {
				return false
			}
			seen[cfg.ID] = true
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("LHS sample property failed: %v", err)
	}
}

// TestSampleStreamingSpace checks the streaming path: distinct, in-range,
// deterministic samples drawn without materializing the space.
func TestSampleStreamingSpace(t *testing.T) {
	values := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i)
		}
		return out
	}
	dims := []configspace.Dimension{
		{Name: "a", Values: values(40)},
		{Name: "b", Values: values(30)},
		{Name: "c", Values: values(50)},
	}
	space, err := configspace.NewStreaming(dims, nil)
	if err != nil {
		t.Fatalf("NewStreaming error: %v", err)
	}
	if space.Size() != 60_000 {
		t.Fatalf("space size = %d, want 60000", space.Size())
	}

	const n = 32
	a, err := Sample(space, n, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	if len(a) != n {
		t.Fatalf("sample size = %d, want %d", len(a), n)
	}
	seen := make(map[int]bool, n)
	for _, cfg := range a {
		if cfg.ID < 0 || cfg.ID >= space.Size() {
			t.Fatalf("sample id %d out of range", cfg.ID)
		}
		if seen[cfg.ID] {
			t.Fatalf("sample repeats config %d", cfg.ID)
		}
		seen[cfg.ID] = true
		for d, idx := range cfg.Indices {
			if cfg.Features[d] != dims[d].Values[idx] {
				t.Fatalf("config %d features inconsistent: %+v", cfg.ID, cfg)
			}
		}
	}

	// Deterministic given the rng seed.
	b, err := Sample(space, n, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("sample %d differs across identical seeds: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}

	// Every dimension should be covered reasonably evenly (stratification):
	// with 32 samples over 40 values of dimension a, no value may repeat more
	// than a handful of times.
	counts := make(map[int]int)
	for _, cfg := range a {
		counts[cfg.Indices[0]]++
	}
	for idx, c := range counts {
		if c > 4 {
			t.Errorf("dimension a value %d drawn %d times out of %d; stratification broken", idx, c, n)
		}
	}
}

// TestSampleStreamingWholeSpace covers the n >= size branch on a small
// streaming space.
func TestSampleStreamingWholeSpace(t *testing.T) {
	space, err := configspace.NewStreaming([]configspace.Dimension{
		{Name: "x", Values: []float64{1, 2, 3}},
		{Name: "y", Values: []float64{4, 5}},
	}, nil)
	if err != nil {
		t.Fatalf("NewStreaming error: %v", err)
	}
	got, err := Sample(space, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	if len(got) != space.Size() {
		t.Fatalf("sample size = %d, want the whole space (%d)", len(got), space.Size())
	}
	seen := make(map[int]bool)
	for _, cfg := range got {
		seen[cfg.ID] = true
	}
	if len(seen) != space.Size() {
		t.Fatalf("sample covers %d distinct configs, want %d", len(seen), space.Size())
	}
}
