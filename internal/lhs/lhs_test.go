package lhs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/configspace"
)

func gridSpace(t *testing.T, valuesPerDim ...int) *configspace.Space {
	t.Helper()
	dims := make([]configspace.Dimension, len(valuesPerDim))
	for d, n := range valuesPerDim {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		dims[d] = configspace.Dimension{Name: string(rune('a' + d)), Values: vals}
	}
	s, err := configspace.New(dims, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	return s
}

func TestSampleArgumentValidation(t *testing.T) {
	s := gridSpace(t, 4, 4)
	rng := rand.New(rand.NewSource(1))
	if _, err := Sample(nil, 2, rng); err == nil {
		t.Error("nil space should error")
	}
	if _, err := Sample(s, 2, nil); err == nil {
		t.Error("nil rng should error")
	}
	if _, err := Sample(s, 0, rng); err == nil {
		t.Error("zero sample size should error")
	}
	if _, err := Sample(s, -3, rng); err == nil {
		t.Error("negative sample size should error")
	}
}

func TestSampleReturnsDistinctConfigs(t *testing.T) {
	s := gridSpace(t, 8, 6, 4)
	rng := rand.New(rand.NewSource(7))
	got, err := Sample(s, 10, rng)
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("Sample returned %d configs, want 10", len(got))
	}
	seen := make(map[int]bool)
	for _, cfg := range got {
		if seen[cfg.ID] {
			t.Errorf("duplicate config ID %d in sample", cfg.ID)
		}
		seen[cfg.ID] = true
	}
}

func TestSampleCoversWholeSpaceWhenNTooLarge(t *testing.T) {
	s := gridSpace(t, 3, 2)
	rng := rand.New(rand.NewSource(3))
	got, err := Sample(s, 100, rng)
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	if len(got) != s.Size() {
		t.Fatalf("Sample returned %d configs, want whole space %d", len(got), s.Size())
	}
	seen := make(map[int]bool)
	for _, cfg := range got {
		seen[cfg.ID] = true
	}
	if len(seen) != s.Size() {
		t.Errorf("sample does not cover the space: %d unique of %d", len(seen), s.Size())
	}
}

func TestSampleIsDeterministicGivenSeed(t *testing.T) {
	s := gridSpace(t, 10, 10)
	a, err := Sample(s, 8, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	b, err := Sample(s, 8, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("samples diverge at %d: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
}

// TestSampleStratification verifies the defining property of LHS on an exact
// grid: when the number of samples equals the number of values of a
// dimension, every value of that dimension appears exactly once.
func TestSampleStratification(t *testing.T) {
	s := gridSpace(t, 6, 6)
	rng := rand.New(rand.NewSource(11))
	got, err := Sample(s, 6, rng)
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	for d := 0; d < 2; d++ {
		counts := make(map[int]int)
		for _, cfg := range got {
			counts[cfg.Indices[d]]++
		}
		for v := 0; v < 6; v++ {
			if counts[v] != 1 {
				t.Errorf("dimension %d value %d sampled %d times, want exactly 1 (counts=%v)",
					d, v, counts[v], counts)
			}
		}
	}
}

func TestSampleOnFilteredSpace(t *testing.T) {
	dims := []configspace.Dimension{
		{Name: "vm", Values: []float64{0, 1, 2}},
		{Name: "workers", Values: []float64{4, 8, 16, 32}},
	}
	// Exclude the largest cluster for the largest VM, as in the Scout space.
	filter := func(idx []int) bool { return !(idx[0] == 2 && idx[1] == 3) }
	s, err := configspace.New(dims, filter)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	got, err := Sample(s, 5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Sample error: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("Sample returned %d configs", len(got))
	}
	for _, cfg := range got {
		if cfg.Indices[0] == 2 && cfg.Indices[1] == 3 {
			t.Errorf("sample contains filtered-out configuration %+v", cfg)
		}
	}
}

func TestDefaultBootstrapSize(t *testing.T) {
	tests := []struct {
		name string
		dims []int
		want int
	}{
		// 384-point Tensorflow-like space, 5 dims: 3% of 384 = 11.52 -> 12.
		{name: "tensorflow style", dims: []int{3, 2, 2, 4, 8}, want: 12},
		// Scout-like space with 3 dims and 66 points: 3% -> 2, dims -> 3.
		{name: "small space uses dims", dims: []int{3, 2, 11}, want: 3},
		{name: "tiny space capped at size", dims: []int{2}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := gridSpace(t, tt.dims...)
			got, err := DefaultBootstrapSize(s)
			if err != nil {
				t.Fatalf("DefaultBootstrapSize error: %v", err)
			}
			if got != tt.want {
				t.Errorf("DefaultBootstrapSize = %d, want %d (space size %d)", got, tt.want, s.Size())
			}
		})
	}
	if _, err := DefaultBootstrapSize(nil); err == nil {
		t.Error("nil space should error")
	}
}

func TestQuickSampleAlwaysDistinctAndValid(t *testing.T) {
	property := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []configspace.Dimension{
			{Name: "a", Values: []float64{0, 1, 2, 3}},
			{Name: "b", Values: []float64{0, 1, 2}},
			{Name: "c", Values: []float64{0, 1}},
		}
		s, err := configspace.New(dims, nil)
		if err != nil {
			return false
		}
		n := int(nRaw%30) + 1
		got, err := Sample(s, n, rng)
		if err != nil {
			return false
		}
		want := n
		if want > s.Size() {
			want = s.Size()
		}
		if len(got) != want {
			return false
		}
		seen := make(map[int]bool)
		for _, cfg := range got {
			if cfg.ID < 0 || cfg.ID >= s.Size() || seen[cfg.ID] {
				return false
			}
			seen[cfg.ID] = true
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("LHS sample property failed: %v", err)
	}
}
