// Package lhs implements Latin Hypercube Sampling over discrete
// configuration spaces. Lynceus and the BO baseline use it to pick the
// initial configurations that bootstrap the cost model (paper Algorithm 1,
// line 7): LHS stratifies every dimension so that the initial sample covers
// the space more evenly than uniform random sampling.
package lhs

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/configspace"
)

// Sample draws n distinct configurations from space using Latin Hypercube
// Sampling. If n is greater than or equal to the size of the space, every
// configuration is returned (in randomized order). The rng must not be nil:
// all randomness is injected so that experiment runs are reproducible.
func Sample(space *configspace.Space, n int, rng *rand.Rand) ([]configspace.Config, error) {
	if space == nil {
		return nil, fmt.Errorf("lhs: nil space")
	}
	if rng == nil {
		return nil, fmt.Errorf("lhs: nil rng")
	}
	if n <= 0 {
		return nil, fmt.Errorf("lhs: sample size must be positive, got %d", n)
	}

	if n >= space.Size() {
		shuffled := space.Configs()
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return shuffled, nil
	}
	if space.Streaming() {
		return sampleStreaming(space, n, rng)
	}
	all := space.Configs()

	dims := space.Dimensions()
	// Build n stratified index vectors: dimension d is divided into n strata
	// over [0,1); each sample gets one stratum per dimension via a random
	// permutation, and the stratum midpointed by a random offset is mapped to
	// a discrete value index.
	targets := make([][]int, n)
	for i := range targets {
		targets[i] = make([]int, len(dims))
	}
	for d, dim := range dims {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(n)
			idx := int(math.Floor(u * float64(len(dim.Values))))
			if idx >= len(dim.Values) {
				idx = len(dim.Values) - 1
			}
			targets[i][d] = idx
		}
	}

	// Map every stratified index vector to the nearest configuration that is
	// actually part of the (possibly filtered) space, without reusing
	// configurations.
	used := make(map[int]bool, n)
	out := make([]configspace.Config, 0, n)
	for _, target := range targets {
		best, err := nearestUnused(space, all, target, used)
		if err != nil {
			return nil, err
		}
		used[best.ID] = true
		out = append(out, best)
	}
	return out, nil
}

// sampleStreaming draws n stratified configurations from a streaming space
// without materializing it: every stratified index vector is built exactly as
// in the materialized path, mapped to the nearest configuration in flat
// cross-product order (Space.NearestID, O(log |space|)), and collisions probe
// outward over neighboring IDs. The samples stay deterministic given the rng.
func sampleStreaming(space *configspace.Space, n int, rng *rand.Rand) ([]configspace.Config, error) {
	dims := space.Dimensions()
	target := make([]int, len(dims))
	perms := make([][]int, len(dims))
	offsets := make([][]float64, len(dims))
	for d := range dims {
		perms[d] = rng.Perm(n)
		offsets[d] = make([]float64, n)
		for i := 0; i < n; i++ {
			offsets[d][i] = rng.Float64()
		}
	}

	used := make(map[int]bool, n)
	out := make([]configspace.Config, 0, n)
	for i := 0; i < n; i++ {
		for d, dim := range dims {
			u := (float64(perms[d][i]) + offsets[d][i]) / float64(n)
			idx := int(math.Floor(u * float64(len(dim.Values))))
			if idx >= len(dim.Values) {
				idx = len(dim.Values) - 1
			}
			target[d] = idx
		}
		id, ok := space.NearestID(target)
		if !ok {
			return nil, fmt.Errorf("lhs: stratified target %v outside the space", target)
		}
		for delta := 1; used[id]; delta++ {
			if lower := id - delta; lower >= 0 && !used[lower] {
				id = lower
				break
			}
			if higher := id + delta; higher < space.Size() && !used[higher] {
				id = higher
				break
			}
			if delta > space.Size() {
				return nil, fmt.Errorf("lhs: no unused configuration available")
			}
		}
		used[id] = true
		cfg, err := space.Config(id)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// nearestUnused returns the configuration of the space closest to the target
// index vector (normalized per-dimension distance) that has not been used
// yet. Ties are broken by the lower configuration ID so the mapping is
// deterministic given the rng-generated targets.
func nearestUnused(space *configspace.Space, all []configspace.Config, target []int, used map[int]bool) (configspace.Config, error) {
	dims := space.Dimensions()
	bestDist := math.Inf(1)
	bestIdx := -1
	for i, cfg := range all {
		if used[cfg.ID] {
			continue
		}
		dist := 0.0
		for d := range target {
			span := float64(len(dims[d].Values) - 1)
			if span == 0 {
				span = 1
			}
			delta := float64(cfg.Indices[d]-target[d]) / span
			dist += delta * delta
		}
		if dist < bestDist {
			bestDist = dist
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return configspace.Config{}, fmt.Errorf("lhs: no unused configuration available")
	}
	return all[bestIdx], nil
}

// DefaultBootstrapSize returns the number of initial samples used to
// bootstrap the optimizer for a space: the maximum between 3% of the space
// cardinality and the number of dimensions (paper §5.2, default settings).
func DefaultBootstrapSize(space *configspace.Space) (int, error) {
	if space == nil {
		return 0, fmt.Errorf("lhs: nil space")
	}
	byFraction := int(math.Ceil(0.03 * float64(space.Size())))
	n := space.NumDimensions()
	if byFraction > n {
		n = byFraction
	}
	if n < 1 {
		n = 1
	}
	if n > space.Size() {
		n = space.Size()
	}
	return n, nil
}
