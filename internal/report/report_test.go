package report

import (
	"strings"
	"testing"
)

func TestTableAddRowPadsAndTruncates(t *testing.T) {
	tbl := Table{Columns: []string{"a", "b", "c"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("1", "2", "3", "4")
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "" {
		t.Errorf("short row not padded: %v", tbl.Rows[0])
	}
	if len(tbl.Rows[1]) != 3 {
		t.Errorf("long row not truncated: %v", tbl.Rows[1])
	}
}

func TestTableValidate(t *testing.T) {
	empty := Table{}
	if err := empty.Validate(); err == nil {
		t.Error("table without columns should be invalid")
	}
	bad := Table{Columns: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if err := bad.Validate(); err == nil {
		t.Error("row with wrong arity should be invalid")
	}
	if err := bad.WriteASCII(&strings.Builder{}); err == nil {
		t.Error("WriteASCII should propagate validation errors")
	}
	if err := bad.WriteCSV(&strings.Builder{}); err == nil {
		t.Error("WriteCSV should propagate validation errors")
	}
}

func TestWriteASCII(t *testing.T) {
	tbl := Table{Title: "demo", Columns: []string{"optimizer", "cno"}}
	tbl.AddRow("lynceus", "1.00")
	tbl.AddRow("bo", "1.73")
	var sb strings.Builder
	if err := tbl.WriteASCII(&sb); err != nil {
		t.Fatalf("WriteASCII error: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "# demo") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "optimizer  cno") {
		t.Errorf("missing aligned header: %q", out)
	}
	if !strings.Contains(out, "lynceus") || !strings.Contains(out, "1.73") {
		t.Errorf("missing data rows: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines (title, header, separator, 2 rows), got %d: %q", len(lines), out)
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := Table{Columns: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV error: %v", err)
	}
	if sb.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", sb.String())
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatFloat(1.23456, 2); got != "1.23" {
		t.Errorf("FormatFloat = %q", got)
	}
	if got := FormatFloat(2, 0); got != "2" {
		t.Errorf("FormatFloat = %q", got)
	}
	if got := FormatInt(42); got != "42" {
		t.Errorf("FormatInt = %q", got)
	}
}
