// Package report renders experiment results as aligned ASCII tables and CSV,
// the formats emitted by the lynceus-exp command and recorded in
// EXPERIMENTS.md.
package report

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold one cell per column.
	Rows [][]string
}

// AddRow appends a row, padding or truncating it to the number of columns.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Validate checks the table's shape.
func (t *Table) Validate() error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: row %d has %d cells, want %d", i, len(row), len(t.Columns))
		}
	}
	return nil
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("# " + t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	separators := make([]string, len(t.Columns))
	for i, w := range widths {
		separators[i] = strings.Repeat("-", w)
	}
	writeRow(separators)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("report: writing table: %w", err)
	}
	return nil
}

// WriteCSV renders the table as CSV (no quoting of cells; experiment cells
// never contain commas).
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("report: writing CSV: %w", err)
	}
	return nil
}

// FormatFloat renders a float with the given number of decimal places.
func FormatFloat(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// FormatInt renders an integer.
func FormatInt(v int) string { return strconv.Itoa(v) }
