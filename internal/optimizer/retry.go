package optimizer

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/configspace"
)

// DefaultBackoffMax caps the exponential backoff when RetryPolicy.BackoffMax
// is unset.
const DefaultBackoffMax = 30 * time.Second

// RunError is the structured failure of one profiling attempt. Environments
// (and the fault-injection wrapper) return it to tell the retry loop two
// things a bare error cannot: how much money the failed run burned — failed
// cloud runs still bill for the instance-hours they consumed — and whether
// retrying the same configuration can plausibly succeed.
type RunError struct {
	// Err is the underlying failure.
	Err error
	// CostUSD is the monetary cost of the failed attempt, charged against the
	// campaign budget even though no measurement was obtained.
	CostUSD float64
	// Transient marks failures worth retrying (spot preemption, network
	// partition, straggler kill). Non-transient failures skip the remaining
	// attempts: the configuration is quarantined or the campaign aborts,
	// per RetryPolicy.Quarantine.
	Transient bool
}

// Error implements error.
func (e *RunError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("optimizer: %s run failure (%.4f$ charged): %v", kind, e.CostUSD, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// RetryPolicy governs how RunTrialWithRetry treats profiling failures. The
// zero value reproduces the historical behavior: a single attempt, no
// timeout, and a terminal error on failure.
//
// All retry decisions are deterministic: the backoff jitter is a pure
// function of (seed, configID, attempt), so a replayed campaign waits the
// exact same durations — and a test that stubs Sleep observes the exact same
// schedule — regardless of wall-clock or worker count.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per configuration
	// (first try included); values below 1 mean 1.
	MaxAttempts int
	// Timeout is the per-attempt wall-clock limit; 0 disables it. A timed-out
	// attempt counts as a transient failure (ErrTrialTimeout). Note that the
	// goroutine running Environment.Run is abandoned, not killed — timeouts
	// are a safety net for real clouds, not a determinism mechanism; use the
	// fault-injection wrapper to simulate stragglers deterministically.
	Timeout time.Duration
	// BackoffBase is the delay before the first retry; it doubles per attempt
	// (capped at BackoffMax) with deterministic jitter in [50%,100%].
	// 0 disables backoff entirely.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff; 0 means DefaultBackoffMax.
	BackoffMax time.Duration
	// Quarantine selects graceful degradation: a configuration that exhausts
	// its attempts is quarantined — excluded from every future candidate set —
	// and the campaign continues. When false, exhausting the attempts aborts
	// the campaign with an error wrapping ErrRunFailed.
	Quarantine bool
	// Sleep replaces time.Sleep between attempts (tests inject a recorder);
	// nil means time.Sleep. Never serialized: resumed campaigns fall back to
	// time.Sleep unless the caller re-supplies it.
	Sleep func(time.Duration)
}

// Validate checks the policy.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("optimizer: negative retry attempts %d", p.MaxAttempts)
	}
	if p.Timeout < 0 || p.BackoffBase < 0 || p.BackoffMax < 0 {
		return fmt.Errorf("optimizer: negative retry durations (timeout %v, backoff base %v, backoff max %v)",
			p.Timeout, p.BackoffBase, p.BackoffMax)
	}
	return nil
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the delay before the given retry (attempt 1 = first retry):
// BackoffBase·2^(attempt-1), capped at BackoffMax, scaled by a deterministic
// jitter factor in [0.5,1] drawn from (seed, configID, attempt).
func (p RetryPolicy) Backoff(seed int64, configID, attempt int) time.Duration {
	if p.BackoffBase <= 0 || attempt < 1 {
		return 0
	}
	maxDelay := p.BackoffMax
	if maxDelay <= 0 {
		maxDelay = DefaultBackoffMax
	}
	d := p.BackoffBase
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	jitter := 0.5 + 0.5*unitDraw(uint64(seed), uint64(configID), uint64(attempt))
	return time.Duration(jitter * float64(d))
}

func (p RetryPolicy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// splitmix64 is the SplitMix64 finalizer used to derive the deterministic
// fault-tolerance streams (backoff jitter, bootstrap resampling).
func splitmix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unitDraw hashes three stream coordinates into a uniform float64 in [0,1).
func unitDraw(a, b, c uint64) float64 {
	x := a*0x9E3779B97F4A7C15 + b*0xD1B54A32D192ED03 + c*0x94D049BB133111EB + 0x8CB92BA72F3D8DD7
	return float64(splitmix64(x)>>11) / (1 << 53)
}

// runOnce executes one profiling attempt under the optional per-trial
// timeout. On timeout the run's goroutine is abandoned (its eventual result
// is discarded) and a transient RunError wrapping ErrTrialTimeout is
// returned.
func runOnce(env Environment, cfg configspace.Config, timeout time.Duration) (TrialResult, error) {
	if timeout <= 0 {
		return env.Run(cfg)
	}
	type outcome struct {
		trial TrialResult
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		t, err := env.Run(cfg)
		ch <- outcome{trial: t, err: err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.trial, o.err
	case <-timer.C:
		return TrialResult{}, &RunError{
			Err:       fmt.Errorf("%w: config %d exceeded %v", ErrTrialTimeout, cfg.ID, timeout),
			Transient: true,
		}
	}
}

// RunTrialWithRetry profiles a configuration under opts.Retry, charging every
// attempt — failed ones included — against the budget, and updates the
// history exactly like RunTrial on success.
//
// Return values: (trial, true, nil) on success; (zero, false, nil) when the
// configuration exhausted its attempts and was quarantined
// (opts.Retry.Quarantine); (zero, false, err) on a terminal failure — the
// error wraps both ErrRunFailed and the last underlying attempt error.
// Failures wrapping ErrEnvironmentFatal are always terminal, regardless of
// the policy.
func RunTrialWithRetry(env Environment, cfg configspace.Config, h *History, budget *Budget, opts Options) (TrialResult, bool, error) {
	policy := opts.Retry
	attempts := policy.attempts()
	var lastErr error
	made := 0
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			policy.sleep(policy.Backoff(opts.Seed, cfg.ID, attempt))
		}
		trial, err := runOnce(env, cfg, policy.Timeout)
		made = attempt + 1
		if err == nil {
			expense := trial.Cost
			if opts.SetupCost != nil {
				expense += opts.SetupCost(h.Deployed(), cfg)
			}
			if err := budget.Spend(expense); err != nil {
				return TrialResult{}, false, err
			}
			h.Add(trial)
			return trial, true, nil
		}
		lastErr = err
		var runErr *RunError
		if errors.As(err, &runErr) {
			if runErr.CostUSD > 0 {
				if err := budget.Spend(runErr.CostUSD); err != nil {
					return TrialResult{}, false, err
				}
			}
			if errors.Is(err, ErrEnvironmentFatal) {
				break
			}
			if !runErr.Transient {
				break
			}
			continue
		}
		// Errors without failure metadata are treated as permanent: an
		// environment that wants its failures retried signals so explicitly
		// with RunError.Transient.
		break
	}
	if errors.Is(lastErr, ErrEnvironmentFatal) {
		return TrialResult{}, false, fmt.Errorf("%w: config %d on attempt %d: %w", ErrRunFailed, cfg.ID, made, lastErr)
	}
	if policy.Quarantine {
		h.MarkQuarantined(cfg.ID)
		return TrialResult{}, false, nil
	}
	return TrialResult{}, false, fmt.Errorf("%w: config %d after %d attempt(s): %w", ErrRunFailed, cfg.ID, made, lastErr)
}
