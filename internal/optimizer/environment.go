package optimizer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/configspace"
	"repro/internal/dataset"
	"repro/internal/lhs"
)

// JobEnvironment replays a profiled dataset.Job as an Environment: running a
// configuration returns the measurement stored in the lookup table, exactly
// as in the paper's simulation-based evaluation (§5.2).
type JobEnvironment struct {
	job *dataset.Job
}

// NewJobEnvironment wraps a dataset job.
func NewJobEnvironment(job *dataset.Job) (*JobEnvironment, error) {
	if job == nil {
		return nil, errors.New("optimizer: nil job")
	}
	return &JobEnvironment{job: job}, nil
}

// Job returns the wrapped dataset job.
func (e *JobEnvironment) Job() *dataset.Job { return e.job }

// Space implements Environment.
func (e *JobEnvironment) Space() *configspace.Space { return e.job.Space() }

// Run implements Environment by replaying the stored measurement.
func (e *JobEnvironment) Run(cfg configspace.Config) (TrialResult, error) {
	m, err := e.job.Measurement(cfg.ID)
	if err != nil {
		return TrialResult{}, fmt.Errorf("optimizer: replaying config %d: %w", cfg.ID, err)
	}
	extra := map[string]float64(nil)
	if len(m.Extra) > 0 {
		extra = make(map[string]float64, len(m.Extra))
		for k, v := range m.Extra {
			extra[k] = v
		}
	}
	return TrialResult{
		Config:           cfg.Clone(),
		RuntimeSeconds:   m.RuntimeSeconds,
		UnitPricePerHour: m.UnitPricePerHour,
		Cost:             m.Cost,
		TimedOut:         m.TimedOut,
		Extra:            extra,
	}, nil
}

// UnitPricePerHour implements Environment: the rental price is known without
// running the job.
func (e *JobEnvironment) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	m, err := e.job.Measurement(cfg.ID)
	if err != nil {
		return 0, fmt.Errorf("optimizer: looking up unit price of config %d: %w", cfg.ID, err)
	}
	return m.UnitPricePerHour, nil
}

// PriceCache memoizes unit prices by configuration ID, fetching them from
// the environment the first time a configuration is priced. Prices are known
// a priori (cloud price lists), so optimizers fetch them lazily per
// considered candidate instead of sweeping the whole space up front — which
// is what keeps huge streaming spaces cheap to plan over. A zero entry means
// "not fetched yet"; environments must report strictly positive prices.
//
// Safe for concurrent lazy fetches: hits take a shared read lock, and
// concurrent first fetches of one ID agree because prices are deterministic
// per ID. Under contention the environment may be queried more than once for
// the same ID, but every caller observes the same value.
type PriceCache struct {
	env    Environment
	space  *configspace.Space
	mu     sync.RWMutex
	prices []float64
}

// NewPriceCache creates a price cache over the environment's space.
func NewPriceCache(env Environment) *PriceCache {
	return &PriceCache{env: env, space: env.Space(), prices: make([]float64, env.Space().Size())}
}

// UnitPrice returns the memoized unit price of the configuration with the
// given ID, fetching and validating it on first use.
func (c *PriceCache) UnitPrice(id int) (float64, error) {
	c.mu.RLock()
	v := c.prices[id]
	c.mu.RUnlock()
	if v > 0 {
		return v, nil
	}
	cfg, err := c.space.ConfigView(id)
	if err != nil {
		return 0, err
	}
	price, err := c.env.UnitPricePerHour(cfg)
	if err != nil {
		return 0, fmt.Errorf("optimizer: unit price of config %d: %w", id, err)
	}
	if price <= 0 {
		return 0, fmt.Errorf("optimizer: non-positive unit price %v for config %d", price, id)
	}
	c.mu.Lock()
	c.prices[id] = price
	c.mu.Unlock()
	return price, nil
}

// ResolveBootstrapSize returns the bootstrap size to use: the explicit option
// when positive, otherwise the paper default max(3%·|space|, #dimensions).
func ResolveBootstrapSize(space *configspace.Space, opts Options) (int, error) {
	if opts.BootstrapSize > 0 {
		if opts.BootstrapSize > space.Size() {
			return space.Size(), nil
		}
		return opts.BootstrapSize, nil
	}
	return lhs.DefaultBootstrapSize(space)
}

// RunTrial profiles a configuration and updates the history and budget
// (the Update function of Algorithm 1). The setup cost, when configured, is
// charged against the budget on top of the run cost.
func RunTrial(env Environment, cfg configspace.Config, h *History, budget *Budget, setup SetupCostFunc) (TrialResult, error) {
	trial, err := env.Run(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	expense := trial.Cost
	if setup != nil {
		expense += setup(h.Deployed(), cfg)
	}
	if err := budget.Spend(expense); err != nil {
		return TrialResult{}, err
	}
	h.Add(trial)
	return trial, nil
}

// Bootstrap profiles n configurations chosen by Latin Hypercube Sampling and
// records them in the history (Algorithm 1, lines 6-8).
func Bootstrap(env Environment, n int, rng *rand.Rand, h *History, budget *Budget, setup SetupCostFunc) error {
	if n <= 0 {
		return fmt.Errorf("optimizer: bootstrap size must be positive, got %d", n)
	}
	samples, err := lhs.Sample(env.Space(), n, rng)
	if err != nil {
		return fmt.Errorf("optimizer: bootstrap sampling: %w", err)
	}
	for _, cfg := range samples {
		if _, err := RunTrial(env, cfg, h, budget, setup); err != nil {
			return fmt.Errorf("optimizer: bootstrap trial on config %d: %w", cfg.ID, err)
		}
	}
	return nil
}
