package optimizer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/configspace"
	"repro/internal/dataset"
	"repro/internal/lhs"
)

// JobEnvironment replays a profiled dataset.Job as an Environment: running a
// configuration returns the measurement stored in the lookup table, exactly
// as in the paper's simulation-based evaluation (§5.2).
type JobEnvironment struct {
	job *dataset.Job
}

// NewJobEnvironment wraps a dataset job.
func NewJobEnvironment(job *dataset.Job) (*JobEnvironment, error) {
	if job == nil {
		return nil, errors.New("optimizer: nil job")
	}
	return &JobEnvironment{job: job}, nil
}

// Job returns the wrapped dataset job.
func (e *JobEnvironment) Job() *dataset.Job { return e.job }

// Space implements Environment.
func (e *JobEnvironment) Space() *configspace.Space { return e.job.Space() }

// Run implements Environment by replaying the stored measurement.
func (e *JobEnvironment) Run(cfg configspace.Config) (TrialResult, error) {
	m, err := e.job.Measurement(cfg.ID)
	if err != nil {
		return TrialResult{}, fmt.Errorf("optimizer: replaying config %d: %w", cfg.ID, err)
	}
	extra := map[string]float64(nil)
	if len(m.Extra) > 0 {
		extra = make(map[string]float64, len(m.Extra))
		for k, v := range m.Extra {
			extra[k] = v
		}
	}
	return TrialResult{
		Config:           cfg.Clone(),
		RuntimeSeconds:   m.RuntimeSeconds,
		UnitPricePerHour: m.UnitPricePerHour,
		Cost:             m.Cost,
		TimedOut:         m.TimedOut,
		Extra:            extra,
	}, nil
}

// UnitPricePerHour implements Environment: the rental price is known without
// running the job.
func (e *JobEnvironment) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	m, err := e.job.Measurement(cfg.ID)
	if err != nil {
		return 0, fmt.Errorf("optimizer: looking up unit price of config %d: %w", cfg.ID, err)
	}
	return m.UnitPricePerHour, nil
}

// PriceCache memoizes unit prices by configuration ID, fetching them from
// the environment the first time a configuration is priced. Prices are known
// a priori (cloud price lists), so optimizers fetch them lazily per
// considered candidate instead of sweeping the whole space up front — which
// is what keeps huge streaming spaces cheap to plan over. A zero entry means
// "not fetched yet"; environments must report strictly positive prices.
//
// Safe for concurrent lazy fetches: hits take a shared read lock, and
// concurrent first fetches of one ID agree because prices are deterministic
// per ID. Under contention the environment may be queried more than once for
// the same ID, but every caller observes the same value.
type PriceCache struct {
	env    Environment
	space  *configspace.Space
	mu     sync.RWMutex
	prices []float64
}

// NewPriceCache creates a price cache over the environment's space.
func NewPriceCache(env Environment) *PriceCache {
	return &PriceCache{env: env, space: env.Space(), prices: make([]float64, env.Space().Size())}
}

// UnitPrice returns the memoized unit price of the configuration with the
// given ID, fetching and validating it on first use.
func (c *PriceCache) UnitPrice(id int) (float64, error) {
	c.mu.RLock()
	v := c.prices[id]
	c.mu.RUnlock()
	if v > 0 {
		return v, nil
	}
	cfg, err := c.space.ConfigView(id)
	if err != nil {
		return 0, err
	}
	price, err := c.env.UnitPricePerHour(cfg)
	if err != nil {
		return 0, fmt.Errorf("optimizer: unit price of config %d: %w", id, err)
	}
	if price <= 0 {
		return 0, fmt.Errorf("optimizer: non-positive unit price %v for config %d", price, id)
	}
	c.mu.Lock()
	c.prices[id] = price
	c.mu.Unlock()
	return price, nil
}

// ResolveBootstrapSize returns the bootstrap size to use: the explicit option
// when positive, otherwise the paper default max(3%·|space|, #dimensions).
func ResolveBootstrapSize(space *configspace.Space, opts Options) (int, error) {
	if opts.BootstrapSize > 0 {
		if opts.BootstrapSize > space.Size() {
			return space.Size(), nil
		}
		return opts.BootstrapSize, nil
	}
	return lhs.DefaultBootstrapSize(space)
}

// RunTrial profiles a configuration and updates the history and budget
// (the Update function of Algorithm 1). The setup cost, when configured, is
// charged against the budget on top of the run cost.
func RunTrial(env Environment, cfg configspace.Config, h *History, budget *Budget, setup SetupCostFunc) (TrialResult, error) {
	trial, err := env.Run(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	expense := trial.Cost
	if setup != nil {
		expense += setup(h.Deployed(), cfg)
	}
	if err := budget.Spend(expense); err != nil {
		return TrialResult{}, err
	}
	h.Add(trial)
	return trial, nil
}

// Bootstrapper runs the LHS bootstrap phase (Algorithm 1, lines 6-8) one
// probe at a time, so campaign drivers can checkpoint between probes. It is
// resilient to failed probes: a configuration that exhausts its retry
// attempts is quarantined, its failed-attempt costs are charged, and a
// deterministic replacement is drawn so the phase still yields n training
// samples — a single flaky cloud run no longer aborts the whole campaign.
//
// Replacement draws come from a counter-indexed SplitMix64 stream seeded by
// Options.Seed, never from the shared *rand.Rand — so fault-free runs consume
// exactly the same random stream as before (only lhs.Sample draws from rng),
// and a resumed campaign replays the draws by restoring the probe and draw
// counters (State/Restore).
type Bootstrapper struct {
	env          Environment
	plan         []configspace.Config
	target       int
	resampleSeed uint64
	probeIdx     int
	draws        int
	successes    int
	finished     bool
}

// NewBootstrapper plans the bootstrap phase: n LHS probes drawn from rng.
func NewBootstrapper(env Environment, n int, rng *rand.Rand, opts Options) (*Bootstrapper, error) {
	if n <= 0 {
		return nil, fmt.Errorf("optimizer: bootstrap size must be positive, got %d", n)
	}
	samples, err := lhs.Sample(env.Space(), n, rng)
	if err != nil {
		return nil, fmt.Errorf("optimizer: bootstrap sampling: %w", err)
	}
	return &Bootstrapper{
		env:          env,
		plan:         samples,
		target:       n,
		resampleSeed: splitmix64(uint64(opts.Seed)*0x9E3779B97F4A7C15 + 0xB5297A4D3BD6F0AD),
	}, nil
}

// Target returns the number of training samples the phase aims for.
func (b *Bootstrapper) Target() int { return b.target }

// Done reports whether the bootstrap phase is over: the target number of
// samples was gathered, or the space ran out of profilable configurations
// mid-phase.
func (b *Bootstrapper) Done() bool { return b.finished || b.successes >= b.target }

// State returns the phase's progress for checkpointing: the index of the next
// planned probe, the number of replacement draws consumed, the number of
// probes profiled successfully, and whether the phase ended early.
func (b *Bootstrapper) State() (probeIdx, draws, successes int, finished bool) {
	return b.probeIdx, b.draws, b.successes, b.finished
}

// Restore rewinds/advances the progress counters to a checkpointed state.
func (b *Bootstrapper) Restore(probeIdx, draws, successes int, finished bool) error {
	if probeIdx < 0 || probeIdx > len(b.plan) || draws < 0 || successes < 0 || successes > b.target {
		return fmt.Errorf("optimizer: invalid bootstrap state (probe %d of %d, %d draws, %d successes)",
			probeIdx, len(b.plan), draws, successes)
	}
	b.probeIdx = probeIdx
	b.draws = draws
	b.successes = successes
	b.finished = finished
	return nil
}

// nextProbe returns the next configuration to profile: the next planned probe
// that is still profilable, then deterministic replacement draws once the
// plan is consumed (quarantined probes leave a hole to fill). Returns false
// when no profilable configuration remains.
func (b *Bootstrapper) nextProbe(h *History) (configspace.Config, bool) {
	for b.probeIdx < len(b.plan) {
		cfg := b.plan[b.probeIdx]
		b.probeIdx++
		if !h.Excluded(cfg.ID) {
			return cfg, true
		}
	}
	space := b.env.Space()
	total := space.Size()
	if h.ExcludedCount() >= total {
		return configspace.Config{}, false
	}
	// Rejection-sample replacements from the counter-indexed stream; the
	// excluded fraction is tiny in practice, so a handful of draws suffice.
	// The dense endgame falls back to the smallest non-excluded ID, which is
	// equally deterministic.
	for k := 0; k < 64; k++ {
		b.draws++
		id := int(splitmix64(b.resampleSeed+uint64(b.draws)*0x9E3779B97F4A7C15) % uint64(total))
		if h.Excluded(id) {
			continue
		}
		if cfg, err := space.Config(id); err == nil {
			return cfg, true
		}
	}
	for id := 0; id < total; id++ {
		if !h.Excluded(id) {
			if cfg, err := space.Config(id); err == nil {
				return cfg, true
			}
		}
	}
	return configspace.Config{}, false
}

// Step profiles one bootstrap probe (including its retries) and reports
// whether the phase is over. Probes that exhaust their retry attempts are
// always quarantined and replaced — the campaign aborts only on fatal
// environment failures (ErrEnvironmentFatal) or bookkeeping errors. When the
// space runs out of profilable configurations the phase ends with the partial
// sample, or with an error wrapping ErrSpaceExhausted if not even one probe
// succeeded.
func (b *Bootstrapper) Step(h *History, budget *Budget, opts Options) (bool, error) {
	if b.Done() {
		return true, nil
	}
	cfg, ok := b.nextProbe(h)
	if !ok {
		b.finished = true
		if b.successes == 0 && h.Len() == 0 {
			return true, fmt.Errorf("optimizer: bootstrap could not profile any configuration: %w", ErrSpaceExhausted)
		}
		return true, nil
	}
	popts := opts
	popts.Retry.Quarantine = true
	_, profiled, err := RunTrialWithRetry(b.env, cfg, h, budget, popts)
	if err != nil {
		return false, fmt.Errorf("optimizer: bootstrap trial on config %d: %w", cfg.ID, err)
	}
	if profiled {
		b.successes++
	}
	return b.Done(), nil
}

// Bootstrap profiles n configurations chosen by Latin Hypercube Sampling and
// records them in the history (Algorithm 1, lines 6-8). Probes that fail
// terminally are quarantined and deterministically resampled instead of
// aborting the campaign; see Bootstrapper.
func Bootstrap(env Environment, n int, rng *rand.Rand, h *History, budget *Budget, opts Options) error {
	b, err := NewBootstrapper(env, n, rng, opts)
	if err != nil {
		return err
	}
	for {
		done, err := b.Step(h, budget, opts)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}
