// Package optimizer defines the machinery shared by every optimizer in the
// reproduction: the profiling environment abstraction, the optimization
// options (budget, runtime constraint, bootstrap size), the state that
// Algorithm 1 maintains (training set, untested configurations, remaining
// budget, currently deployed configuration), and the final recommendation
// rule.
package optimizer

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/configspace"
)

// Campaign-control sentinels. Optimizers and campaign drivers signal *why* a
// run stopped (or could not continue) with these typed errors instead of
// ad-hoc strings, so callers can branch with errors.Is.
var (
	// ErrBudgetExhausted reports that the profiling budget cannot pay for any
	// further trial: a campaign that stops with it ended normally, having
	// spent what it was given.
	ErrBudgetExhausted = errors.New("optimizer: budget exhausted")
	// ErrRunFailed reports that profiling a configuration failed terminally —
	// every attempt permitted by the retry policy errored. Terminal run errors
	// wrap both this sentinel and the underlying environment error.
	ErrRunFailed = errors.New("optimizer: profiling run failed")
	// ErrSpaceExhausted reports that no profilable configuration remains: every
	// configuration of the space has been tested or quarantined.
	ErrSpaceExhausted = errors.New("optimizer: configuration space exhausted")
	// ErrTrialTimeout reports that a profiling run exceeded the retry policy's
	// per-trial timeout. Timeouts are transient: the attempt is retried.
	ErrTrialTimeout = errors.New("optimizer: trial timed out")
	// ErrEnvironmentFatal marks environment errors that must abort the
	// campaign immediately — no retry, no quarantine — such as a revoked cloud
	// credential or an injected crash point in fault testing. Environments
	// signal it by wrapping this sentinel.
	ErrEnvironmentFatal = errors.New("optimizer: fatal environment failure")
	// ErrCampaignCancelled reports that a campaign step was stopped by its
	// context — cancellation or a deadline — between trials or between
	// planner phases. Errors carrying it also wrap the context's own error,
	// so errors.Is matches both this sentinel and context.Canceled /
	// context.DeadlineExceeded. A cancelled step records no trial; the
	// campaign's durable state is whatever the last snapshot captured, and
	// the supported recovery is resuming from it.
	ErrCampaignCancelled = errors.New("optimizer: campaign cancelled")
)

// TrialResult is the outcome of profiling the job on one configuration.
type TrialResult struct {
	// Config is the profiled configuration.
	Config configspace.Config
	// RuntimeSeconds is the measured runtime T(x).
	RuntimeSeconds float64
	// UnitPricePerHour is the cluster rental price U(x) in USD per hour.
	UnitPricePerHour float64
	// Cost is the monetary cost C(x) = T(x)·U(x) of the profiling run.
	Cost float64
	// TimedOut reports whether the run hit the forceful-termination timeout.
	TimedOut bool
	// Extra holds additional measured metrics (multi-constraint extension).
	Extra map[string]float64
}

// Feasible reports whether the trial satisfied the runtime constraint and
// every extra constraint.
func (r TrialResult) Feasible(maxRuntimeSeconds float64, extra []Constraint) bool {
	if r.TimedOut || r.RuntimeSeconds > maxRuntimeSeconds {
		return false
	}
	for _, c := range extra {
		v, ok := r.Extra[c.Metric]
		if !ok || v > c.Max {
			return false
		}
	}
	return true
}

// Environment abstracts "deploy configuration x, run the job, observe the
// runtime and cost". The paper's evaluation replays previously collected
// measurements; a production deployment would implement this interface
// against a real cloud provider.
type Environment interface {
	// Space returns the configuration space of the job.
	Space() *configspace.Space
	// Run profiles the job on the given configuration.
	Run(cfg configspace.Config) (TrialResult, error)
	// UnitPricePerHour returns U(x), which is known a priori from the cloud
	// provider's price list without running the job.
	UnitPricePerHour(cfg configspace.Config) (float64, error)
}

// StatefulEnvironment is optionally implemented by environments that carry
// mutable state beyond the space and price list (per-configuration attempt
// counters, noise-stream positions, ...). Campaign snapshots embed the state
// and restore it on resume, so environment-side randomness replays bitwise
// across a crash/resume cycle.
type StatefulEnvironment interface {
	Environment
	// EnvState serializes the environment's mutable state.
	EnvState() ([]byte, error)
	// RestoreEnvState restores state produced by EnvState.
	RestoreEnvState(data []byte) error
}

// Constraint is one "metric ≤ threshold" requirement of the multi-constraint
// extension (paper §4.4).
type Constraint struct {
	// Metric is the name of the constrained metric, matching a key of
	// TrialResult.Extra.
	Metric string
	// Max is the inclusive upper bound on the metric.
	Max float64
}

// SetupCostFunc estimates the extra monetary cost of switching the deployment
// from configuration `from` to configuration `to` (paper §4.4, setup costs).
// `from` is nil for the first deployment. Lynceus charges speculated setup
// costs from concurrent exploration-path evaluations, so implementations must
// be safe for concurrent use (pure functions are; closures mutating shared
// state need synchronization).
type SetupCostFunc func(from *configspace.Config, to configspace.Config) float64

// Options configures an optimization run.
type Options struct {
	// Budget is the total profiling budget B in USD.
	Budget float64
	// MaxRuntimeSeconds is the runtime constraint Tmax.
	MaxRuntimeSeconds float64
	// BootstrapSize is the number N of initial LHS samples; 0 selects the
	// paper default max(3%·|space|, #dimensions).
	BootstrapSize int
	// Seed drives every random choice of the run.
	Seed int64
	// ExtraConstraints lists additional constraints beyond the runtime one.
	ExtraConstraints []Constraint
	// SetupCost, when non-nil, is charged against the budget every time the
	// deployed configuration changes.
	SetupCost SetupCostFunc
	// Retry governs how trial failures are handled: attempts per
	// configuration, per-trial timeout, backoff between attempts, and whether
	// a configuration that exhausts its attempts is quarantined (campaign
	// continues) or aborts the run. The zero value preserves the historical
	// behavior: one attempt, no timeout, abort on failure.
	Retry RetryPolicy
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Budget <= 0 || math.IsNaN(o.Budget) {
		return fmt.Errorf("optimizer: budget must be positive, got %v", o.Budget)
	}
	if o.MaxRuntimeSeconds <= 0 || math.IsNaN(o.MaxRuntimeSeconds) {
		return fmt.Errorf("optimizer: runtime constraint must be positive, got %v", o.MaxRuntimeSeconds)
	}
	if o.BootstrapSize < 0 {
		return fmt.Errorf("optimizer: negative bootstrap size %d", o.BootstrapSize)
	}
	for _, c := range o.ExtraConstraints {
		if c.Metric == "" {
			return errors.New("optimizer: extra constraint with empty metric name")
		}
	}
	return o.Retry.Validate()
}

// Result summarizes an optimization run.
type Result struct {
	// OptimizerName identifies the optimizer that produced the result.
	OptimizerName string
	// Recommended is the configuration suggested at the end of the run: the
	// cheapest profiled configuration that satisfies every constraint, or,
	// when no profiled configuration is feasible, the cheapest profiled one.
	Recommended TrialResult
	// RecommendedFeasible reports whether Recommended satisfies the
	// constraints.
	RecommendedFeasible bool
	// Trials lists every profiling run in execution order (bootstrap
	// included).
	Trials []TrialResult
	// InitialBudget and SpentBudget track the monetary budget B and the
	// amount actually consumed.
	InitialBudget float64
	SpentBudget   float64
	// Explorations is the number of configurations profiled (NEX).
	Explorations int
}

// Optimizer is the interface implemented by Lynceus and by the baselines.
type Optimizer interface {
	// Name returns a short identifier, e.g. "lynceus-la2" or "bo".
	Name() string
	// Optimize runs the optimization loop against the environment.
	Optimize(env Environment, opts Options) (Result, error)
}

// Budget tracks the remaining optimization budget β.
type Budget struct {
	initial float64
	spent   float64
}

// NewBudget creates a budget tracker with the given initial amount.
func NewBudget(initial float64) (*Budget, error) {
	if initial <= 0 || math.IsNaN(initial) {
		return nil, fmt.Errorf("optimizer: initial budget must be positive, got %v", initial)
	}
	return &Budget{initial: initial}, nil
}

// Initial returns the initial budget B.
func (b *Budget) Initial() float64 { return b.initial }

// Spent returns the amount spent so far.
func (b *Budget) Spent() float64 { return b.spent }

// Remaining returns the remaining budget β (which may be negative if the
// bootstrap phase overshoots).
func (b *Budget) Remaining() float64 { return b.initial - b.spent }

// Spend records an expense.
func (b *Budget) Spend(amount float64) error {
	if amount < 0 || math.IsNaN(amount) {
		return fmt.Errorf("optimizer: invalid expense %v", amount)
	}
	b.spent += amount
	return nil
}

// History is the training set S plus bookkeeping about which configurations
// have been tested, which have been quarantined after exhausting their retry
// attempts, and which configuration is currently deployed.
type History struct {
	trials      []TrialResult
	tested      map[int]bool
	quarantined map[int]bool
	deployed    *configspace.Config
}

// NewHistory creates an empty history.
func NewHistory() *History {
	return &History{tested: make(map[int]bool), quarantined: make(map[int]bool)}
}

// Add records a trial and marks its configuration as tested and deployed.
func (h *History) Add(r TrialResult) {
	h.trials = append(h.trials, r)
	h.tested[r.Config.ID] = true
	delete(h.quarantined, r.Config.ID)
	cfg := r.Config.Clone()
	h.deployed = &cfg
}

// Len returns the number of recorded trials.
func (h *History) Len() int { return len(h.trials) }

// Tested reports whether the configuration with the given ID was profiled.
func (h *History) Tested(configID int) bool { return h.tested[configID] }

// MarkQuarantined excludes a configuration from future candidate sets after it
// exhausted its retry attempts. Quarantining a tested configuration is a
// no-op: its measurement is already in the training set.
func (h *History) MarkQuarantined(configID int) {
	if h.tested[configID] {
		return
	}
	h.quarantined[configID] = true
}

// Quarantined reports whether the configuration was quarantined.
func (h *History) Quarantined(configID int) bool { return h.quarantined[configID] }

// QuarantinedIDs returns the quarantined configuration IDs in increasing
// order.
func (h *History) QuarantinedIDs() []int {
	out := make([]int, 0, len(h.quarantined))
	for id := range h.quarantined {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Excluded reports whether the configuration is out of consideration for
// future trials: already profiled or quarantined. This — not Tested — is the
// predicate candidate searches must filter on.
func (h *History) Excluded(configID int) bool {
	return h.tested[configID] || h.quarantined[configID]
}

// ExcludedCount returns the number of excluded configurations. The tested and
// quarantined sets are disjoint by construction, so this is their sum.
func (h *History) ExcludedCount() int { return len(h.tested) + len(h.quarantined) }

// Deployed returns the configuration currently deployed (χ), or nil when no
// configuration has been deployed yet.
func (h *History) Deployed() *configspace.Config {
	if h.deployed == nil {
		return nil
	}
	cfg := h.deployed.Clone()
	return &cfg
}

// Trials returns a copy of the recorded trials in execution order.
func (h *History) Trials() []TrialResult {
	out := make([]TrialResult, len(h.trials))
	copy(out, h.trials)
	return out
}

// Features returns the feature matrix of the training set.
func (h *History) Features() [][]float64 {
	out := make([][]float64, len(h.trials))
	for i, tr := range h.trials {
		out[i] = append([]float64(nil), tr.Config.Features...)
	}
	return out
}

// Costs returns the cost targets of the training set.
func (h *History) Costs() []float64 {
	out := make([]float64, len(h.trials))
	for i, tr := range h.trials {
		out[i] = tr.Cost
	}
	return out
}

// ExtraMetric returns the values of one extra metric across the training set,
// for training per-constraint models in the multi-constraint extension.
// Missing values are returned as zero.
func (h *History) ExtraMetric(name string) []float64 {
	out := make([]float64, len(h.trials))
	for i, tr := range h.trials {
		out[i] = tr.Extra[name]
	}
	return out
}

// MaxCost returns the highest cost observed so far (0 when empty).
func (h *History) MaxCost() float64 {
	maxCost := 0.0
	for _, tr := range h.trials {
		if tr.Cost > maxCost {
			maxCost = tr.Cost
		}
	}
	return maxCost
}

// BestFeasible returns the cheapest trial that satisfies the constraints.
func (h *History) BestFeasible(maxRuntimeSeconds float64, extra []Constraint) (TrialResult, bool) {
	best := TrialResult{}
	found := false
	for _, tr := range h.trials {
		if !tr.Feasible(maxRuntimeSeconds, extra) {
			continue
		}
		if !found || tr.Cost < best.Cost {
			best = tr
			found = true
		}
	}
	return best, found
}

// CheapestTried returns the cheapest trial regardless of feasibility.
func (h *History) CheapestTried() (TrialResult, bool) {
	best := TrialResult{}
	found := false
	for _, tr := range h.trials {
		if !found || tr.Cost < best.Cost {
			best = tr
			found = true
		}
	}
	return best, found
}

// UntestedIDs returns the IDs of the configurations of the space that remain
// candidates for profiling — neither tested nor quarantined — in increasing
// order (the set T of Algorithm 1). It never materializes configurations, so
// it is the untested view to use on streaming spaces.
func (h *History) UntestedIDs(space *configspace.Space) []int {
	out := make([]int, 0, space.Size()-h.ExcludedCount())
	for id := 0; id < space.Size(); id++ {
		if !h.Excluded(id) {
			out = append(out, id)
		}
	}
	return out
}

// Untested returns the configurations of the space that have not been
// profiled yet, in increasing ID order. Prefer UntestedIDs where the full
// Config structs are not needed.
func (h *History) Untested(space *configspace.Space) []configspace.Config {
	ids := h.UntestedIDs(space)
	out := make([]configspace.Config, 0, len(ids))
	for _, id := range ids {
		cfg, err := space.Config(id)
		if err != nil {
			continue
		}
		out = append(out, cfg)
	}
	return out
}

// Recommend applies the paper's recommendation rule to the history: return
// the cheapest feasible configuration profiled; when none is feasible, fall
// back to the cheapest profiled configuration and report infeasibility.
func Recommend(h *History, opts Options) (TrialResult, bool, error) {
	if h.Len() == 0 {
		return TrialResult{}, false, errors.New("optimizer: cannot recommend from an empty history")
	}
	if best, ok := h.BestFeasible(opts.MaxRuntimeSeconds, opts.ExtraConstraints); ok {
		return best, true, nil
	}
	cheapest, _ := h.CheapestTried()
	return cheapest, false, nil
}

// BuildResult assembles a Result from the run's state.
func BuildResult(name string, h *History, budget *Budget, opts Options) (Result, error) {
	recommended, feasible, err := Recommend(h, opts)
	if err != nil {
		return Result{}, err
	}
	return Result{
		OptimizerName:       name,
		Recommended:         recommended,
		RecommendedFeasible: feasible,
		Trials:              h.Trials(),
		InitialBudget:       budget.Initial(),
		SpentBudget:         budget.Spent(),
		Explorations:        h.Len(),
	}, nil
}
