package optimizer

import "sync"

// ParallelFor runs fn(0..n-1) on a bounded pool of workers and returns the
// lowest-indexed error (running serially when workers <= 1). fn must only
// write to index-private state. Both the planner's path fan-out and the
// simulator's multi-seed campaigns use it, collecting results by index so
// outcomes never depend on scheduling.
func ParallelFor(workers, n int, fn func(i int) error) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
