package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/configspace"
	"repro/internal/dataset"
)

// fixtureJob builds a 3x4 job whose cost decreases with the config ID so that
// tests can reason about optima easily.
func fixtureJob(t *testing.T) *dataset.Job {
	t.Helper()
	space, err := configspace.New([]configspace.Dimension{
		{Name: "vm", Values: []float64{0, 1, 2}, Labels: []string{"s", "m", "l"}},
		{Name: "workers", Values: []float64{2, 4, 8, 16}},
	}, nil)
	if err != nil {
		t.Fatalf("configspace.New error: %v", err)
	}
	measurements := make([]dataset.Measurement, space.Size())
	for id := 0; id < space.Size(); id++ {
		runtime := float64(1200 - 90*id)
		price := 0.5 + 0.1*float64(id)
		measurements[id] = dataset.Measurement{
			ConfigID:         id,
			RuntimeSeconds:   runtime,
			UnitPricePerHour: price,
			Cost:             runtime / 3600 * price,
			Extra:            map[string]float64{"energy": float64(100 - id)},
		}
	}
	job, err := dataset.NewJob("fixture", space, measurements, 0)
	if err != nil {
		t.Fatalf("NewJob error: %v", err)
	}
	return job
}

func fixtureEnv(t *testing.T) *JobEnvironment {
	t.Helper()
	env, err := NewJobEnvironment(fixtureJob(t))
	if err != nil {
		t.Fatalf("NewJobEnvironment error: %v", err)
	}
	return env
}

func TestOptionsValidate(t *testing.T) {
	valid := Options{Budget: 10, MaxRuntimeSeconds: 600}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	invalid := []Options{
		{Budget: 0, MaxRuntimeSeconds: 600},
		{Budget: -1, MaxRuntimeSeconds: 600},
		{Budget: math.NaN(), MaxRuntimeSeconds: 600},
		{Budget: 10, MaxRuntimeSeconds: 0},
		{Budget: 10, MaxRuntimeSeconds: 600, BootstrapSize: -1},
		{Budget: 10, MaxRuntimeSeconds: 600, ExtraConstraints: []Constraint{{Metric: ""}}},
	}
	for i, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("invalid options %d accepted: %+v", i, o)
		}
	}
}

func TestTrialResultFeasible(t *testing.T) {
	tr := TrialResult{RuntimeSeconds: 100, Extra: map[string]float64{"energy": 50}}
	if !tr.Feasible(200, nil) {
		t.Error("trial within Tmax reported infeasible")
	}
	if tr.Feasible(50, nil) {
		t.Error("trial beyond Tmax reported feasible")
	}
	if !tr.Feasible(200, []Constraint{{Metric: "energy", Max: 60}}) {
		t.Error("trial within extra constraint reported infeasible")
	}
	if tr.Feasible(200, []Constraint{{Metric: "energy", Max: 40}}) {
		t.Error("trial violating extra constraint reported feasible")
	}
	if tr.Feasible(200, []Constraint{{Metric: "missing", Max: 1}}) {
		t.Error("trial missing a constrained metric reported feasible")
	}
	timedOut := TrialResult{RuntimeSeconds: 100, TimedOut: true}
	if timedOut.Feasible(200, nil) {
		t.Error("timed-out trial reported feasible")
	}
}

func TestBudget(t *testing.T) {
	if _, err := NewBudget(0); err == nil {
		t.Error("zero budget should error")
	}
	if _, err := NewBudget(math.NaN()); err == nil {
		t.Error("NaN budget should error")
	}
	b, err := NewBudget(10)
	if err != nil {
		t.Fatalf("NewBudget error: %v", err)
	}
	if b.Initial() != 10 || b.Remaining() != 10 || b.Spent() != 0 {
		t.Errorf("fresh budget state: %v/%v/%v", b.Initial(), b.Remaining(), b.Spent())
	}
	if err := b.Spend(3); err != nil {
		t.Fatalf("Spend error: %v", err)
	}
	if b.Remaining() != 7 || b.Spent() != 3 {
		t.Errorf("after spend: remaining %v spent %v", b.Remaining(), b.Spent())
	}
	if err := b.Spend(-1); err == nil {
		t.Error("negative expense should error")
	}
	// Overspending is allowed (the bootstrap phase may overshoot) but is
	// reflected in a negative remaining budget.
	if err := b.Spend(20); err != nil {
		t.Fatalf("Spend error: %v", err)
	}
	if b.Remaining() >= 0 {
		t.Errorf("remaining = %v, want negative after overspend", b.Remaining())
	}
}

func TestHistoryBookkeeping(t *testing.T) {
	env := fixtureEnv(t)
	h := NewHistory()
	if h.Len() != 0 || h.Deployed() != nil {
		t.Error("fresh history not empty")
	}
	if _, ok := h.CheapestTried(); ok {
		t.Error("CheapestTried on empty history should report not found")
	}

	cfg, err := env.Space().Config(5)
	if err != nil {
		t.Fatalf("Config error: %v", err)
	}
	trial, err := env.Run(cfg)
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	h.Add(trial)

	if h.Len() != 1 || !h.Tested(5) || h.Tested(4) {
		t.Errorf("history state after add: len=%d tested5=%v tested4=%v", h.Len(), h.Tested(5), h.Tested(4))
	}
	if got := h.Deployed(); got == nil || got.ID != 5 {
		t.Errorf("Deployed = %+v, want config 5", got)
	}
	if got := len(h.Untested(env.Space())); got != env.Space().Size()-1 {
		t.Errorf("Untested = %d, want %d", got, env.Space().Size()-1)
	}
	feats := h.Features()
	costs := h.Costs()
	if len(feats) != 1 || len(costs) != 1 {
		t.Fatalf("Features/Costs lengths: %d/%d", len(feats), len(costs))
	}
	if costs[0] != trial.Cost {
		t.Errorf("Costs[0] = %v, want %v", costs[0], trial.Cost)
	}
	if got := h.ExtraMetric("energy"); got[0] != trial.Extra["energy"] {
		t.Errorf("ExtraMetric = %v", got)
	}
	if got := h.MaxCost(); got != trial.Cost {
		t.Errorf("MaxCost = %v, want %v", got, trial.Cost)
	}
}

func TestHistoryBestFeasibleAndCheapest(t *testing.T) {
	env := fixtureEnv(t)
	h := NewHistory()
	for _, id := range []int{0, 3, 11} {
		cfg, err := env.Space().Config(id)
		if err != nil {
			t.Fatalf("Config error: %v", err)
		}
		trial, err := env.Run(cfg)
		if err != nil {
			t.Fatalf("Run error: %v", err)
		}
		h.Add(trial)
	}
	// Runtimes: cfg0=1200, cfg3=930, cfg11=210. With Tmax=1000 only 3 and 11
	// are feasible; costs are 930/3600*0.8=0.2067 and 210/3600*1.6=0.0933.
	best, ok := h.BestFeasible(1000, nil)
	if !ok || best.Config.ID != 11 {
		t.Errorf("BestFeasible = %+v, %v, want config 11", best.Config.ID, ok)
	}
	if _, ok := h.BestFeasible(100, nil); ok {
		t.Error("BestFeasible with impossible constraint should report not found")
	}
	cheapest, ok := h.CheapestTried()
	if !ok || cheapest.Config.ID != 11 {
		t.Errorf("CheapestTried = %d, %v, want 11", cheapest.Config.ID, ok)
	}
}

func TestRecommendFallsBackWhenNothingFeasible(t *testing.T) {
	env := fixtureEnv(t)
	h := NewHistory()
	cfg, err := env.Space().Config(0)
	if err != nil {
		t.Fatalf("Config error: %v", err)
	}
	trial, err := env.Run(cfg)
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	h.Add(trial)
	opts := Options{Budget: 10, MaxRuntimeSeconds: 10}
	rec, feasible, err := Recommend(h, opts)
	if err != nil {
		t.Fatalf("Recommend error: %v", err)
	}
	if feasible {
		t.Error("recommendation reported feasible with impossible constraint")
	}
	if rec.Config.ID != 0 {
		t.Errorf("recommendation = config %d, want 0", rec.Config.ID)
	}
	if _, _, err := Recommend(NewHistory(), opts); err == nil {
		t.Error("Recommend on empty history should error")
	}
}

func TestJobEnvironment(t *testing.T) {
	if _, err := NewJobEnvironment(nil); err == nil {
		t.Error("nil job should error")
	}
	env := fixtureEnv(t)
	if env.Job() == nil {
		t.Error("Job() returned nil")
	}
	cfg, err := env.Space().Config(7)
	if err != nil {
		t.Fatalf("Config error: %v", err)
	}
	trial, err := env.Run(cfg)
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	wantRuntime := float64(1200 - 90*7)
	if trial.RuntimeSeconds != wantRuntime {
		t.Errorf("runtime = %v, want %v", trial.RuntimeSeconds, wantRuntime)
	}
	price, err := env.UnitPricePerHour(cfg)
	if err != nil {
		t.Fatalf("UnitPricePerHour error: %v", err)
	}
	if math.Abs(price-(0.5+0.1*7)) > 1e-12 {
		t.Errorf("price = %v", price)
	}
	bad := configspace.Config{ID: 999}
	if _, err := env.Run(bad); err == nil {
		t.Error("running an out-of-space config should error")
	}
	if _, err := env.UnitPricePerHour(bad); err == nil {
		t.Error("pricing an out-of-space config should error")
	}
}

func TestResolveBootstrapSize(t *testing.T) {
	env := fixtureEnv(t)
	// Explicit size wins.
	n, err := ResolveBootstrapSize(env.Space(), Options{BootstrapSize: 4, Budget: 1, MaxRuntimeSeconds: 1})
	if err != nil || n != 4 {
		t.Errorf("explicit bootstrap size = %d, %v", n, err)
	}
	// Explicit size is capped at the space size.
	n, err = ResolveBootstrapSize(env.Space(), Options{BootstrapSize: 100, Budget: 1, MaxRuntimeSeconds: 1})
	if err != nil || n != env.Space().Size() {
		t.Errorf("capped bootstrap size = %d, %v", n, err)
	}
	// Default: max(3% of 12, 2 dims) = 2.
	n, err = ResolveBootstrapSize(env.Space(), Options{Budget: 1, MaxRuntimeSeconds: 1})
	if err != nil || n != 2 {
		t.Errorf("default bootstrap size = %d, %v, want 2", n, err)
	}
}

func TestRunTrialAndBootstrap(t *testing.T) {
	env := fixtureEnv(t)
	h := NewHistory()
	budget, err := NewBudget(100)
	if err != nil {
		t.Fatalf("NewBudget error: %v", err)
	}
	setupCalls := 0
	setup := func(from *configspace.Config, to configspace.Config) float64 {
		setupCalls++
		if from == nil {
			return 0.5
		}
		return 0.1
	}
	cfg, err := env.Space().Config(2)
	if err != nil {
		t.Fatalf("Config error: %v", err)
	}
	trial, err := RunTrial(env, cfg, h, budget, setup)
	if err != nil {
		t.Fatalf("RunTrial error: %v", err)
	}
	if setupCalls != 1 {
		t.Errorf("setup calls = %d, want 1", setupCalls)
	}
	wantSpend := trial.Cost + 0.5
	if math.Abs(budget.Spent()-wantSpend) > 1e-12 {
		t.Errorf("budget spent = %v, want %v", budget.Spent(), wantSpend)
	}

	rng := rand.New(rand.NewSource(1))
	if err := Bootstrap(env, 3, rng, h, budget, Options{}); err != nil {
		t.Fatalf("Bootstrap error: %v", err)
	}
	if h.Len() != 4 {
		t.Errorf("history length after bootstrap = %d, want 4", h.Len())
	}
	if err := Bootstrap(env, 0, rng, h, budget, Options{}); err == nil {
		t.Error("bootstrap with zero size should error")
	}
}

func TestBuildResult(t *testing.T) {
	env := fixtureEnv(t)
	h := NewHistory()
	budget, err := NewBudget(5)
	if err != nil {
		t.Fatalf("NewBudget error: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := Bootstrap(env, 3, rng, h, budget, Options{}); err != nil {
		t.Fatalf("Bootstrap error: %v", err)
	}
	opts := Options{Budget: 5, MaxRuntimeSeconds: 2000}
	res, err := BuildResult("test-opt", h, budget, opts)
	if err != nil {
		t.Fatalf("BuildResult error: %v", err)
	}
	if res.OptimizerName != "test-opt" {
		t.Errorf("name = %q", res.OptimizerName)
	}
	if res.Explorations != 3 || len(res.Trials) != 3 {
		t.Errorf("explorations/trials = %d/%d, want 3/3", res.Explorations, len(res.Trials))
	}
	if !res.RecommendedFeasible {
		t.Error("recommendation should be feasible with a loose constraint")
	}
	if res.InitialBudget != 5 || res.SpentBudget != budget.Spent() {
		t.Errorf("budget fields = %v/%v", res.InitialBudget, res.SpentBudget)
	}
	if _, err := BuildResult("x", NewHistory(), budget, opts); err == nil {
		t.Error("BuildResult on empty history should error")
	}
}
