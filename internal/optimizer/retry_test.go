package optimizer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/configspace"
	"repro/internal/lhs"
)

// flakyEnv wraps a JobEnvironment with scripted per-configuration failures:
// each Run call on a configuration consumes the next scripted error (nil
// means success) and falls through to the real measurement once the script
// is exhausted.
type flakyEnv struct {
	*JobEnvironment
	mu       sync.Mutex
	failures map[int][]error
	runs     []int
}

func (e *flakyEnv) Run(cfg configspace.Config) (TrialResult, error) {
	e.mu.Lock()
	e.runs = append(e.runs, cfg.ID)
	var next error
	if script := e.failures[cfg.ID]; len(script) > 0 {
		next = script[0]
		e.failures[cfg.ID] = script[1:]
	}
	e.mu.Unlock()
	if next != nil {
		return TrialResult{}, next
	}
	return e.JobEnvironment.Run(cfg)
}

func newFlakyEnv(t *testing.T, failures map[int][]error) *flakyEnv {
	t.Helper()
	return &flakyEnv{JobEnvironment: fixtureEnv(t), failures: failures}
}

func TestSentinelErrorIdentities(t *testing.T) {
	sentinels := []error{ErrBudgetExhausted, ErrRunFailed, ErrSpaceExhausted, ErrTrialTimeout, ErrEnvironmentFatal}
	for i, a := range sentinels {
		if !errors.Is(a, a) {
			t.Errorf("sentinel %d not errors.Is itself", i)
		}
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %d matches sentinel %d", i, j)
			}
		}
	}
	run := &RunError{Err: fmt.Errorf("wrapped: %w", ErrTrialTimeout), CostUSD: 1, Transient: true}
	if !errors.Is(run, ErrTrialTimeout) {
		t.Error("RunError does not unwrap to its underlying sentinel")
	}
	var got *RunError
	if wrapped := fmt.Errorf("outer: %w", run); !errors.As(wrapped, &got) || got.CostUSD != 1 {
		t.Error("errors.As cannot recover a wrapped RunError")
	}
}

func TestRetryPolicyValidateAndBackoff(t *testing.T) {
	if err := (RetryPolicy{MaxAttempts: -1}).Validate(); err == nil {
		t.Error("negative attempts accepted")
	}
	if err := (RetryPolicy{Timeout: -time.Second}).Validate(); err == nil {
		t.Error("negative timeout accepted")
	}
	p := RetryPolicy{BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second}
	for attempt := 1; attempt <= 8; attempt++ {
		d := p.Backoff(7, 3, attempt)
		if d != p.Backoff(7, 3, attempt) {
			t.Fatalf("backoff for attempt %d not deterministic", attempt)
		}
		uncapped := 100 * time.Millisecond << (attempt - 1)
		limit := uncapped
		if limit > time.Second {
			limit = time.Second
		}
		if d < limit/2 || d > limit {
			t.Errorf("backoff(attempt=%d) = %v outside [%v, %v]", attempt, d, limit/2, limit)
		}
	}
	if d := p.Backoff(7, 3, 1); d == p.Backoff(8, 3, 1) && d == p.Backoff(7, 4, 1) {
		t.Error("backoff jitter ignores its stream coordinates")
	}
	if (RetryPolicy{}).Backoff(7, 3, 1) != 0 {
		t.Error("zero policy should not back off")
	}
}

func TestRunTrialWithRetryRecoversFromTransientFailures(t *testing.T) {
	transient := &RunError{Err: errors.New("preempted"), CostUSD: 0.05, Transient: true}
	env := newFlakyEnv(t, map[int][]error{3: {transient, transient}})
	h := NewHistory()
	budget, err := NewBudget(100)
	if err != nil {
		t.Fatalf("NewBudget: %v", err)
	}
	var slept []time.Duration
	opts := Options{Seed: 7, Retry: RetryPolicy{
		MaxAttempts: 3,
		BackoffBase: 100 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}}
	cfg := mustConfig(t, env.Space(), 3)
	trial, profiled, err := RunTrialWithRetry(env, cfg, h, budget, opts)
	if err != nil || !profiled {
		t.Fatalf("RunTrialWithRetry = profiled %v, err %v", profiled, err)
	}
	if len(env.runs) != 3 {
		t.Errorf("environment ran %d times, want 3", len(env.runs))
	}
	if !h.Tested(3) || h.Len() != 1 {
		t.Errorf("history after recovery: len=%d tested=%v", h.Len(), h.Tested(3))
	}
	wantSpent := trial.Cost + 2*0.05
	if diff := budget.Spent() - wantSpent; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("budget spent %v, want %v (failed attempts must be charged)", budget.Spent(), wantSpent)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	want := []time.Duration{opts.Retry.Backoff(7, 3, 1), opts.Retry.Backoff(7, 3, 2)}
	for i := range slept {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want deterministic %v", i, slept[i], want[i])
		}
	}
}

func TestRunTrialWithRetryQuarantinesAfterExhaustion(t *testing.T) {
	transient := &RunError{Err: errors.New("preempted"), CostUSD: 0.02, Transient: true}
	env := newFlakyEnv(t, map[int][]error{5: {transient, transient, transient}})
	h := NewHistory()
	budget, _ := NewBudget(100)
	opts := Options{Retry: RetryPolicy{MaxAttempts: 3, Quarantine: true}}
	cfg := mustConfig(t, env.Space(), 5)
	_, profiled, err := RunTrialWithRetry(env, cfg, h, budget, opts)
	if err != nil || profiled {
		t.Fatalf("exhausted quarantine = profiled %v, err %v", profiled, err)
	}
	if !h.Quarantined(5) || h.Tested(5) {
		t.Errorf("config 5 quarantined=%v tested=%v, want quarantined only", h.Quarantined(5), h.Tested(5))
	}
	if !h.Excluded(5) || h.ExcludedCount() != 1 {
		t.Errorf("exclusion bookkeeping: excluded=%v count=%d", h.Excluded(5), h.ExcludedCount())
	}
	if got := budget.Spent(); got != 3*0.02 {
		t.Errorf("budget spent %v, want %v", got, 3*0.02)
	}
	for _, id := range h.UntestedIDs(env.Space()) {
		if id == 5 {
			t.Error("quarantined config still offered as untested")
		}
	}
	// A later successful profiling lifts the quarantine.
	h.Add(TrialResult{Config: cfg.Clone(), Cost: 1})
	if h.Quarantined(5) || !h.Tested(5) {
		t.Error("profiling a quarantined config should lift the quarantine")
	}
}

func TestRunTrialWithRetryTerminalWithoutQuarantine(t *testing.T) {
	transient := &RunError{Err: errors.New("preempted"), Transient: true}
	env := newFlakyEnv(t, map[int][]error{5: {transient, transient}})
	h := NewHistory()
	budget, _ := NewBudget(100)
	opts := Options{Retry: RetryPolicy{MaxAttempts: 2}}
	_, _, err := RunTrialWithRetry(env, mustConfig(t, env.Space(), 5), h, budget, opts)
	if !errors.Is(err, ErrRunFailed) {
		t.Fatalf("terminal failure = %v, want ErrRunFailed", err)
	}
	if h.Quarantined(5) {
		t.Error("config quarantined despite Quarantine=false")
	}
}

func TestRunTrialWithRetryPermanentFailureSkipsRetries(t *testing.T) {
	permanent := &RunError{Err: errors.New("unbootable"), CostUSD: 0.01, Transient: false}
	env := newFlakyEnv(t, map[int][]error{2: {permanent, permanent, permanent}})
	h := NewHistory()
	budget, _ := NewBudget(100)
	opts := Options{Retry: RetryPolicy{MaxAttempts: 5, Quarantine: true}}
	_, profiled, err := RunTrialWithRetry(env, mustConfig(t, env.Space(), 2), h, budget, opts)
	if err != nil || profiled {
		t.Fatalf("permanent failure = profiled %v, err %v", profiled, err)
	}
	if len(env.runs) != 1 {
		t.Errorf("permanent failure retried %d times, want 1 attempt", len(env.runs))
	}
	if !h.Quarantined(2) {
		t.Error("permanently failing config not quarantined")
	}
}

func TestRunTrialWithRetryFatalAlwaysAborts(t *testing.T) {
	fatal := &RunError{Err: fmt.Errorf("injected: %w", ErrEnvironmentFatal), Transient: true}
	env := newFlakyEnv(t, map[int][]error{2: {fatal}})
	h := NewHistory()
	budget, _ := NewBudget(100)
	opts := Options{Retry: RetryPolicy{MaxAttempts: 5, Quarantine: true}}
	_, _, err := RunTrialWithRetry(env, mustConfig(t, env.Space(), 2), h, budget, opts)
	if !errors.Is(err, ErrRunFailed) || !errors.Is(err, ErrEnvironmentFatal) {
		t.Fatalf("fatal failure = %v, want ErrRunFailed wrapping ErrEnvironmentFatal", err)
	}
	if len(env.runs) != 1 || h.Quarantined(2) {
		t.Errorf("fatal failure: %d attempts, quarantined=%v, want 1 attempt and no quarantine", len(env.runs), h.Quarantined(2))
	}
}

func TestRunTrialWithRetryUnknownErrorsArePermanent(t *testing.T) {
	env := newFlakyEnv(t, map[int][]error{2: {errors.New("mystery"), errors.New("mystery")}})
	h := NewHistory()
	budget, _ := NewBudget(100)
	opts := Options{Retry: RetryPolicy{MaxAttempts: 3}}
	_, _, err := RunTrialWithRetry(env, mustConfig(t, env.Space(), 2), h, budget, opts)
	if !errors.Is(err, ErrRunFailed) {
		t.Fatalf("unknown failure = %v, want ErrRunFailed", err)
	}
	if len(env.runs) != 1 {
		t.Errorf("unknown error retried %d times, want 1 attempt", len(env.runs))
	}
}

// blockingEnv blocks the first Run call until released; later calls succeed
// immediately.
type blockingEnv struct {
	*JobEnvironment
	mu      sync.Mutex
	blocked bool
	release chan struct{}
}

func (e *blockingEnv) Run(cfg configspace.Config) (TrialResult, error) {
	e.mu.Lock()
	first := !e.blocked
	e.blocked = true
	e.mu.Unlock()
	if first {
		<-e.release
	}
	return e.JobEnvironment.Run(cfg)
}

func TestRunTrialWithRetryTimesOutMidTrial(t *testing.T) {
	env := &blockingEnv{JobEnvironment: fixtureEnv(t), release: make(chan struct{})}
	defer close(env.release)
	h := NewHistory()
	budget, _ := NewBudget(100)
	opts := Options{Retry: RetryPolicy{MaxAttempts: 2, Timeout: 10 * time.Millisecond}}
	trial, profiled, err := RunTrialWithRetry(env, mustConfig(t, env.Space(), 4), h, budget, opts)
	if err != nil || !profiled {
		t.Fatalf("timeout recovery = profiled %v, err %v", profiled, err)
	}
	if trial.Config.ID != 4 || !h.Tested(4) {
		t.Errorf("retry after timeout did not profile config 4")
	}
}

func TestRunTrialWithRetryTimeoutTerminal(t *testing.T) {
	env := &blockingEnv{JobEnvironment: fixtureEnv(t), release: make(chan struct{}, 1)}
	h := NewHistory()
	budget, _ := NewBudget(100)
	opts := Options{Retry: RetryPolicy{MaxAttempts: 1, Timeout: 10 * time.Millisecond}}
	_, _, err := RunTrialWithRetry(env, mustConfig(t, env.Space(), 4), h, budget, opts)
	env.release <- struct{}{}
	if !errors.Is(err, ErrRunFailed) || !errors.Is(err, ErrTrialTimeout) {
		t.Fatalf("timed-out trial = %v, want ErrRunFailed wrapping ErrTrialTimeout", err)
	}
}

func TestRunTrialPropagatesEnvironmentErrors(t *testing.T) {
	bad := errors.New("broken cluster")
	env := newFlakyEnv(t, map[int][]error{1: {bad}})
	h := NewHistory()
	budget, _ := NewBudget(100)
	if _, err := RunTrial(env, mustConfig(t, env.Space(), 1), h, budget, nil); !errors.Is(err, bad) {
		t.Fatalf("RunTrial error = %v, want the environment's", err)
	}
	if h.Len() != 0 || budget.Spent() != 0 {
		t.Error("failed RunTrial mutated history or budget")
	}
}

// priceEnv overrides prices per configuration ID.
type priceEnv struct {
	*JobEnvironment
	prices map[int]float64
	errs   map[int]error
}

func (e *priceEnv) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	if err, ok := e.errs[cfg.ID]; ok {
		return 0, err
	}
	if p, ok := e.prices[cfg.ID]; ok {
		return p, nil
	}
	return e.JobEnvironment.UnitPricePerHour(cfg)
}

func TestPriceCacheRejectsBadPrices(t *testing.T) {
	boom := errors.New("price feed down")
	env := &priceEnv{
		JobEnvironment: fixtureEnv(t),
		prices:         map[int]float64{1: 0, 2: -3.5},
		errs:           map[int]error{3: boom},
	}
	cache := NewPriceCache(env)
	if _, err := cache.UnitPrice(1); err == nil {
		t.Error("zero price accepted")
	}
	if _, err := cache.UnitPrice(2); err == nil {
		t.Error("negative price accepted")
	}
	if _, err := cache.UnitPrice(3); !errors.Is(err, boom) {
		t.Errorf("environment price error = %v, want wrapped original", err)
	}
	if _, err := cache.UnitPrice(0); err != nil {
		t.Errorf("valid price rejected: %v", err)
	}
}

// TestBootstrapSkipsAndResamplesFailedProbe pins the satellite fix: a single
// failed LHS probe no longer aborts the bootstrap — it is quarantined and a
// deterministic replacement is profiled instead.
func TestBootstrapSkipsAndResamplesFailedProbe(t *testing.T) {
	const n, seed = 3, 9
	// Recover the LHS plan to fail its second probe deliberately.
	planEnv := fixtureEnv(t)
	plan, err := lhs.Sample(planEnv.Space(), n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("lhs.Sample: %v", err)
	}
	failID := plan[1].ID

	run := func() ([]int, []int, float64) {
		t.Helper()
		env := newFlakyEnv(t, map[int][]error{
			failID: {&RunError{Err: errors.New("unbootable"), CostUSD: 0.01, Transient: false}},
		})
		h := NewHistory()
		budget, _ := NewBudget(100)
		if err := Bootstrap(env, n, rand.New(rand.NewSource(seed)), h, budget, Options{Seed: seed}); err != nil {
			t.Fatalf("Bootstrap: %v", err)
		}
		ids := make([]int, 0, h.Len())
		for _, tr := range h.Trials() {
			ids = append(ids, tr.Config.ID)
		}
		return ids, h.QuarantinedIDs(), budget.Spent()
	}

	ids, quarantined, spent := run()
	if len(ids) != n {
		t.Fatalf("bootstrap yielded %d samples, want %d despite the failed probe", len(ids), n)
	}
	for _, id := range ids {
		if id == failID {
			t.Fatalf("failed probe %d present in history", failID)
		}
	}
	if len(quarantined) != 1 || quarantined[0] != failID {
		t.Fatalf("quarantined = %v, want [%d]", quarantined, failID)
	}

	ids2, quarantined2, spent2 := run()
	if fmt.Sprint(ids) != fmt.Sprint(ids2) || fmt.Sprint(quarantined) != fmt.Sprint(quarantined2) || spent != spent2 {
		t.Errorf("resampling not deterministic: %v/%v/%v vs %v/%v/%v", ids, quarantined, spent, ids2, quarantined2, spent2)
	}
}

// TestBootstrapSpaceExhaustion drives the bootstrap into a space where every
// configuration fails: the phase must end with ErrSpaceExhausted, not loop.
func TestBootstrapSpaceExhaustion(t *testing.T) {
	inner := fixtureEnv(t)
	failures := make(map[int][]error, inner.Space().Size())
	for id := 0; id < inner.Space().Size(); id++ {
		failures[id] = []error{&RunError{Err: errors.New("unbootable"), Transient: false}}
	}
	env := newFlakyEnv(t, failures)
	h := NewHistory()
	budget, _ := NewBudget(100)
	err := Bootstrap(env, 3, rand.New(rand.NewSource(1)), h, budget, Options{Seed: 1})
	if !errors.Is(err, ErrSpaceExhausted) {
		t.Fatalf("all-failing bootstrap = %v, want ErrSpaceExhausted", err)
	}
	if h.Len() != 0 || len(h.QuarantinedIDs()) != inner.Space().Size() {
		t.Errorf("history len %d, quarantined %d, want 0 and %d", h.Len(), len(h.QuarantinedIDs()), inner.Space().Size())
	}
}
