package optimizer

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/configspace"
)

// countingPriceEnv wraps a JobEnvironment and counts UnitPricePerHour calls.
type countingPriceEnv struct {
	*JobEnvironment
	calls atomic.Int64
}

func (e *countingPriceEnv) UnitPricePerHour(cfg configspace.Config) (float64, error) {
	e.calls.Add(1)
	return e.JobEnvironment.UnitPricePerHour(cfg)
}

func TestPriceCacheLazyFetchAndMemoization(t *testing.T) {
	env := &countingPriceEnv{JobEnvironment: fixtureEnv(t)}
	cache := NewPriceCache(env)
	if env.calls.Load() != 0 {
		t.Fatalf("cache creation fetched %d prices, want lazy", env.calls.Load())
	}
	want, err := env.UnitPricePerHour(mustConfig(t, env.Space(), 3))
	if err != nil {
		t.Fatalf("UnitPricePerHour: %v", err)
	}
	env.calls.Store(0)
	for i := 0; i < 5; i++ {
		got, err := cache.UnitPrice(3)
		if err != nil {
			t.Fatalf("UnitPrice: %v", err)
		}
		if got != want {
			t.Fatalf("UnitPrice = %v, want %v", got, want)
		}
	}
	if env.calls.Load() != 1 {
		t.Fatalf("environment queried %d times for one ID, want 1", env.calls.Load())
	}
}

// TestPriceCacheConcurrentLazyFetches hammers one cache with concurrent
// first-touch fetches across the whole space; run under -race this pins the
// concurrency contract the planner's parallel fan-out relies on.
func TestPriceCacheConcurrentLazyFetches(t *testing.T) {
	env := &countingPriceEnv{JobEnvironment: fixtureEnv(t)}
	cache := NewPriceCache(env)
	size := env.Space().Size()

	want := make([]float64, size)
	for id := 0; id < size; id++ {
		v, err := env.JobEnvironment.UnitPricePerHour(mustConfig(t, env.Space(), id))
		if err != nil {
			t.Fatalf("UnitPricePerHour(%d): %v", id, err)
		}
		want[id] = v
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine sweeps the space from a different offset, so
			// first touches collide from the start.
			for k := 0; k < 3*size; k++ {
				id := (k + g*size/goroutines) % size
				got, err := cache.UnitPrice(id)
				if err != nil {
					errs[g] = err
					return
				}
				if got != want[id] {
					errs[g] = &priceMismatch{id: id, got: got, want: want[id]}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

type priceMismatch struct {
	id        int
	got, want float64
}

func (m *priceMismatch) Error() string {
	return "price mismatch"
}

func mustConfig(t *testing.T, space *configspace.Space, id int) configspace.Config {
	t.Helper()
	cfg, err := space.ConfigView(id)
	if err != nil {
		t.Fatalf("ConfigView(%d): %v", id, err)
	}
	return cfg
}
