package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock shared by the limiter and watchdog
// tests: all refill and deadline arithmetic becomes a pure function of the
// calls made, with zero wall-clock dependence.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(2, 4, clk.Now) // 2 tokens/s, burst 4

	for i := 0; i < 4; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst call %d rejected", i)
		}
	}
	ok, retryAfter := l.Allow("alice")
	if ok {
		t.Fatal("call past the burst admitted")
	}
	if want := 500 * time.Millisecond; retryAfter != want {
		t.Fatalf("Retry-After = %v, want %v (1 token at 2/s)", retryAfter, want)
	}

	// Half a second refills exactly one token.
	clk.Advance(500 * time.Millisecond)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("call after refill rejected")
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("second call after a one-token refill admitted")
	}
}

func TestLimiterDeterministicSchedule(t *testing.T) {
	// The exact same call sequence under the exact same fake clock must
	// produce the exact same admit/reject pattern — twice.
	run := func() []bool {
		clk := newFakeClock()
		l := NewLimiter(5, 2, clk.Now)
		var got []bool
		for i := 0; i < 40; i++ {
			ok, _ := l.Allow("c")
			got = append(got, ok)
			clk.Advance(70 * time.Millisecond)
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	admitted := 0
	for _, ok := range a {
		if ok {
			admitted++
		}
	}
	// 40 calls over 2.73s at 5/s with burst 2: the steady state admits at
	// the refill rate (0.35 tokens per 70ms step → every call admitted only
	// while burst lasts, then ~every third).
	if admitted >= 40 || admitted == 0 {
		t.Fatalf("admitted %d of 40, want a strict nontrivial subset", admitted)
	}
}

func TestLimiterRejectionSpendsNothing(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 1, clk.Now)
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("first call rejected")
	}
	// Hammering while empty must not push the refill schedule back.
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("c"); ok {
			t.Fatalf("hammer call %d admitted", i)
		}
	}
	clk.Advance(time.Second)
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("refilled call rejected: rejections spent tokens")
	}
}

func TestLimiterPerClientIsolation(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 1, clk.Now)
	if ok, _ := l.Allow("noisy"); !ok {
		t.Fatal("noisy's first call rejected")
	}
	if ok, _ := l.Allow("noisy"); ok {
		t.Fatal("noisy's second call admitted")
	}
	// A different client is untouched by noisy's empty bucket.
	if ok, _ := l.Allow("quiet"); !ok {
		t.Fatal("quiet rejected because of noisy's consumption")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0, nil)
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatal("disabled limiter rejected a call")
		}
	}
}

func TestLimiterEvictsRefilledBuckets(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1000, 1, clk.Now)
	for i := 0; i < maxLimiterClients; i++ {
		l.Allow(fmt.Sprintf("c%d", i))
	}
	if got := l.Clients(); got != maxLimiterClients {
		t.Fatalf("Clients() = %d, want %d", got, maxLimiterClients)
	}
	// All buckets refill fully in 1ms at 1000/s; the next new client
	// triggers eviction of every one of them.
	clk.Advance(time.Millisecond)
	l.Allow("straw")
	if got := l.Clients(); got != 1 {
		t.Fatalf("Clients() after eviction = %d, want 1", got)
	}
}
