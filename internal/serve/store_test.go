package serve

import (
	"os"
	"path/filepath"
	"testing"
)

func testSpec(id string) CampaignSpec {
	return CampaignSpec{
		ID:      id,
		Env:     EnvSpec{Kind: "tensorflow", Name: "cnn", Seed: 7},
		Tuner:   TunerSpec{Lookahead: 1},
		Options: OptionsSpec{Budget: 50, Seed: 7},
	}
}

func TestStoreSpecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if err := s.PutSpec(testSpec(id)); err != nil {
			t.Fatal(err)
		}
	}
	specs, err := s.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("Specs() returned %d, want 3", len(specs))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if specs[i].ID != want {
			t.Fatalf("Specs()[%d].ID = %q, want %q (ID order)", i, specs[i].ID, want)
		}
	}
	if specs[0].Env.Kind != "tensorflow" || specs[0].Options.Budget != 50 {
		t.Fatalf("spec did not round-trip: %+v", specs[0])
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec(testSpec("c1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Snapshot("c1"); err != nil || ok {
		t.Fatalf("Snapshot before any write: ok=%v err=%v, want ok=false err=nil", ok, err)
	}
	want := []byte(`{"version":1}`)
	if err := s.PutSnapshot("c1", want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Snapshot("c1")
	if err != nil || !ok {
		t.Fatalf("Snapshot: ok=%v err=%v", ok, err)
	}
	if string(got) != string(want) {
		t.Fatalf("snapshot round-trip: got %q, want %q", got, want)
	}
}

func TestStoreSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec(testSpec("c1")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a temp file that never got renamed.
	orphan := filepath.Join(dir, "c1", tmpPrefix+"dead")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived reopening the store")
	}
}

func TestStoreSkipsUnacknowledgedCampaigns(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec(testSpec("real")); err != nil {
		t.Fatal(err)
	}
	// A directory without spec.json models a crash between MkdirAll and the
	// spec rename: the campaign was never acknowledged.
	if err := os.MkdirAll(filepath.Join(dir, "ghost"), 0o755); err != nil {
		t.Fatal(err)
	}
	specs, err := s.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].ID != "real" {
		t.Fatalf("Specs() = %v, want just [real]", specs)
	}
}

func TestStoreRemove(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec(testSpec("c1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("c1"); err != nil {
		t.Fatal(err)
	}
	specs, err := s.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 0 {
		t.Fatalf("Specs() after Remove = %v, want empty", specs)
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"c-000001":  true,
		"my.job_2":  true,
		"":          false,
		"../escape": false,
		"-leading":  false,
		".hidden":   false,
		"has space": false,
		"has/slash": false,
	} {
		if got := ValidID(id); got != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, got, want)
		}
	}
}
