// Package serve is the transport and robustness layer of the multi-campaign
// tuning server (cmd/lynceus-serve): an HTTP/JSON API over the stepwise
// campaign engine (StartTunerShared / ResumeTunerShared) with per-client
// token-bucket rate limiting, a bounded admission queue that sheds load
// instead of queueing unboundedly, per-campaign panic isolation, a watchdog
// cancelling steps that exceed their deadline, write-ahead snapshotting
// after every completed step, and graceful drain. The durable unit is the
// campaign snapshot: a kill -9 at any point loses at most the in-flight
// step, and a restarted server rescans its state directory and resumes
// every campaign bitwise.
package serve

import (
	"fmt"
	"regexp"
	"time"

	lynceus "repro"
	"repro/internal/faults"
)

// EnvSpec names an environment the server can rebuild from scratch on
// restart. Environments must be reconstructible from data — a snapshot
// cannot carry live Go objects across a process boundary — so the server
// accepts a closed set of kinds instead of arbitrary Environment values.
type EnvSpec struct {
	// Kind selects the environment family: "tensorflow" (synthetic lookup
	// table job; Name is cnn, rnn or multilayer), "scout" (synthetic
	// Hadoop/Spark job; Name is the job name) or "servesim" (stochastic
	// serving-cluster simulation; Name is the profile: chat, code or batch).
	Kind string `json:"kind"`
	// Name selects the job or profile within the kind.
	Name string `json:"name"`
	// Seed drives the environment's data generation or noise streams.
	Seed int64 `json:"seed"`
	// Faults, when non-nil, wraps the environment with deterministic fault
	// injection (transient failures, stragglers, broken configurations) —
	// the robustness-testing hook the chaos tests drive.
	Faults *faults.Params `json:"faults,omitempty"`
}

// RetrySpec is the serializable retry policy (durations in milliseconds).
type RetrySpec struct {
	MaxAttempts   int   `json:"max_attempts,omitempty"`
	TimeoutMS     int64 `json:"timeout_ms,omitempty"`
	BackoffBaseMS int64 `json:"backoff_base_ms,omitempty"`
	BackoffMaxMS  int64 `json:"backoff_max_ms,omitempty"`
	Quarantine    bool  `json:"quarantine,omitempty"`
}

// OptionsSpec is the serializable subset of lynceus.Options (SetupCost
// functions cannot travel over the wire; campaigns needing one must be
// driven in-process).
type OptionsSpec struct {
	Budget            float64              `json:"budget"`
	MaxRuntimeSeconds float64              `json:"max_runtime_seconds"`
	BootstrapSize     int                  `json:"bootstrap_size,omitempty"`
	Seed              int64                `json:"seed"`
	ExtraConstraints  []lynceus.Constraint `json:"extra_constraints,omitempty"`
	Retry             RetrySpec            `json:"retry"`
}

// TunerSpec is the serializable lynceus.TunerConfig.
type TunerSpec struct {
	Lookahead        int     `json:"lookahead,omitempty"`
	Myopic           bool    `json:"myopic,omitempty"`
	Discount         float64 `json:"discount,omitempty"`
	GHOrder          int     `json:"gh_order,omitempty"`
	EnsembleTrees    int     `json:"ensemble_trees,omitempty"`
	CostModel        string  `json:"cost_model,omitempty"`
	Workers          int     `json:"workers,omitempty"`
	SearchStrategy   string  `json:"search_strategy,omitempty"`
	SearchSampleSize int     `json:"search_sample_size,omitempty"`
	SpeculativeRefit string  `json:"speculative_refit,omitempty"`
}

// CampaignSpec is everything the server persists to recreate a campaign
// from nothing: the environment recipe, the tuner configuration, and the
// run options. The snapshot (written separately, after every step) carries
// the campaign's progress; the spec carries its definition.
type CampaignSpec struct {
	ID      string      `json:"id"`
	Env     EnvSpec     `json:"env"`
	Tuner   TunerSpec   `json:"tuner"`
	Options OptionsSpec `json:"options"`
}

// idPattern constrains campaign IDs to path- and filename-safe tokens (they
// name state subdirectories and URL segments).
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// ValidID reports whether id is an acceptable campaign ID.
func ValidID(id string) bool { return idPattern.MatchString(id) }

// Validate checks the spec. The tuner and option values are validated by
// the engine at campaign construction; this checks what the server itself
// relies on.
func (s CampaignSpec) Validate() error {
	if !ValidID(s.ID) {
		return fmt.Errorf("serve: invalid campaign ID %q (want %s)", s.ID, idPattern)
	}
	switch s.Env.Kind {
	case "tensorflow", "scout", "servesim":
	default:
		return fmt.Errorf("serve: unknown environment kind %q (want tensorflow, scout or servesim)", s.Env.Kind)
	}
	if s.Env.Faults != nil {
		if err := s.Env.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TunerConfig converts the wire spec to the engine configuration.
func (s TunerSpec) TunerConfig() lynceus.TunerConfig {
	return lynceus.TunerConfig{
		Lookahead:     s.Lookahead,
		Myopic:        s.Myopic,
		Discount:      s.Discount,
		GHOrder:       s.GHOrder,
		EnsembleTrees: s.EnsembleTrees,
		CostModel:     s.CostModel,
		Workers:       s.Workers,
		Search: lynceus.SearchConfig{
			Strategy:   s.SearchStrategy,
			SampleSize: s.SearchSampleSize,
		},
		SpeculativeRefit: s.SpeculativeRefit,
	}
}

// Options converts the wire spec to the engine options.
func (s OptionsSpec) Options() lynceus.Options {
	return lynceus.Options{
		Budget:            s.Budget,
		MaxRuntimeSeconds: s.MaxRuntimeSeconds,
		BootstrapSize:     s.BootstrapSize,
		Seed:              s.Seed,
		ExtraConstraints:  s.ExtraConstraints,
		Retry: lynceus.RetryPolicy{
			MaxAttempts: s.Retry.MaxAttempts,
			Timeout:     time.Duration(s.Retry.TimeoutMS) * time.Millisecond,
			BackoffBase: time.Duration(s.Retry.BackoffBaseMS) * time.Millisecond,
			BackoffMax:  time.Duration(s.Retry.BackoffMaxMS) * time.Millisecond,
			Quarantine:  s.Retry.Quarantine,
		},
	}
}

// BuildEnv reconstructs the environment named by the spec. Reconstruction is
// deterministic — the same spec always yields an environment with identical
// behavior — which is what lets a restarted server resume campaigns bitwise:
// the snapshot restores the environment's mutable state, the spec rebuilds
// everything else.
func BuildEnv(spec EnvSpec) (lynceus.Environment, error) {
	var (
		inner lynceus.Environment
		err   error
	)
	switch spec.Kind {
	case "tensorflow":
		var job *lynceus.Job
		job, err = lynceus.SyntheticTensorflowJob(spec.Name, spec.Seed)
		if err == nil {
			inner, err = lynceus.NewJobEnvironment(job)
		}
	case "scout":
		var jobs []*lynceus.Job
		jobs, err = lynceus.SyntheticScoutJobs(spec.Seed)
		if err == nil {
			inner, err = nil, fmt.Errorf("serve: unknown scout job %q", spec.Name)
			for _, job := range jobs {
				if job.Name() == spec.Name {
					inner, err = lynceus.NewJobEnvironment(job)
					break
				}
			}
		}
	case "servesim":
		inner, err = lynceus.NewServingEnvironment(spec.Name, spec.Seed)
	default:
		return nil, fmt.Errorf("serve: unknown environment kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	if spec.Faults != nil {
		return lynceus.NewFaultyEnvironment(inner, *spec.Faults)
	}
	return inner, nil
}
