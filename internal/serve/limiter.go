package serve

import (
	"math"
	"sync"
	"time"
)

// maxLimiterClients bounds the per-client bucket map: past it, fully-refilled
// buckets (indistinguishable from brand-new ones) are evicted. A hostile
// client set can therefore grow the map to maxLimiterClients entries plus
// its active clients, never unboundedly.
const maxLimiterClients = 4096

// Limiter is a per-client token bucket: each client refills at rate
// tokens/second up to burst, and every admitted request spends one token.
// Refill is computed lazily from elapsed time on each Allow — no background
// goroutine — and the clock is injected, so tests drive it deterministically:
// under a fake clock the exact same Allow sequence always admits and rejects
// the exact same calls, with the exact same Retry-After hints.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter creates a limiter. rate <= 0 disables limiting (every Allow
// admits); burst < 1 is raised to 1 so a conforming client can always make
// at least one call. now nil means time.Now.
func NewLimiter(rate, burst float64, now func() time.Time) *Limiter {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Limiter{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// Allow spends one token of the client's bucket. When the bucket is empty it
// returns ok=false and the wait until one token will have refilled — the
// Retry-After hint. A rejected call spends nothing: the schedule depends only
// on admitted calls and elapsed time, never on how hard a client hammers.
func (l *Limiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxLimiterClients {
			l.evictFullLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// evictFullLocked drops buckets that have refilled to burst: their state
// equals a fresh bucket's, so forgetting them changes nothing for their
// clients.
func (l *Limiter) evictFullLocked(now time.Time) {
	for client, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, client)
		}
	}
}

// Clients returns the number of tracked client buckets (observability).
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
