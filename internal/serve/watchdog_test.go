package serve

import (
	"context"
	"testing"
	"time"
)

func TestWatchdogFiresOnlyPastDeadline(t *testing.T) {
	clk := newFakeClock()
	w := NewWatchdog(time.Minute, clk.Now)

	ctx, cancel := context.WithCancel(context.Background())
	token := w.Arm("c-1", cancel)
	if got := w.Armed(); got != 1 {
		t.Fatalf("Armed() = %d, want 1", got)
	}

	clk.Advance(59 * time.Second)
	if fired := w.Sweep(); len(fired) != 0 {
		t.Fatalf("sweep before the deadline fired on %v", fired)
	}
	if ctx.Err() != nil {
		t.Fatal("context cancelled before the deadline")
	}

	clk.Advance(2 * time.Second)
	fired := w.Sweep()
	if len(fired) != 1 || fired[0] != "c-1" {
		t.Fatalf("sweep past the deadline fired on %v, want [c-1]", fired)
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled by the sweep")
	}
	if got := w.Fired(); got != 1 {
		t.Fatalf("Fired() = %d, want 1", got)
	}
	// A fired entry is removed: sweeping again is a no-op.
	if fired := w.Sweep(); len(fired) != 0 {
		t.Fatalf("second sweep re-fired on %v", fired)
	}
	// Disarming a swept token is a harmless no-op.
	w.Disarm(token)
}

func TestWatchdogDisarmPreventsFiring(t *testing.T) {
	clk := newFakeClock()
	w := NewWatchdog(time.Second, clk.Now)
	ctx, cancel := context.WithCancel(context.Background())
	token := w.Arm("c-1", cancel)
	w.Disarm(token)
	clk.Advance(time.Hour)
	if fired := w.Sweep(); len(fired) != 0 {
		t.Fatalf("sweep fired on a disarmed step: %v", fired)
	}
	if ctx.Err() != nil {
		t.Fatal("disarmed step's context cancelled")
	}
}

func TestWatchdogDisabled(t *testing.T) {
	clk := newFakeClock()
	w := NewWatchdog(0, clk.Now)
	_, cancel := context.WithCancel(context.Background())
	if token := w.Arm("c-1", cancel); token != 0 {
		t.Fatalf("disabled watchdog armed with token %d", token)
	}
	clk.Advance(time.Hour)
	if fired := w.Sweep(); fired != nil {
		t.Fatalf("disabled watchdog fired on %v", fired)
	}
}

func TestWatchdogIndependentSteps(t *testing.T) {
	clk := newFakeClock()
	w := NewWatchdog(time.Minute, clk.Now)
	_, cancelOld := context.WithCancel(context.Background())
	w.Arm("old", cancelOld)
	clk.Advance(40 * time.Second)
	youngCtx, cancelYoung := context.WithCancel(context.Background())
	w.Arm("young", cancelYoung)
	clk.Advance(30 * time.Second) // old at 70s (overdue), young at 30s
	fired := w.Sweep()
	if len(fired) != 1 || fired[0] != "old" {
		t.Fatalf("sweep fired on %v, want [old]", fired)
	}
	if youngCtx.Err() != nil {
		t.Fatal("young step cancelled alongside the old one")
	}
}
