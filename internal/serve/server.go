package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	lynceus "repro"
)

// Config configures a Server. The zero value of every field selects a
// sensible default; only StateDir is required.
type Config struct {
	// StateDir is the durable state directory (required).
	StateDir string
	// MaxCampaigns caps the number of live campaigns; admission past it is
	// shed with 503. 0 means 1024.
	MaxCampaigns int
	// QueueDepth bounds the admission queue of step requests; a full queue
	// sheds with 503 + Retry-After instead of queueing unboundedly. 0 means
	// 64.
	QueueDepth int
	// Workers is the number of step-executor goroutines. 0 means
	// min(GOMAXPROCS, 4).
	Workers int
	// Rate and Burst configure the per-client token bucket on mutating
	// endpoints (campaign creation and stepping): Rate tokens/second refill
	// up to Burst. Rate 0 means 50/s; Rate < 0 disables limiting.
	Rate  float64
	Burst float64
	// StepDeadline is the watchdog's per-step wall-clock budget (one /step
	// request, all its steps): past it the step's context is cancelled,
	// stopping the campaign between planner phases. 0 means 2 minutes;
	// negative disables the watchdog.
	StepDeadline time.Duration
	// CancelGrace is how long the executor waits after a watchdog
	// cancellation for the step to stop cooperatively before abandoning it
	// and quarantining the campaign as stuck. 0 means 3 seconds.
	CancelGrace time.Duration
	// SweepInterval is the watchdog sweep period. 0 derives it from
	// StepDeadline (deadline/4, clamped to [10ms, 1s]).
	SweepInterval time.Duration
	// Now is the clock of the limiter and watchdog (tests inject a fake
	// one). nil means time.Now.
	Now func() time.Time
	// EnvFactory rebuilds environments from specs. nil means BuildEnv; tests
	// inject factories producing misbehaving environments (panics, blocking
	// runs) to exercise the isolation paths.
	EnvFactory func(EnvSpec) (lynceus.Environment, error)
	// Logf receives operational log lines. nil silences them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxCampaigns == 0 {
		c.MaxCampaigns = 1024
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = min(runtime.GOMAXPROCS(0), 4)
	}
	if c.Rate == 0 {
		c.Rate = 50
	}
	if c.Burst == 0 {
		c.Burst = 2 * c.Rate
	}
	if c.StepDeadline == 0 {
		c.StepDeadline = 2 * time.Minute
	} else if c.StepDeadline < 0 {
		c.StepDeadline = 0
	}
	if c.CancelGrace == 0 {
		c.CancelGrace = 3 * time.Second
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = c.StepDeadline / 4
		if c.SweepInterval < 10*time.Millisecond {
			c.SweepInterval = 10 * time.Millisecond
		}
		if c.SweepInterval > time.Second {
			c.SweepInterval = time.Second
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.EnvFactory == nil {
		c.EnvFactory = BuildEnv
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// CampaignState labels a campaign's lifecycle state.
const (
	StateActive      = "active"      // accepting steps
	StateDone        = "done"        // finished; recommendation available
	StateQuarantined = "quarantined" // panicked or stuck; no further steps
)

// CampaignStatus is the wire status of one campaign (GET /campaigns/{id}).
type CampaignStatus struct {
	ID                 string  `json:"id"`
	State              string  `json:"state"`
	Steps              int     `json:"steps"`
	Trials             int     `json:"trials"`
	QuarantinedConfigs int     `json:"quarantined_configs,omitempty"`
	RemainingBudget    float64 `json:"remaining_budget"`
	Done               bool    `json:"done"`
	FinishReason       string  `json:"finish_reason,omitempty"`
	QuarantineReason   string  `json:"quarantine_reason,omitempty"`
	LastError          string  `json:"last_error,omitempty"`
}

// campaign is the server-side state of one tuning campaign.
type campaign struct {
	spec CampaignSpec

	// stepMu serializes everything that touches the tuner (steps, rollback,
	// recommendation, deletion); Campaigns are not safe for concurrent use.
	// It is deliberately leaked when a stuck step is abandoned: the zombie
	// goroutine may still hold the tuner, so nobody else may ever touch it
	// again — which quarantine guarantees.
	stepMu  sync.Mutex
	tuner   *lynceus.Tuner
	env     lynceus.Environment
	deleted atomic.Bool

	stMu   sync.Mutex
	status CampaignStatus
}

func (c *campaign) getStatus() CampaignStatus {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	return c.status
}

func (c *campaign) setStatus(mut func(*CampaignStatus)) {
	c.stMu.Lock()
	mut(&c.status)
	c.stMu.Unlock()
}

// refreshStatus re-derives the status from the tuner. Caller holds stepMu.
func (c *campaign) refreshStatus(stepped int) {
	trials := len(c.tuner.Trials())
	quarantined := len(c.tuner.QuarantinedIDs())
	remaining := c.tuner.RemainingBudget()
	done := c.tuner.Done()
	finish := ""
	if reason := c.tuner.FinishReason(); reason != nil {
		finish = reason.Error()
	}
	c.setStatus(func(st *CampaignStatus) {
		st.Steps += stepped
		st.Trials = trials
		st.QuarantinedConfigs = quarantined
		st.RemainingBudget = remaining
		st.Done = done
		st.FinishReason = finish
		if done && st.State == StateActive {
			st.State = StateDone
		}
	})
}

// Stats is the wire payload of GET /stats.
type Stats struct {
	Campaigns        int    `json:"campaigns"`
	ActiveCampaigns  int    `json:"active_campaigns"`
	DoneCampaigns    int    `json:"done_campaigns"`
	Quarantined      int    `json:"quarantined_campaigns"`
	QueueLen         int    `json:"queue_len"`
	QueueCap         int    `json:"queue_cap"`
	Draining         bool   `json:"draining"`
	ResumedOnStart   uint64 `json:"resumed_on_start"`
	StepsCompleted   uint64 `json:"steps_completed"`
	StepRequests     uint64 `json:"step_requests_admitted"`
	RejectedRate     uint64 `json:"rejected_rate_limit"`
	RejectedQueue    uint64 `json:"rejected_queue_full"`
	RejectedBusy     uint64 `json:"rejected_busy"`
	RejectedDraining uint64 `json:"rejected_draining"`
	RejectedCap      uint64 `json:"rejected_campaign_cap"`
	Panics           uint64 `json:"panics_isolated"`
	StuckCampaigns   uint64 `json:"stuck_campaigns"`
	WatchdogCancels  uint64 `json:"watchdog_cancels"`
	Rollbacks        uint64 `json:"rollbacks"`
	LimiterClients   int    `json:"limiter_clients"`
	WatchdogArmed    int    `json:"watchdog_armed"`
}

type counters struct {
	resumedOnStart   atomic.Uint64
	stepsCompleted   atomic.Uint64
	stepRequests     atomic.Uint64
	rejectedRate     atomic.Uint64
	rejectedQueue    atomic.Uint64
	rejectedBusy     atomic.Uint64
	rejectedDraining atomic.Uint64
	rejectedCap      atomic.Uint64
	panics           atomic.Uint64
	stuck            atomic.Uint64
	rollbacks        atomic.Uint64
}

// Server is the multi-campaign tuning server. Create one with New, mount
// Handler on an http.Server, and call Drain then Close on shutdown.
type Server struct {
	cfg      Config
	store    *Store
	group    *lynceus.ShareGroup
	limiter  *Limiter
	watchdog *Watchdog
	mux      *http.ServeMux

	mu        sync.Mutex // campaigns map + ID generation
	campaigns map[string]*campaign
	nextID    uint64

	queueMu     sync.RWMutex // enqueue vs. queue close
	queueClosed bool
	queue       chan *stepJob
	inflight    sync.WaitGroup
	workersWG   sync.WaitGroup

	draining  atomic.Bool
	sweepStop chan struct{}
	sweepDone chan struct{}
	closeOnce sync.Once

	stats counters
}

type stepJob struct {
	c         *campaign
	steps     int
	abandoned atomic.Bool
	done      chan stepReply
}

type stepReply struct {
	code   int
	status CampaignStatus
	errMsg string
}

// stepResult is what one executed step batch reports back to the executor.
type stepResult struct {
	stepped  int
	done     bool
	err      error
	panicked string
	stale    bool // abandoned mid-batch; reply already sent
}

// New opens the state directory, resumes every persisted campaign, and
// starts the step executors and the watchdog sweeper. Resumption is bitwise:
// each campaign continues the exact trial sequence its last snapshot
// recorded, on a freshly rebuilt environment whose mutable state the
// snapshot restored.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := OpenStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		group:     lynceus.NewShareGroup(),
		limiter:   NewLimiter(cfg.Rate, cfg.Burst, cfg.Now),
		watchdog:  NewWatchdog(cfg.StepDeadline, cfg.Now),
		campaigns: make(map[string]*campaign),
		queue:     make(chan *stepJob, cfg.QueueDepth),
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	if err := s.rescan(); err != nil {
		return nil, err
	}
	s.mux = s.newMux()
	for w := 0; w < cfg.Workers; w++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	go s.sweepLoop()
	return s, nil
}

// rescan rebuilds every persisted campaign: environment from the spec, then
// resume from the snapshot (or a fresh start when the campaign was admitted
// but never stepped). A campaign that fails to resume is registered
// quarantined with the failure as its reason — visible and reportable, never
// silently dropped, and never fatal to the server.
func (s *Server) rescan() error {
	specs, err := s.store.Specs()
	if err != nil {
		return err
	}
	for _, spec := range specs {
		c := &campaign{spec: spec}
		c.status = CampaignStatus{ID: spec.ID, State: StateActive, RemainingBudget: spec.Options.Budget}
		if err := s.buildTuner(c); err != nil {
			s.cfg.Logf("serve: campaign %s failed to resume: %v", spec.ID, err)
			c.setStatus(func(st *CampaignStatus) {
				st.State = StateQuarantined
				st.QuarantineReason = fmt.Sprintf("resume failed: %v", err)
			})
		} else {
			c.refreshStatus(0)
			s.stats.resumedOnStart.Add(1)
		}
		s.campaigns[spec.ID] = c
		s.cfg.Logf("serve: campaign %s rescanned (state %s, %d trials)", spec.ID, c.getStatus().State, c.getStatus().Trials)
	}
	return nil
}

// buildTuner (re)constructs a campaign's environment and tuner from its spec
// and latest snapshot. Caller must hold stepMu or otherwise own the campaign
// exclusively.
func (s *Server) buildTuner(c *campaign) error {
	env, err := s.cfg.EnvFactory(c.spec.Env)
	if err != nil {
		return fmt.Errorf("building environment: %w", err)
	}
	snap, ok, err := s.store.Snapshot(c.spec.ID)
	if err != nil {
		return err
	}
	var tuner *lynceus.Tuner
	if ok {
		tuner, err = lynceus.ResumeTunerShared(c.spec.Tuner.TunerConfig(), env, snap, lynceus.ResumeFuncs{}, s.group)
		if err != nil {
			return fmt.Errorf("resuming snapshot: %w", err)
		}
	} else {
		tuner, err = lynceus.StartTunerShared(c.spec.Tuner.TunerConfig(), env, c.spec.Options.Options(), s.group)
		if err != nil {
			return fmt.Errorf("starting campaign: %w", err)
		}
	}
	c.env, c.tuner = env, tuner
	return nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Group returns the server-wide share group (campaigns on equal spaces share
// artifacts through it).
func (s *Server) Group() *lynceus.ShareGroup { return s.group }

func (s *Server) newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleCreate)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("POST /campaigns/{id}/step", s.handleStep)
	mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /campaigns/{id}/recommendation", s.handleRecommendation)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// clientID identifies the caller for rate limiting: the X-Client-ID header
// when present, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error      string  `json:"error"`
	RetryAfter float64 `json:"retry_after_seconds,omitempty"`
}

// shed rejects a request with a Retry-After hint — the load-shedding reply:
// the server tells the client when trying again is worthwhile instead of
// holding its request in an unbounded queue.
func shed(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(retryAfter.Seconds()))))
	}
	writeJSON(w, code, errorBody{Error: msg, RetryAfter: retryAfter.Seconds()})
}

// admit runs the common admission path of mutating endpoints: drain check,
// then the per-client token bucket. It reports whether the request may
// proceed (it has already been answered otherwise).
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.draining.Load() {
		s.stats.rejectedDraining.Add(1)
		shed(w, http.StatusServiceUnavailable, "server draining", 5*time.Second)
		return false
	}
	if ok, retryAfter := s.limiter.Allow(clientID(r)); !ok {
		s.stats.rejectedRate.Add(1)
		shed(w, http.StatusTooManyRequests, "rate limit exceeded", retryAfter)
		return false
	}
	return true
}

// createRequest is the body of POST /campaigns.
type createRequest struct {
	ID      string      `json:"id,omitempty"`
	Env     EnvSpec     `json:"env"`
	Tuner   TunerSpec   `json:"tuner"`
	Options OptionsSpec `json:"options"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	id := req.ID
	if id == "" {
		id = s.generateID()
	}
	spec := CampaignSpec{ID: id, Env: req.Env, Tuner: req.Tuner, Options: req.Options}
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// Admission control on campaign count: past the cap the server sheds
	// creation instead of accumulating unbounded live tuner state.
	s.mu.Lock()
	if _, exists := s.campaigns[id]; exists {
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("campaign %q already exists", id)})
		return
	}
	if len(s.campaigns) >= s.cfg.MaxCampaigns {
		s.mu.Unlock()
		s.stats.rejectedCap.Add(1)
		shed(w, http.StatusServiceUnavailable, "campaign capacity reached", 30*time.Second)
		return
	}
	// Reserve the slot with a placeholder-free two-phase approach: build
	// outside the lock, then re-check. Building first would race; holding
	// the lock across construction would serialize creations. Reserve now.
	s.campaigns[id] = nil
	s.mu.Unlock()

	c := &campaign{spec: spec}
	c.status = CampaignStatus{ID: id, State: StateActive, RemainingBudget: spec.Options.Budget}
	err := s.buildTuner(c)
	if err == nil {
		// Durable before acknowledged: the spec hits disk before the client
		// learns the campaign exists, so a crash after the 201 can always
		// rebuild it.
		err = s.store.PutSpec(spec)
	}
	s.mu.Lock()
	if err != nil {
		delete(s.campaigns, id)
		s.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	s.campaigns[id] = c
	s.mu.Unlock()
	s.cfg.Logf("serve: campaign %s created (%s/%s)", id, spec.Env.Kind, spec.Env.Name)
	writeJSON(w, http.StatusCreated, c.getStatus())
}

// generateID allocates an unused server-assigned campaign ID.
func (s *Server) generateID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.nextID++
		id := fmt.Sprintf("c-%06d", s.nextID)
		if _, exists := s.campaigns[id]; !exists {
			return id
		}
	}
}

func (s *Server) lookup(id string) (*campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok && c != nil
}

// stepRequest is the body of POST /campaigns/{id}/step. An empty body means
// one step.
type stepRequest struct {
	Steps int `json:"steps,omitempty"`
}

// stepResponse is the reply of a successful step batch.
type stepResponse struct {
	CampaignStatus
	Stepped int `json:"stepped"`
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such campaign"})
		return
	}
	st := c.getStatus()
	switch st.State {
	case StateQuarantined:
		writeJSON(w, http.StatusConflict, errorBody{Error: "campaign quarantined: " + st.QuarantineReason})
		return
	case StateDone:
		writeJSON(w, http.StatusOK, stepResponse{CampaignStatus: st})
		return
	}
	steps := 1
	if r.ContentLength != 0 {
		var req stepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
			return
		}
		if req.Steps > 0 {
			steps = req.Steps
		}
	}
	const maxStepsPerRequest = 10_000
	if steps > maxStepsPerRequest {
		steps = maxStepsPerRequest
	}

	job := &stepJob{c: c, steps: steps, done: make(chan stepReply, 1)}

	// The bounded admission queue: a full queue sheds immediately with
	// Retry-After. In-flight work is tracked so Drain can wait for it.
	s.queueMu.RLock()
	if s.queueClosed {
		s.queueMu.RUnlock()
		s.stats.rejectedDraining.Add(1)
		shed(w, http.StatusServiceUnavailable, "server draining", 5*time.Second)
		return
	}
	s.inflight.Add(1)
	select {
	case s.queue <- job:
		s.queueMu.RUnlock()
		s.stats.stepRequests.Add(1)
	default:
		s.inflight.Done()
		s.queueMu.RUnlock()
		s.stats.rejectedQueue.Add(1)
		shed(w, http.StatusServiceUnavailable, "admission queue full", time.Second)
		return
	}

	select {
	case reply := <-job.done:
		if reply.errMsg != "" {
			body := struct {
				errorBody
				CampaignStatus
			}{errorBody{Error: reply.errMsg}, reply.status}
			writeJSON(w, reply.code, body)
			return
		}
		writeJSON(w, reply.code, stepResponse{CampaignStatus: reply.status, Stepped: reply.status.Steps - st.Steps})
	case <-r.Context().Done():
		// Client gone; the job still runs to completion (its snapshot is
		// durable regardless) and the reply is dropped on the buffered
		// channel.
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such campaign"})
		return
	}
	writeJSON(w, http.StatusOK, c.getStatus())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.campaigns))
	for id, c := range s.campaigns {
		if c != nil {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	sort.Strings(ids)
	statuses := make([]CampaignStatus, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.lookup(id); ok {
			statuses = append(statuses, c.getStatus())
		}
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleRecommendation(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such campaign"})
		return
	}
	if !c.stepMu.TryLock() {
		s.stats.rejectedBusy.Add(1)
		shed(w, http.StatusConflict, "campaign is stepping", time.Second)
		return
	}
	defer c.stepMu.Unlock()
	if st := c.getStatus(); st.State == StateQuarantined {
		writeJSON(w, http.StatusConflict, errorBody{Error: "campaign quarantined: " + st.QuarantineReason})
		return
	}
	result, err := c.tuner.Result()
	if err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, result)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c, ok := s.lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such campaign"})
		return
	}
	if st := c.getStatus(); st.State != StateQuarantined {
		// Live campaigns must be idle to delete; quarantined ones are
		// deletable even with their stepMu leaked by an abandoned step.
		if !c.stepMu.TryLock() {
			s.stats.rejectedBusy.Add(1)
			shed(w, http.StatusConflict, "campaign is stepping", time.Second)
			return
		}
		defer c.stepMu.Unlock()
	}
	c.deleted.Store(true)
	s.mu.Lock()
	delete(s.campaigns, id)
	s.mu.Unlock()
	if err := s.store.Remove(id); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	s.cfg.Logf("serve: campaign %s deleted", id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats assembles the server's observability counters.
func (s *Server) Stats() Stats {
	st := Stats{
		QueueLen:         len(s.queue),
		QueueCap:         cap(s.queue),
		Draining:         s.draining.Load(),
		ResumedOnStart:   s.stats.resumedOnStart.Load(),
		StepsCompleted:   s.stats.stepsCompleted.Load(),
		StepRequests:     s.stats.stepRequests.Load(),
		RejectedRate:     s.stats.rejectedRate.Load(),
		RejectedQueue:    s.stats.rejectedQueue.Load(),
		RejectedBusy:     s.stats.rejectedBusy.Load(),
		RejectedDraining: s.stats.rejectedDraining.Load(),
		RejectedCap:      s.stats.rejectedCap.Load(),
		Panics:           s.stats.panics.Load(),
		StuckCampaigns:   s.stats.stuck.Load(),
		WatchdogCancels:  s.watchdog.Fired(),
		Rollbacks:        s.stats.rollbacks.Load(),
		LimiterClients:   s.limiter.Clients(),
		WatchdogArmed:    s.watchdog.Armed(),
	}
	s.mu.Lock()
	for _, c := range s.campaigns {
		if c == nil {
			continue
		}
		st.Campaigns++
		switch c.getStatus().State {
		case StateActive:
			st.ActiveCampaigns++
		case StateDone:
			st.DoneCampaigns++
		case StateQuarantined:
			st.Quarantined++
		}
	}
	s.mu.Unlock()
	return st
}

// worker is one step executor: it drains the admission queue, running each
// job under the watchdog with panic isolation.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for job := range s.queue {
		s.runJob(job)
		s.inflight.Done()
	}
}

// runJob executes one step batch. The failure containment ladder:
//
//  1. A step error (failed profiling run, snapshot failure, cancellation)
//     rolls the campaign back to its last durable snapshot — the in-memory
//     state after a failed Step is undefined, the snapshot is not — and the
//     campaign stays usable.
//  2. A watchdog cancellation that the step honors (it stops at the next
//     planner-phase boundary) is case 1 with a 504 reply.
//  3. A step that ignores cancellation past the grace period is abandoned:
//     its goroutine keeps the campaign's stepMu forever, the campaign is
//     quarantined, the worker moves on. The zombie can never touch durable
//     state again (the abandoned flag gates the snapshot write).
//  4. A panicking step is recovered in its goroutine and quarantines only
//     its campaign; the worker, the server and the ShareGroup peers are
//     untouched.
func (s *Server) runJob(job *stepJob) {
	c := job.c
	if !c.stepMu.TryLock() {
		s.stats.rejectedBusy.Add(1)
		job.done <- stepReply{code: http.StatusConflict, status: c.getStatus(), errMsg: "campaign is stepping"}
		return
	}
	if c.deleted.Load() {
		c.stepMu.Unlock()
		job.done <- stepReply{code: http.StatusNotFound, status: c.getStatus(), errMsg: "campaign deleted"}
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	token := s.watchdog.Arm(c.spec.ID, cancel)
	resCh := make(chan stepResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				resCh <- stepResult{panicked: fmt.Sprintf("%v\n%s", r, debug.Stack())}
			}
		}()
		resCh <- s.execSteps(ctx, c, job)
	}()

	var res stepResult
	select {
	case res = <-resCh:
	case <-ctx.Done():
		// Watchdog fired. Give the step CancelGrace to stop cooperatively
		// at a planner-phase boundary; past that it is stuck for real.
		timer := time.NewTimer(s.cfg.CancelGrace)
		select {
		case res = <-resCh:
			timer.Stop()
		case <-timer.C:
			job.abandoned.Store(true)
			s.stats.stuck.Add(1)
			s.quarantine(c, "stuck: step exceeded its deadline and ignored cancellation")
			s.watchdog.Disarm(token)
			// stepMu stays locked forever — see the campaign.stepMu comment.
			job.done <- stepReply{code: http.StatusGatewayTimeout, status: c.getStatus(),
				errMsg: "step deadline exceeded; campaign quarantined as stuck"}
			return
		}
	}
	s.watchdog.Disarm(token)

	switch {
	case res.panicked != "":
		s.stats.panics.Add(1)
		s.quarantine(c, "panic during step: "+firstLine(res.panicked))
		s.cfg.Logf("serve: campaign %s panicked, quarantined:\n%s", c.spec.ID, res.panicked)
		c.stepMu.Unlock()
		job.done <- stepReply{code: http.StatusInternalServerError, status: c.getStatus(),
			errMsg: "campaign panicked and was quarantined"}
	case res.stale:
		c.stepMu.Unlock()
	case res.err != nil:
		code := http.StatusInternalServerError
		msg := res.err.Error()
		if errors.Is(res.err, lynceus.ErrCampaignCancelled) {
			code = http.StatusGatewayTimeout
			msg = "step cancelled by watchdog deadline; campaign rolled back to its last snapshot"
		}
		if rbErr := s.rollback(c); rbErr != nil {
			s.quarantine(c, fmt.Sprintf("rollback after step error failed: %v (step error: %v)", rbErr, res.err))
			c.stepMu.Unlock()
			job.done <- stepReply{code: http.StatusInternalServerError, status: c.getStatus(),
				errMsg: "step failed and rollback failed; campaign quarantined"}
			return
		}
		c.setStatus(func(st *CampaignStatus) { st.LastError = res.err.Error() })
		c.stepMu.Unlock()
		job.done <- stepReply{code: code, status: c.getStatus(), errMsg: msg}
	default:
		c.stepMu.Unlock()
		job.done <- stepReply{code: http.StatusOK, status: c.getStatus()}
	}
}

// execSteps runs the job's steps, snapshotting durably after each one: the
// write-ahead discipline — Step, then snapshot to disk, then acknowledge —
// is what bounds a kill -9 loss to the single in-flight step.
func (s *Server) execSteps(ctx context.Context, c *campaign, job *stepJob) stepResult {
	out := stepResult{}
	for i := 0; i < job.steps; i++ {
		done, err := c.tuner.StepContext(ctx)
		if err != nil {
			out.err = err
			return out
		}
		snap, err := c.tuner.Snapshot()
		if err != nil {
			out.err = fmt.Errorf("snapshotting after step: %w", err)
			return out
		}
		if job.abandoned.Load() {
			// The executor already replied and quarantined the campaign;
			// this zombie must not advance durable state.
			out.stale = true
			return out
		}
		if err := s.store.PutSnapshot(c.spec.ID, snap); err != nil {
			out.err = err
			return out
		}
		s.stats.stepsCompleted.Add(1)
		c.refreshStatus(1)
		out.stepped++
		if done {
			out.done = true
			return out
		}
	}
	return out
}

// rollback rebuilds a campaign from its last durable snapshot (or from
// scratch when none exists yet). Caller holds stepMu.
func (s *Server) rollback(c *campaign) error {
	s.stats.rollbacks.Add(1)
	if err := s.buildTuner(c); err != nil {
		return err
	}
	c.refreshStatus(0)
	return nil
}

func (s *Server) quarantine(c *campaign, reason string) {
	c.setStatus(func(st *CampaignStatus) {
		st.State = StateQuarantined
		st.QuarantineReason = reason
	})
}

func firstLine(v string) string {
	for i := 0; i < len(v); i++ {
		if v[i] == '\n' {
			return v[:i]
		}
	}
	return v
}

// sweepLoop periodically fires the watchdog.
func (s *Server) sweepLoop() {
	defer close(s.sweepDone)
	ticker := time.NewTicker(s.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, id := range s.watchdog.Sweep() {
				s.cfg.Logf("serve: watchdog cancelled a step of campaign %s", id)
			}
		case <-s.sweepStop:
			return
		}
	}
}

// Drain puts the server into graceful-drain mode: new work is shed with 503
// (readiness flips to draining), and the call blocks until every admitted
// step finished — each one having written its snapshot durably — or the
// context expires. After Drain, every campaign's progress is on disk and a
// restart resumes all of them bitwise.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.cfg.Logf("serve: draining (%d queued)", len(s.queue))
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cfg.Logf("serve: drained")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// Close stops the executors and the watchdog sweeper. Call Drain first for
// a graceful shutdown; Close alone abandons queued work (their snapshots
// from prior steps remain durable).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.queueMu.Lock()
		s.queueClosed = true
		close(s.queue)
		s.queueMu.Unlock()
		close(s.sweepStop)
		s.workersWG.Wait()
		<-s.sweepDone
	})
	return nil
}
