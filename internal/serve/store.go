package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is the server's durable state directory: one subdirectory per
// campaign holding spec.json (the campaign's definition, written once at
// admission) and snapshot.json (its progress, rewritten after every
// completed step). Every write goes through a same-directory temp file,
// fsync and rename, so a kill -9 at any instant leaves either the old or
// the new file — never a truncated one. That atomic-rename discipline is
// the write-ahead layer the crash-recovery guarantee rests on: restart
// loses at most the step that had not yet renamed its snapshot into place.
type Store struct {
	dir string
}

const (
	specFile     = "spec.json"
	snapshotFile = "snapshot.json"
	tmpPrefix    = ".tmp-"
)

// OpenStore opens (creating if needed) the state directory and sweeps
// leftover temp files from a previous crash mid-write.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("serve: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating state directory: %w", err)
	}
	s := &Store{dir: dir}
	// Orphaned temp files are dead by construction (the rename never
	// happened); removing them keeps rescans clean.
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), tmpPrefix) {
			_ = os.Remove(path)
		}
		return nil
	})
	return s, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

func (s *Store) campaignDir(id string) string { return filepath.Join(s.dir, id) }

// PutSpec persists a campaign's definition (idempotent; called once at
// admission, before the campaign is acknowledged to the client).
func (s *Store) PutSpec(spec CampaignSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", " ")
	if err != nil {
		return fmt.Errorf("serve: encoding spec %q: %w", spec.ID, err)
	}
	dir := s.campaignDir(spec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating campaign directory %q: %w", spec.ID, err)
	}
	return writeFileAtomic(filepath.Join(dir, specFile), data)
}

// PutSnapshot durably replaces a campaign's snapshot.
func (s *Store) PutSnapshot(id string, snapshot []byte) error {
	if !ValidID(id) {
		return fmt.Errorf("serve: invalid campaign ID %q", id)
	}
	return writeFileAtomic(filepath.Join(s.campaignDir(id), snapshotFile), snapshot)
}

// Snapshot reads a campaign's snapshot; ok is false when none has been
// written yet (a campaign admitted but never stepped).
func (s *Store) Snapshot(id string) (data []byte, ok bool, err error) {
	data, err = os.ReadFile(filepath.Join(s.campaignDir(id), snapshotFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("serve: reading snapshot %q: %w", id, err)
	}
	return data, true, nil
}

// Specs rescans the state directory and returns every persisted campaign
// definition in ID order — the restart path: the server rebuilds each
// environment from its spec and resumes from its snapshot.
func (s *Store) Specs() ([]CampaignSpec, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning state directory: %w", err)
	}
	var specs []CampaignSpec
	for _, e := range entries {
		if !e.IsDir() || !ValidID(e.Name()) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name(), specFile))
		if errors.Is(err, fs.ErrNotExist) {
			// A campaign directory without a spec is a crash between MkdirAll
			// and the spec rename; the campaign was never acknowledged, so
			// skipping it is correct.
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("serve: reading spec of %q: %w", e.Name(), err)
		}
		var spec CampaignSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return nil, fmt.Errorf("serve: decoding spec of %q: %w", e.Name(), err)
		}
		if spec.ID != e.Name() {
			return nil, fmt.Errorf("serve: spec in directory %q claims ID %q", e.Name(), spec.ID)
		}
		specs = append(specs, spec)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	return specs, nil
}

// Remove deletes a campaign's state.
func (s *Store) Remove(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("serve: invalid campaign ID %q", id)
	}
	return os.RemoveAll(s.campaignDir(id))
}

// writeFileAtomic writes data via same-directory temp file + fsync + rename.
// The fsync before the rename is what upgrades "atomic" to "durable": after
// PutSnapshot returns, the bytes survive a power cut, not just a process
// kill.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		if serr != nil {
			return serr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Persist the rename itself (the directory entry); ignore filesystems
	// that refuse to sync directories.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
