package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	lynceus "repro"
)

// fastSpec is the cheap real campaign of the server tests: the synthetic
// Tensorflow cnn job with a small budget, finishing in a couple dozen trials.
func fastSpec(t *testing.T, id string, seed int64) createRequest {
	t.Helper()
	job, err := lynceus.SyntheticTensorflowJob("cnn", 42)
	if err != nil {
		t.Fatalf("SyntheticTensorflowJob: %v", err)
	}
	tmax, err := job.RuntimeForFeasibleFraction(0.5)
	if err != nil {
		t.Fatalf("RuntimeForFeasibleFraction: %v", err)
	}
	return createRequest{
		ID:    id,
		Env:   EnvSpec{Kind: "tensorflow", Name: "cnn", Seed: 42},
		Tuner: TunerSpec{Lookahead: 1, Workers: 1},
		Options: OptionsSpec{
			Budget:            6 * job.MeanCost(),
			MaxRuntimeSeconds: tmax,
			BootstrapSize:     5,
			Seed:              seed,
		},
	}
}

// baselineRun executes the same campaign uninterrupted and in-process — the
// reference every robustness scenario must match bitwise.
func baselineRun(t *testing.T, req createRequest) lynceus.Result {
	t.Helper()
	env, err := BuildEnv(req.Env)
	if err != nil {
		t.Fatalf("BuildEnv: %v", err)
	}
	tuner, err := lynceus.StartTunerShared(req.Tuner.TunerConfig(), env, req.Options.Options(), lynceus.NewShareGroup())
	if err != nil {
		t.Fatalf("StartTunerShared: %v", err)
	}
	res, err := tuner.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return res
}

func assertSameTrials(t *testing.T, label string, got, want lynceus.Result) {
	t.Helper()
	if got.Recommended.Config.ID != want.Recommended.Config.ID {
		t.Fatalf("%s: recommended config %d, want %d", label, got.Recommended.Config.ID, want.Recommended.Config.ID)
	}
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("%s: %d trials, want %d", label, len(got.Trials), len(want.Trials))
	}
	for i := range got.Trials {
		if got.Trials[i].Config.ID != want.Trials[i].Config.ID ||
			math.Float64bits(got.Trials[i].Cost) != math.Float64bits(want.Trials[i].Cost) {
			t.Fatalf("%s: trial %d = config %d cost %x, want config %d cost %x", label, i,
				got.Trials[i].Config.ID, math.Float64bits(got.Trials[i].Cost),
				want.Trials[i].Config.ID, math.Float64bits(want.Trials[i].Cost))
		}
	}
}

// testClient wraps the HTTP plumbing of the tests.
type testClient struct {
	t    *testing.T
	base string
}

func (c *testClient) do(method, path string, body any) (int, []byte, http.Header) {
	c.t.Helper()
	var buf io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		buf = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, buf)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

func (c *testClient) mustJSON(method, path string, body any, wantCode int, out any) {
	c.t.Helper()
	code, data, _ := c.do(method, path, body)
	if code != wantCode {
		c.t.Fatalf("%s %s = %d, want %d (body %s)", method, path, code, wantCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, data, err)
		}
	}
}

// stepUntilDone drives a campaign to completion over the API.
func (c *testClient) stepUntilDone(id string) CampaignStatus {
	c.t.Helper()
	for i := 0; i < 200; i++ {
		var st stepResponse
		c.mustJSON("POST", "/campaigns/"+id+"/step", stepRequest{Steps: 5}, http.StatusOK, &st)
		if st.Done {
			return st.CampaignStatus
		}
	}
	c.t.Fatalf("campaign %s did not finish within 1000 steps", id)
	return CampaignStatus{}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *testClient) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.Rate == 0 {
		cfg.Rate = -1 // most tests want no rate limiting
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &testClient{t: t, base: hs.URL}
}

func TestServerLifecycle(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := fastSpec(t, "life", 3)

	var created CampaignStatus
	client.mustJSON("POST", "/campaigns", req, http.StatusCreated, &created)
	if created.ID != "life" || created.State != StateActive {
		t.Fatalf("created = %+v", created)
	}
	// Duplicate IDs conflict.
	client.mustJSON("POST", "/campaigns", req, http.StatusConflict, nil)

	var list []CampaignStatus
	client.mustJSON("GET", "/campaigns", nil, http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != "life" {
		t.Fatalf("list = %+v", list)
	}

	final := client.stepUntilDone("life")
	if !final.Done || final.State != StateDone || final.Trials == 0 {
		t.Fatalf("final status = %+v", final)
	}
	// Stepping a done campaign is an idempotent no-op.
	var again stepResponse
	client.mustJSON("POST", "/campaigns/life/step", nil, http.StatusOK, &again)
	if again.Trials != final.Trials {
		t.Fatalf("stepping a done campaign changed trials: %d -> %d", final.Trials, again.Trials)
	}

	var got lynceus.Result
	client.mustJSON("GET", "/campaigns/life/recommendation", nil, http.StatusOK, &got)
	assertSameTrials(t, "served vs baseline", got, baselineRun(t, req))

	client.mustJSON("DELETE", "/campaigns/life", nil, http.StatusNoContent, nil)
	client.mustJSON("GET", "/campaigns/life", nil, http.StatusNotFound, nil)
	client.mustJSON("GET", "/campaigns/unknown", nil, http.StatusNotFound, nil)
}

func TestServerRestartResumesBitwise(t *testing.T) {
	dir := t.TempDir()
	reqs := []createRequest{fastSpec(t, "r1", 11), fastSpec(t, "r2", 12)}

	// First server: admit both campaigns, advance them partway, stop without
	// any warning beyond what every completed step already persisted.
	srvA, clientA := newTestServer(t, Config{StateDir: dir})
	for _, req := range reqs {
		clientA.mustJSON("POST", "/campaigns", req, http.StatusCreated, nil)
		var st stepResponse
		clientA.mustJSON("POST", "/campaigns/"+req.ID+"/step", stepRequest{Steps: 4}, http.StatusOK, &st)
		if st.Trials == 0 {
			t.Fatalf("campaign %s recorded no trials before the restart", req.ID)
		}
	}
	srvA.Close()

	// Second server on the same state directory: both campaigns resume and
	// finish exactly as if never interrupted.
	srvB, clientB := newTestServer(t, Config{StateDir: dir})
	if got := srvB.Stats().ResumedOnStart; got != 2 {
		t.Fatalf("ResumedOnStart = %d, want 2", got)
	}
	for _, req := range reqs {
		var st CampaignStatus
		clientB.mustJSON("GET", "/campaigns/"+req.ID, nil, http.StatusOK, &st)
		if st.State != StateActive || st.Trials == 0 {
			t.Fatalf("campaign %s after restart = %+v", req.ID, st)
		}
		clientB.stepUntilDone(req.ID)
		var got lynceus.Result
		clientB.mustJSON("GET", "/campaigns/"+req.ID+"/recommendation", nil, http.StatusOK, &got)
		assertSameTrials(t, "resumed "+req.ID, got, baselineRun(t, req))
	}
}

// gateEnv blocks every Run until released, signalling entry — the tests'
// handle on "a step is executing right now".
type gateEnv struct {
	inner   lynceus.Environment
	entered chan struct{}
	release chan struct{}
}

func newGateEnv(t *testing.T) *gateEnv {
	t.Helper()
	env, err := BuildEnv(EnvSpec{Kind: "tensorflow", Name: "cnn", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return &gateEnv{inner: env, entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (g *gateEnv) Space() *lynceus.Space { return g.inner.Space() }
func (g *gateEnv) Run(cfg lynceus.Config) (lynceus.Trial, error) {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.release
	return g.inner.Run(cfg)
}
func (g *gateEnv) UnitPricePerHour(cfg lynceus.Config) (float64, error) {
	return g.inner.UnitPricePerHour(cfg)
}

// factoryFor overrides construction of selected env names, delegating the
// rest to BuildEnv.
func factoryFor(overrides map[string]lynceus.Environment) func(EnvSpec) (lynceus.Environment, error) {
	return func(spec EnvSpec) (lynceus.Environment, error) {
		if env, ok := overrides[spec.Name]; ok {
			return env, nil
		}
		return BuildEnv(spec)
	}
}

func TestServerOverloadSheds(t *testing.T) {
	gate := newGateEnv(t)
	_, client := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		EnvFactory: factoryFor(map[string]lynceus.Environment{"gate": gate}),
	})

	slow := fastSpec(t, "slow", 7)
	slow.Env.Name = "gate"
	fast := fastSpec(t, "fast", 8)
	client.mustJSON("POST", "/campaigns", slow, http.StatusCreated, nil)
	client.mustJSON("POST", "/campaigns", fast, http.StatusCreated, nil)

	// Occupy the only worker with a gated step, then fill the queue.
	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, body, _ := client.do("POST", "/campaigns/slow/step", nil)
			replies <- reply{code, body}
		}()
		if i == 0 {
			select {
			case <-gate.entered:
			case <-time.After(10 * time.Second):
				t.Fatal("gated step never started")
			}
		} else {
			// The second job has no execution signal; wait until it shows
			// up in the queue.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				var st Stats
				client.mustJSON("GET", "/stats", nil, http.StatusOK, &st)
				if st.QueueLen >= 1 {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}

	// Worker busy + queue full: the next step request is shed, not queued.
	code, body, hdr := client.do("POST", "/campaigns/fast/step", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overflow request = %d (body %s), want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("overflow 503 carried no Retry-After header")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.RetryAfter <= 0 {
		t.Fatalf("overflow body = %s, want retry_after_seconds > 0", body)
	}

	// Release the gate; the in-flight step completes, the queued duplicate
	// is answered (409 busy or 200, depending on interleaving), and the
	// shed campaign is untouched: stepping it now reproduces the isolated
	// run bitwise.
	close(gate.release)
	for i := 0; i < 2; i++ {
		select {
		case r := <-replies:
			if r.code != http.StatusOK && r.code != http.StatusConflict {
				t.Fatalf("slow-step reply = %d (body %s)", r.code, r.body)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("slow-step replies never arrived")
		}
	}
	client.stepUntilDone("fast")
	var got lynceus.Result
	client.mustJSON("GET", "/campaigns/fast/recommendation", nil, http.StatusOK, &got)
	assertSameTrials(t, "shed campaign", got, baselineRun(t, fast))
}

func TestServerRateLimitDeterministic(t *testing.T) {
	clk := newFakeClock()
	_, client := newTestServer(t, Config{Rate: 1, Burst: 1, Now: clk.Now})

	post := func(id, clientID string) (int, http.Header) {
		data, _ := json.Marshal(fastSpec(t, id, 1))
		req, err := http.NewRequest("POST", client.base+"/campaigns", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", clientID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	if code, _ := post("a1", "alice"); code != http.StatusCreated {
		t.Fatalf("alice's first create = %d", code)
	}
	code, hdr := post("a2", "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice's second create = %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (empty bucket at 1 token/s)", ra)
	}
	// Other clients have their own bucket.
	if code, _ := post("b1", "bob"); code != http.StatusCreated {
		t.Fatalf("bob's create = %d, want 201 despite alice's empty bucket", code)
	}
	// The refill schedule is the fake clock's, exactly.
	clk.Advance(999 * time.Millisecond)
	if code, _ := post("a2", "alice"); code != http.StatusTooManyRequests {
		t.Fatalf("create at 999ms = %d, want 429", code)
	}
	clk.Advance(time.Millisecond)
	if code, _ := post("a2", "alice"); code != http.StatusCreated {
		t.Fatalf("create at 1s = %d, want 201", code)
	}
}

// panicEnv panics on every Run — the misbehaving-campaign injection.
type panicEnv struct{ inner lynceus.Environment }

func (p *panicEnv) Space() *lynceus.Space { return p.inner.Space() }
func (p *panicEnv) Run(cfg lynceus.Config) (lynceus.Trial, error) {
	panic("injected environment panic")
}
func (p *panicEnv) UnitPricePerHour(cfg lynceus.Config) (float64, error) {
	return p.inner.UnitPricePerHour(cfg)
}

func TestServerPanicIsolation(t *testing.T) {
	inner, err := BuildEnv(EnvSpec{Kind: "tensorflow", Name: "cnn", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	srv, client := newTestServer(t, Config{
		EnvFactory: factoryFor(map[string]lynceus.Environment{"boom": &panicEnv{inner: inner}}),
	})

	bad := fastSpec(t, "bad", 5)
	bad.Env.Name = "boom"
	good := fastSpec(t, "good", 6)
	client.mustJSON("POST", "/campaigns", bad, http.StatusCreated, nil)
	client.mustJSON("POST", "/campaigns", good, http.StatusCreated, nil)

	// The panicking step answers 500 and quarantines only its campaign.
	code, body, _ := client.do("POST", "/campaigns/bad/step", nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking step = %d (body %s), want 500", code, body)
	}
	var st CampaignStatus
	client.mustJSON("GET", "/campaigns/bad", nil, http.StatusOK, &st)
	if st.State != StateQuarantined || !strings.Contains(st.QuarantineReason, "panic") {
		t.Fatalf("panicked campaign status = %+v", st)
	}
	// Further steps are refused, not retried.
	client.mustJSON("POST", "/campaigns/bad/step", nil, http.StatusConflict, nil)
	if got := srv.Stats().Panics; got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}

	// The sibling campaign — same server, same ShareGroup — is unharmed.
	client.stepUntilDone("good")
	var got lynceus.Result
	client.mustJSON("GET", "/campaigns/good/recommendation", nil, http.StatusOK, &got)
	assertSameTrials(t, "sibling of panicked campaign", got, baselineRun(t, good))
}

// stuckEnv ignores everything until released — the stuck-in-foreign-code
// injection the watchdog exists for.
type stuckEnv struct {
	inner   lynceus.Environment
	release chan struct{}
}

func (s *stuckEnv) Space() *lynceus.Space { return s.inner.Space() }
func (s *stuckEnv) Run(cfg lynceus.Config) (lynceus.Trial, error) {
	<-s.release
	return s.inner.Run(cfg)
}
func (s *stuckEnv) UnitPricePerHour(cfg lynceus.Config) (float64, error) {
	return s.inner.UnitPricePerHour(cfg)
}

// sleepEnv delays every Run but otherwise behaves — slow enough for the
// watchdog to fire, cooperative enough to stop at the next trial boundary.
type sleepEnv struct {
	inner lynceus.Environment
	delay time.Duration
}

func (s *sleepEnv) Space() *lynceus.Space { return s.inner.Space() }
func (s *sleepEnv) Run(cfg lynceus.Config) (lynceus.Trial, error) {
	time.Sleep(s.delay)
	return s.inner.Run(cfg)
}
func (s *sleepEnv) UnitPricePerHour(cfg lynceus.Config) (float64, error) {
	return s.inner.UnitPricePerHour(cfg)
}

func TestServerWatchdogQuarantinesStuck(t *testing.T) {
	inner, err := BuildEnv(EnvSpec{Kind: "tensorflow", Name: "cnn", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	stuck := &stuckEnv{inner: inner, release: make(chan struct{})}
	defer close(stuck.release) // let the zombie goroutine exit after the test

	srv, client := newTestServer(t, Config{
		StepDeadline:  30 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
		CancelGrace:   time.Second,
		EnvFactory: factoryFor(map[string]lynceus.Environment{
			"tar":  stuck,
			"slow": &sleepEnv{inner: inner, delay: 10 * time.Millisecond},
		}),
	})

	req := fastSpec(t, "wedged", 9)
	req.Env.Name = "tar"
	client.mustJSON("POST", "/campaigns", req, http.StatusCreated, nil)

	code, body, _ := client.do("POST", "/campaigns/wedged/step", nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("stuck step = %d (body %s), want 504", code, body)
	}
	var st CampaignStatus
	client.mustJSON("GET", "/campaigns/wedged", nil, http.StatusOK, &st)
	if st.State != StateQuarantined || !strings.Contains(st.QuarantineReason, "stuck") {
		t.Fatalf("stuck campaign status = %+v", st)
	}
	stats := srv.Stats()
	if stats.StuckCampaigns != 1 || stats.WatchdogCancels == 0 {
		t.Fatalf("stats = %+v, want 1 stuck campaign and >0 watchdog cancels", stats)
	}

	// The server itself is fine, and an overrunning-but-cooperative step is
	// the *other* watchdog outcome: cancelled at a trial boundary, rolled
	// back to its last snapshot, answered 504 — and still active, not
	// quarantined.
	slow := fastSpec(t, "after", 10)
	slow.Env.Name = "slow"
	client.mustJSON("POST", "/campaigns", slow, http.StatusCreated, nil)
	code, body, _ = client.do("POST", "/campaigns/after/step", stepRequest{Steps: 10_000})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("overrunning step = %d (body %s), want 504", code, body)
	}
	client.mustJSON("GET", "/campaigns/after", nil, http.StatusOK, &st)
	if st.State != StateActive {
		t.Fatalf("cooperatively cancelled campaign = %+v, want still active", st)
	}
	if !strings.Contains(st.LastError, "campaign cancelled") {
		t.Fatalf("LastError = %q, want the cancellation sentinel", st.LastError)
	}
	if got := srv.Stats().Rollbacks; got == 0 {
		t.Fatal("no rollback recorded for the cancelled step")
	}
}

func TestServerDrain(t *testing.T) {
	gate := newGateEnv(t)
	srv, client := newTestServer(t, Config{
		Workers:    1,
		EnvFactory: factoryFor(map[string]lynceus.Environment{"gate": gate}),
	})

	req := fastSpec(t, "d1", 13)
	req.Env.Name = "gate"
	client.mustJSON("POST", "/campaigns", req, http.StatusCreated, nil)

	stepDone := make(chan reply2, 1)
	go func() {
		code, body, _ := client.do("POST", "/campaigns/d1/step", nil)
		stepDone <- reply2{code, body}
	}()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("gated step never started")
	}

	// Drain with an in-flight step: it must wait, and time out when asked to.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with a step still in flight")
	}

	// Draining sheds all new work with Retry-After, while health stays up
	// and readiness reports the drain.
	code, _, hdr := client.do("POST", "/campaigns/d1/step", nil)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("step while draining = %d (Retry-After %q), want 503 with a hint", code, hdr.Get("Retry-After"))
	}
	if code, _, _ := client.do("POST", "/campaigns", fastSpec(t, "d2", 14)); code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining = %d, want 503", code)
	}
	client.mustJSON("GET", "/healthz", nil, http.StatusOK, nil)
	client.mustJSON("GET", "/readyz", nil, http.StatusServiceUnavailable, nil)

	// Release the gate: the in-flight step finishes (snapshotting durably)
	// and the drain completes.
	close(gate.release)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	r := <-stepDone
	if r.code != http.StatusOK {
		t.Fatalf("in-flight step during drain = %d (body %s), want 200", r.code, r.body)
	}
	if _, ok, err := srv.store.Snapshot("d1"); err != nil || !ok {
		t.Fatalf("no durable snapshot after drain (ok=%v err=%v)", ok, err)
	}
}

type reply2 struct {
	code int
	body []byte
}
