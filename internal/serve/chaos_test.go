//go:build !race

// The chaos test exercises the crash-safety guarantee end to end on the real
// binary: SIGKILL mid-traffic, restart, and every campaign must finish
// bitwise identical to an uninterrupted run. It is excluded from race builds:
// the killed process is a separate binary the detector cannot instrument, and
// the ~20x slowdown of the in-process baseline buys nothing.

package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	lynceus "repro"
	"repro/internal/faults"
)

// serveProc is one lynceus-serve process under test control.
type serveProc struct {
	cmd  *exec.Cmd
	base string
}

func buildServeBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := dir + "/lynceus-serve"
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/lynceus-serve")
	cmd.Dir = "../.." // repo root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building lynceus-serve: %v\n%s", err, out)
	}
	return bin
}

func startServeProc(t *testing.T, bin, stateDir string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-state-dir", stateDir,
		"-rate", "-1", // the chaos traffic is not a rate-limiting test
		"-step-deadline", "1m",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting lynceus-serve: %v", err)
	}
	// The first stdout line announces the listening address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("lynceus-serve printed no listening line (scan err %v)", sc.Err())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "listening on ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected first stdout line %q", line)
	}
	go func() { // drain remaining stdout so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	p := &serveProc{cmd: cmd, base: "http://" + addr}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	})
	return p
}

func (p *serveProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no drain
		t.Fatal(err)
	}
	p.cmd.Wait()
}

func TestChaosKillRestartBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary; skipped in -short")
	}
	binDir := t.TempDir()
	stateDir := t.TempDir()
	bin := buildServeBinary(t, binDir)

	// Two campaigns, one of them under deterministic fault injection: the
	// crash must not perturb even retry/quarantine bookkeeping.
	plain := fastSpec(t, "chaos-plain", 21)
	faulty := fastSpec(t, "chaos-faulty", 22)
	faulty.Env.Faults = &faults.Params{
		Seed:               99,
		TransientRate:      0.15,
		FailedCostFraction: 0.3,
	}
	faulty.Options.Retry = RetrySpec{MaxAttempts: 3, BackoffBaseMS: 1, BackoffMaxMS: 2, Quarantine: true}
	reqs := []createRequest{plain, faulty}

	proc := startServeProc(t, bin, stateDir)
	client := &testClient{t: t, base: proc.base}
	for _, req := range reqs {
		client.mustJSON("POST", "/campaigns", req, http.StatusCreated, nil)
	}

	// Hammer both campaigns with step traffic from several goroutines while
	// the process is about to be shot: admitted steps snapshot durably, the
	// in-flight one at kill time is the at-most-one step a crash may lose.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, req := range reqs {
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					body, _ := json.Marshal(stepRequest{Steps: 2})
					resp, err := http.Post(proc.base+"/campaigns/"+id+"/step", "application/json",
						strings.NewReader(string(body)))
					if err != nil {
						return // the kill landed mid-request
					}
					resp.Body.Close()
				}
			}(req.ID)
		}
	}

	// Let real progress accumulate before the kill.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st CampaignStatus
		resp, err := http.Get(proc.base + "/campaigns/chaos-faulty")
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if st.Trials >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaigns made no progress before the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	proc.kill(t)
	close(stop)
	wg.Wait()

	// Restart on the same state directory: both campaigns must resume from
	// their last durable snapshot and finish exactly as if never killed.
	proc2 := startServeProc(t, bin, stateDir)
	client2 := &testClient{t: t, base: proc2.base}
	var stats Stats
	client2.mustJSON("GET", "/stats", nil, http.StatusOK, &stats)
	if stats.ResumedOnStart != 2 {
		t.Fatalf("ResumedOnStart after kill = %d, want 2", stats.ResumedOnStart)
	}
	for _, req := range reqs {
		var st CampaignStatus
		client2.mustJSON("GET", "/campaigns/"+req.ID, nil, http.StatusOK, &st)
		if st.State == StateQuarantined {
			t.Fatalf("campaign %s quarantined after restart: %+v", req.ID, st)
		}
		if !st.Done {
			client2.stepUntilDone(req.ID)
		}
		var got lynceus.Result
		client2.mustJSON("GET", "/campaigns/"+req.ID+"/recommendation", nil, http.StatusOK, &got)
		assertSameTrials(t, fmt.Sprintf("%s after SIGKILL", req.ID), got, baselineRun(t, req))
	}
}
