package serve

import (
	"context"
	"sync"
	"time"
)

// Watchdog detects stuck campaign steps. Every in-flight step arms an entry
// carrying its cancel function and deadline; a periodic Sweep cancels every
// overdue entry, which stops the step at its next planner-phase boundary
// through context propagation (core.Campaign.StepContext). Steps that do not
// respond to cancellation either — an Environment.Run blocked in foreign
// code — are abandoned by the executor after a grace period and their
// campaign is quarantined.
//
// The clock is injected: tests arm entries, advance a fake clock past the
// deadline, call Sweep directly and observe the cancellation, with no timing
// dependence.
type Watchdog struct {
	deadline time.Duration
	now      func() time.Time

	mu    sync.Mutex
	seq   uint64
	armed map[uint64]*armedStep
	fired uint64
}

type armedStep struct {
	campaign string
	deadline time.Time
	cancel   context.CancelFunc
}

// NewWatchdog creates a watchdog with the given per-step deadline.
// deadline <= 0 disables it (Arm becomes a no-op and Sweep never fires).
// now nil means time.Now.
func NewWatchdog(deadline time.Duration, now func() time.Time) *Watchdog {
	if now == nil {
		now = time.Now
	}
	return &Watchdog{deadline: deadline, now: now, armed: make(map[uint64]*armedStep)}
}

// Deadline returns the per-step deadline (0 when disabled).
func (w *Watchdog) Deadline() time.Duration { return w.deadline }

// Arm registers an in-flight step. cancel is invoked (once, by Sweep) if the
// step is still armed past its deadline. The returned token disarms it.
func (w *Watchdog) Arm(campaign string, cancel context.CancelFunc) (token uint64) {
	if w.deadline <= 0 {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	w.armed[w.seq] = &armedStep{campaign: campaign, deadline: w.now().Add(w.deadline), cancel: cancel}
	return w.seq
}

// Disarm unregisters a finished step. Disarming an already-swept token is a
// no-op, so executors always disarm unconditionally.
func (w *Watchdog) Disarm(token uint64) {
	if token == 0 {
		return
	}
	w.mu.Lock()
	delete(w.armed, token)
	w.mu.Unlock()
}

// Sweep cancels every armed step past its deadline and returns the campaign
// IDs it fired on. Fired entries are removed — each overdue step is
// cancelled exactly once.
func (w *Watchdog) Sweep() []string {
	if w.deadline <= 0 {
		return nil
	}
	now := w.now()
	var fired []string
	var cancels []context.CancelFunc
	w.mu.Lock()
	for token, step := range w.armed {
		if now.After(step.deadline) {
			fired = append(fired, step.campaign)
			cancels = append(cancels, step.cancel)
			delete(w.armed, token)
		}
	}
	w.fired += uint64(len(fired))
	w.mu.Unlock()
	// Cancel outside the lock: CancelFuncs may run arbitrary wakeups.
	for _, cancel := range cancels {
		cancel()
	}
	return fired
}

// Armed returns the number of in-flight steps (observability).
func (w *Watchdog) Armed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.armed)
}

// Fired returns the cumulative number of deadline cancellations.
func (w *Watchdog) Fired() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}
