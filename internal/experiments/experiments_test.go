package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/simulator"
)

// quickSuite returns a suite sized to run in test time: a single run per
// cell, a single Scout and CherryPick job, lookahead 1 and a small ensemble.
func quickSuite() *Suite {
	return NewSuite(Options{
		Runs:               1,
		Seed:               3,
		ScoutJobLimit:      1,
		CherryPickJobLimit: 1,
		Lookahead:          1,
		EnsembleTrees:      5,
		Workers:            4,
	})
}

func TestIDsAndRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"tab1", "tab2", "fig1a", "fig1b", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "tab3", "ablation", "servesim"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	found := make(map[string]bool)
	for _, id := range ids {
		found[id] = true
	}
	for _, w := range want {
		if !found[w] {
			t.Errorf("missing experiment %q", w)
		}
	}
	for _, e := range All() {
		if e.Title == "" {
			t.Errorf("experiment %q has no title", e.ID)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := quickSuite().Run("fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestOptionsDefaults(t *testing.T) {
	s := NewSuite(Options{})
	if s.Options().Runs != 10 {
		t.Errorf("default runs = %d", s.Options().Runs)
	}
	if s.Options().DatasetSeed != 42 {
		t.Errorf("default dataset seed = %d", s.Options().DatasetSeed)
	}
	if s.Options().Lookahead != 2 {
		t.Errorf("default lookahead = %d", s.Options().Lookahead)
	}
}

func TestStaticTables(t *testing.T) {
	s := quickSuite()
	for _, id := range []string{"tab1", "tab2"} {
		tables, err := s.Run(id)
		if err != nil {
			t.Fatalf("Run(%s) error: %v", id, err)
		}
		if len(tables) != 1 || len(tables[0].Rows) == 0 {
			t.Errorf("%s produced %d tables", id, len(tables))
		}
	}
	tab1, err := s.Run("tab1")
	if err != nil {
		t.Fatalf("Run(tab1) error: %v", err)
	}
	var sb strings.Builder
	if err := tab1[0].WriteASCII(&sb); err != nil {
		t.Fatalf("WriteASCII error: %v", err)
	}
	for _, want := range []string{"learning_rate", "batch_size", "sync"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("tab1 missing %q", want)
		}
	}
}

func TestFig1aAndFig1b(t *testing.T) {
	s := quickSuite()
	tables, err := s.Run("fig1a")
	if err != nil {
		t.Fatalf("Run(fig1a) error: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig1a tables = %d, want 2 (summary + series)", len(tables))
	}
	if len(tables[0].Rows) != 3 {
		t.Errorf("fig1a summary rows = %d, want 3 jobs", len(tables[0].Rows))
	}

	tables, err = s.Run("fig1b")
	if err != nil {
		t.Fatalf("Run(fig1b) error: %v", err)
	}
	if len(tables) != 1 {
		t.Fatalf("fig1b tables = %d", len(tables))
	}
	// CDF values must be non-decreasing down the threshold rows for every job.
	for col := 1; col < len(tables[0].Columns); col++ {
		prev := -1.0
		for _, row := range tables[0].Rows {
			v := parseFloat(t, row[col])
			if v < prev-1e-9 {
				t.Errorf("fig1b column %d not monotone", col)
			}
			prev = v
		}
	}
}

func TestFig5QuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping optimization-heavy experiment in -short mode")
	}
	s := quickSuite()
	tables, err := s.Run("fig5")
	if err != nil {
		t.Fatalf("Run(fig5) error: %v", err)
	}
	if len(tables) != 1 {
		t.Fatalf("fig5 tables = %d", len(tables))
	}
	// 2 datasets × 3 optimizers = 6 rows.
	if len(tables[0].Rows) != 6 {
		t.Errorf("fig5 rows = %d, want 6", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if cno := parseFloat(t, row[3]); cno < 1-1e-9 {
			t.Errorf("average CNO %v below 1 in row %v", cno, row)
		}
	}
}

func TestAblationQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping optimization-heavy experiment in -short mode")
	}
	s := quickSuite()
	tables, err := s.Run("ablation")
	if err != nil {
		t.Fatalf("Run(ablation) error: %v", err)
	}
	if len(tables) != 1 {
		t.Fatalf("ablation tables = %d", len(tables))
	}
	if len(tables[0].Rows) != 9 {
		t.Errorf("ablation rows = %d, want 9 variants", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if cno := parseFloat(t, row[1]); cno < 1-1e-9 {
			t.Errorf("variant %q average CNO %v below 1", row[0], cno)
		}
	}
}

func TestServesimQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping optimization-heavy experiment in -short mode")
	}
	s := NewSuite(Options{
		Runs:                 1,
		Seed:                 3,
		ServesimProfileLimit: 1,
		EnsembleTrees:        5,
		Workers:              4,
	})
	tables, err := s.Run("servesim")
	if err != nil {
		t.Fatalf("Run(servesim) error: %v", err)
	}
	if len(tables) != 1 {
		t.Fatalf("servesim tables = %d", len(tables))
	}
	// 1 profile × 3 optimizers = 3 rows.
	if len(tables[0].Rows) != 3 {
		t.Errorf("servesim rows = %d, want 3", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		// Unlike the lookup-table experiments, CNO can dip slightly below 1
		// here: under observation noise the tuner may recommend a
		// configuration whose ground-truth makespan violates the constraint
		// the analytic optimum respects. Assert sanity, not a lower bound.
		if cno := parseFloat(t, row[3]); cno <= 0 {
			t.Errorf("non-positive average CNO %v in row %v", cno, row)
		}
	}
}

func TestEvaluateCachesResults(t *testing.T) {
	s := quickSuite()
	jobs, err := s.scoutJobs()
	if err != nil {
		t.Fatalf("scoutJobs error: %v", err)
	}
	bo, err := s.bo()
	if err != nil {
		t.Fatalf("bo error: %v", err)
	}
	first, err := s.evaluate(bo, jobs[0], simulator.DefaultBudgetMultiplier)
	if err != nil {
		t.Fatalf("evaluate error: %v", err)
	}
	if len(s.cache) != 1 {
		t.Errorf("cache size = %d, want 1", len(s.cache))
	}
	second, err := s.evaluate(bo, jobs[0], simulator.DefaultBudgetMultiplier)
	if err != nil {
		t.Fatalf("evaluate error: %v", err)
	}
	if len(s.cache) != 1 {
		t.Errorf("cache size after repeat = %d, want 1", len(s.cache))
	}
	if len(first.Runs) != len(second.Runs) || first.Runs[0].CNO != second.Runs[0].CNO {
		t.Error("cached result differs from the original")
	}
}

func TestAddSweepRows(t *testing.T) {
	sweep := map[string]map[float64][]simulator.JobResult{
		"cnn": {
			1: {
				{OptimizerName: "lynceus-la2", Runs: []simulator.RunMetrics{{CNO: 1.0, Explorations: 20}}},
				{OptimizerName: "bo", Runs: []simulator.RunMetrics{{CNO: 2.0, Explorations: 15}}},
			},
			3: {
				{OptimizerName: "lynceus-la2", Runs: []simulator.RunMetrics{{CNO: 1.0, Explorations: 60}}},
				{OptimizerName: "bo", Runs: []simulator.RunMetrics{{CNO: 1.5, Explorations: 30}}},
			},
		},
	}
	table := report.Table{Columns: []string{"job", "b", "lynceus", "bo"}}
	err := addSweepRows(&table, sweep, []float64{1, 3}, func(r simulator.JobResult) (float64, error) {
		s, err := r.NEXSummary()
		if err != nil {
			return 0, err
		}
		return s.Mean, nil
	}, 1)
	if err != nil {
		t.Fatalf("addSweepRows error: %v", err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (one per budget)", len(table.Rows))
	}
	if table.Rows[0][0] != "cnn" || table.Rows[0][1] != "1" {
		t.Errorf("first row = %v", table.Rows[0])
	}
	if table.Rows[0][2] != "20.0" || table.Rows[0][3] != "15.0" {
		t.Errorf("first row metrics = %v", table.Rows[0])
	}
	if table.Rows[1][2] != "60.0" || table.Rows[1][3] != "30.0" {
		t.Errorf("second row metrics = %v", table.Rows[1])
	}
}

func TestSummaryAndCDFTables(t *testing.T) {
	results := []simulator.JobResult{
		{
			OptimizerName: "a",
			Runs: []simulator.RunMetrics{
				{CNO: 1.0, Explorations: 10, SpentBudget: 1},
				{CNO: 2.0, Explorations: 20, SpentBudget: 2},
			},
		},
		{
			OptimizerName: "b",
			Runs: []simulator.RunMetrics{
				{CNO: 3.0, Explorations: 5, SpentBudget: 3},
				{CNO: 5.0, Explorations: 7, SpentBudget: 4},
			},
		},
	}
	summary, err := summaryTable("t", results)
	if err != nil {
		t.Fatalf("summaryTable error: %v", err)
	}
	if len(summary.Rows) != 2 {
		t.Fatalf("summary rows = %d", len(summary.Rows))
	}
	if summary.Rows[0][0] != "a" || summary.Rows[1][0] != "b" {
		t.Errorf("summary row order: %v", summary.Rows)
	}
	// Optimizer a found the optimum in 1 of 2 runs.
	if summary.Rows[0][6] != "0.500" {
		t.Errorf("frac_optimal = %q, want 0.500", summary.Rows[0][6])
	}

	cdf, err := cdfTable("t", results)
	if err != nil {
		t.Fatalf("cdfTable error: %v", err)
	}
	if len(cdf.Columns) != 3 {
		t.Errorf("cdf columns = %v", cdf.Columns)
	}
	// At threshold 1.0 optimizer a has 0.5 of its runs, b has 0.
	if cdf.Rows[0][1] != "0.500" || cdf.Rows[0][2] != "0.000" {
		t.Errorf("cdf first row = %v", cdf.Rows[0])
	}
	// At threshold 5.0 both reach 1.
	last := cdf.Rows[len(cdf.Rows)-1]
	if last[1] != "1.000" || last[2] != "1.000" {
		t.Errorf("cdf last row = %v", last)
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}
